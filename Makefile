GO ?= go

.PHONY: all build test bench race vet faults

all: build test

build:
	$(GO) build ./...

# Tier-1: the correctness gate.
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sim engine is the concurrency-sensitive core (cooperative goroutine
# scheduling); run it — and the layers the fault injector touches — under
# the race detector separately.
race:
	$(GO) test -race ./internal/sim/... ./internal/fault/... ./internal/lustre/...

# Fault-injection gate: vet the fault layer, then run its unit tests, the
# perturber hook tests, and the scenario determinism goldens + straggler
# sweep acceptance test (DESIGN.md §8, EXPERIMENTS.md "Straggler sweep").
faults: vet
	$(GO) test ./internal/fault/... -count=1
	$(GO) test ./internal/sim/ -run 'TestPerturber|TestResourceTrimWatermarkBoundary|TestTrimAtMinClockInRun' -count=1
	$(GO) test . -run 'TestFaultScenarios|TestHealthyScenario|TestGoldenFaultScenario|TestStragglerSweep' -count=1 -v

# Tier-1.5 gate + benchmark regression harness: vet, race-check the engine,
# run the full bench suite with allocation stats, and regenerate the
# machine-readable report (see DESIGN.md, "Performance model of the
# simulator", for how to read BENCH_1.json).
bench: vet race
	$(GO) test -bench=. -benchmem -run '^$$' .
	BENCH_JSON=BENCH_1.json $(GO) test -run '^TestEmitBenchJSON$$' -count=1 -v .
