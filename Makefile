GO ?= go

.PHONY: all build test bench bench-large race vet faults fuzz recovery obs hierarchical backends storage-faults tenancy paperrepro verify

all: build test

build:
	$(GO) build ./...

# Tier-1: the correctness gate.
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sim engine is the concurrency-sensitive core (cooperative goroutine
# scheduling, and the partitioned parallel mode runs domains on real OS
# threads); run it — and the layers the fault injector and the nonblocking
# progress engine touch — under the race detector separately, then the root
# parallel-identity suite, which drives every layer through the parallel
# engine at 2 and 4 workers (DESIGN.md §12).
race:
	$(GO) test -race ./internal/sim/... ./internal/fault/... ./internal/lustre/... ./internal/nbio/... ./internal/recovery/... ./internal/obs/... ./internal/storage/... ./internal/bb/... ./internal/pvfs/... ./internal/tenancy/... ./internal/job/...
	$(GO) test -race -run 'TestParallel|TestHierarchicalParallel|TestBurstUnderFailureDeterministic|TestChaosStorageFaults' -count=1 .

# Fault-injection gate: vet the fault layer, then run its unit tests, the
# perturber hook tests, and the scenario determinism goldens + straggler
# sweep acceptance test (DESIGN.md §8, EXPERIMENTS.md "Straggler sweep").
faults: vet
	$(GO) test ./internal/fault/... -count=1
	$(GO) test ./internal/sim/ -run 'TestPerturber|TestResourceTrimWatermarkBoundary|TestTrimAtMinClockInRun' -count=1
	$(GO) test . -run 'TestFaultScenarios|TestHealthyScenario|TestGoldenFaultScenario|TestStragglerSweep' -count=1 -v

# Observability gate: vet the obs layer and the shared CLI package, run
# their unit tests plus the root instrumentation-identity suite (every
# scenario instrumented ≡ bare, byte-identical Perfetto exports), then
# export a real trace with collwall and schema-check it end to end
# (DESIGN.md §11, EXPERIMENTS.md "Reading a Perfetto dump").
obs:
	$(GO) vet ./internal/obs/... ./internal/cli/...
	$(GO) test ./internal/obs/... ./internal/cli/... ./internal/trace/... -count=1
	$(GO) test . -run 'TestInstrumentedRunsMatchBare|TestObservedRunDeterminism|TestObservedMetricsPopulated|TestCriticalPathConsistency' -count=1 -v
	$(GO) run ./cmd/collwall -procs 32 -maxprocs 32 -minprocs 32 -groups 4 -trace-out /tmp/parcoll-trace.json -metrics > /dev/null
	$(GO) run ./examples/validatetrace /tmp/parcoll-trace.json

# Fuzz smoke: a short exploration of each native fuzz target beyond its
# checked-in seed corpus (the corpus itself already runs under `make test`).
fuzz:
	$(GO) test -fuzz 'FuzzPartitionDirect' -fuzztime=10s ./internal/core
	$(GO) test -fuzz 'FuzzSieve' -fuzztime=10s ./internal/mpiio
	$(GO) test -fuzz 'FuzzRetrySchedule' -fuzztime=10s ./internal/recovery
	$(GO) test -fuzz 'FuzzNodeSplit' -fuzztime=10s ./internal/mpi
	$(GO) test -fuzz 'FuzzExtentCoalesce' -fuzztime=10s ./internal/bb
	$(GO) test -fuzz 'FuzzExtentRedump' -fuzztime=10s ./internal/storage

# Two-level collective gate: vet the touched layers, run the hierarchy
# property/fuzz-seed and two-level protocol suites, then the root goldens,
# flat-off identity, parallel-engine identity, and the fat-node acceptance
# test (DESIGN.md §13, EXPERIMENTS.md "Fat-node sweep").
hierarchical: vet
	$(GO) test ./internal/mpi/ -run 'TestSplitByNode|TestHierarchy|TestIntraComm|FuzzNodeSplit' -count=1
	$(GO) test ./internal/mpiio/ -run 'TestHier|TestIntraNode' -count=1
	$(GO) test . -run 'TestHierarchical|TestIntraNodeAggregationReducesExchange' -count=1 -v

# Fail-stop recovery gate: the retry/backoff/breaker unit tests, the
# resilient-collective acceptance tests (byte-exact read-back under crashes,
# ParColl's time-to-recover strictly below ext2ph's), and the crash-plan
# determinism goldens (DESIGN.md §10, EXPERIMENTS.md "Recovery sweep").
recovery: vet
	$(GO) test ./internal/recovery/... -count=1
	$(GO) test . -run 'TestTileWriteUnderFailure|TestBTWriteUnderFailure|TestParCollRecoversFaster|TestRecoveryRunTwice' -count=1 -v

# Tier-1.5 gate + benchmark regression harness: vet, race-check the engine,
# run the full bench suite with allocation stats, and regenerate the
# machine-readable report (see DESIGN.md, "Performance model of the
# simulator", for how to read BENCH_10.json; BENCH_1.json is the PR-1
# baseline to diff allocs/op against, BENCH_3.json the pre-recovery one,
# BENCH_4.json the pre-hierarchy one, BENCH_7.json the pre-backend-seam
# one, BENCH_8.json the pre-tenancy one; the emit step also asserts the
# flat 256-proc path's allocs/op stays within 1% of the BENCH_8.json
# baseline).
bench: vet race
	$(GO) test -bench=. -benchmem -run '^$$' .
	BENCH_JSON=BENCH_10.json $(GO) test -run '^TestEmitBenchJSON$$' -count=1 -v .

# Large-scale tier: the 1024/4096-proc Fig1 points under the partitioned
# parallel engine (GOMAXPROCS workers), plus the 256-proc serial-vs-parallel
# strong-scaling probe. Set BENCH_LARGE_STRETCH=1 for the 16384-proc stretch
# point. See DESIGN.md §12 and EXPERIMENTS.md "Strong scaling".
bench-large:
	BENCH_LARGE_JSON=BENCH_6.json $(GO) test -run '^TestEmitBenchLargeJSON$$' -count=1 -v -timeout 60m .

# Storage-backend gate: vet the backend packages, run the shared
# conformance suite against all three backends plus their unit tests, and
# the root acceptance tests — list-I/O request reduction with bytes
# conserved, and the checkpoint-burst claim that the burst buffer's
# write-call time beats pass-through lustre at compute/IO >= 1 with a
# byte-exact read-back after the drain (DESIGN.md §14, EXPERIMENTS.md
# "Checkpoint burst").
backends:
	$(GO) vet ./internal/storage/... ./internal/bb/... ./internal/pvfs/... ./internal/lustre/...
	$(GO) test ./internal/storage/... ./internal/bb/... ./internal/pvfs/... -count=1
	$(GO) test ./internal/lustre/ -run 'TestBackendConformance|TestRemove|TestStatsDeterministic' -count=1
	$(GO) test . -run 'TestBackendSweepListIO|TestCheckpointBurst' -count=1 -v

# Storage-tier fault-tolerance gate: vet the fault and backend layers, run
# the shared fault-injection conformance leg against all three backends,
# the extent/ledger algebra tests, and the root acceptance suite — a bb
# node lost mid-burst with checksum-verified byte-exact read-back and
# ParColl degrading strictly less than ext2ph, flaky drains charging retry
# time without losing data, a dead list-I/O server carried by the scalar
# fallback, run-twice/parallel determinism, and the seeded chaos sweep
# (DESIGN.md §15, EXPERIMENTS.md "Checkpoint burst under failure").
storage-faults: vet
	$(GO) test ./internal/fault/ -count=1
	$(GO) test ./internal/lustre/ ./internal/pvfs/ ./internal/bb/ -run 'TestBackendFaultConformance' -count=1
	$(GO) test ./internal/storage/... -count=1
	$(GO) test . -run 'TestCheckpointBurstSurvivesBBNodeLoss|TestCheckpointBurstUnderFlakyDrain|TestTileUnderDeadPVFSServer|TestBurstUnderFailureDeterministic|TestChaosStorageFaults' -count=1 -v

# Regenerate the checked-in full-scale transcript. -timings=false drops the
# wall-clock lines so the file is a pure function of the simulation — any
# diff after running this target is a real virtual-time change.
paperrepro:
	$(GO) run ./cmd/paperrepro -procs 1024 -timings=false > paperrepro_output.txt

# Multi-tenancy gate: vet the tenancy/job/qos layers, run the trace and
# spec unit tests, the tenancy determinism suite (run-twice and 1-vs-4
# worker bit-identity, healthy and one-straggler, byte-exact verification),
# the QoS acceptance tests (FIFO slowdown > 1, fair-share lowering the small
# job's p99, ParColl confining the straggler), and the spec-equals-flags
# golden over every cmd tool (DESIGN.md §16, EXPERIMENTS.md
# "Shared-filesystem interference").
tenancy: vet
	$(GO) test ./internal/job/... ./internal/qos/... -count=1
	$(GO) test ./internal/tenancy/... -count=1 -v
	$(GO) test ./internal/cli/ -run 'TestSpecEqualsFlags' -count=1

# The full verification sweep: tier-1 build+test, vet, the tenancy gate,
# and a transcript regeneration so paperrepro_output.txt can't drift from
# the code.
verify: all vet tenancy paperrepro
