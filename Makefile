GO ?= go

.PHONY: all build test bench race vet

all: build test

build:
	$(GO) build ./...

# Tier-1: the correctness gate.
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sim engine is the concurrency-sensitive core (cooperative goroutine
# scheduling); run it under the race detector separately.
race:
	$(GO) test -race ./internal/sim/...

# Tier-1.5 gate + benchmark regression harness: vet, race-check the engine,
# run the full bench suite with allocation stats, and regenerate the
# machine-readable report (see DESIGN.md, "Performance model of the
# simulator", for how to read BENCH_1.json).
bench: vet race
	$(GO) test -bench=. -benchmem -run '^$$' .
	BENCH_JSON=BENCH_1.json $(GO) test -run '^TestEmitBenchJSON$$' -count=1 -v .
