package sim

import "fmt"

// Deferred completions: the progress engine behind nonblocking operations.
//
// A proc registers a completion callback with After(at, fn); the engine fires
// it the first time the proc's virtual clock reaches `at`. Because procs run
// cooperatively — the engine resumes exactly one at a time, always the one
// with the smallest clock — the only moments a proc's clock can move are its
// own Advance/AdvanceTo calls and the arrival alignment inside Recv. Those
// call sites drain the proc's due-completion queue, so a pending operation
// "progresses in the background" whenever the owning rank yields or burns
// compute, without any real concurrency. Completions fire in (at,
// registration-order) order, a pure function of the program and the seed, so
// run-twice bit-identity is preserved (see DESIGN.md §9).
//
// Callbacks run on the owning proc's goroutine and must not advance the
// clock, block, or send: they are bookkeeping hooks (marking a request done,
// recording hidden time), not simulated work. A callback that needs to block
// belongs in the explicit Wait path of the higher layer.

type pendingState uint8

const (
	pendWaiting pendingState = iota
	pendFired
	pendCanceled
)

// Pending is a handle to one deferred completion.
type Pending struct {
	p     *Proc
	at    float64
	seq   uint64
	fn    func()
	state pendingState
}

// At returns the virtual time the completion is due.
func (pd *Pending) At() float64 { return pd.at }

// Fired reports whether the callback has run.
func (pd *Pending) Fired() bool { return pd.state == pendFired }

// Cancel withdraws a not-yet-fired completion; the callback will never run.
// Canceling a fired completion is a no-op.
func (pd *Pending) Cancel() {
	if pd.state == pendWaiting {
		pd.state = pendCanceled
	}
}

// pendHeap is a binary min-heap of deferred completions keyed by (at, seq):
// earliest due time first, registration order breaking ties.
type pendHeap []*Pending

func (h pendHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *pendHeap) push(pd *Pending) {
	*h = append(*h, pd)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *pendHeap) pop() *Pending {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// After registers fn to fire when the proc's clock reaches at. If at is
// already due, the callback still fires at the next progress point (an
// Advance, AdvanceTo, Recv, or explicit Progress call), never inside After
// itself — registration is side-effect free.
func (p *Proc) After(at float64, fn func()) *Pending {
	if fn == nil {
		panic(fmt.Sprintf("sim: proc %d After with nil callback", p.id))
	}
	p.pendSeq++
	pd := &Pending{p: p, at: at, seq: p.pendSeq, fn: fn}
	p.pend.push(pd)
	return pd
}

// Progress fires every due deferred completion (at <= Now), in (at, seq)
// order. It never advances the clock.
func (p *Proc) Progress() { p.fireDue() }

// PendingOps reports the number of live (unfired, uncanceled) deferred
// completions — diagnostics and tests.
func (p *Proc) PendingOps() int {
	n := 0
	for _, pd := range p.pend {
		if pd.state == pendWaiting {
			n++
		}
	}
	return n
}

// drainPending cancels every live deferred completion and empties the heap.
// The engine calls it when a proc's body returns (normally or by panic):
// completions registered by a finished or crashed proc must never fire, and
// must not linger as live entries against a dead rank. It returns the number
// of completions canceled (regression tests assert on it indirectly via
// PendingOps).
func (p *Proc) drainPending() int {
	n := 0
	for _, pd := range p.pend {
		if pd.state == pendWaiting {
			pd.state = pendCanceled
			n++
		}
	}
	p.pend = p.pend[:0]
	return n
}

// fireDue drains due completions. Called from every clock-advancing path;
// the leading length check keeps the blocking hot paths free when no
// nonblocking operation is in flight. Reentrancy (a callback that triggers
// another progress point) is suppressed: the outer loop re-examines the heap
// after every callback, so nothing is lost.
func (p *Proc) fireDue() {
	if len(p.pend) == 0 || p.firing {
		return
	}
	p.firing = true
	for len(p.pend) > 0 {
		top := p.pend[0]
		if top.state != pendWaiting {
			p.pend.pop()
			continue
		}
		if top.at > p.now {
			break
		}
		p.pend.pop()
		top.state = pendFired
		top.fn()
	}
	p.firing = false
}
