package sim

import (
	"testing"
)

// The progress engine's contract: a deferred completion registered with
// After fires exactly once, on its own proc, at the first clock-advancing
// point at or past its due time — never inside After itself, never early,
// and in (time, registration) order when several are due together.

func TestAfterFiresOnAdvance(t *testing.T) {
	NewEngine(Config{Seed: 1}).Run(1, func(p *Proc) {
		var firedAt float64 = -1
		pd := p.After(1.0, func() { firedAt = p.Now() })
		if pd.Fired() {
			t.Fatal("fired inside After")
		}
		p.Advance(0.5)
		if firedAt >= 0 {
			t.Fatalf("fired early at %g", firedAt)
		}
		p.Advance(0.6) // clock passes 1.0
		if !pd.Fired() || firedAt != p.Now() {
			t.Fatalf("fired=%v at=%g now=%g", pd.Fired(), firedAt, p.Now())
		}
	})
}

func TestAfterDueNowFiresOnNextAdvance(t *testing.T) {
	// A completion due at (or before) the current clock still waits for the
	// next clock-advancing point: After never runs callbacks synchronously.
	NewEngine(Config{Seed: 1}).Run(1, func(p *Proc) {
		p.Advance(2.0)
		fired := false
		p.After(1.0, func() { fired = true }) // already past due
		if fired {
			t.Fatal("After ran its callback synchronously")
		}
		p.Advance(0) // zero-width advance is still a firing point
		if !fired {
			t.Fatal("due completion did not fire on Advance(0)")
		}
	})
}

func TestAfterOrderAndCancel(t *testing.T) {
	NewEngine(Config{Seed: 1}).Run(1, func(p *Proc) {
		var order []int
		p.After(2.0, func() { order = append(order, 2) })
		a := p.After(1.0, func() { order = append(order, 1) })
		c := p.After(1.5, func() { order = append(order, 99) })
		// Same due time as an earlier registration: registration order wins.
		p.After(1.0, func() { order = append(order, 3) })
		c.Cancel()
		if a.Fired() {
			t.Fatal("premature fire")
		}
		p.Advance(5)
		want := []int{1, 3, 2}
		if len(order) != len(want) {
			t.Fatalf("order = %v want %v", order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order = %v want %v", order, want)
			}
		}
		if p.PendingOps() != 0 {
			t.Errorf("%d pending ops left", p.PendingOps())
		}
	})
}

func TestAfterFiresOnRecv(t *testing.T) {
	// Blocking receives are clock-advancing points too: a completion due
	// before the message arrival must fire during the Recv.
	NewEngine(Config{Seed: 1}).Run(2, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Advance(1.0)
			p.Send(1, 5, nil, p.Now()+1.0) // arrives at t=2
		case 1:
			fired := false
			p.After(0.5, func() { fired = true })
			p.Recv(0, 5)
			if !fired {
				t.Error("completion did not fire during blocking Recv")
			}
			if p.Now() != 2.0 {
				t.Errorf("Recv returned at %g want 2", p.Now())
			}
		}
	})
}

func TestAfterCallbackMayRegisterMore(t *testing.T) {
	// A firing callback registering a new completion must not corrupt the
	// heap; the new completion fires at its own due point.
	NewEngine(Config{Seed: 1}).Run(1, func(p *Proc) {
		hits := 0
		p.After(1.0, func() {
			hits++
			p.After(2.0, func() { hits++ })
		})
		p.Advance(1.2)
		if hits != 1 {
			t.Fatalf("hits = %d want 1", hits)
		}
		p.Advance(1.0)
		if hits != 2 {
			t.Fatalf("hits = %d want 2", hits)
		}
	})
}

func TestProgressDrainsDue(t *testing.T) {
	NewEngine(Config{Seed: 1}).Run(1, func(p *Proc) {
		fired := false
		p.After(0.0, func() { fired = true })
		p.Progress()
		if !fired {
			t.Error("Progress did not fire a due completion")
		}
	})
}

func TestAfterNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from After(nil)")
		}
	}()
	NewEngine(Config{}).Run(1, func(p *Proc) { p.After(1, nil) })
}
