package sim

// Conservative parallel scheduler (DESIGN.md §12).
//
// The serial engine runs slices — maximal stretches of one proc's execution
// between scheduler events — in the strict order of their (readyAt, id) keys.
// Because every cross-proc message arrives strictly after its sender's clock
// (NIC latency is positive), a slice's *effects on shared engine state* are
// confined to keys above its own, which makes the schedule a textbook
// conservative-PDES partition: procs are split into domains, each domain's
// ready heap runs on its own worker goroutine, and a slice may execute its
// pure local compute freely but must pass a *gate* before its first
// interaction with shared state (Send, Sync, a receive, or an explicit
// Ordered fence). The gate admits a slice keyed k only when no domain can
// still produce an event the serial engine would schedule before k — at
// which point the slice is, by construction, the globally next slice, and it
// holds exclusive access to all shared state until it ends:
//
//   - once a gate at key k passes, every candidate event anywhere is ≥ k,
//     and new events are only created by running slices at keys above their
//     own gates, so nothing below k can ever appear again (monotonicity);
//   - therefore at most one slice is ever past its gate and unfinished, and
//     global sequence numbers, perturbation draws, resource bookings and
//     observability appends all happen in exactly the serial order.
//
// Determinism is thus not approximate: virtual times, Stats counts and every
// shared side effect are bit-identical to the serial engine's, for any
// domain mapping. The mapping only affects how much pre-gate compute
// overlaps — domains aligned with the machine topology (procs sharing a
// node share a domain) overlap best because their slices rarely wait on
// each other's NIC ledger updates.
//
// Tie rules mirror the serial scheduler exactly: slices order by
// (time, proc id); an armed RecvUntil deadline fires only when *strictly*
// earliest in time (a same-time runnable slice wins) and first among
// deadlines by (time, proc id).

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
)

// sliceKey is the serial scheduler's ordering key for one slice.
type sliceKey struct {
	t float64
	i int
}

func keyLess(a, b sliceKey) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.i < b.i
}

// key returns the running slice's key. visT is pinned to readyAt when the
// slice starts, so the key is stable even as the proc's clock advances.
func (p *Proc) key() sliceKey { return sliceKey{p.visT, p.id} }

// domain is one partition of the procs: a private ready heap, deadline heap
// and stats block, driven by one worker goroutine.
type domain struct {
	id      int
	par     *parEngine
	ready   readyHeap
	dl      dlHeap
	stats   Stats
	yieldCh chan struct{}

	// running is the slice currently executing (or parked mid-gate) on this
	// domain's worker; stack holds pre-gate slices that handed the worker
	// back because a serially-earlier slice landed in this domain. Stack
	// keys strictly decrease toward the top, so running is always the
	// domain's earliest in-flight slice.
	running  *Proc
	stack    []*Proc
	gateWait *Proc // set by a slice yielding the worker mid-gate
}

// parEngine is the shared scheduler state. One mutex guards every heap,
// frontier read and shared-state interaction; it is released while slices
// execute, which is where the parallelism comes from.
type parEngine struct {
	mu       sync.Mutex
	cond     *sync.Cond
	eng      *Engine
	doms     []*domain
	n        int
	done     int
	finished bool
	panicV   any
}

// peekDl prunes stale entries and returns the domain's earliest armed
// deadline, or nil. Caller holds par.mu.
func (d *domain) peekDl() *dlEntry {
	for len(d.dl) > 0 {
		if d.dl[0].stale() {
			d.dl.pop()
			continue
		}
		return &d.dl[0]
	}
	return nil
}

// blocksKey reports whether domain d could still produce an event the serial
// scheduler would run strictly before key k. Running, stacked and ready
// slices compare by (time, id); armed deadlines compare by time only — a
// deadline that ties a runnable slice fires after it (timeout.go's tie
// rule), so it never blocks a same-time slice. Caller holds par.mu.
func (d *domain) blocksKey(k sliceKey, self *Proc) bool {
	if d.running != nil && d.running != self && keyLess(d.running.key(), k) {
		return true
	}
	for _, s := range d.stack {
		if s != self && keyLess(s.key(), k) {
			return true
		}
	}
	if top := d.ready.peek(); top != nil && keyLess(sliceKey{top.readyAt, top.id}, k) {
		return true
	}
	if e := d.peekDl(); e != nil && e.at < k.t {
		return true
	}
	return false
}

// ensureGateLocked blocks until every event the serial engine would schedule
// before this slice has completed, then marks the slice gated. From that
// point to the end of the slice, the slice holds exclusive access to all
// engine-shared state (see the package comment's monotonicity argument).
// The gate is monotone within a slice, so it is checked once and cached.
// Caller holds par.mu; it is held again on return.
func (p *Proc) ensureGateLocked() {
	if p.gated {
		return
	}
	d := p.dom
	par := d.par
	k := p.key()
	for {
		if par.panicV != nil {
			p.abortLocked() // never returns
		}
		own, blocked := false, false
		for _, d2 := range par.doms {
			if !d2.blocksKey(k, p) {
				continue
			}
			if d2 == d {
				own = true
			} else {
				blocked = true
			}
		}
		if own {
			// A serially-earlier slice (or deadline) landed in our own
			// domain: hand the worker back so it can run; the worker
			// resumes us once our key is the domain's earliest again.
			d.gateWait = p
			par.mu.Unlock()
			d.yieldCh <- struct{}{}
			<-p.resume
			par.mu.Lock()
			continue
		}
		if !blocked {
			break
		}
		par.cond.Wait()
	}
	p.gated = true
}

// abortLocked is taken when a sibling proc panicked: release the worker and
// park forever, mirroring the serial engine's abandonment of the remaining
// proc goroutines when Run re-panics. Caller holds par.mu; never returns.
func (p *Proc) abortLocked() {
	d := p.dom
	d.par.mu.Unlock()
	d.yieldCh <- struct{}{}
	select {}
}

// Ordered is a determinism fence for parallel runs: it blocks until every
// serially-earlier slice has completed, so whatever the caller does next
// touches engine-shared structures (trace recorders, metric registries,
// collective rendezvous tables) in exactly the serial engine's order. Under
// the serial engine — and once the current slice has already interacted —
// it costs one branch.
func (p *Proc) Ordered() {
	if p.dom == nil || p.gated {
		return
	}
	par := p.dom.par
	par.mu.Lock()
	p.ensureGateLocked()
	par.mu.Unlock()
}

// syncSlowLocked decides Sync's scheduling exactly like the serial fast-path
// test against the global ready heap: slow iff some other runnable slice's
// key precedes (p.now, p.id). Running-but-pre-gate slices stand in for their
// serial heap entries at their slice keys; armed deadlines are not runnable
// (the serial Sync test also only consults the ready heap). Caller holds
// par.mu and must be gated, so the view is the serial engine's moment.
func (par *parEngine) syncSlowLocked(p *Proc) bool {
	k := sliceKey{p.now, p.id}
	for _, d := range par.doms {
		if d.running != nil && d.running != p && keyLess(d.running.key(), k) {
			return true
		}
		for _, s := range d.stack {
			if keyLess(s.key(), k) {
				return true
			}
		}
		if top := d.ready.peek(); top != nil && keyLess(sliceKey{top.readyAt, top.id}, k) {
			return true
		}
	}
	return false
}

// parSync implements Proc.Sync on the parallel scheduler.
func (p *Proc) parSync() {
	par := p.dom.par
	par.mu.Lock()
	p.ensureGateLocked()
	if !par.syncSlowLocked(p) {
		par.mu.Unlock()
		return // already first in virtual-time order
	}
	p.state = stateReady
	p.readyAt = p.now
	p.blockedOn = blockSync
	p.dom.ready.push(p)
	par.cond.Broadcast()
	par.mu.Unlock()
	p.yield()
	// The worker resumed us as a fresh slice, which only means we are first
	// within our own domain. Sync's contract is global — callers book shared
	// resources right after it returns — so re-gate before returning.
	par.mu.Lock()
	p.ensureGateLocked()
	par.mu.Unlock()
}

// parSend implements Proc.Send on the parallel scheduler. The gate makes the
// global sequence counter, the perturbation draws and the wake decision
// happen in serial order; the deposit stamp reproduces the serial deposit
// order for wildcard receivers (see mailbox.takeVis).
func (p *Proc) parSend(dst, tag int, payload any, arrival float64) {
	e := p.engine
	par := p.dom.par
	par.mu.Lock()
	p.ensureGateLocked()
	e.seq++
	p.dom.stats.Sends.Inc()
	if e.cfg.Perturber != nil {
		if d := e.cfg.Perturber.DeliveryDelay(p.id, dst, arrival, e.frng); d > 0 {
			arrival += d
			p.dom.stats.Perturbed.Inc()
		}
	}
	p.sseq++
	m := Message{
		Src: p.id, Tag: tag, Payload: payload, Arrival: arrival, seq: e.seq,
		stampT: p.visT, stampI: int32(p.id), sseq: p.sseq,
	}
	q := e.procs[dst]
	q.mb.put(m)
	if q.state == stateBlocked && q.hasPending && q.pending.matches(&m) {
		if q.hasDeadline && m.Arrival > q.deadline {
			// The waiter's watchdog expires before this message arrives:
			// wake it at the deadline, empty-handed.
			q.hasDeadline = false
			q.hasPending = false
			q.state = stateReady
			q.readyAt = q.deadline
			p.dom.stats.Timeouts.Inc()
			q.dom.ready.push(q)
		} else {
			q.hasDeadline = false
			q.hasPending = false
			q.state = stateReady
			q.readyAt = q.now
			if m.Arrival > q.readyAt {
				q.readyAt = m.Arrival
			}
			q.dom.ready.push(q)
		}
	}
	par.cond.Broadcast()
	par.mu.Unlock()
}

// parRecv implements Proc.Recv on the parallel scheduler.
func (p *Proc) parRecv(src, tag int) Message {
	spec := recvSpec{src: src, tag: tag}
	par := p.dom.par
	for {
		par.mu.Lock()
		p.ensureGateLocked()
		if m, ok := p.mb.takeVis(spec, p.visT, p.id, &p.dom.stats); ok {
			par.mu.Unlock()
			if m.Arrival > p.now {
				p.now = m.Arrival
			}
			p.fireDue()
			p.dom.stats.Recvs.Inc()
			return m
		}
		p.pending = spec
		p.hasPending = true
		p.state = stateBlocked
		p.blockedOn = blockRecv
		par.cond.Broadcast()
		par.mu.Unlock()
		p.yield()
	}
}

// parTryRecv implements Proc.TryRecv on the parallel scheduler.
func (p *Proc) parTryRecv(src, tag int) (Message, bool) {
	par := p.dom.par
	par.mu.Lock()
	p.ensureGateLocked()
	m, ok := p.mb.takeVis(recvSpec{src: src, tag: tag}, p.visT, p.id, &p.dom.stats)
	par.mu.Unlock()
	if !ok {
		return Message{}, false
	}
	if m.Arrival > p.now {
		p.now = m.Arrival
	}
	p.fireDue()
	p.dom.stats.Recvs.Inc()
	return m, true
}

// parRecvUntil implements Proc.RecvUntil on the parallel scheduler,
// mirroring the serial loop in timeout.go with the deadline armed on the
// owning domain's heap.
func (p *Proc) parRecvUntil(spec recvSpec, deadline float64) (Message, bool) {
	par := p.dom.par
	for {
		par.mu.Lock()
		p.ensureGateLocked()
		if m, ok := p.mb.takeBefore(spec, deadline, &p.dom.stats); ok {
			par.mu.Unlock()
			if m.Arrival > p.now {
				p.now = m.Arrival
			}
			p.fireDue()
			p.dom.stats.Recvs.Inc()
			return m, true
		}
		if p.now >= deadline {
			par.mu.Unlock()
			p.fireDue()
			return Message{}, false
		}
		p.pending = spec
		p.hasPending = true
		p.state = stateBlocked
		p.blockedOn = blockRecv
		p.deadline = deadline
		p.hasDeadline = true
		p.dlGen++
		p.dom.dl.push(dlEntry{p: p, at: deadline, gen: p.dlGen})
		par.cond.Broadcast()
		par.mu.Unlock()
		p.yield()
		// hasDeadline was cleared, under par.mu, by whichever path woke us
		// (matching send, expiry wake, or the domain's timeout firing).
	}
}

// nextLocked picks the next slice this domain's worker should execute: the
// ready top while it precedes both the earliest armed deadline (serial rule:
// a deadline strictly earlier than every runnable fires first) and the most
// recently parked gated slice's key; else that gated slice once nothing in
// this domain precedes it. Returns nil when the domain must wait (deadline
// pending global confirmation, or nothing to do). Caller holds par.mu.
func (d *domain) nextLocked() *Proc {
	var lim sliceKey
	hasLim := false
	if n := len(d.stack); n > 0 {
		lim = d.stack[n-1].key()
		hasLim = true
	}
	top := d.ready.peek()
	dl := d.peekDl()
	if top != nil && (dl == nil || dl.at >= top.readyAt) &&
		(!hasLim || keyLess(sliceKey{top.readyAt, top.id}, lim)) {
		return d.ready.pop()
	}
	if hasLim &&
		(top == nil || !keyLess(sliceKey{top.readyAt, top.id}, lim)) &&
		(dl == nil || dl.at >= lim.t) {
		n := len(d.stack)
		p := d.stack[n-1]
		d.stack[n-1] = nil
		d.stack = d.stack[:n-1]
		return p
	}
	return nil
}

// fireableLocked reports whether d's earliest armed deadline is the globally
// earliest engine event, per the serial tie rules: every running, stacked
// and ready slice anywhere must lie strictly later in time (same-time
// runnables win), and among armed deadlines ours must be first by
// (time, proc id). Caller holds par.mu.
func (d *domain) fireableLocked() *dlEntry {
	ent := d.peekDl()
	if ent == nil {
		return nil
	}
	for _, d2 := range d.par.doms {
		if d2.running != nil && d2.running.visT <= ent.at {
			return nil
		}
		for _, s := range d2.stack {
			if s.visT <= ent.at {
				return nil
			}
		}
		if top := d2.ready.peek(); top != nil && top.readyAt <= ent.at {
			return nil
		}
		if d2 == d {
			continue
		}
		if e2 := d2.peekDl(); e2 != nil &&
			(e2.at < ent.at || (e2.at == ent.at && e2.p.id < ent.p.id)) {
			return nil
		}
	}
	return ent
}

// fireTimeoutLocked wakes this domain's earliest armed waiter empty-handed
// at its deadline (the parallel analogue of Engine.fireTimeout). Caller
// holds par.mu and has checked fireableLocked.
func (d *domain) fireTimeoutLocked() {
	ent := d.dl.pop()
	p := ent.p
	p.hasDeadline = false
	p.hasPending = false
	p.state = stateReady
	p.readyAt = ent.at
	d.stats.Timeouts.Inc()
	d.ready.push(p)
}

// idleLocked reports whether no domain has any work left — running, parked,
// ready or armed. With procs still unfinished this is the parallel
// scheduler's deadlock condition. Caller holds par.mu.
func (par *parEngine) idleLocked() bool {
	for _, d := range par.doms {
		if d.running != nil || d.gateWait != nil || len(d.stack) > 0 || len(d.ready) > 0 {
			return false
		}
		if d.peekDl() != nil {
			return false
		}
	}
	return true
}

// worker drives one domain: start ready slices, resume gated ones, fire
// confirmed timeouts, park when the domain can only wait on the others.
func (par *parEngine) worker(d *domain) {
	par.mu.Lock()
	for {
		if par.panicV != nil || par.finished {
			break
		}
		if p := d.nextLocked(); p != nil {
			d.running = p
			if p.state == stateReady {
				// Fresh slice (vs resumed mid-gate from the stack): pin the
				// slice key, reset the gate, count the resume.
				p.state = stateRunning
				p.visT = p.readyAt
				p.gated = false
				if p.readyAt > p.now {
					p.now = p.readyAt
				}
				d.stats.Resumes.Inc()
			}
			par.mu.Unlock()
			p.resume <- struct{}{}
			<-d.yieldCh
			par.mu.Lock()
			if d.gateWait != nil {
				// The slice parked mid-gate; it resumes via the stack.
				d.stack = append(d.stack, d.gateWait)
				d.gateWait = nil
				d.running = nil
				continue
			}
			d.running = nil
			if par.panicV != nil {
				break
			}
			if p.state == stateDone {
				par.done++
				if par.done == par.n {
					par.finished = true
				}
			}
			par.cond.Broadcast()
			continue
		}
		if d.fireableLocked() != nil {
			d.fireTimeoutLocked()
			par.cond.Broadcast()
			continue
		}
		if par.idleLocked() {
			if par.done < par.n && par.panicV == nil {
				par.panicV = "sim: deadlock\n" + par.eng.describeStates()
			}
			par.finished = true
			break
		}
		par.cond.Wait()
	}
	par.cond.Broadcast()
	par.mu.Unlock()
}

// minClock returns the earliest key time any domain could still schedule —
// a nondecreasing lower bound on every future booking time, which is what
// Resource.Trim needs from Engine.MinClock. It is coarser than the serial
// engine's min-proc-clock but equally safe: bookings only ever happen at or
// after the booking slice's key time.
func (par *parEngine) minClock() float64 {
	par.mu.Lock()
	defer par.mu.Unlock()
	min, ok := 0.0, false
	consider := func(t float64) {
		if !ok || t < min {
			min, ok = t, true
		}
	}
	for _, d := range par.doms {
		if d.running != nil {
			consider(d.running.visT)
		}
		for _, s := range d.stack {
			consider(s.visT)
		}
		if top := d.ready.peek(); top != nil {
			consider(top.readyAt)
		}
		if e := d.peekDl(); e != nil {
			consider(e.at)
		}
	}
	if !ok {
		return 0
	}
	return min
}

// mergeStats sums the per-domain counters. Every count is identical to the
// serial engine's by the exclusivity argument; only their attribution was
// split across domains. MaxReadyDepth is n under the serial engine for any
// run — all n procs are ready before the first pop — so the merge pins it
// rather than reconstructing it from per-domain high-water marks.
func mergeStats(doms []*domain, n int) Stats {
	var s Stats
	for _, d := range doms {
		s.Resumes.Add(d.stats.Resumes.Value())
		s.Sends.Add(d.stats.Sends.Value())
		s.Recvs.Add(d.stats.Recvs.Value())
		s.ExactPops.Add(d.stats.ExactPops.Value())
		s.WildcardPops.Add(d.stats.WildcardPops.Value())
		s.WildcardScanned.Add(d.stats.WildcardScanned.Value())
		s.Perturbed.Add(d.stats.Perturbed.Value())
		s.Timeouts.Add(d.stats.Timeouts.Value())
		s.Advances.Add(d.stats.Advances.Value())
	}
	s.MaxReadyDepth = uint64(n)
	return s
}

// runParallel is Engine.Run's parallel mode: cfg.Workers domains, one worker
// goroutine each, bit-identical results to the serial scheduler.
func (e *Engine) runParallel(n int, body func(p *Proc)) float64 {
	W := e.cfg.Workers
	domOf := e.cfg.DomainOf
	if domOf == nil {
		// Default mapping: contiguous blocks, the id-order analogue of
		// node-aligned domains.
		domOf = make([]int, n)
		per := (n + W - 1) / W
		for i := range domOf {
			domOf[i] = i / per
		}
	}
	if len(domOf) != n {
		panic(fmt.Sprintf("sim: DomainOf has %d entries for %d procs", len(domOf), n))
	}
	for i, di := range domOf {
		if di < 0 || di >= W {
			panic(fmt.Sprintf("sim: DomainOf[%d] = %d outside [0, %d)", i, di, W))
		}
	}
	par := &parEngine{eng: e, n: n}
	par.cond = sync.NewCond(&par.mu)
	e.par = par
	par.doms = make([]*domain, W)
	for i := range par.doms {
		par.doms[i] = &domain{id: i, par: par, yieldCh: make(chan struct{})}
	}
	e.procs = make([]*Proc, n)
	// Compute-scale sampling stays in id order (the Perturber contract only
	// promises purity per proc id); rng construction, the dominant setup
	// cost, fans out across domains.
	slow := make([]float64, n)
	for i := range slow {
		slow[i] = 1
		if e.cfg.Perturber != nil {
			if s := e.cfg.Perturber.ComputeScale(i); s > 1 {
				slow[i] = s
			}
		}
	}
	var setup sync.WaitGroup
	for di := range par.doms {
		setup.Add(1)
		go func(di int) {
			defer setup.Done()
			for i := 0; i < n; i++ {
				if domOf[i] != di {
					continue
				}
				e.procs[i] = &Proc{
					id:     i,
					engine: e,
					state:  stateReady,
					resume: make(chan struct{}),
					rng:    rand.New(rand.NewSource(e.cfg.Seed*1000003 + int64(i))),
					slow:   slow[i],
					dom:    par.doms[di],
				}
			}
		}(di)
	}
	setup.Wait()
	for _, p := range e.procs {
		p.dom.ready.push(p)
		go func(p *Proc) {
			<-p.resume
			defer func() {
				r := recover()
				par.mu.Lock()
				if r != nil {
					if par.panicV == nil {
						par.panicV = fmt.Sprintf("%v\n\nproc %d stack:\n%s", r, p.id, debug.Stack())
					}
				} else {
					// A proc's disappearance from the ready view is itself a
					// scheduling event: gate it so sibling Sync decisions see
					// this proc until exactly its serial completion moment.
					p.ensureGateLocked()
				}
				p.drainPending()
				p.state = stateDone
				par.cond.Broadcast()
				par.mu.Unlock()
				p.dom.yieldCh <- struct{}{}
			}()
			body(p)
		}(p)
	}
	var workers sync.WaitGroup
	for _, d := range par.doms {
		workers.Add(1)
		go func(d *domain) {
			defer workers.Done()
			par.worker(d)
		}(d)
	}
	workers.Wait()
	if par.panicV != nil {
		panic(par.panicV)
	}
	e.stats = mergeStats(par.doms, n)
	var max float64
	for _, p := range e.procs {
		if p.now > max {
			max = p.now
		}
	}
	return max
}
