// Package sim provides a deterministic virtual-time simulation engine.
//
// The engine runs a fixed set of procs (simulated processes) as goroutines,
// but cooperatively: exactly one proc executes at a time, and the engine
// always resumes the runnable proc with the smallest virtual clock (ties
// broken by proc id). Procs advance their own clocks explicitly and
// communicate through tagged messages whose arrival times are supplied by
// the caller (higher layers compute arrival from a network cost model).
// Because scheduling depends only on virtual time and proc ids, a run is
// fully deterministic for a given seed and program.
package sim

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/perf"
)

// AnySource and AnyTag are wildcards accepted by Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

type procState int

const (
	stateReady procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Message is a delivered message as returned by Recv.
type Message struct {
	Src     int
	Tag     int
	Payload any
	Arrival float64 // virtual time at which the message reached the receiver
	seq     uint64
	// Parallel-engine deposit stamp: the sender's slice key at Send time
	// plus a per-sender sequence number. Together they reproduce the serial
	// engine's global deposit order (see parallel.go); unused (zero) under
	// the serial engine, where seq alone orders deposits.
	stampT float64
	stampI int32
	sseq   uint64
}

// Config parameterizes an Engine.
type Config struct {
	// Seed drives all per-proc random number generators. Two runs of the
	// same program with the same seed produce identical event orders.
	Seed int64
	// Perturber, when non-nil, injects deterministic perturbations into
	// the virtual-time model (see the Perturber interface). nil runs the
	// unperturbed model.
	Perturber Perturber
	// Workers selects the engine: <= 1 runs the classic serial scheduler;
	// > 1 runs the conservative parallel scheduler with that many domain
	// workers (clamped to the number of domains in DomainOf). Virtual-time
	// results are bit-identical either way (DESIGN.md §12).
	Workers int
	// DomainOf maps each proc id to its domain index in [0, Workers).
	// Required when Workers > 1; domains should align with the machine
	// topology (procs sharing a node must share a domain) so that NIC
	// ledgers stay domain-private. Ignored when Workers <= 1.
	DomainOf []int
}

// Perturber perturbs the engine's virtual-time model without breaking
// determinism. Implementations must be pure: any randomness must come from
// the *rand.Rand the engine passes in (seeded from Config.Seed and consumed
// in the engine's serialized execution order), never from wall time or
// global state. internal/fault provides the canonical implementation.
type Perturber interface {
	// ComputeScale returns the multiplicative slowdown applied to every
	// Advance of the given proc (1 = unperturbed). It is sampled once per
	// proc at Run start, so it must be a pure function of the proc id.
	ComputeScale(proc int) float64
	// DeliveryDelay returns extra seconds added to the arrival time of a
	// message from src to dst whose unperturbed arrival is `at` (so loss
	// windows and retransmission models can be pure functions of virtual
	// time). rng is the engine's dedicated perturbation generator;
	// implementations that perturb nothing must not draw.
	DeliveryDelay(src, dst int, at float64, rng *rand.Rand) float64
}

// Engine owns the virtual clock and the proc scheduler.
type Engine struct {
	cfg     Config
	procs   []*Proc
	ready   readyHeap // procs in stateReady, keyed by (readyAt, id)
	dl      dlHeap    // armed RecvUntil deadlines, keyed by (at, id)
	yieldCh chan struct{}
	seq     uint64 // global message sequence for FIFO tie-breaks
	panicV  any
	stopped bool
	stats   Stats
	frng    *rand.Rand // perturbation draws (delivery jitter); seeded, serialized
	par     *parEngine // non-nil when running the parallel scheduler
}

// readyHeap is a binary min-heap of ready procs ordered by (readyAt, id).
type readyHeap []*Proc

func (h readyHeap) less(i, j int) bool {
	if h[i].readyAt != h[j].readyAt {
		return h[i].readyAt < h[j].readyAt
	}
	return h[i].id < h[j].id
}

func (h *readyHeap) push(p *Proc) {
	*h = append(*h, p)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *readyHeap) pop() *Proc {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

func (h readyHeap) peek() *Proc {
	if len(h) == 0 {
		return nil
	}
	return h[0]
}

// NewEngine returns an engine ready for a single Run call.
func NewEngine(cfg Config) *Engine {
	return &Engine{
		cfg:     cfg,
		yieldCh: make(chan struct{}),
		// The perturbation generator exists even without a Perturber so the
		// healthy path differs from the faulty one only in whether draws
		// happen, never in setup.
		frng: rand.New(rand.NewSource(cfg.Seed*999983 + 77)),
	}
}

// blockKind labels why a proc last parked (deadlock diagnostics only).
type blockKind int

const (
	blockNone blockKind = iota
	blockSync
	blockRecv
)

// Proc is a simulated process. All methods must be called only from the
// proc's own body function (the engine guarantees single-threaded access).
type Proc struct {
	id         int
	now        float64
	engine     *Engine
	state      procState
	readyAt    float64
	resume     chan struct{}
	mb         mailbox
	pending    recvSpec // valid while blocked in Recv
	hasPending bool
	rng        *rand.Rand
	blockedOn  blockKind // deadlock-report context (formatted lazily)
	slow       float64   // multiplicative Advance slowdown (1 = healthy)
	pend       pendHeap  // deferred completions ordered by (at, seq)
	pendSeq    uint64
	firing     bool // fireDue reentrancy guard

	deadline    float64 // valid while blocked in RecvUntil
	hasDeadline bool
	dlGen       uint64 // invalidates stale dlHeap entries

	// Parallel-engine state (nil/zero under the serial scheduler).
	dom   *domain // owning domain, nil ⇒ serial engine
	visT  float64 // current slice key time: (visT, id) stamps this slice's sends
	sseq  uint64  // per-proc send counter, tie-breaks equal-stamp deposits
	gated bool    // this slice has passed its gate (reset at slice start)
}

// st returns the Stats block this proc's counters land in: the engine's under
// the serial scheduler, the owning domain's under the parallel one (merged
// deterministically after Run; see parallel.go).
func (p *Proc) st() *Stats {
	if p.dom != nil {
		return &p.dom.stats
	}
	return &p.engine.stats
}

type recvSpec struct {
	src, tag int
}

// --- Indexed mailbox ---
//
// Messages are held in per-(src, tag) FIFO queues so the common exact-match
// Recv is an O(1) map lookup + pop instead of a scan of every queued
// message. Wildcard receives (AnySource and/or AnyTag) scan the *heads* of
// the non-empty queues and pick the matching message with the smallest
// global sequence number — exactly the message a linear scan of a deposit-
// ordered mailbox would return, so the indexing is invisible to program
// order. Per-queue FIFO preserves send order per (src, tag), and the unique
// sequence numbers make the wildcard choice deterministic even though the
// queue map itself iterates in arbitrary order.

// srcTag keys one FIFO queue.
type srcTag struct{ src, tag int }

// msgQueue is a FIFO of messages sharing one (src, tag) key. Popped slots
// are cleared and the backing array is reused once drained.
type msgQueue struct {
	msgs []Message
	head int
}

func (q *msgQueue) empty() bool { return q.head == len(q.msgs) }

// mailbox indexes a proc's undelivered messages. Queues are removed from
// the map the moment they drain (and parked on a free list for reuse), so
// wildcard scans only ever visit queues that hold at least one message.
type mailbox struct {
	queues map[srcTag]*msgQueue
	free   []*msgQueue // drained queues awaiting reuse
	count  int         // total undelivered messages
}

func (mb *mailbox) put(m Message) {
	key := srcTag{m.Src, m.Tag}
	q := mb.queues[key]
	if q == nil {
		if n := len(mb.free); n > 0 {
			q = mb.free[n-1]
			mb.free[n-1] = nil
			mb.free = mb.free[:n-1]
		} else {
			q = &msgQueue{}
		}
		if mb.queues == nil {
			mb.queues = make(map[srcTag]*msgQueue)
		}
		mb.queues[key] = q
	}
	q.msgs = append(q.msgs, m)
	mb.count++
}

func (mb *mailbox) popFrom(key srcTag, q *msgQueue) Message {
	m := q.msgs[q.head]
	q.msgs[q.head] = Message{} // drop payload reference promptly
	q.head++
	mb.count--
	if q.empty() {
		q.msgs = q.msgs[:0]
		q.head = 0
		delete(mb.queues, key)
		mb.free = append(mb.free, q)
	}
	return m
}

// take removes and returns the earliest-deposited message matching spec.
func (mb *mailbox) take(spec recvSpec, st *Stats) (Message, bool) {
	if mb.count == 0 {
		return Message{}, false
	}
	if spec.src != AnySource && spec.tag != AnyTag {
		key := srcTag{spec.src, spec.tag}
		q := mb.queues[key]
		if q == nil {
			return Message{}, false
		}
		st.ExactPops.Inc()
		return mb.popFrom(key, q), true
	}
	// Wildcard: the queue heads are each queue's earliest message, so the
	// earliest matching message overall is the matching head with the
	// smallest sequence number.
	var (
		bestKey srcTag
		bestQ   *msgQueue
		bestSeq uint64
	)
	for key, q := range mb.queues {
		st.WildcardScanned.Inc()
		if spec.src != AnySource && spec.src != key.src {
			continue
		}
		if spec.tag != AnyTag && spec.tag != key.tag {
			continue
		}
		if s := q.msgs[q.head].seq; bestQ == nil || s < bestSeq {
			bestKey, bestQ, bestSeq = key, q, s
		}
	}
	if bestQ == nil {
		return Message{}, false
	}
	st.WildcardPops.Inc()
	return mb.popFrom(bestKey, bestQ), true
}

// takeVis is the parallel engine's take: identical to take for exact specs,
// but a wildcard scan only considers queues whose head deposit-stamp is at or
// below the caller's slice key (visT, id) — deposits from slices the serial
// engine would not have run yet are invisible, and are skipped uncounted so
// WildcardScanned sees exactly the serial engine's nonempty-queue set. The
// pick among visible heads is by minimum (stampT, stampI, sseq), which is the
// serial deposit order. Per-queue stamps are nondecreasing (per-sender sends
// stamp in slice order), so the head check suffices for the whole queue.
func (mb *mailbox) takeVis(spec recvSpec, visT float64, visID int, st *Stats) (Message, bool) {
	if mb.count == 0 {
		return Message{}, false
	}
	if spec.src != AnySource && spec.tag != AnyTag {
		key := srcTag{spec.src, spec.tag}
		q := mb.queues[key]
		if q == nil {
			return Message{}, false
		}
		st.ExactPops.Inc()
		return mb.popFrom(key, q), true
	}
	var (
		bestKey srcTag
		bestQ   *msgQueue
		bestT   float64
		bestI   int32
		bestS   uint64
	)
	for key, q := range mb.queues {
		h := &q.msgs[q.head]
		if h.stampT > visT || (h.stampT == visT && int(h.stampI) > visID) {
			continue // deposited by a serially-later slice: invisible
		}
		st.WildcardScanned.Inc()
		if spec.src != AnySource && spec.src != key.src {
			continue
		}
		if spec.tag != AnyTag && spec.tag != key.tag {
			continue
		}
		if bestQ == nil || h.stampT < bestT ||
			(h.stampT == bestT && (h.stampI < bestI ||
				(h.stampI == bestI && h.sseq < bestS))) {
			bestKey, bestQ, bestT, bestI, bestS = key, q, h.stampT, h.stampI, h.sseq
		}
	}
	if bestQ == nil {
		return Message{}, false
	}
	st.WildcardPops.Inc()
	return mb.popFrom(bestKey, bestQ), true
}

// Run starts n procs executing body and drives them to completion under the
// virtual clock. It returns the maximum virtual finish time across procs.
// Run panics if the procs deadlock (all blocked, none runnable) or if any
// proc body panics (the original panic value is re-raised).
func (e *Engine) Run(n int, body func(p *Proc)) float64 {
	if n <= 0 {
		panic("sim: Run needs n > 0 procs")
	}
	if e.stopped {
		panic("sim: engine already used; create a new Engine per Run")
	}
	e.stopped = true
	if e.cfg.Workers > 1 {
		return e.runParallel(n, body)
	}
	e.procs = make([]*Proc, n)
	for i := 0; i < n; i++ {
		e.procs[i] = &Proc{
			id:     i,
			engine: e,
			state:  stateReady,
			resume: make(chan struct{}),
			rng:    rand.New(rand.NewSource(e.cfg.Seed*1000003 + int64(i))),
			slow:   1,
		}
		if e.cfg.Perturber != nil {
			if s := e.cfg.Perturber.ComputeScale(i); s > 1 {
				e.procs[i].slow = s
			}
		}
	}
	done := 0
	for _, p := range e.procs {
		e.ready.push(p)
		go func(p *Proc) {
			<-p.resume
			defer func() {
				if r := recover(); r != nil {
					e.panicV = fmt.Sprintf("%v\n\nproc %d stack:\n%s", r, p.id, debug.Stack())
				}
				// A finished (or crashed) proc's deferred completions must
				// never fire: cancel them here rather than leaving them live
				// against a dead rank.
				p.drainPending()
				p.state = stateDone
				e.yieldCh <- struct{}{}
			}()
			body(p)
		}(p)
	}
	for {
		next := e.ready.peek()
		// Fire a receive timeout when it is strictly the earliest event the
		// engine could schedule (runnable procs win ties; see timeout.go).
		if tp := e.peekTimeout(); tp != nil && (next == nil || tp.at < next.readyAt) {
			e.fireTimeout()
			continue
		}
		if next == nil {
			if done == n {
				break
			}
			panic("sim: deadlock\n" + e.describeStates())
		}
		if d := uint64(len(e.ready)); d > e.stats.MaxReadyDepth {
			e.stats.MaxReadyDepth = d
		}
		e.ready.pop()
		next.state = stateRunning
		if next.readyAt > next.now {
			next.now = next.readyAt
		}
		e.stats.Resumes.Inc()
		next.resume <- struct{}{}
		<-e.yieldCh
		if e.panicV != nil {
			panic(e.panicV)
		}
		if next.state == stateDone {
			done++
		}
	}
	var max float64
	for _, p := range e.procs {
		if p.now > max {
			max = p.now
		}
	}
	return max
}

func (e *Engine) describeStates() string {
	var b strings.Builder
	for _, p := range e.procs {
		if p.state == stateDone {
			continue
		}
		var on string
		switch p.blockedOn {
		case blockSync:
			on = "Sync"
		case blockRecv:
			on = fmt.Sprintf("Recv(src=%d, tag=%d)", p.pending.src, p.pending.tag)
		default:
			on = "start"
		}
		fmt.Fprintf(&b, "  proc %d: t=%.9f blocked on %s (mailbox %d msgs)\n",
			p.id, p.now, on, p.mb.count)
	}
	return b.String()
}

// NumProcs reports the number of procs in the current run.
func (e *Engine) NumProcs() int { return len(e.procs) }

// MinClock returns the minimum virtual clock across all procs. Because proc
// clocks never move backwards, the value is a nondecreasing lower bound on
// the time of every future event — a safe watermark for Resource.Trim. Under
// the parallel engine it returns the minimum published domain bound instead,
// which lower-bounds every future booking time the same way.
func (e *Engine) MinClock() float64 {
	if e.par != nil {
		return e.par.minClock()
	}
	min := 0.0
	for i, p := range e.procs {
		if i == 0 || p.now < min {
			min = p.now
		}
	}
	return min
}

// ID returns the proc's rank in [0, n).
func (p *Proc) ID() int { return p.id }

// Now returns the proc's virtual clock in seconds.
func (p *Proc) Now() float64 { return p.now }

// MinClock returns the engine-wide minimum proc clock (see Engine.MinClock).
func (p *Proc) MinClock() float64 { return p.engine.MinClock() }

// Rand returns the proc's deterministic random number generator.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Advance moves the proc's clock forward by d seconds (d must be >= 0).
// Under a Perturber, a straggling proc's advances are stretched by its
// compute-scale factor: CPU overheads and I/O waits alike run slow, which
// is how a sick node looks to the rest of the machine.
func (p *Proc) Advance(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: proc %d Advance(%g) negative", p.id, d))
	}
	p.now += d * p.slow
	p.st().Advances.Inc()
	p.fireDue()
}

// AdvanceTo moves the clock forward to t; it is a no-op when t <= Now.
func (p *Proc) AdvanceTo(t float64) {
	if t > p.now {
		p.now = t
		p.st().Advances.Inc()
	}
	p.fireDue()
}

// yield parks the proc and returns control to the scheduler (the engine loop,
// or the owning domain's worker) until resumed.
func (p *Proc) yield() {
	if p.dom != nil {
		p.dom.yieldCh <- struct{}{}
	} else {
		p.engine.yieldCh <- struct{}{}
	}
	<-p.resume
}

// Sync is a pure scheduling point: it parks the proc (still runnable at its
// current clock) and lets the engine resume whichever proc has the smallest
// clock. Call it before acquiring shared resources so bookings happen in
// global virtual-time order. Provided senders never use arrival times before
// their own clocks, no proc can be resumed at a time earlier than a proc
// that already passed a Sync point. When the caller is already the
// earliest-clock runnable proc, Sync returns without a context switch.
func (p *Proc) Sync() {
	if p.dom != nil {
		p.parSync()
		return
	}
	e := p.engine
	if top := e.ready.peek(); top == nil || top.readyAt > p.now ||
		(top.readyAt == p.now && top.id > p.id) {
		return // already first in virtual-time order
	}
	p.state = stateReady
	p.readyAt = p.now
	p.blockedOn = blockSync
	e.ready.push(p)
	p.yield()
}

// Send deposits a message for proc dst with the given arrival time. It does
// not advance the sender's clock; higher layers account for transmit costs
// before computing arrival. Send never blocks (eager buffering).
//
// Ownership: the payload is handed off to the runtime until the receiver's
// Recv returns it; senders must not mutate a payload after Send.
func (p *Proc) Send(dst, tag int, payload any, arrival float64) {
	e := p.engine
	if dst < 0 || dst >= len(e.procs) {
		panic(fmt.Sprintf("sim: proc %d Send to invalid dst %d", p.id, dst))
	}
	if p.dom != nil {
		p.parSend(dst, tag, payload, arrival)
		return
	}
	e.seq++
	e.stats.Sends.Inc()
	if e.cfg.Perturber != nil {
		// Delivery jitter only ever delays a message, so the Sync-ordering
		// invariant (arrival >= sender clock) is preserved.
		if d := e.cfg.Perturber.DeliveryDelay(p.id, dst, arrival, e.frng); d > 0 {
			arrival += d
			e.stats.Perturbed.Inc()
		}
	}
	m := Message{Src: p.id, Tag: tag, Payload: payload, Arrival: arrival, seq: e.seq}
	q := e.procs[dst]
	q.mb.put(m)
	if q.state == stateBlocked && q.hasPending && q.pending.matches(&m) {
		if q.hasDeadline && m.Arrival > q.deadline {
			// The waiter's watchdog expires before this message arrives:
			// wake it at the deadline, empty-handed (RecvUntil rejects the
			// late head via takeBefore).
			q.hasDeadline = false
			q.hasPending = false
			q.state = stateReady
			q.readyAt = q.deadline
			e.stats.Timeouts.Inc()
			e.ready.push(q)
			return
		}
		q.hasDeadline = false
		q.hasPending = false
		q.state = stateReady
		q.readyAt = q.now
		if m.Arrival > q.readyAt {
			q.readyAt = m.Arrival
		}
		e.ready.push(q)
	}
}

func (s *recvSpec) matches(m *Message) bool {
	return (s.src == AnySource || s.src == m.Src) &&
		(s.tag == AnyTag || s.tag == m.Tag)
}

// Recv blocks (in virtual time) until a message matching src and tag is
// available, then removes and returns it. src may be AnySource and tag may
// be AnyTag. Messages from the same source with the same tag are delivered
// in send order; a wildcard receive takes the earliest-deposited matching
// message. The proc's clock advances to at least the arrival time.
//
// Ownership: the returned payload belongs to the receiver; the sender
// relinquished it at Send time.
func (p *Proc) Recv(src, tag int) Message {
	if p.dom != nil {
		return p.parRecv(src, tag)
	}
	spec := recvSpec{src: src, tag: tag}
	for {
		if m, ok := p.mb.take(spec, &p.engine.stats); ok {
			if m.Arrival > p.now {
				p.now = m.Arrival
			}
			p.fireDue()
			p.engine.stats.Recvs.Inc()
			return m
		}
		p.pending = spec
		p.hasPending = true
		p.state = stateBlocked
		p.blockedOn = blockRecv
		p.yield()
	}
}

// TryRecv is a non-blocking Recv; ok is false when no matching message has
// been deposited yet (regardless of its virtual arrival time).
func (p *Proc) TryRecv(src, tag int) (Message, bool) {
	if p.dom != nil {
		return p.parTryRecv(src, tag)
	}
	spec := recvSpec{src: src, tag: tag}
	m, ok := p.mb.take(spec, &p.engine.stats)
	if !ok {
		return Message{}, false
	}
	if m.Arrival > p.now {
		p.now = m.Arrival
	}
	p.fireDue()
	p.engine.stats.Recvs.Inc()
	return m, true
}

// Resource models a shared device (NIC, OST) that serves one request at a
// time. Bookings are kept in a merged interval ledger; Acquire books the
// earliest gap at or after the requested time. All access happens from the
// single running proc, so no locking is needed.
type Resource struct {
	name        string
	busy        []interval // sorted by start, non-overlapping, merged
	trimmedBusy float64    // booked time already dropped by Trim
}

type interval struct{ start, end float64 }

// NewResource creates a named resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Acquire books dur seconds of exclusive use starting no earlier than at,
// returning the booked [start, end) window. dur must be >= 0; a zero-length
// booking returns the earliest instant >= at not inside a busy interval.
func (r *Resource) Acquire(at, dur float64) (start, end float64) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: resource %s Acquire dur %g < 0", r.name, dur))
	}
	start = at
	// First interval that could constrain us: the one with end > at,
	// including an interval that contains at.
	i := sort.Search(len(r.busy), func(k int) bool { return r.busy[k].end > at })
	for ; i < len(r.busy); i++ {
		if r.busy[i].start >= start+dur {
			break // gap before interval i fits
		}
		if r.busy[i].end > start {
			start = r.busy[i].end
		}
	}
	end = start + dur
	r.insert(interval{start, end})
	return start, end
}

// NextFree reports the earliest instant >= at with no booking in progress.
func (r *Resource) NextFree(at float64) float64 {
	i := sort.Search(len(r.busy), func(k int) bool { return r.busy[k].end > at })
	if i < len(r.busy) && r.busy[i].start <= at {
		return r.busy[i].end
	}
	return at
}

// BusyTime reports the total booked duration on the resource, including
// intervals already dropped by Trim.
func (r *Resource) BusyTime() float64 {
	t := r.trimmedBusy
	for _, iv := range r.busy {
		t += iv.end - iv.start
	}
	return t
}

// NumIntervals reports the current ledger length (diagnostics and tests).
func (r *Resource) NumIntervals() int { return len(r.busy) }

// Trim drops ledger intervals that end at or before watermark, keeping the
// ledger compact over long runs. It is safe — bit-identical results — as
// long as no future Acquire or NextFree uses an `at` below watermark; the
// engine's MinClock is such a watermark for well-behaved callers (bookings
// are always made at or after the calling proc's clock). Trimmed time still
// counts toward BusyTime.
func (r *Resource) Trim(watermark float64) {
	i := 0
	for i < len(r.busy) && r.busy[i].end <= watermark {
		r.trimmedBusy += r.busy[i].end - r.busy[i].start
		i++
	}
	if i > 0 {
		n := copy(r.busy, r.busy[i:])
		r.busy = r.busy[:n]
	}
}

func (r *Resource) insert(iv interval) {
	i := sort.Search(len(r.busy), func(k int) bool { return r.busy[k].start >= iv.start })
	r.busy = append(r.busy, interval{})
	copy(r.busy[i+1:], r.busy[i:])
	r.busy[i] = iv
	// Merge with neighbors that touch (zero-length gaps collapse), eagerly,
	// so adjacent bookings never fragment the ledger.
	if i > 0 && r.busy[i-1].end >= r.busy[i].start {
		r.busy[i-1].end = maxf(r.busy[i-1].end, r.busy[i].end)
		r.busy = append(r.busy[:i], r.busy[i+1:]...)
		i--
	}
	for i+1 < len(r.busy) && r.busy[i].end >= r.busy[i+1].start {
		r.busy[i].end = maxf(r.busy[i].end, r.busy[i+1].end)
		r.busy = append(r.busy[:i+1], r.busy[i+2:]...)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Stats reports scheduler and mailbox counters for performance diagnosis.
type Stats struct {
	Resumes         perf.Counter // proc resumptions (context switches)
	Sends           perf.Counter // messages deposited
	Recvs           perf.Counter // messages delivered
	ExactPops       perf.Counter // receives served by the exact (src,tag) index
	WildcardPops    perf.Counter // receives served by the wildcard head scan
	WildcardScanned perf.Counter // queue heads examined by wildcard scans
	Perturbed       perf.Counter // messages delayed by the fault perturber
	Timeouts        perf.Counter // RecvUntil watchdogs that fired empty-handed
	Advances        perf.Counter // clock advances (Advance + forward AdvanceTo)
	MaxReadyDepth   uint64       // high-water mark of the ready queue
}

// Events returns the total scheduler-visible event count (resumes plus
// message deposits and deliveries) — the numerator of events/sec.
func (s Stats) Events() uint64 {
	return s.Resumes.Value() + s.Sends.Value() + s.Recvs.Value()
}

// Stats returns the engine's counters (valid after Run).
func (e *Engine) Stats() Stats { return e.stats }
