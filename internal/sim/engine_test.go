package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAdvanceAndNow(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	end := e.Run(1, func(p *Proc) {
		if p.Now() != 0 {
			t.Errorf("initial Now = %g, want 0", p.Now())
		}
		p.Advance(1.5)
		p.Advance(0.25)
		if p.Now() != 1.75 {
			t.Errorf("Now = %g, want 1.75", p.Now())
		}
		p.AdvanceTo(1.0) // no-op, backwards
		if p.Now() != 1.75 {
			t.Errorf("AdvanceTo moved clock backwards: %g", p.Now())
		}
		p.AdvanceTo(2.0)
		if p.Now() != 2.0 {
			t.Errorf("AdvanceTo(2) -> %g", p.Now())
		}
	})
	if end != 2.0 {
		t.Errorf("Run returned %g, want 2.0", end)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from negative Advance")
		}
	}()
	NewEngine(Config{}).Run(1, func(p *Proc) { p.Advance(-1) })
}

func TestSendRecvBasic(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Run(2, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Advance(1.0)
			p.Send(1, 7, "hello", p.Now()+0.5)
		case 1:
			m := p.Recv(0, 7)
			if m.Payload.(string) != "hello" {
				t.Errorf("payload = %v", m.Payload)
			}
			if m.Src != 0 || m.Tag != 7 {
				t.Errorf("src/tag = %d/%d", m.Src, m.Tag)
			}
			if p.Now() != 1.5 {
				t.Errorf("receiver clock = %g, want 1.5 (arrival)", p.Now())
			}
		}
	})
}

func TestRecvWildcards(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Run(3, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(2, 10, 100, 1.0)
		case 1:
			p.Send(2, 20, 200, 2.0)
		case 2:
			a := p.Recv(AnySource, 20)
			if a.Payload.(int) != 200 {
				t.Errorf("tag-selected recv got %v", a.Payload)
			}
			b := p.Recv(AnySource, AnyTag)
			if b.Payload.(int) != 100 {
				t.Errorf("wildcard recv got %v", b.Payload)
			}
		}
	})
}

func TestFIFOPerSourceTag(t *testing.T) {
	const n = 50
	e := NewEngine(Config{Seed: 1})
	e.Run(2, func(p *Proc) {
		if p.ID() == 0 {
			for i := 0; i < n; i++ {
				p.Send(1, 3, i, p.Now()) // all arrive at t=0
			}
		} else {
			for i := 0; i < n; i++ {
				m := p.Recv(0, 3)
				if m.Payload.(int) != i {
					t.Fatalf("message %d out of order: got %v", i, m.Payload)
				}
			}
		}
	})
}

// TestWildcardInterleavedWithTagged pins the ordering contract the indexed
// mailbox must uphold: per-(src,tag) streams are FIFO, wildcard receives
// take the earliest-deposited matching message, and interleaving tagged and
// wildcard receives never reorders either view.
//
// Proc 0 runs to completion first (smallest id at t=0), then proc 1, so the
// deposit order at proc 2 is a0 a1 a2 b0 b1 c0.
func TestWildcardInterleavedWithTagged(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Run(3, func(p *Proc) {
		switch p.ID() {
		case 0:
			for _, s := range []string{"a0", "a1", "a2"} {
				p.Send(2, 1, s, p.Now())
			}
		case 1:
			p.Advance(1e-9) // deposit strictly after proc 0's sends
			for _, s := range []string{"b0", "b1"} {
				p.Send(2, 1, s, p.Now())
			}
			p.Send(2, 2, "c0", p.Now())
		case 2:
			p.AdvanceTo(1) // everything already deposited when we start
			steps := []struct {
				src, tag int
				want     string
			}{
				{1, 2, "c0"},              // exact match skips earlier tag-1 traffic
				{AnySource, 1, "a0"},      // earliest deposit wins among a0/b0
				{0, 1, "a1"},              // FIFO within (0,1) despite the wildcard pop
				{AnySource, AnyTag, "a2"}, // full wildcard: earliest remaining deposit
				{AnySource, AnyTag, "b0"}, // then the (1,1) stream, still in order
				{1, 1, "b1"},              // tagged tail of the wildcard-drained stream
			}
			for i, s := range steps {
				m := p.Recv(s.src, s.tag)
				if m.Payload.(string) != s.want {
					t.Fatalf("step %d: Recv(%d,%d) = %v, want %q",
						i, s.src, s.tag, m.Payload, s.want)
				}
			}
		}
	})
}

func TestTryRecv(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Run(2, func(p *Proc) {
		switch p.ID() {
		case 0:
			if _, ok := p.TryRecv(1, AnyTag); ok {
				t.Error("TryRecv found message before any send")
			}
			m := p.Recv(1, 1) // blocks until proc 1 sends
			if m.Payload.(int) != 42 {
				t.Errorf("got %v", m.Payload)
			}
		case 1:
			p.Advance(3)
			p.Send(0, 1, 42, p.Now())
		}
	})
}

// TestSchedulerOrder verifies the engine always runs the proc with the
// smallest virtual clock, so cross-proc event interleavings follow virtual
// time rather than goroutine scheduling.
func TestSchedulerOrder(t *testing.T) {
	var order []int
	e := NewEngine(Config{Seed: 1})
	e.Run(3, func(p *Proc) {
		// Proc i advances by i+1 each step; record who acts at each turn.
		for step := 0; step < 3; step++ {
			order = append(order, p.ID())
			p.Advance(float64(p.ID() + 1))
			p.Sync() // scheduling point: hand control to the min-clock proc
		}
	})
	// Clocks: p0 hits 1,2,3; p1 hits 2,4,6; p2 hits 3,6,9.
	// Turn order by (time, id): p0@0 p1@0 p2@0 p0@1 p0@2 p1@2 p0=done p2@3 p1@4 p2@6 p2... -> p2@6? p1@6 done
	want := []int{0, 1, 2, 0, 0, 1, 2, 1, 2}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("scheduling order = %v, want %v", order, want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(Config{Seed: 42})
		finish := make([]float64, 8)
		e.Run(8, func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Advance(p.Rand().Float64() * 1e-3) // random per-rank compute time
				p.Send((p.ID()+1)%8, 5, p.ID(), p.Now()+1e-6)
				m := p.Recv(AnySource, 5)
				p.AdvanceTo(m.Arrival)
			}
			finish[p.ID()] = p.Now()
		})
		return finish
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d finish differs across runs: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	NewEngine(Config{}).Run(2, func(p *Proc) {
		p.Recv(AnySource, AnyTag) // nobody ever sends
	})
}

func TestBodyPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected body panic to propagate")
		}
		// The engine re-raises the panic with the originating proc's
		// stack attached for diagnosis.
		s, ok := r.(string)
		if !ok || !strings.HasPrefix(s, "boom") || !strings.Contains(s, "proc 1 stack") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	NewEngine(Config{}).Run(3, func(p *Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
	})
}

func TestRunReturnsMaxFinishTime(t *testing.T) {
	e := NewEngine(Config{})
	end := e.Run(4, func(p *Proc) { p.Advance(float64(p.ID())) })
	if end != 3 {
		t.Errorf("Run = %g, want 3", end)
	}
}

func TestResourceSequentialBookings(t *testing.T) {
	r := NewResource("ost0")
	s, e := r.Acquire(0, 10)
	if s != 0 || e != 10 {
		t.Fatalf("first booking [%g,%g), want [0,10)", s, e)
	}
	s, e = r.Acquire(0, 5) // must queue behind the first
	if s != 10 || e != 15 {
		t.Fatalf("second booking [%g,%g), want [10,15)", s, e)
	}
	s, e = r.Acquire(100, 1)
	if s != 100 || e != 101 {
		t.Fatalf("late booking [%g,%g), want [100,101)", s, e)
	}
	if got := r.BusyTime(); got != 16 {
		t.Errorf("BusyTime = %g, want 16", got)
	}
}

func TestResourceGapFilling(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 2)         // [0,2)
	r.Acquire(10, 2)        // [10,12)
	s, e := r.Acquire(1, 3) // fits in [2,10) gap starting at 2
	if s != 2 || e != 5 {
		t.Fatalf("gap booking [%g,%g), want [2,5)", s, e)
	}
	s, e = r.Acquire(0, 6) // gap [5,10) too small? 10-5=5 < 6 -> after 12
	if s != 12 || e != 18 {
		t.Fatalf("oversize booking [%g,%g), want [12,18)", s, e)
	}
	s, e = r.Acquire(0, 5) // exactly fits [5,10)
	if s != 5 || e != 10 {
		t.Fatalf("exact-fit booking [%g,%g), want [5,10)", s, e)
	}
}

// TestResourceAdjacentBookingsStayCompact pins the eager-merge behaviour of
// the interval ledger: back-to-back bookings must collapse into a single
// interval instead of accumulating one entry per request.
func TestResourceAdjacentBookingsStayCompact(t *testing.T) {
	r := NewResource("ost")
	at := 0.0
	for i := 0; i < 1000; i++ {
		_, end := r.Acquire(at, 0.5)
		at = end
	}
	if n := r.NumIntervals(); n != 1 {
		t.Fatalf("ledger holds %d intervals after adjacent bookings, want 1", n)
	}
	if got := r.BusyTime(); got != 500 {
		t.Errorf("BusyTime = %g, want 500", got)
	}
	// Out-of-order bookings that exactly fill a gap must merge too.
	r2 := NewResource("gap")
	r2.Acquire(0, 1) // [0,1)
	r2.Acquire(2, 1) // [2,3)
	r2.Acquire(0, 1) // fills [1,2)
	if n := r2.NumIntervals(); n != 1 {
		t.Fatalf("gap fill left %d intervals, want 1", n)
	}
}

// TestResourceTrim verifies Trim keeps results bit-identical for bookings at
// or after the watermark while shrinking the ledger and preserving BusyTime.
func TestResourceTrim(t *testing.T) {
	build := func() *Resource {
		r := NewResource("frag")
		for i := 0; i < 100; i++ {
			r.Acquire(float64(3*i), 1) // fragmented: [0,1) [3,4) [6,7) ...
		}
		return r
	}
	plain, trimmed := build(), build()
	trimmed.Trim(150)
	if n := trimmed.NumIntervals(); n >= plain.NumIntervals() {
		t.Fatalf("Trim did not shrink the ledger: %d vs %d", n, plain.NumIntervals())
	}
	if a, b := plain.BusyTime(), trimmed.BusyTime(); a != b {
		t.Fatalf("Trim changed BusyTime: %g vs %g", b, a)
	}
	// Future bookings at or after the watermark behave identically.
	for i := 0; i < 50; i++ {
		at := 150 + float64(7*i%40)
		s1, e1 := plain.Acquire(at, 0.9)
		s2, e2 := trimmed.Acquire(at, 0.9)
		if s1 != s2 || e1 != e2 {
			t.Fatalf("booking %d diverged after Trim: [%g,%g) vs [%g,%g)", i, s2, e2, s1, e1)
		}
	}
	if a, b := plain.BusyTime(), trimmed.BusyTime(); a != b {
		t.Errorf("BusyTime diverged after post-trim bookings: %g vs %g", b, a)
	}
}

func TestResourceNextFree(t *testing.T) {
	r := NewResource("x")
	r.Acquire(5, 5) // [5,10)
	if got := r.NextFree(0); got != 0 {
		t.Errorf("NextFree(0) = %g, want 0", got)
	}
	if got := r.NextFree(7); got != 10 {
		t.Errorf("NextFree(7) = %g, want 10", got)
	}
	if got := r.NextFree(11); got != 11 {
		t.Errorf("NextFree(11) = %g, want 11", got)
	}
}

// Property: for any sequence of bookings, intervals in the ledger never
// overlap and every booking is at least as long as requested and no earlier
// than requested.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("p")
		type booking struct{ s, e float64 }
		var got []booking
		n := int(nOps)%64 + 1
		for i := 0; i < n; i++ {
			at := rng.Float64() * 100
			dur := rng.Float64() * 10
			s, e := r.Acquire(at, dur)
			if s < at {
				t.Logf("booking starts before requested: %g < %g", s, at)
				return false
			}
			if e-s < dur-1e-12 {
				t.Logf("booking shorter than requested: %g < %g", e-s, dur)
				return false
			}
			got = append(got, booking{s, e})
		}
		// Verify pairwise non-overlap of all returned (positive) bookings.
		for i := range got {
			for j := i + 1; j < len(got); j++ {
				a, b := got[i], got[j]
				if a.s < b.e && b.s < a.e && a.e-a.s > 0 && b.e-b.s > 0 {
					t.Logf("overlap [%g,%g) vs [%g,%g)", a.s, a.e, b.s, b.e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEngineReusePanics(t *testing.T) {
	e := NewEngine(Config{})
	e.Run(1, func(p *Proc) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on engine reuse")
		}
	}()
	e.Run(1, func(p *Proc) {})
}

func TestEngineStats(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Run(2, func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 1, nil, p.Now())
		} else {
			p.Recv(0, 1)
		}
	})
	st := e.Stats()
	if st.Sends != 1 {
		t.Errorf("sends = %d want 1", st.Sends)
	}
	if st.Resumes < 2 {
		t.Errorf("resumes = %d want >= 2", st.Resumes)
	}
}

func TestSyncFastPath(t *testing.T) {
	// A proc that is already the minimum-clock runnable proc must pass
	// Sync without yielding (observable via unchanged resume count).
	e := NewEngine(Config{Seed: 1})
	e.Run(2, func(p *Proc) {
		if p.ID() == 0 {
			before := e.Stats().Resumes
			p.Sync() // proc 1 is ready at t=0 with higher id -> no yield
			if e.Stats().Resumes != before {
				t.Error("Sync yielded despite being first in order")
			}
			p.Advance(1)
			p.Sync() // now proc 1 (t=0) must run first
			if e.Stats().Resumes == before {
				t.Error("Sync did not yield to an earlier proc")
			}
		}
	})
}
