package sim

// Tests for the fault-injection hook (Config.Perturber) and for the
// Resource.Trim watermark-boundary contract the fault experiments lean on.

import (
	"math/rand"
	"testing"
)

// testPerturber is a minimal Perturber: fixed per-proc compute scales and a
// fixed per-message delivery delay.
type testPerturber struct {
	scale map[int]float64
	delay float64
}

func (tp testPerturber) ComputeScale(proc int) float64 {
	if s, ok := tp.scale[proc]; ok {
		return s
	}
	return 1
}

func (tp testPerturber) DeliveryDelay(src, dst int, at float64, rng *rand.Rand) float64 {
	return tp.delay
}

func TestPerturberComputeScale(t *testing.T) {
	var fast, slow float64
	e := NewEngine(Config{Seed: 1, Perturber: testPerturber{scale: map[int]float64{1: 4}}})
	e.Run(2, func(p *Proc) {
		p.Advance(1.0)
		if p.ID() == 0 {
			fast = p.Now()
		} else {
			slow = p.Now()
		}
	})
	if fast != 1.0 {
		t.Errorf("unperturbed proc advanced to %g, want 1", fast)
	}
	if slow != 4.0 {
		t.Errorf("straggler proc advanced to %g, want 4 (scale 4)", slow)
	}
}

func TestPerturberDeliveryDelay(t *testing.T) {
	e := NewEngine(Config{Seed: 1, Perturber: testPerturber{delay: 0.25}})
	e.Run(2, func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, "x", 1.0)
		} else {
			p.Recv(0, 7)
			if p.Now() != 1.25 {
				t.Errorf("arrival = %g, want 1.25 (1.0 + 0.25 delay)", p.Now())
			}
		}
	})
	if got := e.Stats().Perturbed.Value(); got != 1 {
		t.Errorf("Perturbed counter = %d, want 1", got)
	}
}

// TestPerturberNilMatchesZero checks that installing a perturber that
// perturbs nothing changes nothing: same end time, no counted perturbations.
func TestPerturberNilMatchesZero(t *testing.T) {
	run := func(pert Perturber) float64 {
		e := NewEngine(Config{Seed: 42, Perturber: pert})
		return e.Run(4, func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Advance(p.Rand().Float64() * 1e-3)
				p.Send((p.ID()+1)%4, 1, i, p.Now()+1e-4)
				p.Recv((p.ID()+3)%4, 1)
			}
		})
	}
	plain := run(nil)
	zero := run(testPerturber{})
	if plain != zero {
		t.Errorf("zero perturber shifted the end time: %x vs %x", zero, plain)
	}
}

// TestPerturberDeterminism runs a jittery workload twice; the perturbation
// RNG is seeded from the run seed, so end times must be bit-identical.
func TestPerturberDeterminism(t *testing.T) {
	run := func() float64 {
		e := NewEngine(Config{Seed: 7, Perturber: rngPerturber{}})
		return e.Run(4, func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Send((p.ID()+1)%4, 1, i, p.Now())
				p.Recv((p.ID()+3)%4, 1)
			}
		})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("perturbed runs diverged: %x vs %x", a, b)
	}
}

// rngPerturber draws its delay from the engine's perturbation RNG, like the
// real fault plans do.
type rngPerturber struct{}

func (rngPerturber) ComputeScale(proc int) float64 { return 1 }
func (rngPerturber) DeliveryDelay(src, dst int, at float64, rng *rand.Rand) float64 {
	return rng.Float64() * 1e-4
}

// TestResourceTrimWatermarkBoundary pins the boundary semantics of Trim:
// an interval ending exactly at the watermark is dropped, one starting
// exactly there is kept, BusyTime is unchanged, and bookings at the
// watermark itself land identically on trimmed and untrimmed ledgers.
func TestResourceTrimWatermarkBoundary(t *testing.T) {
	const w = 100.0
	build := func() *Resource {
		r := NewResource("edge")
		r.Acquire(w-10, 1) // [90,91): strictly before
		r.Acquire(w-1, 1)  // [99,100): ends exactly at the watermark
		r.Acquire(w, 1)    // [100,101): starts exactly at the watermark
		return r
	}
	plain, trimmed := build(), build()
	trimmed.Trim(w)
	if n := trimmed.NumIntervals(); n != 1 {
		t.Fatalf("ledger holds %d intervals after boundary trim, want 1", n)
	}
	if a, b := plain.BusyTime(), trimmed.BusyTime(); a != b {
		t.Fatalf("boundary trim changed BusyTime: %g vs %g", b, a)
	}
	if a, b := plain.NextFree(w), trimmed.NextFree(w); a != b {
		t.Fatalf("NextFree(watermark) differs: %g vs %g", b, a)
	}
	// A booking at exactly the watermark must see the kept interval and
	// queue behind it identically.
	s1, e1 := plain.Acquire(w, 2)
	s2, e2 := trimmed.Acquire(w, 2)
	if s1 != s2 || e1 != e2 {
		t.Fatalf("Acquire(watermark) diverged: [%g,%g) vs [%g,%g)", s2, e2, s1, e1)
	}
	if s1 != w+1 {
		t.Fatalf("Acquire(watermark) booked at %g, want %g (behind kept interval)", s1, w+1)
	}
}

// TestTrimAtMinClockInRun exercises the watermark contract in situ: procs
// book a shared resource, trim it at MinClock mid-run, and keep booking.
// The end time must match a run that never trims.
func TestTrimAtMinClockInRun(t *testing.T) {
	run := func(trim bool) float64 {
		r := NewResource("shared")
		e := NewEngine(Config{Seed: 3})
		return e.Run(3, func(p *Proc) {
			for i := 0; i < 30; i++ {
				_, end := r.Acquire(p.Now(), 1e-3)
				p.AdvanceTo(end)
				if trim && i%7 == p.ID() {
					r.Trim(p.MinClock())
				}
				p.Sync()
			}
		})
	}
	plain := run(false)
	trimmed := run(true)
	if plain != trimmed {
		t.Errorf("trimming at MinClock changed the run: %x vs %x", trimmed, plain)
	}
}
