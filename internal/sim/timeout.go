package sim

import "fmt"

// Deadline receives: the failure-detection primitive.
//
// RecvUntil is Recv with a virtual-time watchdog. A blocked proc cannot
// advance its own clock, so — unlike the deferred completions in pending.go,
// which fire from the proc's own progress points — a receive timeout must be
// fired by the scheduler: the engine keeps a min-heap of armed deadlines
// beside the ready heap and, whenever every runnable proc's resume time lies
// past the earliest armed deadline (or none is runnable at all), wakes that
// waiter empty-handed at exactly its deadline. Deadlines are pure virtual
// time, so a run with watchdogs that never fire is bit-identical to one
// using plain Recv, and one where they do fire is as deterministic as any
// other schedule.
//
// Tie rule: a runnable proc at the same virtual time as a deadline runs
// first. A timeout fires only when it is strictly the earliest thing the
// engine could do — so a message sent "just in time" still wins.

// dlEntry is one armed deadline. Entries are lazily invalidated: a proc that
// was woken by a matching Send (or re-armed a later deadline) leaves its old
// entry in the heap, recognized as stale by the generation counter.
type dlEntry struct {
	p   *Proc
	at  float64
	gen uint64
}

// dlHeap is a binary min-heap of armed deadlines keyed by (at, proc id).
type dlHeap []dlEntry

func (h dlHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].p.id < h[j].p.id
}

func (h *dlHeap) push(e dlEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *dlHeap) pop() dlEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = dlEntry{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// stale reports whether the entry no longer represents an armed deadline.
func (e dlEntry) stale() bool {
	return !e.p.hasDeadline || e.p.dlGen != e.gen
}

// peekTimeout discards stale entries and returns the earliest armed
// deadline, or nil.
func (e *Engine) peekTimeout() *dlEntry {
	for len(e.dl) > 0 {
		if e.dl[0].stale() {
			e.dl.pop()
			continue
		}
		return &e.dl[0]
	}
	return nil
}

// fireTimeout wakes the earliest armed waiter empty-handed at its deadline.
func (e *Engine) fireTimeout() {
	ent := e.dl.pop()
	p := ent.p
	p.hasDeadline = false
	p.hasPending = false
	p.state = stateReady
	p.readyAt = ent.at
	e.stats.Timeouts.Inc()
	e.ready.push(p)
}

// takeBefore pops the head of the exact (src, tag) queue only if its arrival
// does not exceed the deadline. RecvUntil delivers in send order, exactly
// like Recv; a head that arrives past the deadline counts as a timeout.
func (mb *mailbox) takeBefore(spec recvSpec, deadline float64, st *Stats) (Message, bool) {
	if mb.count == 0 {
		return Message{}, false
	}
	key := srcTag{spec.src, spec.tag}
	q := mb.queues[key]
	if q == nil || q.msgs[q.head].Arrival > deadline {
		return Message{}, false
	}
	st.ExactPops.Inc()
	return mb.popFrom(key, q), true
}

// RecvUntil blocks until a message with the exact (src, tag) arrives with
// arrival time <= deadline, returning (msg, true); if the proc's clock
// reaches the deadline first, it returns (Message{}, false) with the clock
// advanced to exactly the deadline. Wildcards are not supported: failure
// detection is always about a specific peer. A deadline already in the past
// degenerates to a TryRecv of messages that have truly arrived.
func (p *Proc) RecvUntil(src, tag int, deadline float64) (Message, bool) {
	if src == AnySource || tag == AnyTag {
		panic(fmt.Sprintf("sim: proc %d RecvUntil with wildcard (src=%d, tag=%d)", p.id, src, tag))
	}
	spec := recvSpec{src: src, tag: tag}
	if p.dom != nil {
		return p.parRecvUntil(spec, deadline)
	}
	for {
		if m, ok := p.mb.takeBefore(spec, deadline, p.st()); ok {
			if m.Arrival > p.now {
				p.now = m.Arrival
			}
			p.fireDue()
			p.st().Recvs.Inc()
			return m, true
		}
		if p.now >= deadline {
			p.fireDue()
			return Message{}, false
		}
		p.pending = spec
		p.hasPending = true
		p.state = stateBlocked
		p.blockedOn = blockRecv
		p.deadline = deadline
		p.hasDeadline = true
		p.dlGen++
		p.engine.dl.push(dlEntry{p: p, at: deadline, gen: p.dlGen})
		p.yield()
		p.hasDeadline = false
	}
}
