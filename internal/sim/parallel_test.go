package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// runStats runs body under the given worker count and returns the end time
// and the engine's merged stats.
func runStats(t *testing.T, n, workers int, domainOf []int, seed int64, body func(p *Proc)) (float64, Stats) {
	t.Helper()
	e := NewEngine(Config{Seed: seed, Workers: workers, DomainOf: domainOf})
	end := e.Run(n, body)
	return end, e.Stats()
}

// exerciser is a message-heavy torture body: ring sends, wildcard receives,
// random compute, Sync points, self-sends and RecvUntil watchdogs, all driven
// by the proc's seeded rng so every run is deterministic.
func exerciser(n int) func(p *Proc) {
	const lat = 5e-6
	return func(p *Proc) {
		me := p.ID()
		next := (me + 1) % n
		prev := (me + n - 1) % n
		for round := 0; round < 8; round++ {
			p.Advance(p.Rand().Float64() * 1e-4)
			p.Sync()
			p.Send(next, round, []int{me, round}, p.Now()+lat)
			m := p.Recv(prev, round)
			if m.Src != prev {
				panic("wrong src")
			}
			if round%3 == 0 {
				// Zero-latency self-send: deposited and immediately taken.
				p.Send(me, 100+round, round, p.Now())
				if mm, ok := p.TryRecv(me, 100+round); !ok || mm.Payload.(int) != round {
					panic("self-send lost")
				}
			}
			if round%4 == 1 {
				// Watchdog that never fires: the peer's message arrives first.
				p.Send(next, 200+round, nil, p.Now()+lat)
				if _, ok := p.RecvUntil(prev, 200+round, p.Now()+1.0); !ok {
					panic("watchdog fired under a timely sender")
				}
			}
			if round == 5 && me == 0 {
				// Watchdog that must fire: nobody sends on this tag.
				if _, ok := p.RecvUntil(prev, 999, p.Now()+3e-5); ok {
					panic("phantom message")
				}
			}
			// Wildcard receive of a second tagged message.
			p.Send(next, 300+round, me, p.Now()+lat)
			wm := p.Recv(AnySource, 300+round)
			if wm.Src != prev {
				panic("wildcard matched wrong queue")
			}
		}
	}
}

// TestParallelMatchesSerial pins bit-identical end times and Stats between
// the serial scheduler and the parallel one at several worker counts and
// domain shapes.
func TestParallelMatchesSerial(t *testing.T) {
	const n = 32
	body := exerciser(n)
	wantEnd, wantStats := runStats(t, n, 1, nil, 7, body)
	for _, workers := range []int{2, 3, 4, 8} {
		for _, shape := range []string{"blocks", "stripes"} {
			var domainOf []int
			if shape == "stripes" {
				domainOf = make([]int, n)
				for i := range domainOf {
					domainOf[i] = i % workers
				}
			}
			end, st := runStats(t, n, workers, domainOf, 7, body)
			if end != wantEnd {
				t.Errorf("workers=%d %s: end %x != serial %x", workers, shape, end, wantEnd)
			}
			if st != wantStats {
				t.Errorf("workers=%d %s: stats %+v != serial %+v", workers, shape, st, wantStats)
			}
		}
	}
}

// TestParallelRunTwiceIdentical pins run-twice determinism of the parallel
// scheduler itself.
func TestParallelRunTwiceIdentical(t *testing.T) {
	const n = 24
	body := exerciser(n)
	end1, st1 := runStats(t, n, 4, nil, 3, body)
	end2, st2 := runStats(t, n, 4, nil, 3, body)
	if end1 != end2 || st1 != st2 {
		t.Fatalf("parallel run not reproducible: %x/%x, %+v vs %+v", end1, end2, st1, st2)
	}
}

// TestParallelPerturbed checks identity when the perturber draws from the
// engine's serialized frng — the draw order is part of the gate contract.
type parTestPerturber struct{}

func (parTestPerturber) ComputeScale(proc int) float64 { return 1 + float64(proc%3)*0.5 }
func (parTestPerturber) DeliveryDelay(src, dst int, at float64, rng *rand.Rand) float64 {
	if (src+dst)%4 == 0 {
		return rng.Float64() * 2e-6
	}
	return 0
}

func TestParallelPerturbed(t *testing.T) {
	const n = 16
	body := exerciser(n)
	run := func(workers int) (float64, Stats) {
		e := NewEngine(Config{Seed: 11, Workers: workers, Perturber: parTestPerturber{}})
		end := e.Run(n, body)
		return end, e.Stats()
	}
	wantEnd, wantStats := run(1)
	for _, w := range []int{2, 4} {
		end, st := run(w)
		if end != wantEnd || st != wantStats {
			t.Errorf("workers=%d: end %x stats %+v; serial end %x stats %+v",
				w, end, st, wantEnd, wantStats)
		}
	}
}

// TestStatsMergeDeterministic checks the per-domain Stats merge directly:
// counters sum, and MaxReadyDepth pins to n (the serial high-water mark).
func TestStatsMergeDeterministic(t *testing.T) {
	doms := []*domain{{}, {}, {}}
	doms[0].stats.Resumes.Add(3)
	doms[1].stats.Resumes.Add(5)
	doms[2].stats.Sends.Add(7)
	doms[0].stats.Timeouts.Add(1)
	doms[2].stats.Advances.Add(9)
	s := mergeStats(doms, 42)
	if got := s.Resumes.Value(); got != 8 {
		t.Errorf("Resumes = %d, want 8", got)
	}
	if got := s.Sends.Value(); got != 7 {
		t.Errorf("Sends = %d, want 7", got)
	}
	if got := s.Timeouts.Value(); got != 1 {
		t.Errorf("Timeouts = %d, want 1", got)
	}
	if got := s.Advances.Value(); got != 9 {
		t.Errorf("Advances = %d, want 9", got)
	}
	if s.MaxReadyDepth != 42 {
		t.Errorf("MaxReadyDepth = %d, want 42", s.MaxReadyDepth)
	}
}

// TestParallelEmptyDomain runs with a domain that owns no procs at all: its
// worker must park and terminate cleanly without wedging the others.
func TestParallelEmptyDomain(t *testing.T) {
	const n = 8
	domainOf := make([]int, n)
	for i := range domainOf {
		domainOf[i] = 0
		if i >= n/2 {
			domainOf[i] = 2 // domain 1 stays empty
		}
	}
	body := exerciser(n)
	wantEnd, wantStats := runStats(t, n, 1, nil, 5, body)
	end, st := runStats(t, n, 3, domainOf, 5, body)
	if end != wantEnd || st != wantStats {
		t.Fatalf("empty-domain run diverged: end %x vs %x, %+v vs %+v", end, wantEnd, st, wantStats)
	}
}

// TestParallelHorizonMessage exercises a cross-domain message arriving at
// exactly the receiving slice's key time: the receiver at (t, idHi) must
// still see a deposit stamped (t, idLo) from a same-time sender with a lower
// id — the lexicographic gate admits the sender first.
func TestParallelHorizonMessage(t *testing.T) {
	const n = 2
	body := func(p *Proc) {
		if p.ID() == 0 {
			// Zero-latency cross-proc send at the shared start time: arrival
			// equals the receiver's clock, the tightest horizon there is.
			p.Send(1, 1, "edge", p.Now())
		} else {
			m := p.Recv(0, 1)
			if m.Payload.(string) != "edge" {
				panic("lost horizon message")
			}
			if m.Arrival != 0 {
				panic("horizon arrival moved")
			}
		}
	}
	wantEnd, wantStats := runStats(t, n, 1, nil, 1, body)
	end, st := runStats(t, n, 2, []int{0, 1}, 1, body)
	if end != wantEnd || st != wantStats {
		t.Fatalf("horizon run diverged: end %x vs %x, %+v vs %+v", end, wantEnd, st, wantStats)
	}
}

// TestParallelTimeoutRace pins the deadline tie rules across engines: a
// message sent "just in time" (arrival == deadline) beats the watchdog, one
// past it loses, under both schedulers and cross-domain placement.
func TestParallelTimeoutRace(t *testing.T) {
	for _, late := range []bool{false, true} {
		body := func(p *Proc) {
			const deadline = 1e-3
			if p.ID() == 0 {
				arrival := deadline
				if late {
					arrival = deadline * 1.5
				}
				p.Advance(2e-4)
				p.Send(1, 5, "cargo", arrival)
				p.Recv(1, 6)
			} else {
				m, ok := p.RecvUntil(0, 5, deadline)
				if ok == late {
					panic(fmt.Sprintf("late=%v but delivery ok=%v", late, ok))
				}
				if ok && m.Arrival != deadline {
					panic("just-in-time arrival mangled")
				}
				if !ok && p.Now() != deadline {
					panic("timeout did not land exactly on the deadline")
				}
				p.Send(0, 6, nil, p.Now()+1e-6)
			}
		}
		wantEnd, wantStats := runStats(t, 2, 1, nil, 1, body)
		end, st := runStats(t, 2, 2, []int{0, 1}, 1, body)
		if end != wantEnd || st != wantStats {
			t.Fatalf("late=%v diverged: end %x vs %x, %+v vs %+v", late, end, wantEnd, st, wantStats)
		}
	}
}

// TestParallelDeadlockPanics checks that an all-blocked parallel run panics
// with the same deadlock report shape as the serial engine.
func TestParallelDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic from deadlocked run")
		}
		if s, ok := r.(string); !ok || len(s) < len("sim: deadlock") || s[:13] != "sim: deadlock" {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e := NewEngine(Config{Seed: 1, Workers: 2})
	e.Run(2, func(p *Proc) {
		p.Recv(1-p.ID(), 42) // both wait forever
	})
}

// TestParallelBodyPanicPropagates checks that a proc panic surfaces out of
// Run under the parallel scheduler, like the serial one.
func TestParallelBodyPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("proc panic swallowed")
		}
	}()
	e := NewEngine(Config{Seed: 1, Workers: 2})
	e.Run(4, func(p *Proc) {
		if p.ID() == 2 {
			panic("boom")
		}
		p.Advance(1e-6)
	})
}
