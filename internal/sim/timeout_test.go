package sim

import "testing"

// TestRecvUntilDeliversInTime: a message arriving before the deadline is
// delivered exactly as plain Recv would deliver it.
func TestRecvUntilDeliversInTime(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	var got Message
	var ok bool
	e.Run(2, func(p *Proc) {
		if p.ID() == 0 {
			p.Advance(1)
			p.Send(1, 7, "hi", p.Now())
			return
		}
		got, ok = p.RecvUntil(0, 7, p.Now()+10)
	})
	if !ok || got.Src != 0 || got.Tag != 7 || got.Payload.(string) != "hi" {
		t.Fatalf("RecvUntil = %+v, %v; want delivery from 0 tag 7", got, ok)
	}
	if got.Arrival != 1 {
		t.Fatalf("arrival = %g, want 1", got.Arrival)
	}
	if e.Stats().Timeouts.Value() != 0 {
		t.Fatalf("timeouts fired on an in-time delivery")
	}
}

// TestRecvUntilTimesOut: with no sender, the waiter wakes empty-handed at
// exactly its deadline even though another proc is still running later.
func TestRecvUntilTimesOut(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	var at float64
	var ok bool
	e.Run(2, func(p *Proc) {
		if p.ID() == 0 {
			p.Advance(50) // never sends
			return
		}
		_, ok = p.RecvUntil(0, 7, p.Now()+2.5)
		at = p.Now()
	})
	if ok {
		t.Fatal("RecvUntil returned a message nobody sent")
	}
	if at != 2.5 {
		t.Fatalf("timed out at %g, want exactly 2.5", at)
	}
	if e.Stats().Timeouts.Value() != 1 {
		t.Fatalf("Timeouts = %d, want 1", e.Stats().Timeouts.Value())
	}
}

// TestRecvUntilLateMessageIsTimeout: a matching message whose arrival lies
// past the deadline must not be delivered — the waiter times out at its
// deadline and the message stays queued for a later plain Recv.
func TestRecvUntilLateMessageIsTimeout(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	var at float64
	var ok, okLater bool
	e.Run(2, func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, "late", 9.0) // arrival 9 > deadline 3
			return
		}
		_, ok = p.RecvUntil(0, 7, 3.0)
		at = p.Now()
		m := p.Recv(0, 7)
		okLater = m.Payload.(string) == "late" && p.Now() >= 9.0
	})
	if ok {
		t.Fatal("RecvUntil delivered a message that arrives after the deadline")
	}
	if at != 3.0 {
		t.Fatalf("timed out at %g, want 3.0", at)
	}
	if !okLater {
		t.Fatal("late message was not delivered to the follow-up Recv")
	}
}

// TestRecvUntilAlreadyExpired: a deadline at or before Now still delivers a
// queued in-time message, and otherwise returns immediately without moving
// the clock.
func TestRecvUntilAlreadyExpired(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Run(2, func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, "queued", 0)
			return
		}
		p.Advance(5)
		if m, ok := p.RecvUntil(0, 7, p.Now()); !ok || m.Payload.(string) != "queued" {
			t.Errorf("expired-deadline RecvUntil missed a queued message")
		}
		now := p.Now()
		if _, ok := p.RecvUntil(0, 7, now-1); ok {
			t.Errorf("expired-deadline RecvUntil produced a message from nothing")
		}
		if p.Now() != now {
			t.Errorf("expired-deadline RecvUntil moved the clock %g -> %g", now, p.Now())
		}
	})
}

// TestRecvUntilDeterministic: a mix of served and timed-out receives yields
// bit-identical finish times and timeout counts across runs.
func TestRecvUntilDeterministic(t *testing.T) {
	run := func() (float64, uint64) {
		e := NewEngine(Config{Seed: 42})
		end := e.Run(4, func(p *Proc) {
			switch p.ID() {
			case 0:
				p.Advance(0.5)
				p.Send(1, 1, "a", p.Now())
			case 1:
				for i := 0; i < 3; i++ {
					p.RecvUntil(0, 1, p.Now()+0.4)
				}
			case 2:
				p.Advance(1.7)
				p.Send(3, 2, "b", p.Now())
			case 3:
				p.RecvUntil(2, 2, p.Now()+5)
			}
		})
		return end, e.Stats().Timeouts.Value()
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("runs differ: (%x, %d) vs (%x, %d)", e1, t1, e2, t2)
	}
	if t1 == 0 {
		t.Fatal("expected at least one timeout in this schedule")
	}
}

// TestPendingDrainedOnProcExit is the regression test for the deferred-
// completion leak: completions registered by a proc that finishes (or
// crashes) before their due time must be canceled, never fired.
func TestPendingDrainedOnProcExit(t *testing.T) {
	fired := false
	var exited *Proc
	e := NewEngine(Config{Seed: 1})
	e.Run(2, func(p *Proc) {
		if p.ID() == 0 {
			// Register a completion far in the future, then return: the
			// "crashed rank" whose callbacks must not outlive it.
			p.After(100, func() { fired = true })
			exited = p
			return
		}
		p.Advance(500) // the survivor's clock passes the orphan's due time
	})
	if fired {
		t.Fatal("a dead proc's deferred completion fired")
	}
	if n := exited.PendingOps(); n != 0 {
		t.Fatalf("dead proc still reports %d live pending ops, want 0", n)
	}
}
