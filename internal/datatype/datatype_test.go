package datatype

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestContig(t *testing.T) {
	c := Contig(10)
	if c.Size() != 10 || c.Extent() != 10 {
		t.Errorf("size/extent = %d/%d", c.Size(), c.Extent())
	}
	if !reflect.DeepEqual(c.Segments(), []Segment{{0, 10}}) {
		t.Errorf("segments = %v", c.Segments())
	}
	if Contig(0).Segments() != nil {
		t.Error("zero contig should have no segments")
	}
}

func TestVector(t *testing.T) {
	v := NewVector(3, 4, 10) // blocks at 0, 10, 20
	if v.Size() != 12 {
		t.Errorf("size = %d", v.Size())
	}
	if v.Extent() != 24 {
		t.Errorf("extent = %d", v.Extent())
	}
	want := []Segment{{0, 4}, {10, 4}, {20, 4}}
	if !reflect.DeepEqual(v.Segments(), want) {
		t.Errorf("segments = %v want %v", v.Segments(), want)
	}
}

func TestVectorDenseCoalesces(t *testing.T) {
	v := NewVector(4, 5, 5) // stride == blocklen: fully dense
	want := []Segment{{0, 20}}
	if !reflect.DeepEqual(v.Segments(), want) {
		t.Errorf("segments = %v want %v", v.Segments(), want)
	}
}

func TestVectorOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVector(2, 10, 5)
}

func TestIndexed(t *testing.T) {
	// Unsorted input with a touching pair that must coalesce.
	ix := NewIndexed([]Segment{{20, 5}, {0, 10}, {10, 3}})
	if ix.Size() != 18 {
		t.Errorf("size = %d", ix.Size())
	}
	if ix.Extent() != 25 {
		t.Errorf("extent = %d", ix.Extent())
	}
	want := []Segment{{0, 13}, {20, 5}}
	if !reflect.DeepEqual(ix.Segments(), want) {
		t.Errorf("segments = %v want %v", ix.Segments(), want)
	}
}

func TestIndexedOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIndexed([]Segment{{0, 10}, {5, 10}})
}

func TestSubarray2DTile(t *testing.T) {
	// A 2x3 tile at (1,2) of a 4x8 array of 2-byte elements.
	sub := NewSubarray([]int64{4, 8}, []int64{2, 3}, []int64{1, 2}, 2)
	if sub.Size() != 12 {
		t.Errorf("size = %d", sub.Size())
	}
	if sub.Extent() != 64 {
		t.Errorf("extent = %d", sub.Extent())
	}
	// Rows 1 and 2, columns 2..4: offsets (1*8+2)*2=20 and (2*8+2)*2=36.
	want := []Segment{{20, 6}, {36, 6}}
	if !reflect.DeepEqual(sub.Segments(), want) {
		t.Errorf("segments = %v want %v", sub.Segments(), want)
	}
}

func TestSubarrayFullRowsCoalesce(t *testing.T) {
	// Full-width rows are contiguous across row boundaries.
	sub := NewSubarray([]int64{6, 4}, []int64{2, 4}, []int64{1, 0}, 1)
	want := []Segment{{4, 8}}
	if !reflect.DeepEqual(sub.Segments(), want) {
		t.Errorf("segments = %v want %v", sub.Segments(), want)
	}
}

func TestSubarray3D(t *testing.T) {
	sub := NewSubarray([]int64{2, 3, 4}, []int64{2, 1, 2}, []int64{0, 1, 1}, 1)
	// Planes z=0,1; row y=1; cols x=1..2. Offsets: 0*12+1*4+1=5 ; 12+4+1=17.
	want := []Segment{{5, 2}, {17, 2}}
	if !reflect.DeepEqual(sub.Segments(), want) {
		t.Errorf("segments = %v want %v", sub.Segments(), want)
	}
}

func TestSubarrayBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSubarray([]int64{4}, []int64{3}, []int64{2}, 1)
}

// Property: for any generated type, Segments is sorted, non-overlapping,
// coalesced, sums to Size, and fits within Extent.
func TestSegmentInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ty := randomType(rng)
		segs := ty.Segments()
		var total int64
		for i, s := range segs {
			if s.Len <= 0 || s.Off < 0 {
				return false
			}
			if i > 0 {
				prev := segs[i-1]
				if s.Off < prev.End() {
					return false // overlap
				}
				if s.Off == prev.End() {
					return false // not coalesced
				}
			}
			total += s.Len
		}
		if total != ty.Size() {
			return false
		}
		if n := len(segs); n > 0 && segs[n-1].End() > ty.Extent() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randomType(rng *rand.Rand) Type {
	switch rng.Intn(4) {
	case 0:
		return Contig(rng.Int63n(100))
	case 1:
		bl := rng.Int63n(8) + 1
		return NewVector(rng.Int63n(6)+1, bl, bl+rng.Int63n(8))
	case 2:
		var blocks []Segment
		off := int64(0)
		for i := 0; i < rng.Intn(6)+1; i++ {
			off += rng.Int63n(10)
			l := rng.Int63n(10) + 1
			blocks = append(blocks, Segment{off, l})
			off += l
		}
		return NewIndexed(blocks)
	default:
		nd := rng.Intn(3) + 1
		sizes := make([]int64, nd)
		subs := make([]int64, nd)
		starts := make([]int64, nd)
		for d := range sizes {
			sizes[d] = rng.Int63n(5) + 1
			subs[d] = rng.Int63n(sizes[d]) + 1
			starts[d] = rng.Int63n(sizes[d] - subs[d] + 1)
		}
		return NewSubarray(sizes, subs, starts, rng.Int63n(4)+1)
	}
}

func TestCoalesceExported(t *testing.T) {
	in := []Segment{{10, 5}, {0, 10}, {20, 0}}
	want := []Segment{{0, 15}}
	if got := Coalesce(in); !reflect.DeepEqual(got, want) {
		t.Errorf("Coalesce = %v want %v", got, want)
	}
}

func TestCoalesceOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Coalesce([]Segment{{0, 10}, {9, 2}})
}

func TestExtended(t *testing.T) {
	base := NewIndexed([]Segment{{0, 4}, {10, 4}})
	ext := NewExtended(base, 32)
	if ext.Extent() != 32 {
		t.Errorf("extent = %d want 32", ext.Extent())
	}
	if ext.Size() != base.Size() {
		t.Errorf("size changed: %d", ext.Size())
	}
	// Tiling honors the forced extent.
	v := View{Disp: 0, Filetype: ext}
	segs := v.Map(8, 8) // second instance entirely
	want := []Segment{{32, 4}, {42, 4}}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("tiled map = %v want %v", segs, want)
	}
}

func TestExtendedTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExtended(Contig(10), 5)
}

func TestStruct(t *testing.T) {
	s := NewStruct([]Field{
		{Off: 0, T: Contig(4)},
		{Off: 10, T: NewVector(2, 2, 4)}, // data at 10..11, 14..15
	})
	if s.Size() != 8 {
		t.Errorf("size = %d", s.Size())
	}
	if s.Extent() != 16 {
		t.Errorf("extent = %d", s.Extent())
	}
	want := []Segment{{0, 4}, {10, 2}, {14, 2}}
	if !reflect.DeepEqual(s.Segments(), want) {
		t.Errorf("segments = %v want %v", s.Segments(), want)
	}
}

func TestStructNestedSubarrays(t *testing.T) {
	// Two 2x2 tiles of a 4x4 byte array placed by a struct: equivalent to
	// the two subarrays' unioned segments.
	tileA := NewSubarray([]int64{4, 4}, []int64{2, 2}, []int64{0, 0}, 1)
	tileB := NewSubarray([]int64{4, 4}, []int64{2, 2}, []int64{2, 2}, 1)
	s := NewStruct([]Field{{Off: 0, T: tileA}, {Off: 0, T: tileB}})
	want := Coalesce(append(append([]Segment{}, tileA.Segments()...), tileB.Segments()...))
	if !reflect.DeepEqual(s.Segments(), want) {
		t.Errorf("segments = %v want %v", s.Segments(), want)
	}
}

func TestStructOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStruct([]Field{{Off: 0, T: Contig(4)}, {Off: 2, T: Contig(4)}})
}
