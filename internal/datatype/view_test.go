package datatype

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWholeFileView(t *testing.T) {
	v := WholeFile()
	if !v.IsContiguous() {
		t.Fatal("whole-file view must be contiguous")
	}
	got := v.Map(100, 50)
	want := []Segment{{100, 50}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Map = %v want %v", got, want)
	}
}

func TestViewWithDisp(t *testing.T) {
	v := View{Disp: 1000, Filetype: Contig(64)}
	got := v.Map(10, 20)
	want := []Segment{{1010, 20}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Map = %v want %v", got, want)
	}
}

func TestViewVectorTiling(t *testing.T) {
	// Filetype: 4 data bytes then 4-byte hole, extent 8 via vector trick:
	// one block of 4 at stride 8 has extent 4 — use a 2-block vector and
	// take only the first tile's worth to exercise tiling instead.
	ft := NewVector(2, 4, 8) // data at [0,4) and [8,12), extent 12, size 8
	v := View{Disp: 0, Filetype: ft}
	// Logical [0,8) covers exactly one tile.
	if got, want := v.Map(0, 8), []Segment{{0, 4}, {8, 4}}; !reflect.DeepEqual(got, want) {
		t.Errorf("tile0 = %v want %v", got, want)
	}
	// Logical [8,16) is the second tile, shifted by extent 12.
	if got, want := v.Map(8, 8), []Segment{{12, 4}, {20, 4}}; !reflect.DeepEqual(got, want) {
		t.Errorf("tile1 = %v want %v", got, want)
	}
	// Straddling: logical [6,10) = last 2 bytes of tile0's 2nd block plus
	// the first 2 of tile1; the physical pieces touch and coalesce.
	if got, want := v.Map(6, 4), []Segment{{10, 4}}; !reflect.DeepEqual(got, want) {
		t.Errorf("straddle = %v want %v", got, want)
	}
}

func TestViewMapMidSegmentStart(t *testing.T) {
	ft := NewIndexed([]Segment{{0, 10}, {20, 10}})
	v := View{Disp: 5, Filetype: ft}
	// Logical offset 12 is 2 bytes into the second block.
	got := v.Map(12, 5)
	want := []Segment{{27, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Map = %v want %v", got, want)
	}
}

func TestPhysicalSpan(t *testing.T) {
	ft := NewIndexed([]Segment{{4, 2}, {10, 2}})
	v := View{Disp: 100, Filetype: ft}
	st, end := v.PhysicalSpan(1, 2) // bytes 1..2 of data: [105,106) and [110,111)
	if st != 105 || end != 111 {
		t.Errorf("span = [%d,%d) want [105,111)", st, end)
	}
	if st, end := v.PhysicalSpan(0, 0); st != 0 || end != 0 {
		t.Errorf("empty span = [%d,%d)", st, end)
	}
}

func TestLogicalSize(t *testing.T) {
	ft := NewVector(2, 4, 8) // size 8, extent 12
	v := View{Disp: 10, Filetype: ft}
	cases := []struct {
		physEnd int64
		want    int64
	}{
		{5, 0},   // before disp
		{10, 0},  // at disp
		{14, 4},  // first block fully
		{16, 4},  // inside hole
		{20, 6},  // 2 bytes into second block
		{22, 8},  // full tile
		{34, 16}, // two tiles
	}
	for _, c := range cases {
		if got := v.LogicalSize(c.physEnd); got != c.want {
			t.Errorf("LogicalSize(%d) = %d want %d", c.physEnd, got, c.want)
		}
	}
}

// Property: Map is measure-preserving (total mapped length == requested),
// returns sorted non-overlapping segments, and adjacent logical ranges map
// to disjoint physical bytes that concatenate to the same result.
func TestViewMapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ft := randomType(rng)
		if ft.Size() == 0 {
			return true
		}
		v := View{Disp: rng.Int63n(100), Filetype: ft}
		total := ft.Size()*3 + rng.Int63n(ft.Size())
		// Split the logical range at a random point; the union of the two
		// maps must equal the map of the whole.
		cut := rng.Int63n(total + 1)
		whole := v.Map(0, total)
		left := v.Map(0, cut)
		right := v.Map(cut, total-cut)
		merged := Coalesce(append(append([]Segment{}, left...), right...))
		if !reflect.DeepEqual(whole, merged) {
			return false
		}
		var n int64
		for i, s := range whole {
			n += s.Len
			if i > 0 && s.Off <= whole[i-1].End()-1 && s.Off < whole[i-1].End() {
				return false
			}
		}
		return n == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: LogicalSize is the inverse measure of Map — for any logical
// prefix length L, LogicalSize(end of Map(0,L)) == L when the mapped range
// ends exactly at a data byte.
func TestLogicalSizeInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ft := randomType(rng)
		if ft.Size() == 0 {
			return true
		}
		v := View{Disp: rng.Int63n(50), Filetype: ft}
		l := rng.Int63n(ft.Size()*2) + 1
		segs := v.Map(0, l)
		end := segs[len(segs)-1].End()
		return v.LogicalSize(end) == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
