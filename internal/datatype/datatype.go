// Package datatype provides MPI-like derived datatypes for describing
// non-contiguous data layouts, plus the flattening and file-view arithmetic
// that collective I/O needs. A datatype is an immutable description of a
// byte layout; Segments flattens it into sorted, coalesced, non-overlapping
// (offset, length) extents relative to the type's origin.
package datatype

import (
	"fmt"
	"sort"
)

// Segment is a contiguous byte extent. Off is relative to whatever origin
// the context defines (type origin, file view displacement, ...).
type Segment struct {
	Off, Len int64
}

// End returns the first byte after the segment.
func (s Segment) End() int64 { return s.Off + s.Len }

// Type describes a (possibly non-contiguous) byte layout.
type Type interface {
	// Size is the number of data bytes in one instance of the type.
	Size() int64
	// Extent is the span the type covers including holes; tiling a file
	// view advances by Extent per instance.
	Extent() int64
	// Segments returns the data extents of one instance, sorted by
	// offset, coalesced, and non-overlapping. Callers must not modify
	// the returned slice.
	Segments() []Segment
}

// Contig is n contiguous bytes.
type Contig int64

// Size implements Type.
func (c Contig) Size() int64 { return int64(c) }

// Extent implements Type.
func (c Contig) Extent() int64 { return int64(c) }

// Segments implements Type.
func (c Contig) Segments() []Segment {
	if c == 0 {
		return nil
	}
	return []Segment{{0, int64(c)}}
}

// Vector is Count blocks of BlockLen bytes whose starts are Stride bytes
// apart (MPI_Type_vector with byte units).
type Vector struct {
	Count, BlockLen, Stride int64
	segs                    []Segment
}

// NewVector validates and builds a Vector. Stride must be >= BlockLen so
// blocks cannot overlap.
func NewVector(count, blockLen, stride int64) *Vector {
	if count < 0 || blockLen < 0 {
		panic("datatype: negative vector shape")
	}
	if stride < blockLen {
		panic(fmt.Sprintf("datatype: vector stride %d < blocklen %d would overlap", stride, blockLen))
	}
	return &Vector{Count: count, BlockLen: blockLen, Stride: stride}
}

// Size implements Type.
func (v *Vector) Size() int64 { return v.Count * v.BlockLen }

// Extent implements Type. The extent runs to the end of the last block.
func (v *Vector) Extent() int64 {
	if v.Count == 0 {
		return 0
	}
	return (v.Count-1)*v.Stride + v.BlockLen
}

// Segments implements Type.
func (v *Vector) Segments() []Segment {
	if v.segs == nil && v.Count > 0 && v.BlockLen > 0 {
		segs := make([]Segment, 0, v.Count)
		for i := int64(0); i < v.Count; i++ {
			segs = append(segs, Segment{i * v.Stride, v.BlockLen})
		}
		v.segs = coalesce(segs)
	}
	return v.segs
}

// Indexed is an explicit list of (offset, length) blocks
// (MPI_Type_indexed with byte units). Blocks may be given in any order but
// must not overlap.
type Indexed struct {
	blocks []Segment
	size   int64
	extent int64
}

// NewIndexed validates and builds an Indexed type.
func NewIndexed(blocks []Segment) *Indexed {
	segs := make([]Segment, 0, len(blocks))
	for _, b := range blocks {
		if b.Len < 0 || b.Off < 0 {
			panic("datatype: negative indexed block")
		}
		if b.Len > 0 {
			segs = append(segs, b)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Off < segs[j].Off })
	var size int64
	for i, s := range segs {
		if i > 0 && s.Off < segs[i-1].End() {
			panic(fmt.Sprintf("datatype: indexed blocks overlap at %d", s.Off))
		}
		size += s.Len
	}
	t := &Indexed{blocks: coalesce(segs), size: size}
	if n := len(t.blocks); n > 0 {
		t.extent = t.blocks[n-1].End()
	}
	return t
}

// Size implements Type.
func (t *Indexed) Size() int64 { return t.size }

// Extent implements Type.
func (t *Indexed) Extent() int64 { return t.extent }

// Segments implements Type.
func (t *Indexed) Segments() []Segment { return t.blocks }

// Subarray describes an n-dimensional subarray of an n-dimensional array in
// row-major (C) order, as MPI_Type_create_subarray does. All dimensions are
// in elements of ElemSize bytes.
type Subarray struct {
	Sizes, Subsizes, Starts []int64
	ElemSize                int64
	segs                    []Segment
}

// NewSubarray validates and builds a Subarray.
func NewSubarray(sizes, subsizes, starts []int64, elemSize int64) *Subarray {
	if len(sizes) == 0 || len(sizes) != len(subsizes) || len(sizes) != len(starts) {
		panic("datatype: subarray dimension mismatch")
	}
	if elemSize <= 0 {
		panic("datatype: subarray elemSize must be positive")
	}
	for d := range sizes {
		if sizes[d] <= 0 || subsizes[d] < 0 || starts[d] < 0 || starts[d]+subsizes[d] > sizes[d] {
			panic(fmt.Sprintf("datatype: subarray dim %d out of bounds", d))
		}
	}
	return &Subarray{
		Sizes:    append([]int64(nil), sizes...),
		Subsizes: append([]int64(nil), subsizes...),
		Starts:   append([]int64(nil), starts...),
		ElemSize: elemSize,
	}
}

// Size implements Type.
func (t *Subarray) Size() int64 {
	n := t.ElemSize
	for _, s := range t.Subsizes {
		n *= s
	}
	return n
}

// Extent implements Type. A subarray's extent is the full array (that is
// what tiles when used as a filetype).
func (t *Subarray) Extent() int64 {
	n := t.ElemSize
	for _, s := range t.Sizes {
		n *= s
	}
	return n
}

// Segments implements Type.
func (t *Subarray) Segments() []Segment {
	if t.segs != nil || t.Size() == 0 {
		return t.segs
	}
	// Row-major strides in bytes.
	nd := len(t.Sizes)
	stride := make([]int64, nd)
	stride[nd-1] = t.ElemSize
	for d := nd - 2; d >= 0; d-- {
		stride[d] = stride[d+1] * t.Sizes[d+1]
	}
	var segs []Segment
	idx := make([]int64, nd)
	var walk func(d int, base int64)
	walk = func(d int, base int64) {
		if d == nd-1 {
			segs = append(segs, Segment{base + t.Starts[d]*t.ElemSize, t.Subsizes[d] * t.ElemSize})
			return
		}
		for idx[d] = 0; idx[d] < t.Subsizes[d]; idx[d]++ {
			walk(d+1, base+(t.Starts[d]+idx[d])*stride[d])
		}
	}
	walk(0, 0)
	t.segs = coalesce(segs)
	return t.segs
}

// coalesce sorts (assumed pre-sorted ok) and merges touching segments,
// dropping empties. The input slice may be reordered.
func coalesce(segs []Segment) []Segment {
	sort.Slice(segs, func(i, j int) bool { return segs[i].Off < segs[j].Off })
	out := segs[:0]
	for _, s := range segs {
		if s.Len == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].End() == s.Off {
			out[n-1].Len += s.Len
		} else {
			out = append(out, s)
		}
	}
	return out
}

// Field places a child datatype at a byte offset within a Struct.
type Field struct {
	Off int64
	T   Type
}

// Struct composes child datatypes at explicit offsets, like
// MPI_Type_create_struct. Children may themselves be derived types, so
// complex layouts (e.g. BT-IO's diagonal set of sub-cubes) compose
// naturally. Children must not overlap.
type Struct struct {
	fields []Field
	segs   []Segment
	size   int64
	extent int64
}

// NewStruct validates and builds a Struct from its fields.
func NewStruct(fields []Field) *Struct {
	s := &Struct{fields: append([]Field(nil), fields...)}
	var all []Segment
	for _, f := range fields {
		if f.Off < 0 {
			panic("datatype: negative struct field offset")
		}
		s.size += f.T.Size()
		for _, sg := range f.T.Segments() {
			all = append(all, Segment{Off: f.Off + sg.Off, Len: sg.Len})
		}
		if end := f.Off + f.T.Extent(); end > s.extent {
			s.extent = end
		}
	}
	s.segs = Coalesce(all) // panics on overlap
	return s
}

// Size implements Type.
func (s *Struct) Size() int64 { return s.size }

// Extent implements Type.
func (s *Struct) Extent() int64 { return s.extent }

// Segments implements Type.
func (s *Struct) Segments() []Segment { return s.segs }

// Extended wraps a type, overriding its extent (like MPI_Type_create_resized);
// file views use it to control how instances tile.
type Extended struct {
	Type
	Ext int64
}

// Extent implements Type.
func (e Extended) Extent() int64 { return e.Ext }

// NewExtended returns t with its extent forced to ext (ext must cover the
// type's last data byte).
func NewExtended(t Type, ext int64) Type {
	if segs := t.Segments(); len(segs) > 0 && segs[len(segs)-1].End() > ext {
		panic("datatype: extent smaller than data span")
	}
	return Extended{Type: t, Ext: ext}
}

// Coalesce merges touching or out-of-order segments into canonical form
// (exported for higher layers working with raw segment lists). Overlapping
// input segments cause a panic: layouts must be disjoint.
func Coalesce(segs []Segment) []Segment {
	c := append([]Segment(nil), segs...)
	sort.Slice(c, func(i, j int) bool { return c[i].Off < c[j].Off })
	for i := 1; i < len(c); i++ {
		if c[i].Len > 0 && c[i-1].Len > 0 && c[i].Off < c[i-1].End() {
			panic(fmt.Sprintf("datatype: overlapping segments [%d,%d) and [%d,%d)",
				c[i-1].Off, c[i-1].End(), c[i].Off, c[i].End()))
		}
	}
	return coalesce(c)
}
