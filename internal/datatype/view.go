package datatype

// File-view arithmetic. An MPI-IO file view is (disp, filetype): the
// filetype tiles the file starting at byte disp, and the process sees only
// the filetype's data bytes, concatenated, as its logical file. Map
// translates a logical byte range into physical file segments.

// View is a file view: Filetype tiled from byte Disp onward.
type View struct {
	Disp     int64
	Filetype Type
}

// ContigView returns the default "whole file" view (byte-stream at disp 0).
type contigAll struct{}

func (contigAll) Size() int64         { return 1 }
func (contigAll) Extent() int64       { return 1 }
func (contigAll) Segments() []Segment { return []Segment{{0, 1}} }

// WholeFile is a view exposing the entire file as a byte stream.
func WholeFile() View { return View{Disp: 0, Filetype: contigAll{}} }

// IsContiguous reports whether the view is dense (no holes), in which case
// logical offset v maps to physical offset Disp+v.
func (v View) IsContiguous() bool {
	ft := v.Filetype
	segs := ft.Segments()
	return len(segs) == 1 && segs[0].Off == 0 && segs[0].Len == ft.Size() && ft.Size() == ft.Extent()
}

// Map translates the logical range [logOff, logOff+length) of the view into
// absolute physical file segments (sorted, coalesced).
func (v View) Map(logOff, length int64) []Segment {
	if length <= 0 {
		return nil
	}
	ft := v.Filetype
	size := ft.Size()
	if size <= 0 {
		panic("datatype: view filetype has zero size")
	}
	if v.IsContiguous() {
		return []Segment{{v.Disp + logOff, length}}
	}
	extent := ft.Extent()
	segs := ft.Segments()
	// Prefix sums of data bytes per segment, to find the starting segment.
	tile := logOff / size
	rem := logOff % size
	var out []Segment
	for length > 0 {
		base := v.Disp + tile*extent
		for _, s := range segs {
			if rem >= s.Len {
				rem -= s.Len
				continue
			}
			take := s.Len - rem
			if take > length {
				take = length
			}
			out = append(out, Segment{base + s.Off + rem, take})
			length -= take
			rem = 0
			if length == 0 {
				break
			}
		}
		tile++
	}
	return coalesce(out)
}

// PhysicalSpan returns the first and last-plus-one physical byte that the
// logical range [logOff, logOff+length) touches. It is what ext2ph gathers
// as each process's (st_offset, end_offset).
func (v View) PhysicalSpan(logOff, length int64) (st, end int64) {
	segs := v.Map(logOff, length)
	if len(segs) == 0 {
		return 0, 0
	}
	return segs[0].Off, segs[len(segs)-1].End()
}

// LogicalSize returns how many data bytes the view exposes in the physical
// range [0, physEnd): the inverse measure used when sizing intermediate
// views.
func (v View) LogicalSize(physEnd int64) int64 {
	ft := v.Filetype
	size, extent := ft.Size(), ft.Extent()
	if physEnd <= v.Disp {
		return 0
	}
	span := physEnd - v.Disp
	if v.IsContiguous() {
		return span
	}
	full := span / extent
	rem := span % extent
	n := full * size
	for _, s := range ft.Segments() {
		if rem <= s.Off {
			break
		}
		take := rem - s.Off
		if take > s.Len {
			take = s.Len
		}
		n += take
	}
	return n
}
