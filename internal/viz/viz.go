// Package viz renders the small terminal charts the experiment tools use
// to show the paper figures' shapes: horizontal bar charts for series
// comparisons and line-ish column charts for trends.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labeled value in a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width characters, with the
// value printed after each bar using the given format (e.g. "%.0f MB/s").
func BarChart(bars []Bar, width int, format string) string {
	if len(bars) == 0 || width <= 0 {
		return ""
	}
	var max float64
	labelW := 0
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if max <= 0 {
		max = 1
	}
	var out strings.Builder
	for _, b := range bars {
		n := int(math.Round(b.Value / max * float64(width)))
		if n < 0 {
			n = 0
		}
		if b.Value > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&out, "%-*s |%s%s %s\n",
			labelW, b.Label,
			strings.Repeat("█", n), strings.Repeat(" ", width-n),
			fmt.Sprintf(format, b.Value))
	}
	return out.String()
}

// Series is a named sequence of (x, y) points for a trend chart.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	Marker rune
}

// TrendChart renders one or more series as a column chart of height rows:
// the x-axis positions are the union of all series' x values in order, and
// each series plots its marker at the scaled y height. Y starts at zero.
func TrendChart(series []Series, height int) string {
	if len(series) == 0 || height <= 1 {
		return ""
	}
	// Union of x positions, preserving numeric order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	col := func(x float64) int {
		for i, v := range xs {
			if v == x {
				return i
			}
		}
		return -1
	}
	var ymax float64
	for _, s := range series {
		for _, y := range s.Y {
			if y > ymax {
				ymax = y
			}
		}
	}
	if ymax <= 0 {
		ymax = 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", len(xs)*6))
	}
	for si, s := range series {
		m := s.Marker
		if m == 0 {
			m = '*'
		}
		for i := range s.X {
			c := col(s.X[i])
			if c < 0 || i >= len(s.Y) {
				continue
			}
			row := height - 1 - int(math.Round(s.Y[i]/ymax*float64(height-1)))
			// Offset each series one column so coincident points stay
			// visible side by side.
			grid[row][c*6+1+si%4] = m
		}
	}
	var out strings.Builder
	fmt.Fprintf(&out, "%10.3g ┤\n", ymax)
	for _, row := range grid {
		out.WriteString("           │")
		out.WriteString(string(row))
		out.WriteByte('\n')
	}
	out.WriteString("         0 └")
	out.WriteString(strings.Repeat("─", len(xs)*6))
	out.WriteByte('\n')
	out.WriteString("            ")
	for _, x := range xs {
		fmt.Fprintf(&out, "%-6.4g", x)
	}
	out.WriteByte('\n')
	legend := make([]string, 0, len(series))
	for _, s := range series {
		m := s.Marker
		if m == 0 {
			m = '*'
		}
		legend = append(legend, fmt.Sprintf("%c=%s", m, s.Name))
	}
	out.WriteString("            " + strings.Join(legend, "  ") + "\n")
	return out.String()
}
