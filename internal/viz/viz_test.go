package viz

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	out := BarChart([]Bar{
		{"baseline", 100},
		{"ParColl-8", 400},
	}, 20, "%.0f MB/s")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	base := strings.Count(lines[0], "█")
	pc := strings.Count(lines[1], "█")
	if pc != 20 {
		t.Errorf("max bar = %d cells, want full width 20", pc)
	}
	if base != 5 {
		t.Errorf("baseline bar = %d cells, want 5 (100/400 of 20)", base)
	}
	if !strings.Contains(lines[0], "100 MB/s") {
		t.Errorf("value missing: %q", lines[0])
	}
}

func TestBarChartEdge(t *testing.T) {
	if BarChart(nil, 10, "%f") != "" {
		t.Error("empty chart should render nothing")
	}
	// Tiny positive values still get one cell.
	out := BarChart([]Bar{{"a", 0.001}, {"b", 1000}}, 10, "%.3f")
	if !strings.Contains(strings.Split(out, "\n")[0], "█") {
		t.Error("tiny value has no visible bar")
	}
	// Zero values get no cells.
	out = BarChart([]Bar{{"z", 0}, {"b", 10}}, 10, "%.0f")
	if strings.Count(strings.Split(out, "\n")[0], "█") != 0 {
		t.Error("zero value drew a bar")
	}
}

func TestTrendChart(t *testing.T) {
	out := TrendChart([]Series{
		{Name: "baseline", X: []float64{64, 128, 256}, Y: []float64{1, 1, 1}, Marker: 'b'},
		{Name: "parcoll", X: []float64{64, 128, 256}, Y: []float64{3, 5, 7}, Marker: 'p'},
	}, 8)
	if !strings.Contains(out, "b=baseline") || !strings.Contains(out, "p=parcoll") {
		t.Error("legend missing")
	}
	if strings.Count(out, "p") < 3 { // at least the 3 plotted markers
		t.Errorf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "64") || !strings.Contains(out, "256") {
		t.Error("x labels missing")
	}
	// The highest parcoll point must sit above the baseline points.
	lines := strings.Split(out, "\n")
	rowOf := func(m rune) int {
		for i, l := range lines {
			if strings.ContainsRune(l, m) && strings.Contains(l, "│") {
				return i
			}
		}
		return -1
	}
	if rowOf('p') >= rowOf('b') {
		t.Errorf("parcoll not plotted above baseline:\n%s", out)
	}
}

func TestTrendChartEmpty(t *testing.T) {
	if TrendChart(nil, 5) != "" {
		t.Error("empty trend should render nothing")
	}
	if TrendChart([]Series{{Name: "x"}}, 1) != "" {
		t.Error("degenerate height should render nothing")
	}
}
