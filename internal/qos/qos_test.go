package qos

import "testing"

func TestFIFOIsIdentity(t *testing.T) {
	p := NewFIFO()
	for i := 0; i < 10; i++ {
		at := float64(i) * 0.001
		if got := p.Admit(3, i%2, at, 0.002); got != at {
			t.Fatalf("Admit(%g) = %g, want identity", at, got)
		}
	}
	u := p.Usage()
	if u[0].Requests != 5 || u[1].Requests != 5 {
		t.Fatalf("usage = %+v, want 5 requests per job", u)
	}
	if u[0].DelaySecs != 0 {
		t.Fatalf("FIFO recorded delay %g", u[0].DelaySecs)
	}
}

func TestFairShareAloneIsServicePaced(t *testing.T) {
	p := NewFairShare(0.05)
	const svc = 0.002
	// A single job issuing back-to-back requests (arrivals spaced by its own
	// service time) must see zero added delay: spacing = 1*svc.
	for i := 0; i < 20; i++ {
		at := float64(i) * svc
		// Accumulated finish tags can differ from i*svc in the last ulp;
		// anything beyond rounding noise would be real shaping.
		if got := p.Admit(0, 0, at, svc); got-at > 1e-9 {
			t.Fatalf("request %d admitted at %g, want ~%g (alone => unshaped)", i, got, at)
		}
	}
}

func TestFairShareSpacesContendingJobs(t *testing.T) {
	p := NewFairShare(0.05)
	const svc = 0.002
	// Job 1 is a hog: a burst of requests all arriving at ~t=0. Job 0 has
	// touched the target just before, so the hog sees n=2 and its k-th
	// request is admitted no earlier than 2k*svc.
	p.Admit(0, 0, 0, svc)
	var prev float64
	for k := 0; k < 10; k++ {
		got := p.Admit(0, 1, 1e-9, svc)
		if k > 0 && got < prev+2*svc-1e-12 {
			t.Fatalf("hog request %d admitted at %g, want >= %g (2*svc spacing)", k, got, prev+2*svc)
		}
		prev = got
	}
	if d := p.Usage()[1].DelaySecs; d <= 0 {
		t.Fatalf("hog delay = %g, want > 0", d)
	}
}

func TestFairShareForgetsIdleJobs(t *testing.T) {
	p := NewFairShare(0.01)
	const svc = 0.002
	p.Admit(0, 0, 0, svc)
	// Well past the window, job 1 runs alone: spacing must be 1*svc again.
	at := 1.0
	if got := p.Admit(0, 1, at, svc); got != at {
		t.Fatalf("post-window request admitted at %g, want %g", got, at)
	}
	if got := p.Admit(0, 1, at+svc, svc); got != at+svc {
		t.Fatalf("second post-window request admitted at %g, want %g", got, at+svc)
	}
}

func TestTokenBucketThrottlesBeyondBurst(t *testing.T) {
	p := NewTokenBucket(0.5, 0.004)
	const svc = 0.002
	// First two requests fit in the burst; the third must wait for refill.
	if got := p.Admit(0, 0, 0, svc); got != 0 {
		t.Fatalf("first request delayed to %g", got)
	}
	if got := p.Admit(0, 0, 0, svc); got != 0 {
		t.Fatalf("second request delayed to %g", got)
	}
	got := p.Admit(0, 0, 0, svc)
	want := svc / 0.5 // full-deficit refill wait
	if got < want-1e-12 {
		t.Fatalf("third request admitted at %g, want >= %g", got, want)
	}
}

func TestNewByName(t *testing.T) {
	for _, n := range Names() {
		p, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Fatalf("New(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := New("wrr"); err == nil {
		t.Fatal("New(wrr) succeeded, want error")
	}
	if p, err := New(""); err != nil || p.Name() != "fifo" {
		t.Fatalf("New(\"\") = %v, %v; want fifo", p, err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// The same admission sequence must produce bit-identical starts and
	// usage — policies may not consult clocks or randomness.
	run := func() ([]float64, map[int]JobUsage) {
		p := NewFairShare(0.05)
		var starts []float64
		for i := 0; i < 100; i++ {
			starts = append(starts, p.Admit(i%4, i%3, float64(i)*1e-4, 0.002))
		}
		return starts, p.Usage()
	}
	s1, u1 := run()
	s2, u2 := run()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("replay diverged at %d: %g vs %g", i, s1[i], s2[i])
		}
	}
	for _, id := range JobIDs(u1) {
		if u1[id] != u2[id] {
			t.Fatalf("usage diverged for job %d", id)
		}
	}
}
