// Package qos implements server-side admission policies for shared storage
// services (DESIGN.md §16). When several jobs hammer one set of OSTs, the
// order requests reach each target decides who eats the queueing: plain FIFO
// lets a bursty job fill a target's ledger solid and every later arrival —
// however small its own demand — waits behind the backlog.
//
// A policy cannot reorder work the simulation has already booked (the
// interval ledgers in internal/sim are append-only in virtual time), so QoS
// acts at admission: Admit shapes the earliest service start of each request
// before the target's Resource.Acquire books it. Acquire takes the earliest
// gap at or after the admitted time, so delaying an over-share job's
// requests leaves ledger gaps that other jobs' requests — admitted at their
// own, earlier times — then fill. The effect is the same as a fair queue in
// front of the device, expressed in a form the deterministic engine can
// replay bit-identically: every storage operation begins with an engine
// sync, so Admit runs in engine-serialized order at any worker count, and
// policies draw no randomness.
//
// Three policies ship, mirroring the classic service-loop choices:
//
//   - FIFO: admission is the identity. The baseline every interference
//     number is quoted against; still useful armed, because it keeps the
//     per-job usage accounting without shaping anything.
//   - Fair share: per-(target, job) start-time fair queueing. Job j's next
//     request on a target may not start before its previous one plus
//     n·service, where n is the number of jobs recently active on that
//     target — each of n contenders is admitted at roughly a 1/n share.
//     A job alone on a target (n = 1) is spaced by exactly its own service
//     time, which the device ledger would impose anyway, so isolated runs
//     are unshaped.
//   - Token bucket: per-(target, job) budget of service-seconds refilled at
//     Rate and capped at Burst. A request costing more than the available
//     tokens waits for the deficit to accrue. This is the hard-reservation
//     shape: a hog is throttled even when the device is idle.
package qos

import (
	"fmt"
	"sort"
)

// Policy is a server-side admission policy. Admit is called once per
// request, in engine-serialized order, with the request's target id, the
// issuing job, the earliest possible service start `at`, and the request's
// estimated service cost `svc` (seconds). It returns the admitted start
// time, >= at, and records the request in the per-job usage ledger.
//
// Implementations must be deterministic: no clocks, no randomness, state
// mutated only inside Admit.
type Policy interface {
	Name() string
	Admit(target, job int, at, svc float64) float64
	// Usage returns a copy of the per-job accounting: requests admitted,
	// service seconds carried, and admission delay added, summed over all
	// targets. Single-job runs degrade to one "job 0" bucket.
	Usage() map[int]JobUsage
}

// JobUsage aggregates one job's admitted work under a policy.
type JobUsage struct {
	Requests    int64   // requests admitted
	ServiceSecs float64 // summed estimated service cost
	DelaySecs   float64 // summed admission delay (start - arrival)
}

// usage is the shared per-job ledger embedded by every policy.
type usage struct {
	jobs map[int]*JobUsage
}

func (u *usage) note(job int, svc, delay float64) {
	if u.jobs == nil {
		u.jobs = make(map[int]*JobUsage)
	}
	j := u.jobs[job]
	if j == nil {
		j = &JobUsage{}
		u.jobs[job] = j
	}
	j.Requests++
	j.ServiceSecs += svc
	j.DelaySecs += delay
}

func (u *usage) Usage() map[int]JobUsage {
	out := make(map[int]JobUsage, len(u.jobs))
	for id, j := range u.jobs {
		out[id] = *j
	}
	return out
}

// FIFO admits every request at its arrival time — the unshaped baseline,
// with per-job accounting.
type FIFO struct{ usage }

// NewFIFO returns the identity policy.
func NewFIFO() *FIFO { return &FIFO{} }

func (p *FIFO) Name() string { return "fifo" }

func (p *FIFO) Admit(target, job int, at, svc float64) float64 {
	p.note(job, svc, 0)
	return at
}

// FairShare is per-target start-time fair queueing: each job's requests on
// a target are spaced by n·svc, where n is the number of jobs seen on that
// target within Window seconds of the current request. With one active job
// the spacing equals the job's own service time — the pace the device would
// impose anyway — so shaping engages only under contention.
type FairShare struct {
	usage
	// Window is the activity horizon: a job counts as a contender on a
	// target while its last request there is within Window seconds.
	Window float64
	tgts   map[int]*fairTarget
}

type fairTarget struct {
	jobs map[int]*fairJob
}

type fairJob struct {
	ftag float64 // earliest admission of the job's next request here
	last float64 // arrival time of the job's latest request here
}

// DefaultFairWindow spans a few dozen request services at the default OST
// overhead — long enough to bridge a job's exchange phases, short enough
// that a departed job stops counting within one collective call.
const DefaultFairWindow = 0.05

// NewFairShare returns a fair-share policy; window <= 0 takes the default.
func NewFairShare(window float64) *FairShare {
	if window <= 0 {
		window = DefaultFairWindow
	}
	return &FairShare{Window: window, tgts: make(map[int]*fairTarget)}
}

func (p *FairShare) Name() string { return "fair" }

func (p *FairShare) Admit(target, job int, at, svc float64) float64 {
	t := p.tgts[target]
	if t == nil {
		t = &fairTarget{jobs: make(map[int]*fairJob)}
		p.tgts[target] = t
	}
	j := t.jobs[job]
	if j == nil {
		j = &fairJob{ftag: at, last: at}
		t.jobs[job] = j
	}
	// Count contenders: jobs whose latest request on this target is recent.
	// The count is order-independent, so map iteration is safe.
	n := 1 // this job
	for id, o := range t.jobs {
		if id != job && at-o.last <= p.Window {
			n++
		}
	}
	start := at
	if j.ftag > start {
		start = j.ftag
	}
	j.ftag = start + float64(n)*svc
	j.last = at
	p.note(job, svc, start-at)
	return start
}

// TokenBucket throttles each (target, job) pair to Rate service-seconds per
// second with bursts up to Burst seconds — a hard per-job reservation on
// every target, enforced even when the device is idle.
type TokenBucket struct {
	usage
	Rate  float64 // service-seconds accrued per second
	Burst float64 // token cap, in service-seconds
	tgts  map[int]map[int]*bucket
}

type bucket struct {
	tokens float64
	last   float64
}

// Default token-bucket shape: half a target's capacity per job, with a
// burst of a few large-request services.
const (
	DefaultBucketRate  = 0.5
	DefaultBucketBurst = 0.05
)

// NewTokenBucket returns a token-bucket policy; non-positive parameters
// take the defaults.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 {
		rate = DefaultBucketRate
	}
	if burst <= 0 {
		burst = DefaultBucketBurst
	}
	return &TokenBucket{Rate: rate, Burst: burst, tgts: make(map[int]map[int]*bucket)}
}

func (p *TokenBucket) Name() string { return "tbucket" }

func (p *TokenBucket) Admit(target, job int, at, svc float64) float64 {
	t := p.tgts[target]
	if t == nil {
		t = make(map[int]*bucket)
		p.tgts[target] = t
	}
	b := t[job]
	if b == nil {
		b = &bucket{tokens: p.Burst, last: at}
		t[job] = b
	}
	if at > b.last {
		b.tokens += (at - b.last) * p.Rate
		if b.tokens > p.Burst {
			b.tokens = p.Burst
		}
		b.last = at
	}
	start := at
	if svc > b.tokens {
		start = at + (svc-b.tokens)/p.Rate
		b.tokens = 0
		b.last = start
	} else {
		b.tokens -= svc
	}
	p.note(job, svc, start-at)
	return start
}

// Policy name constants — the spellings Names lists and New accepts.
const (
	NameFIFO        = "fifo"
	NameFairShare   = "fair"
	NameTokenBucket = "tbucket"
)

// Names lists the policy spellings New accepts, in report order.
func Names() []string { return []string{NameFIFO, NameFairShare, NameTokenBucket} }

// New builds a policy from its CLI spelling with default parameters.
func New(name string) (Policy, error) {
	switch name {
	case "", "fifo":
		return NewFIFO(), nil
	case "fair":
		return NewFairShare(0), nil
	case "tbucket":
		return NewTokenBucket(0, 0), nil
	default:
		return nil, fmt.Errorf("qos: unknown policy %q (have %v)", name, Names())
	}
}

// JobIDs returns the sorted job ids present in a usage map — report helpers
// need a stable order.
func JobIDs(m map[int]JobUsage) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
