// Package trace records per-rank virtual-time event timelines, the
// instrumentation style behind the paper's Section 2 dissection of
// collective I/O. Experiments wrap operations in spans; the recorder can
// render a per-rank summary, a merged chronological log, or JSON for
// external tooling.
//
// The recorder is engine-friendly: the simulation runs procs one at a
// time, so no locking is needed as long as a single Recorder is shared by
// the ranks of one run.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Event is one completed span on one rank.
type Event struct {
	Rank  int     `json:"rank"`
	Kind  string  `json:"kind"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Note  string  `json:"note,omitempty"`
}

// Dur returns the span's duration.
func (e Event) Dur() float64 { return e.End - e.Start }

// Recorder accumulates events.
type Recorder struct {
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records a completed span.
func (r *Recorder) Add(rank int, kind string, start, end float64, note string) {
	if end < start {
		panic(fmt.Sprintf("trace: span %q on rank %d ends before it starts", kind, rank))
	}
	r.events = append(r.events, Event{Rank: rank, Kind: kind, Start: start, End: end, Note: note})
}

// Span starts a span and returns a closure that completes it; use with a
// clock accessor:
//
//	done := rec.Span(rank, "write", now())
//	...
//	done(now(), "dump 3")
func (r *Recorder) Span(rank int, kind string, start float64) func(end float64, note string) {
	return func(end float64, note string) {
		r.Add(rank, kind, start, end, note)
	}
}

// Events returns a copy of the recorded events in insertion order. Mutating
// the returned slice cannot corrupt the recorder; callers on a hot path that
// promise not to mutate or retain the slice can use EventsShared.
func (r *Recorder) Events() []Event { return append([]Event(nil), r.events...) }

// EventsShared returns the recorder's backing slice without copying. The
// caller must treat it as read-only and must not retain it across Add calls
// (an append may reallocate or, worse, alias new events into a stale copy).
func (r *Recorder) EventsShared() []Event { return r.events }

// Len reports the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// ByKind sums durations per kind across all ranks.
func (r *Recorder) ByKind() map[string]float64 {
	out := make(map[string]float64)
	for _, e := range r.events {
		out[e.Kind] += e.Dur()
	}
	return out
}

// RankSummary sums durations per kind for one rank.
func (r *Recorder) RankSummary(rank int) map[string]float64 {
	out := make(map[string]float64)
	for _, e := range r.events {
		if e.Rank == rank {
			out[e.Kind] += e.Dur()
		}
	}
	return out
}

// Chronological returns the events sorted by (start, rank).
func (r *Recorder) Chronological() []Event {
	out := append([]Event(nil), r.events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// JSON renders the chronological event log as JSON lines.
func (r *Recorder) JSON() (string, error) {
	var b strings.Builder
	for _, e := range r.Chronological() {
		raw, err := json.Marshal(e)
		if err != nil {
			return "", err
		}
		b.Write(raw)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Gantt renders a coarse per-rank timeline: one row per rank, one column
// per time bucket, the densest span kind's first letter in each cell.
// Width is the number of buckets.
func (r *Recorder) Gantt(width int) string {
	if len(r.events) == 0 || width <= 0 {
		return ""
	}
	var tmax float64
	maxRank := 0
	for _, e := range r.events {
		if e.End > tmax {
			tmax = e.End
		}
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
	}
	if tmax == 0 {
		return ""
	}
	rows := make([][]map[string]float64, maxRank+1)
	for i := range rows {
		rows[i] = make([]map[string]float64, width)
	}
	bucket := tmax / float64(width)
	for _, e := range r.events {
		lo := int(e.Start / bucket)
		hi := int(e.End / bucket)
		for c := lo; c <= hi && c < width; c++ {
			cellLo := float64(c) * bucket
			cellHi := cellLo + bucket
			overlap := minF(e.End, cellHi) - maxF(e.Start, cellLo)
			if overlap <= 0 {
				continue
			}
			if rows[e.Rank][c] == nil {
				rows[e.Rank][c] = make(map[string]float64)
			}
			rows[e.Rank][c][e.Kind] += overlap
		}
	}
	var b strings.Builder
	for rank, row := range rows {
		fmt.Fprintf(&b, "%4d |", rank)
		for _, cell := range row {
			best, bestV := ' ', 0.0
			for k, v := range cell {
				if v > bestV || (v == bestV && best != ' ' && k[0] < byte(best)) {
					best, bestV = rune(k[0]), v
				}
			}
			b.WriteRune(best)
		}
		b.WriteString("|\n")
	}
	return b.String()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
