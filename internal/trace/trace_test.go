package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndSummaries(t *testing.T) {
	r := New()
	r.Add(0, "sync", 0, 1, "")
	r.Add(0, "io", 1, 3, "dump 0")
	r.Add(1, "sync", 0.5, 2, "")
	byKind := r.ByKind()
	if byKind["sync"] != 2.5 || byKind["io"] != 2 {
		t.Errorf("ByKind = %v", byKind)
	}
	r0 := r.RankSummary(0)
	if r0["sync"] != 1 || r0["io"] != 2 {
		t.Errorf("RankSummary(0) = %v", r0)
	}
	if len(r.RankSummary(7)) != 0 {
		t.Error("unknown rank has events")
	}
}

func TestSpanClosure(t *testing.T) {
	r := New()
	done := r.Span(2, "exchange", 5)
	done(8, "round 3")
	ev := r.Events()
	if len(ev) != 1 || ev[0].Dur() != 3 || ev[0].Note != "round 3" {
		t.Errorf("events = %+v", ev)
	}
}

func TestBackwardsSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Add(0, "x", 2, 1, "")
}

func TestChronological(t *testing.T) {
	r := New()
	r.Add(1, "b", 2, 3, "")
	r.Add(0, "a", 1, 2, "")
	r.Add(0, "c", 2, 4, "")
	got := r.Chronological()
	if got[0].Kind != "a" || got[1].Kind != "c" || got[2].Kind != "b" {
		t.Errorf("order = %+v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := New()
	r.Add(0, "sync", 0, 1.5, "note")
	out, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &e); err != nil {
		t.Fatal(err)
	}
	if e != (Event{Rank: 0, Kind: "sync", Start: 0, End: 1.5, Note: "note"}) {
		t.Errorf("round trip = %+v", e)
	}
}

func TestGantt(t *testing.T) {
	r := New()
	r.Add(0, "sync", 0, 5, "")
	r.Add(0, "io", 5, 10, "")
	r.Add(1, "io", 0, 10, "")
	g := r.Gantt(10)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("gantt rows = %d", len(lines))
	}
	if !strings.Contains(lines[0], "s") || !strings.Contains(lines[0], "i") {
		t.Errorf("rank 0 row %q missing span letters", lines[0])
	}
	if strings.Count(lines[1], "i") != 10 {
		t.Errorf("rank 1 row %q should be all io", lines[1])
	}
	if New().Gantt(10) != "" {
		t.Error("empty recorder should render nothing")
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	r := New()
	r.Add(0, "sync", 0, 1, "")
	r.Add(1, "io", 1, 2, "keep")
	ev := r.Events()
	ev[0] = Event{Rank: 99, Kind: "corrupt", Start: -1, End: -1, Note: "x"}
	ev = append(ev[:1], Event{Rank: 98, Kind: "worse"})
	_ = ev
	got := r.Events()
	if got[0] != (Event{Rank: 0, Kind: "sync", Start: 0, End: 1}) ||
		got[1] != (Event{Rank: 1, Kind: "io", Start: 1, End: 2, Note: "keep"}) {
		t.Fatalf("mutating Events() result corrupted the recorder: %+v", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	// EventsShared exposes the backing array by contract.
	if sh := r.EventsShared(); len(sh) != 2 || sh[0].Kind != "sync" {
		t.Fatalf("EventsShared = %+v", sh)
	}
}

// Property: ByKind totals always equal the sum of per-rank summaries.
func TestSummaryConsistencyProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		r := New()
		kinds := []string{"sync", "exchange", "io"}
		maxRank := 0
		for i := 0; i+2 < len(raw); i += 3 {
			rank := int(raw[i]) % 4
			if rank > maxRank {
				maxRank = rank
			}
			start := float64(raw[i+1])
			r.Add(rank, kinds[int(raw[i+2])%3], start, start+float64(raw[i+2]), "")
		}
		total := r.ByKind()
		sum := make(map[string]float64)
		for rank := 0; rank <= maxRank; rank++ {
			for k, v := range r.RankSummary(rank) {
				sum[k] += v
			}
		}
		for k, v := range total {
			if d := sum[k] - v; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return len(sum) == len(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
