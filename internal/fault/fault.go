// Package fault is a deterministic, seed-driven fault-injection layer for
// the simulator. A Plan declaratively describes how a run's virtual-time
// model is perturbed — per-rank compute stragglers, per-round heavy-tailed
// OS noise, degraded or transiently unavailable OSTs, and message-delivery
// jitter on the NIC path — without breaking reproducibility.
//
// Determinism contract: a Plan is pure data plus pure functions. It owns no
// random state; every probabilistic decision draws from a *rand.Rand handed
// in by the layer applying the fault (the engine's perturbation RNG for
// message delivery, the proc-local RNG for per-round noise, the file
// system's RNG for service tails). All of those generators are seeded from
// the run's seed, and the engine serializes execution, so two runs of the
// same program under the same Plan and seed produce bit-identical
// virtual-time results. A zero Plan perturbs nothing and never consumes a
// random draw, so runs under the "healthy" scenario are bit-identical to
// runs with no plan installed at all.
//
// Layer map (who applies what):
//
//	Stragglers  -> sim.Proc.Advance via the sim.Perturber hook (ComputeScale)
//	Net jitter  -> sim.Proc.Send via the sim.Perturber hook (DeliveryDelay)
//	Net.NodeBW  -> cluster.Transfer (per-node NIC bandwidth derating)
//	RoundNoise  -> mpiio round loops (RoundStall), the collective-wall probe
//	OSTs        -> lustre FS.svcTime (service scaling + downtime windows)
package fault

import "math/rand"

// Straggler slows one rank's (or every rank's) local time: every Advance —
// CPU overheads and I/O waits alike — is stretched by Factor. It models a
// persistently slow node (thermal throttling, a sick disk path, an
// oversubscribed core).
type Straggler struct {
	Rank   int     // world rank; -1 applies to every rank
	Factor float64 // multiplicative slowdown, >= 1 (1 = no effect)
}

// RoundNoise injects heavy-tailed per-round compute stalls into the
// collective I/O round loop: before each round's synchronizing alltoall, an
// afflicted rank draws and, with probability Prob, stalls for Stall seconds
// (and with probability TailProb for TailStall seconds — the rare, large
// event). This is the perturbation the collective wall amplifies: a global
// protocol pays the maximum stall over all ranks every round, a partitioned
// protocol only the maximum within each subgroup.
type RoundNoise struct {
	Rank      int     // world rank; -1 applies to every rank
	Prob      float64 // per-rank per-round stall probability
	Stall     float64 // seconds added on a common stall event
	TailProb  float64 // per-rank per-round heavy-tail probability
	TailStall float64 // seconds added on a tail event
}

// OSTFault degrades one OST (or all): service times are multiplied by
// Scale, and the target is periodically unavailable — requests arriving
// inside a down window stall until it ends. Windows are
// [DownAt+k*DownEvery, DownAt+k*DownEvery+DownFor) for k = 0, 1, ...;
// DownEvery == 0 means the single window at DownAt. DownFor == 0 disables
// downtime.
type OSTFault struct {
	OST      int     // OST index; -1 applies to every OST
	Scale    float64 // service-time multiplier, >= 1 (0 and 1 = no effect)
	DownAt   float64 // start of the first unavailability window, seconds
	DownFor  float64 // window length, seconds
	DownEvery float64 // window period, seconds (0 = one-shot)
}

// NetFault perturbs message delivery. Jitter and spikes are drawn per
// message from the engine's perturbation RNG and added to the arrival time;
// NodeBWScale derates specific nodes' NIC bandwidth deterministically
// (a flaky link or a misrouted adapter).
type NetFault struct {
	JitterProb  float64 // per-message probability of a small delay
	JitterDelay float64 // maximum small delay, seconds (uniform draw)
	SpikeProb   float64 // per-message probability of a large delay spike
	SpikeDelay  float64 // spike delay, seconds (fixed)
	// NodeBWScale divides the named nodes' NIC bandwidth (2 = half speed).
	NodeBWScale map[int]float64
}

// Plan is one named fault scenario: the complete, declarative description
// of how a run is perturbed. The zero value is the healthy (unperturbed)
// plan.
type Plan struct {
	Name       string
	Stragglers []Straggler
	RoundNoise RoundNoise
	OSTs       []OSTFault
	Net        NetFault
}

// IsZero reports whether the plan perturbs nothing.
func (p *Plan) IsZero() bool {
	if p == nil {
		return true
	}
	return len(p.Stragglers) == 0 && !p.RoundNoise.active() &&
		len(p.OSTs) == 0 && !p.netActive()
}

func (n RoundNoise) active() bool {
	return n.Prob > 0 || n.TailProb > 0
}

func (p *Plan) netActive() bool {
	return p.Net.JitterProb > 0 || p.Net.SpikeProb > 0 || len(p.Net.NodeBWScale) > 0
}

// --- sim.Perturber implementation -----------------------------------------

// ComputeScale returns the multiplicative slowdown of proc's local time
// advances (1 = unperturbed). It is a pure function of the proc id, so it
// consumes no randomness.
func (p *Plan) ComputeScale(proc int) float64 {
	s := 1.0
	for _, st := range p.Stragglers {
		if (st.Rank == -1 || st.Rank == proc) && st.Factor > 1 {
			s *= st.Factor
		}
	}
	return s
}

// DeliveryDelay returns extra seconds added to a message's arrival time.
// rng is the engine's dedicated perturbation generator; no draw happens
// unless the plan carries delivery jitter, so healthy plans leave the
// generator untouched.
func (p *Plan) DeliveryDelay(src, dst int, rng *rand.Rand) float64 {
	var d float64
	if p.Net.JitterProb > 0 && rng.Float64() < p.Net.JitterProb {
		d += p.Net.JitterDelay * rng.Float64()
	}
	if p.Net.SpikeProb > 0 && rng.Float64() < p.Net.SpikeProb {
		d += p.Net.SpikeDelay
	}
	return d
}

// --- cluster hook ----------------------------------------------------------

// NodeBWDivisor returns the factor by which the node's NIC bandwidth is
// divided (1 = unperturbed).
func (p *Plan) NodeBWDivisor(node int) float64 {
	if p == nil {
		return 1
	}
	if s, ok := p.Net.NodeBWScale[node]; ok && s > 1 {
		return s
	}
	return 1
}

// --- mpiio hook -------------------------------------------------------------

// RoundStall returns the compute stall, in seconds, rank suffers before one
// collective I/O round. rng is the rank's proc-local generator; no draw
// happens when the plan carries no round noise or the rank is not afflicted.
func (p *Plan) RoundStall(rank int, rng *rand.Rand) float64 {
	if p == nil {
		return 0
	}
	n := p.RoundNoise
	if !n.active() || (n.Rank != -1 && n.Rank != rank) {
		return 0
	}
	var d float64
	if n.Prob > 0 && rng.Float64() < n.Prob {
		d += n.Stall
	}
	if n.TailProb > 0 && rng.Float64() < n.TailProb {
		d += n.TailStall
	}
	return d
}

// --- lustre hooks -----------------------------------------------------------

// OSTScale returns the service-time multiplier for the given OST
// (1 = unperturbed).
func (p *Plan) OSTScale(ost int) float64 {
	if p == nil {
		return 1
	}
	s := 1.0
	for _, f := range p.OSTs {
		if (f.OST == -1 || f.OST == ost) && f.Scale > 1 {
			s *= f.Scale
		}
	}
	return s
}

// OSTDownDelay returns how long a request arriving at virtual time `at`
// must wait for the OST to come back up (0 when the OST is up). Pure
// function of (ost, at): deterministic by construction.
func (p *Plan) OSTDownDelay(ost int, at float64) float64 {
	if p == nil {
		return 0
	}
	var delay float64
	for _, f := range p.OSTs {
		if (f.OST != -1 && f.OST != ost) || f.DownFor <= 0 {
			continue
		}
		start := f.DownAt
		if f.DownEvery > 0 && at > start {
			k := int((at - f.DownAt) / f.DownEvery)
			start = f.DownAt + float64(k)*f.DownEvery
		}
		if at >= start && at < start+f.DownFor {
			if d := start + f.DownFor - at; d > delay {
				delay = d
			}
		}
	}
	return delay
}
