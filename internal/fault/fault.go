// Package fault is a deterministic, seed-driven fault-injection layer for
// the simulator. A Plan declaratively describes how a run's virtual-time
// model is perturbed — per-rank compute stragglers, per-round heavy-tailed
// OS noise, degraded or transiently unavailable OSTs, and message-delivery
// jitter on the NIC path — without breaking reproducibility.
//
// Determinism contract: a Plan is pure data plus pure functions. It owns no
// random state; every probabilistic decision draws from a *rand.Rand handed
// in by the layer applying the fault (the engine's perturbation RNG for
// message delivery, the proc-local RNG for per-round noise, the file
// system's RNG for service tails). All of those generators are seeded from
// the run's seed, and the engine serializes execution, so two runs of the
// same program under the same Plan and seed produce bit-identical
// virtual-time results. A zero Plan perturbs nothing and never consumes a
// random draw, so runs under the "healthy" scenario are bit-identical to
// runs with no plan installed at all.
//
// Layer map (who applies what):
//
//	Stragglers  -> sim.Proc.Advance via the sim.Perturber hook (ComputeScale)
//	Net jitter  -> sim.Proc.Send via the sim.Perturber hook (DeliveryDelay)
//	Net.NodeBW  -> cluster.Transfer (per-node NIC bandwidth derating)
//	RoundNoise  -> mpiio round loops (RoundStall), the collective-wall probe
//	OSTs        -> lustre FS.svcTime (service scaling + downtime windows)
//	OSTFails    -> lustre FS.serve (retry engine, typed errors)
//	BBFails     -> bb Tier (staging-memory loss, write-through degradation)
//	DrainFails  -> bb Tier (drain retry/backoff, per-node breakers)
//	ServerFails -> pvfs FS (per-server retry, vectored->scalar fallback)
package fault

import (
	"math/rand"
	"sort"
)

// Straggler slows one rank's (or every rank's) local time: every Advance —
// CPU overheads and I/O waits alike — is stretched by Factor. It models a
// persistently slow node (thermal throttling, a sick disk path, an
// oversubscribed core).
type Straggler struct {
	Rank   int     // world rank; -1 applies to every rank
	Factor float64 // multiplicative slowdown, >= 1 (1 = no effect)
}

// RoundNoise injects heavy-tailed per-round compute stalls into the
// collective I/O round loop: before each round's synchronizing alltoall, an
// afflicted rank draws and, with probability Prob, stalls for Stall seconds
// (and with probability TailProb for TailStall seconds — the rare, large
// event). This is the perturbation the collective wall amplifies: a global
// protocol pays the maximum stall over all ranks every round, a partitioned
// protocol only the maximum within each subgroup.
type RoundNoise struct {
	Rank      int     // world rank; -1 applies to every rank
	Prob      float64 // per-rank per-round stall probability
	Stall     float64 // seconds added on a common stall event
	TailProb  float64 // per-rank per-round heavy-tail probability
	TailStall float64 // seconds added on a tail event
}

// OSTFault degrades one OST (or all): service times are multiplied by
// Scale, and the target is periodically unavailable — requests arriving
// inside a down window stall until it ends. Windows are
// [DownAt+k*DownEvery, DownAt+k*DownEvery+DownFor) for k = 0, 1, ...;
// DownEvery == 0 means the single window at DownAt. DownFor == 0 disables
// downtime.
type OSTFault struct {
	OST       int     // OST index; -1 applies to every OST
	Scale     float64 // service-time multiplier, >= 1 (0 and 1 = no effect)
	DownAt    float64 // start of the first unavailability window, seconds
	DownFor   float64 // window length, seconds
	DownEvery float64 // window period, seconds (0 = one-shot)
}

// NetFault perturbs message delivery. Jitter and spikes are drawn per
// message from the engine's perturbation RNG and added to the arrival time;
// NodeBWScale derates specific nodes' NIC bandwidth deterministically
// (a flaky link or a misrouted adapter).
type NetFault struct {
	JitterProb  float64 // per-message probability of a small delay
	JitterDelay float64 // maximum small delay, seconds (uniform draw)
	SpikeProb   float64 // per-message probability of a large delay spike
	SpikeDelay  float64 // spike delay, seconds (fixed)
	// NodeBWScale divides the named nodes' NIC bandwidth (2 = half speed).
	NodeBWScale map[int]float64
	// Message loss: each message whose unperturbed arrival falls inside the
	// loss window is independently dropped with probability LossProb and
	// retransmitted after RTO seconds, repeatedly, until a copy gets
	// through (capped at maxRetransmits). Loss therefore never deadlocks a
	// blocking receive — it shows up as a deterministic k*RTO delivery
	// delay, which is exactly how a reliable transport surfaces a lossy
	// link. LossUntil <= LossFrom means the window is unbounded.
	LossProb  float64
	LossFrom  float64 // window start (virtual seconds)
	LossUntil float64 // window end; <= LossFrom = open-ended
	RTO       float64 // retransmission timeout per lost copy
}

// maxRetransmits bounds the geometric retransmission draw so a pathological
// LossProb cannot stall a message forever.
const maxRetransmits = 8

// Crash is a fail-stop failure of one rank's I/O-aggregator role: from the
// start of round Round of the rank's Call-th collective call (1-based; Call
// 0 means the first call) the rank stops performing aggregator duties —
// no round announcements, no data collection, no OST writes — forever
// after. The *process* survives: it still holds its application data and
// keeps participating as a data source, which is what makes byte-exact
// recovery possible (the model is a dead I/O delegate — an aggregator
// thread, a burst-buffer node — not a lost memory image).
type Crash struct {
	Rank  int // world rank whose aggregator role dies
	Call  int // collective-call sequence number, 1-based (0 = first call)
	Round int // round within that call at whose start the role dies
}

// OSTFail injects request failures on one OST (or all, with OST == -1):
// requests arriving inside a failure window [At+k*Every, At+k*Every+For)
// fail with probability Prob (Prob >= 1 fails deterministically; For <= 0
// makes the window [At, inf)). Transient failures are retried by lustre's
// recovery engine with capped exponential backoff; Permanent marks the
// window's failures as unrecoverable (a dead target), surfacing a typed
// error to the caller instead.
type OSTFail struct {
	OST       int     // OST index; -1 applies to every OST
	Prob      float64 // per-request failure probability inside a window
	At        float64 // start of the first failure window, seconds
	For       float64 // window length, seconds (<= 0 = open-ended)
	Every     float64 // window period, seconds (0 = one-shot)
	Permanent bool    // failures are unrecoverable (no retry will succeed)
}

// BBFail is a fail-stop failure of one burst-buffer staging node (or all,
// with Node == -1): at virtual time At the node's staging memory is gone.
// Extents whose async drain to the under-backend completed by At survive;
// everything absorbed but not yet drained is lost — the bb tier punches the
// lost ranges out of the under-store, surfaces a typed
// storage.StagingLostError to the next writer/drainer, and flips the node
// permanently to write-through. The model is the storage-tier sibling of
// Crash: a dead I/O delegate, not a lost application memory image, so the
// ranks still hold (or can regenerate) the data and re-dump it.
type BBFail struct {
	Node int     // cluster node id; -1 kills every staging node
	At   float64 // failure instant, virtual seconds
}

// DrainFail injects failures into the burst buffer's async drain writes on
// one node (or all, with Node == -1), with the same windowing as OSTFail:
// drains issued inside [At+k*Every, At+k*Every+For) fail with probability
// Prob. Failed drains are retried by the tier's recovery engine (capped
// exponential backoff, per-node circuit breaker); an open breaker flips the
// node to write-through until its cooldown probe succeeds. Drain-retry time
// is charged at the Drain barrier, deterministically.
type DrainFail struct {
	Node  int     // cluster node id; -1 applies to every staging node
	Prob  float64 // per-drain failure probability inside a window
	At    float64 // start of the first failure window, seconds
	For   float64 // window length, seconds (<= 0 = open-ended)
	Every float64 // window period, seconds (0 = one-shot)
}

// Plan is one named fault scenario: the complete, declarative description
// of how a run is perturbed. The zero value is the healthy (unperturbed)
// plan.
type Plan struct {
	Name       string
	Stragglers []Straggler
	RoundNoise RoundNoise
	OSTs       []OSTFault
	Net        NetFault
	Crashes    []Crash
	OSTFails   []OSTFail
	// Storage-tier fail-stop families (DESIGN.md §15). BBFails and
	// DrainFails reach only the bb backend; ServerFails (the pvfs sibling of
	// OSTFails, same window shape, target ids are server indices) reaches
	// only the pvfs farm. A plan whose storage faults cannot touch the
	// selected backend is inert there — no draws, no clock shifts.
	BBFails     []BBFail
	DrainFails  []DrainFail
	ServerFails []OSTFail
}

// IsZero reports whether the plan perturbs nothing.
func (p *Plan) IsZero() bool {
	if p == nil {
		return true
	}
	return len(p.Stragglers) == 0 && !p.RoundNoise.active() &&
		len(p.OSTs) == 0 && !p.netActive() &&
		len(p.Crashes) == 0 && len(p.OSTFails) == 0 &&
		len(p.BBFails) == 0 && len(p.DrainFails) == 0 && len(p.ServerFails) == 0
}

func (n RoundNoise) active() bool {
	return n.Prob > 0 || n.TailProb > 0
}

func (p *Plan) netActive() bool {
	return p.Net.JitterProb > 0 || p.Net.SpikeProb > 0 ||
		len(p.Net.NodeBWScale) > 0 || p.Net.LossProb > 0
}

// --- sim.Perturber implementation -----------------------------------------

// ComputeScale returns the multiplicative slowdown of proc's local time
// advances (1 = unperturbed). It is a pure function of the proc id, so it
// consumes no randomness.
func (p *Plan) ComputeScale(proc int) float64 {
	s := 1.0
	for _, st := range p.Stragglers {
		if (st.Rank == -1 || st.Rank == proc) && st.Factor > 1 {
			s *= st.Factor
		}
	}
	return s
}

// DeliveryDelay returns extra seconds added to a message's arrival time;
// `at` is the message's unperturbed arrival. rng is the engine's dedicated
// perturbation generator; no draw happens unless the plan carries delivery
// jitter or an active loss window, so healthy plans leave the generator
// untouched.
func (p *Plan) DeliveryDelay(src, dst int, at float64, rng *rand.Rand) float64 {
	var d float64
	if p.Net.JitterProb > 0 && rng.Float64() < p.Net.JitterProb {
		d += p.Net.JitterDelay * rng.Float64()
	}
	if p.Net.SpikeProb > 0 && rng.Float64() < p.Net.SpikeProb {
		d += p.Net.SpikeDelay
	}
	if p.Net.LossProb > 0 && at >= p.Net.LossFrom &&
		(p.Net.LossUntil <= p.Net.LossFrom || at < p.Net.LossUntil) {
		k := 0
		for k < maxRetransmits && rng.Float64() < p.Net.LossProb {
			k++
		}
		d += float64(k) * p.Net.RTO
	}
	return d
}

// --- cluster hook ----------------------------------------------------------

// NodeBWDivisor returns the factor by which the node's NIC bandwidth is
// divided (1 = unperturbed).
func (p *Plan) NodeBWDivisor(node int) float64 {
	if p == nil {
		return 1
	}
	if s, ok := p.Net.NodeBWScale[node]; ok && s > 1 {
		return s
	}
	return 1
}

// --- mpiio hook -------------------------------------------------------------

// RoundStall returns the compute stall, in seconds, rank suffers before one
// collective I/O round. rng is the rank's proc-local generator; no draw
// happens when the plan carries no round noise or the rank is not afflicted.
func (p *Plan) RoundStall(rank int, rng *rand.Rand) float64 {
	if p == nil {
		return 0
	}
	n := p.RoundNoise
	if !n.active() || (n.Rank != -1 && n.Rank != rank) {
		return 0
	}
	var d float64
	if n.Prob > 0 && rng.Float64() < n.Prob {
		d += n.Stall
	}
	if n.TailProb > 0 && rng.Float64() < n.TailProb {
		d += n.TailStall
	}
	return d
}

// --- lustre hooks -----------------------------------------------------------

// OSTScale returns the service-time multiplier for the given OST
// (1 = unperturbed).
func (p *Plan) OSTScale(ost int) float64 {
	if p == nil {
		return 1
	}
	s := 1.0
	for _, f := range p.OSTs {
		if (f.OST == -1 || f.OST == ost) && f.Scale > 1 {
			s *= f.Scale
		}
	}
	return s
}

// --- fail-stop hooks --------------------------------------------------------

// HasCrashes reports whether the plan carries any fail-stop crashes.
func (p *Plan) HasCrashes() bool { return p != nil && len(p.Crashes) > 0 }

// AggCrashed reports whether rank's aggregator role is dead at round
// `round` of its call'th collective call (call is 1-based; a Crash with
// Call 0 matches the first call). Dead means the crash point lies at or
// before (call, round): crashes are permanent, so a rank that died in an
// earlier call — or an earlier round of this one — stays dead. Pure
// function of its arguments: no randomness, identical on every rank.
func (p *Plan) AggCrashed(rank, call, round int) bool {
	if p == nil {
		return false
	}
	for _, c := range p.Crashes {
		if c.Rank != rank {
			continue
		}
		cc := c.Call
		if cc == 0 {
			cc = 1
		}
		if call > cc || (call == cc && round >= c.Round) {
			return true
		}
	}
	return false
}

// OSTErrorAt decides whether a request arriving at OST `ost` at virtual
// time `at` fails, and whether that failure is permanent. rng is the file
// system's dedicated generator; no draw happens unless a failure window
// covers (ost, at), so plans without OST failures — and requests outside
// every window — leave it untouched.
func (p *Plan) OSTErrorAt(ost int, at float64, rng *rand.Rand) (failed, permanent bool) {
	if p == nil {
		return false, false
	}
	return failsAt(p.OSTFails, ost, at, rng)
}

// failsAt is the shared window/probability walk behind OSTErrorAt,
// ServerErrorAt, and DrainErrorAt: every matching entry whose window covers
// `at` draws (unless Prob >= 1, which short-circuits draw-free), and
// permanence accumulates across entries. Kept byte-identical to the PR-4
// OSTErrorAt draw pattern so existing goldens cannot move.
func failsAt(fails []OSTFail, target int, at float64, rng *rand.Rand) (failed, permanent bool) {
	for _, f := range fails {
		if (f.OST != -1 && f.OST != target) || f.Prob <= 0 {
			continue
		}
		start := f.At
		if f.Every > 0 && at > start {
			k := int((at - f.At) / f.Every)
			start = f.At + float64(k)*f.Every
		}
		if at < start || (f.For > 0 && at >= start+f.For) {
			continue
		}
		if f.Prob >= 1 || rng.Float64() < f.Prob {
			failed = true
			permanent = permanent || f.Permanent
		}
	}
	return failed, permanent
}

// --- storage-tier hooks -----------------------------------------------------

// HasBBFails reports whether the plan kills any burst-buffer staging node.
func (p *Plan) HasBBFails() bool { return p != nil && len(p.BBFails) > 0 }

// HasDrainFails reports whether the plan injects burst-buffer drain
// failures.
func (p *Plan) HasDrainFails() bool { return p != nil && len(p.DrainFails) > 0 }

// HasServerFails reports whether the plan injects pvfs server failures.
func (p *Plan) HasServerFails() bool { return p != nil && len(p.ServerFails) > 0 }

// BBFailAt returns the earliest virtual time at which the named staging
// node's memory dies, and whether any BBFail matches it at all. Pure
// function of the node id — fail-stop is not probabilistic.
func (p *Plan) BBFailAt(node int) (float64, bool) {
	if p == nil {
		return 0, false
	}
	var at float64
	found := false
	for _, f := range p.BBFails {
		if f.Node != -1 && f.Node != node {
			continue
		}
		if !found || f.At < at {
			at = f.At
		}
		found = true
	}
	return at, found
}

// BBDeadCount returns how many of the plan's staging-node deaths have
// already happened at virtual time t. It is the degradation epoch ParColl
// subgroups agree on before re-electing aggregators away from dead staging
// nodes: a pure function of the plan and a virtual clock, so every rank
// that reaches the same synchronized time computes the same count.
func (p *Plan) BBDeadCount(t float64) int {
	if p == nil {
		return 0
	}
	n := 0
	for _, f := range p.BBFails {
		if f.At <= t {
			n++
		}
	}
	return n
}

// BBDeadNodes returns the node ids of the epoch earliest scheduled staging
// deaths (ascending At, declaration order breaking ties) and true, or nil
// and false when any of them kills every node (Node == -1) — then there is
// no healthy node to re-elect onto and callers must keep their aggregators.
func (p *Plan) BBDeadNodes(epoch int) (map[int]bool, bool) {
	if p == nil || epoch <= 0 {
		return nil, false
	}
	idx := make([]int, len(p.BBFails))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return p.BBFails[idx[a]].At < p.BBFails[idx[b]].At })
	if epoch > len(idx) {
		epoch = len(idx)
	}
	dead := make(map[int]bool, epoch)
	for _, i := range idx[:epoch] {
		if p.BBFails[i].Node == -1 {
			return nil, false
		}
		dead[p.BBFails[i].Node] = true
	}
	return dead, true
}

// DrainErrorAt decides whether a drain issued on `node` at virtual time
// `at` fails. rng is the bb tier's dedicated generator; no draw happens
// unless a failure window covers (node, at), so plans without drain
// failures — and drains outside every window — leave it untouched.
func (p *Plan) DrainErrorAt(node int, at float64, rng *rand.Rand) bool {
	if p == nil || len(p.DrainFails) == 0 {
		return false
	}
	failed := false
	for _, f := range p.DrainFails {
		if (f.Node != -1 && f.Node != node) || f.Prob <= 0 {
			continue
		}
		start := f.At
		if f.Every > 0 && at > start {
			k := int((at - f.At) / f.Every)
			start = f.At + float64(k)*f.Every
		}
		if at < start || (f.For > 0 && at >= start+f.For) {
			continue
		}
		if f.Prob >= 1 || rng.Float64() < f.Prob {
			failed = true
		}
	}
	return failed
}

// ServerErrorAt decides whether a request arriving at pvfs server `server`
// at virtual time `at` fails, and whether permanently — the pvfs sibling of
// OSTErrorAt, same window semantics, same draw discipline, keyed by server
// index.
func (p *Plan) ServerErrorAt(server int, at float64, rng *rand.Rand) (failed, permanent bool) {
	if p == nil {
		return false, false
	}
	return failsAt(p.ServerFails, server, at, rng)
}

// OSTDownDelay returns how long a request arriving at virtual time `at`
// must wait for the OST to come back up (0 when the OST is up). Pure
// function of (ost, at): deterministic by construction.
func (p *Plan) OSTDownDelay(ost int, at float64) float64 {
	if p == nil {
		return 0
	}
	var delay float64
	for _, f := range p.OSTs {
		if (f.OST != -1 && f.OST != ost) || f.DownFor <= 0 {
			continue
		}
		start := f.DownAt
		if f.DownEvery > 0 && at > start {
			k := int((at - f.DownAt) / f.DownEvery)
			start = f.DownAt + float64(k)*f.DownEvery
		}
		if at >= start && at < start+f.DownFor {
			if d := start + f.DownFor - at; d > delay {
				delay = d
			}
		}
	}
	return delay
}
