package fault

import (
	"fmt"
	"sort"
)

// The named scenario catalog. Every scenario is a fixed Plan so experiment
// goldens can pin its results; new scenarios should be added here (and to
// DESIGN.md's "Fault model" section) rather than built ad hoc, so the
// determinism test sweep covers them automatically.

// Scenario names.
const (
	Healthy        = "healthy"
	OneStraggler   = "one-straggler"
	HotOST         = "hot-ost"
	JitteryNet     = "jittery-net"
	OneAggCrash    = "one-agg-crash"
	FlakyOST       = "flaky-ost"
	LossyNet       = "lossy-net"
	LostBBNode     = "lost-bb-node"
	FlakyDrain     = "flaky-drain"
	DeadPVFSServer = "dead-pvfs-server"
)

// scenarios maps each name to a constructor (fresh Plan per call: plans are
// shared-nothing so callers may tweak them).
var scenarios = map[string]func() *Plan{
	// healthy: the explicit no-fault baseline. Bit-identical to running
	// with no plan installed.
	Healthy: func() *Plan { return &Plan{Name: Healthy} },

	// one-straggler: rank 1 runs 4x slow and stalls at every collective
	// round, occasionally badly — one sick node dragging on every
	// synchronization that includes it.
	OneStraggler: func() *Plan {
		return &Plan{
			Name:       OneStraggler,
			Stragglers: []Straggler{{Rank: 1, Factor: 4}},
			RoundNoise: RoundNoise{Rank: 1, Prob: 1, Stall: 1e-2, TailProb: 0.1, TailStall: 5e-2},
		}
	},

	// hot-ost: OST 0 serves 3x slow and blinks out for 5 ms every 100 ms —
	// an overloaded or rebuilding target behind a shared stripe.
	HotOST: func() *Plan {
		return &Plan{
			Name: HotOST,
			OSTs: []OSTFault{{OST: 0, Scale: 3, DownAt: 2e-2, DownFor: 5e-3, DownEvery: 1e-1}},
		}
	},

	// jittery-net: every message risks a small uniform delay and, rarely, a
	// millisecond-class spike; node 0's NIC runs at half speed.
	JitteryNet: func() *Plan {
		return &Plan{
			Name: JitteryNet,
			Net: NetFault{
				JitterProb:  0.1,
				JitterDelay: 2e-5,
				SpikeProb:   0.005,
				SpikeDelay:  1e-3,
				NodeBWScale: map[int]float64{0: 2},
			},
		}
	},

	// one-agg-crash: rank 0's aggregator role fail-stops at the start of
	// round 1 of the first collective call — the canonical failover case:
	// the first round completes normally, then the lowest-rank aggregator
	// goes silent mid-collective and the survivors must detect, re-elect,
	// and absorb its remaining file domain.
	OneAggCrash: func() *Plan {
		return &Plan{
			Name:    OneAggCrash,
			Crashes: []Crash{{Rank: 0, Call: 1, Round: 1}},
		}
	},

	// flaky-ost: OST 0 rejects ~35% of requests during a 5 ms window every
	// 20 ms — a target riding an unstable controller. Failures are
	// transient: the retry engine's capped exponential backoff (and, under
	// repeated bursts, its circuit breaker) carries every request through.
	FlakyOST: func() *Plan {
		return &Plan{
			Name:     FlakyOST,
			OSTFails: []OSTFail{{OST: 0, Prob: 0.35, At: 0, For: 5e-3, Every: 2e-2}},
		}
	},

	// lossy-net: every message is dropped with 5% probability and
	// retransmitted on a 0.5 ms timer — a congested or error-prone fabric
	// surfacing, through a reliable transport, as bursty delivery delay.
	LossyNet: func() *Plan {
		return &Plan{
			Name: LossyNet,
			Net:  NetFault{LossProb: 0.05, RTO: 5e-4},
		}
	},

	// lost-bb-node: staging node 0's burst-buffer memory fail-stops 150 ms
	// into the run — inside the first checkpoint step's drain window for
	// the burst geometry, so extents absorbed at memory speed but not yet
	// drained are gone. The bb tier punches the lost ranges, surfaces
	// StagingLostError, flips the node to permanent write-through, and the
	// ranks re-dump what they lost. Inert on backends without a staging
	// tier.
	LostBBNode: func() *Plan {
		return &Plan{
			Name:    LostBBNode,
			BBFails: []BBFail{{Node: 0, At: 0.15}},
		}
	},

	// flaky-drain: every staging node's async drains fail ~50% of the time
	// during a 10 ms window every 20 ms — an under-backend riding an
	// unstable path. Failures are transient: the tier's capped exponential backoff
	// (and, under repeated bursts, its per-node breakers flipping nodes to
	// write-through until cooldown) carries every drain through; the retry
	// time is charged at the Drain barrier.
	FlakyDrain: func() *Plan {
		return &Plan{
			Name:       FlakyDrain,
			DrainFails: []DrainFail{{Node: -1, Prob: 0.5, At: 0, For: 1e-2, Every: 2e-2}},
		}
	},

	// dead-pvfs-server: server 0 rejects every request during a 2 ms window
	// starting 1 ms in, repeating every 50 ms — one list-I/O server
	// fail-stopping and rebooting. Prob 1 short-circuits draw-free; the
	// window is shorter than the default backoff budget, so the per-server
	// retry loop (the vectored call's scalar fallback against the surviving
	// farm) carries requests through. Inert on backends without a server
	// farm.
	DeadPVFSServer: func() *Plan {
		return &Plan{
			Name:        DeadPVFSServer,
			ServerFails: []OSTFail{{OST: 0, Prob: 1, At: 1e-3, For: 2e-3, Every: 5e-2}},
		}
	},
}

// Scenario returns a fresh Plan for the named scenario.
func Scenario(name string) (*Plan, error) {
	mk, ok := scenarios[name]
	if !ok {
		return nil, fmt.Errorf("fault: unknown scenario %q (have %v)", name, Names())
	}
	return mk(), nil
}

// Names lists the scenario catalog in sorted order.
func Names() []string {
	out := make([]string, 0, len(scenarios))
	for n := range scenarios {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SeverityPlan builds the straggler-severity plan the sweep experiment uses:
// distributed heavy-tailed per-round compute noise on every rank whose
// magnitude scales linearly with severity (0 = healthy). Under a globally
// synchronized protocol each round pays the maximum stall over all ranks;
// under ParColl only the maximum within each subgroup — so the elapsed-time
// gap between the two grows with severity. That growing gap is the paper's
// "collective wall" made quantitative.
func SeverityPlan(severity float64) *Plan {
	if severity <= 0 {
		return &Plan{Name: "severity-0"}
	}
	return &Plan{
		Name: fmt.Sprintf("severity-%g", severity),
		RoundNoise: RoundNoise{
			Rank:      -1,
			Prob:      0.02,
			Stall:     severity * 4e-3,
			TailProb:  0.005,
			TailStall: severity * 2e-2,
		},
	}
}
