package fault

import (
	"math/rand"
	"testing"
)

func TestIsZero(t *testing.T) {
	var nilPlan *Plan
	cases := []struct {
		name string
		p    *Plan
		want bool
	}{
		{"nil", nilPlan, true},
		{"empty", &Plan{}, true},
		{"named-only", &Plan{Name: "healthy"}, true},
		{"straggler", &Plan{Stragglers: []Straggler{{Rank: 1, Factor: 2}}}, false},
		{"round-noise", &Plan{RoundNoise: RoundNoise{Rank: -1, Prob: 0.1, Stall: 1e-3}}, false},
		{"ost", &Plan{OSTs: []OSTFault{{OST: 0, Scale: 2}}}, false},
		{"net-jitter", &Plan{Net: NetFault{JitterProb: 0.1, JitterDelay: 1e-5}}, false},
		{"net-bw", &Plan{Net: NetFault{NodeBWScale: map[int]float64{0: 2}}}, false},
		{"net-loss", &Plan{Net: NetFault{LossProb: 0.05, RTO: 5e-4}}, false},
		{"crash", &Plan{Crashes: []Crash{{Rank: 0, Call: 1, Round: 1}}}, false},
		{"ost-fail", &Plan{OSTFails: []OSTFail{{OST: 0, Prob: 0.5}}}, false},
	}
	for _, c := range cases {
		if got := c.p.IsZero(); got != c.want {
			t.Errorf("%s: IsZero() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestComputeScale(t *testing.T) {
	p := &Plan{Stragglers: []Straggler{
		{Rank: 1, Factor: 4},
		{Rank: -1, Factor: 1.5},
		{Rank: 2, Factor: 0.5}, // < 1: speedups are not a fault, ignored
	}}
	if got := p.ComputeScale(0); got != 1.5 {
		t.Errorf("rank 0 scale = %v, want 1.5 (wildcard only)", got)
	}
	if got := p.ComputeScale(1); got != 6 {
		t.Errorf("rank 1 scale = %v, want 6 (4 * wildcard 1.5)", got)
	}
	if got := p.ComputeScale(2); got != 1.5 {
		t.Errorf("rank 2 scale = %v, want 1.5 (sub-1 factor ignored)", got)
	}
	if got := (&Plan{}).ComputeScale(0); got != 1 {
		t.Errorf("zero plan scale = %v, want 1", got)
	}
}

func TestOSTScale(t *testing.T) {
	p := &Plan{OSTs: []OSTFault{{OST: 0, Scale: 3}, {OST: -1, Scale: 2}}}
	if got := p.OSTScale(0); got != 6 {
		t.Errorf("OST 0 scale = %v, want 6", got)
	}
	if got := p.OSTScale(5); got != 2 {
		t.Errorf("OST 5 scale = %v, want 2", got)
	}
	var nilPlan *Plan
	if got := nilPlan.OSTScale(0); got != 1 {
		t.Errorf("nil plan OST scale = %v, want 1", got)
	}
}

func TestOSTDownDelay(t *testing.T) {
	// One-shot window [0.5, 0.6).
	one := &Plan{OSTs: []OSTFault{{OST: 0, DownAt: 0.5, DownFor: 0.1}}}
	if got := one.OSTDownDelay(0, 0.4); got != 0 {
		t.Errorf("before window: %v, want 0", got)
	}
	if got := one.OSTDownDelay(0, 0.5); !close(got, 0.1) {
		t.Errorf("window start: %v, want 0.1", got)
	}
	if got := one.OSTDownDelay(0, 0.55); !close(got, 0.05) {
		t.Errorf("mid window: %v, want 0.05", got)
	}
	if got := one.OSTDownDelay(0, 0.6); got != 0 {
		t.Errorf("window end is exclusive: %v, want 0", got)
	}
	if got := one.OSTDownDelay(1, 0.55); got != 0 {
		t.Errorf("other OST: %v, want 0", got)
	}

	// Periodic: [0.1+k*1.0, +0.2).
	per := &Plan{OSTs: []OSTFault{{OST: -1, DownAt: 0.1, DownFor: 0.2, DownEvery: 1.0}}}
	for _, k := range []float64{0, 1, 5} {
		if got := per.OSTDownDelay(3, 0.15+k); !close(got, 0.15) {
			t.Errorf("period %v: %v, want 0.15", k, got)
		}
		if got := per.OSTDownDelay(3, 0.5+k); got != 0 {
			t.Errorf("up phase of period %v: %v, want 0", k, got)
		}
	}

	// DownFor == 0 disables downtime even with DownAt set.
	off := &Plan{OSTs: []OSTFault{{OST: 0, DownAt: 0.5}}}
	if got := off.OSTDownDelay(0, 0.5); got != 0 {
		t.Errorf("DownFor=0: %v, want 0", got)
	}
}

// TestDeliveryDelayDrawDiscipline checks the determinism contract's key
// clause: an inactive perturbation consumes no random draws, and an active
// one consumes draws in a fixed order — so installing a healthy plan cannot
// shift any downstream random stream.
func TestDeliveryDelayDrawDiscipline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(7))
	zero := &Plan{}
	if d := zero.DeliveryDelay(0, 1, 0, rng); d != 0 {
		t.Errorf("zero plan delay = %v, want 0", d)
	}
	if got := rng.Int63(); got != before {
		t.Error("zero plan consumed a random draw")
	}

	// Always-jitter plan: delay bounded by JitterDelay + SpikeDelay, >= 0.
	p := &Plan{Net: NetFault{JitterProb: 1, JitterDelay: 1e-4, SpikeProb: 1, SpikeDelay: 1e-3}}
	rng = rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		d := p.DeliveryDelay(0, 1, 0, rng)
		if d < 1e-3 || d > 1e-3+1e-4 {
			t.Fatalf("delay %v outside [1e-3, 1.1e-3]", d)
		}
	}

	// Same seed, same draws: bit-identical delays.
	a, b := rand.New(rand.NewSource(11)), rand.New(rand.NewSource(11))
	j := &Plan{Net: NetFault{JitterProb: 0.5, JitterDelay: 1e-4}}
	for i := 0; i < 100; i++ {
		if da, db := j.DeliveryDelay(0, 1, 0, a), j.DeliveryDelay(0, 1, 0, b); da != db {
			t.Fatalf("draw %d: %v != %v", i, da, db)
		}
	}
}

func TestRoundStall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var nilPlan *Plan
	if d := nilPlan.RoundStall(0, rng); d != 0 {
		t.Errorf("nil plan stall = %v", d)
	}

	// Rank-targeted noise: other ranks draw nothing.
	p := &Plan{RoundNoise: RoundNoise{Rank: 1, Prob: 1, Stall: 2e-3}}
	rng = rand.New(rand.NewSource(3))
	before := rng.Int63()
	rng = rand.New(rand.NewSource(3))
	if d := p.RoundStall(0, rng); d != 0 {
		t.Errorf("unafflicted rank stall = %v", d)
	}
	if got := rng.Int63(); got != before {
		t.Error("unafflicted rank consumed a draw")
	}
	if d := p.RoundStall(1, rng); d != 2e-3 {
		t.Errorf("afflicted rank stall = %v, want 2e-3", d)
	}

	// Certain common + certain tail stack.
	both := &Plan{RoundNoise: RoundNoise{Rank: -1, Prob: 1, Stall: 1e-3, TailProb: 1, TailStall: 1e-2}}
	if d := both.RoundStall(5, rng); !close(d, 1.1e-2) {
		t.Errorf("stacked stall = %v, want 1.1e-2", d)
	}
}

func TestScenarioCatalog(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("catalog has %d scenarios: %v", len(names), names)
	}
	for _, n := range names {
		p, err := Scenario(n)
		if err != nil {
			t.Fatalf("Scenario(%q): %v", n, err)
		}
		if p.Name != n {
			t.Errorf("Scenario(%q).Name = %q", n, p.Name)
		}
		if n == Healthy != p.IsZero() {
			t.Errorf("scenario %q: IsZero = %v", n, p.IsZero())
		}
	}
	if _, err := Scenario("no-such"); err == nil {
		t.Error("unknown scenario did not error")
	}
	// Fresh plan per call: callers may tweak their copy.
	a, _ := Scenario(HotOST)
	b, _ := Scenario(HotOST)
	if a == b {
		t.Error("Scenario returned a shared plan")
	}
}

func TestStorageTierHooks(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.HasBBFails() || nilPlan.HasDrainFails() || nilPlan.HasServerFails() {
		t.Fatal("nil plan claims storage faults")
	}
	if _, ok := nilPlan.BBFailAt(0); ok {
		t.Fatal("nil plan kills a bb node")
	}
	if nilPlan.DrainErrorAt(0, 1, nil) {
		t.Fatal("nil plan fails a drain")
	}

	p := &Plan{
		BBFails:     []BBFail{{Node: 2, At: 3e-3}, {Node: -1, At: 5e-3}},
		DrainFails:  []DrainFail{{Node: 1, Prob: 1, At: 1e-2, For: 5e-3, Every: 2e-2}},
		ServerFails: []OSTFail{{OST: 0, Prob: 1, At: 1e-3, For: 2e-3}},
	}
	if !p.HasBBFails() || !p.HasDrainFails() || !p.HasServerFails() || p.IsZero() {
		t.Fatal("storage families not reported")
	}
	// BBFailAt: node 2 matches both entries, earliest wins; node 7 only the
	// wildcard.
	if at, ok := p.BBFailAt(2); !ok || at != 3e-3 {
		t.Fatalf("BBFailAt(2) = %v, %v", at, ok)
	}
	if at, ok := p.BBFailAt(7); !ok || at != 5e-3 {
		t.Fatalf("BBFailAt(7) = %v, %v", at, ok)
	}

	// DrainErrorAt: windows are [At+k*Every, At+k*Every+For); Prob 1 is
	// draw-free (nil rng must not panic).
	if p.DrainErrorAt(1, 5e-3, nil) {
		t.Error("drain failed before the first window")
	}
	if !p.DrainErrorAt(1, 1.2e-2, nil) || !p.DrainErrorAt(1, 3.2e-2, nil) {
		t.Error("drain inside a window did not fail")
	}
	if p.DrainErrorAt(1, 1.8e-2, nil) || p.DrainErrorAt(0, 1.2e-2, nil) {
		t.Error("drain outside window or on other node failed")
	}
	// Probabilistic windows consume exactly one draw per covering entry.
	q := &Plan{DrainFails: []DrainFail{{Node: -1, Prob: 0.5, At: 0, For: 1}}}
	a, b := rand.New(rand.NewSource(11)), rand.New(rand.NewSource(11))
	if q.DrainErrorAt(0, 0.5, a) != (b.Float64() < 0.5) {
		t.Error("drain draw pattern differs from a bare Float64")
	}

	// ServerErrorAt mirrors OSTErrorAt's window semantics on ServerFails.
	if f, _ := p.ServerErrorAt(0, 2e-3, nil); !f {
		t.Error("server request inside the window did not fail")
	}
	if f, _ := p.ServerErrorAt(0, 5e-3, nil); f {
		t.Error("server request after the window failed")
	}
	if f, _ := p.ServerErrorAt(1, 2e-3, nil); f {
		t.Error("surviving server failed")
	}
	perm := &Plan{ServerFails: []OSTFail{{OST: -1, Prob: 1, Permanent: true}}}
	if f, pm := perm.ServerErrorAt(3, 10, nil); !f || !pm {
		t.Error("permanent server failure not reported")
	}
}

func TestSeverityPlan(t *testing.T) {
	if p := SeverityPlan(0); !p.IsZero() {
		t.Error("severity 0 is not a zero plan")
	}
	lo, hi := SeverityPlan(1), SeverityPlan(4)
	if lo.IsZero() || hi.IsZero() {
		t.Fatal("nonzero severity produced a zero plan")
	}
	if hi.RoundNoise.Stall != 4*lo.RoundNoise.Stall || hi.RoundNoise.TailStall != 4*lo.RoundNoise.TailStall {
		t.Errorf("stall magnitudes do not scale linearly: %+v vs %+v", lo.RoundNoise, hi.RoundNoise)
	}
	if lo.RoundNoise.Rank != -1 {
		t.Error("severity noise must afflict every rank")
	}
}

func TestAggCrashed(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.AggCrashed(0, 1, 0) {
		t.Error("nil plan reports a crash")
	}
	p := &Plan{Crashes: []Crash{{Rank: 3, Call: 2, Round: 1}}}
	cases := []struct {
		rank, call, round int
		want              bool
	}{
		{0, 2, 1, false}, // other rank never crashes
		{3, 1, 5, false}, // earlier call: still alive
		{3, 2, 0, false}, // crash call, round before the crash point
		{3, 2, 1, true},  // exact crash point
		{3, 2, 7, true},  // later round of the crash call
		{3, 3, 0, true},  // crashes are permanent across calls
	}
	for _, c := range cases {
		if got := p.AggCrashed(c.rank, c.call, c.round); got != c.want {
			t.Errorf("AggCrashed(%d, %d, %d) = %v, want %v", c.rank, c.call, c.round, got, c.want)
		}
	}
	// Call 0 means "the first call".
	first := &Plan{Crashes: []Crash{{Rank: 1, Call: 0, Round: 2}}}
	if first.AggCrashed(1, 1, 1) || !first.AggCrashed(1, 1, 2) {
		t.Error("Call 0 does not normalize to the first call")
	}
	if p.IsZero() || !p.HasCrashes() {
		t.Error("crash plan misclassified")
	}
}

func TestOSTErrorAt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var nilPlan *Plan
	if f, _ := nilPlan.OSTErrorAt(0, 1, rng); f {
		t.Error("nil plan fails a request")
	}

	// Deterministic failure inside periodic windows [k*0.02, k*0.02+0.005).
	p := &Plan{OSTFails: []OSTFail{{OST: 0, Prob: 1, At: 0, For: 5e-3, Every: 2e-2}}}
	if f, perm := p.OSTErrorAt(0, 1e-3, rng); !f || perm {
		t.Errorf("in-window request: failed=%v permanent=%v, want true,false", f, perm)
	}
	if f, _ := p.OSTErrorAt(0, 1e-2, rng); f {
		t.Error("out-of-window request failed")
	}
	if f, _ := p.OSTErrorAt(0, 2.1e-2, rng); !f {
		t.Error("second-period in-window request did not fail")
	}
	if f, _ := p.OSTErrorAt(1, 1e-3, rng); f {
		t.Error("other OST failed")
	}

	// Outside every window, no draw is consumed even with Prob < 1.
	flaky := &Plan{OSTFails: []OSTFail{{OST: 0, Prob: 0.5, At: 1, For: 1}}}
	a := rand.New(rand.NewSource(9))
	before := a.Int63()
	a = rand.New(rand.NewSource(9))
	flaky.OSTErrorAt(0, 0.5, a)
	if got := a.Int63(); got != before {
		t.Error("out-of-window check consumed a random draw")
	}

	// Permanent failures are flagged; open-ended window (For <= 0).
	dead := &Plan{OSTFails: []OSTFail{{OST: 2, Prob: 1, At: 0.1, Permanent: true}}}
	if f, perm := dead.OSTErrorAt(2, 50, rng); !f || !perm {
		t.Errorf("dead OST: failed=%v permanent=%v, want true,true", f, perm)
	}
	if f, _ := dead.OSTErrorAt(2, 0.05, rng); f {
		t.Error("request before the window failed")
	}
}

func TestDeliveryDelayLoss(t *testing.T) {
	// Certain loss: every copy up to the retransmit cap is dropped, so the
	// delay is exactly maxRetransmits*RTO — bounded, never a deadlock.
	p := &Plan{Net: NetFault{LossProb: 1, RTO: 1e-3}}
	rng := rand.New(rand.NewSource(2))
	if d := p.DeliveryDelay(0, 1, 0.5, rng); !close(d, float64(maxRetransmits)*1e-3) {
		t.Errorf("certain-loss delay = %v, want %v", d, float64(maxRetransmits)*1e-3)
	}

	// Windowed loss: arrivals outside [From, Until) consume no draws.
	w := &Plan{Net: NetFault{LossProb: 0.5, RTO: 1e-3, LossFrom: 1, LossUntil: 2}}
	a := rand.New(rand.NewSource(4))
	before := a.Int63()
	a = rand.New(rand.NewSource(4))
	if d := w.DeliveryDelay(0, 1, 0.5, a); d != 0 {
		t.Errorf("pre-window delay = %v", d)
	}
	if d := w.DeliveryDelay(0, 1, 2.5, a); d != 0 {
		t.Errorf("post-window delay = %v", d)
	}
	if got := a.Int63(); got != before {
		t.Error("out-of-window messages consumed random draws")
	}

	// In-window delays are multiples of RTO and bit-identical across seeds.
	x, y := rand.New(rand.NewSource(6)), rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		dx, dy := w.DeliveryDelay(0, 1, 1.5, x), w.DeliveryDelay(0, 1, 1.5, y)
		if dx != dy {
			t.Fatalf("draw %d: %v != %v", i, dx, dy)
		}
		k := dx / 1e-3
		if k != float64(int(k)) || k < 0 || k > float64(maxRetransmits) {
			t.Fatalf("delay %v is not a bounded RTO multiple", dx)
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}
