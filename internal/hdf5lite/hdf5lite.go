// Package hdf5lite is a minimal self-describing scientific container in the
// spirit of HDF5, written through collective MPI-IO. Flash I/O writes its
// checkpoints through HDF5 over MPI-IO; what matters for the paper's
// experiments is the request-size and segment-count profile of that path,
// which this package preserves: a small header written by rank 0 plus a
// sequence of large datasets written collectively by all ranks.
//
// Layout:
//
//	superblock:  8-byte magic "HLITE\x00\x01\x00", 4-byte dataset count,
//	             4-byte attribute count
//	per dataset: 64-byte name, 8-byte total size, 8-byte base offset
//	per attr:    64-byte name, 4-byte length, value bytes (attrs sorted)
//	data:        each dataset 4 KiB-aligned
package hdf5lite

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/datatype"
)

// Magic identifies an hdf5lite file.
var Magic = [8]byte{'H', 'L', 'I', 'T', 'E', 0, 1, 0}

const (
	nameLen   = 64
	dsRecLen  = nameLen + 16
	dataAlign = 4096
)

// CollectiveFile is the slice of the MPI-IO interface hdf5lite needs; both
// *core.File (ParColl) and *mpiio.File (plain two-phase) satisfy it.
type CollectiveFile interface {
	SetView(datatype.View)
	WriteAtAll(logOff int64, data []byte)
	ReadAtAll(logOff, n int64) []byte
}

// Dataset is a named contiguous region of the container.
type Dataset struct {
	Name  string
	Total int64
	Base  int64
}

// File is an hdf5lite container bound to a collective MPI-IO file.
type File struct {
	cf       CollectiveFile
	isWriter bool // rank 0 writes the header
	datasets []Dataset
	byName   map[string]*Dataset
	attrs    map[string]string
}

// Spec declares a dataset before creation.
type Spec struct {
	Name  string
	Total int64
}

// HeaderBytes returns the header size for n datasets and no attributes.
func HeaderBytes(n int) int64 { return HeaderBytesAttrs(n, nil) }

// HeaderBytesAttrs returns the header size for n datasets plus attributes.
func HeaderBytesAttrs(n int, attrs map[string]string) int64 {
	sz := int64(16 + n*dsRecLen)
	for _, v := range attrs {
		sz += nameLen + 4 + int64(len(v))
	}
	return align(sz)
}

func align(n int64) int64 {
	return (n + dataAlign - 1) / dataAlign * dataAlign
}

// Create lays out the container and collectively writes the header (rank 0
// supplies the bytes; every rank must call Create). isWriter must be true
// on exactly one rank.
func Create(cf CollectiveFile, isWriter bool, specs []Spec) *File {
	return CreateWithAttrs(cf, isWriter, specs, nil)
}

// CreateWithAttrs is Create with string attributes stored in the header
// (simulation metadata, as Flash records alongside its checkpoints). All
// ranks must pass identical attributes.
func CreateWithAttrs(cf CollectiveFile, isWriter bool, specs []Spec, attrs map[string]string) *File {
	f := &File{cf: cf, isWriter: isWriter, byName: make(map[string]*Dataset), attrs: attrs}
	for k := range attrs {
		if len(k) >= nameLen {
			panic(fmt.Sprintf("hdf5lite: attribute name %q too long", k))
		}
	}
	off := HeaderBytesAttrs(len(specs), attrs)
	for _, s := range specs {
		if len(s.Name) >= nameLen {
			panic(fmt.Sprintf("hdf5lite: dataset name %q too long", s.Name))
		}
		f.datasets = append(f.datasets, Dataset{Name: s.Name, Total: s.Total, Base: off})
		off = align(off + s.Total)
	}
	for i := range f.datasets {
		f.byName[f.datasets[i].Name] = &f.datasets[i]
	}
	// Collective header write: rank 0 contributes the header bytes,
	// everyone else participates with nothing.
	var hdr []byte
	if isWriter {
		hdr = f.encodeHeader()
	}
	cf.SetView(datatype.View{Disp: 0, Filetype: datatype.Contig(int64(len(hdr)))})
	cf.WriteAtAll(0, hdr)
	return f
}

func (f *File) encodeHeader() []byte {
	out := make([]byte, HeaderBytesAttrs(len(f.datasets), f.attrs))
	copy(out, Magic[:])
	binary.LittleEndian.PutUint32(out[8:], uint32(len(f.datasets)))
	binary.LittleEndian.PutUint32(out[12:], uint32(len(f.attrs)))
	p := 16
	for _, d := range f.datasets {
		copy(out[p:p+nameLen], d.Name)
		binary.LittleEndian.PutUint64(out[p+nameLen:], uint64(d.Total))
		binary.LittleEndian.PutUint64(out[p+nameLen+8:], uint64(d.Base))
		p += dsRecLen
	}
	names := make([]string, 0, len(f.attrs))
	for k := range f.attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		copy(out[p:p+nameLen], k)
		v := f.attrs[k]
		binary.LittleEndian.PutUint32(out[p+nameLen:], uint32(len(v)))
		copy(out[p+nameLen+4:], v)
		p += nameLen + 4 + len(v)
	}
	return out
}

// ParseHeader decodes a container header from raw file bytes, returning
// the datasets and attributes.
func ParseHeader(raw []byte) ([]Dataset, map[string]string, error) {
	if len(raw) < 16 || string(raw[:8]) != string(Magic[:]) {
		return nil, nil, fmt.Errorf("hdf5lite: bad magic")
	}
	n := int(binary.LittleEndian.Uint32(raw[8:]))
	na := int(binary.LittleEndian.Uint32(raw[12:]))
	if len(raw) < 16+n*dsRecLen {
		return nil, nil, fmt.Errorf("hdf5lite: truncated header")
	}
	out := make([]Dataset, n)
	p := 16
	cstr := func(b []byte) string {
		end := 0
		for end < len(b) && b[end] != 0 {
			end++
		}
		return string(b[:end])
	}
	for i := range out {
		out[i] = Dataset{
			Name:  cstr(raw[p : p+nameLen]),
			Total: int64(binary.LittleEndian.Uint64(raw[p+nameLen:])),
			Base:  int64(binary.LittleEndian.Uint64(raw[p+nameLen+8:])),
		}
		p += dsRecLen
	}
	attrs := make(map[string]string, na)
	for i := 0; i < na; i++ {
		if p+nameLen+4 > len(raw) {
			return nil, nil, fmt.Errorf("hdf5lite: truncated attributes")
		}
		k := cstr(raw[p : p+nameLen])
		vlen := int(binary.LittleEndian.Uint32(raw[p+nameLen:]))
		p += nameLen + 4
		if p+vlen > len(raw) {
			return nil, nil, fmt.Errorf("hdf5lite: truncated attribute value")
		}
		attrs[k] = string(raw[p : p+vlen])
		p += vlen
	}
	return out, attrs, nil
}

// Attr returns an attribute value ("" when absent).
func (f *File) Attr(name string) string { return f.attrs[name] }

// Dataset returns the named dataset's layout.
func (f *File) Dataset(name string) Dataset {
	d, ok := f.byName[name]
	if !ok {
		panic(fmt.Sprintf("hdf5lite: unknown dataset %q", name))
	}
	return *d
}

// Datasets lists the container's datasets in file order.
func (f *File) Datasets() []Dataset { return f.datasets }

// WriteAll collectively writes this rank's portion of the dataset at the
// given offset within it. Every rank must call it (possibly with no data).
func (f *File) WriteAll(name string, myOff int64, data []byte) {
	d := f.Dataset(name)
	if myOff+int64(len(data)) > d.Total {
		panic(fmt.Sprintf("hdf5lite: write beyond dataset %q", name))
	}
	f.cf.SetView(datatype.View{Disp: d.Base + myOff, Filetype: datatype.Contig(int64(len(data)))})
	f.cf.WriteAtAll(0, data)
}

// ReadAll collectively reads n bytes of this rank's portion at myOff.
func (f *File) ReadAll(name string, myOff, n int64) []byte {
	d := f.Dataset(name)
	f.cf.SetView(datatype.View{Disp: d.Base + myOff, Filetype: datatype.Contig(n)})
	return f.cf.ReadAtAll(0, n)
}
