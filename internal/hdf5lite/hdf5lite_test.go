package hdf5lite

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lustre"
	"repro/internal/mpi"
)

func testStripe() lustre.StripeInfo { return lustre.StripeInfo{Count: 4, Size: 4096} }

func TestHeaderRoundTrip(t *testing.T) {
	specs := []Spec{{"alpha", 1000}, {"beta", 2000}}
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.Run(2, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		cf := core.Open(mpi.WorldComm(r), fs, "h", testStripe(), core.Options{})
		h := Create(cf, r.WorldRank() == 0, specs)
		a := h.Dataset("alpha")
		b := h.Dataset("beta")
		if a.Base != HeaderBytes(2) {
			t.Errorf("alpha base = %d want %d", a.Base, HeaderBytes(2))
		}
		if b.Base <= a.Base+a.Total-1 {
			t.Errorf("beta base %d overlaps alpha", b.Base)
		}
		if b.Base%4096 != 0 {
			t.Errorf("beta base %d not aligned", b.Base)
		}
	})
	var raw []byte
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		raw = fs.Open(r, "h", testStripe()).ReadAt(r, 0, HeaderBytes(2))
	})
	ds, attrs, err := ParseHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 0 {
		t.Errorf("unexpected attrs %v", attrs)
	}
	if len(ds) != 2 || ds[0].Name != "alpha" || ds[1].Name != "beta" ||
		ds[0].Total != 1000 || ds[1].Total != 2000 {
		t.Errorf("parsed %+v", ds)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, _, err := ParseHeader([]byte("not a header at all....")); err == nil {
		t.Error("bad magic accepted")
	}
	short := append([]byte{}, Magic[:]...)
	short = append(short, 9, 0, 0, 0, 0, 0, 0, 0) // claims 9 datasets, no records
	if _, _, err := ParseHeader(short); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestDatasetWriteReadCollective(t *testing.T) {
	const n = 4
	const per = 2500
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.Run(n, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		cf := core.Open(comm, fs, "d", testStripe(), core.Options{NumGroups: 2})
		h := Create(cf, r.WorldRank() == 0, []Spec{{"data", per * n}})
		me := r.WorldRank()
		buf := make([]byte, per)
		for i := range buf {
			buf[i] = byte(me*7 + i)
		}
		h.WriteAll("data", int64(me)*per, buf)
		comm.Barrier()
		got := h.ReadAll("data", int64(me)*per, per)
		if !bytes.Equal(got, buf) {
			t.Errorf("rank %d dataset read-back mismatch", me)
		}
	})
}

func TestUnknownDatasetPanics(t *testing.T) {
	fs := lustre.NewFS(lustre.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		cf := core.Open(mpi.WorldComm(r), fs, "u", testStripe(), core.Options{})
		h := Create(cf, true, []Spec{{"x", 10}})
		h.Dataset("nope")
	})
}

func TestWriteBeyondDatasetPanics(t *testing.T) {
	fs := lustre.NewFS(lustre.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		cf := core.Open(mpi.WorldComm(r), fs, "w", testStripe(), core.Options{})
		h := Create(cf, true, []Spec{{"x", 10}})
		h.WriteAll("x", 5, make([]byte, 10))
	})
}

func TestHeaderBytesAlignment(t *testing.T) {
	for _, n := range []int{0, 1, 24, 200} {
		hb := HeaderBytes(n)
		if hb%4096 != 0 {
			t.Errorf("HeaderBytes(%d) = %d not aligned", n, hb)
		}
		if hb < int64(12+n*dsRecLen) {
			t.Errorf("HeaderBytes(%d) = %d too small", n, hb)
		}
	}
}

func TestAttributesRoundTrip(t *testing.T) {
	fs := lustre.NewFS(lustre.DefaultConfig())
	attrs := map[string]string{"step": "42", "time": "1.25", "code": "flash"}
	mpi.Run(2, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		cf := core.Open(mpi.WorldComm(r), fs, "at", testStripe(), core.Options{})
		h := CreateWithAttrs(cf, r.WorldRank() == 0, []Spec{{"d", 100}}, attrs)
		if h.Attr("step") != "42" {
			t.Errorf("Attr(step) = %q", h.Attr("step"))
		}
	})
	var raw []byte
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		raw = fs.Open(r, "at", testStripe()).ReadAt(r, 0, HeaderBytesAttrs(1, attrs))
	})
	_, got, err := ParseHeader(raw)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range attrs {
		if got[k] != v {
			t.Errorf("attr %q = %q want %q", k, got[k], v)
		}
	}
}
