package tenancy

import (
	"reflect"
	"testing"

	"repro/internal/experiments"
	"repro/internal/qos"
)

// The multi-tenant layer inherits the engine's determinism contract: a
// trace's report is a pure function of (specs, policy, seed) — bit-identical
// across repeated runs and across engine worker counts, healthy or faulted.
// These tests pin that on the canonical 4-job mixed trace with every job's
// data verified byte-for-byte in-sim.

func mixedFor(scenario string, workers int) Trace {
	tr := MixedTrace(4)
	tr.Policy = qos.NameFairShare
	tr.Scenario = scenario
	tr.Workers = workers
	return tr
}

func mustRun(t *testing.T, tr Trace) Report {
	t.Helper()
	rep, err := Run(experiments.BenchPreset(), tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range rep.Jobs {
		if !j.Verified {
			t.Fatalf("job %s failed byte-exact verification", j.Name)
		}
	}
	return rep
}

func TestRunTwiceBitIdentical(t *testing.T) {
	for _, scenario := range []string{"", "one-straggler"} {
		a := mustRun(t, mixedFor(scenario, 1))
		b := mustRun(t, mixedFor(scenario, 1))
		if !reflect.DeepEqual(a, b) {
			t.Errorf("scenario %q: two identical runs differ:\n%+v\n%+v", scenario, a, b)
		}
	}
}

func TestWorkerCountBitIdentical(t *testing.T) {
	for _, scenario := range []string{"", "one-straggler"} {
		serial := mustRun(t, mixedFor(scenario, 1))
		parallel := mustRun(t, mixedFor(scenario, 4))
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("scenario %q: 1-worker and 4-worker reports differ:\n%+v\n%+v",
				scenario, serial, parallel)
		}
	}
}

// TestQuantilesOrderIndependent pins the reason worker-count identity holds
// for the latency quantiles: the recorder's quantile is a pure function of
// the sample multiset, not of arrival order (worker counts only permute the
// wall-clock order in which ranks record).
func TestQuantilesOrderIndependent(t *testing.T) {
	tr := mixedFor("", 1)
	a := mustRun(t, tr)
	for i, j := range mustRun(t, tr).Jobs {
		if j.P50 != a.Jobs[i].P50 || j.P99 != a.Jobs[i].P99 {
			t.Fatalf("job %s quantiles unstable", j.Name)
		}
		if j.CollCalls == 0 {
			t.Fatalf("job %s recorded no collective calls", j.Name)
		}
		if j.P99 < j.P50 {
			t.Fatalf("job %s: p99 %.6f < p50 %.6f", j.Name, j.P99, j.P50)
		}
	}
}
