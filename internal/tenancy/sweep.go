package tenancy

import (
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/qos"
)

// Sweep runs the same trace under each named QoS policy (all of
// qos.Names() when policies is empty), with isolated baselines, and returns
// one Report per policy in order — the data behind the EXPERIMENTS.md
// "Shared-filesystem interference" tables. The trace's own Policy field is
// ignored; everything else (jobs, scenario, backend, seed) is held fixed so
// the reports differ only in server-side scheduling.
func Sweep(p experiments.Preset, t Trace, policies []string) ([]Report, error) {
	if len(policies) == 0 {
		policies = qos.Names()
	}
	out := make([]Report, 0, len(policies))
	for _, pol := range policies {
		tt := t
		tt.Policy = pol
		rep, err := RunWithBaseline(p, tt)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// MixedTrace is the canonical 4-job demonstration trace: a hog-sized tile
// job, BT-IO and IOR mid-sized tenants, and a small checkpoint-burst job,
// arriving staggered so the small job lands on servers the hog has already
// loaded. It is the geometry the determinism suite, the acceptance tests,
// and cmd/tenants' default run all share. procsPerJob scales the shape
// (btio runs on the nearest square >= procsPerJob).
func MixedTrace(procsPerJob int) Trace {
	if procsPerJob < 4 {
		procsPerJob = 4
	}
	sq := 1
	for sq*sq < procsPerJob {
		sq++
	}
	return Trace{
		Jobs: []job.Spec{
			{Name: "tile-hog", Workload: job.WorkloadTileIO, Procs: 2 * procsPerJob, Groups: 4},
			{Name: "btio", Workload: job.WorkloadBTIO, Procs: sq * sq, Groups: 2, Arrival: 0.002, Steps: 2},
			{Name: "ior", Workload: job.WorkloadIOR, Procs: procsPerJob, Groups: 2, Arrival: 0.004},
			{Name: "ckpt-small", Workload: job.WorkloadCheckpoint, Procs: procsPerJob / 2, Groups: 2,
				Arrival: 0.006, Steps: 2, BlockBytes: 4 << 10, Interleave: 1 << 10},
		},
	}
}
