package tenancy

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/qos"
)

func TestTraceRoundTrip(t *testing.T) {
	tr := MixedTrace(8)
	tr.Policy = qos.NameFairShare
	tr.Scenario = "one-straggler"
	tr.Seed = 7
	tr.Workers = 4
	got, err := DecodeTrace(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestDecodeTraceRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeTrace([]byte(`{"jobs": [], "polcy": "fifo"}`)); err == nil {
		t.Fatal("want error for unknown field, got nil")
	}
	if _, err := DecodeTrace([]byte(`{"jobs": []} {"jobs": []}`)); err == nil {
		t.Fatal("want error for trailing data, got nil")
	}
}

func TestTraceDefaults(t *testing.T) {
	tr := Trace{Jobs: []job.Spec{
		{Workload: job.WorkloadIOR, Procs: 4},
		{Workload: job.WorkloadIOR, Procs: 4},
	}}
	d := tr.WithDefaults()
	if d.Policy != qos.NameFIFO || d.Backend != "lustre" || d.Seed != 1 || d.Workers != 1 {
		t.Fatalf("trace defaults wrong: %+v", d)
	}
	// Anonymous jobs get unique index-derived names; trace-level knobs are
	// stamped onto every job so specs stay self-consistent.
	if d.Jobs[0].Name != "ior0" || d.Jobs[1].Name != "ior1" {
		t.Fatalf("job name defaults wrong: %q, %q", d.Jobs[0].Name, d.Jobs[1].Name)
	}
	for i, s := range d.Jobs {
		if s.Backend != "lustre" || s.Seed != 1 || s.Workers != 1 {
			t.Fatalf("job %d did not inherit trace knobs: %+v", i, s)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("defaulted trace invalid: %v", err)
	}
}

func TestTraceValidate(t *testing.T) {
	base := func() Trace {
		return Trace{Jobs: []job.Spec{
			{Name: "a", Workload: job.WorkloadIOR, Procs: 4},
			{Name: "b", Workload: job.WorkloadTileIO, Procs: 4},
		}}
	}
	cases := []struct {
		name  string
		mut   func(*Trace)
		field string
	}{
		{"empty", func(tr *Trace) { tr.Jobs = nil }, "Jobs"},
		{"bad policy", func(tr *Trace) { tr.Policy = "wfq" }, "Policy"},
		{"dup name", func(tr *Trace) { tr.Jobs[1].Name = "a" }, "Jobs[1].Name"},
		{"job scenario", func(tr *Trace) { tr.Jobs[0].Scenario = "one-straggler" }, "Jobs[0].Scenario"},
		{"job backend", func(tr *Trace) { tr.Jobs[1].Backend = "bb" }, "Jobs[1].Backend"},
		{"job workers", func(tr *Trace) { tr.Jobs[0].Workers = 8 }, "Jobs[0].Workers"},
		{"job procs", func(tr *Trace) { tr.Jobs[0].Procs = 0 }, "Jobs[0].Procs"},
	}
	for _, tc := range cases {
		tr := base()
		tc.mut(&tr)
		tr = tr.WithDefaults()
		// Re-apply the mutation where WithDefaults would have stamped over it.
		tc.mut(&tr)
		err := tr.Validate()
		var ve *job.ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: want ValidationError, got %v", tc.name, err)
			continue
		}
		if !strings.HasPrefix(ve.Field, tc.field) {
			t.Errorf("%s: field = %q, want prefix %q", tc.name, ve.Field, tc.field)
		}
	}
}

func TestMixedTraceShape(t *testing.T) {
	tr := MixedTrace(8).WithDefaults()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 4 {
		t.Fatalf("MixedTrace has %d jobs, want 4", len(tr.Jobs))
	}
	if got := tr.Procs(); got != 16+9+8+4 {
		t.Fatalf("Procs() = %d, want 37", got)
	}
	// The trace must exercise all of: a hog, staggered arrivals, and a
	// latency-sensitive small job.
	if tr.Jobs[0].Procs <= tr.Jobs[3].Procs {
		t.Fatal("hog is not larger than the small job")
	}
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Arrival <= tr.Jobs[i-1].Arrival {
			t.Fatal("arrivals are not staggered")
		}
	}
}
