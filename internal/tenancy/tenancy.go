// Package tenancy runs several independent applications — a trace of
// job.Specs with staggered arrivals — concurrently against ONE simulated
// machine: shared OSTs, shared NICs, shared staging nodes, one deterministic
// simulation. It is the multi-tenant layer the paper's single-application
// experiments lack: the "collective wall" gets strictly worse when another
// job's requests interleave on the same targets, and ParColl's partitioning
// confines that interference the same way it confines stragglers.
//
// Mechanics (DESIGN.md §16):
//
//   - Jobs are packed contiguously in world-rank order with NO node padding:
//     a boundary node can host the tail of one job and the head of the next,
//     so those jobs share a NIC — deliberate, that is what space-shared
//     schedulers without node-exclusive allocation do.
//   - Each rank arms its job namespace (mpi.Rank.SetJob) before any
//     communication: mpi.WorldComm then spans the job, so every workload —
//     all written against "the world" — runs unmodified inside a trace.
//   - Arrival staggering is a plain AdvanceTo on the rank's clock before the
//     job's first operation: unscaled by straggler plans, so the trace shape
//     is a property of the input, not the fault scenario.
//   - Server-side QoS: one qos.Policy instance attached to the shared
//     backend shapes every request's earliest service start, keyed by the
//     issuing rank's JobID. Policies see engine-serialized admission calls,
//     so the trace stays a pure function of (specs, policy, seed) at every
//     engine worker count.
//   - Verification runs in-sim: every job reads its files back byte-for-byte
//     before reporting, so cross-job interference can never silently corrupt
//     a result.
package tenancy

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/job"
	"repro/internal/qos"
)

// Trace is a multi-tenant run description: the jobs, the QoS policy the
// shared servers apply, and the machine-level knobs every job shares. It is
// JSON-round-trippable like job.Spec (cmd/tenants' -trace flag reads one).
type Trace struct {
	// Jobs are the tenant applications, with per-job geometry and arrival
	// times. Names must be unique; machine-level fields (Backend, Scenario,
	// Workers, PEsPerNode) must be left to the trace.
	Jobs []job.Spec `json:"jobs"`
	// Policy names the server-side QoS policy: "fifo" (default — arrival
	// order, no shaping), "fair" (per-target start-time fair queueing), or
	// "tbucket" (per-job token buckets).
	Policy string `json:"policy,omitempty"`
	// Scenario names a fault scenario applied to the shared hardware ("" =
	// healthy). Faults are a property of the machine, not of one tenant.
	Scenario string `json:"scenario,omitempty"`
	// Backend selects the shared storage backend (default "lustre").
	Backend string `json:"backend,omitempty"`
	// BBCapacity / BBDrainBW configure the "bb" backend's staging tier.
	BBCapacity int64   `json:"bb_capacity,omitempty"`
	BBDrainBW  float64 `json:"bb_drain_bw,omitempty"`
	// Seed is the simulation seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Workers selects the engine (<= 1 serial; results bit-identical).
	Workers int `json:"workers,omitempty"`
	// PEsPerNode overrides the node width (0 = the cluster default).
	PEsPerNode int `json:"pes_per_node,omitempty"`
	// IntraNode turns on two-level collective I/O for every job.
	IntraNode bool `json:"intranode,omitempty"`
}

// WithDefaults fills the trace-level defaults and each job's spec defaults
// (job names fall back to "<workload><index>" so a hand-written trace of
// four anonymous jobs still gets unique names).
func (t Trace) WithDefaults() Trace {
	if t.Policy == "" {
		t.Policy = qos.NameFIFO
	}
	if t.Backend == "" {
		t.Backend = "lustre"
	}
	if t.Seed == 0 {
		t.Seed = 1
	}
	if t.Workers == 0 {
		t.Workers = 1
	}
	jobs := make([]job.Spec, len(t.Jobs))
	for i, s := range t.Jobs {
		if s.Name == "" && s.Workload != "" {
			s.Name = fmt.Sprintf("%s%d", s.Workload, i)
		}
		s = s.WithDefaults()
		// Machine-level knobs are the trace's; stamp them so each job's
		// spec is self-consistent (Validate rejects conflicting values).
		s.Backend = t.Backend
		s.Workers = t.Workers
		s.PEsPerNode = t.PEsPerNode
		s.Seed = t.Seed
		jobs[i] = s
	}
	t.Jobs = jobs
	return t
}

// Validate checks the trace after WithDefaults: at least one job, every
// job valid, names unique, and no job trying to set a machine-level knob
// the trace owns. Violations come back as job.ValidationError with the
// field qualified by the job's position.
func (t Trace) Validate() error {
	if len(t.Jobs) == 0 {
		return &job.ValidationError{Field: "Jobs", Msg: "empty trace"}
	}
	if _, err := qos.New(t.Policy); err != nil {
		return &job.ValidationError{Field: "Policy", Msg: err.Error()}
	}
	seen := make(map[string]bool, len(t.Jobs))
	for i, s := range t.Jobs {
		qual := func(f string) string { return fmt.Sprintf("Jobs[%d].%s", i, f) }
		if err := s.Validate(); err != nil {
			if ve, ok := err.(*job.ValidationError); ok {
				return &job.ValidationError{Field: qual(ve.Field), Msg: ve.Msg}
			}
			return err
		}
		if seen[s.Name] {
			return &job.ValidationError{Field: qual("Name"), Msg: fmt.Sprintf("duplicate name %q", s.Name)}
		}
		seen[s.Name] = true
		if s.Scenario != "" {
			return &job.ValidationError{Field: qual("Scenario"), Msg: "faults are trace-level (set Trace.Scenario)"}
		}
		if s.Backend != "" && s.Backend != t.Backend {
			return &job.ValidationError{Field: qual("Backend"), Msg: "the backend is shared (set Trace.Backend)"}
		}
		if s.Workers != 0 && s.Workers != t.Workers {
			return &job.ValidationError{Field: qual("Workers"), Msg: "the engine is trace-level (set Trace.Workers)"}
		}
		if s.PEsPerNode != 0 && s.PEsPerNode != t.PEsPerNode {
			return &job.ValidationError{Field: qual("PEsPerNode"), Msg: "node width is trace-level (set Trace.PEsPerNode)"}
		}
	}
	return nil
}

// Procs is the trace's total rank count.
func (t Trace) Procs() int {
	n := 0
	for _, s := range t.Jobs {
		n += s.Procs
	}
	return n
}

// Encode marshals the trace as indented JSON.
func (t Trace) Encode() []byte {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// DecodeTrace parses a trace, rejecting unknown fields like job.Decode.
func DecodeTrace(data []byte) (Trace, error) {
	var t Trace
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("tenancy: decoding trace: %w", err)
	}
	if dec.More() {
		return Trace{}, fmt.Errorf("tenancy: trailing data after trace object")
	}
	return t, nil
}
