package tenancy

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/qos"
)

// Acceptance tests for the multi-tenant layer, pinning the three properties
// the EXPERIMENTS.md "Shared-filesystem interference" section reports:
//
//  (a) sharing costs: under FIFO every tenant of the mixed trace runs
//      slower than the same job isolated on the same machine;
//  (b) QoS works: fair-share strictly lowers the small latency-sensitive
//      job's p99 collective-call latency versus FIFO, without giving up
//      more than 5% aggregate throughput;
//  (c) ParColl confines cross-job interference: with a straggler loose on
//      the shared machine, the afflicted job's p99 collective-call latency
//      — absolute and as a slowdown over healthy-isolated — is strictly
//      lower when the jobs run partitioned than under unpartitioned ext2ph.

// TestFIFOSlowdownAboveOne is (a).
func TestFIFOSlowdownAboveOne(t *testing.T) {
	tr := MixedTrace(8)
	tr.Policy = qos.NameFIFO
	rep, err := RunWithBaseline(experiments.BenchPreset(), tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range rep.Jobs {
		if !j.Verified {
			t.Errorf("job %s failed verification", j.Name)
		}
		if j.Slowdown <= 1 {
			t.Errorf("job %s: slowdown vs isolated = %.4f, want > 1 (sharing must cost)", j.Name, j.Slowdown)
		}
		if j.QoSDelaySecs != 0 {
			t.Errorf("job %s: FIFO charged %.6fs admission delay, want 0", j.Name, j.QoSDelaySecs)
		}
	}
}

// TestFairShareLowersSmallJobP99 is (b). The small checkpoint job is the
// latency-sensitive tenant; fair queueing throttles the hog's burst so the
// small job's collective calls stop queueing behind it.
func TestFairShareLowersSmallJobP99(t *testing.T) {
	reps, err := Sweep(experiments.BenchPreset(), MixedTrace(8), []string{qos.NameFIFO, qos.NameFairShare})
	if err != nil {
		t.Fatal(err)
	}
	fifo, fair := reps[0], reps[1]
	small := len(fifo.Jobs) - 1 // ckpt-small is last in MixedTrace
	if name := fifo.Jobs[small].Name; name != "ckpt-small" {
		t.Fatalf("small job is %q, want ckpt-small", name)
	}
	if fair.Jobs[small].P99 >= fifo.Jobs[small].P99 {
		t.Errorf("fair-share did not lower the small job's p99: fair %.6f >= fifo %.6f",
			fair.Jobs[small].P99, fifo.Jobs[small].P99)
	}
	if fair.Jobs[small].SlowdownP99 >= fifo.Jobs[small].SlowdownP99 {
		t.Errorf("fair-share did not lower the small job's p99 slowdown: fair %.4f >= fifo %.4f",
			fair.Jobs[small].SlowdownP99, fifo.Jobs[small].SlowdownP99)
	}
	// Shaping must not cost meaningful aggregate throughput.
	agg := func(rep Report) float64 {
		var bytes int64
		for _, j := range rep.Jobs {
			bytes += j.Bytes
		}
		return float64(bytes) / rep.End
	}
	if f, o := agg(fair), agg(fifo); f < 0.95*o {
		t.Errorf("fair-share gave up too much throughput: %.0f vs %.0f bytes/s (%.1f%%)",
			f, o, 100*f/o)
	}
	// Fair queueing must actually have shaped someone: the hog pays delay.
	if fair.Jobs[0].QoSDelaySecs <= 0 {
		t.Errorf("fair-share charged the hog no admission delay")
	}
}

// TestParCollConfinesStraggler is (c): the collective-wall claim under
// multi-tenancy. One rank of the hog straggles; under ext2ph (groups=1)
// every globally synchronized round of the hog waits for it, so the hog's
// p99 collective-call latency explodes; ParColl pays the straggler only in
// its own subgroup and the other subgroups' calls stay fast.
func TestParCollConfinesStraggler(t *testing.T) {
	p := experiments.BenchPreset()
	run := func(parcoll bool) Report {
		tr := MixedTrace(8)
		tr.Scenario = "one-straggler"
		if !parcoll {
			for i := range tr.Jobs {
				tr.Jobs[i].Groups = 1
			}
		}
		rep, err := RunWithBaseline(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range rep.Jobs {
			if !j.Verified {
				t.Fatalf("parcoll=%v: job %s failed verification under the straggler", parcoll, j.Name)
			}
		}
		return rep
	}
	ext2ph, parcoll := run(false), run(true)
	// The straggler lives in the hog (world rank 1; the hog spans ranks
	// 0..15 of the 37-rank trace).
	hog := 0
	if e, pc := ext2ph.Jobs[hog].P99, parcoll.Jobs[hog].P99; pc >= e {
		t.Errorf("ParColl did not confine the straggler: hog p99 %.6f (parcoll) >= %.6f (ext2ph)", pc, e)
	}
	if e, pc := ext2ph.Jobs[hog].SlowdownP99, parcoll.Jobs[hog].SlowdownP99; pc >= e {
		t.Errorf("ParColl did not degrade less: hog p99 slowdown %.4f (parcoll) >= %.4f (ext2ph)", pc, e)
	}
	// Under both protocols the straggler must actually hurt: the hog's p99
	// slowdown over healthy-isolated is well above one.
	for _, rep := range []Report{ext2ph, parcoll} {
		if rep.Jobs[hog].SlowdownP99 <= 1 {
			t.Errorf("policy %s: straggler did not degrade the hog (slowdown p99 %.4f)",
				rep.Policy, rep.Jobs[hog].SlowdownP99)
		}
	}
}
