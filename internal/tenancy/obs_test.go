package tenancy

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/obs"
)

func counterValue(s obs.Snapshot, name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// TestRunObservedPerJobMetrics pins the observability surface of a trace
// run: per-job "job/<name>/" gauges from the report, and — under a fault
// plan that trips the retry engine — the shared backend's per-JobID
// "lustre.retry.jobN.*" counter buckets from CaptureLustre.
func TestRunObservedPerJobMetrics(t *testing.T) {
	tr := Trace{
		Jobs: []job.Spec{
			{Name: "a", Workload: job.WorkloadIOR, Procs: 4, Groups: 2},
			{Name: "b", Workload: job.WorkloadIOR, Procs: 4, Groups: 2, Arrival: 0.002},
		},
		Scenario: "flaky-ost",
	}
	reg := obs.New()
	rep, err := RunObserved(experiments.BenchPreset(), tr, reg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	for _, j := range rep.Jobs {
		found := false
		for _, g := range snap.Gauges {
			if g.Name == "job/"+j.Name+"/elapsed_secs" {
				found = true
				if g.Value != j.Elapsed() {
					t.Errorf("gauge %s = %g, report says %g", g.Name, g.Value, j.Elapsed())
				}
			}
		}
		if !found {
			t.Errorf("no elapsed gauge for job %s", j.Name)
		}
	}

	// The flaky OST must have tripped retries, and the backend must bucket
	// them by JobID: total attempts split across the job counters.
	total, ok := counterValue(snap, "lustre.retry.attempts")
	if !ok || total == 0 {
		t.Fatalf("flaky-ost produced no retry attempts (counter present=%v, total=%d)", ok, total)
	}
	var perJob uint64
	seen := 0
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "lustre.retry.job") && strings.HasSuffix(c.Name, ".attempts") {
			perJob += c.Value
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("no per-job retry buckets in the snapshot")
	}
	if perJob != total {
		t.Errorf("per-job attempt buckets sum to %d, aggregate says %d", perJob, total)
	}

	// The per-report retry stats agree with the counters.
	var repAttempts uint64
	for _, j := range rep.Jobs {
		repAttempts += uint64(j.Retry.Attempts)
	}
	if repAttempts != total {
		t.Errorf("report retry attempts %d != counter %d", repAttempts, total)
	}
}

// TestRunObservedHealthyHasNoRetryBuckets pins the graceful degradation:
// a healthy trace publishes no retry counters at all (no "job0" fallback
// noise when there is nothing to attribute).
func TestRunObservedHealthyHasNoRetryBuckets(t *testing.T) {
	tr := Trace{Jobs: []job.Spec{{Name: "a", Workload: job.WorkloadIOR, Procs: 4}}}
	reg := obs.New()
	if _, err := RunObserved(experiments.BenchPreset(), tr, reg); err != nil {
		t.Fatal(err)
	}
	for _, c := range reg.Snapshot().Counters {
		if strings.HasPrefix(c.Name, "lustre.retry.job") && c.Value != 0 {
			t.Errorf("healthy run published per-job retry counter %s=%d", c.Name, c.Value)
		}
	}
}
