package tenancy

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/job"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/workload"
)

// JobReport is one tenant's outcome, with the interference attribution the
// shared servers recorded for it.
type JobReport struct {
	job.Result
	// QoSDelaySecs is the admission delay the policy charged this job,
	// summed over every request (zero under FIFO).
	QoSDelaySecs float64 `json:"qos_delay_secs"`
	// Retry is the job's retry-engine record under fault injection (zero
	// on healthy traces).
	Retry recovery.RetryStats `json:"retry"`
}

// Report is one trace run: the policy that shaped it, the per-job reports
// in trace order, and the makespan.
type Report struct {
	Policy string      `json:"policy"`
	Procs  int         `json:"procs"`
	End    float64     `json:"end"`
	Jobs   []JobReport `json:"jobs"`
}

// FillObs writes the report's per-job metrics into a registry under
// "job/<name>/" prefixes — the multi-tenant twin of CaptureLustre's
// "lustre." namespace, so one snapshot carries both the shared-server view
// and the per-tenant view.
func (rep Report) FillObs(reg *obs.Registry) {
	for _, j := range rep.Jobs {
		p := "job/" + j.Name + "/"
		reg.Gauge(p + "elapsed_secs").Set(j.Elapsed())
		reg.Gauge(p + "bw").Set(j.BW)
		reg.Gauge(p + "coll_p50").Set(j.P50)
		reg.Gauge(p + "coll_p99").Set(j.P99)
		reg.Gauge(p + "qos_delay_secs").Set(j.QoSDelaySecs)
		if j.Slowdown > 0 {
			reg.Gauge(p + "slowdown").Set(j.Slowdown)
		}
		reg.Counter(p + "coll_calls").Add(uint64(j.CollCalls))
	}
}

// Run executes the trace on one shared machine and returns the per-job
// reports. The preset supplies machine geometry and workload scales (its
// per-run knobs — seed, backend, workers — are overridden by the trace's).
// Deterministic: bit-identical across repeats and engine worker counts.
func Run(p experiments.Preset, t Trace) (Report, error) {
	return run(p, t, nil)
}

// RunObserved is Run with an observability registry attached: the report's
// per-job gauges (FillObs) and the shared backend's "lustre." counters —
// including the per-JobID retry buckets — land in reg alongside the result.
func RunObserved(p experiments.Preset, t Trace, reg *obs.Registry) (Report, error) {
	return run(p, t, reg)
}

func run(p experiments.Preset, t Trace, reg *obs.Registry) (Report, error) {
	t = t.WithDefaults()
	if err := t.Validate(); err != nil {
		return Report{}, err
	}

	// The trace owns the machine-level knobs the single-job tools set via
	// flags; thread them through the same spec path the tools use.
	machine := job.Spec{
		Workload:   job.WorkloadTileIO, // placeholder: machine knobs only
		Procs:      t.Procs(),
		Seed:       t.Seed,
		Backend:    t.Backend,
		BBCapacity: t.BBCapacity,
		BBDrainBW:  t.BBDrainBW,
		Workers:    t.Workers,
		PEsPerNode: t.PEsPerNode,
		IntraNode:  t.IntraNode,
	}
	if err := p.ApplySpecBase(machine); err != nil {
		return Report{}, err
	}
	var plan *fault.Plan
	if t.Scenario != "" {
		var err error
		plan, err = fault.Scenario(t.Scenario)
		if err != nil {
			return Report{}, err
		}
	}
	p.Fault = plan

	// All tenants share one cost scale — the tile preset's, the divisor the
	// checkpoint sweeps already use — because a shared backend has a single
	// virtual-bytes-per-real-byte factor. Cross-workload bandwidths in a
	// trace are therefore comparable to each other and to the same job run
	// isolated AT THIS SCALE, not to the single-job figures' native scales.
	fs, envOf := p.TraceEnv(p.TileScale, plan)
	pol, err := qos.New(t.Policy)
	if err != nil {
		return Report{}, err
	}
	fs.SetQoS(pol)

	// Contiguous rank packing, no node padding: members[j] lists job j's
	// world ranks; boundary nodes may carry two jobs (shared NIC).
	njobs := len(t.Jobs)
	members := make([][]int, njobs)
	jobOf := make([]int, t.Procs())
	next := 0
	for j, s := range t.Jobs {
		m := make([]int, s.Procs)
		for i := range m {
			m[i] = next
			jobOf[next] = j
			next++
		}
		members[j] = m
	}

	// Per-job environments over the shared FS: own options (groups, hints),
	// own latency recorder, own file-name prefix.
	envs := make([]workload.Env, njobs)
	recs := make([]*obs.LatencyRecorder, njobs)
	works := make([]experiments.SpecWorkload, njobs)
	for j, s := range t.Jobs {
		w, _, err := experiments.WorkloadFor(p, s)
		if err != nil {
			return Report{}, err
		}
		works[j] = w
		recs[j] = obs.NewLatencyRecorder()
		opts := experiments.OptionsFor(s)
		opts.Run.Lat = recs[j]
		envs[j] = envOf(opts)
	}

	ends := make([]float64, njobs)
	bytes := make([]int64, njobs)
	fails := make([]int64, njobs)
	end, _ := mpi.RunPlanWorkers(t.Procs(), p.Cluster, p.Seed, plan, p.Workers, func(r *mpi.Rank) {
		j := jobOf[r.WorldRank()]
		s := t.Jobs[j]
		r.SetJob(j, members[j])
		if s.Arrival > 0 {
			// Unscaled by straggler plans: arrival is trace input, not noise.
			r.P.AdvanceTo(s.Arrival)
		}
		vb, verr := runJob(r, works[j], envs[j], "job:"+s.Name)
		comm := mpi.WorldComm(r)
		bad := int64(0)
		if verr != nil {
			bad = 1
		}
		nbad := comm.AllreduceInt64([]int64{bad}, mpi.OpSum)[0]
		fin := comm.MaxFinishTime()
		if r.JobRank() == 0 {
			ends[j] = fin
			bytes[j] = vb
			fails[j] = nbad
		}
	})

	usage := pol.Usage()
	byJob := fs.RetryStatsByJob()
	rep := Report{Policy: pol.Name(), Procs: t.Procs(), End: end, Jobs: make([]JobReport, njobs)}
	for j, s := range t.Jobs {
		res := job.Result{
			Name:     s.Name,
			Workload: s.Workload,
			Procs:    s.Procs,
			Arrival:  s.Arrival,
			End:      ends[j],
			Bytes:    bytes[j],
			Verified: fails[j] == 0,
		}
		if el := res.Elapsed(); el > 0 {
			res.BW = float64(bytes[j]) / el
		}
		if rec := recs[j]; rec.Count() > 0 {
			res.CollCalls = rec.Count()
			res.P50 = rec.Quantile(0.50)
			res.P99 = rec.Quantile(0.99)
		}
		rep.Jobs[j] = JobReport{
			Result:       res,
			QoSDelaySecs: usage[j].DelaySecs,
			Retry:        byJob[j],
		}
	}
	if reg != nil {
		rep.FillObs(reg)
		experiments.CaptureLustre(reg, fs, end)
	}
	return rep, nil
}

// RunWithBaseline runs the trace, then re-runs every job ISOLATED — same
// machine configuration, same policy, same seed, same arrival, alone on a
// fresh HEALTHY instance — and fills the slowdown ratios: elapsed and p99
// collective-call latency, multi-tenant over isolated. A ratio > 1 is what
// sharing the machine cost the job. The baseline is healthy even when the
// trace carries a fault scenario: scenarios pin faults to world ranks and
// targets of the TRACE's geometry (one-straggler afflicts world rank 1,
// wherever it lives), so replaying them into each job's small solo world
// would afflict different ranks and measure a different machine. Healthy-
// isolated is the one baseline every tenant shares: "this machine, alone,
// working" — which makes the ratio read "what sharing this (possibly
// faulted) machine cost me".
func RunWithBaseline(p experiments.Preset, t Trace) (Report, error) {
	rep, err := Run(p, t)
	if err != nil {
		return Report{}, err
	}
	t = t.WithDefaults()
	for j, s := range t.Jobs {
		solo := t
		solo.Scenario = ""
		solo.Jobs = []job.Spec{s}
		iso, err := Run(p, solo)
		if err != nil {
			return Report{}, fmt.Errorf("tenancy: isolated baseline for %q: %w", s.Name, err)
		}
		base := iso.Jobs[0]
		if e := base.Elapsed(); e > 0 {
			rep.Jobs[j].Slowdown = rep.Jobs[j].Elapsed() / e
		}
		if base.P99 > 0 {
			rep.Jobs[j].SlowdownP99 = rep.Jobs[j].P99 / base.P99
		}
	}
	return rep, nil
}

// runJob dispatches one tenant's workload: write, then byte-exact read-back
// verification, all in virtual time. Returns the job's virtual payload and
// the rank-local verification error.
func runJob(r *mpi.Rank, w experiments.SpecWorkload, env workload.Env, name string) (int64, error) {
	switch {
	case w.Tile != nil:
		res := w.Tile.Write(r, env, name)
		return res.VirtBytes, w.Tile.VerifyTile(r, env, name)
	case w.IOR != nil:
		res := w.IOR.Write(r, env, name)
		if off := w.IOR.Verify(r, env, name); off >= 0 {
			return res.VirtBytes, fmt.Errorf("ior: first mismatch at offset %d", off)
		}
		return res.VirtBytes, nil
	case w.BT != nil:
		res := w.BT.Write(r, env, name)
		return res.VirtBytes, w.BT.Verify(r, env, name)
	case w.Flash != nil:
		res := w.Flash.WriteCheckpoint(r, env, name)
		return res.VirtBytes, w.Flash.VerifyCheckpoint(r, env, name)
	case w.Burst != nil:
		res := w.Burst.Run(r, env, name)
		return res.VirtBytes, w.Burst.Verify(r, env, name)
	}
	panic("tenancy: empty SpecWorkload")
}
