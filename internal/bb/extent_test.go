package bb

import (
	"sort"
	"testing"

	"repro/internal/storage"
)

func TestCoalesce(t *testing.T) {
	cases := []struct {
		name string
		in   []storage.Extent
		want []storage.Extent
	}{
		{"empty", nil, nil},
		{"one", []storage.Extent{{Off: 5, Len: 3}}, []storage.Extent{{Off: 5, Len: 3}}},
		{"adjacent", []storage.Extent{{Off: 0, Len: 4}, {Off: 4, Len: 4}}, []storage.Extent{{Off: 0, Len: 8}}},
		{"overlap", []storage.Extent{{Off: 0, Len: 6}, {Off: 4, Len: 4}}, []storage.Extent{{Off: 0, Len: 8}}},
		{"contained", []storage.Extent{{Off: 0, Len: 10}, {Off: 2, Len: 3}}, []storage.Extent{{Off: 0, Len: 10}}},
		{"gap", []storage.Extent{{Off: 0, Len: 2}, {Off: 5, Len: 2}}, []storage.Extent{{Off: 0, Len: 2}, {Off: 5, Len: 2}}},
		{"unsorted", []storage.Extent{{Off: 8, Len: 2}, {Off: 0, Len: 2}, {Off: 2, Len: 6}}, []storage.Extent{{Off: 0, Len: 10}}},
		{"zero-len-dropped", []storage.Extent{{Off: 3, Len: 0}, {Off: 1, Len: 2}}, []storage.Extent{{Off: 1, Len: 2}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Coalesce(c.in)
			if len(got) != len(c.want) {
				t.Fatalf("Coalesce(%v) = %v, want %v", c.in, got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("Coalesce(%v) = %v, want %v", c.in, got, c.want)
				}
			}
		})
	}
}

func TestCovered(t *testing.T) {
	dirty := Coalesce([]storage.Extent{{Off: 0, Len: 10}, {Off: 20, Len: 5}})
	for _, c := range []struct {
		off, n int64
		want   bool
	}{
		{0, 10, true}, {3, 4, true}, {20, 5, true}, {24, 1, true},
		{0, 11, false}, {9, 2, false}, {15, 2, false}, {19, 3, false}, {25, 1, false},
		{5, 0, true}, // empty window is trivially covered
	} {
		if got := covered(dirty, c.off, c.n); got != c.want {
			t.Errorf("covered(%v, %d, %d) = %v, want %v", dirty, c.off, c.n, got, c.want)
		}
	}
}

// FuzzExtentCoalesce checks the dirty-extent merge invariants on arbitrary
// extent soups: output sorted, strictly disjoint and non-adjacent, total
// coverage equal to the input's union, and every input byte covered.
func FuzzExtentCoalesce(f *testing.F) {
	f.Add([]byte{0, 4, 4, 4, 2, 6})
	f.Add([]byte{10, 1, 0, 1, 5, 5, 5, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var in []storage.Extent
		for i := 0; i+1 < len(raw); i += 2 {
			in = append(in, storage.Extent{Off: int64(raw[i]), Len: int64(raw[i+1] % 32)})
		}
		out := Coalesce(in)
		for i, e := range out {
			if e.Len <= 0 {
				t.Fatalf("output extent %d has Len %d", i, e.Len)
			}
			if i > 0 && out[i-1].End() >= e.Off {
				t.Fatalf("output not disjoint/non-adjacent: %v then %v", out[i-1], e)
			}
		}
		if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Off < out[j].Off }) {
			t.Fatalf("output not sorted: %v", out)
		}
		// Byte-set equality with the input union, on the small fuzzed domain.
		inSet := make(map[int64]bool)
		for _, e := range in {
			for o := e.Off; o < e.End(); o++ {
				inSet[o] = true
			}
		}
		var outBytes int64
		for _, e := range out {
			outBytes += e.Len
			for o := e.Off; o < e.End(); o++ {
				if !inSet[o] {
					t.Fatalf("output covers byte %d the input never wrote", o)
				}
			}
		}
		if int64(len(inSet)) != outBytes {
			t.Fatalf("coverage mismatch: input union %d bytes, output %d", len(inSet), outBytes)
		}
	})
}
