package bb

import (
	"sort"

	"repro/internal/storage"
)

// Coalesce returns the union of the given extents as a minimal sorted list
// of disjoint extents: overlapping and adjacent runs merge, zero-length
// runs vanish. It is the burst buffer's dirty-extent merge — the staged set
// a read probes for residency — and a pure function, which is what the
// FuzzExtentCoalesce target leans on: for any input, the output is sorted,
// disjoint, non-adjacent, and covers exactly the input's byte set.
func Coalesce(exts []storage.Extent) []storage.Extent {
	var out []storage.Extent
	for _, e := range exts {
		if e.Len > 0 {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	w := 0
	for _, e := range out[1:] {
		if e.Off <= out[w].End() {
			if e.End() > out[w].End() {
				out[w].Len = e.End() - out[w].Off
			}
			continue
		}
		w++
		out[w] = e
	}
	return out[:w+1]
}

// covered reports whether [off, off+n) lies inside a single run of the
// coalesced (sorted, disjoint) extent list.
func covered(exts []storage.Extent, off, n int64) bool {
	if n <= 0 {
		return true
	}
	i := sort.Search(len(exts), func(i int) bool { return exts[i].End() > off })
	return i < len(exts) && exts[i].Off <= off && off+n <= exts[i].End()
}
