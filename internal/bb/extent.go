package bb

import "repro/internal/storage"

// Coalesce returns the union of the given extents as a minimal sorted list
// of disjoint extents: overlapping and adjacent runs merge, zero-length
// runs vanish. It is the burst buffer's dirty-extent merge — the staged set
// a read probes for residency. The implementation moved to
// storage.Coalesce when the staging-loss bookkeeping started needing the
// same algebra; this wrapper keeps the bb call sites and the
// FuzzExtentCoalesce target reading unchanged.
func Coalesce(exts []storage.Extent) []storage.Extent {
	return storage.Coalesce(exts)
}

// covered reports whether [off, off+n) lies inside a single run of the
// coalesced (sorted, disjoint) extent list.
func covered(exts []storage.Extent, off, n int64) bool {
	return storage.Covered(exts, off, n)
}
