package bb

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/storage"
)

var testStripe = storage.Stripe{Count: 4, Size: 1 << 20}

func runOne(t *testing.T, cfg Config, body func(r *mpi.Rank, tier *Tier)) *Tier {
	t.Helper()
	tier := New(lustre.NewFS(lustre.DefaultConfig()), cfg)
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) { body(r, tier) })
	return tier
}

// TestAbsorbCheaperThanUnder: the same write must stall the caller for less
// virtual time through the staging tier than against the bare backend —
// that is the tier's entire reason to exist.
func TestAbsorbCheaperThanUnder(t *testing.T) {
	buf := make([]byte, 8<<20)
	elapsed := func(mk func() storage.Backend) float64 {
		var dt float64
		be := mk()
		mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			f := be.Open(r, "x", testStripe)
			t0 := r.Now()
			f.WriteAt(r, 0, buf)
			dt = r.Now() - t0
		})
		return dt
	}
	direct := elapsed(func() storage.Backend { return lustre.NewFS(lustre.DefaultConfig()) })
	staged := elapsed(func() storage.Backend { return New(lustre.NewFS(lustre.DefaultConfig()), Config{}) })
	if staged >= direct {
		t.Fatalf("staged write cost %g >= direct write cost %g", staged, direct)
	}
}

// TestCountersAndDurability: an absorbed write counts absorbed bytes, is
// readable at memory speed before any drain completes, and lands byte-exact
// in the under-backend immediately (durable at issue).
func TestCountersAndDurability(t *testing.T) {
	buf := bytes.Repeat([]byte{0x5A}, 1<<20)
	runOne(t, Config{}, func(r *mpi.Rank, tier *Tier) {
		f := tier.Open(r, "c", testStripe)
		f.WriteAt(r, 0, buf)
		a, _, w := tier.Counters()
		if a != 1<<20 || w != 0 {
			t.Fatalf("after absorb: absorbed=%d writethrough=%d, want %d/0", a, w, 1<<20)
		}
		if got := tier.Under().Open(r, "c", testStripe).Peek(0, 1<<20); !bytes.Equal(got, buf) {
			t.Fatal("staged write not durable in under-backend at issue time")
		}
		if got := f.ReadAt(r, 0, 1<<20); !bytes.Equal(got, buf) {
			t.Fatal("read-back through the tier mismatched")
		}
	})
}

// TestWritethroughWhenFull: writes past Capacity bypass staging and count
// as writethrough, and the data still round-trips.
func TestWritethroughWhenFull(t *testing.T) {
	buf := make([]byte, 1<<20)
	runOne(t, Config{Capacity: 1 << 20}, func(r *mpi.Rank, tier *Tier) {
		f := tier.Open(r, "full", testStripe)
		f.WriteAt(r, 0, buf)     // fits exactly
		f.WriteAt(r, 1<<20, buf) // no room left: write through
		a, _, w := tier.Counters()
		if a != 1<<20 {
			t.Fatalf("absorbed = %d, want %d", a, 1<<20)
		}
		if w != 1<<20 {
			t.Fatalf("writethrough = %d, want %d", w, 1<<20)
		}
		if got := f.ReadAt(r, 0, 2<<20); int64(len(got)) != 2<<20 {
			t.Fatalf("read-back length %d, want %d", len(got), 2<<20)
		}
	})
}

// TestFIFOReclaimFreesCapacity: once enough virtual time passes for staged
// drains to complete, their capacity is reclaimed in FIFO order and new
// writes absorb again instead of writing through.
func TestFIFOReclaimFreesCapacity(t *testing.T) {
	buf := make([]byte, 1<<20)
	runOne(t, Config{Capacity: 1 << 20}, func(r *mpi.Rank, tier *Tier) {
		f := tier.Open(r, "reclaim", testStripe)
		f.WriteAt(r, 0, buf)
		// Let the drain finish: a long compute phase advances the clock past
		// every issued drain completion.
		r.Compute(10)
		f.WriteAt(r, 1<<20, buf)
		a, d, w := tier.Counters()
		if w != 0 {
			t.Fatalf("writethrough = %d after reclaim window, want 0", w)
		}
		if a != 2<<20 {
			t.Fatalf("absorbed = %d, want %d", a, 2<<20)
		}
		if d != 1<<20 {
			t.Fatalf("drained = %d, want %d (the first write's entry)", d, 1<<20)
		}
	})
}

// TestDrainBarrierCharges: Drain must charge exactly the staged tail and
// leave nothing pending (a second Drain is free).
func TestDrainBarrierCharges(t *testing.T) {
	buf := make([]byte, 16<<20)
	runOne(t, Config{DrainBandwidth: 1e8}, func(r *mpi.Rank, tier *Tier) {
		f := tier.Open(r, "drain", testStripe)
		f.WriteAt(r, 0, buf)
		t0 := r.Now()
		tier.Drain(r)
		if r.Now() <= t0 {
			t.Fatal("Drain right after a big staged write charged no time")
		}
		_, d, _ := tier.Counters()
		if d != 16<<20 {
			t.Fatalf("drained = %d after Drain, want %d", d, 16<<20)
		}
		t1 := r.Now()
		tier.Drain(r)
		if r.Now() != t1 {
			t.Fatal("second Drain with nothing staged charged time")
		}
	})
}

// TestObsCounters: the registry counters mirror the tier's counters.
func TestObsCounters(t *testing.T) {
	reg := obs.New()
	buf := make([]byte, 1<<20)
	tier := New(lustre.NewFS(lustre.DefaultConfig()), Config{Capacity: 1 << 20})
	tier.SetObs(reg)
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		f := tier.Open(r, "obs", testStripe)
		f.WriteAt(r, 0, buf)
		f.WriteAt(r, 1<<20, buf)
		tier.Drain(r)
	})
	snap := reg.Snapshot()
	got := make(map[string]uint64)
	for _, c := range snap.Counters {
		got[c.Name] = c.Value
	}
	want := map[string]uint64{
		"storage.bb.absorbed.bytes":     1 << 20,
		"storage.bb.writethrough.bytes": 1 << 20,
		"storage.bb.drained.bytes":      1 << 20,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
}

// TestRemoveEvictsStaged: removing a file drops its staged entries and
// dirty extents without counting them drained.
func TestRemoveEvictsStaged(t *testing.T) {
	buf := make([]byte, 1<<20)
	runOne(t, Config{Capacity: 1 << 20}, func(r *mpi.Rank, tier *Tier) {
		f := tier.Open(r, "evict", testStripe)
		f.WriteAt(r, 0, buf)
		tier.Remove("evict")
		_, d, _ := tier.Counters()
		if d != 0 {
			t.Fatalf("Remove counted %d bytes as drained", d)
		}
		// Capacity must be free again: the next write absorbs.
		g := tier.Open(r, "evict", testStripe)
		g.WriteAt(r, 0, buf)
		a, _, w := tier.Counters()
		if w != 0 || a != 2<<20 {
			t.Fatalf("after Remove: absorbed=%d writethrough=%d, want %d/0", a, w, 2<<20)
		}
	})
}
