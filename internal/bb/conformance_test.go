package bb

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/lustre"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// TestBackendConformance runs the shared storage.Backend suite against the
// burst-buffer tier in its interesting configurations: unlimited capacity
// (everything absorbs), a throttled drain pipe, and a capacity so small
// that every conformance write falls through to the backing store.
func TestBackendConformance(t *testing.T) {
	storagetest.Run(t, "bb", func() storage.Backend {
		return New(lustre.NewFS(lustre.DefaultConfig()), Config{})
	})
	storagetest.Run(t, "bb-throttled", func() storage.Backend {
		return New(lustre.NewFS(lustre.DefaultConfig()), Config{DrainBandwidth: 1e8})
	})
	storagetest.Run(t, "bb-tiny", func() storage.Backend {
		return New(lustre.NewFS(lustre.DefaultConfig()), Config{Capacity: 64})
	})
}

// TestBackendFaultConformance runs the shared fault-injection leg: the
// staging node dies at the window's start while the pre-window write is
// still queued behind a throttled drain pipe, so the loss surfaces as a
// typed *storage.StagingLostError, the punched ranges read as zeroes, and
// the script's re-dump heals them back to a clean ledger audit.
func TestBackendFaultConformance(t *testing.T) {
	storagetest.RunFaults(t, "bb", func() storage.Backend {
		plan := &fault.Plan{
			Name:    "conf-lost-node",
			BBFails: []fault.BBFail{{Node: -1, At: storagetest.FaultAt}},
		}
		// 1e5 B/s drains the 2 KB pre-window write in ~20 ms, far past the
		// node's death at FaultAt — guaranteeing it is lost, not durable.
		return New(lustre.NewFS(lustre.DefaultConfig()), Config{DrainBandwidth: 1e5, Seed: 1, Faults: plan})
	})
}
