package bb

import (
	"testing"

	"repro/internal/lustre"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// TestBackendConformance runs the shared storage.Backend suite against the
// burst-buffer tier in its interesting configurations: unlimited capacity
// (everything absorbs), a throttled drain pipe, and a capacity so small
// that every conformance write falls through to the backing store.
func TestBackendConformance(t *testing.T) {
	storagetest.Run(t, "bb", func() storage.Backend {
		return New(lustre.NewFS(lustre.DefaultConfig()), Config{})
	})
	storagetest.Run(t, "bb-throttled", func() storage.Backend {
		return New(lustre.NewFS(lustre.DefaultConfig()), Config{DrainBandwidth: 1e8})
	})
	storagetest.Run(t, "bb-tiny", func() storage.Backend {
		return New(lustre.NewFS(lustre.DefaultConfig()), Config{Capacity: 64})
	})
}
