// Package bb is a node-local burst-buffer staging tier in the spirit of
// Zhang et al.'s loosely-coupled collective I/O: a storage.Backend that
// wraps another backend and absorbs writes into node-local memory at memory
// latency/bandwidth, then drains them to the underlying backend
// asynchronously on the existing nbio progress engine — so a checkpoint
// burst's file-system time hides under the application's next compute phase
// instead of stalling the write call.
//
// Mechanics of one absorbed write: the caller pays only the node's staging
// memory (MemLatency plus bytes over MemBandwidth through a per-node memory
// pipe, so PEs sharing a node contend). The drain to the underlying backend
// is issued in the same call — its NIC and target-service resources are
// booked exactly as a direct async write's would be, optionally paced by a
// per-node drain pipe of DrainBandwidth — and rides an nbio.Request whose
// tail the progress engine hides under whatever the rank does next. Data is
// durable in the under-backend's byte store at issue time (the async-write
// contract), so read-backs are byte-exact at any point.
//
// Capacity: each node's staging memory holds at most Capacity virtual
// bytes. Staged entries are reclaimed in strict FIFO order as their drains
// complete (an entry frees only after every earlier entry on its node has —
// deterministic drain ordering); a write that does not fit falls back to
// writing through to the under-backend at full cost. Try variants also
// write through whenever the under-backend injects request errors, so
// fault-plan error plumbing is preserved.
//
// Fault tolerance (DESIGN.md §15): a fault plan's BBFails fail-stop a
// node's staging memory at a fixed virtual time. Entries whose drains
// completed by that instant survive (they are durable below); entries still
// queued are LOST — the tier punches their ranges out of the under-store
// (they read as zeroes: a loud failure, never silently stale bytes),
// records them in a per-file lost set, and flips the node permanently to
// write-through. The loss surfaces as a typed *storage.StagingLostError
// from TryWriteAt (once per file) and from TryDrain (until re-dumped);
// LostExtents (storage.LossReporter) lets the collective layer plan the
// re-dump, and any write landing on a lost range heals it. DrainFails make
// drain-completion acknowledgments flaky instead: each drain retries
// through the capped exponential backoff schedule and a per-node breaker,
// its retry time charged at the Drain barrier; while a node's breaker is
// open, new writes on that node temporarily write through. Degrade
// implements storage.Degrader: a metadata-only migration (durable-at-issue
// means the bytes are already below) that honors booked drain completions
// and flips the node to write-through for good. With a zero plan none of
// this runs: no sweep work, no draws, no breaker consults — the healthy
// path is bit-identical to the fault-free tier.
package bb

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/nbio"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config tunes the staging tier.
type Config struct {
	// Capacity is each node's staging memory in virtual bytes. Zero means
	// unlimited (never write through).
	Capacity int64
	// DrainBandwidth, when positive, paces each node's drain to the
	// under-backend through a per-node pipe of this many bytes/second; the
	// drain completes at the later of the pipe and the under-backend's own
	// service. Zero leaves the under-backend's pace unthrottled.
	DrainBandwidth float64
	// Seed feeds the drain-retry RNG (only consulted under DrainFails).
	Seed int64
	// Faults, when it carries BBFails or DrainFails, arms the staging-tier
	// failure model described in the package comment. Zero plans are inert.
	Faults *fault.Plan
	// Retry overrides the drain-retry backoff schedule; zero fields take
	// recovery's defaults. Only consulted when Faults injects drain errors.
	Retry recovery.Backoff
}

// Tier is a burst-buffer staging tier over an underlying backend.
type Tier struct {
	under storage.Backend
	cfg   Config
	nodes map[int]*nodeState

	rng    *rand.Rand           // drain-retry draws (nil unless armed)
	retry  recovery.Backoff     // drain-retry schedule
	brk    *recovery.BreakerSet // per-node drain breakers
	rstats recovery.RetryStats  // the tier's own drain-retry counters
	ledger *storage.Ledger      // forwarded to under; kept for NoteLost

	// lost maps file name to punched, not-yet-re-dumped extents (coalesced);
	// lostNew marks losses not yet surfaced through TryWriteAt, and lostFrom
	// attributes each file's loss to the staging node that died.
	lost     map[string][]storage.Extent
	lostNew  map[string]bool
	lostFrom map[string]int
	// ufiles holds one under-backend handle per file for punching lost
	// ranges (first open wins; handles are stateless views of the store).
	ufiles map[string]storage.File

	absorbed     int64 // virtual bytes staged at memory speed
	drained      int64 // virtual bytes whose staged entries were reclaimed
	writethrough int64 // virtual bytes that bypassed staging (full buffer)
	lostBytes    int64 // real bytes punched by staging-node failures
	redumped     int64 // real bytes of lost ranges healed by re-dump writes

	obsAbsorbed *obs.Counter
	obsDrained  *obs.Counter
	obsWT       *obs.Counter
	obsLost     *obs.Counter
	obsRedumped *obs.Counter
}

// nodeState is one node's staging-buffer bookkeeping.
type nodeState struct {
	used     int64    // staged virtual bytes not yet reclaimed
	q        []staged // FIFO of staged entries, reclaim order
	drainEnd float64  // latest drain completion issued on this node
	mem      *sim.Resource
	pipe     *sim.Resource // nil unless DrainBandwidth > 0
	failed   bool          // staging memory fail-stopped (BBFail fired)
	wt       bool          // permanently write-through (failure or Degrade)

	// dirty maps file name to the node's coalesced staged extents — the
	// residency set reads probe for a memory-speed hit.
	dirty map[string][]storage.Extent
}

// staged is one queued drain: virt bytes of file covering ext, whose drain
// completes at end.
type staged struct {
	file string
	ext  storage.Extent
	virt int64
	end  float64
}

var (
	_ storage.Backend      = (*Tier)(nil)
	_ storage.Degrader     = (*Tier)(nil)
	_ storage.File         = (*File)(nil)
	_ storage.LossReporter = (*File)(nil)
)

// New wraps under with a staging tier.
func New(under storage.Backend, cfg Config) *Tier {
	t := &Tier{
		under:    under,
		cfg:      cfg,
		nodes:    make(map[int]*nodeState),
		lost:     make(map[string][]storage.Extent),
		lostNew:  make(map[string]bool),
		lostFrom: make(map[string]int),
		ufiles:   make(map[string]storage.File),
	}
	if t.injecting() {
		t.rng = rand.New(rand.NewSource(cfg.Seed*31337 + 7))
		t.retry = cfg.Retry.Defaults()
		t.brk = recovery.NewBreakerSet()
	}
	return t
}

// injecting reports whether the tier's own fault model is armed (the
// under-backend's injection is a separate, composable concern).
func (t *Tier) injecting() bool {
	return t.cfg.Faults.HasBBFails() || t.cfg.Faults.HasDrainFails()
}

// Under returns the wrapped backend.
func (t *Tier) Under() storage.Backend { return t.under }

// Counters returns the tier's cumulative (absorbed, drained, writethrough)
// virtual byte counts.
func (t *Tier) Counters() (absorbed, drained, writethrough int64) {
	return t.absorbed, t.drained, t.writethrough
}

// FaultCounters returns the cumulative real-byte loss ledger: bytes punched
// by staging-node failures and bytes of lost ranges healed by re-dumps.
func (t *Tier) FaultCounters() (lost, redumped int64) {
	return t.lostBytes, t.redumped
}

// SetObs attaches a metrics registry: absorbed/drained/writethrough bytes
// count as they happen, and the under-backend is instrumented too. Pass nil
// to detach. Observe-only.
func (t *Tier) SetObs(reg *obs.Registry) {
	t.under.SetObs(reg)
	if reg == nil {
		t.obsAbsorbed, t.obsDrained, t.obsWT = nil, nil, nil
		t.obsLost, t.obsRedumped = nil, nil
		return
	}
	t.obsAbsorbed = reg.Counter("storage.bb.absorbed.bytes")
	t.obsDrained = reg.Counter("storage.bb.drained.bytes")
	t.obsWT = reg.Counter("storage.bb.writethrough.bytes")
	t.obsLost = reg.Counter("storage.bb.lost.bytes")
	t.obsRedumped = reg.Counter("storage.bb.redumped.bytes")
}

// Stats returns the under-backend's per-target counters (the tier itself
// has no targets; its counters are the byte totals above).
func (t *Tier) Stats() []storage.TargetStat { return t.under.Stats() }

// RetryStats sums the under-backend's retry counters with the tier's own
// drain-retry work.
func (t *Tier) RetryStats() recovery.RetryStats {
	s := t.under.RetryStats()
	s.Add(t.rstats)
	return s
}

// SetLedger forwards the integrity ledger to the under-backend (whose store
// paths perform the tier's actual stores) and keeps it for loss events.
func (t *Tier) SetLedger(l *storage.Ledger) {
	t.ledger = l
	t.under.SetLedger(l)
}

// SetQoS forwards the admission policy to the under-backend: the shared
// targets behind the tier are where cross-job contention lives, while the
// tier's staging memory is per-node and needs no arbitration.
func (t *Tier) SetQoS(p qos.Policy) { t.under.SetQoS(p) }

// RetryStatsByJob returns the under-backend's per-job retry counters. The
// tier's own drain-retry work is node-scoped background activity with no
// issuing job, so it stays in the aggregate RetryStats only.
func (t *Tier) RetryStatsByJob() map[int]recovery.RetryStats {
	return t.under.RetryStatsByJob()
}

// Params inherits the under-backend's cost scale and targets. ListIO is
// always true: staging memory is inherently list-capable (one absorb for
// the whole extent list), and the drain uses the under-backend's own
// vectored call — a per-extent loop there costs only hidden drain time.
// Injecting adds the tier's own fault model to the under-backend's.
func (t *Tier) Params() storage.Params {
	p := t.under.Params()
	p.ListIO = true
	p.Injecting = p.Injecting || t.injecting()
	return p
}

// Name identifies the backend kind.
func (t *Tier) Name() string { return "bb" }

// Remove drops the file from the under-backend and evicts its staged
// extents from every node (without counting them drained — they no longer
// exist to drain), along with any pending loss bookkeeping.
func (t *Tier) Remove(name string) {
	t.under.Remove(name)
	for _, ns := range t.nodes {
		kept := ns.q[:0]
		for _, s := range ns.q {
			if s.file == name {
				ns.used -= s.virt
				continue
			}
			kept = append(kept, s)
		}
		ns.q = kept
		delete(ns.dirty, name)
	}
	delete(t.lost, name)
	delete(t.lostNew, name)
	delete(t.lostFrom, name)
	delete(t.ufiles, name)
}

// node returns (creating) the calling rank's node id and state.
func (t *Tier) node(r *mpi.Rank) (int, *nodeState) {
	id := r.W.Cluster.NodeOf(r.WorldRank())
	return id, t.nodeByID(id)
}

// nodeByID returns (creating) the node's state.
func (t *Tier) nodeByID(id int) *nodeState {
	ns, ok := t.nodes[id]
	if !ok {
		ns = &nodeState{
			mem:   sim.NewResource(fmt.Sprintf("bbmem%d", id)),
			dirty: make(map[string][]storage.Extent),
		}
		if t.cfg.DrainBandwidth > 0 {
			ns.pipe = sim.NewResource(fmt.Sprintf("bbdrain%d", id))
		}
		t.nodes[id] = ns
	}
	return ns
}

// sweep processes every staging-node failure due by virtual time now, in
// ascending node order so the walk is deterministic. Callers hold the
// engine sync. Free with a zero plan.
func (t *Tier) sweep(now float64) {
	if !t.cfg.Faults.HasBBFails() {
		return
	}
	ids := make([]int, 0, len(t.nodes))
	for id := range t.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ns := t.nodes[id]
		if ns.failed {
			continue
		}
		if at, ok := t.cfg.Faults.BBFailAt(id); ok && at <= now {
			t.failNode(id, ns, at)
		}
	}
}

// failNode fail-stops one node's staging memory at virtual time at. Entries
// whose drains completed by then survive (reclaimed normally); the rest are
// punched out of the under-store, recorded lost, and the node flips to
// write-through for the rest of the run. Conservative on overlap: punching
// a queued entry's range may zero bytes an earlier, already-durable write
// put there — a loud loss rather than silently stale data; the ledger's
// shadow keeps the acknowledged contents, and re-dump restores them.
func (t *Tier) failNode(id int, ns *nodeState, at float64) {
	t.reclaim(ns, at)
	files := make(map[string]bool)
	for _, s := range ns.q {
		if uf := t.ufiles[s.file]; uf != nil {
			uf.Punch(s.ext.Off, s.ext.Len)
		}
		t.lost[s.file] = append(t.lost[s.file], s.ext)
		t.lostNew[s.file] = true
		t.lostFrom[s.file] = id
		t.lostBytes += s.ext.Len
		if t.obsLost != nil {
			t.obsLost.Add(uint64(s.ext.Len))
		}
		files[s.file] = true
	}
	for file := range files {
		t.lost[file] = storage.Coalesce(t.lost[file])
		if t.ledger != nil {
			t.ledger.NoteLost(file, t.lost[file])
		}
	}
	ns.q = nil
	ns.used = 0
	for file := range ns.dirty {
		delete(ns.dirty, file)
	}
	ns.failed, ns.wt = true, true
	if ns.drainEnd > at {
		ns.drainEnd = at
	}
}

// heal removes any freshly-written ranges from the file's lost set — every
// write through the tier stores in the under-backend at issue time, so a
// write covering a lost range IS its re-dump.
func (t *Tier) heal(file string, exts []storage.Extent) {
	l := t.lost[file]
	if len(l) == 0 {
		return
	}
	rem := storage.Subtract(l, exts)
	healed := storage.SumLen(l) - storage.SumLen(rem)
	t.redumped += healed
	if healed > 0 && t.obsRedumped != nil {
		t.obsRedumped.Add(uint64(healed))
	}
	if len(rem) == 0 {
		delete(t.lost, file)
		delete(t.lostNew, file)
		delete(t.lostFrom, file)
		return
	}
	t.lost[file] = rem
}

// takeLoss surfaces a file's not-yet-reported staging loss as a typed
// error, once: the caller's immediate retry proceeds (and, landing on a
// write-through node, heals its own range), while LostExtents and TryDrain
// cover the rest of the lost set.
func (t *Tier) takeLoss(file string) error {
	if !t.lostNew[file] {
		return nil
	}
	t.lostNew[file] = false
	return &storage.StagingLostError{
		Node: t.lostFrom[file],
		File: file,
		Lost: append([]storage.Extent(nil), t.lost[file]...),
	}
}

// retryDrain runs one drain-completion acknowledgment through the retry
// engine starting at its booked completion time dEnd: each failed attempt
// feeds the node's breaker and pushes the completion out by the backoff
// schedule; on exhaustion the drain completes anyway at the current clock —
// the bytes were durable at issue, so a lost acknowledgment costs time and
// breaker state, never data. The returned time replaces the booked one, so
// the Drain barrier charges the retry time deterministically.
func (t *Tier) retryDrain(node int, dEnd float64) float64 {
	brk := t.brk.Get(node)
	attempts := 0
	at := dEnd
	for {
		if h := brk.HoldOff(at); h > 0 {
			at += h
			t.rstats.BackoffSecs += h
		}
		attempts++
		t.rstats.Attempts++
		if attempts > 1 {
			t.rstats.Retries++
		}
		if !t.cfg.Faults.DrainErrorAt(node, at, t.rng) {
			brk.Success()
			return at
		}
		t.rstats.Failures++
		opensBefore := brk.Opens
		brk.Failure(at)
		if opened := brk.Opens - opensBefore; opened > 0 {
			t.rstats.BreakerOpens += opened
		}
		if t.retry.Exhausted(attempts) {
			t.rstats.Exhausted++
			return at
		}
		d := t.retry.Delay(attempts, t.rng)
		at += d
		t.rstats.BackoffSecs += d
	}
}

// reclaim frees staged entries whose drains have completed by virtual time
// now, in strict FIFO order: an entry is reclaimed only after every earlier
// entry on the node, so the buffer's occupancy (and hence every
// write-through decision) is a deterministic function of virtual time.
func (t *Tier) reclaim(ns *nodeState, now float64) {
	n := 0
	for n < len(ns.q) && ns.q[n].end <= now {
		n++
	}
	if n == 0 {
		return
	}
	for _, s := range ns.q[:n] {
		ns.used -= s.virt
		t.drained += s.virt
		if t.obsDrained != nil {
			t.obsDrained.Add(uint64(s.virt))
		}
	}
	ns.q = append(ns.q[:0], ns.q[n:]...)
	t.rebuildDirty(ns)
}

// rebuildDirty recomputes the node's per-file residency sets from the
// remaining queue (coalesced).
func (t *Tier) rebuildDirty(ns *nodeState) {
	for f := range ns.dirty {
		delete(ns.dirty, f)
	}
	for _, s := range ns.q {
		ns.dirty[s.file] = append(ns.dirty[s.file], s.ext)
	}
	for f, exts := range ns.dirty {
		ns.dirty[f] = Coalesce(exts)
	}
}

// Drain blocks (in virtual time) until every drain issued on the calling
// rank's node has completed, charging the exposed wait to ClassIO — the
// checkpoint-burst "make it durable now" barrier. If the node's staging
// memory is scheduled to die during the wait, the wait ends at the failure
// instant and the undrained entries are lost then.
func (t *Tier) Drain(r *mpi.Rank) {
	r.P.Sync()
	now := r.Now()
	t.sweep(now)
	id, ns := t.node(r)
	if t.cfg.Faults.HasBBFails() && !ns.failed {
		if at, ok := t.cfg.Faults.BBFailAt(id); ok && at <= ns.drainEnd {
			t.failNode(id, ns, at)
		}
	}
	if ns.drainEnd > now {
		r.ChargeIO(ns.drainEnd - now)
		now = r.Now()
	}
	t.reclaim(ns, now)
}

// TryDrain is the Drain barrier with loss reporting: after the wait it
// reports any staged data the tier has lost and not yet seen re-dumped —
// every call, not once, so every rank of a collective re-dump sees the same
// remaining loss (deterministic file order, first afflicted file).
func (t *Tier) TryDrain(r *mpi.Rank) error {
	t.Drain(r)
	if !t.injecting() || len(t.lost) == 0 {
		return nil
	}
	names := make([]string, 0, len(t.lost))
	for name, exts := range t.lost {
		if len(exts) > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	name := names[0]
	t.lostNew[name] = false
	return &storage.StagingLostError{
		Node: t.lostFrom[name],
		File: name,
		Lost: append([]storage.Extent(nil), t.lost[name]...),
	}
}

// Degraded reports whether the node has been flipped permanently to
// write-through (by Degrade or a staging-node failure).
func (t *Tier) Degraded(node int) bool {
	ns := t.nodes[node]
	return ns != nil && ns.wt
}

// Degrade migrates the node's staged state down to the under-backend and
// flips it permanently to write-through. Durable-at-issue makes this
// metadata-only: the bytes already live in the under-store, so the staged
// entries are reclaimed at their booked drain completions (counted drained,
// never lost) and no data moves and no time is charged. Idempotent.
func (t *Tier) Degrade(r *mpi.Rank, node int) {
	r.P.Sync()
	t.sweep(r.Now())
	ns := t.nodeByID(node)
	if !ns.wt {
		ns.wt = true
	}
	if len(ns.q) > 0 {
		t.reclaim(ns, ns.drainEnd)
	}
}

// Open opens the file on the under-backend and wraps the handle.
func (t *Tier) Open(r *mpi.Rank, name string, stripe storage.Stripe) storage.File {
	uf := t.under.Open(r, name, stripe)
	if _, ok := t.ufiles[name]; !ok {
		t.ufiles[name] = uf
	}
	return &File{t: t, name: name, uf: uf}
}

// File is a staged handle over an under-backend file.
type File struct {
	t    *Tier
	name string
	uf   storage.File
}

// Stripe returns the under-file's stripe layout.
func (f *File) Stripe() storage.Stripe { return f.uf.Stripe() }

// Size returns the under-file's length (stores happen at issue time, so
// staged writes are already counted).
func (f *File) Size() int64 { return f.uf.Size() }

// Contents returns the file's bytes at no time cost.
func (f *File) Contents() []byte { return f.uf.Contents() }

// Peek returns the file's bytes in [off, off+n) at no time cost.
func (f *File) Peek(off, n int64) []byte { return f.uf.Peek(off, n) }

// Punch forwards to the under-store (staged reads serve through the
// under-file's Peek, so a punched range reads zeroes immediately).
func (f *File) Punch(off, n int64) { f.uf.Punch(off, n) }

// LostExtents implements storage.LossReporter: it processes any
// staging-node failures due by the rank's current virtual time and returns
// the file's punched, not-yet-re-dumped extents for the caller to plan its
// re-dump from. Marks the file's loss reported.
func (f *File) LostExtents(r *mpi.Rank) []storage.Extent {
	t := f.t
	if !t.injecting() {
		return nil
	}
	r.P.Sync()
	t.sweep(r.Now())
	if t.lostNew[f.name] {
		t.lostNew[f.name] = false
	}
	return append([]storage.Extent(nil), t.lost[f.name]...)
}

// stage absorbs one extent list into the node's staging memory and issues
// its drain, returning the write call's virtual completion time (the memory
// absorb). Falls back to write-through when the buffer cannot hold the
// request, when the node is degraded (failure or Degrade), or while the
// node's drain breaker is open. Data is durable in the under-store on
// return either way, and any write covering a lost range heals it.
func (f *File) stage(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) float64 {
	t := f.t
	var total int64
	for _, e := range exts {
		total += e.Len
	}
	if total == 0 {
		return r.Now()
	}
	r.P.Sync()
	now := r.Now()
	t.sweep(now)
	id, ns := t.node(r)
	t.reclaim(ns, now)
	scale := t.under.Params().CostScale
	virtF := float64(total) * scale
	virt := int64(virtF)
	wt := ns.wt
	if !wt && t.cfg.Capacity > 0 && ns.used+virt > t.cfg.Capacity {
		wt = true // full buffer
	}
	if !wt && t.cfg.Faults.HasDrainFails() && t.brk.Get(id).State(now) == recovery.BreakerOpen {
		wt = true // flaky drains tripped the node's breaker: back off staging
	}
	if wt {
		// Write through at the under-backend's cost.
		t.writethrough += virt
		if t.obsWT != nil {
			t.obsWT.Add(uint64(virt))
		}
		done := f.uf.WritevAtAsync(r, exts, bufs)
		if t.injecting() {
			t.heal(f.name, exts)
		}
		return done
	}
	// Absorb: the caller pays node memory only.
	cl := r.W.Cluster.Config()
	_, memEnd := ns.mem.Acquire(now, virtF/cl.MemBandwidth)
	done := memEnd + cl.MemLatency
	// Issue the drain: the under-backend's resources are booked now (the
	// async-write contract), optionally paced by the node's drain pipe.
	dEnd := f.uf.WritevAtAsync(r, exts, bufs)
	if ns.pipe != nil {
		_, pEnd := ns.pipe.Acquire(now, virtF/t.cfg.DrainBandwidth)
		if pEnd > dEnd {
			dEnd = pEnd
		}
	}
	if dEnd < done {
		dEnd = done
	}
	if t.cfg.Faults.HasDrainFails() {
		dEnd = t.retryDrain(id, dEnd)
	}
	ns.used += virt
	for _, e := range exts {
		ns.q = append(ns.q, staged{file: f.name, ext: e, virt: 0, end: dEnd})
	}
	if len(ns.q) > 0 {
		// Capacity is tracked per request, not per extent: attribute the
		// whole request's bytes to its last queue entry.
		ns.q[len(ns.q)-1].virt = virt
	}
	ns.dirty[f.name] = Coalesce(append(ns.dirty[f.name], exts...))
	if dEnd > ns.drainEnd {
		ns.drainEnd = dEnd
	}
	t.absorbed += virt
	if t.obsAbsorbed != nil {
		t.obsAbsorbed.Add(uint64(virt))
	}
	if t.injecting() {
		t.heal(f.name, exts)
	}
	// Ride the progress engine: the drain tail hides under whatever the
	// rank does next (compute, the next round's exchange).
	nbio.Start(r, dEnd, nil, nil, nil)
	return done
}

// WritevAt absorbs one list-I/O write, charging ClassIO for the memory
// absorb (or the full under-cost on write-through).
func (f *File) WritevAt(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) {
	done := f.stage(r, exts, bufs)
	r.ChargeIO(done - r.Now())
}

// WritevAtAsync is WritevAt returning the virtual completion time instead
// of charging the clock.
func (f *File) WritevAtAsync(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) float64 {
	return f.stage(r, exts, bufs)
}

// WriteAt absorbs one contiguous write.
func (f *File) WriteAt(r *mpi.Rank, off int64, data []byte) {
	f.WritevAt(r, []storage.Extent{{Off: off, Len: int64(len(data))}}, [][]byte{data})
}

// WriteAtAsync absorbs one contiguous write, returning the completion time.
func (f *File) WriteAtAsync(r *mpi.Rank, off int64, data []byte) float64 {
	return f.WritevAtAsync(r, []storage.Extent{{Off: off, Len: int64(len(data))}}, [][]byte{data})
}

// TryWriteAt: a not-yet-reported staging loss on this file surfaces first,
// as a typed *storage.StagingLostError, before any bytes move — the
// caller's retry then proceeds (the failed node is write-through by then)
// and heals what it rewrites. Otherwise, under an error-injecting
// under-backend the write goes through its plumbed path so typed errors
// (and their retry accounting) surface exactly as they would without the
// tier; healthy plans absorb as usual and never fail.
func (f *File) TryWriteAt(r *mpi.Rank, off int64, data []byte) error {
	t := f.t
	if t.injecting() {
		r.P.Sync()
		t.sweep(r.Now())
		if err := t.takeLoss(f.name); err != nil {
			return err
		}
	}
	if t.under.Params().Injecting {
		virt := int64(float64(len(data)) * t.under.Params().CostScale)
		t.writethrough += virt
		if t.obsWT != nil {
			t.obsWT.Add(uint64(virt))
		}
		err := f.uf.TryWriteAt(r, off, data)
		if err == nil && t.injecting() {
			t.heal(f.name, []storage.Extent{{Off: off, Len: int64(len(data))}})
		}
		return err
	}
	f.WriteAt(r, off, data)
	return nil
}

// readHit reports whether the whole range is resident in the calling
// node's staging buffer.
func (f *File) readHit(r *mpi.Rank, ns *nodeState, off, n int64) bool {
	return covered(ns.dirty[f.name], off, n)
}

// readv serves a vectored read: ranges fully resident in the node's
// staging buffer cost memory only; anything else goes to the under-backend.
func (f *File) readv(r *mpi.Rank, exts []storage.Extent) ([][]byte, float64) {
	t := f.t
	r.P.Sync()
	now := r.Now()
	t.sweep(now)
	_, ns := t.node(r)
	t.reclaim(ns, now)
	cl := r.W.Cluster.Config()
	scale := t.under.Params().CostScale
	out := make([][]byte, len(exts))
	var miss []storage.Extent
	var missIdx []int
	done := now
	for i, e := range exts {
		if f.readHit(r, ns, e.Off, e.Len) {
			out[i] = f.uf.Peek(e.Off, e.Len)
			virtF := float64(e.Len) * scale
			_, memEnd := ns.mem.Acquire(now, virtF/cl.MemBandwidth)
			if end := memEnd + cl.MemLatency; end > done {
				done = end
			}
			continue
		}
		miss = append(miss, e)
		missIdx = append(missIdx, i)
	}
	if len(miss) > 0 {
		data, uEnd := f.uf.ReadvAtAsync(r, miss)
		for j, i := range missIdx {
			out[i] = data[j]
		}
		if uEnd > done {
			done = uEnd
		}
	}
	return out, done
}

// ReadvAt reads one list-I/O request, charging ClassIO for the wait.
func (f *File) ReadvAt(r *mpi.Rank, exts []storage.Extent) [][]byte {
	out, done := f.readv(r, exts)
	r.ChargeIO(done - r.Now())
	return out
}

// ReadvAtAsync is ReadvAt returning the completion time instead of
// charging the clock.
func (f *File) ReadvAtAsync(r *mpi.Rank, exts []storage.Extent) ([][]byte, float64) {
	return f.readv(r, exts)
}

// ReadAt reads one contiguous range.
func (f *File) ReadAt(r *mpi.Rank, off, n int64) []byte {
	return f.ReadvAt(r, []storage.Extent{{Off: off, Len: n}})[0]
}

// ReadAtAsync reads one contiguous range, returning the completion time.
func (f *File) ReadAtAsync(r *mpi.Rank, off, n int64) ([]byte, float64) {
	out, done := f.ReadvAtAsync(r, []storage.Extent{{Off: off, Len: n}})
	return out[0], done
}

// TryReadAt refuses loudly while the requested range overlaps a lost,
// not-yet-re-dumped extent — every call, so a reader can never consume
// punched zeroes as data. Otherwise it mirrors TryWriteAt: injecting
// under-backends get their plumbed path; healthy plans never fail.
func (f *File) TryReadAt(r *mpi.Rank, off, n int64) ([]byte, error) {
	t := f.t
	if t.injecting() {
		r.P.Sync()
		t.sweep(r.Now())
		if sect := storage.Intersect(t.lost[f.name], []storage.Extent{{Off: off, Len: n}}); len(sect) > 0 {
			return nil, &storage.StagingLostError{Node: t.lostFrom[f.name], File: f.name, Lost: sect}
		}
	}
	if t.under.Params().Injecting {
		return f.uf.TryReadAt(r, off, n)
	}
	return f.ReadAt(r, off, n), nil
}
