// Package bb is a node-local burst-buffer staging tier in the spirit of
// Zhang et al.'s loosely-coupled collective I/O: a storage.Backend that
// wraps another backend and absorbs writes into node-local memory at memory
// latency/bandwidth, then drains them to the underlying backend
// asynchronously on the existing nbio progress engine — so a checkpoint
// burst's file-system time hides under the application's next compute phase
// instead of stalling the write call.
//
// Mechanics of one absorbed write: the caller pays only the node's staging
// memory (MemLatency plus bytes over MemBandwidth through a per-node memory
// pipe, so PEs sharing a node contend). The drain to the underlying backend
// is issued in the same call — its NIC and target-service resources are
// booked exactly as a direct async write's would be, optionally paced by a
// per-node drain pipe of DrainBandwidth — and rides an nbio.Request whose
// tail the progress engine hides under whatever the rank does next. Data is
// durable in the under-backend's byte store at issue time (the async-write
// contract), so read-backs are byte-exact at any point.
//
// Capacity: each node's staging memory holds at most Capacity virtual
// bytes. Staged entries are reclaimed in strict FIFO order as their drains
// complete (an entry frees only after every earlier entry on its node has —
// deterministic drain ordering); a write that does not fit falls back to
// writing through to the under-backend at full cost. Try variants also
// write through whenever the under-backend injects request errors, so
// fault-plan error plumbing is preserved.
package bb

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/nbio"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config tunes the staging tier.
type Config struct {
	// Capacity is each node's staging memory in virtual bytes. Zero means
	// unlimited (never write through).
	Capacity int64
	// DrainBandwidth, when positive, paces each node's drain to the
	// under-backend through a per-node pipe of this many bytes/second; the
	// drain completes at the later of the pipe and the under-backend's own
	// service. Zero leaves the under-backend's pace unthrottled.
	DrainBandwidth float64
}

// Tier is a burst-buffer staging tier over an underlying backend.
type Tier struct {
	under storage.Backend
	cfg   Config
	nodes map[int]*nodeState

	absorbed     int64 // virtual bytes staged at memory speed
	drained      int64 // virtual bytes whose staged entries were reclaimed
	writethrough int64 // virtual bytes that bypassed staging (full buffer)

	obsAbsorbed *obs.Counter
	obsDrained  *obs.Counter
	obsWT       *obs.Counter
}

// nodeState is one node's staging-buffer bookkeeping.
type nodeState struct {
	used     int64    // staged virtual bytes not yet reclaimed
	q        []staged // FIFO of staged entries, reclaim order
	drainEnd float64  // latest drain completion issued on this node
	mem      *sim.Resource
	pipe     *sim.Resource // nil unless DrainBandwidth > 0

	// dirty maps file name to the node's coalesced staged extents — the
	// residency set reads probe for a memory-speed hit.
	dirty map[string][]storage.Extent
}

// staged is one queued drain: virt bytes of file covering ext, whose drain
// completes at end.
type staged struct {
	file string
	ext  storage.Extent
	virt int64
	end  float64
}

var (
	_ storage.Backend = (*Tier)(nil)
	_ storage.File    = (*File)(nil)
)

// New wraps under with a staging tier.
func New(under storage.Backend, cfg Config) *Tier {
	return &Tier{under: under, cfg: cfg, nodes: make(map[int]*nodeState)}
}

// Under returns the wrapped backend.
func (t *Tier) Under() storage.Backend { return t.under }

// Counters returns the tier's cumulative (absorbed, drained, writethrough)
// virtual byte counts.
func (t *Tier) Counters() (absorbed, drained, writethrough int64) {
	return t.absorbed, t.drained, t.writethrough
}

// SetObs attaches a metrics registry: absorbed/drained/writethrough bytes
// count as they happen, and the under-backend is instrumented too. Pass nil
// to detach. Observe-only.
func (t *Tier) SetObs(reg *obs.Registry) {
	t.under.SetObs(reg)
	if reg == nil {
		t.obsAbsorbed, t.obsDrained, t.obsWT = nil, nil, nil
		return
	}
	t.obsAbsorbed = reg.Counter("storage.bb.absorbed.bytes")
	t.obsDrained = reg.Counter("storage.bb.drained.bytes")
	t.obsWT = reg.Counter("storage.bb.writethrough.bytes")
}

// Stats returns the under-backend's per-target counters (the tier itself
// has no targets; its counters are the byte totals above).
func (t *Tier) Stats() []storage.TargetStat { return t.under.Stats() }

// Params inherits the under-backend's cost scale and targets. ListIO is
// always true: staging memory is inherently list-capable (one absorb for
// the whole extent list), and the drain uses the under-backend's own
// vectored call — a per-extent loop there costs only hidden drain time.
func (t *Tier) Params() storage.Params {
	p := t.under.Params()
	p.ListIO = true
	return p
}

// Name identifies the backend kind.
func (t *Tier) Name() string { return "bb" }

// Remove drops the file from the under-backend and evicts its staged
// extents from every node (without counting them drained — they no longer
// exist to drain).
func (t *Tier) Remove(name string) {
	t.under.Remove(name)
	for _, ns := range t.nodes {
		kept := ns.q[:0]
		for _, s := range ns.q {
			if s.file == name {
				ns.used -= s.virt
				continue
			}
			kept = append(kept, s)
		}
		ns.q = kept
		delete(ns.dirty, name)
	}
}

// node returns (creating) the calling rank's node state.
func (t *Tier) node(r *mpi.Rank) *nodeState {
	id := r.W.Cluster.NodeOf(r.WorldRank())
	ns, ok := t.nodes[id]
	if !ok {
		ns = &nodeState{
			mem:   sim.NewResource(fmt.Sprintf("bbmem%d", id)),
			dirty: make(map[string][]storage.Extent),
		}
		if t.cfg.DrainBandwidth > 0 {
			ns.pipe = sim.NewResource(fmt.Sprintf("bbdrain%d", id))
		}
		t.nodes[id] = ns
	}
	return ns
}

// reclaim frees staged entries whose drains have completed by virtual time
// now, in strict FIFO order: an entry is reclaimed only after every earlier
// entry on the node, so the buffer's occupancy (and hence every
// write-through decision) is a deterministic function of virtual time.
func (t *Tier) reclaim(ns *nodeState, now float64) {
	n := 0
	for n < len(ns.q) && ns.q[n].end <= now {
		n++
	}
	if n == 0 {
		return
	}
	for _, s := range ns.q[:n] {
		ns.used -= s.virt
		t.drained += s.virt
		if t.obsDrained != nil {
			t.obsDrained.Add(uint64(s.virt))
		}
	}
	ns.q = append(ns.q[:0], ns.q[n:]...)
	t.rebuildDirty(ns)
}

// rebuildDirty recomputes the node's per-file residency sets from the
// remaining queue (coalesced).
func (t *Tier) rebuildDirty(ns *nodeState) {
	for f := range ns.dirty {
		delete(ns.dirty, f)
	}
	for _, s := range ns.q {
		ns.dirty[s.file] = append(ns.dirty[s.file], s.ext)
	}
	for f, exts := range ns.dirty {
		ns.dirty[f] = Coalesce(exts)
	}
}

// Drain blocks (in virtual time) until every drain issued on the calling
// rank's node has completed, charging the exposed wait to ClassIO — the
// checkpoint-burst "make it durable now" barrier.
func (t *Tier) Drain(r *mpi.Rank) {
	r.P.Sync()
	ns := t.node(r)
	now := r.Now()
	if ns.drainEnd > now {
		r.ChargeIO(ns.drainEnd - now)
		now = r.Now()
	}
	t.reclaim(ns, now)
}

// Open opens the file on the under-backend and wraps the handle.
func (t *Tier) Open(r *mpi.Rank, name string, stripe storage.Stripe) storage.File {
	return &File{t: t, name: name, uf: t.under.Open(r, name, stripe)}
}

// File is a staged handle over an under-backend file.
type File struct {
	t    *Tier
	name string
	uf   storage.File
}

// Stripe returns the under-file's stripe layout.
func (f *File) Stripe() storage.Stripe { return f.uf.Stripe() }

// Size returns the under-file's length (stores happen at issue time, so
// staged writes are already counted).
func (f *File) Size() int64 { return f.uf.Size() }

// Contents returns the file's bytes at no time cost.
func (f *File) Contents() []byte { return f.uf.Contents() }

// Peek returns the file's bytes in [off, off+n) at no time cost.
func (f *File) Peek(off, n int64) []byte { return f.uf.Peek(off, n) }

// stage absorbs one extent list into the node's staging memory and issues
// its drain, returning the write call's virtual completion time (the memory
// absorb). Falls back to write-through when the buffer cannot hold the
// request. Data is durable in the under-store on return either way.
func (f *File) stage(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) float64 {
	t := f.t
	var total int64
	for _, e := range exts {
		total += e.Len
	}
	if total == 0 {
		return r.Now()
	}
	r.P.Sync()
	now := r.Now()
	ns := t.node(r)
	t.reclaim(ns, now)
	scale := t.under.Params().CostScale
	virtF := float64(total) * scale
	virt := int64(virtF)
	if t.cfg.Capacity > 0 && ns.used+virt > t.cfg.Capacity {
		// Full: write through at the under-backend's cost.
		t.writethrough += virt
		if t.obsWT != nil {
			t.obsWT.Add(uint64(virt))
		}
		return f.uf.WritevAtAsync(r, exts, bufs)
	}
	// Absorb: the caller pays node memory only.
	cl := r.W.Cluster.Config()
	_, memEnd := ns.mem.Acquire(now, virtF/cl.MemBandwidth)
	done := memEnd + cl.MemLatency
	// Issue the drain: the under-backend's resources are booked now (the
	// async-write contract), optionally paced by the node's drain pipe.
	dEnd := f.uf.WritevAtAsync(r, exts, bufs)
	if ns.pipe != nil {
		_, pEnd := ns.pipe.Acquire(now, virtF/t.cfg.DrainBandwidth)
		if pEnd > dEnd {
			dEnd = pEnd
		}
	}
	if dEnd < done {
		dEnd = done
	}
	ns.used += virt
	for _, e := range exts {
		ns.q = append(ns.q, staged{file: f.name, ext: e, virt: 0, end: dEnd})
	}
	if len(ns.q) > 0 {
		// Capacity is tracked per request, not per extent: attribute the
		// whole request's bytes to its last queue entry.
		ns.q[len(ns.q)-1].virt = virt
	}
	ns.dirty[f.name] = Coalesce(append(ns.dirty[f.name], exts...))
	if dEnd > ns.drainEnd {
		ns.drainEnd = dEnd
	}
	t.absorbed += virt
	if t.obsAbsorbed != nil {
		t.obsAbsorbed.Add(uint64(virt))
	}
	// Ride the progress engine: the drain tail hides under whatever the
	// rank does next (compute, the next round's exchange).
	nbio.Start(r, dEnd, nil, nil, nil)
	return done
}

// WritevAt absorbs one list-I/O write, charging ClassIO for the memory
// absorb (or the full under-cost on write-through).
func (f *File) WritevAt(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) {
	done := f.stage(r, exts, bufs)
	r.ChargeIO(done - r.Now())
}

// WritevAtAsync is WritevAt returning the virtual completion time instead
// of charging the clock.
func (f *File) WritevAtAsync(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) float64 {
	return f.stage(r, exts, bufs)
}

// WriteAt absorbs one contiguous write.
func (f *File) WriteAt(r *mpi.Rank, off int64, data []byte) {
	f.WritevAt(r, []storage.Extent{{Off: off, Len: int64(len(data))}}, [][]byte{data})
}

// WriteAtAsync absorbs one contiguous write, returning the completion time.
func (f *File) WriteAtAsync(r *mpi.Rank, off int64, data []byte) float64 {
	return f.WritevAtAsync(r, []storage.Extent{{Off: off, Len: int64(len(data))}}, [][]byte{data})
}

// TryWriteAt: under an error-injecting fault plan the staging tier steps
// aside — the write goes through to the under-backend's plumbed path, so
// typed errors (and their retry accounting) surface exactly as they would
// without the tier. Healthy plans absorb as usual and never fail.
func (f *File) TryWriteAt(r *mpi.Rank, off int64, data []byte) error {
	if f.t.under.Params().Injecting {
		virt := int64(float64(len(data)) * f.t.under.Params().CostScale)
		f.t.writethrough += virt
		if f.t.obsWT != nil {
			f.t.obsWT.Add(uint64(virt))
		}
		return f.uf.TryWriteAt(r, off, data)
	}
	f.WriteAt(r, off, data)
	return nil
}

// readHit reports whether the whole range is resident in the calling
// node's staging buffer.
func (f *File) readHit(r *mpi.Rank, ns *nodeState, off, n int64) bool {
	return covered(ns.dirty[f.name], off, n)
}

// readv serves a vectored read: ranges fully resident in the node's
// staging buffer cost memory only; anything else goes to the under-backend.
func (f *File) readv(r *mpi.Rank, exts []storage.Extent) ([][]byte, float64) {
	t := f.t
	r.P.Sync()
	now := r.Now()
	ns := t.node(r)
	t.reclaim(ns, now)
	cl := r.W.Cluster.Config()
	scale := t.under.Params().CostScale
	out := make([][]byte, len(exts))
	var miss []storage.Extent
	var missIdx []int
	done := now
	for i, e := range exts {
		if f.readHit(r, ns, e.Off, e.Len) {
			out[i] = f.uf.Peek(e.Off, e.Len)
			virtF := float64(e.Len) * scale
			_, memEnd := ns.mem.Acquire(now, virtF/cl.MemBandwidth)
			if end := memEnd + cl.MemLatency; end > done {
				done = end
			}
			continue
		}
		miss = append(miss, e)
		missIdx = append(missIdx, i)
	}
	if len(miss) > 0 {
		data, uEnd := f.uf.ReadvAtAsync(r, miss)
		for j, i := range missIdx {
			out[i] = data[j]
		}
		if uEnd > done {
			done = uEnd
		}
	}
	return out, done
}

// ReadvAt reads one list-I/O request, charging ClassIO for the wait.
func (f *File) ReadvAt(r *mpi.Rank, exts []storage.Extent) [][]byte {
	out, done := f.readv(r, exts)
	r.ChargeIO(done - r.Now())
	return out
}

// ReadvAtAsync is ReadvAt returning the completion time instead of
// charging the clock.
func (f *File) ReadvAtAsync(r *mpi.Rank, exts []storage.Extent) ([][]byte, float64) {
	return f.readv(r, exts)
}

// ReadAt reads one contiguous range.
func (f *File) ReadAt(r *mpi.Rank, off, n int64) []byte {
	return f.ReadvAt(r, []storage.Extent{{Off: off, Len: n}})[0]
}

// ReadAtAsync reads one contiguous range, returning the completion time.
func (f *File) ReadAtAsync(r *mpi.Rank, off, n int64) ([]byte, float64) {
	out, done := f.ReadvAtAsync(r, []storage.Extent{{Off: off, Len: n}})
	return out[0], done
}

// TryReadAt mirrors TryWriteAt: injecting plans bypass the tier so typed
// errors surface; healthy plans never fail.
func (f *File) TryReadAt(r *mpi.Rank, off, n int64) ([]byte, error) {
	if f.t.under.Params().Injecting {
		return f.uf.TryReadAt(r, off, n)
	}
	return f.ReadAt(r, off, n), nil
}
