package mpi

import "math/bits"

// Rendezvous-based collectives.
//
// The control collectives of two-phase I/O (the per-round size alltoall,
// the offset allgather, the round-count allreduce, barriers) are called
// thousands of times per experiment. Simulating each as log P real
// messages is faithful but costs a goroutine switch per message, so these
// hot operations instead use a rendezvous: every member deposits its
// payload and blocks; the last arrival computes the result time
//
//	t_end = max(arrival times) + analyticCost
//
// and wakes everyone. The two effects that build the paper's collective
// wall are preserved exactly: the synchronization to the slowest member
// (the max), and the log P-shaped algorithmic cost (the analytic term,
// matching the Bruck/binomial algorithms used by the message-based
// implementations). What is sacrificed is only NIC-level contention
// between control messages and bulk data, which is negligible for the
// few-byte control payloads. Data-bearing operations (point-to-point
// exchange, Alltoallv blocks, Bcast/Gather/Scatter) remain message-based.

// collKey identifies one collective invocation on one communicator.
// Sibling communicators born from one Split share ctx and advance the same
// collective sequence, so the group's first member disambiguates them.
type collKey struct {
	ctx, seq, anchor int
}

// collSlot is the shared arrival record for an in-progress rendezvous.
type collSlot struct {
	payloads [][]byte // by comm rank
	waiting  []int    // world ranks parked so far
	arrived  int
	tmax     float64 // latest deposit time seen
}

// logSteps returns ceil(log2 p) (0 for p <= 1).
func logSteps(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}

// stepCost is the fixed per-step cost of a collective round: one latency
// plus send and receive CPU overheads. Node-local communicators hop over
// shared memory, not the wire.
func (c *Comm) stepCost() float64 {
	cc := c.r.W.Cluster.Config()
	if c.local {
		return cc.MemLatency + cc.SendOverhead + cc.RecvOverhead
	}
	return cc.Latency + cc.SendOverhead + cc.RecvOverhead
}

// bwCost converts a byte volume to seconds on the NIC — or on the memory
// bus for a node-local communicator.
func (c *Comm) bwCost(bytes int64) float64 {
	cc := c.r.W.Cluster.Config()
	if c.local {
		return float64(bytes) / cc.MemBandwidth
	}
	return float64(bytes) / cc.NICBandwidth
}

// syncExchange deposits payload, waits until every member has arrived, and
// returns all members' payloads indexed by comm rank. Every member's clock
// advances to max(arrivals) + extra(totalBytes).
//
// Ownership: the deposited payload is published to every member without
// copying (the ownership-transfer convention, see Send), so the returned
// slices are shared between members and must be treated as read-only — and
// never released to the arena, since several ranks hold them.
func (c *Comm) syncExchange(tag int, payload []byte, extra func(totalBytes int64) float64) [][]byte {
	p := c.Size()
	if p == 1 {
		return [][]byte{payload}
	}
	// The rendezvous table and slot are engine-shared state touched before
	// any Send/Recv: fence so deposits land in serial order (the waiting
	// list's order decides the wake-send order, which feeds the engine's
	// global sequence and perturbation draws).
	c.r.P.Ordered()
	w := c.r.W
	key := collKey{ctx: c.ctx, seq: tag, anchor: c.members[0]}
	slot, ok := w.coll[key]
	if !ok {
		slot = &collSlot{payloads: make([][]byte, p)}
		w.coll[key] = slot
	}
	slot.payloads[c.me] = payload
	slot.arrived++
	if now := c.r.P.Now(); now > slot.tmax {
		slot.tmax = now
	}
	me := c.members[c.me]
	if slot.arrived < p {
		slot.waiting = append(slot.waiting, me)
		m := c.r.P.Recv(AnySource, c.encTag(tag))
		return m.Payload.(*collSlot).payloads
	}
	// Last arrival: compute completion time and wake everyone.
	delete(w.coll, key)
	var total int64
	for _, b := range slot.payloads {
		total += int64(len(b))
	}
	tEnd := slot.tmax + extra(total)
	for _, wr := range slot.waiting {
		c.r.P.Send(wr, c.encTag(tag), slot, tEnd)
	}
	c.r.P.AdvanceTo(tEnd)
	c.r.prof.Msgs += int64(logSteps(p))
	c.r.prof.Bytes += total
	return slot.payloads
}
