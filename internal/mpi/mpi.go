// Package mpi implements an MPI-like message-passing runtime on top of the
// deterministic virtual-time engine in internal/sim and the machine model
// in internal/cluster.
//
// Ranks are simulated procs; point-to-point transfers book NIC time on the
// sending and receiving nodes, and collectives are built from point-to-point
// messages using the classical algorithms (dissemination barrier, binomial
// broadcast/reduce, Bruck allgather and alltoall). Collective cost therefore
// *emerges* from latency, bandwidth, and process skew — which is exactly the
// "synchronization cost" the ParColl paper measures.
//
// Every operation attributes its elapsed virtual time to the rank's current
// profiling class (see Class), so higher layers can reproduce the paper's
// time breakdown of collective I/O into synchronization, data exchange, and
// file I/O.
package mpi

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// World describes one simulated MPI job.
type World struct {
	Cluster *cluster.Cluster
	coll    map[collKey]*collSlot // in-flight rendezvous collectives
}

// Rank is one MPI process. It wraps the underlying sim proc and carries the
// profiling state. A Rank is only valid inside the body passed to Run.
type Rank struct {
	P *sim.Proc
	W *World

	prof   Prof
	class  Class
	depth  int // public-op nesting depth; only depth 0 records time
	tracer *trace.Recorder
	reg    *obs.Registry

	// Job namespace (DESIGN.md §16). Single-job runs leave it disarmed:
	// jobMembers nil means the rank belongs to job 0 spanning the whole
	// world, and every Job* accessor degrades to its World* counterpart —
	// bit-identical to the pre-tenancy runtime. The tenancy layer arms it
	// per rank before the workload body runs, making WorldComm return the
	// job's communicator and giving the storage service loops a JobID to
	// key QoS admission and per-job accounting on.
	jobID      int
	jobMembers []int // world ranks of this rank's job, ascending; nil = all
	jobRank    int   // index of this rank within jobMembers

	// Pre-resolved per-level point-to-point instruments (nil when no
	// registry is attached): every message through sendOwned counts under
	// intra or inter depending on whether source and destination share a
	// node, making the cross-NIC traffic reduction of two-level collectives
	// observable rather than asserted.
	p2pIntraMsgs, p2pIntraBytes *obs.Counter
	p2pInterMsgs, p2pInterBytes *obs.Counter
}

// SetTracer attaches an event recorder: every top-level operation emits a
// span labeled with its profiling class, and ChargeIO emits io spans. Pass
// nil to detach. Share one recorder across the ranks of a run (the engine
// serializes access).
func (r *Rank) SetTracer(rec *trace.Recorder) { r.tracer = rec }

// SetObs attaches a metrics registry: every top-level collective counts its
// calls and payload bytes under "mpi.coll.<op>.{calls,bytes}". Pass nil to
// detach. Like SetTracer, the registry only observes — it never advances
// clocks or draws randomness — so an instrumented run is bit-identical in
// virtual time to a bare one. Share one registry across the ranks of a run
// (the engine serializes access).
func (r *Rank) SetObs(reg *obs.Registry) {
	r.reg = reg
	if reg == nil {
		r.p2pIntraMsgs, r.p2pIntraBytes = nil, nil
		r.p2pInterMsgs, r.p2pInterBytes = nil, nil
		return
	}
	r.P.Ordered() // registry is engine-shared; resolve in serial order
	r.p2pIntraMsgs = reg.Counter("mpi.p2p.intra.msgs")
	r.p2pIntraBytes = reg.Counter("mpi.p2p.intra.bytes")
	r.p2pInterMsgs = reg.Counter("mpi.p2p.inter.msgs")
	r.p2pInterBytes = reg.Counter("mpi.p2p.inter.bytes")
}

// noteColl counts one top-level collective call. Nested collectives (a
// Bcast inside an Allreduce) are not double-counted: only depth-0 entries
// record, mirroring how begin/end attribute time.
func (r *Rank) noteColl(op string, bytes int64) {
	if r.reg == nil || r.depth != 0 {
		return
	}
	r.P.Ordered() // registry is engine-shared; count in serial order
	r.reg.Counter("mpi.coll." + op + ".calls").Inc()
	if bytes > 0 {
		r.reg.Counter("mpi.coll." + op + ".bytes").Add(uint64(bytes))
	}
}

// Run executes body on nprocs ranks over a cluster built from ccfg and
// returns the maximum virtual finish time in seconds. The run is
// deterministic for a given seed.
func Run(nprocs int, ccfg cluster.Config, seed int64, body func(r *Rank)) float64 {
	end, _ := RunWithStats(nprocs, ccfg, seed, body)
	return end
}

// RunWithStats is Run returning the engine's scheduler counters as well, so
// harnesses can report simulator throughput (events per wall second).
func RunWithStats(nprocs int, ccfg cluster.Config, seed int64, body func(r *Rank)) (float64, sim.Stats) {
	return RunPlan(nprocs, ccfg, seed, nil, body)
}

// RunPlan is RunWithStats under a fault plan: the plan's compute stragglers
// and delivery jitter are installed as the engine's perturber, and its
// NIC-path degradation is threaded into the cluster config. A nil or zero
// plan runs bit-identically to RunWithStats — no perturbation machinery is
// engaged at all. (OST faults live in the lustre config; see
// lustre.Config.Faults.) Determinism holds for any plan: all perturbation
// randomness comes from generators seeded by `seed`.
func RunPlan(nprocs int, ccfg cluster.Config, seed int64, plan *fault.Plan, body func(r *Rank)) (float64, sim.Stats) {
	return RunPlanWorkers(nprocs, ccfg, seed, plan, 1, body)
}

// RunPlanWorkers is RunPlan with an engine worker count: workers <= 1 runs
// the classic serial scheduler, workers > 1 the conservative parallel one
// (DESIGN.md §12), with procs partitioned into node-aligned contiguous
// domains so that NIC-ledger updates stay domain-local as often as possible.
// Results are bit-identical for every worker count — the domain mapping is a
// performance heuristic, never a correctness knob — so goldens, fault
// scenarios and recovery logs all carry over unchanged.
func RunPlanWorkers(nprocs int, ccfg cluster.Config, seed int64, plan *fault.Plan, workers int, body func(r *Rank)) (float64, sim.Stats) {
	scfg := sim.Config{Seed: seed}
	if !plan.IsZero() {
		scfg.Perturber = plan
		ccfg.Faults = plan
	}
	w := &World{
		Cluster: cluster.New(nprocs, ccfg),
		coll:    make(map[collKey]*collSlot),
	}
	if workers > 1 {
		scfg.Workers, scfg.DomainOf = domainMap(w.Cluster, workers)
	}
	e := sim.NewEngine(scfg)
	end := e.Run(nprocs, func(p *sim.Proc) {
		body(&Rank{P: p, W: w})
	})
	return end, e.Stats()
}

// domainMap partitions ranks into at most `workers` contiguous, node-aligned
// engine domains: ranks sharing a node never split across domains (their
// sends contend on the same NIC resources), and nodes spread as evenly as
// the contiguity allows.
func domainMap(c *cluster.Cluster, workers int) (int, []int) {
	nnodes := c.NumNodes()
	if workers > nnodes {
		workers = nnodes
	}
	if workers < 2 {
		return 1, nil
	}
	domOf := make([]int, c.NumProcs())
	for i := range domOf {
		domOf[i] = c.NodeOf(i) * workers / nnodes
	}
	return workers, domOf
}

// WorldRank returns the rank's id in the global job.
func (r *Rank) WorldRank() int { return r.P.ID() }

// WorldSize returns the global number of ranks.
func (r *Rank) WorldSize() int { return r.W.Cluster.NumProcs() }

// SetJob arms the rank's job namespace: id is the JobID the storage layers
// key QoS and accounting on, members the ascending world ranks of the job
// (which must include this rank). From here on WorldComm returns the job's
// communicator, so workload code written against "the world" runs unchanged
// inside a multi-tenant trace. Call before any communication.
func (r *Rank) SetJob(id int, members []int) {
	me := -1
	for i, w := range members {
		if w == r.WorldRank() {
			me = i
		}
	}
	if me < 0 {
		panic(fmt.Sprintf("mpi: SetJob(%d): rank %d not in members", id, r.WorldRank()))
	}
	r.jobID = id
	r.jobMembers = members
	r.jobRank = me
}

// JobID returns the rank's job id (0 when no namespace is armed — the
// single-job degenerate case every pre-tenancy tool runs in).
func (r *Rank) JobID() int { return r.jobID }

// JobRank returns the rank's index within its job (WorldRank when no
// namespace is armed). Workloads use it as their data-pattern identity so a
// job's file contents are independent of where the trace placed it.
func (r *Rank) JobRank() int {
	if r.jobMembers == nil {
		return r.WorldRank()
	}
	return r.jobRank
}

// JobSize returns the number of ranks in the rank's job (WorldSize when no
// namespace is armed).
func (r *Rank) JobSize() int {
	if r.jobMembers == nil {
		return r.WorldSize()
	}
	return len(r.jobMembers)
}

// JobMembers returns the world ranks of the rank's job in job-rank order
// (nil when no namespace is armed; shared slice — do not modify).
func (r *Rank) JobMembers() []int { return r.jobMembers }

// Now returns the rank's virtual clock in seconds.
func (r *Rank) Now() float64 { return r.P.Now() }

// Compute charges d seconds of local computation to the rank.
func (r *Rank) Compute(d float64) { r.P.Advance(d) }

// Class labels where a rank's time goes, mirroring the paper's breakdown of
// collective I/O processing (Figure 2).
type Class int

const (
	// ClassOther is everything not otherwise attributed.
	ClassOther Class = iota
	// ClassSync is time in collective operations (allgather, alltoall,
	// allreduce, barrier) — the paper's "synchronization".
	ClassSync
	// ClassExchange is time in point-to-point data exchange.
	ClassExchange
	// ClassIO is time spent in file reads/writes.
	ClassIO
	// NumClasses is the number of profiling classes.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassOther:
		return "other"
	case ClassSync:
		return "sync"
	case ClassExchange:
		return "exchange"
	case ClassIO:
		return "io"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Prof accumulates a rank's virtual time per class plus traffic counters.
type Prof struct {
	Times [NumClasses]float64
	Msgs  int64
	Bytes int64
}

// Total returns the sum of all class times.
func (p *Prof) Total() float64 {
	var t float64
	for _, v := range p.Times {
		t += v
	}
	return t
}

// Add accumulates another profile into p (for cross-rank aggregation).
func (p *Prof) Add(q *Prof) {
	for i := range p.Times {
		p.Times[i] += q.Times[i]
	}
	p.Msgs += q.Msgs
	p.Bytes += q.Bytes
}

// SetClass switches the rank's active profiling class, returning the
// previous one so callers can restore it.
func (r *Rank) SetClass(c Class) Class {
	old := r.class
	r.class = c
	return old
}

// ChargeIO attributes d seconds to ClassIO and advances the clock; the
// lustre layer reports completed I/O waits through this.
func (r *Rank) ChargeIO(d float64) {
	if r.tracer != nil {
		r.P.Ordered() // recorder is engine-shared; append in serial order
		r.tracer.Add(r.WorldRank(), ClassIO.String(), r.P.Now(), r.P.Now()+d, "")
	}
	r.P.Advance(d)
	r.prof.Times[ClassIO] += d
}

// Prof returns the rank's accumulated profile.
func (r *Rank) Prof() *Prof { return &r.prof }

// begin/end bracket a public operation so elapsed time lands in the current
// class exactly once even when collectives nest.
func (r *Rank) begin() float64 {
	r.depth++
	return r.P.Now()
}

func (r *Rank) end(t0 float64) {
	r.depth--
	if r.depth == 0 {
		r.prof.Times[r.class] += r.P.Now() - t0
		if r.tracer != nil && r.P.Now() > t0 {
			r.P.Ordered() // recorder is engine-shared; append in serial order
			r.tracer.Add(r.WorldRank(), r.class.String(), t0, r.P.Now(), "")
		}
	}
}
