package mpi

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// AnySource matches a message from any rank in the communicator.
const AnySource = sim.AnySource

// tagSpace reserves the low bits of the sim tag for user and collective
// tags; the communicator context occupies the high bits, isolating traffic
// of different communicators that share members.
const tagSpace = 1 << 18

// MaxUserTag is the largest tag application point-to-point code may use;
// tags above it belong to collective invocations.
const MaxUserTag = collTagBase - 1

// Comm is a communicator: an ordered group of ranks with an isolated tag
// space. Comm values are per-rank views of the same logical communicator.
type Comm struct {
	r           *Rank
	members     []int // comm rank -> world rank
	worldToComm map[int]int
	me          int // my comm rank
	ctx         int
	splits      int // number of Split calls issued on this comm so far
	collSeq     int // collective-invocation sequence (lockstep across members)
	// local marks a node-local communicator: its rendezvous collectives are
	// priced on the memory path (MemLatency/MemBandwidth) instead of the NIC.
	// Set only by NewHierarchy on intra-node comms; deliberately not
	// inherited by Split/Dup — locality of a derived group is the deriver's
	// call, not a property that survives regrouping.
	local bool
}

// WorldComm returns the communicator spanning the rank's world: all ranks
// normally, the job's members when a job namespace is armed (SetJob). The
// job case is what lets every workload — all written against "the world" —
// run unmodified inside a multi-tenant trace. Isolation needs no context
// tricks: member sets of different jobs are disjoint, so point-to-point
// traffic lands in different procs' mailboxes and rendezvous collectives
// key on different anchor ranks even at equal (ctx, seq).
func WorldComm(r *Rank) *Comm {
	members := r.JobMembers()
	if members == nil {
		n := r.WorldSize()
		members = make([]int, n)
		for i := range members {
			members[i] = i
		}
	}
	w2c := make(map[int]int, len(members))
	for i, w := range members {
		w2c[w] = i
	}
	return &Comm{r: r, members: members, worldToComm: w2c, me: r.JobRank(), ctx: 0}
}

// RankHandle returns the Rank this communicator view belongs to.
func (c *Comm) RankHandle() *Rank { return c.r }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.members) }

// Rank returns the calling rank's id within the communicator.
func (c *Comm) Rank() int { return c.me }

// WorldRankOf translates a comm rank to its world rank.
func (c *Comm) WorldRankOf(commRank int) int { return c.members[commRank] }

// Members returns the world ranks in comm-rank order (shared slice; do not
// modify).
func (c *Comm) Members() []int { return c.members }

// RankOfWorld translates a world rank to a comm rank (-1 if not a member).
func (c *Comm) RankOfWorld(world int) int {
	if cr, ok := c.worldToComm[world]; ok {
		return cr
	}
	return -1
}

func (c *Comm) encTag(tag int) int {
	if tag < 0 || tag >= tagSpace {
		panic(fmt.Sprintf("mpi: tag %d out of range", tag))
	}
	return c.ctx*tagSpace + tag
}

// UndefinedColor makes Split return nil for the calling rank, like
// MPI_UNDEFINED.
const UndefinedColor = -1

// Split partitions the communicator by color; within each color ranks are
// ordered by (key, old rank). It is collective over the communicator. Ranks
// passing UndefinedColor receive nil.
func (c *Comm) Split(color, key int) *Comm {
	// Gather (color, key) from everyone. This mirrors MPI_Comm_split cost.
	pairs := c.AllgatherInt64s([]int64{int64(color), int64(key)})
	ctx := c.ctx*131 + c.splits + 1
	c.splits++
	if color == UndefinedColor {
		return nil
	}
	type ent struct{ key, old int }
	var group []ent
	for old, p := range pairs {
		if int(p[0]) == color {
			group = append(group, ent{int(p[1]), old})
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].old < group[j].old
	})
	members := make([]int, len(group))
	w2c := make(map[int]int, len(group))
	me := -1
	for i, g := range group {
		members[i] = c.members[g.old]
		w2c[members[i]] = i
		if g.old == c.me {
			me = i
		}
	}
	return &Comm{r: c.r, members: members, worldToComm: w2c, me: me, ctx: ctx}
}

// Dup returns a communicator with the same group but an isolated tag space.
// It is collective (requires all members to call it in the same order).
func (c *Comm) Dup() *Comm {
	ctx := c.ctx*131 + c.splits + 1
	c.splits++
	members := append([]int(nil), c.members...)
	w2c := make(map[int]int, len(members))
	for i, m := range members {
		w2c[m] = i
	}
	return &Comm{r: c.r, members: members, worldToComm: w2c, me: c.me, ctx: ctx}
}

// Include creates a communicator containing exactly the given comm ranks
// of c, ordered as listed (like MPI_Comm_create over MPI_Group_incl). It
// is collective over c; callers not in ranks receive nil.
func (c *Comm) Include(ranks []int) *Comm {
	pos := -1
	for i, r := range ranks {
		if r < 0 || r >= len(c.members) {
			panic("mpi: Include rank outside communicator")
		}
		if r == c.me {
			pos = i
		}
	}
	color := 0
	key := pos
	if pos < 0 {
		color = UndefinedColor
		key = 0
	}
	return c.Split(color, key)
}

// Exclude creates a communicator containing every member of c except the
// given comm ranks, preserving order. It is collective over c; excluded
// callers receive nil.
func (c *Comm) Exclude(ranks []int) *Comm {
	drop := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		if r < 0 || r >= len(c.members) {
			panic("mpi: Exclude rank outside communicator")
		}
		drop[r] = true
	}
	color := 0
	if drop[c.me] {
		color = UndefinedColor
	}
	return c.Split(color, c.me)
}
