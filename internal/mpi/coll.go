package mpi

import (
	"encoding/binary"
	"sort"

	"repro/internal/perf"
)

// Collective operations. All are synchronizing to the degree the underlying
// algorithm requires, and their costs emerge from the point-to-point model:
// a collective over P ranks pays O(log P) latency terms plus any waiting for
// stragglers, which is precisely the "synchronization" the paper's Figure 2
// breakdown measures.
//
// Tag discipline: every collective invocation draws a fresh tag from a
// per-communicator sequence (all members call collectives in the same
// order, so the sequences agree). This keeps messages from consecutive
// collectives apart even with wildcard receives. A collective may use up to
// collSubTags sub-channels (e.g. a count phase and a data phase).

const (
	collTagBase = 1 << 16
	collSubTags = 8
	collSeqMod  = 1 << 12
)

// nextCollTag starts a new collective invocation and returns its base tag.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return collTagBase + (c.collSeq%collSeqMod)*collSubTags
}

// Barrier blocks until all members reach it. Cost model: the dissemination
// algorithm's ceil(log2 P) rounds plus waiting for the slowest member.
func (c *Comm) Barrier() {
	c.r.noteColl("barrier", 0)
	t0 := c.r.begin()
	defer c.r.end(t0)
	c.syncExchange(c.nextCollTag(), nil, func(int64) float64 {
		return float64(logSteps(c.Size())) * c.stepCost()
	})
}

// Bcast distributes root's data to all members (binomial tree) and returns
// it. Non-root callers pass nil.
//
// Ownership: the returned slice may be shared by several ranks (the tree
// relays one buffer without copying); treat it as read-only.
func (c *Comm) Bcast(root int, data []byte) []byte {
	c.r.noteColl("bcast", int64(len(data)))
	t0 := c.r.begin()
	defer c.r.end(t0)
	return c.bcastT(root, data, c.nextCollTag())
}

func (c *Comm) bcastT(root int, data []byte, tag int) []byte {
	p := c.Size()
	vr := (c.me - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := (vr - mask + root) % p
			data, _ = c.recv(src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			dst := (vr + mask + root) % p
			c.send(dst, tag, data)
		}
		mask >>= 1
	}
	return data
}

// Gather collects each member's data at root, returned indexed by comm rank
// (nil for non-roots). Blocks may have different sizes (gatherv semantics).
// Ownership of data transfers to the collective (see Send).
func (c *Comm) Gather(root int, data []byte) [][]byte {
	c.r.noteColl("gather", int64(len(data)))
	t0 := c.r.begin()
	defer c.r.end(t0)
	tag := c.nextCollTag()
	p := c.Size()
	if c.me != root {
		c.send(root, tag, data)
		return nil
	}
	out := make([][]byte, p)
	out[root] = data
	for i := 0; i < p-1; i++ {
		blk, st := c.recv(AnySource, tag)
		out[st.Source] = blk
	}
	return out
}

// Scatter sends blocks[i] from root to member i and returns the local block.
// Non-root callers pass nil (scatterv semantics: blocks may differ in size).
// Ownership of every block transfers to the collective (see Send).
func (c *Comm) Scatter(root int, blocks [][]byte) []byte {
	if c.r.reg != nil {
		c.r.noteColl("scatter", sumLens(blocks))
	}
	t0 := c.r.begin()
	defer c.r.end(t0)
	tag := c.nextCollTag()
	p := c.Size()
	if c.me == root {
		if len(blocks) != p {
			panic("mpi: Scatter needs one block per member")
		}
		for i := 0; i < p; i++ {
			if i != root {
				c.send(i, tag, blocks[i])
			}
		}
		return blocks[root]
	}
	blk, _ := c.recv(root, tag)
	return blk
}

// Allgather shares every member's data with every member; the result is
// indexed by comm rank. Blocks may have different sizes (allgatherv
// semantics). Cost model: the Bruck concatenation-doubling algorithm —
// ceil(log2 P) latency rounds plus the full gathered volume over the NIC.
//
// Ownership: the returned blocks are the members' own payload buffers,
// shared by every rank rather than copied; treat them as read-only. The
// outer slice is private to the caller.
func (c *Comm) Allgather(data []byte) [][]byte {
	c.r.noteColl("allgather", int64(len(data)))
	t0 := c.r.begin()
	defer c.r.end(t0)
	shared := c.syncExchange(c.nextCollTag(), data, func(total int64) float64 {
		return float64(logSteps(c.Size()))*c.stepCost() + c.bwCost(total)
	})
	return append([][]byte(nil), shared...)
}

func (c *Comm) allgatherT(data []byte, tag int) [][]byte {
	p := c.Size()
	collected := []piece{{rank: c.me, data: data}}
	for len(collected) < p {
		off := len(collected)
		cnt := off
		if rem := p - off; rem < cnt {
			cnt = rem
		}
		sendTo := (c.me - off + p) % p
		recvFrom := (c.me + off) % p
		c.send(sendTo, tag, encPieces(collected[:cnt]))
		in, _ := c.recv(recvFrom, tag)
		collected = append(collected, decPieces(in)...)
	}
	out := make([][]byte, p)
	for _, pc := range collected {
		out[pc.rank] = pc.data
	}
	return out
}

// AllgatherInt64s is Allgather for int64 vectors.
func (c *Comm) AllgatherInt64s(vals []int64) [][]int64 {
	c.r.noteColl("allgather", int64(len(vals))*8)
	t0 := c.r.begin()
	defer c.r.end(t0)
	shared := c.syncExchange(c.nextCollTag(), encInt64s(vals), func(total int64) float64 {
		return float64(logSteps(c.Size()))*c.stepCost() + c.bwCost(total)
	})
	// Decode all members' vectors into one backing array: two allocations
	// instead of one per member (this runs in buildPlan's step 1, the
	// hottest collective of the I/O path).
	total := 0
	for _, b := range shared {
		total += len(b) / 8
	}
	flat := make([]int64, total)
	out := make([][]int64, len(shared))
	for i, b := range shared {
		n := len(b) / 8
		out[i] = flat[:n:n]
		flat = flat[n:]
		decInt64sInto(out[i], b)
	}
	return out
}

// Alltoall delivers blocks[i] to member i and returns the blocks received,
// indexed by source rank. Implemented with Bruck distance routing:
// ceil(log2 P) rounds moving about half the blocks each round — the right
// algorithm for the small control messages collective I/O exchanges.
func (c *Comm) Alltoall(blocks [][]byte) [][]byte {
	if c.r.reg != nil {
		c.r.noteColl("alltoall", sumLens(blocks))
	}
	t0 := c.r.begin()
	defer c.r.end(t0)
	return c.alltoallBruckT(blocks, c.nextCollTag())
}

func (c *Comm) alltoallBruckT(blocks [][]byte, tag int) [][]byte {
	p := c.Size()
	if len(blocks) != p {
		panic("mpi: Alltoall needs one block per member")
	}
	held := make([]routedBlock, 0, p)
	for dst, b := range blocks {
		held = append(held, routedBlock{src: c.me, dst: dst, data: b})
	}
	for pof := 1; pof < p; pof <<= 1 {
		var fwd, keep []routedBlock
		for _, blk := range held {
			if dist := (blk.dst - c.me + p) % p; dist&pof != 0 {
				fwd = append(fwd, blk)
			} else {
				keep = append(keep, blk)
			}
		}
		c.send((c.me+pof)%p, tag, encRouted(fwd))
		in, _ := c.recv((c.me-pof+p)%p, tag)
		held = append(keep, decRouted(in)...)
	}
	out := make([][]byte, p)
	for _, blk := range held {
		if blk.dst != c.me {
			panic("mpi: alltoall routing left a block at the wrong rank")
		}
		out[blk.src] = blk.data
	}
	return out
}

// AlltoallInts exchanges one int per pair (the classic count exchange that
// precedes a v-collective, and the per-round synchronization point of
// two-phase I/O). Cost model: the Bruck algorithm — ceil(log2 P) rounds,
// each moving about half the table.
func (c *Comm) AlltoallInts(vals []int) []int {
	out := make([]int, len(vals))
	c.AlltoallIntsInto(out, vals)
	return out
}

// AlltoallIntsInto is AlltoallInts writing the result into dst (length
// Size()); the per-round loops of two-phase I/O reuse one result slice.
func (c *Comm) AlltoallIntsInto(dst, vals []int) {
	c.r.noteColl("alltoall", int64(len(vals))*8)
	t0 := c.r.begin()
	defer c.r.end(t0)
	c.alltoallIntsR(dst, vals, c.nextCollTag())
}

func (c *Comm) alltoallIntsR(dst, vals []int, tag int) {
	p := c.Size()
	if len(vals) != p || len(dst) != p {
		panic("mpi: AlltoallInts needs one value per member")
	}
	// Rows are sparse in two-phase I/O (a process talks to a handful of
	// aggregators per round), so deposit only the nonzero (column, value)
	// pairs, encoded straight to wire bytes. The analytic cost still
	// charges the dense Bruck exchange the real protocol performs.
	nz := 0
	for _, v := range vals {
		if v != 0 {
			nz++
		}
	}
	var enc []byte
	if nz > 0 {
		enc = make([]byte, 0, 16*nz)
		for i, v := range vals {
			if v != 0 {
				enc = binary.LittleEndian.AppendUint64(enc, uint64(int64(i)))
				enc = binary.LittleEndian.AppendUint64(enc, uint64(int64(v)))
			}
		}
	}
	rows := c.syncExchange(tag, enc, func(int64) float64 {
		perStep := c.stepCost() + c.bwCost(int64(p/2)*8)
		return float64(logSteps(p)) * perStep
	})
	clear(dst)
	for src, row := range rows {
		for i := 0; i+16 <= len(row); i += 16 {
			if int(int64(binary.LittleEndian.Uint64(row[i:]))) == c.me {
				dst[src] = int(int64(binary.LittleEndian.Uint64(row[i+8:])))
				break
			}
		}
	}
}

// AlltoallvAlgo selects the algorithm used by Alltoallv.
type AlltoallvAlgo int

const (
	// AlltoallvDirect exchanges counts with a Bruck alltoall and then
	// sends only non-empty blocks point-to-point (the ROMIO approach).
	AlltoallvDirect AlltoallvAlgo = iota
	// AlltoallvPairwise runs P-1 synchronous sendrecv rounds, even for
	// empty blocks. Used by the ablation that shows replacing collectives
	// with point-to-point rounds does not remove the synchronization.
	AlltoallvPairwise
)

// Alltoallv delivers send[i] to member i (nil/empty means nothing) and
// returns received blocks indexed by source; absent blocks are nil.
func (c *Comm) Alltoallv(send [][]byte, algo AlltoallvAlgo) [][]byte {
	if c.r.reg != nil {
		c.r.noteColl("alltoallv", sumLens(send))
	}
	t0 := c.r.begin()
	defer c.r.end(t0)
	tag := c.nextCollTag()
	p := c.Size()
	if len(send) != p {
		panic("mpi: Alltoallv needs one entry per member")
	}
	out := make([][]byte, p)
	switch algo {
	case AlltoallvPairwise:
		for k := 1; k < p; k++ {
			dst, src := (c.me+k)%p, (c.me-k+p)%p
			c.send(dst, tag, send[dst])
			blk, _ := c.recv(src, tag)
			if len(blk) > 0 {
				out[src] = blk
			}
		}
	default: // AlltoallvDirect
		counts := make([]int, p)
		for i, b := range send {
			counts[i] = len(b)
		}
		recvCounts := make([]int, p)
		c.alltoallIntsR(recvCounts, counts, tag) // sub-channel 0
		dataTag := tag + 1                       // sub-channel 1
		var expect int
		for src, n := range recvCounts {
			if src != c.me && n > 0 {
				expect++
			}
		}
		for dst, b := range send {
			if dst != c.me && len(b) > 0 {
				c.send(dst, dataTag, b)
			}
		}
		for i := 0; i < expect; i++ {
			blk, st := c.recv(AnySource, dataTag)
			out[st.Source] = blk
		}
	}
	if len(send[c.me]) > 0 {
		out[c.me] = send[c.me]
	}
	return out
}

// Op is a reduction operator.
type Op int

const (
	// OpSum adds elementwise.
	OpSum Op = iota
	// OpMax takes the elementwise maximum.
	OpMax
	// OpMin takes the elementwise minimum.
	OpMin
)

func combineInt64(a, b []int64, op Op) {
	for i := range a {
		switch op {
		case OpSum:
			a[i] += b[i]
		case OpMax:
			if b[i] > a[i] {
				a[i] = b[i]
			}
		case OpMin:
			if b[i] < a[i] {
				a[i] = b[i]
			}
		}
	}
}

// ReduceInt64 combines vals elementwise at root (binomial tree). Only root
// receives the result; others get nil.
func (c *Comm) ReduceInt64(root int, vals []int64, op Op) []int64 {
	c.r.noteColl("reduce", int64(len(vals))*8)
	t0 := c.r.begin()
	defer c.r.end(t0)
	return c.reduceInt64T(root, vals, op, c.nextCollTag())
}

func (c *Comm) reduceInt64T(root int, vals []int64, op Op, tag int) []int64 {
	p := c.Size()
	vr := (c.me - root + p) % p
	acc := append([]int64(nil), vals...)
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			dst := (vr - mask + root) % p
			c.send(dst, tag, encInt64sBuf(acc))
			return nil
		}
		if src := vr | mask; src < p {
			// Every tree message is arena-built by the child above, so the
			// payload is single-owner and can go back to the pool here.
			in, _ := c.recv((src+root)%p, tag)
			combineInt64Bytes(acc, in, op)
			perf.PutBuf(in)
		}
	}
	return acc
}

// allreduceCost models reduce-to-root plus broadcast: two binomial trees.
func (c *Comm) allreduceCost(vecBytes int64) func(int64) float64 {
	return func(int64) float64 {
		steps := float64(logSteps(c.Size()))
		return 2 * steps * (c.stepCost() + c.bwCost(vecBytes))
	}
}

// AllreduceInt64 combines vals elementwise across all members and returns
// the result everywhere. Cost model: reduce to rank 0 plus broadcast (two
// binomial trees).
func (c *Comm) AllreduceInt64(vals []int64, op Op) []int64 {
	c.r.noteColl("allreduce", int64(len(vals))*8)
	t0 := c.r.begin()
	defer c.r.end(t0)
	all := c.syncExchange(c.nextCollTag(), encInt64s(vals), c.allreduceCost(int64(len(vals))*8))
	acc := decInt64s(all[0])
	for _, b := range all[1:] {
		combineInt64Bytes(acc, b, op)
	}
	return acc
}

// AllreduceFloat64 is AllreduceInt64 for float64 vectors.
func (c *Comm) AllreduceFloat64(vals []float64, op Op) []float64 {
	c.r.noteColl("allreduce", int64(len(vals))*8)
	t0 := c.r.begin()
	defer c.r.end(t0)
	all := c.syncExchange(c.nextCollTag(), encFloat64s(vals), c.allreduceCost(int64(len(vals))*8))
	acc := decFloat64s(all[0])
	for _, b := range all[1:] {
		combineFloat64Bytes(acc, b, op)
	}
	return acc
}

// MaxFinishTime is a convenience for experiments: an allreduce of each
// rank's clock, returning the communicator-wide maximum (it synchronizes).
func (c *Comm) MaxFinishTime() float64 {
	v := c.AllreduceFloat64([]float64{c.r.Now()}, OpMax)
	return v[0]
}

// SortedMembers returns a copy of the members in ascending world order.
func (c *Comm) SortedMembers() []int {
	out := append([]int(nil), c.members...)
	sort.Ints(out)
	return out
}

// ScanInt64 computes the inclusive prefix reduction: member i receives the
// combination of members 0..i (binomial-chain cost model via rendezvous).
func (c *Comm) ScanInt64(vals []int64, op Op) []int64 {
	c.r.noteColl("scan", int64(len(vals))*8)
	t0 := c.r.begin()
	defer c.r.end(t0)
	all := c.syncExchange(c.nextCollTag(), encInt64s(vals), c.allreduceCost(int64(len(vals))*8))
	acc := decInt64s(all[0])
	for i := 1; i <= c.me; i++ {
		combineInt64Bytes(acc, all[i], op)
	}
	return acc
}

// ExscanInt64 computes the exclusive prefix reduction: member i receives
// the combination of members 0..i-1; member 0 receives zeros.
func (c *Comm) ExscanInt64(vals []int64, op Op) []int64 {
	c.r.noteColl("exscan", int64(len(vals))*8)
	t0 := c.r.begin()
	defer c.r.end(t0)
	all := c.syncExchange(c.nextCollTag(), encInt64s(vals), c.allreduceCost(int64(len(vals))*8))
	acc := make([]int64, len(vals))
	if c.me == 0 {
		return acc
	}
	decInt64sInto(acc, all[0])
	for i := 1; i < c.me; i++ {
		combineInt64Bytes(acc, all[i], op)
	}
	return acc
}

// ReduceScatterInt64 reduces a vector of Size()*blockLen elements across
// all members and scatters block i to member i.
func (c *Comm) ReduceScatterInt64(vals []int64, blockLen int, op Op) []int64 {
	c.r.noteColl("reduce_scatter", int64(len(vals))*8)
	t0 := c.r.begin()
	defer c.r.end(t0)
	p := c.Size()
	if len(vals) != p*blockLen {
		panic("mpi: ReduceScatterInt64 needs Size()*blockLen elements")
	}
	all := c.syncExchange(c.nextCollTag(), encInt64s(vals), c.allreduceCost(int64(blockLen)*8))
	out := make([]int64, blockLen)
	decInt64sInto(out, all[0][8*c.me*blockLen:])
	for _, b := range all[1:] {
		combineInt64Bytes(out, b[8*c.me*blockLen:], op)
	}
	return out
}

// sumLens totals the payload bytes of a block vector (metrics only; callers
// guard on the registry being armed so bare runs skip the loop).
func sumLens(blocks [][]byte) int64 {
	var n int64
	for _, b := range blocks {
		n += int64(len(b))
	}
	return n
}
