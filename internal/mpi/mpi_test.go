package mpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// testSizes covers powers of two, non-powers, and degenerate groups.
var testSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 17}

func runWorld(t *testing.T, n int, body func(c *Comm)) {
	t.Helper()
	Run(n, cluster.DefaultConfig(), 1, func(r *Rank) {
		body(WorldComm(r))
	})
}

func TestSendRecvRoundTrip(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 5, []byte("ping"))
			data, st := c.Recv(1, 6)
			if string(data) != "pong" || st.Source != 1 {
				t.Errorf("rank0 got %q from %d", data, st.Source)
			}
		case 1:
			data, _ := c.Recv(0, 5)
			if string(data) != "ping" {
				t.Errorf("rank1 got %q", data)
			}
			c.Send(0, 6, []byte("pong"))
		}
	})
}

// TestSendTransfersOwnership pins the zero-copy convention: Send hands the
// caller's buffer to the receiver without a defensive copy, so the receiver
// sees the very same backing array.
func TestSendTransfersOwnership(t *testing.T) {
	probe := []byte("aaaa")
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, probe)
		} else {
			data, _ := c.Recv(0, 1)
			if string(data) != "aaaa" {
				t.Errorf("payload corrupted: got %q", data)
			}
			if len(data) > 0 && &data[0] != &probe[0] {
				t.Error("Send copied the payload; expected ownership transfer of the same buffer")
			}
		}
	})
}

func TestSendrecvNoDeadlock(t *testing.T) {
	runWorld(t, 4, func(c *Comm) {
		right := (c.Rank() + 1) % 4
		left := (c.Rank() + 3) % 4
		data, st := c.Sendrecv(right, []byte{byte(c.Rank())}, left, 9)
		if st.Source != left || data[0] != byte(left) {
			t.Errorf("rank %d sendrecv got %v from %d", c.Rank(), data, st.Source)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range testSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			after := make([]float64, n)
			runWorld(t, n, func(c *Comm) {
				// Rank i does i ms of work; after the barrier, every
				// clock must be >= the slowest rank's pre-barrier time.
				c.r.Compute(float64(c.Rank()) * 1e-3)
				c.Barrier()
				after[c.Rank()] = c.r.Now()
			})
			slowest := float64(n-1) * 1e-3
			for i, ts := range after {
				if ts < slowest {
					t.Errorf("rank %d passed barrier at %g, before slowest rank's %g", i, ts, slowest)
				}
			}
		})
	}
}

func TestBcastAllSizes(t *testing.T) {
	for _, n := range testSizes {
		for root := 0; root < n; root += 1 + n/3 {
			n, root := n, root
			t.Run(fmt.Sprintf("n%d root%d", n, root), func(t *testing.T) {
				msg := []byte(fmt.Sprintf("payload-from-%d", root))
				runWorld(t, n, func(c *Comm) {
					var in []byte
					if c.Rank() == root {
						in = msg
					}
					out := c.Bcast(root, in)
					if !bytes.Equal(out, msg) {
						t.Errorf("rank %d bcast got %q want %q", c.Rank(), out, msg)
					}
				})
			})
		}
	}
}

func TestGatherScatter(t *testing.T) {
	for _, n := range testSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runWorld(t, n, func(c *Comm) {
				root := n / 2
				mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()+1)
				got := c.Gather(root, mine)
				if c.Rank() == root {
					for i, b := range got {
						want := bytes.Repeat([]byte{byte(i)}, i+1)
						if !bytes.Equal(b, want) {
							t.Errorf("gather[%d] = %v want %v", i, b, want)
						}
					}
					// Scatter back doubled blocks.
					blocks := make([][]byte, n)
					for i := range blocks {
						blocks[i] = bytes.Repeat([]byte{byte(i)}, 2*(i+1))
					}
					mine := c.Scatter(root, blocks)
					if len(mine) != 2*(root+1) {
						t.Errorf("root scatter len %d", len(mine))
					}
				} else {
					blk := c.Scatter(root, nil)
					want := bytes.Repeat([]byte{byte(c.Rank())}, 2*(c.Rank()+1))
					if !bytes.Equal(blk, want) {
						t.Errorf("rank %d scatter got %v want %v", c.Rank(), blk, want)
					}
				}
			})
		})
	}
}

func TestAllgatherVariableSizes(t *testing.T) {
	for _, n := range testSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runWorld(t, n, func(c *Comm) {
				mine := bytes.Repeat([]byte{byte(c.Rank() + 1)}, (c.Rank()%3)+1)
				all := c.Allgather(mine)
				if len(all) != n {
					t.Fatalf("allgather returned %d blocks", len(all))
				}
				for i, b := range all {
					want := bytes.Repeat([]byte{byte(i + 1)}, (i%3)+1)
					if !bytes.Equal(b, want) {
						t.Errorf("rank %d allgather[%d] = %v want %v", c.Rank(), i, b, want)
					}
				}
			})
		})
	}
}

func TestAlltoallAllSizes(t *testing.T) {
	for _, n := range testSizes {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runWorld(t, n, func(c *Comm) {
				blocks := make([][]byte, n)
				for dst := range blocks {
					blocks[dst] = []byte(fmt.Sprintf("%d->%d", c.Rank(), dst))
				}
				got := c.Alltoall(blocks)
				for src, b := range got {
					want := fmt.Sprintf("%d->%d", src, c.Rank())
					if string(b) != want {
						t.Errorf("rank %d alltoall[%d] = %q want %q", c.Rank(), src, b, want)
					}
				}
			})
		})
	}
}

func TestAlltoallvBothAlgos(t *testing.T) {
	for _, algo := range []AlltoallvAlgo{AlltoallvDirect, AlltoallvPairwise} {
		for _, n := range []int{1, 2, 4, 7, 9} {
			algo, n := algo, n
			t.Run(fmt.Sprintf("algo%d n%d", algo, n), func(t *testing.T) {
				runWorld(t, n, func(c *Comm) {
					// Sparse pattern: rank r sends to dst only when
					// (r+dst) is even; payload identifies the pair.
					send := make([][]byte, n)
					for dst := 0; dst < n; dst++ {
						if (c.Rank()+dst)%2 == 0 {
							send[dst] = []byte(fmt.Sprintf("v%d.%d", c.Rank(), dst))
						}
					}
					got := c.Alltoallv(send, algo)
					for src := 0; src < n; src++ {
						want := ""
						if (src+c.Rank())%2 == 0 {
							want = fmt.Sprintf("v%d.%d", src, c.Rank())
						}
						if string(got[src]) != want {
							t.Errorf("rank %d from %d: got %q want %q", c.Rank(), src, got[src], want)
						}
					}
				})
			})
		}
	}
}

// TestConsecutiveWildcardCollectives guards the tag-sequencing fix: two
// back-to-back Alltoallv calls must not steal each other's messages even
// though receives use AnySource.
func TestConsecutiveWildcardCollectives(t *testing.T) {
	runWorld(t, 5, func(c *Comm) {
		for round := 0; round < 4; round++ {
			send := make([][]byte, 5)
			for dst := 0; dst < 5; dst++ {
				if (c.Rank()+dst+round)%2 == 0 {
					send[dst] = []byte(fmt.Sprintf("r%d-%d-%d", round, c.Rank(), dst))
				}
			}
			// Skew: make some ranks slow so calls overlap in virtual time.
			if c.Rank() == round%5 {
				c.r.Compute(1e-2)
			}
			got := c.Alltoallv(send, AlltoallvDirect)
			for src := 0; src < 5; src++ {
				want := ""
				if (src+c.Rank()+round)%2 == 0 {
					want = fmt.Sprintf("r%d-%d-%d", round, src, c.Rank())
				}
				if string(got[src]) != want {
					t.Fatalf("round %d rank %d from %d: got %q want %q",
						round, c.Rank(), src, got[src], want)
				}
			}
		}
	})
}

func TestReduceAllreduceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range testSizes {
		for _, op := range []Op{OpSum, OpMax, OpMin} {
			n, op := n, op
			t.Run(fmt.Sprintf("n%d op%d", n, op), func(t *testing.T) {
				const width = 5
				inputs := make([][]int64, n)
				for i := range inputs {
					inputs[i] = make([]int64, width)
					for j := range inputs[i] {
						inputs[i][j] = int64(rng.Intn(2000) - 1000)
					}
				}
				want := append([]int64(nil), inputs[0]...)
				for i := 1; i < n; i++ {
					combineInt64(want, inputs[i], op)
				}
				runWorld(t, n, func(c *Comm) {
					got := c.AllreduceInt64(inputs[c.Rank()], op)
					for j := range got {
						if got[j] != want[j] {
							t.Errorf("rank %d allreduce[%d] = %d want %d", c.Rank(), j, got[j], want[j])
						}
					}
					red := c.ReduceInt64(2%n, inputs[c.Rank()], op)
					if c.Rank() == 2%n {
						for j := range red {
							if red[j] != want[j] {
								t.Errorf("reduce[%d] = %d want %d", j, red[j], want[j])
							}
						}
					} else if red != nil {
						t.Errorf("non-root got reduce result")
					}
				})
			})
		}
	}
}

func TestAllreduceFloat64(t *testing.T) {
	runWorld(t, 6, func(c *Comm) {
		got := c.AllreduceFloat64([]float64{float64(c.Rank()), -float64(c.Rank())}, OpMax)
		if got[0] != 5 || got[1] != 0 {
			t.Errorf("rank %d: got %v want [5 0]", c.Rank(), got)
		}
		sum := c.AllreduceFloat64([]float64{1.5}, OpSum)
		if sum[0] != 9 {
			t.Errorf("sum = %v want 9", sum[0])
		}
	})
}

func TestCommSplit(t *testing.T) {
	runWorld(t, 8, func(c *Comm) {
		// Two groups by parity; key reverses order within the group.
		sub := c.Split(c.Rank()%2, -c.Rank())
		if sub.Size() != 4 {
			t.Fatalf("split size %d", sub.Size())
		}
		// Highest old rank gets comm rank 0 (smallest key).
		wantWorld := []int{6, 4, 2, 0}
		if c.Rank()%2 == 1 {
			wantWorld = []int{7, 5, 3, 1}
		}
		for i, w := range wantWorld {
			if sub.WorldRankOf(i) != w {
				t.Errorf("split member[%d] = %d want %d", i, sub.WorldRankOf(i), w)
			}
		}
		// The subgroup must be usable: allreduce of world ranks.
		got := sub.AllreduceInt64([]int64{int64(c.Rank())}, OpSum)
		want := int64(0 + 2 + 4 + 6)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if got[0] != want {
			t.Errorf("subgroup allreduce = %d want %d", got[0], want)
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	runWorld(t, 4, func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = UndefinedColor
		}
		sub := c.Split(color, c.Rank())
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color should yield nil comm")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("split size = %d want 3", sub.Size())
		}
	})
}

func TestNestedSplitIsolation(t *testing.T) {
	// Messages in a child communicator must not leak into the parent.
	runWorld(t, 4, func(c *Comm) {
		sub := c.Split(c.Rank()/2, c.Rank())
		if sub.Rank() == 0 {
			sub.Send(1, 3, []byte{42})
		}
		c.Barrier()
		if sub.Rank() == 1 {
			data, _ := sub.Recv(0, 3)
			if data[0] != 42 {
				t.Errorf("sub recv got %v", data)
			}
		}
	})
}

func TestDupIsolation(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		d := c.Dup()
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("parent"))
			d.Send(1, 7, []byte("dup"))
		} else {
			fromDup, _ := d.Recv(0, 7)
			fromParent, _ := c.Recv(0, 7)
			if string(fromDup) != "dup" || string(fromParent) != "parent" {
				t.Errorf("dup isolation broken: %q / %q", fromDup, fromParent)
			}
		}
	})
}

func TestProfilingClasses(t *testing.T) {
	var prof Prof
	Run(4, cluster.DefaultConfig(), 1, func(r *Rank) {
		c := WorldComm(r)
		r.SetClass(ClassSync)
		c.Barrier()
		r.SetClass(ClassExchange)
		if r.WorldRank() == 0 {
			c.Send(1, 1, make([]byte, 1024))
		} else if r.WorldRank() == 1 {
			c.Recv(0, 1)
		}
		r.SetClass(ClassOther)
		if r.WorldRank() == 1 {
			prof = *r.Prof()
		}
	})
	if prof.Times[ClassSync] <= 0 {
		t.Error("no sync time recorded for barrier")
	}
	if prof.Times[ClassExchange] <= 0 {
		t.Error("no exchange time recorded for recv")
	}
	if prof.Times[ClassIO] != 0 {
		t.Error("io time recorded without io")
	}
}

func TestProfilingNoDoubleCount(t *testing.T) {
	// Allreduce internally runs reduce+bcast; elapsed time must be counted
	// exactly once: class time can never exceed the rank's clock.
	Run(8, cluster.DefaultConfig(), 1, func(r *Rank) {
		c := WorldComm(r)
		r.SetClass(ClassSync)
		for i := 0; i < 5; i++ {
			c.AllreduceInt64([]int64{1}, OpSum)
		}
		if got, clock := r.Prof().Total(), r.Now(); got > clock+1e-12 {
			t.Errorf("rank %d prof total %g exceeds clock %g", r.WorldRank(), got, clock)
		}
	})
}

func TestRunDeterminism(t *testing.T) {
	run := func() float64 {
		return Run(16, cluster.DefaultConfig(), 99, func(r *Rank) {
			c := WorldComm(r)
			r.Compute(r.P.Rand().Float64() * 1e-3)
			c.Barrier()
			c.AllreduceInt64([]int64{int64(r.WorldRank())}, OpSum)
			blocks := make([][]byte, c.Size())
			for i := range blocks {
				blocks[i] = make([]byte, (r.WorldRank()+i)%7)
			}
			c.Alltoall(blocks)
		})
	}
	if a, b := run(), run(); a != b {
		t.Errorf("runs differ: %g vs %g", a, b)
	}
}

func TestCollectiveCostGrowsWithGroupSize(t *testing.T) {
	cost := func(n int) float64 {
		var got float64
		Run(n, cluster.DefaultConfig(), 1, func(r *Rank) {
			c := WorldComm(r)
			t0 := r.Now()
			for i := 0; i < 10; i++ {
				c.AllreduceInt64([]int64{1}, OpSum)
			}
			if r.WorldRank() == 0 {
				got = r.Now() - t0
			}
		})
		return got
	}
	small, large := cost(4), cost(64)
	if large <= small {
		t.Errorf("allreduce cost did not grow with group size: %g (4p) vs %g (64p)", small, large)
	}
}

func TestMaxFinishTime(t *testing.T) {
	runWorld(t, 4, func(c *Comm) {
		c.r.Compute(float64(c.Rank()) * 1e-3)
		max := c.MaxFinishTime()
		if max < 3e-3 {
			t.Errorf("MaxFinishTime %g < slowest rank 3e-3", max)
		}
	})
}

func TestTagOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized tag")
		}
	}()
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, tagSpace+1, nil)
		} else {
			c.Recv(0, 0)
		}
	})
}

// TestConcurrentSubgroupCollectives verifies sibling communicators (same
// ctx, same collective sequence) never cross rendezvous slots.
func TestConcurrentSubgroupCollectives(t *testing.T) {
	runWorld(t, 8, func(c *Comm) {
		sub := c.Split(c.Rank()%4, c.Rank()) // 4 groups of 2
		for i := 0; i < 10; i++ {
			sum := sub.AllreduceInt64([]int64{int64(c.Rank())}, OpSum)
			want := int64(c.Rank()%4) + int64(c.Rank()%4+4)
			if sum[0] != want {
				t.Fatalf("round %d rank %d: subgroup allreduce %d want %d", i, c.Rank(), sum[0], want)
			}
			got := sub.AlltoallInts([]int{c.Rank() * 10, c.Rank() * 10})
			partner := sub.WorldRankOf(1 - sub.Rank())
			if got[1-sub.Rank()] != partner*10 {
				t.Fatalf("alltoall ints cross-group leak: %v", got)
			}
		}
	})
}

// TestRendezvousWaitsForSlowest ensures the collective blocks on the last
// arrival and everyone resumes at (or after) its arrival time.
func TestRendezvousWaitsForSlowest(t *testing.T) {
	runWorld(t, 6, func(c *Comm) {
		c.r.Compute(float64(c.Rank()) * 1e-2)
		got := c.AllreduceInt64([]int64{1}, OpSum)
		if got[0] != 6 {
			t.Fatalf("allreduce sum = %d", got[0])
		}
		if c.r.Now() < 5e-2 {
			t.Errorf("rank %d resumed at %g, before the slowest member's 0.05", c.Rank(), c.r.Now())
		}
	})
}

// TestAllgatherSharedBlocks pins the zero-copy convention: every rank sees
// the contributors' own buffers (read-only, shared), while the outer slice
// is private to each caller.
func TestAllgatherSharedBlocks(t *testing.T) {
	contrib := make([][]byte, 4)
	runWorld(t, 4, func(c *Comm) {
		mine := []byte{byte(c.Rank()), byte(c.Rank())}
		contrib[c.Rank()] = mine
		out := c.Allgather(mine)
		for src, blk := range out {
			if len(blk) != 2 || blk[0] != byte(src) || blk[1] != byte(src) {
				t.Errorf("rank %d: block %d = %v", c.Rank(), src, blk)
			}
			if &blk[0] != &contrib[src][0] {
				t.Errorf("rank %d: block %d was copied; expected the contributor's buffer shared", c.Rank(), src)
			}
		}
		out[0] = nil // the outer slice must be private to this caller
		c.Barrier()
		again := c.Allgather(mine)
		if again[0] == nil || again[0][0] != 0 {
			t.Errorf("outer slice aliased across calls: %v", again[0])
		}
	})
}

// TestAlltoallIntsMatchesMessageAlltoall cross-validates the rendezvous
// fast path against the message-based Bruck implementation.
func TestAlltoallIntsMatchesMessageAlltoall(t *testing.T) {
	for _, n := range []int{2, 5, 8, 13} {
		n := n
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			runWorld(t, n, func(c *Comm) {
				vals := make([]int, n)
				blocks := make([][]byte, n)
				for i := range vals {
					vals[i] = c.Rank()*1000 + i
					blocks[i] = encInt64s([]int64{int64(vals[i])})
				}
				fast := c.AlltoallInts(vals)
				slow := c.Alltoall(blocks)
				for src := range fast {
					if int64(fast[src]) != decInt64s(slow[src])[0] {
						t.Fatalf("fast/slow alltoall disagree at src %d: %d vs %d",
							src, fast[src], decInt64s(slow[src])[0])
					}
				}
			})
		})
	}
}

// TestCollectiveCostScalesLogarithmically sanity-checks the analytic cost:
// quadrupling members should roughly double barrier cost, not quadruple it.
func TestCollectiveCostScalesLogarithmically(t *testing.T) {
	cost := func(n int) float64 {
		var d float64
		Run(n, cluster.DefaultConfig(), 1, func(r *Rank) {
			c := WorldComm(r)
			t0 := r.Now()
			for i := 0; i < 50; i++ {
				c.Barrier()
			}
			if r.WorldRank() == 0 {
				d = r.Now() - t0
			}
		})
		return d
	}
	c4, c16, c64 := cost(4), cost(16), cost(64)
	if c16 <= c4 || c64 <= c16 {
		t.Fatalf("barrier cost not increasing: %g %g %g", c4, c16, c64)
	}
	if c64 > c4*8 {
		t.Errorf("barrier cost grew superlogarithmically: 4p=%g 64p=%g", c4, c64)
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	runWorld(t, 4, func(c *Comm) {
		// Everyone posts irecvs from all peers, then isends to all peers.
		var reqs []*Request
		for src := 0; src < 4; src++ {
			if src != c.Rank() {
				reqs = append(reqs, c.Irecv(src, 11))
			}
		}
		for dst := 0; dst < 4; dst++ {
			if dst != c.Rank() {
				c.Isend(dst, 11, []byte{byte(c.Rank()), byte(dst)})
			}
		}
		got := Waitall(reqs)
		for i, b := range got {
			if len(b) != 2 || b[1] != byte(c.Rank()) {
				t.Errorf("req %d payload %v", i, b)
			}
		}
	})
}

func TestRequestTest(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Irecv(1, 3)
			if _, _, ok := req.Test(); ok {
				t.Error("Test succeeded before the send")
			}
			data, st := req.Wait()
			if st.Source != 1 || data[0] != 7 {
				t.Errorf("wait got %v from %d", data, st.Source)
			}
			// Test after completion is idempotent.
			if _, _, ok := req.Test(); !ok {
				t.Error("Test failed after completion")
			}
		} else {
			c.r.Compute(1e-3)
			c.Send(0, 3, []byte{7})
		}
	})
}

func TestScanExscan(t *testing.T) {
	runWorld(t, 6, func(c *Comm) {
		inc := c.ScanInt64([]int64{int64(c.Rank() + 1)}, OpSum)
		wantInc := int64((c.Rank() + 1) * (c.Rank() + 2) / 2)
		if inc[0] != wantInc {
			t.Errorf("rank %d scan = %d want %d", c.Rank(), inc[0], wantInc)
		}
		exc := c.ExscanInt64([]int64{int64(c.Rank() + 1)}, OpSum)
		wantExc := int64(c.Rank() * (c.Rank() + 1) / 2)
		if exc[0] != wantExc {
			t.Errorf("rank %d exscan = %d want %d", c.Rank(), exc[0], wantExc)
		}
	})
}

func TestReduceScatter(t *testing.T) {
	runWorld(t, 4, func(c *Comm) {
		// vals[i*2:(i+1)*2] destined for member i; contribution = rank+1.
		vals := make([]int64, 8)
		for i := range vals {
			vals[i] = int64(c.Rank() + 1)
		}
		got := c.ReduceScatterInt64(vals, 2, OpSum)
		if got[0] != 10 || got[1] != 10 {
			t.Errorf("rank %d reduce-scatter = %v want [10 10]", c.Rank(), got)
		}
	})
}

func TestTracerRecordsSpans(t *testing.T) {
	rec := trace.New()
	Run(4, cluster.DefaultConfig(), 1, func(r *Rank) {
		r.SetTracer(rec)
		c := WorldComm(r)
		r.SetClass(ClassSync)
		c.Barrier()
		r.ChargeIO(1e-3)
	})
	byKind := rec.ByKind()
	if byKind["io"] < 4e-3-1e-12 {
		t.Errorf("io spans = %g want >= 0.004", byKind["io"])
	}
	if byKind["sync"] <= 0 {
		t.Error("no sync spans recorded")
	}
}

func TestIncludeExclude(t *testing.T) {
	runWorld(t, 6, func(c *Comm) {
		sub := c.Include([]int{4, 1, 3}) // explicit order
		if c.Rank() == 4 || c.Rank() == 1 || c.Rank() == 3 {
			if sub == nil {
				t.Fatal("member got nil comm")
			}
			want := map[int]int{4: 0, 1: 1, 3: 2}
			if sub.Rank() != want[c.Rank()] {
				t.Errorf("world %d -> include rank %d want %d", c.Rank(), sub.Rank(), want[c.Rank()])
			}
			if got := sub.AllreduceInt64([]int64{1}, OpSum); got[0] != 3 {
				t.Errorf("include comm size via allreduce = %d", got[0])
			}
		} else if sub != nil {
			t.Error("non-member got a comm")
		}
		rest := c.Exclude([]int{0, 5})
		if c.Rank() == 0 || c.Rank() == 5 {
			if rest != nil {
				t.Error("excluded rank got a comm")
			}
		} else if rest.Size() != 4 {
			t.Errorf("exclude comm size = %d", rest.Size())
		}
	})
}
