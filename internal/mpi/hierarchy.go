package mpi

import "repro/internal/perf"

// Two-level (hierarchical) collectives.
//
// On a fat node, every PE that crosses the NIC individually pays the full
// inter-node latency and contends for the shared link; requests that first
// aggregate within the node and cross the NIC once per node remove most of
// that traffic (Kang et al., "Improving MPI Collective I/O Performance With
// Intra-node Request Aggregation"). The abstraction here mirrors the classic
// level_0/1/2 communicator split: a node-local sub-communicator per node
// (priced on the memory path), a cross-node sub-communicator of node leaders
// (priced on the NIC), and a layout that higher layers can compute without
// communication to agree on who leads whom.

// NodeLayout describes how a communicator's members spread over physical
// nodes. It is a pure function of the topology (see SplitByNode), so every
// member computes the identical layout locally — leader election needs no
// messages.
type NodeLayout struct {
	// Groups lists each node's member comm ranks in ascending order; nodes
	// are ordered by their smallest comm rank, so both Groups and Leaders
	// ascend.
	Groups [][]int
	// Leaders holds each node's leader comm rank: the node-minimal member,
	// i.e. Groups[i][0].
	Leaders []int
	// NodeIdx maps a comm rank to its node's index in Groups/Leaders.
	NodeIdx []int
}

// SplitByNode computes the node layout of n comm ranks under the given
// rank-to-node function. Node indices are dense, assigned in order of each
// node's first (smallest) comm rank, which makes Leaders ascend — and makes
// a leader's rank in the leaders-only communicator equal its node index.
func SplitByNode(n int, nodeOf func(commRank int) int) NodeLayout {
	lay := NodeLayout{NodeIdx: make([]int, n)}
	idx := make(map[int]int)
	for cr := 0; cr < n; cr++ {
		node := nodeOf(cr)
		i, ok := idx[node]
		if !ok {
			i = len(lay.Groups)
			idx[node] = i
			lay.Groups = append(lay.Groups, nil)
			lay.Leaders = append(lay.Leaders, cr)
		}
		lay.Groups[i] = append(lay.Groups[i], cr)
		lay.NodeIdx[cr] = i
	}
	return lay
}

// NumNodes returns the number of distinct nodes in the layout.
func (l NodeLayout) NumNodes() int { return len(l.Groups) }

// LeaderOf returns the leader comm rank of the node hosting cr.
func (l NodeLayout) LeaderOf(cr int) int { return l.Leaders[l.NodeIdx[cr]] }

// IsLeader reports whether cr is its node's leader.
func (l NodeLayout) IsLeader(cr int) bool { return l.LeaderOf(cr) == cr }

// LayoutOf computes the node layout of a communicator's members from the
// cluster topology — locally, with no communication.
func LayoutOf(c *Comm) NodeLayout {
	cl := c.r.W.Cluster
	return SplitByNode(c.Size(), func(cr int) int { return cl.NodeOf(c.WorldRankOf(cr)) })
}

// Hierarchy is a communicator split into node-local and cross-node levels.
type Hierarchy struct {
	Comm   *Comm
	Layout NodeLayout
	// Intra spans the ranks sharing the caller's node, ordered by comm rank
	// (the leader is intra rank 0). Its rendezvous collectives are priced on
	// the memory path, not the NIC.
	Intra *Comm
	// Inter spans the node leaders, ordered by comm rank — leader of node i
	// is inter rank i (see SplitByNode). Nil on non-leaders.
	Inter *Comm
}

// NewHierarchy builds the two-level split of c: one Split keyed by node for
// the intra-node communicators, one leaders-only Split for the cross-node
// level. It is collective over c (all members must call it together); the
// construction cost is the two Splits' allgathers, paid once per handle.
func NewHierarchy(c *Comm) *Hierarchy {
	lay := LayoutOf(c)
	me := c.Rank()
	intra := c.Split(lay.NodeIdx[me], me)
	intra.local = true
	var inter *Comm
	if lay.IsLeader(me) {
		inter = c.Split(0, me)
	} else {
		c.Split(UndefinedColor, 0)
	}
	return &Hierarchy{Comm: c, Layout: lay, Intra: intra, Inter: inter}
}

// IsLeader reports whether the calling rank leads its node.
func (h *Hierarchy) IsLeader() bool { return h.Layout.IsLeader(h.Comm.Rank()) }

// Leader returns the calling rank's node leader (a comm rank of h.Comm).
func (h *Hierarchy) Leader() int { return h.Layout.LeaderOf(h.Comm.Rank()) }

// NumNodes returns the number of nodes under the communicator.
func (h *Hierarchy) NumNodes() int { return h.Layout.NumNodes() }

// AllgatherInt64s is the two-level allgather of one fixed-width vector per
// member (every member must pass the same length), returned indexed by comm
// rank. Members gather to their leader over memory, leaders allgather the
// node blocks over the NIC, and the full table fans back out node-locally —
// so only one process per node crosses the interconnect.
func (h *Hierarchy) AllgatherInt64s(vals []int64) [][]int64 {
	width := len(vals)
	blobs := h.Intra.Gather(0, encInt64sBuf(vals))
	var full []byte
	if h.IsLeader() {
		node := perf.GetBuf(8 * width * len(blobs))[:0]
		for _, b := range blobs {
			node = append(node, b...)
			perf.PutBuf(b)
		}
		nodeBlobs := h.Inter.Allgather(node)
		total := 0
		for _, b := range nodeBlobs {
			total += len(b)
		}
		// The broadcast buffer is shared by every member of the node (Bcast
		// relays it without copying), so it must not come from the arena.
		full = make([]byte, 0, total)
		for _, b := range nodeBlobs {
			full = append(full, b...)
		}
	}
	full = h.Intra.Bcast(0, full)
	out := make([][]int64, h.Comm.Size())
	flat := make([]int64, width*h.Comm.Size())
	decInt64sInto(flat, full)
	pos := 0
	for _, group := range h.Layout.Groups {
		for _, cr := range group {
			out[cr] = flat[pos : pos+width : pos+width]
			pos += width
		}
	}
	return out
}

// AllreduceInt64 is the two-level allreduce: reduce to the node leader over
// memory, allreduce across leaders over the NIC, broadcast back node-locally.
func (h *Hierarchy) AllreduceInt64(vals []int64, op Op) []int64 {
	red := h.Intra.ReduceInt64(0, vals, op)
	var enc []byte
	if h.IsLeader() {
		res := h.Inter.AllreduceInt64(red, op)
		enc = encInt64s(res)
	}
	enc = h.Intra.Bcast(0, enc)
	return decInt64s(enc)
}

// ExchangeLeaderInt64s shares one fixed-width vector per node with every
// rank: leaders pass their node's vector (all the same length), non-leaders
// pass nil, and everyone returns the table indexed by node. This is the
// two-level replacement for a full-communicator alltoall of control state —
// only leaders synchronize across nodes; members learn the result from their
// leader over memory.
func (h *Hierarchy) ExchangeLeaderInt64s(vals []int64) [][]int64 {
	var flat []byte
	if h.IsLeader() {
		per := h.Inter.AllgatherInt64s(vals)
		flat = make([]byte, 0, 8*len(vals)*len(per))
		for _, v := range per {
			flat = append(flat, encInt64s(v)...)
		}
	}
	flat = h.Intra.Bcast(0, flat)
	nn := h.NumNodes()
	width := len(flat) / 8 / nn
	all := make([]int64, len(flat)/8)
	decInt64sInto(all, flat)
	out := make([][]int64, nn)
	for i := range out {
		out[i] = all[i*width : (i+1)*width : (i+1)*width]
	}
	return out
}
