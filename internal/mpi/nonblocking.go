package mpi

import "repro/internal/sim"

// Nonblocking point-to-point operations. Sends in this runtime are always
// eager (the sender never blocks on delivery), so Isend completes
// immediately; Irecv registers interest and Wait performs the matching
// blocking receive. The request objects exist so code ported from MPI —
// ROMIO's exchange loops post irecvs up front and waitall at the end —
// reads naturally and so the posting order is preserved.

// Request is a handle to an outstanding nonblocking operation.
type Request struct {
	c        *Comm
	isRecv   bool
	src, tag int
	done     bool
	data     []byte
	status   Status
}

// Isend starts a nonblocking send. It completes immediately under the
// eager-send model; Wait on the returned request is a no-op that exists
// for MPI-shaped code.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	c.Send(dst, tag, data)
	return &Request{c: c, done: true}
}

// Irecv posts a nonblocking receive for a message from comm rank src (or
// AnySource) with the given tag. The receive happens at Wait time.
func (c *Comm) Irecv(src, tag int) *Request {
	return &Request{c: c, isRecv: true, src: src, tag: tag}
}

// Wait blocks until the operation completes and returns the received data
// (nil for sends) and its status.
func (r *Request) Wait() ([]byte, Status) {
	if r.done {
		return r.data, r.status
	}
	r.data, r.status = r.c.Recv(r.src, r.tag)
	r.done = true
	return r.data, r.status
}

// Test reports whether the operation could complete without blocking,
// completing it if so.
func (r *Request) Test() ([]byte, Status, bool) {
	if r.done {
		return r.data, r.status, true
	}
	simSrc := sim.AnySource
	if r.src != AnySource {
		simSrc = r.c.members[r.src]
	}
	m, ok := r.c.r.P.TryRecv(simSrc, r.c.encTag(r.tag))
	if !ok {
		return nil, Status{}, false
	}
	r.c.r.P.Advance(r.c.r.W.Cluster.RecvCost())
	var data []byte
	if m.Payload != nil {
		data = m.Payload.([]byte)
	}
	r.data = data
	r.status = Status{Source: r.c.worldToComm[m.Src], Tag: r.tag}
	r.done = true
	return r.data, r.status, true
}

// Waitall completes every request, returning the received payloads in
// request order (nil entries for sends).
func Waitall(reqs []*Request) [][]byte {
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		out[i], _ = r.Wait()
	}
	return out
}
