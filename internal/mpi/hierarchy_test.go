package mpi

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
)

// layoutInvariants checks the structural contract of a NodeLayout against
// the nodeOf function that produced it: leader sets partition the ranks
// exactly (every rank has one leader, leaders are node-minimal), groups are
// sorted and disjoint, and intra groups + the leader set compose back to
// the full rank range.
func layoutInvariants(n int, nodeOf func(int) int, lay NodeLayout) error {
	if len(lay.NodeIdx) != n {
		return fmt.Errorf("NodeIdx has %d entries for %d ranks", len(lay.NodeIdx), n)
	}
	if len(lay.Groups) != len(lay.Leaders) {
		return fmt.Errorf("%d groups vs %d leaders", len(lay.Groups), len(lay.Leaders))
	}
	seen := make([]bool, n)
	for i, g := range lay.Groups {
		if len(g) == 0 {
			return fmt.Errorf("group %d empty", i)
		}
		if lay.Leaders[i] != g[0] {
			return fmt.Errorf("group %d leader %d is not its minimal member %d", i, lay.Leaders[i], g[0])
		}
		for j, cr := range g {
			if cr < 0 || cr >= n {
				return fmt.Errorf("group %d member %d out of range", i, cr)
			}
			if seen[cr] {
				return fmt.Errorf("rank %d appears in two groups", cr)
			}
			seen[cr] = true
			if j > 0 && g[j-1] >= cr {
				return fmt.Errorf("group %d not strictly ascending at %d", i, j)
			}
			if lay.NodeIdx[cr] != i {
				return fmt.Errorf("rank %d NodeIdx %d, lives in group %d", cr, lay.NodeIdx[cr], i)
			}
			if nodeOf(cr) != nodeOf(g[0]) {
				return fmt.Errorf("rank %d grouped with leader on a different node", cr)
			}
			if lay.LeaderOf(cr) != g[0] {
				return fmt.Errorf("LeaderOf(%d) = %d want %d", cr, lay.LeaderOf(cr), g[0])
			}
			if lay.IsLeader(cr) != (cr == g[0]) {
				return fmt.Errorf("IsLeader(%d) wrong", cr)
			}
		}
	}
	for cr := 0; cr < n; cr++ {
		if !seen[cr] {
			return fmt.Errorf("rank %d in no group", cr)
		}
		// Same node <=> same group: nodes must not be split across groups.
		for other := 0; other < n; other++ {
			if (nodeOf(cr) == nodeOf(other)) != (lay.NodeIdx[cr] == lay.NodeIdx[other]) {
				return fmt.Errorf("ranks %d,%d: same-node %v but same-group %v",
					cr, other, nodeOf(cr) == nodeOf(other), lay.NodeIdx[cr] == lay.NodeIdx[other])
			}
		}
	}
	// Leaders ascend (first-seen order = order of minimal members).
	for i := 1; i < len(lay.Leaders); i++ {
		if lay.Leaders[i-1] >= lay.Leaders[i] {
			return fmt.Errorf("leaders not ascending: %v", lay.Leaders)
		}
	}
	return nil
}

// TestSplitByNodeProperty drives the layout invariants through quick.Check
// over random rank counts, PEs-per-node, and both mappings — including
// uneven last nodes (n not a multiple of pes) and cyclic deals.
func TestSplitByNodeProperty(t *testing.T) {
	prop := func(nSeed, pesSeed uint8, cyclic bool) bool {
		n := int(nSeed)%97 + 1
		pes := int(pesSeed)%16 + 1
		numNodes := (n + pes - 1) / pes
		nodeOf := func(cr int) int { return cr / pes }
		if cyclic {
			nodeOf = func(cr int) int { return cr % numNodes }
		}
		lay := SplitByNode(n, nodeOf)
		if err := layoutInvariants(n, nodeOf, lay); err != nil {
			t.Logf("n=%d pes=%d cyclic=%v: %v", n, pes, cyclic, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSplitByNodeArbitraryMaps checks the layout against adversarial
// rank-to-node functions that no real mapping produces (interleaved,
// repeated, out-of-order node ids) — SplitByNode must only rely on equality
// of node ids, never on their ordering or density.
func TestSplitByNodeArbitraryMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64) + 1
		ids := make([]int, n)
		for i := range ids {
			ids[i] = rng.Intn(n) * 17 // sparse, unordered node ids
		}
		nodeOf := func(cr int) int { return ids[cr] }
		lay := SplitByNode(n, nodeOf)
		if err := layoutInvariants(n, nodeOf, lay); err != nil {
			t.Fatalf("trial %d ids=%v: %v", trial, ids, err)
		}
	}
}

// FuzzNodeSplit is the native fuzz form of the layout invariants: the node
// map arrives as raw bytes, one node id per rank.
func FuzzNodeSplit(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2})
	f.Add([]byte{0, 1, 0, 1, 0, 1})
	f.Add([]byte{5})
	f.Add([]byte{3, 3, 3, 3, 3, 3, 3, 1})
	f.Fuzz(func(t *testing.T, ids []byte) {
		if len(ids) == 0 || len(ids) > 256 {
			return
		}
		nodeOf := func(cr int) int { return int(ids[cr]) }
		lay := SplitByNode(len(ids), nodeOf)
		if err := layoutInvariants(len(ids), nodeOf, lay); err != nil {
			t.Fatal(err)
		}
	})
}

// fatConfig is the default cluster with a fat-node PE count.
func fatConfig(pes int, m cluster.Mapping) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.PEsPerNode = pes
	cfg.Mapping = m
	return cfg
}

// TestHierarchyComposition builds the two-level split under real runs and
// checks that the intra and inter communicators compose to the world: intra
// groups match the layout, the inter comm holds exactly the leaders in node
// order, and non-leaders get no inter comm.
func TestHierarchyComposition(t *testing.T) {
	for _, tc := range []struct {
		n, pes int
		m      cluster.Mapping
	}{
		{16, 2, cluster.Block}, {16, 8, cluster.Block}, {17, 4, cluster.Block},
		{16, 4, cluster.Cyclic}, {13, 4, cluster.Cyclic}, {5, 8, cluster.Block},
		{6, 1, cluster.Block},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n%d pes%d %v", tc.n, tc.pes, tc.m), func(t *testing.T) {
			Run(tc.n, fatConfig(tc.pes, tc.m), 1, func(r *Rank) {
				c := WorldComm(r)
				h := NewHierarchy(c)
				lay := h.Layout
				if err := layoutInvariants(tc.n, func(cr int) int {
					return r.W.Cluster.NodeOf(cr)
				}, lay); err != nil {
					t.Error(err)
				}
				me := c.Rank()
				group := lay.Groups[lay.NodeIdx[me]]
				if h.Intra.Size() != len(group) {
					t.Errorf("rank %d intra size %d want %d", me, h.Intra.Size(), len(group))
				}
				for i, cr := range group {
					if h.Intra.WorldRankOf(i) != c.WorldRankOf(cr) {
						t.Errorf("rank %d intra member %d = world %d want %d",
							me, i, h.Intra.WorldRankOf(i), c.WorldRankOf(cr))
					}
				}
				if h.IsLeader() != (me == group[0]) {
					t.Errorf("rank %d IsLeader %v", me, h.IsLeader())
				}
				if h.Leader() != group[0] {
					t.Errorf("rank %d Leader %d want %d", me, h.Leader(), group[0])
				}
				if h.IsLeader() {
					if h.Inter == nil {
						t.Fatalf("leader %d has no inter comm", me)
					}
					if h.Inter.Size() != lay.NumNodes() {
						t.Errorf("inter size %d want %d", h.Inter.Size(), lay.NumNodes())
					}
					// Leader of node i must sit at inter rank i.
					if h.Inter.Rank() != lay.NodeIdx[me] {
						t.Errorf("leader %d inter rank %d want node idx %d",
							me, h.Inter.Rank(), lay.NodeIdx[me])
					}
					for i, l := range lay.Leaders {
						if h.Inter.WorldRankOf(i) != c.WorldRankOf(l) {
							t.Errorf("inter member %d = world %d want leader %d",
								i, h.Inter.WorldRankOf(i), c.WorldRankOf(l))
						}
					}
				} else if h.Inter != nil {
					t.Errorf("non-leader %d got an inter comm", me)
				}
			})
		})
	}
}

// TestHierarchyCollectivesMatchFlat cross-validates the two-level
// collectives against the flat ones: same values, every rank, uneven nodes
// and cyclic maps included.
func TestHierarchyCollectivesMatchFlat(t *testing.T) {
	for _, tc := range []struct {
		n, pes int
		m      cluster.Mapping
	}{
		{16, 8, cluster.Block}, {13, 4, cluster.Block}, {12, 4, cluster.Cyclic}, {9, 16, cluster.Block},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n%d pes%d %v", tc.n, tc.pes, tc.m), func(t *testing.T) {
			Run(tc.n, fatConfig(tc.pes, tc.m), 1, func(r *Rank) {
				c := WorldComm(r)
				h := NewHierarchy(c)
				me := c.Rank()
				vals := []int64{int64(me * 3), int64(100 - me)}

				flatAG := c.AllgatherInt64s(vals)
				hierAG := h.AllgatherInt64s(vals)
				for cr := range flatAG {
					for j := range flatAG[cr] {
						if hierAG[cr][j] != flatAG[cr][j] {
							t.Fatalf("rank %d allgather[%d][%d]: hier %d flat %d",
								me, cr, j, hierAG[cr][j], flatAG[cr][j])
						}
					}
				}

				for _, op := range []Op{OpSum, OpMax, OpMin} {
					flatAR := c.AllreduceInt64(vals, op)
					hierAR := h.AllreduceInt64(vals, op)
					for j := range flatAR {
						if hierAR[j] != flatAR[j] {
							t.Fatalf("rank %d allreduce op%d[%d]: hier %d flat %d",
								me, op, j, hierAR[j], flatAR[j])
						}
					}
				}

				// Leader vectors: node index and leader rank, visible to all.
				var lv []int64
				if h.IsLeader() {
					lv = []int64{int64(h.Layout.NodeIdx[me]), int64(me)}
				}
				table := h.ExchangeLeaderInt64s(lv)
				if len(table) != h.NumNodes() {
					t.Fatalf("rank %d leader table has %d nodes want %d", me, len(table), h.NumNodes())
				}
				for i, row := range table {
					if int(row[0]) != i || int(row[1]) != h.Layout.Leaders[i] {
						t.Fatalf("rank %d leader table[%d] = %v want [%d %d]",
							me, i, row, i, h.Layout.Leaders[i])
					}
				}
			})
		})
	}
}

// TestHierarchyRunTwiceIdentical pins determinism of the two-level path:
// identical seeds produce identical virtual end times.
func TestHierarchyRunTwiceIdentical(t *testing.T) {
	run := func() float64 {
		return Run(24, fatConfig(8, cluster.Block), 42, func(r *Rank) {
			c := WorldComm(r)
			h := NewHierarchy(c)
			r.Compute(r.P.Rand().Float64() * 1e-4)
			for i := 0; i < 3; i++ {
				h.AllgatherInt64s([]int64{int64(c.Rank() + i)})
				h.AllreduceInt64([]int64{int64(i)}, OpMax)
			}
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("hierarchical runs differ: %v vs %v", a, b)
	}
}

// TestIntraCommCheaperThanInter pins the cost model: the same collective on
// a node-local communicator (memory path) must finish faster than on an
// equal-sized cross-node one (NIC path).
func TestIntraCommCheaperThanInter(t *testing.T) {
	elapsed := func(local bool) float64 {
		var d float64
		// 8 ranks on one node (intra) vs 8 ranks on 8 nodes (inter-like).
		pes := 1
		if local {
			pes = 8
		}
		Run(8, fatConfig(pes, cluster.Block), 1, func(r *Rank) {
			c := WorldComm(r)
			h := NewHierarchy(c)
			var cc *Comm
			if local {
				cc = h.Intra // all 8 share the node; marked local
			} else {
				cc = h.Inter // every rank leads its own node
			}
			t0 := r.Now()
			for i := 0; i < 20; i++ {
				cc.AllreduceInt64([]int64{int64(i)}, OpSum)
			}
			if c.Rank() == 0 {
				d = r.Now() - t0
			}
		})
		return d
	}
	intra, inter := elapsed(true), elapsed(false)
	if intra >= inter {
		t.Fatalf("node-local collective not cheaper: intra %g vs inter %g", intra, inter)
	}
}
