package mpi

import (
	"encoding/binary"
	"math"

	"repro/internal/perf"
)

// Wire encoding helpers. Collectives move typed values as little-endian
// byte payloads so that transfer costs reflect honest wire sizes.
//
// The decode helpers come in two flavours: the alloc-per-call dec* form for
// payloads that become caller-visible values, and in-place combine/decode
// forms (combineInt64Bytes etc.) that read the wire bytes directly so the
// reduction hot paths — called once per rank per collective — allocate
// nothing per contribution.

func encInt64s(vals []int64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}

// encInt64sBuf is encInt64s into an arena buffer; the consumer releases it
// with perf.PutBuf once decoded (reduction chains do).
func encInt64sBuf(vals []int64) []byte {
	b := perf.GetBuf(8 * len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}

func decInt64s(b []byte) []int64 {
	vals := make([]int64, len(b)/8)
	decInt64sInto(vals, b)
	return vals
}

// decInt64sInto decodes min(len(dst), len(b)/8) values into dst.
func decInt64sInto(dst []int64, b []byte) {
	n := len(b) / 8
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// combineInt64Bytes folds the encoded vector b elementwise into acc without
// materializing a decoded slice. Arithmetic order matches decode-then-
// combine exactly, so results are bit-identical to the allocating path.
func combineInt64Bytes(acc []int64, b []byte, op Op) {
	for i := range acc {
		v := int64(binary.LittleEndian.Uint64(b[8*i:]))
		switch op {
		case OpSum:
			acc[i] += v
		case OpMax:
			if v > acc[i] {
				acc[i] = v
			}
		case OpMin:
			if v < acc[i] {
				acc[i] = v
			}
		}
	}
}

// combineFloat64Bytes is combineInt64Bytes for float64 vectors.
func combineFloat64Bytes(acc []float64, b []byte, op Op) {
	for i := range acc {
		v := math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		switch op {
		case OpSum:
			acc[i] += v
		case OpMax:
			if v > acc[i] {
				acc[i] = v
			}
		case OpMin:
			if v < acc[i] {
				acc[i] = v
			}
		}
	}
}

func encFloat64s(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func decFloat64s(b []byte) []float64 {
	vals := make([]float64, len(b)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return vals
}

// routedBlock is a data block in flight through the Bruck alltoall router.
type routedBlock struct {
	src, dst int
	data     []byte
}

func encRouted(blocks []routedBlock) []byte {
	n := 4
	for _, b := range blocks {
		n += 12 + len(b.data)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blocks)))
	for _, b := range blocks {
		out = binary.LittleEndian.AppendUint32(out, uint32(b.src))
		out = binary.LittleEndian.AppendUint32(out, uint32(b.dst))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(b.data)))
		out = append(out, b.data...)
	}
	return out
}

func decRouted(b []byte) []routedBlock {
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	blocks := make([]routedBlock, n)
	for i := range blocks {
		src := int(binary.LittleEndian.Uint32(b))
		dst := int(binary.LittleEndian.Uint32(b[4:]))
		ln := int(binary.LittleEndian.Uint32(b[8:]))
		b = b[12:]
		blocks[i] = routedBlock{src: src, dst: dst, data: b[:ln:ln]}
		b = b[ln:]
	}
	return blocks
}

// pieces are (origin rank, data) pairs moved by the Bruck allgather.
type piece struct {
	rank int
	data []byte
}

func encPieces(ps []piece) []byte {
	n := 4
	for _, p := range ps {
		n += 8 + len(p.data)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ps)))
	for _, p := range ps {
		out = binary.LittleEndian.AppendUint32(out, uint32(p.rank))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.data)))
		out = append(out, p.data...)
	}
	return out
}

func decPieces(b []byte) []piece {
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	ps := make([]piece, n)
	for i := range ps {
		rank := int(binary.LittleEndian.Uint32(b))
		ln := int(binary.LittleEndian.Uint32(b[4:]))
		b = b[8:]
		ps[i] = piece{rank: rank, data: b[:ln:ln]}
		b = b[ln:]
	}
	return ps
}
