package mpi

import "repro/internal/sim"

// envelopeBytes models the per-message header cost on the wire.
const envelopeBytes = 32

// Status describes a received message.
type Status struct {
	Source int // comm rank of the sender
	Tag    int
}

// Send transmits data to comm rank dst with the given tag. Sends are eager:
// the sender is charged its CPU overhead and NIC time is booked, but the
// call does not wait for delivery. The payload is copied.
func (c *Comm) Send(dst, tag int, data []byte) {
	t0 := c.r.begin()
	defer c.r.end(t0)
	c.send(dst, tag, data)
}

// SendWeighted is Send, but the transfer cost is computed as if the payload
// were virtBytes long. Cost-scaled experiments use it so that small real
// buffers stand in for paper-sized data while control messages keep their
// true sizes.
func (c *Comm) SendWeighted(dst, tag int, data []byte, virtBytes int) {
	t0 := c.r.begin()
	defer c.r.end(t0)
	c.sendN(dst, tag, data, virtBytes)
}

// send is the unmeasured internal form used by collectives.
func (c *Comm) send(dst, tag int, data []byte) {
	c.sendN(dst, tag, data, len(data))
}

func (c *Comm) sendN(dst, tag int, data []byte, costBytes int) {
	c.sendOwned(dst, tag, append([]byte(nil), data...), costBytes)
}

// sendOwned transfers a payload the caller promises not to reuse, avoiding
// the defensive copy. Collectives building fresh payloads use it.
func (c *Comm) sendOwned(dst, tag int, payload []byte, costBytes int) {
	if dst < 0 || dst >= len(c.members) {
		panic("mpi: Send to rank outside communicator")
	}
	r := c.r
	r.P.Sync() // order NIC bookings by virtual time across ranks
	srcW, dstW := c.members[c.me], c.members[dst]
	arrival := r.W.Cluster.Transfer(r.P, srcW, dstW, costBytes+envelopeBytes)
	r.P.Send(dstW, c.encTag(tag), payload, arrival)
	r.prof.Msgs++
	r.prof.Bytes += int64(costBytes)
}

// Recv blocks until a message with the given tag arrives from comm rank src
// (or any member when src == AnySource) and returns its payload.
func (c *Comm) Recv(src, tag int) ([]byte, Status) {
	t0 := c.r.begin()
	defer c.r.end(t0)
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) ([]byte, Status) {
	r := c.r
	simSrc := sim.AnySource
	if src != AnySource {
		if src < 0 || src >= len(c.members) {
			panic("mpi: Recv from rank outside communicator")
		}
		simSrc = c.members[src]
	}
	m := r.P.Recv(simSrc, c.encTag(tag))
	r.P.Advance(r.W.Cluster.RecvCost())
	cr := c.worldToComm[m.Src]
	var data []byte
	if m.Payload != nil {
		data = m.Payload.([]byte)
	}
	return data, Status{Source: cr, Tag: tag}
}

// Sendrecv sends sdata to dst and receives a message from src, both with
// the same tag, without deadlocking (the send is eager).
func (c *Comm) Sendrecv(dst int, sdata []byte, src, tag int) ([]byte, Status) {
	t0 := c.r.begin()
	defer c.r.end(t0)
	c.send(dst, tag, sdata)
	return c.recv(src, tag)
}
