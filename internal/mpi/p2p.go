package mpi

import "repro/internal/sim"

// envelopeBytes models the per-message header cost on the wire.
const envelopeBytes = 32

// Status describes a received message.
type Status struct {
	Source int // comm rank of the sender
	Tag    int
}

// Send transmits data to comm rank dst with the given tag. Sends are eager:
// the sender is charged its CPU overhead and NIC time is booked, but the
// call does not wait for delivery.
//
// Ownership transfer: the payload is handed to the runtime without copying.
// The caller must not modify data after Send returns; the matching Recv
// hands the same buffer to the receiver, which then owns it. Callers that
// need to keep writing to a buffer must send a copy themselves — every
// in-tree sender builds a fresh payload, which is why the runtime no longer
// pays a defensive copy per message.
func (c *Comm) Send(dst, tag int, data []byte) {
	t0 := c.r.begin()
	defer c.r.end(t0)
	c.send(dst, tag, data)
}

// SendWeighted is Send, but the transfer cost is computed as if the payload
// were virtBytes long. Cost-scaled experiments use it so that small real
// buffers stand in for paper-sized data while control messages keep their
// true sizes.
func (c *Comm) SendWeighted(dst, tag int, data []byte, virtBytes int) {
	t0 := c.r.begin()
	defer c.r.end(t0)
	c.sendN(dst, tag, data, virtBytes)
}

// send is the unmeasured internal form used by collectives.
func (c *Comm) send(dst, tag int, data []byte) {
	c.sendN(dst, tag, data, len(data))
}

func (c *Comm) sendN(dst, tag int, data []byte, costBytes int) {
	c.sendOwned(dst, tag, data, costBytes)
}

// sendOwned transfers a payload the caller relinquishes (the ownership-
// transfer convention documented on Send).
func (c *Comm) sendOwned(dst, tag int, payload []byte, costBytes int) {
	if dst < 0 || dst >= len(c.members) {
		panic("mpi: Send to rank outside communicator")
	}
	r := c.r
	r.P.Sync() // order NIC bookings by virtual time across ranks
	srcW, dstW := c.members[c.me], c.members[dst]
	arrival := r.W.Cluster.Transfer(r.P, srcW, dstW, costBytes+envelopeBytes)
	r.P.Send(dstW, c.encTag(tag), payload, arrival)
	r.prof.Msgs++
	r.prof.Bytes += int64(costBytes)
	if r.p2pIntraMsgs != nil {
		r.P.Ordered() // registry is engine-shared; count in serial order
		if r.W.Cluster.SameNode(srcW, dstW) {
			r.p2pIntraMsgs.Inc()
			r.p2pIntraBytes.Add(uint64(costBytes))
		} else {
			r.p2pInterMsgs.Inc()
			r.p2pInterBytes.Add(uint64(costBytes))
		}
	}
}

// Recv blocks until a message with the given tag arrives from comm rank src
// (or any member when src == AnySource) and returns its payload.
//
// Ownership transfer: the returned slice is the sender's payload buffer,
// not a copy; the receiver owns it from here on. Receivers that fully
// consume a payload built from the arena may release it with perf.PutBuf.
func (c *Comm) Recv(src, tag int) ([]byte, Status) {
	t0 := c.r.begin()
	defer c.r.end(t0)
	return c.recv(src, tag)
}

func (c *Comm) recv(src, tag int) ([]byte, Status) {
	r := c.r
	simSrc := sim.AnySource
	if src != AnySource {
		if src < 0 || src >= len(c.members) {
			panic("mpi: Recv from rank outside communicator")
		}
		simSrc = c.members[src]
	}
	m := r.P.Recv(simSrc, c.encTag(tag))
	r.P.Advance(r.W.Cluster.RecvCost())
	cr := c.worldToComm[m.Src]
	var data []byte
	if m.Payload != nil {
		data = m.Payload.([]byte)
	}
	return data, Status{Source: cr, Tag: tag}
}

// RecvUntil blocks until a message with the given tag arrives from comm
// rank src or `timeout` virtual seconds elapse, whichever comes first. On
// timeout it returns (nil, Status{}, false) with the clock advanced to
// exactly the deadline — the failure-detection primitive the resilient
// collective path builds on. Wildcards are not supported (detection is
// always about a specific peer), and payload ownership transfers exactly as
// in Recv.
func (c *Comm) RecvUntil(src, tag int, timeout float64) ([]byte, Status, bool) {
	t0 := c.r.begin()
	defer c.r.end(t0)
	r := c.r
	if src == AnySource {
		panic("mpi: RecvUntil with AnySource")
	}
	if src < 0 || src >= len(c.members) {
		panic("mpi: RecvUntil from rank outside communicator")
	}
	m, ok := r.P.RecvUntil(c.members[src], c.encTag(tag), r.Now()+timeout)
	if !ok {
		return nil, Status{}, false
	}
	r.P.Advance(r.W.Cluster.RecvCost())
	var data []byte
	if m.Payload != nil {
		data = m.Payload.([]byte)
	}
	return data, Status{Source: src, Tag: tag}, true
}

// Sendrecv sends sdata to dst and receives a message from src, both with
// the same tag, without deadlocking (the send is eager).
func (c *Comm) Sendrecv(dst int, sdata []byte, src, tag int) ([]byte, Status) {
	t0 := c.r.begin()
	defer c.r.end(t0)
	c.send(dst, tag, sdata)
	return c.recv(src, tag)
}
