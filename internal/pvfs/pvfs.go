// Package pvfs models a PVFS-style parallel file system with native
// list-I/O, after Ching et al.'s "Noncontiguous I/O through PVFS": a client
// describes an arbitrary set of (offset, length) extents in ONE request per
// touched server, and the server moves all of them in one service — so a
// noncontiguous flush costs one request round-trip plus the summed transfer
// instead of a per-extent RPC each.
//
// The other deliberate difference from the lustre model: PVFS is lockless
// (no distributed lock manager, no extent-lock revocations), so there are
// no client-switch or revocation penalties and no heavy-tail lock stalls —
// consistency is the application's job, which collective I/O provides by
// construction. Servers still have per-request overhead, finite bandwidth,
// and jittered service times, so request-count reduction is measurable as
// time, not just as a counter.
//
// Timing of one vectored write: the extents ship through the client's
// transmit NIC back-to-back (one summed transfer), then each touched server
// serves its portion — one request overhead plus its summed bytes over
// bandwidth, jitter applied per request — and the call completes when the
// slowest server acknowledges. Reads are symmetric through the receive NIC.
package pvfs

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config describes the server farm. The defaults mirror the lustre model's
// hardware so backend comparisons isolate the protocol difference.
type Config struct {
	NumServers      int     // I/O servers (the lustre model's OSTs)
	ServerBandwidth float64 // bytes/second each server sustains
	RequestOverhead float64 // seconds of fixed cost per list-I/O request
	OpenCost        float64 // seconds of metadata time per open
	CostScale       float64 // virtual bytes per real byte (default 1)
	Jitter          float64 // relative service-time noise per request
	Seed            int64
	// Faults, when it carries ServerFails, makes requests against afflicted
	// servers fail inside the plan's windows. Each server is an independent
	// failure domain per Ching et al.: a vectored call falls back to scalar
	// semantics — every surviving server's portion is served on schedule
	// while the failed server's portion retries alone (capped exponential
	// backoff, per-server breaker), and only permanence or budget
	// exhaustion surfaces a typed *recovery.TargetError.
	Faults *fault.Plan
	// Retry overrides the retry engine's backoff schedule; zero fields take
	// recovery's defaults. Only consulted when Faults injects server errors.
	Retry recovery.Backoff
}

// DefaultConfig mirrors lustre.DefaultConfig's hardware: 72 servers at
// ~140 MB/s with sub-millisecond request overhead.
func DefaultConfig() Config {
	return Config{
		NumServers:      72,
		ServerBandwidth: 1.4e8,
		RequestOverhead: 8e-4,
		OpenCost:        5e-5,
		CostScale:       1,
		Jitter:          0.1,
		Seed:            1,
	}
}

// FS is one PVFS instance. Create one per run and share it across ranks;
// the engine serializes access (every operation begins with a sync).
type FS struct {
	cfg       Config
	servers   []*sim.Resource
	mds       *sim.Resource
	files     map[string]*fileObj
	rng       *rand.Rand
	stats     []storage.TargetStat
	sinceTrim int

	inj      bool // fault plan injects server errors; zero plans stay inert
	retry    recovery.Backoff
	brk      *recovery.BreakerSet // per-server breakers
	rstats   recovery.RetryStats
	rstatsBy map[int]*recovery.RetryStats // per JobID; lazily populated
	ledger   *storage.Ledger

	// Server-side admission policy (nil = unshaped fast path); every
	// list-I/O request's start passes through qos.Admit keyed by the
	// issuing rank's JobID — DESIGN.md §16.
	qos qos.Policy

	obsReqs *obs.Counter // storage.listio.requests (nil unless SetObs)
}

// NewFS builds a file system.
func NewFS(cfg Config) *FS {
	if cfg.NumServers <= 0 {
		panic("pvfs: need at least one server")
	}
	if cfg.CostScale == 0 {
		cfg.CostScale = 1
	}
	fs := &FS{
		cfg:     cfg,
		servers: make([]*sim.Resource, cfg.NumServers),
		mds:     sim.NewResource("pvfs-mds"),
		files:   make(map[string]*fileObj),
		rng:     rand.New(rand.NewSource(cfg.Seed*7919 + 13)),
		stats:   make([]storage.TargetStat, cfg.NumServers),
	}
	for i := range fs.servers {
		fs.servers[i] = sim.NewResource(fmt.Sprintf("pvfs%d", i))
	}
	if cfg.Faults.HasServerFails() {
		fs.inj = true
		fs.retry = cfg.Retry.Defaults()
		fs.brk = recovery.NewBreakerSet()
	}
	return fs
}

// Requests returns the total list-I/O requests served (one per touched
// server per vectored call) — the counter the request-reduction acceptance
// test pins against the lustre backend's per-extent RPC count.
func (fs *FS) Requests() int64 {
	var n int64
	for i := range fs.stats {
		n += fs.stats[i].Requests
	}
	return n
}

// SetObs attaches a metrics registry (nil detaches): every list-I/O request
// bumps storage.listio.requests. Observe-only.
func (fs *FS) SetObs(reg *obs.Registry) {
	if reg == nil {
		fs.obsReqs = nil
		return
	}
	fs.obsReqs = reg.Counter("storage.listio.requests")
}

// Stats returns a copy of the per-server service counters.
func (fs *FS) Stats() []storage.TargetStat {
	return append([]storage.TargetStat(nil), fs.stats...)
}

// Params reports native list-I/O, so the collective flush path issues
// vectored calls instead of per-extent loops.
func (fs *FS) Params() storage.Params {
	return storage.Params{
		CostScale: fs.cfg.CostScale,
		Targets:   fs.cfg.NumServers,
		ListIO:    true,
		Injecting: fs.inj,
	}
}

// Name identifies the backend kind ("listio" is the CLI spelling: the
// protocol difference, not the brand, is what the sweeps vary).
func (fs *FS) Name() string { return "listio" }

// Drain is a no-op: the servers buffer nothing.
func (fs *FS) Drain(r *mpi.Rank) {}

// TryDrain never fails: the servers buffer nothing, so nothing can be lost.
func (fs *FS) TryDrain(r *mpi.Rank) error { return nil }

// RetryStats returns the retry-engine counters (all zero without a plan).
func (fs *FS) RetryStats() recovery.RetryStats { return fs.rstats }

// RetryStatsByJob returns the retry counters keyed by the issuing rank's
// JobID — empty on healthy runs, one job-0 bucket for single-job tools.
func (fs *FS) RetryStatsByJob() map[int]recovery.RetryStats {
	out := make(map[int]recovery.RetryStats, len(fs.rstatsBy))
	for id, jr := range fs.rstatsBy {
		out[id] = *jr
	}
	return out
}

// jobRetry returns job's retry-counter bucket, creating it on first touch.
func (fs *FS) jobRetry(job int) *recovery.RetryStats {
	jr := fs.rstatsBy[job]
	if jr == nil {
		if fs.rstatsBy == nil {
			fs.rstatsBy = make(map[int]*recovery.RetryStats)
		}
		jr = &recovery.RetryStats{}
		fs.rstatsBy[job] = jr
	}
	return jr
}

// SetQoS installs a server-side admission policy (nil detaches).
func (fs *FS) SetQoS(p qos.Policy) { fs.qos = p }

// SetLedger attaches an integrity ledger (nil detaches): every stored extent
// records a seeded digest at issue time. Free and draw-free.
func (fs *FS) SetLedger(l *storage.Ledger) { fs.ledger = l }

// Config returns the file system's parameters.
func (fs *FS) Config() Config { return fs.cfg }

// noise returns the multiplicative service-time factor for one request.
func (fs *FS) noise() float64 {
	if fs.cfg.Jitter == 0 {
		return 1
	}
	return 1 + fs.cfg.Jitter*(2*fs.rng.Float64()-1)
}

const trimEvery = 512

func (fs *FS) maybeTrim(r *mpi.Rank) {
	fs.sinceTrim++
	if fs.sinceTrim < trimEvery {
		return
	}
	fs.sinceTrim = 0
	w := r.P.MinClock()
	for _, s := range fs.servers {
		s.Trim(w)
	}
	fs.mds.Trim(w)
}

type fileObj struct {
	name   string
	stripe storage.Stripe
	data   *storage.ByteStore
}

// File is an open handle. Handles are cheap; every rank opens its own.
type File struct {
	fs  *FS
	obj *fileObj
}

var (
	_ storage.Backend = (*FS)(nil)
	_ storage.File    = (*File)(nil)
)

// Open opens (creating if necessary) the named file; the stripe layout
// applies only on create. Open costs metadata time, which serializes when
// many ranks open at once.
func (fs *FS) Open(r *mpi.Rank, name string, stripe storage.Stripe) storage.File {
	if stripe.Count <= 0 || stripe.Size <= 0 {
		panic("pvfs: invalid stripe layout")
	}
	if stripe.Count > fs.cfg.NumServers {
		stripe.Count = fs.cfg.NumServers
	}
	r.P.Sync()
	_, end := fs.mds.Acquire(r.Now(), fs.cfg.OpenCost)
	r.ChargeIO(end - r.Now())
	obj, ok := fs.files[name]
	if !ok {
		obj = &fileObj{name: name, stripe: stripe, data: storage.NewByteStore()}
		fs.files[name] = obj
	}
	return &File{fs: fs, obj: obj}
}

// Remove deletes a file's data; PVFS holds no per-file lock ledger.
func (fs *FS) Remove(name string) { delete(fs.files, name) }

// Stripe returns the file's stripe layout.
func (f *File) Stripe() storage.Stripe { return f.obj.stripe }

// Size returns the file length (highest byte written so far).
func (f *File) Size() int64 { return f.obj.data.Size() }

// Contents returns the file's bytes in [0, Size) at no time cost.
func (f *File) Contents() []byte { return f.obj.data.Load(0, f.obj.data.Size()) }

// Peek returns the file's bytes in [off, off+n) at no time cost.
func (f *File) Peek(off, n int64) []byte { return f.obj.data.Load(off, n) }

// serverFor returns the server id serving stripe unit index u.
func (f *File) serverFor(u int64) int {
	s := f.obj.stripe
	return int((int64(s.Offset) + u%int64(s.Count)) % int64(len(f.fs.servers)))
}

// perServerBytes accumulates each extent's virtual bytes onto its servers,
// splitting at stripe-unit boundaries. The result maps server id to summed
// virtual bytes; iteration for timing walks server ids in ascending order so
// the jitter draws are deterministic.
func (f *File) perServerBytes(exts []storage.Extent) map[int]float64 {
	ss := f.obj.stripe.Size
	scale := f.fs.cfg.CostScale
	per := make(map[int]float64)
	for _, e := range exts {
		off, n := e.Off, e.Len
		for n > 0 {
			unit := off / ss
			l := (unit+1)*ss - off
			if l > n {
				l = n
			}
			per[f.serverFor(unit)] += float64(l) * scale
			off += l
			n -= l
		}
	}
	return per
}

// serveList books one list-I/O request on every touched server, all
// starting at virtual time `at`, and returns the slowest completion. One
// request (one overhead, one jitter draw) per server regardless of how many
// extents land on it — the list-I/O economics.
func (f *File) serveList(at float64, per map[int]float64, job int) float64 {
	fs := f.fs
	done := at
	for s := 0; s < len(fs.servers); s++ {
		virt, ok := per[s]
		if !ok {
			continue
		}
		st := &fs.stats[s]
		st.Requests++
		st.Bytes += int64(virt)
		svc := (fs.cfg.RequestOverhead + virt/fs.cfg.ServerBandwidth) * fs.noise()
		st.BusySecs += svc
		sat := at
		if fs.qos != nil {
			sat = fs.qos.Admit(s, job, at, svc)
		}
		_, end := fs.servers[s].Acquire(sat, svc)
		if end > done {
			done = end
		}
		if fs.obsReqs != nil {
			fs.obsReqs.Inc()
		}
	}
	return done
}

// serveListTry is serveList with fault injection: every touched server is
// still visited in ascending order, but each portion runs through serveOne's
// retry loop independently. That is the vectored call's scalar fallback —
// surviving servers serve on schedule while the failed server's portion
// retries alone; the completion time covers every portion (retries included)
// and the first typed error is returned. Without an armed plan it defers to
// serveList, draw-for-draw identical to the healthy model.
func (f *File) serveListTry(at float64, per map[int]float64, job int) (float64, error) {
	fs := f.fs
	if !fs.inj {
		return f.serveList(at, per, job), nil
	}
	done := at
	var firstErr error
	for s := 0; s < len(fs.servers); s++ {
		virt, ok := per[s]
		if !ok {
			continue
		}
		end, err := fs.serveOne(s, at, virt, job)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if end > done {
			done = end
		}
	}
	return done, firstErr
}

// serveOne books one server's portion of a vectored call under an armed
// fault plan: each attempt honors the server's breaker hold-off, consults
// the plan, and on failure pays the request overhead, feeds the breaker, and
// — unless the failure is permanent or the attempt budget is spent — backs
// off per the capped exponential schedule and goes again. Exhaustion and
// permanence surface as a typed *recovery.TargetError with the clock already
// advanced past every failed attempt.
func (fs *FS) serveOne(s int, at, virt float64, job int) (float64, error) {
	attempts := 0
	brk := fs.brk.Get(s)
	jr := fs.jobRetry(job)
	for {
		if h := brk.HoldOff(at); h > 0 {
			at += h
			fs.rstats.BackoffSecs += h
			jr.BackoffSecs += h
		}
		attempts++
		fs.rstats.Attempts++
		jr.Attempts++
		if attempts > 1 {
			fs.rstats.Retries++
			jr.Retries++
		}
		failed, perm := fs.cfg.Faults.ServerErrorAt(s, at, fs.rng)
		if !failed {
			st := &fs.stats[s]
			st.Requests++
			st.Bytes += int64(virt)
			svc := (fs.cfg.RequestOverhead + virt/fs.cfg.ServerBandwidth) * fs.noise()
			st.BusySecs += svc
			if fs.qos != nil {
				at = fs.qos.Admit(s, job, at, svc)
			}
			_, end := fs.servers[s].Acquire(at, svc)
			brk.Success()
			if fs.obsReqs != nil {
				fs.obsReqs.Inc()
			}
			return end, nil
		}
		fs.rstats.Failures++
		jr.Failures++
		fs.stats[s].Errors++
		cost := fs.cfg.RequestOverhead * fs.noise()
		fs.stats[s].BusySecs += cost
		fs.stats[s].FaultSecs += cost
		_, end := fs.servers[s].Acquire(at, cost)
		at = end
		opensBefore := brk.Opens
		brk.Failure(at)
		if opened := brk.Opens - opensBefore; opened > 0 {
			fs.rstats.BreakerOpens += opened
			jr.BreakerOpens += opened
		}
		if perm || fs.retry.Exhausted(attempts) {
			fs.rstats.Exhausted++
			jr.Exhausted++
			return at, &recovery.TargetError{Layer: "pvfs", Kind: "server", Target: s, Attempts: attempts, Permanent: perm}
		}
		d := fs.retry.Delay(attempts, fs.rng)
		at += d
		fs.rstats.BackoffSecs += d
		jr.BackoffSecs += d
	}
}

// totalLen sums the extents' real bytes.
func totalLen(exts []storage.Extent) int64 {
	var n int64
	for _, e := range exts {
		n += e.Len
	}
	return n
}

// writev books one vectored write's resources and returns its virtual
// completion time; the data is stored before return — unless a server
// failure outlives the retry engine, in which case NO bytes are stored
// (all-or-nothing: a whole-operation retry is idempotent) and the elapsed
// time of every portion, retries included, is still in the returned clock.
func (f *File) writev(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) (float64, error) {
	if totalLen(exts) == 0 {
		return r.Now(), nil
	}
	cl := r.W.Cluster
	r.P.Sync()
	now := r.Now()
	lat := cl.Config().Latency
	virtTotal := float64(totalLen(exts)) * f.fs.cfg.CostScale
	_, txEnd := cl.TxNIC(r.WorldRank()).Acquire(now, virtTotal/cl.Config().NICBandwidth)
	done, err := f.serveListTry(txEnd+lat, f.perServerBytes(exts), r.JobID())
	done += lat
	if err == nil {
		for i, e := range exts {
			if e.Off < 0 {
				panic("pvfs: negative offset")
			}
			f.obj.data.Store(e.Off, bufs[i][:e.Len])
			if f.fs.ledger != nil {
				f.fs.ledger.Record(f.obj.name, e.Off, bufs[i][:e.Len])
			}
		}
	}
	f.fs.maybeTrim(r)
	if done < now {
		done = now
	}
	return done, err
}

// readv books one vectored read's resources and returns the data plus its
// virtual completion time. On a post-retry server failure the data is nil.
func (f *File) readv(r *mpi.Rank, exts []storage.Extent) ([][]byte, float64, error) {
	out := make([][]byte, len(exts))
	for i, e := range exts {
		if e.Off < 0 {
			panic("pvfs: negative offset")
		}
		out[i] = f.obj.data.Load(e.Off, e.Len)
	}
	if totalLen(exts) == 0 {
		return out, r.Now(), nil
	}
	cl := r.W.Cluster
	r.P.Sync()
	now := r.Now()
	lat := cl.Config().Latency
	served, err := f.serveListTry(now+lat, f.perServerBytes(exts), r.JobID())
	virtTotal := float64(totalLen(exts)) * f.fs.cfg.CostScale
	_, rxEnd := cl.RxNIC(r.WorldRank()).Acquire(served+lat, virtTotal/cl.Config().NICBandwidth)
	f.fs.maybeTrim(r)
	if rxEnd < now {
		rxEnd = now
	}
	if err != nil {
		return nil, rxEnd, err
	}
	return out, rxEnd, nil
}

// TryWritevAt is WritevAt with error plumbing: elapsed time (failed attempts
// included) is charged either way; on error no bytes are stored.
func (f *File) TryWritevAt(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) error {
	done, err := f.writev(r, exts, bufs)
	r.ChargeIO(done - r.Now())
	return err
}

// WritevAt writes one list-I/O request, charging ClassIO for the wait.
func (f *File) WritevAt(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) {
	if err := f.TryWritevAt(r, exts, bufs); err != nil {
		panic(fmt.Sprintf("pvfs: WritevAt on %q: %v", f.obj.name, err))
	}
}

// WritevAtAsync is WritevAt returning the virtual completion time instead
// of charging the clock; data is durable on return.
func (f *File) WritevAtAsync(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) float64 {
	done, err := f.writev(r, exts, bufs)
	if err != nil {
		panic(fmt.Sprintf("pvfs: WritevAtAsync on %q: %v", f.obj.name, err))
	}
	return done
}

// TryReadvAt is ReadvAt with error plumbing: elapsed time is charged either
// way; on error the data is nil.
func (f *File) TryReadvAt(r *mpi.Rank, exts []storage.Extent) ([][]byte, error) {
	out, done, err := f.readv(r, exts)
	r.ChargeIO(done - r.Now())
	return out, err
}

// ReadvAt reads one list-I/O request, charging ClassIO for the wait.
func (f *File) ReadvAt(r *mpi.Rank, exts []storage.Extent) [][]byte {
	out, err := f.TryReadvAt(r, exts)
	if err != nil {
		panic(fmt.Sprintf("pvfs: ReadvAt on %q: %v", f.obj.name, err))
	}
	return out
}

// ReadvAtAsync is ReadvAt returning the data plus the virtual completion
// time instead of charging the clock.
func (f *File) ReadvAtAsync(r *mpi.Rank, exts []storage.Extent) ([][]byte, float64) {
	out, done, err := f.readv(r, exts)
	if err != nil {
		panic(fmt.Sprintf("pvfs: ReadvAtAsync on %q: %v", f.obj.name, err))
	}
	return out, done
}

// WriteAt is the one-extent vectored write.
func (f *File) WriteAt(r *mpi.Rank, off int64, data []byte) {
	f.WritevAt(r, []storage.Extent{{Off: off, Len: int64(len(data))}}, [][]byte{data})
}

// TryWriteAt is WriteAt surfacing post-retry server failures as typed
// *recovery.TargetError values instead of panicking.
func (f *File) TryWriteAt(r *mpi.Rank, off int64, data []byte) error {
	return f.TryWritevAt(r, []storage.Extent{{Off: off, Len: int64(len(data))}}, [][]byte{data})
}

// WriteAtAsync is the one-extent vectored async write.
func (f *File) WriteAtAsync(r *mpi.Rank, off int64, data []byte) float64 {
	return f.WritevAtAsync(r, []storage.Extent{{Off: off, Len: int64(len(data))}}, [][]byte{data})
}

// ReadAt is the one-extent vectored read.
func (f *File) ReadAt(r *mpi.Rank, off, n int64) []byte {
	return f.ReadvAt(r, []storage.Extent{{Off: off, Len: n}})[0]
}

// TryReadAt is ReadAt surfacing post-retry server failures as typed
// *recovery.TargetError values instead of panicking.
func (f *File) TryReadAt(r *mpi.Rank, off, n int64) ([]byte, error) {
	out, err := f.TryReadvAt(r, []storage.Extent{{Off: off, Len: n}})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// ReadAtAsync is the one-extent vectored async read.
func (f *File) ReadAtAsync(r *mpi.Rank, off, n int64) ([]byte, float64) {
	out, done := f.ReadvAtAsync(r, []storage.Extent{{Off: off, Len: n}})
	return out[0], done
}

// Punch zeroes stored bytes in [off, off+n) at no time cost — the staging
// tier's durability-revocation hook. The ledger is deliberately untouched.
func (f *File) Punch(off, n int64) { f.obj.data.Zero(off, n) }
