package pvfs

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// TestBackendConformance runs the shared storage.Backend suite against the
// list-I/O server farm.
func TestBackendConformance(t *testing.T) {
	storagetest.Run(t, "listio", func() storage.Backend {
		return NewFS(DefaultConfig())
	})
}

// TestBackendFaultConformance runs the shared fault-injection leg: every
// server fail-stops inside the conformance window, the vectored call's
// scalar-fallback retry loop exhausts into a typed *recovery.TargetError,
// and a whole-operation retry after the window recovers byte-exact.
func TestBackendFaultConformance(t *testing.T) {
	storagetest.RunFaults(t, "listio", func() storage.Backend {
		cfg := DefaultConfig()
		cfg.Faults = &fault.Plan{
			Name:        "conf-dead-servers",
			ServerFails: []fault.OSTFail{{OST: -1, Prob: 1, At: storagetest.FaultAt, For: storagetest.FaultFor}},
		}
		cfg.Retry = recovery.Backoff{MaxAttempts: 3}
		return NewFS(cfg)
	})
}
