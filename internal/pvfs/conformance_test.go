package pvfs

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// TestBackendConformance runs the shared storage.Backend suite against the
// list-I/O server farm.
func TestBackendConformance(t *testing.T) {
	storagetest.Run(t, "listio", func() storage.Backend {
		return NewFS(DefaultConfig())
	})
}
