package recovery

import (
	"math"
	"math/rand"
	"testing"
)

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 1e-4, Cap: 1e-3, Factor: 2, MaxAttempts: 6}
	want := []float64{1e-4, 2e-4, 4e-4, 8e-4, 1e-3, 1e-3, 1e-3}
	for i, w := range want {
		if got := b.Delay(i+1, nil); math.Abs(got-w) > 1e-15 {
			t.Errorf("retry %d: delay = %g, want %g", i+1, got, w)
		}
	}
	if b.Exhausted(5) || !b.Exhausted(6) {
		t.Error("Exhausted boundary wrong: budget is 6 total attempts")
	}
}

func TestBackoffDefaults(t *testing.T) {
	d := Backoff{}.Defaults()
	if d.Base != 1e-4 || d.Cap != 5e-3 || d.Factor != 2 || d.MaxAttempts != 6 || d.Jitter != 0 {
		t.Fatalf("defaults = %+v", d)
	}
	// Explicit fields survive.
	k := Backoff{Base: 1, MaxAttempts: 3}.Defaults()
	if k.Base != 1 || k.MaxAttempts != 3 {
		t.Fatalf("explicit fields clobbered: %+v", k)
	}
}

// TestBackoffDeterminism: the jitter-free schedule consumes no draws (nil
// rng does not panic), and a jittered schedule is bit-identical under the
// same seed.
func TestBackoffDeterminism(t *testing.T) {
	b := Backoff{}.Defaults()
	if d1, d2 := b.Delay(3, nil), b.Delay(3, nil); d1 != d2 {
		t.Fatal("jitter-free delay is not a pure function")
	}
	j := Backoff{Jitter: 0.5}.Defaults()
	a, c := rand.New(rand.NewSource(17)), rand.New(rand.NewSource(17))
	for i := 1; i <= 20; i++ {
		da, dc := j.Delay(i, a), j.Delay(i, c)
		if da != dc {
			t.Fatalf("retry %d: jittered delays diverge under one seed: %g vs %g", i, da, dc)
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	k := &Breaker{Threshold: 3, Cooldown: 1.0}
	if k.State(0) != BreakerClosed {
		t.Fatal("fresh breaker not closed")
	}
	// Two failures: still closed (threshold 3).
	k.Failure(0.1)
	k.Failure(0.2)
	if k.State(0.2) != BreakerClosed || k.HoldOff(0.2) != 0 {
		t.Fatal("breaker tripped before threshold")
	}
	// A success resets the consecutive counter.
	k.Success()
	k.Failure(0.3)
	k.Failure(0.4)
	if k.State(0.4) != BreakerClosed {
		t.Fatal("success did not reset the failure counter")
	}
	// Third consecutive failure trips it.
	k.Failure(0.5)
	if k.State(0.5) != BreakerOpen || k.Opens != 1 {
		t.Fatalf("breaker not open after threshold: state=%v opens=%d", k.State(0.5), k.Opens)
	}
	// While open, requests are held off until the cooldown elapses.
	if h := k.HoldOff(0.7); math.Abs(h-0.8) > 1e-12 {
		t.Fatalf("hold-off = %g, want 0.8 (until openedAt+cooldown)", h)
	}
	// The held-off request is the half-open probe; its failure re-opens.
	if k.State(1.5) != BreakerHalfOpen {
		t.Fatalf("state after hold = %v, want half-open", k.State(1.5))
	}
	k.Failure(1.5)
	if k.State(1.5) != BreakerOpen || k.Opens != 2 {
		t.Fatal("failed probe did not re-open the breaker")
	}
	// After the second cooldown, a successful probe closes it for good.
	if h := k.HoldOff(2.6); h != 0 {
		t.Fatalf("post-cooldown hold-off = %g, want 0", h)
	}
	k.Success()
	if k.State(2.6) != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if k.HoldOff(2.6) != 0 {
		t.Fatal("closed breaker holds requests off")
	}
}

func TestBreakerDefaults(t *testing.T) {
	k := &Breaker{}
	for i := 0; i < 4; i++ {
		k.Failure(0.001 * float64(i))
	}
	if k.State(0.003) != BreakerOpen {
		t.Fatal("default threshold is not 4")
	}
	if k.State(0.003+2e-3) != BreakerHalfOpen {
		t.Fatal("default cooldown is not 2 ms")
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.Defaults()
	if p.Timeout != 2.5e-1 || p.MaxFailovers != 2 {
		t.Fatalf("policy defaults = %+v", p)
	}
	q := Policy{Timeout: 1, MaxFailovers: 7}.Defaults()
	if q.Timeout != 1 || q.MaxFailovers != 7 {
		t.Fatalf("explicit policy clobbered: %+v", q)
	}
}

func TestTargetError(t *testing.T) {
	e := &TargetError{Layer: "lustre", Kind: "OST", Target: 3, Attempts: 6}
	if e.Error() != "lustre: OST 3 transient failure after 6 attempt(s)" {
		t.Fatalf("transient message = %q", e.Error())
	}
	p := &TargetError{Layer: "pvfs", Kind: "server", Target: 0, Attempts: 1, Permanent: true}
	if p.Error() != "pvfs: server 0 permanent failure after 1 attempt(s)" {
		t.Fatalf("permanent message = %q", p.Error())
	}
}

func TestBreakerSet(t *testing.T) {
	s := NewBreakerSet()
	if s.Len() != 0 || s.Opens() != 0 {
		t.Fatal("fresh set not empty")
	}
	a := s.Get(3)
	if a != s.Get(3) {
		t.Fatal("Get is not stable per target")
	}
	if a == s.Get(7) {
		t.Fatal("distinct targets share a breaker")
	}
	for i := 0; i < 4; i++ { // default threshold
		a.Failure(0.001 * float64(i))
	}
	if a.State(0.003) != BreakerOpen || s.Opens() != 1 {
		t.Fatalf("set breaker did not trip: state=%v opens=%d", a.State(0.003), s.Opens())
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// Configured sets hand their settings to new breakers.
	c := &BreakerSet{Threshold: 1, Cooldown: 0.5}
	k := c.Get(0)
	k.Failure(0)
	if k.State(0) != BreakerOpen {
		t.Fatal("configured threshold not applied")
	}
	if k.State(0.6) != BreakerHalfOpen {
		t.Fatal("configured cooldown not applied")
	}
}

func TestStatsMerge(t *testing.T) {
	var r RetryStats
	r.Add(RetryStats{Attempts: 3, Retries: 2, Failures: 2, BackoffSecs: 0.5})
	r.Add(RetryStats{Attempts: 1, Exhausted: 1, BreakerOpens: 1, BackoffSecs: 0.25})
	if r.Attempts != 4 || r.Retries != 2 || r.Failures != 2 || r.Exhausted != 1 ||
		r.BreakerOpens != 1 || r.BackoffSecs != 0.75 {
		t.Fatalf("RetryStats.Add wrong: %+v", r)
	}

	var f FailoverStats
	f.Merge(FailoverStats{Detections: 2, Failovers: 1, TimeToRecover: 0.3})
	f.Merge(FailoverStats{Reelections: 1, Degradations: 1, TimeToRecover: 0.1, DetectSecs: 0.05})
	if f.Detections != 2 || f.Failovers != 1 || f.Reelections != 1 || f.Degradations != 1 {
		t.Fatalf("FailoverStats.Merge counters wrong: %+v", f)
	}
	if f.TimeToRecover != 0.3 {
		t.Fatalf("TimeToRecover must merge by max: %g", f.TimeToRecover)
	}
	if !f.Recovered() {
		t.Fatal("Recovered() false after recovery actions")
	}
	var zero FailoverStats
	if zero.Recovered() {
		t.Fatal("zero stats claim recovery")
	}
}

func TestLogAppend(t *testing.T) {
	var l Log
	l.Append(0.1, 3, "timeout", "agg 0 silent in round 2")
	l.Append(0.2, 3, "failover", "domain -> rank 8")
	if len(l.Events) != 2 || l.Events[0].Kind != "timeout" || l.Events[1].At != 0.2 {
		t.Fatalf("log = %+v", l.Events)
	}
}

// FuzzRetrySchedule checks the backoff invariants over arbitrary
// configurations: delays are positive, capped (jitter included), monotone
// non-decreasing until the cap, and bit-identical across two walks with one
// seed.
func FuzzRetrySchedule(f *testing.F) {
	f.Add(1e-4, 5e-3, 2.0, 0.0, int64(1))
	f.Add(1e-6, 1e-2, 1.5, 0.3, int64(99))
	f.Add(0.0, 0.0, 0.0, 1.0, int64(7))
	f.Add(3.0, 1e-3, 10.0, 0.5, int64(-4)) // base above cap
	f.Fuzz(func(t *testing.T, base, cap, factor, jitter float64, seed int64) {
		if math.IsNaN(base) || math.IsInf(base, 0) || base < 0 || base > 1e6 ||
			math.IsNaN(cap) || math.IsInf(cap, 0) || cap < 0 || cap > 1e6 ||
			math.IsNaN(factor) || math.IsInf(factor, 0) || factor < 0 || factor > 1e3 ||
			math.IsNaN(jitter) || math.IsInf(jitter, 0) || jitter < 0 || jitter > 1 {
			t.Skip()
		}
		b := Backoff{Base: base, Cap: cap, Factor: factor, Jitter: jitter}.Defaults()
		r1, r2 := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		prev := 0.0
		for i := 1; i <= 24; i++ {
			d1, d2 := b.Delay(i, r1), b.Delay(i, r2)
			if d1 != d2 {
				t.Fatalf("retry %d: two seeded walks diverge: %g vs %g", i, d1, d2)
			}
			if d1 <= 0 || math.IsNaN(d1) || math.IsInf(d1, 0) {
				t.Fatalf("retry %d: delay %g not positive finite", i, d1)
			}
			if max := b.Cap * (1 + b.Jitter); d1 > max+1e-12*max {
				t.Fatalf("retry %d: delay %g above cap+jitter bound %g", i, d1, max)
			}
			nj := b
			nj.Jitter = 0
			base := nj.Delay(i, nil)
			if i > 1 && base < prev-1e-12*prev {
				t.Fatalf("retry %d: jitter-free schedule decreased: %g -> %g", i, prev, base)
			}
			prev = base
		}
	})
}
