// Package recovery holds the fail-stop fault-tolerance policy shared by the
// lustre client (retry/backoff + per-OST circuit breakers) and the mpiio
// collective layer (round deadlines, aggregator failover budgets). It is
// pure policy: virtual-time arithmetic and small state machines with no
// dependency on the simulator, so every piece is unit-testable in isolation
// and every consumer applies it under its own deterministic RNG.
//
// Determinism contract (same as package fault): nothing here owns random
// state. Backoff jitter draws from a *rand.Rand handed in by the caller, and
// a Backoff with Jitter == 0 consumes no draws at all — so healthy runs,
// which never retry, are bit-identical with or without the machinery
// installed.
package recovery

import (
	"fmt"
	"math/rand"
)

// --- retry/backoff ----------------------------------------------------------

// Backoff is a capped exponential retry schedule. Attempt k (1-based count
// of *failed* attempts so far) waits Base*Factor^(k-1) seconds, capped at
// Cap, plus a uniform jitter draw in [0, Jitter*delay). The zero value is
// usable: Defaults() fills in the standard schedule.
type Backoff struct {
	Base        float64 // delay before the first retry, seconds
	Cap         float64 // upper bound on any single delay, seconds
	Factor      float64 // multiplicative growth per retry
	Jitter      float64 // jitter fraction of the capped delay (0 = none)
	MaxAttempts int     // total attempts including the first; <= 0 = default
}

// Defaults returns b with unset fields replaced by the standard schedule:
// 100 us base, 5 ms cap, doubling, no jitter, 6 attempts. The defaults are
// deliberately jitter-free so that scenario goldens stay exact; plans that
// want decorrelated retries opt in explicitly.
func (b Backoff) Defaults() Backoff {
	if b.Base <= 0 {
		b.Base = 1e-4
	}
	if b.Cap <= 0 {
		b.Cap = 5e-3
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.MaxAttempts <= 0 {
		b.MaxAttempts = 6
	}
	return b
}

// Delay returns the wait before retry number `retry` (1 = after the first
// failure). rng is consulted only when Jitter > 0, so jitter-free schedules
// consume no draws.
func (b Backoff) Delay(retry int, rng *rand.Rand) float64 {
	if retry < 1 {
		retry = 1
	}
	d := b.Base
	for i := 1; i < retry; i++ {
		d *= b.Factor
		if d >= b.Cap {
			d = b.Cap
			break
		}
	}
	if d > b.Cap {
		d = b.Cap
	}
	if b.Jitter > 0 {
		d += d * b.Jitter * rng.Float64()
	}
	return d
}

// Exhausted reports whether `attempts` total attempts have used up the
// budget.
func (b Backoff) Exhausted(attempts int) bool { return attempts >= b.MaxAttempts }

// --- circuit breaker --------------------------------------------------------

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState uint8

const (
	BreakerClosed   BreakerState = iota // normal operation
	BreakerOpen                         // tripped: hold requests off until cooldown
	BreakerHalfOpen                     // cooldown over: one probe decides
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Breaker is a per-target circuit breaker in virtual time. Threshold
// consecutive failures trip it open; while open, HoldOff tells the caller
// how long to stall before the breaker turns half-open; the first attempt in
// half-open state is the probe — its outcome closes the breaker or re-opens
// it for another cooldown. Single-goroutine use only (the simulator
// serializes procs), so there is no locking.
type Breaker struct {
	Threshold int     // consecutive failures that trip the breaker; <= 0 = 4
	Cooldown  float64 // open duration before the half-open probe; <= 0 = 2 ms

	state    BreakerState
	fails    int
	openedAt float64
	Opens    uint64 // cumulative trips, for stats
}

func (k *Breaker) threshold() int {
	if k.Threshold <= 0 {
		return 4
	}
	return k.Threshold
}

func (k *Breaker) cooldown() float64 {
	if k.Cooldown <= 0 {
		return 2e-3
	}
	return k.Cooldown
}

// State returns the breaker's automaton state as of virtual time `at`
// (an open breaker whose cooldown has elapsed reads as half-open).
func (k *Breaker) State(at float64) BreakerState {
	if k.state == BreakerOpen && at >= k.openedAt+k.cooldown() {
		return BreakerHalfOpen
	}
	return k.state
}

// HoldOff returns how long a request arriving at `at` must stall before it
// may be attempted (0 when the breaker is closed or ready for a probe). The
// caller is expected to advance its clock by the returned amount and then
// attempt; that attempt is the half-open probe.
func (k *Breaker) HoldOff(at float64) float64 {
	if k.state != BreakerOpen {
		return 0
	}
	ready := k.openedAt + k.cooldown()
	if at >= ready {
		k.state = BreakerHalfOpen
		return 0
	}
	k.state = BreakerHalfOpen // the stalled request becomes the probe
	return ready - at
}

// Success records a served request: any state collapses back to closed.
func (k *Breaker) Success() {
	k.state = BreakerClosed
	k.fails = 0
}

// Failure records a failed request at virtual time `at`. A half-open probe
// failure re-opens immediately; in closed state the consecutive-failure
// counter trips the breaker at Threshold.
func (k *Breaker) Failure(at float64) {
	if k.state == BreakerHalfOpen {
		k.state = BreakerOpen
		k.openedAt = at
		k.Opens++
		return
	}
	k.fails++
	if k.fails >= k.threshold() {
		k.state = BreakerOpen
		k.openedAt = at
		k.fails = 0
		k.Opens++
	}
}

// --- collective-layer policy ------------------------------------------------

// Policy parameterizes the mpiio layer's failure detection and failover.
type Policy struct {
	// Timeout is the per-round watchdog deadline, virtual seconds: a
	// subgroup member that hears nothing from its aggregator for this long
	// declares it dead. It must dominate the aggregator's worst per-round
	// latency — announcements are produced one per round, and the round
	// includes the collective-buffer write, so a timeout below the round's
	// I/O time reads ordinary disk latency as death and falsely suspects
	// every healthy aggregator. The default (250 ms) sits ~5x above the
	// slowest rounds in the shipped experiment geometries while staying
	// well under whole-run times. <= 0 selects the default.
	Timeout float64
	// MaxFailovers bounds aggregator failovers per collective call; one
	// more failure degrades the call to independent I/O. <= 0 selects the
	// default of 2.
	MaxFailovers int
}

// Defaults returns p with unset fields filled in.
func (p Policy) Defaults() Policy {
	if p.Timeout <= 0 {
		p.Timeout = 2.5e-1
	}
	if p.MaxFailovers <= 0 {
		p.MaxFailovers = 2
	}
	return p
}

// --- typed errors -----------------------------------------------------------

// TargetError is the typed failure a storage layer surfaces when a request
// against one of its targets cannot be served: either the retry budget was
// exhausted on transient errors, or the plan marked the failure permanent.
// Every backend shares the shape; Layer and Kind name the failure domain in
// that backend's own vocabulary ("lustre"/"OST", "pvfs"/"server",
// "bb"/"node"), so error text stays layer-appropriate while callers handle
// one type.
type TargetError struct {
	Layer     string // storage layer reporting the failure
	Kind      string // the layer's noun for its failure domain
	Target    int    // the failing target id within that domain
	Attempts  int    // attempts consumed before giving up
	Permanent bool   // true: unrecoverable by retry, by injection decree
}

func (e *TargetError) Error() string {
	sev := "transient"
	if e.Permanent {
		sev = "permanent"
	}
	return fmt.Sprintf("%s: %s %d %s failure after %d attempt(s)", e.Layer, e.Kind, e.Target, sev, e.Attempts)
}

// --- breaker sets ------------------------------------------------------------

// BreakerSet lazily allocates one Breaker per integer target id. Lustre
// OSTs, pvfs servers, and bb nodes are all independent failure domains
// wanting the same trip/cooldown machinery; a set keyed by the layer's own
// target ids lets them share it without agreeing on a global id space.
type BreakerSet struct {
	Threshold int     // per-breaker trip threshold (0 = Breaker default)
	Cooldown  float64 // per-breaker cooldown seconds (0 = Breaker default)
	m         map[int]*Breaker
}

// NewBreakerSet returns an empty set whose breakers use the Breaker
// defaults.
func NewBreakerSet() *BreakerSet { return &BreakerSet{} }

// Get returns the breaker for target, creating it closed on first use.
func (s *BreakerSet) Get(target int) *Breaker {
	if s.m == nil {
		s.m = make(map[int]*Breaker)
	}
	k := s.m[target]
	if k == nil {
		k = &Breaker{Threshold: s.Threshold, Cooldown: s.Cooldown}
		s.m[target] = k
	}
	return k
}

// Opens sums the trip counts over every breaker in the set.
func (s *BreakerSet) Opens() uint64 {
	var n uint64
	for _, k := range s.m {
		n += k.Opens
	}
	return n
}

// Len reports how many targets have a breaker allocated.
func (s *BreakerSet) Len() int { return len(s.m) }

// --- recovery accounting ----------------------------------------------------

// RetryStats counts a storage layer's retry-engine work. Counters are plain
// uint64s mutated by one proc at a time under the simulator's cooperative
// schedule.
type RetryStats struct {
	Attempts     uint64  // I/O attempts issued (first tries + retries)
	Retries      uint64  // attempts beyond the first, per request
	Failures     uint64  // attempts that came back failed
	Exhausted    uint64  // requests abandoned after the full budget
	BreakerOpens uint64  // circuit-breaker trips
	BackoffSecs  float64 // virtual seconds spent in backoff + breaker holds
}

// Add accumulates o into s.
func (s *RetryStats) Add(o RetryStats) {
	s.Attempts += o.Attempts
	s.Retries += o.Retries
	s.Failures += o.Failures
	s.Exhausted += o.Exhausted
	s.BreakerOpens += o.BreakerOpens
	s.BackoffSecs += o.BackoffSecs
}

// FailoverStats counts the collective layer's recovery actions across one or
// more collective calls.
type FailoverStats struct {
	Detections    uint64  // aggregator-death detections (per rank, per call)
	Failovers     uint64  // aggregator domains re-assigned to survivors
	Reelections   uint64  // subgroups that had to elect a fresh aggregator
	Degradations  uint64  // calls degraded to independent I/O
	DetectSecs    float64 // virtual seconds from round start to detection
	RecoverSecs   float64 // virtual seconds replanning after detection
	TimeToRecover float64 // max replanning span over ranks (the TTR metric)
}

// Merge accumulates o into s; TimeToRecover merges by max (it is a span, not
// a sum).
func (s *FailoverStats) Merge(o FailoverStats) {
	s.Detections += o.Detections
	s.Failovers += o.Failovers
	s.Reelections += o.Reelections
	s.Degradations += o.Degradations
	s.DetectSecs += o.DetectSecs
	s.RecoverSecs += o.RecoverSecs
	if o.TimeToRecover > s.TimeToRecover {
		s.TimeToRecover = o.TimeToRecover
	}
}

// Recovered reports whether any recovery action fired.
func (s *FailoverStats) Recovered() bool {
	return s.Detections > 0 || s.Failovers > 0 || s.Reelections > 0 || s.Degradations > 0
}

// Event is one entry in the structured recovery log: what a rank did about
// a failure and when. Kinds: "timeout", "failover", "reelect", "degrade".
type Event struct {
	At     float64 // virtual time the action completed
	Rank   int     // acting rank (communicator rank)
	Kind   string
	Detail string
}

// Log is an append-only recovery log. The zero value is ready to use.
type Log struct {
	Events []Event
}

// Append records one event.
func (l *Log) Append(at float64, rank int, kind, detail string) {
	l.Events = append(l.Events, Event{At: at, Rank: rank, Kind: kind, Detail: detail})
}
