package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Critical-path analysis over the span graph of one collective call.
//
// The collective finishes when its last span ends; walking backward from
// that instant through the spans that were still running reconstructs the
// chain of work that bounded completion — the paper's question "where does
// the time go?" answered per rank and phase instead of in aggregate. The
// walk is greedy and deterministic: at time t it picks the span covering t
// with the latest start (the tightest predecessor), breaking ties by lowest
// rank then kind; a gap with no covering span is attributed to idle time and
// the walk jumps to the latest span end below it.

// Step is one segment of the critical path. Rank is -1 for idle gaps.
type Step struct {
	Rank  int     `json:"rank"`
	Kind  string  `json:"kind"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Dur returns the step's duration.
func (s Step) Dur() float64 { return s.End - s.Start }

// Contrib aggregates one (rank, kind) pair's share of the critical path.
type Contrib struct {
	Rank    int     `json:"rank"`
	Kind    string  `json:"kind"`
	Seconds float64 `json:"seconds"`
}

// Report is the result of a critical-path analysis.
type Report struct {
	// Steps is the path in chronological order (earliest first).
	Steps []Step `json:"steps"`
	// Span is the analyzed window: last span end minus first span start.
	Span float64 `json:"span"`
	// Contribs is each (rank, kind)'s time on the path, descending.
	Contribs []Contrib `json:"contribs"`
	// BoundingRank and BoundingKind name the largest contributor — where
	// the next optimization PR should look first.
	BoundingRank int    `json:"bounding_rank"`
	BoundingKind string `json:"bounding_kind"`
}

// CriticalPath analyzes the given spans (typically trace.Recorder.Events()
// of one collective call). An empty input yields a zero Report.
func CriticalPath(events []trace.Event) Report {
	if len(events) == 0 {
		return Report{BoundingRank: -1}
	}
	tEnd, tStart := events[0].End, events[0].Start
	for _, e := range events {
		if e.End > tEnd {
			tEnd = e.End
		}
		if e.Start < tStart {
			tStart = e.Start
		}
	}

	var steps []Step // built back-to-front
	t := tEnd
	for t > tStart {
		// Candidate: span covering t with the latest start; ties to the
		// lowest rank, then lexicographically smallest kind.
		best := -1
		for i, e := range events {
			if e.Start >= t || e.End < t || e.Dur() == 0 {
				continue
			}
			if best < 0 ||
				e.Start > events[best].Start ||
				(e.Start == events[best].Start && (e.Rank < events[best].Rank ||
					(e.Rank == events[best].Rank && e.Kind < events[best].Kind))) {
				best = i
			}
		}
		if best >= 0 {
			e := events[best]
			steps = append(steps, Step{Rank: e.Rank, Kind: e.Kind, Start: e.Start, End: t})
			t = e.Start
			continue
		}
		// Idle gap: no span covers t. Jump to the latest end below t.
		prev := tStart
		for _, e := range events {
			if e.End < t && e.End > prev {
				prev = e.End
			}
		}
		steps = append(steps, Step{Rank: -1, Kind: "idle", Start: prev, End: t})
		t = prev
	}

	// Reverse into chronological order.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}

	rep := Report{Steps: steps, Span: tEnd - tStart}
	type rk struct {
		rank int
		kind string
	}
	agg := map[rk]float64{}
	for _, s := range steps {
		agg[rk{s.Rank, s.Kind}] += s.Dur()
	}
	for k, v := range agg {
		rep.Contribs = append(rep.Contribs, Contrib{Rank: k.rank, Kind: k.kind, Seconds: v})
	}
	sort.Slice(rep.Contribs, func(i, j int) bool {
		a, b := rep.Contribs[i], rep.Contribs[j]
		if a.Seconds != b.Seconds {
			return a.Seconds > b.Seconds
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Kind < b.Kind
	})
	rep.BoundingRank, rep.BoundingKind = -1, "idle"
	for _, c := range rep.Contribs {
		if c.Rank >= 0 { // the bounding phase is real work, not an idle gap
			rep.BoundingRank, rep.BoundingKind = c.Rank, c.Kind
			break
		}
	}
	if rep.BoundingRank < 0 && len(rep.Contribs) > 0 {
		rep.BoundingRank, rep.BoundingKind = rep.Contribs[0].Rank, rep.Contribs[0].Kind
	}
	return rep
}

// String renders the report for terminal output: the bounding rank/phase,
// then the top contributors.
func (r Report) String() string {
	if len(r.Steps) == 0 {
		return "critical path: no spans recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %.6fs across %d steps; bounded by rank %d phase %q\n",
		r.Span, len(r.Steps), r.BoundingRank, r.BoundingKind)
	n := len(r.Contribs)
	if n > 8 {
		n = 8
	}
	for _, c := range r.Contribs[:n] {
		who := fmt.Sprintf("rank %d %s", c.Rank, c.Kind)
		if c.Rank < 0 {
			who = "idle"
		}
		share := 0.0
		if r.Span > 0 {
			share = c.Seconds / r.Span * 100
		}
		fmt.Fprintf(&b, "  %-24s %.6fs (%4.1f%%)\n", who, c.Seconds, share)
	}
	return b.String()
}
