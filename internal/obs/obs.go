// Package obs is the deterministic, observe-only observability layer: a
// typed metrics registry (counters, gauges, fixed-bucket histograms), a
// Perfetto/Chrome trace_event exporter over internal/trace recordings, and a
// critical-path analyzer over the span graph of a collective call.
//
// Determinism contract: the registry reads no wall clock and draws no
// randomness; instruments only record values their callers already computed
// from virtual clocks and deterministic counters. Attaching a Registry to a
// run therefore never moves a virtual timestamp — an instrumented run is
// bit-identical in virtual time to a bare one (pinned by the root
// obs_test.go goldens). Snapshots and exports sort every series by name, so
// two identical runs serialize to identical bytes.
//
// The simulation engine runs ranks one at a time, so a single Registry is
// shared by all ranks of a run without locking, exactly like trace.Recorder.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a last-write-wins level with a tracked maximum.
type Gauge struct {
	v, max float64
	set    bool
}

// Set records the current level.
func (g *Gauge) Set(v float64) {
	g.v = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
}

// SetMax records v only when it exceeds the tracked maximum (a high-water
// mark; Value then reports the maximum).
func (g *Gauge) SetMax(v float64) {
	if !g.set || v > g.max {
		g.max = v
		g.v = v
		g.set = true
	}
}

// Value returns the last set level.
func (g *Gauge) Value() float64 { return g.v }

// Max returns the largest level ever set.
func (g *Gauge) Max() float64 { return g.max }

// Histogram is a fixed-bucket distribution. Bounds are upper bucket edges in
// ascending order; one implicit overflow bucket catches everything above the
// last bound. Buckets are fixed at creation so two runs of the same program
// observe into identical layouts.
type Histogram struct {
	bounds   []float64
	counts   []uint64 // len(bounds)+1
	sum      float64
	count    uint64
	min, max float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean (zero when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// SecondsBuckets is the standard virtual-time bucket layout: log-spaced
// from a microsecond to ten virtual seconds.
func SecondsBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}
}

// Registry holds a run's instruments, keyed by name. Get-or-create accessors
// let instrumentation sites stay one-liners; hot paths should hold the
// returned instrument instead of re-resolving the name.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero if needed.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds if needed (nil bounds default to SecondsBuckets). Re-resolving an
// existing histogram ignores the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h := r.hists[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = SecondsBuckets()
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// CounterPoint is one counter's snapshot value.
type CounterPoint struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugePoint is one gauge's snapshot value.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Max   float64 `json:"max"`
}

// HistogramPoint is one histogram's snapshot.
type HistogramPoint struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Snapshot is a frozen, name-sorted copy of a registry — the form that
// travels in experiment Results and serializes deterministically.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// Snapshot freezes the registry. Series are sorted by name, so snapshots of
// identical runs compare (and serialize) identically.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: c.v})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: g.v, Max: g.max})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, HistogramPoint{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
			Min:    h.min,
			Max:    h.max,
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// JSON serializes the snapshot with stable formatting.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// String renders the snapshot as an aligned text report.
func (s Snapshot) String() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-42s %d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-42s %g (max %g)\n", g.Name, g.Value, g.Max)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "  %-42s n=%d sum=%.6g mean=%.6g min=%.6g max=%.6g\n",
				h.Name, h.Count, h.Sum, mean(h), h.Min, h.Max)
		}
	}
	return b.String()
}

func mean(h HistogramPoint) float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Equal reports whether two snapshots carry bit-identical values — the
// instrumented-vs-bare determinism check. Float fields compare by bits, not
// tolerance: virtual-time metrics must match exactly.
func (s Snapshot) Equal(o Snapshot) bool {
	a, err1 := json.Marshal(s)
	b, err2 := json.Marshal(o)
	if err1 != nil || err2 != nil {
		return false
	}
	return string(a) == string(b)
}
