package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/trace"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("x.calls")
	c.Inc()
	c.Add(4)
	if got := r.Counter("x.calls").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("x.depth")
	g.Set(3)
	g.Set(1)
	if g.Value() != 1 || g.Max() != 3 {
		t.Fatalf("gauge = (%g, max %g), want (1, 3)", g.Value(), g.Max())
	}
	g.SetMax(2)
	if g.Value() != 1 || g.Max() != 3 {
		t.Fatalf("SetMax below max must not move the gauge: (%g, max %g)", g.Value(), g.Max())
	}
	h := r.Histogram("x.secs", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 60.5 {
		t.Fatalf("histogram count/sum = %d/%g", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	hp := snap.Histograms[0]
	want := []uint64{1, 2, 1}
	for i, n := range want {
		if hp.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hp.Counts[i], n, hp.Counts)
		}
	}
	if hp.Min != 0.5 || hp.Max != 50 {
		t.Fatalf("min/max = %g/%g", hp.Min, hp.Max)
	}
}

func TestSnapshotSortedAndEqual(t *testing.T) {
	build := func() Snapshot {
		r := New()
		r.Counter("b").Add(2)
		r.Counter("a").Inc()
		r.Gauge("z").Set(1)
		r.Histogram("m", nil).Observe(0.01)
		return r.Snapshot()
	}
	s1, s2 := build(), build()
	if s1.Counters[0].Name != "a" || s1.Counters[1].Name != "b" {
		t.Fatalf("counters not sorted: %+v", s1.Counters)
	}
	if !s1.Equal(s2) {
		t.Fatal("identical registries must snapshot Equal")
	}
	j1, err1 := s1.JSON()
	j2, err2 := s2.JSON()
	if err1 != nil || err2 != nil || !bytes.Equal(j1, j2) {
		t.Fatal("snapshot JSON must be byte-identical across identical runs")
	}
	s3 := build()
	s3.Counters[0].Value++
	if s1.Equal(s3) {
		t.Fatal("differing snapshots must not compare Equal")
	}
}

func buildTrace() *trace.Recorder {
	rec := trace.New()
	rec.Add(0, "sync", 0, 1, "round 0")
	rec.Add(1, "sync", 0, 1.5, "")
	rec.Add(0, "io", 1.5, 3, "")
	rec.Add(1, "exchange", 1.5, 2, "")
	return rec
}

func TestPerfettoShapeAndDeterminism(t *testing.T) {
	reg := New()
	reg.Counter("sim.sends").Add(7)
	b1, err := Perfetto(buildTrace(), reg)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Perfetto(buildTrace(), reg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("Perfetto export must be byte-identical for identical inputs")
	}
	var evs []map[string]any
	if err := json.Unmarshal(b1, &evs); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	var spans, counters, meta int
	for _, e := range evs {
		name, _ := e["name"].(string)
		ph, _ := e["ph"].(string)
		if name == "" || ph == "" {
			t.Fatalf("event missing name/ph: %v", e)
		}
		switch ph {
		case "X":
			spans++
		case "C":
			counters++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	if spans != 4 {
		t.Fatalf("spans = %d, want 4", spans)
	}
	if counters == 0 || meta == 0 {
		t.Fatalf("want counter and metadata events, got %d/%d", counters, meta)
	}
}

func TestCriticalPathBackwardWalk(t *testing.T) {
	// Rank 1's io span [2,5] ends last; before it, rank 1 sync [1,2.5]
	// overlaps; before that, rank 0 sync [0,1.2].
	rec := trace.New()
	rec.Add(0, "sync", 0, 1.2, "")
	rec.Add(1, "sync", 1, 2.5, "")
	rec.Add(1, "io", 2, 5, "")
	rep := CriticalPath(rec.Events())
	if rep.Span != 5 {
		t.Fatalf("span = %g, want 5", rep.Span)
	}
	if rep.BoundingRank != 1 || rep.BoundingKind != "io" {
		t.Fatalf("bounding = rank %d %q, want rank 1 io", rep.BoundingRank, rep.BoundingKind)
	}
	// Path must be chronological and cover [0, 5] without overlap.
	var tot float64
	for i, s := range rep.Steps {
		if i > 0 && s.Start != rep.Steps[i-1].End {
			t.Fatalf("path not contiguous at step %d: %+v", i, rep.Steps)
		}
		tot += s.Dur()
	}
	if tot != 5 {
		t.Fatalf("path durations sum to %g, want 5", tot)
	}
}

func TestCriticalPathIdleGap(t *testing.T) {
	rec := trace.New()
	rec.Add(0, "sync", 0, 1, "")
	rec.Add(0, "io", 2, 3, "")
	rep := CriticalPath(rec.Events())
	var idle float64
	for _, s := range rep.Steps {
		if s.Rank == -1 {
			idle += s.Dur()
		}
	}
	if idle != 1 {
		t.Fatalf("idle time = %g, want 1 (%+v)", idle, rep.Steps)
	}
	if rep.BoundingRank != 0 {
		t.Fatalf("bounding must skip idle: %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("report must render")
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	rep := CriticalPath(nil)
	if len(rep.Steps) != 0 || rep.Span != 0 {
		t.Fatalf("empty input must yield zero report: %+v", rep)
	}
}
