package obs

import (
	"math"
	"sort"
	"sync"
)

// LatencyRecorder collects raw per-call latency samples for exact quantile
// reporting. The fixed-bucket Histogram is fine for dashboards, but the
// tenancy acceptance criteria pin p99 orderings between QoS policies whose
// gap can be smaller than a bucket — so the multi-tenant layer records every
// collective call's elapsed virtual seconds and sorts at query time.
//
// Add is safe for concurrent use from engine workers: samples land in
// arrival order, which differs between worker counts, but every query sorts
// first, so the reported quantiles are a pure function of the sample
// multiset — bit-identical across engine configurations. Like the rest of
// obs, a recorder only reads virtual clocks; attaching one never perturbs a
// run.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// Add records one sample (seconds).
func (l *LatencyRecorder) Add(sec float64) {
	l.mu.Lock()
	l.samples = append(l.samples, sec)
	l.sorted = false
	l.mu.Unlock()
}

// Count returns the number of samples recorded.
func (l *LatencyRecorder) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// sortLocked orders the samples; callers hold mu.
func (l *LatencyRecorder) sortLocked() {
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by the nearest-rank
// method on the sorted samples; NaN when empty. Nearest-rank keeps the
// result an actual sample, so pinned tables stay hex-float exact.
func (l *LatencyRecorder) Quantile(q float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.samples)
	if n == 0 {
		return math.NaN()
	}
	l.sortLocked()
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return l.samples[i]
}

// Sum returns the total of all samples (seconds).
func (l *LatencyRecorder) Sum() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s float64
	for _, v := range l.samples {
		s += v
	}
	return s
}

// Max returns the largest sample; NaN when empty.
func (l *LatencyRecorder) Max() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return math.NaN()
	}
	l.sortLocked()
	return l.samples[len(l.samples)-1]
}
