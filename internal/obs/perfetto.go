package obs

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Perfetto / Chrome trace_event export.
//
// The exporter merges a trace.Recorder's spans with counter tracks into the
// JSON array form of the trace_event format, loadable in chrome://tracing
// and ui.perfetto.dev. Virtual seconds map to microseconds of trace time
// (the format's native unit). One synthetic process holds one thread per
// rank; spans become complete ("X") events on the rank's thread. Two kinds
// of counter ("C") tracks ride along:
//
//   - phase concurrency: for every span kind, the number of ranks inside a
//     span of that kind over time — the waiting that builds the collective
//     wall is directly visible as the sync track pinning at the rank count;
//   - registry totals: each Registry counter emits one terminal sample, so
//     the run's scalar metrics are attached to the same timeline.
//
// Output is deterministic: events are emitted in a fully specified sort
// order and serialized with encoding/json's stable struct encoding, so two
// identical runs export byte-identical traces (pinned by tests).

// TraceEvent is one object of the trace_event array.
type TraceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// counterTid is the synthetic thread carrying counter tracks.
const counterTid = 1 << 20

// Perfetto renders the recorder's spans (and, when reg is non-nil, its
// counter totals) as a trace_event JSON array. A nil recorder exports only
// the registry samples.
func Perfetto(rec *trace.Recorder, reg *Registry) ([]byte, error) {
	var out []TraceEvent
	var events []trace.Event
	if rec != nil {
		events = rec.Events()
	}

	// Process/thread metadata: name the process and every rank's thread.
	ranks := map[int]bool{}
	for _, e := range events {
		ranks[e.Rank] = true
	}
	out = append(out, TraceEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]string{"name": "parcoll-sim"},
	})
	rankList := make([]int, 0, len(ranks))
	for r := range ranks {
		rankList = append(rankList, r)
	}
	sort.Ints(rankList)
	for _, r := range rankList {
		out = append(out, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: r,
			Args: map[string]string{"name": fmt.Sprintf("rank %d", r)},
		})
	}

	// Spans, sorted (ts, tid, name, dur) for stable output.
	spans := make([]TraceEvent, 0, len(events))
	var tmax float64
	for _, e := range events {
		ev := TraceEvent{
			Name: e.Kind, Ph: "X",
			Ts: e.Start * 1e6, Dur: e.Dur() * 1e6,
			Pid: 0, Tid: e.Rank,
		}
		if e.Note != "" {
			ev.Args = map[string]string{"note": e.Note}
		}
		spans = append(spans, ev)
		if e.End > tmax {
			tmax = e.End
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Dur < b.Dur
	})
	out = append(out, spans...)

	// Phase-concurrency counter tracks, one per span kind.
	out = append(out, concurrencyTracks(events)...)

	// Registry counters: one terminal sample each, pinned at the trace end.
	if reg != nil {
		snap := reg.Snapshot()
		for _, c := range snap.Counters {
			out = append(out, TraceEvent{
				Name: c.Name, Ph: "C", Ts: tmax * 1e6, Pid: 0, Tid: counterTid,
				Args: map[string]string{"value": fmt.Sprintf("%d", c.Value)},
			})
		}
	}
	return json.Marshal(out)
}

// concurrencyTracks builds one counter track per span kind: the number of
// ranks concurrently inside a span of that kind, sampled at every span edge.
func concurrencyTracks(events []trace.Event) []TraceEvent {
	type edge struct {
		t     float64
		delta int
	}
	byKind := map[string][]edge{}
	for _, e := range events {
		byKind[e.Kind] = append(byKind[e.Kind], edge{e.Start, +1}, edge{e.End, -1})
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)

	var out []TraceEvent
	for _, k := range kinds {
		es := byKind[k]
		sort.Slice(es, func(i, j int) bool {
			if es[i].t != es[j].t {
				return es[i].t < es[j].t
			}
			return es[i].delta < es[j].delta // close before open at the same instant
		})
		depth, last := 0, -1.0
		for i, e := range es {
			depth += e.delta
			// Collapse coincident edges into one sample per timestamp.
			if i+1 < len(es) && es[i+1].t == e.t {
				continue
			}
			if e.t == last {
				continue
			}
			last = e.t
			out = append(out, TraceEvent{
				Name: "active:" + k, Ph: "C", Ts: e.t * 1e6, Pid: 0, Tid: counterTid,
				Args: map[string]string{"value": fmt.Sprintf("%d", depth)},
			})
		}
	}
	return out
}
