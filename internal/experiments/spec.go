package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/job"
	"repro/internal/mpiio"
	"repro/internal/storage"
	"repro/internal/workload"
)

// This file is the bridge from the declarative job.Spec to the live
// experiment types: the preset carries machine and scale, the spec carries
// one run's knobs. Everything the cmd tools' flags used to poke into the
// preset goes through here now, so a -spec file and a flag invocation are
// the same code path (and provably bit-identical).

// ApplySpec copies a spec's run knobs onto the preset — defaults applied,
// validation errors returned — including the fault plan resolved from
// Scenario ("" clears it). It is the spec-world twin of cli.Common.Apply.
func (p *Preset) ApplySpec(s job.Spec) error {
	if err := p.ApplySpecBase(s); err != nil {
		return err
	}
	if s2 := s.WithDefaults(); s2.Scenario != "" {
		plan, err := fault.Scenario(s2.Scenario)
		if err != nil {
			return err
		}
		p.Fault = plan
	} else {
		p.Fault = nil
	}
	return nil
}

// ApplySpecBase is ApplySpec without the fault plan — for harnesses
// (collwall's modes, the tenancy trace) that resolve scenarios themselves.
func (p *Preset) ApplySpecBase(s job.Spec) error {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return err
	}
	p.Seed = s.Seed
	p.Workers = s.Workers
	if s.PEsPerNode != 0 {
		p.Cluster.PEsPerNode = s.PEsPerNode
	}
	p.IntraNode = s.IntraNode
	p.Backend = s.Backend
	p.BBCapacity = s.BBCapacity
	p.BBDrainBW = s.BBDrainBW
	if s.Interleave > 0 {
		p.BurstInterleave = s.Interleave
	}
	return nil
}

// OptionsFor translates the spec's protocol knobs into the core options a
// runner opens files with. BT-IO with subgroups gets the materialized
// intermediate view, matching BTIOScale — the configuration that reproduces
// Figure 10 (BT's scattered cells make direct FA partitioning impossible).
func OptionsFor(s job.Spec) core.Options {
	return core.Options{
		NumGroups:               s.Groups,
		MaterializeIntermediate: s.Workload == job.WorkloadBTIO && s.Groups > 1,
		Hints: mpiio.Hints{
			CBNodes:      s.Hints.CBNodes,
			CBBufferSize: s.Hints.CBBufferSize,
		},
	}
}

// WorkloadFor instantiates the spec's named workload at the preset's
// geometry, with the spec's shape overrides applied, and returns it with
// the cost-scale divisor the runner should build its environment at. The
// returned workloads are the exact values the single-job runners use, so a
// job inside a tenancy trace reproduces the corresponding figure's I/O
// pattern bit-for-bit.
func WorkloadFor(p Preset, s job.Spec) (w SpecWorkload, scale float64, err error) {
	switch s.Workload {
	case job.WorkloadTileIO:
		return SpecWorkload{Tile: &p.Tile}, p.TileScale, nil
	case job.WorkloadIOR:
		return SpecWorkload{IOR: &workload.IOR{Block: p.IORBlock, Transfer: p.IORTransfer}}, p.IORScale, nil
	case job.WorkloadBTIO:
		bt := p.BT
		if s.Steps > 0 {
			bt.Steps = s.Steps
		}
		return SpecWorkload{BT: &bt}, p.BTScale, nil
	case job.WorkloadFlashIO:
		return SpecWorkload{Flash: &p.Flash}, p.FlashScale, nil
	case job.WorkloadCheckpoint:
		cb := p.burstWorkload(s.Compute)
		if s.BlockBytes > 0 {
			cb.BlockBytes = s.BlockBytes
		}
		if s.Steps > 0 {
			cb.Steps = s.Steps
		}
		if s.Interleave > 0 {
			cb.Interleave = s.Interleave
		}
		if cb.Interleave > 0 && cb.BlockBytes%cb.Interleave != 0 {
			return SpecWorkload{}, 0, fmt.Errorf("experiments: interleave %d does not divide block bytes %d", cb.Interleave, cb.BlockBytes)
		}
		return SpecWorkload{Burst: &cb}, p.TileScale, nil
	}
	return SpecWorkload{}, 0, fmt.Errorf("experiments: unknown workload %q", s.Workload)
}

// SpecWorkload is the tagged union WorkloadFor returns: exactly one field
// is non-nil.
type SpecWorkload struct {
	Tile  *workload.TileIO
	IOR   *workload.IOR
	BT    *workload.BTIO
	Flash *workload.FlashIO
	Burst *workload.CheckpointBurst
}

// TraceEnv builds the shared machine for a multi-tenant trace — ONE backend
// (and integrity ledger, under a fault plan) that every job mounts — and
// returns it with a derivation function producing each job's environment
// from its options. The per-job environments share FS, stripe, and ledger;
// only the options differ, exactly as concurrent applications share a file
// system but open files with their own hints. Option normalization (fault
// threading, intra-node hint, scaled collective-buffer default, engine
// worker count) matches the single-job env construction line for line, so
// a job inside a trace opens files identically to the same job run alone.
func (p Preset) TraceEnv(scale float64, plan *fault.Plan) (fs storage.Backend, envOf func(opts core.Options) workload.Env) {
	lcfg := p.Lustre
	lcfg.CostScale = scale
	if !plan.IsZero() {
		lcfg.Faults = plan
	}
	fs = p.newBackend(lcfg)
	var led *storage.Ledger
	if !plan.IsZero() {
		led = storage.NewLedger(p.Seed)
		fs.SetLedger(led)
	}
	stripeSize := int64(4<<20) / int64(scale)
	if stripeSize < 256 {
		stripeSize = 256
	}
	envOf = func(opts core.Options) workload.Env {
		if !plan.IsZero() {
			opts.Run.Fault = plan
		}
		if p.IntraNode {
			opts.Hints.IntraNode = true
		}
		if opts.Hints.CBBufferSize == 0 {
			opts.Hints.CBBufferSize = stripeSize
		}
		if opts.Workers == 0 {
			opts.Workers = p.Workers
		}
		return workload.Env{
			FS:     fs,
			Stripe: storage.Stripe{Count: p.StripeCount, Size: stripeSize},
			Opts:   opts,
			Ledger: led,
		}
	}
	return fs, envOf
}
