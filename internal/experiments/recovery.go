package experiments

// Recovery experiments: the robustness complement to the fault-scenario
// sweeps. Where faults.go measures how perturbations inflate the collective
// wall, these runners measure what happens when components actually die —
// writes run under fail-stop plans, every tile is verified byte-for-byte
// against the deterministic pattern after recovery, and the recovery
// telemetry (detections, failovers, time-to-recover) is aggregated so the
// partitioned and unpartitioned protocols can be compared on how much of the
// machine a failure drags into replanning.

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/recovery"
	"repro/internal/workload"
)

// FailurePoint is one (plan, groups) tile write-under-failure measurement.
type FailurePoint struct {
	Scenario string
	Groups   int
	Elapsed  float64 // global elapsed seconds for the collective write
	Recovery recovery.FailoverStats
	// Verified reports that after the failure-and-recovery run, every
	// rank's tile read back byte-identical to the deterministic pattern —
	// i.e. recovery preserved the data a healthy run would have produced.
	Verified bool
	// Goodput is aggregate verified bytes per elapsed second (zero when
	// verification failed — corrupt bytes are not goodput).
	Goodput float64
}

// TileUnderFailure runs one collective tile write at nprocs ranks and the
// given subgroup count under the fault plan, then verifies every tile
// in-run. The plan may carry crashes, OST failures, and message loss; nil
// runs the healthy reference.
func (p Preset) TileUnderFailure(nprocs, groups int, plan *fault.Plan) FailurePoint {
	opts := core.Options{NumGroups: groups}
	env := p.envPlan(p.TileScale, opts, plan)
	pt := FailurePoint{Groups: groups, Verified: true}
	if plan != nil {
		pt.Scenario = plan.Name
	}
	var virt int64
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, plan, p.Workers, func(r *mpi.Rank) {
		res := p.Tile.Write(r, env, "tile-failure")
		mpi.WorldComm(r).Barrier()
		if err := p.Tile.VerifyTile(r, env, "tile-failure"); err != nil {
			pt.Verified = false
		}
		if r.WorldRank() == 0 && env.Ledger != nil {
			// Integrity audit: every acknowledged store must read back
			// byte-identical to its issue-time digest's bytes.
			lf := env.FS.Open(r, "tile-failure", env.Stripe)
			if err := env.Ledger.VerifyFile("tile-failure", lf); err != nil {
				pt.Verified = false
			}
		}
		if r.WorldRank() == 0 {
			pt.Elapsed = res.Elapsed
			pt.Recovery = res.Recovery
			virt = res.VirtBytes
		}
	})
	if pt.Verified && pt.Elapsed > 0 {
		pt.Goodput = float64(virt) / pt.Elapsed
	}
	return pt
}

// RecoverySuite runs every named scenario, baseline (groups=1) against
// ParColl (the given group count), with in-run verification. The result
// order is fault.Names() order, baseline before ParColl — stable, so tests
// can pin it. The paper's partitioning argument, extended to hard failures:
// under the same crash the unpartitioned protocol replans across the whole
// communicator while ParColl confines detection and failover to the crashed
// aggregator's subgroup, so its time-to-recover must come out strictly
// lower.
func (p Preset) RecoverySuite(nprocs, groups int) []FailurePoint {
	var out []FailurePoint
	for _, name := range fault.Names() {
		plan, err := fault.Scenario(name)
		if err != nil {
			panic(err)
		}
		for _, g := range []int{1, groups} {
			out = append(out, p.TileUnderFailure(nprocs, g, plan))
		}
	}
	return out
}

// BTUnderFailure is TileUnderFailure's BT-IO sibling: Steps solution dumps
// written collectively under the plan, then read back dump-by-dump through
// the same handles and compared to the pattern. Exercises recovery across
// repeated collective calls on one file handle (a corpse detected in call k
// must fail over at round zero of call k+1 without paying the watchdog
// again).
func (p Preset) BTUnderFailure(nprocs, groups int, plan *fault.Plan) FailurePoint {
	opts := core.Options{NumGroups: groups}
	if groups > 1 {
		opts.MaterializeIntermediate = true // match the Figure 10 configuration
	}
	env := p.envPlan(p.BTScale, opts, plan)
	pt := FailurePoint{Groups: groups, Verified: true}
	if plan != nil {
		pt.Scenario = plan.Name
	}
	var virt int64
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, plan, p.Workers, func(r *mpi.Rank) {
		res := p.BT.Write(r, env, "bt-failure")
		comm := mpi.WorldComm(r)
		comm.Barrier()
		f := core.Open(comm, env.FS, "bt-failure", env.Stripe, env.Opts)
		me := r.WorldRank()
		f.SetView(p.BT.View(me, nprocs))
		per := p.BT.DumpBytes(nprocs)
		for s := 0; s < p.BT.Steps; s++ {
			got := f.ReadAtAll(int64(s)*per, per)
			for i, b := range got {
				if b != workload.PatternByte(me, int64(s)*per+int64(i)) {
					pt.Verified = false
					break
				}
			}
		}
		if r.WorldRank() == 0 && env.Ledger != nil {
			lf := env.FS.Open(r, "bt-failure", env.Stripe)
			if err := env.Ledger.VerifyFile("bt-failure", lf); err != nil {
				pt.Verified = false
			}
		}
		if r.WorldRank() == 0 {
			pt.Elapsed = res.Elapsed
			pt.Recovery = res.Recovery
			virt = res.VirtBytes
		}
	})
	if pt.Verified && pt.Elapsed > 0 {
		pt.Goodput = float64(virt) / pt.Elapsed
	}
	return pt
}
