package experiments

// Fault-scenario experiments: the quantitative form of the paper's central
// claim. Section 1 argues that the global synchronization in every
// collective-I/O round couples all processes to the slowest one — the
// "collective wall" — and Section 4 argues that partitioning confines each
// perturbation to one subgroup. Running the same workload under a named
// fault plan with groups=1 (baseline ext2ph) and groups=G (ParColl) makes
// that argument measurable: as straggler severity rises, the baseline's
// elapsed time must degrade strictly faster than ParColl's.

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/workload"
)

// ScenarioPoint is one (plan, groups) tile-IO collective-write measurement.
type ScenarioPoint struct {
	Scenario  string
	Groups    int
	Elapsed   float64 // global elapsed seconds for the collective write
	Breakdown mpiio.Breakdown
	Perturbed uint64 // messages delayed by the perturber (diagnostics)
}

// TileUnderFault runs one collective tile write at nprocs ranks and the
// given subgroup count (1 = baseline ext2ph) under the fault plan, which
// may be nil for a healthy run.
func (p Preset) TileUnderFault(nprocs, groups int, plan *fault.Plan) ScenarioPoint {
	return p.tileUnderFault(nprocs, groups, plan, 0, p.Seed)
}

// tileUnderFault is TileUnderFault with an explicit collective-buffer size
// (0 = preset default; the sweep shrinks it to raise the round count) and
// seed (replicate runs vary it).
func (p Preset) tileUnderFault(nprocs, groups int, plan *fault.Plan, cb, seed int64) ScenarioPoint {
	opts := core.Options{NumGroups: groups}
	opts.Hints.CBBufferSize = cb
	env := p.envPlan(p.TileScale, opts, plan)
	pt := ScenarioPoint{Groups: groups}
	if plan != nil {
		pt.Scenario = plan.Name
	}
	_, st := mpi.RunPlanWorkers(nprocs, p.Cluster, seed, plan, p.Workers, func(r *mpi.Rank) {
		res := p.Tile.Write(r, env, "tile")
		bd := workload.MeanBreakdown(mpi.WorldComm(r), res.Breakdown)
		if r.WorldRank() == 0 {
			pt.Elapsed = res.Elapsed
			pt.Breakdown = bd
		}
	})
	pt.Perturbed = st.Perturbed.Value()
	return pt
}

// ScenarioSuite runs the full named-scenario catalog at nprocs ranks, each
// under baseline (groups=1) and ParColl (the given group count). The
// result order is fault.Names() order, baseline before ParColl — stable,
// so goldens can pin it.
func (p Preset) ScenarioSuite(nprocs, groups int) []ScenarioPoint {
	var out []ScenarioPoint
	for _, name := range fault.Names() {
		plan, err := fault.Scenario(name)
		if err != nil {
			panic(err)
		}
		for _, g := range []int{1, groups} {
			out = append(out, p.TileUnderFault(nprocs, g, plan))
		}
	}
	return out
}

// StragglerPoint compares baseline and ParColl elapsed time at one
// straggler severity.
type StragglerPoint struct {
	Severity float64
	Ext2ph   float64 // groups=1 elapsed, seconds
	ParColl  float64 // groups=G elapsed, seconds
}

// Gap returns how much slower the baseline ran than ParColl, in seconds.
func (s StragglerPoint) Gap() float64 { return s.Ext2ph - s.ParColl }

// StragglerSweep sweeps straggler severity (fault.SeverityPlan) for the
// tile workload, measuring baseline ext2ph against ParColl with the given
// subgroup count at each level. Severity 0 is the healthy reference. The
// paper's claim, quantified: Ext2ph's degradation over its own healthy
// time grows strictly faster with severity than ParColl's, because the
// unpartitioned protocol pays the maximum per-round stall over all nprocs
// ranks every round while ParColl pays only the maximum within each
// subgroup.
// Each point averages sweepReps independent replicates (seeds p.Seed+k):
// the per-round stall maximum is an order statistic, so single runs at few
// rounds are noisy; the replicate mean is what the paper's repeated
// measurements report. The collective buffer is shrunk 4x below the preset
// default to raise the round count — more synchronization points per call,
// which is precisely the regime the collective wall lives in.
func (p Preset) StragglerSweep(nprocs, groups int, severities []float64) []StragglerPoint {
	const sweepReps = 4
	cb := int64(4<<20) / int64(p.TileScale) / 4
	if cb < 256 {
		cb = 256
	}
	out := make([]StragglerPoint, 0, len(severities))
	for _, sev := range severities {
		plan := fault.SeverityPlan(sev)
		var pt StragglerPoint
		pt.Severity = sev
		for k := int64(0); k < sweepReps; k++ {
			pt.Ext2ph += p.tileUnderFault(nprocs, 1, plan, cb, p.Seed+k).Elapsed / sweepReps
			pt.ParColl += p.tileUnderFault(nprocs, groups, plan, cb, p.Seed+k).Elapsed / sweepReps
		}
		out = append(out, pt)
	}
	return out
}
