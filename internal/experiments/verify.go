package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/workload"
)

// Verification runners: each executes a workload with the given ParColl
// options and checks the resulting file byte-for-byte against the
// deterministic data pattern. They are used by the cmd tools' -verify
// flags and by the integration tests.

// VerifyIOR writes the preset's IOR workload and validates every rank's
// slab.
func VerifyIOR(p Preset, nprocs int, opts core.Options) error {
	env := p.env(p.IORScale, opts)
	w := workload.IOR{Block: p.IORBlock, Transfer: p.IORTransfer}
	var firstErr error
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, nil, p.Workers, func(r *mpi.Rank) {
		w.Write(r, env, "ior-verify")
		mpi.WorldComm(r).Barrier()
		if bad := w.Verify(r, env, "ior-verify"); bad >= 0 && firstErr == nil {
			firstErr = fmt.Errorf("ior: rank %d mismatch at offset %d", r.WorldRank(), bad)
		}
	})
	return firstErr
}

// VerifyTile writes the preset's tile workload and validates every tile.
func VerifyTile(p Preset, nprocs int, opts core.Options) error {
	env := p.env(p.TileScale, opts)
	var firstErr error
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, nil, p.Workers, func(r *mpi.Rank) {
		p.Tile.Write(r, env, "tile-verify")
		mpi.WorldComm(r).Barrier()
		if err := p.Tile.VerifyTile(r, env, "tile-verify"); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}

// VerifyBT writes the preset's BT-IO workload and validates all dumps by
// reading them back through the same ParColl handles (round-trip through
// the MPI-IO layer, which is how BT-IO itself verifies; under the default
// materialized intermediate layout the on-disk arrangement differs from
// the unpartitioned protocol's, but views map back identically).
func VerifyBT(p Preset, nprocs int, opts core.Options) error {
	if opts.NumGroups > 1 {
		opts.MaterializeIntermediate = true // match the Figure 10 configuration
	}
	env := p.env(p.BTScale, opts)
	var firstErr error
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, nil, p.Workers, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := core.Open(comm, env.FS, "bt-verify", env.Stripe, env.Opts)
		me := r.WorldRank()
		f.SetView(p.BT.View(me, nprocs))
		per := p.BT.DumpBytes(nprocs)
		data := make([]byte, per)
		for s := 0; s < p.BT.Steps; s++ {
			workload.Fill(data, me, int64(s)*per)
			f.WriteAtAll(int64(s)*per, data)
		}
		comm.Barrier()
		for s := 0; s < p.BT.Steps; s++ {
			got := f.ReadAtAll(int64(s)*per, per)
			for i, b := range got {
				want := workload.PatternByte(me, int64(s)*per+int64(i))
				if b != want && firstErr == nil {
					firstErr = fmt.Errorf("bt: rank %d step %d byte %d: got %d want %d", me, s, i, b, want)
					break
				}
			}
		}
	})
	return firstErr
}

// VerifyFlash writes the preset's Flash checkpoint and validates it.
func VerifyFlash(p Preset, nprocs int, opts core.Options) error {
	env := p.env(p.FlashScale, opts)
	var firstErr error
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, nil, p.Workers, func(r *mpi.Rank) {
		p.Flash.WriteCheckpoint(r, env, "flash-verify")
		mpi.WorldComm(r).Barrier()
		if err := p.Flash.VerifyCheckpoint(r, env, "flash-verify"); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}
