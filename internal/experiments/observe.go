package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Observed bundles one fully instrumented run: the workload result, the raw
// span recorder (for Perfetto export), the final metrics snapshot with the
// engine's and storage layer's counters folded in, and the critical-path
// report over the recorded spans.
type Observed struct {
	Result   workload.Result
	Trace    *trace.Recorder
	Registry *obs.Registry
	Snapshot obs.Snapshot
	Path     obs.Report
}

// Perfetto renders the observed run as a Chrome trace_event JSON array.
func (o Observed) Perfetto() ([]byte, error) {
	return obs.Perfetto(o.Trace, o.Registry)
}

// ObservedTileWrite runs one instrumented tile-IO collective write: a trace
// recorder and metrics registry are threaded through every layer (mpi
// collectives, the lustre service loop, the mpiio round protocol), the
// engine's scheduler counters and per-OST totals are captured after the run,
// and the span set is reduced to a critical path. plan == nil runs healthy;
// the instrumentation is observe-only, so virtual-time results are
// bit-identical to an uninstrumented run of the same configuration (pinned
// by the root obs tests).
func ObservedTileWrite(p Preset, nprocs, groups int, plan *fault.Plan) Observed {
	p.Fault = plan
	rec := trace.New()
	reg := obs.New()
	opts := core.Options{NumGroups: groups, Run: mpiio.RunOptions{Trace: rec, Obs: reg}}
	env := p.env(p.TileScale, opts)
	env.FS.SetObs(reg)
	var res workload.Result
	end, st := mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, p.Fault, p.Workers, func(r *mpi.Rank) {
		r.SetTracer(rec)
		r.SetObs(reg)
		out := p.Tile.Write(r, env, "tile")
		if r.WorldRank() == 0 {
			res = out
		}
	})
	CaptureSim(reg, st)
	CaptureLustre(reg, env.FS, end)
	return Observed{
		Result:   res,
		Trace:    rec,
		Registry: reg,
		Snapshot: reg.Snapshot(),
		Path:     obs.CriticalPath(rec.EventsShared()),
	}
}

// CaptureSim folds the engine's scheduler counters into the registry under
// the "sim." prefix.
func CaptureSim(reg *obs.Registry, st sim.Stats) {
	reg.Counter("sim.resumes").Add(st.Resumes.Value())
	reg.Counter("sim.advances").Add(st.Advances.Value())
	reg.Counter("sim.sends").Add(st.Sends.Value())
	reg.Counter("sim.recvs").Add(st.Recvs.Value())
	reg.Counter("sim.mailbox.exact_pops").Add(st.ExactPops.Value())
	reg.Counter("sim.mailbox.wildcard_pops").Add(st.WildcardPops.Value())
	reg.Counter("sim.mailbox.wildcard_scanned").Add(st.WildcardScanned.Value())
	reg.Counter("sim.perturbed").Add(st.Perturbed.Value())
	reg.Counter("sim.timeouts").Add(st.Timeouts.Value())
	reg.Gauge("sim.ready.max_depth").Set(float64(st.MaxReadyDepth))
}

// CaptureLustre folds the storage backend's per-target totals and — for
// backends with a retry engine — its counters into the registry. The metric
// names keep the historical "lustre." prefix so dashboards and goldens read
// unchanged regardless of which backend served the run. elapsed (the run's
// virtual finish time) turns per-target busy time into a utilization gauge.
func CaptureLustre(reg *obs.Registry, fs storage.Backend, elapsed float64) {
	var reqs, bytes, switches, tails, errs int64
	var busyMax, busyTot float64
	for _, st := range fs.Stats() {
		reqs += st.Requests
		bytes += st.Bytes
		switches += st.Switches
		tails += st.Tails
		errs += st.Errors
		busyTot += st.BusySecs
		if st.BusySecs > busyMax {
			busyMax = st.BusySecs
		}
	}
	reg.Counter("lustre.ost.requests").Add(uint64(reqs))
	reg.Counter("lustre.ost.bytes").Add(uint64(bytes))
	reg.Counter("lustre.ost.switches").Add(uint64(switches))
	reg.Counter("lustre.ost.tails").Add(uint64(tails))
	reg.Counter("lustre.ost.errors").Add(uint64(errs))
	reg.Gauge("lustre.ost.busy.total_secs").Set(busyTot)
	reg.Gauge("lustre.ost.busy.max_secs").Set(busyMax)
	if elapsed > 0 {
		reg.Gauge("lustre.ost.utilization.max").Set(busyMax / elapsed)
	}
	rs := fs.RetryStats()
	reg.Counter("lustre.retry.attempts").Add(rs.Attempts)
	reg.Counter("lustre.retry.failures").Add(rs.Failures)
	reg.Counter("lustre.retry.exhausted").Add(rs.Exhausted)

	// Per-job attribution: multi-tenant runs get one bucket per JobID that
	// recorded retry events. Single-job tools degrade to a lone "job0"
	// bucket (their ranks all carry JobID 0); when the backend has only
	// node-scoped counters with no issuing job (a staging tier's background
	// drains), the aggregate is reported as job0 so the telemetry never
	// silently drops work.
	by := fs.RetryStatsByJob()
	if len(by) == 0 && rs != (recovery.RetryStats{}) {
		by = map[int]recovery.RetryStats{0: rs}
	}
	ids := make([]int, 0, len(by))
	for id := range by {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		jr := by[id]
		prefix := fmt.Sprintf("lustre.retry.job%d.", id)
		reg.Counter(prefix + "attempts").Add(jr.Attempts)
		reg.Counter(prefix + "retries").Add(jr.Retries)
		reg.Counter(prefix + "failures").Add(jr.Failures)
		reg.Counter(prefix + "breaker_opens").Add(jr.BreakerOpens)
		reg.Counter(prefix + "exhausted").Add(jr.Exhausted)
		reg.Gauge(prefix + "backoff_secs").Set(jr.BackoffSecs)
	}
}
