// Package experiments reproduces the paper's evaluation (Figures 1-2 and
// 6-11). Each runner builds a fresh simulated machine and file system,
// executes the workload at the requested scale, and returns structured
// points that the cmd tools, benchmarks, and EXPERIMENTS.md assertions all
// share.
//
// Scaling: workloads run with real buffers shrunk by a cost-scale divisor;
// the virtual-time cost model charges for paper-sized data, so reported
// bandwidths are for the paper's workload sizes. The divisor per workload
// is documented on the preset.
package experiments

import (
	"fmt"

	"repro/internal/bb"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/pvfs"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Preset bundles the scaled workload parameters for one fidelity level.
type Preset struct {
	Name string

	// Machine.
	Cluster cluster.Config
	// Storage model; CostScale is overridden per experiment.
	Lustre lustre.Config

	// Tile-IO (Figs 1, 2, 7, 8, 9): the paper's 1024x768-element tiles of
	// 64-byte elements (48 MB/process), shrunk by TileScale.
	Tile      workload.TileIO
	TileScale float64

	// IOR (Fig 6): 512 MB/process in 4 MB transfers, shrunk by IORScale.
	IORBlock, IORTransfer int64
	IORScale              float64

	// BT-IO (Fig 10): class C's 162^3 x 40 B solution approximated by an
	// N^3 cube of Elem-byte cells, shrunk by BTScale.
	BT      workload.BTIO
	BTScale float64

	// Flash (Fig 11): 32^3-cell blocks, 24 unknowns, shrunk by FlashScale.
	Flash      workload.FlashIO
	FlashScale float64

	// Shared file layout and collective buffer, already divided by the
	// workload scale where used (stripe/cb must shrink with the data so
	// round and request counts match the paper's).
	StripeCount int
	Seed        int64

	// Fault, when non-nil, applies a fault plan to every runner of this
	// preset: the cmd tools' -scenario flag sets it so any figure can be
	// re-measured under a named fault scenario. Runners that take an
	// explicit plan (TileUnderFailure, RecoverySuite, ...) ignore it in
	// favor of their own.
	Fault *fault.Plan

	// Workers selects the simulation engine for every runner of this
	// preset: <= 1 the serial scheduler, > 1 the conservative parallel one
	// with that many domain workers (DESIGN.md §12). Results are
	// bit-identical either way; only wall-clock time changes. The cmd
	// tools' -workers flag sets it.
	Workers int

	// IntraNode turns on two-level collective I/O for every runner of this
	// preset (DESIGN.md §13): PEs sharing a node aggregate into their node
	// leader before any traffic crosses the NIC. Pair with
	// Cluster.PEsPerNode > 2 to model fat multicore nodes; the cmd tools'
	// -intranode and -pes-per-node flags set both.
	IntraNode bool

	// Backend selects the storage backend every runner builds (DESIGN.md
	// §14): "lustre" (or empty) the reference OST model, "listio" the
	// PVFS-style list-I/O server farm on the same hardware numbers, "bb"
	// the node-local burst-buffer tier staged over lustre. The cmd tools'
	// -backend flag sets it. Fault plans that degrade OSTs reach only the
	// lustre-family backends ("lustre", "bb"); the listio farm models a
	// healthy cluster.
	Backend string
	// BBCapacity is the per-node staging capacity in virtual bytes for the
	// "bb" backend (0 = unlimited); -bb-capacity.
	BBCapacity int64
	// BBDrainBW is the per-node drain bandwidth in bytes/second for the
	// "bb" backend (0 = the under-backend's native pace); -bb-drain-bw.
	BBDrainBW float64

	// BurstInterleave, when positive, makes the checkpoint-burst runners
	// stripe each rank's per-step block across the step's file range in
	// chunks of this many real bytes (workload.CheckpointBurst.Interleave):
	// the strided N-1 checkpoint whose dumps exercise the collective
	// exchange, so the group count matters. Zero keeps the contiguous
	// layout used by the published backend-sweep numbers.
	BurstInterleave int64
}

// PaperPreset runs the paper's workload geometry shrunk 4096x (tile/IOR)
// with proportional stripe and buffer sizes: 72 OSTs, 64-way striping,
// 2 PEs per node, SeaStar-class network.
func PaperPreset() Preset {
	return Preset{
		Name:    "paper/4096",
		Cluster: cluster.DefaultConfig(),
		Lustre:  lustre.DefaultConfig(),
		// 48 MB/process virtual -> 12 KB real. Rows keep the paper's
		// granularity: a 64 KB tile row becomes 16 real bytes, and the
		// full 768-row count is preserved so the per-request overhead
		// penalty of fine-grained I/O matches the paper's.
		Tile:      workload.TileIO{TileX: 16, TileY: 768, Elem: 1},
		TileScale: 4096,
		// 512 MB/process virtual -> 128 KB real, 4 MB -> 1 KB transfers.
		IORBlock:    128 << 10,
		IORTransfer: 1 << 10,
		IORScale:    4096,
		// Class C solution (~170 MB/dump) -> 144^3 x 1 B = 2.99 MB real.
		BT:      workload.BTIO{N: 144, Elem: 1, Steps: 10},
		BTScale: 57,
		// 19.8 MB/proc/var virtual -> 7.3 KB real: the paper's ~76 blocks
		// of 32^3 doubles per process become 76 blocks of 96 real bytes
		// (243 KB virtual each), preserving the request-count profile.
		Flash:       workload.FlashIO{NxB: 2, NyB: 2, NzB: 3, NBlocks: 76, NVars: 24, Elem: 8},
		FlashScale:  2530,
		StripeCount: 64,
		Seed:        1,
	}
}

// BenchPreset is a smaller-geometry preset for the root benchmarks: same
// shapes at lower process counts and sizes, so `go test -bench` finishes
// quickly.
func BenchPreset() Preset {
	p := PaperPreset()
	p.Name = "bench/quick"
	p.Tile = workload.TileIO{TileX: 16, TileY: 96, Elem: 1}
	p.IORBlock = 16 << 10
	p.BT = workload.BTIO{N: 48, Elem: 1, Steps: 4}
	p.BTScale = 1540
	p.Flash = workload.FlashIO{NxB: 2, NyB: 2, NzB: 3, NBlocks: 16, NVars: 8, Elem: 8}
	return p
}

// EnvFor builds the environment a runner would use at the given scale
// (exported for the cmd tools and ad-hoc harnesses).
func EnvFor(p Preset, scale float64, opts core.Options) workload.Env {
	return p.env(scale, opts)
}

// env builds a fresh file system environment for one run, under the
// preset's fault plan (nil = healthy).
func (p Preset) env(scale float64, opts core.Options) workload.Env {
	return p.envPlan(scale, opts, p.Fault)
}

// run executes body on nprocs ranks under the preset's fault plan. All
// catalog runners go through here, so setting Preset.Fault perturbs every
// figure consistently.
func (p Preset) run(nprocs int, body func(r *mpi.Rank)) float64 {
	end, _ := mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, p.Fault, p.Workers, body)
	return end
}

// envPlan is env with a fault plan threaded through every layer that
// consumes one: the lustre config (OST degradation) and the MPI-IO hints
// (per-round compute noise). The sim- and cluster-level parts of the plan
// are installed by mpi.RunPlan at run time.
func (p Preset) envPlan(scale float64, opts core.Options, plan *fault.Plan) workload.Env {
	lcfg := p.Lustre
	lcfg.CostScale = scale
	if !plan.IsZero() {
		lcfg.Faults = plan
		opts.Run.Fault = plan
	}
	if p.IntraNode {
		opts.Hints.IntraNode = true
	}
	stripeSize := int64(4<<20) / int64(scale)
	if stripeSize < 256 {
		stripeSize = 256
	}
	if opts.Hints.CBBufferSize == 0 {
		opts.Hints.CBBufferSize = stripeSize // cb_buffer = 4 MB virtual
	}
	if opts.Workers == 0 {
		opts.Workers = p.Workers
	}
	env := workload.Env{
		FS:     p.newBackend(lcfg),
		Stripe: storage.Stripe{Count: p.StripeCount, Size: stripeSize},
		Opts:   opts,
	}
	if !plan.IsZero() {
		// Faulted runs carry the integrity audit: every acknowledged store
		// is digested at issue time and recovery runners verify read-back
		// against it. Recording is free in virtual time and draw-free.
		led := storage.NewLedger(p.Seed)
		env.FS.SetLedger(led)
		env.Ledger = led
	}
	return env
}

// BackendNames lists the -backend flag's valid values.
func BackendNames() []string { return []string{"lustre", "listio", "bb"} }

// newBackend builds the preset's storage backend from the (already
// fault-threaded, cost-scaled) lustre config. The listio farm reuses the
// lustre hardware numbers so sweeps isolate the protocol difference; the
// bb tier stages over a lustre instance built from the same config.
func (p Preset) newBackend(lcfg lustre.Config) storage.Backend {
	switch p.Backend {
	case "", "lustre":
		return lustre.NewFS(lcfg)
	case "listio":
		return pvfs.NewFS(pvfs.Config{
			NumServers:      lcfg.NumOSTs,
			ServerBandwidth: lcfg.OSTBandwidth,
			RequestOverhead: lcfg.RequestOverhead,
			OpenCost:        lcfg.OpenCost,
			CostScale:       lcfg.CostScale,
			Jitter:          lcfg.Jitter,
			Seed:            lcfg.Seed,
			Faults:          lcfg.Faults,
			Retry:           lcfg.Retry,
		})
	case "bb":
		return bb.New(lustre.NewFS(lcfg), bb.Config{
			Capacity:       p.BBCapacity,
			DrainBandwidth: p.BBDrainBW,
			Seed:           lcfg.Seed,
			Faults:         lcfg.Faults,
			Retry:          lcfg.Retry,
		})
	default:
		panic(fmt.Sprintf("experiments: unknown backend %q (want lustre|listio|bb)", p.Backend))
	}
}

// WallPoint is one process count's collective-I/O time breakdown under the
// baseline (unpartitioned) protocol — the data behind Figures 1 and 2.
type WallPoint struct {
	Procs     int
	Breakdown mpiio.Breakdown // mean across ranks, seconds
}

// SyncShare returns the synchronization fraction of total processing time.
func (w WallPoint) SyncShare() float64 {
	t := w.Breakdown.Total()
	if t == 0 {
		return 0
	}
	return w.Breakdown.Sync / t
}

// CollectiveWall profiles baseline collective writes of the tile workload
// across process counts (Figures 1 and 2).
func (p Preset) CollectiveWall(procs []int) []WallPoint {
	out := make([]WallPoint, 0, len(procs))
	for _, n := range procs {
		pt, _ := p.CollectiveWallStats(n)
		out = append(out, pt)
	}
	return out
}

// CollectiveWallStats runs one CollectiveWall point and also returns the
// simulation engine's scheduler counters, for benchmark harnesses that
// report simulator throughput.
func (p Preset) CollectiveWallStats(n int) (WallPoint, sim.Stats) {
	env := p.env(p.TileScale, core.Options{})
	var bd mpiio.Breakdown
	_, st := mpi.RunPlanWorkers(n, p.Cluster, p.Seed, p.Fault, p.Workers, func(r *mpi.Rank) {
		res := p.Tile.Write(r, env, "tile")
		m := workload.MeanBreakdown(mpi.WorldComm(r), res.Breakdown)
		if r.WorldRank() == 0 {
			bd = m
		}
	})
	return WallPoint{Procs: n, Breakdown: bd}, st
}

// GroupPoint is one subgroup count's tile-IO performance (Figures 7, 8).
type GroupPoint struct {
	Groups    int
	WriteBW   float64 // bytes/s
	ReadBW    float64
	Sync      float64 // mean seconds in synchronization during the write
	SyncShare float64
	Mode      core.Mode
}

// TileGroupSweep measures tile-IO write and read bandwidth against the
// number of ParColl subgroups (Figures 7 and 8). Groups == 1 is the
// baseline protocol ("Cray" series).
func (p Preset) TileGroupSweep(nprocs int, groups []int) []GroupPoint {
	out := make([]GroupPoint, 0, len(groups))
	for _, g := range groups {
		env := p.env(p.TileScale, core.Options{NumGroups: g})
		var pt GroupPoint
		pt.Groups = g
		p.run(nprocs, func(r *mpi.Rank) {
			comm := mpi.WorldComm(r)
			wres := p.Tile.Write(r, env, "tile")
			rres := p.Tile.Read(r, env, "tile")
			wm := workload.MeanBreakdown(comm, wres.Breakdown)
			if r.WorldRank() == 0 {
				pt.WriteBW = wres.Bandwidth()
				pt.ReadBW = rres.Bandwidth()
				pt.Mode = wres.Plan.Mode
				pt.Sync = wm.Sync
				if t := wm.Total(); t > 0 {
					pt.SyncShare = wm.Sync / t
				}
			}
		})
		out = append(out, pt)
	}
	return out
}

// IORPoint is one (procs, groups) IOR bandwidth sample (Figure 6).
type IORPoint struct {
	Procs  int
	Groups int
	BW     float64
}

// IORGroups measures IOR shared-file collective-write bandwidth for each
// process count and subgroup count (Figure 6).
func (p Preset) IORGroups(procs []int, groupsFor func(nprocs int) []int) []IORPoint {
	var out []IORPoint
	for _, n := range procs {
		for _, g := range groupsFor(n) {
			env := p.env(p.IORScale, core.Options{NumGroups: g})
			w := workload.IOR{Block: p.IORBlock, Transfer: p.IORTransfer}
			var bw float64
			p.run(n, func(r *mpi.Rank) {
				res := w.Write(r, env, "ior")
				if r.WorldRank() == 0 {
					bw = res.Bandwidth()
				}
			})
			out = append(out, IORPoint{Procs: n, Groups: g, BW: bw})
		}
	}
	return out
}

// ScalePoint compares baseline and best-ParColl tile-IO write bandwidth at
// one process count (Figure 9).
type ScalePoint struct {
	Procs      int
	BaselineBW float64
	ParCollBW  float64
	BestGroups int
}

// TileScalability sweeps process counts, picking ParColl's best subgroup
// count from candidates (Figure 9).
func (p Preset) TileScalability(procs []int, candidates func(nprocs int) []int) []ScalePoint {
	var out []ScalePoint
	for _, n := range procs {
		pt := ScalePoint{Procs: n}
		for _, g := range append([]int{1}, candidates(n)...) {
			env := p.env(p.TileScale, core.Options{NumGroups: g})
			var bw float64
			p.run(n, func(r *mpi.Rank) {
				res := p.Tile.Write(r, env, "tile")
				if r.WorldRank() == 0 {
					bw = res.Bandwidth()
				}
			})
			if g == 1 {
				pt.BaselineBW = bw
			} else if bw > pt.ParCollBW {
				pt.ParCollBW = bw
				pt.BestGroups = g
			}
		}
		out = append(out, pt)
	}
	return out
}

// BTPoint compares baseline and ParColl BT-IO bandwidth (Figure 10).
type BTPoint struct {
	Procs      int
	BaselineBW float64
	ParCollBW  float64
	BestGroups int
}

// BTIOScale sweeps (square) process counts for BT-IO full mode
// (Figure 10). BT-IO's scattered pattern exercises intermediate file views.
func (p Preset) BTIOScale(procs []int, candidates func(nprocs int) []int) []BTPoint {
	var out []BTPoint
	for _, n := range procs {
		pt := BTPoint{Procs: n}
		for _, g := range append([]int{1}, candidates(n)...) {
			// BT-IO's pattern (c) runs with the materialized intermediate
			// view — the configuration that reproduces the paper's Figure
			// 10 (see DESIGN.md on the layout interpretation).
			env := p.env(p.BTScale, core.Options{NumGroups: g, MaterializeIntermediate: g > 1})
			var bw float64
			p.run(n, func(r *mpi.Rank) {
				res := p.BT.Write(r, env, "bt")
				if r.WorldRank() == 0 {
					bw = res.Bandwidth()
				}
			})
			if g == 1 {
				pt.BaselineBW = bw
			} else if bw > pt.ParCollBW {
				pt.ParCollBW = bw
				pt.BestGroups = g
			}
		}
		out = append(out, pt)
	}
	return out
}

// FlashPoint is one Flash I/O checkpoint configuration (Figure 11).
type FlashPoint struct {
	Label string
	BW    float64
}

// FlashSeries measures checkpoint bandwidth for the paper's Figure 11
// series: the default aggregator selection and a 64-aggregator hint, each
// baseline vs ParColl-N, plus the no-collective-I/O reference.
func (p Preset) FlashSeries(nprocs, ngroups, hintAggs int) []FlashPoint {
	runOne := func(label string, opts core.Options, indep bool) FlashPoint {
		env := p.env(p.FlashScale, opts)
		var bw float64
		p.run(nprocs, func(r *mpi.Rank) {
			var res workload.Result
			if indep {
				res = p.Flash.WriteCheckpointIndependent(r, env, "flash")
			} else {
				res = p.Flash.WriteCheckpoint(r, env, "flash")
			}
			if r.WorldRank() == 0 {
				bw = res.Bandwidth()
			}
		})
		return FlashPoint{Label: label, BW: bw}
	}
	aggHint := mpiio.Hints{CBNodes: hintAggs}
	return []FlashPoint{
		runOne("Cray (default aggs)", core.Options{}, false),
		runOne("ParColl (default aggs)", core.Options{NumGroups: ngroups}, false),
		runOne(fmt.Sprintf("Cray (%d aggs)", hintAggs), core.Options{Hints: aggHint}, false),
		runOne(fmt.Sprintf("ParColl (%d aggs)", hintAggs), core.Options{NumGroups: ngroups, Hints: aggHint}, false),
		runOne("Cray w/o Coll", core.Options{}, true),
	}
}
