package experiments

import (
	"repro/internal/core"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/obs"
	"repro/internal/workload"
)

// IntraNodePoint is one (PEs-per-node, protocol) sample of the fat-node
// sweep: an interleaved shared-file write's time breakdown next to the
// obs-counted point-to-point traffic, split by whether each message stayed
// on its node or crossed the NIC. The two-level protocol's whole case rests
// on the Inter* columns: with aggregation on, only node leaders inject into
// the network, so cross-node message counts drop while intra-node counts
// rise.
type IntraNodePoint struct {
	PEsPerNode int
	Aggs       int  // aggregator count (cb_nodes), fixed across the sweep
	IntraNode  bool // two-level protocol on?
	Elapsed    float64
	Breakdown  mpiio.Breakdown // mean across ranks, seconds
	IntraMsgs  uint64          // p2p messages that stayed on-node
	IntraBytes uint64
	InterMsgs  uint64 // p2p messages that crossed the NIC
	InterBytes uint64
}

// SyncShare returns the synchronization fraction of total processing time.
func (p IntraNodePoint) SyncShare() float64 {
	t := p.Breakdown.Total()
	if t == 0 {
		return 0
	}
	return p.Breakdown.Sync / t
}

// IntraNodeSweep measures a fine-grained strided-IOR shared-file write at
// each PEs-per-node count, flat protocol then two-level, on the same machine
// geometry — the data behind the fat-node section of EXPERIMENTS.md. Two
// choices make it the two-level protocol's home turf (and the flat
// protocol's worst case): the aggregator count is pinned (cb_nodes = aggs)
// while node fatness grows, so each node holds more and more PEs whose
// chunks fall in the same remote aggregator's file domain; and the pieces
// are 64-byte slivers at cost scale 1, so the exchange is per-message
// overhead, not bandwidth. The flat protocol then sends every PE's sliver
// as its own NIC message where the two-level one merges a whole node's into
// one leader message — a cross-node message reduction approaching the
// PEs-per-node factor. Each run is instrumented with a metrics registry so
// the per-level message counters are exact counts, not estimates; the
// instrumentation is observe-only and does not perturb virtual time.
func (p Preset) IntraNodeSweep(nprocs, aggs int, pesPerNode []int) []IntraNodePoint {
	var out []IntraNodePoint
	for _, pes := range pesPerNode {
		for _, intra := range []bool{false, true} {
			out = append(out, p.IntraNodePoint(nprocs, aggs, pes, intra))
		}
	}
	return out
}

// IntraNodePoint runs one instrumented fine-grained strided write with the
// given node fatness, aggregator count, and protocol, and returns its
// sample. The geometry is fixed (4 KB per rank in 64-byte slivers, 1 KB
// collective buffer, unscaled costs) so points differ only in topology and
// protocol.
func (p Preset) IntraNodePoint(nprocs, aggs, pesPerNode int, intra bool) IntraNodePoint {
	p.Cluster.PEsPerNode = pesPerNode
	reg := obs.New()
	lcfg := p.Lustre
	lcfg.CostScale = 1
	env := workload.Env{
		FS:     lustre.NewFS(lcfg),
		Stripe: lustre.StripeInfo{Count: p.StripeCount, Size: 4096},
		Opts: core.Options{Hints: mpiio.Hints{
			CBNodes: aggs, CBBufferSize: 1024, IntraNode: intra,
		}},
	}
	w := workload.IOR{Block: 4096, Transfer: 64, Strided: true}
	var bd mpiio.Breakdown
	var res workload.Result
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, p.Fault, p.Workers, func(r *mpi.Rank) {
		r.SetObs(reg)
		out := w.Write(r, env, "ior-strided")
		m := workload.MeanBreakdown(mpi.WorldComm(r), out.Breakdown)
		if r.WorldRank() == 0 {
			res = out
			bd = m
		}
	})
	return IntraNodePoint{
		PEsPerNode: pesPerNode,
		Aggs:       aggs,
		IntraNode:  intra,
		Elapsed:    res.Elapsed,
		Breakdown:  bd,
		IntraMsgs:  reg.Counter("mpi.p2p.intra.msgs").Value(),
		IntraBytes: reg.Counter("mpi.p2p.intra.bytes").Value(),
		InterMsgs:  reg.Counter("mpi.p2p.inter.msgs").Value(),
		InterBytes: reg.Counter("mpi.p2p.inter.bytes").Value(),
	}
}
