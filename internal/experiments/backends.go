package experiments

import (
	"fmt"

	"repro/internal/bb"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/workload"
)

// BackendPoint is one backend's run of the strided IOR workload — the
// noncontiguous pattern where list-I/O pays off: every flush round's dirty
// set is many extents, which the lustre model serves one RPC each and the
// listio farm serves in one request per touched server.
type BackendPoint struct {
	Backend   string
	Elapsed   float64 // end-to-end seconds
	BW        float64 // bytes/second at the workload's virtual size
	Requests  int64   // storage requests served (per-target sum)
	VirtBytes int64   // virtual bytes served by the targets (conservation check)
}

// BackendSweep runs the strided IOR write — independent I/O, the paper's
// "w/o Coll" baseline, where every transfer is a pile of noncontiguous
// segments — on each named backend at the preset's IOR geometry, and
// returns one point per backend, plus a byte-exact read-back verification
// on every run. The request counts are the acceptance handle: listio's
// vectored requests must serve strictly fewer server round-trips than
// lustre's per-extent ones while the target-served bytes agree.
func (p Preset) BackendSweep(nprocs int, backends []string) []BackendPoint {
	out := make([]BackendPoint, 0, len(backends))
	for _, b := range backends {
		q := p
		q.Backend = b
		env := q.env(q.IORScale, core.Options{})
		w := workload.IOR{Block: p.IORBlock, Transfer: p.IORTransfer, Strided: true}
		pt := BackendPoint{Backend: b}
		q.run(nprocs, func(r *mpi.Rank) {
			res := w.WriteIndependent(r, env, "bsweep")
			if bad := w.Verify(r, env, "bsweep"); bad >= 0 {
				panic(fmt.Sprintf("backend %s: rank %d data mismatch at %d", b, r.WorldRank(), bad))
			}
			if r.WorldRank() == 0 {
				pt.Elapsed = res.Elapsed
				pt.BW = res.Bandwidth()
			}
		})
		for _, st := range env.FS.Stats() {
			pt.Requests += st.Requests
			pt.VirtBytes += st.Bytes
		}
		out = append(out, pt)
	}
	return out
}

// BurstPoint is one backend's run of the checkpoint-burst scenario.
type BurstPoint struct {
	Backend   string
	Ratio     float64 // compute seconds per step / reference I/O seconds per step
	WriteSecs float64 // summed global spans of the collective write calls
	DrainSecs float64 // global span of the final drain barrier
	Elapsed   float64 // end-to-end seconds including compute and drain
	BW        float64
}

// burstWorkload is the checkpoint geometry shared by the sweep: the tile
// preset's per-rank byte count as contiguous N-1 checkpoint blocks.
func (p Preset) burstWorkload(compute float64) workload.CheckpointBurst {
	return workload.CheckpointBurst{
		BlockBytes: p.Tile.TileBytes(),
		Steps:      4,
		Compute:    compute,
		Interleave: p.BurstInterleave,
	}
}

// CheckpointBurst runs the checkpoint-burst scenario — compute phases
// interleaved with collective dumps, drain forced at the end — on each
// named backend. ratio sets each step's compute as a multiple of the
// reference per-step I/O time, which is measured first on the plain lustre
// backend with zero compute (the same convention as the overlap sweep). At
// ratio >= 1 a staging tier has a whole I/O-time of compute per step to
// hide each drain under, so its write-call seconds must drop strictly
// below lustre's. Every run is verified byte-exact after its drain.
func (p Preset) CheckpointBurst(nprocs int, ratio float64, backends []string) []BurstPoint {
	// Reference: per-step collective write time on pass-through lustre.
	ref := p
	ref.Backend = "lustre"
	refEnv := ref.env(ref.TileScale, core.Options{})
	refW := ref.burstWorkload(0)
	var refPerStep float64
	ref.run(nprocs, func(r *mpi.Rank) {
		res := refW.Run(r, refEnv, "ckpt-ref")
		if r.WorldRank() == 0 {
			refPerStep = res.WriteSecs / float64(refW.Steps)
		}
	})
	compute := ratio * refPerStep

	out := make([]BurstPoint, 0, len(backends))
	for _, b := range backends {
		q := p
		q.Backend = b
		env := q.env(q.TileScale, core.Options{})
		w := q.burstWorkload(compute)
		pt := BurstPoint{Backend: b, Ratio: ratio}
		q.run(nprocs, func(r *mpi.Rank) {
			res := w.Run(r, env, "ckpt")
			if err := w.Verify(r, env, "ckpt"); err != nil {
				panic(fmt.Sprintf("backend %s: checkpoint read-back: %v", b, err))
			}
			if r.WorldRank() == 0 {
				pt.WriteSecs = res.WriteSecs
				pt.DrainSecs = res.DrainSecs
				pt.Elapsed = res.Elapsed
				pt.BW = res.Bandwidth()
			}
		})
		out = append(out, pt)
	}
	return out
}

// BackendFor exposes the preset's backend construction at an explicit cost
// scale (for harnesses that need a bare backend without a workload Env).
func (p Preset) BackendFor(scale float64) storage.Backend {
	lcfg := p.Lustre
	lcfg.CostScale = scale
	return p.newBackend(lcfg)
}

// BurstFailurePoint is one checkpoint burst under a storage-tier fault plan.
type BurstFailurePoint struct {
	Backend   string
	Scenario  string
	Groups    int
	WriteSecs float64 // summed global spans of the collective write calls
	DrainSecs float64 // global span of the drain barrier, re-dump included
	Elapsed   float64 // end-to-end seconds
	// Verified reports byte-exact read-back AND a clean integrity-ledger
	// audit (every extent acknowledged at issue time reads back identical).
	Verified bool
	// Goodput is aggregate verified bytes per elapsed second (zero when
	// verification failed — corrupt bytes are not goodput).
	Goodput  float64
	Recovery recovery.FailoverStats
	// LostBytes/Redumped are the staging tier's loss ledger (zero off bb).
	LostBytes int64
	Redumped  int64
	// Breakdown is rank 0's phase accounting — under failure the sync
	// share carries the resilient protocol's announce/watchdog traffic.
	Breakdown mpiio.Breakdown
}

// CheckpointBurstUnderFailure runs the checkpoint-burst scenario on the
// preset's backend under a storage-tier fault plan — the "checkpoint burst
// under failure" experiment: a staging node dies mid-dump, the loss
// surfaces at the write call or the drain barrier, the lost blocks are
// re-dumped (collective redumpLost for the open call, the workload's
// regenerate-and-rewrite loop at the barrier), and the run must still end
// with a checksum-verified, byte-exact checkpoint. ratio sets per-step
// compute as a multiple of the reference per-step I/O time (measured on
// healthy pass-through lustre, as in CheckpointBurst); plan == nil runs the
// healthy reference for goodput-degradation comparisons.
func (p Preset) CheckpointBurstUnderFailure(nprocs, groups int, ratio float64, plan *fault.Plan) BurstFailurePoint {
	ref := p
	ref.Backend = "lustre"
	ref.Fault = nil
	refEnv := ref.envPlan(ref.TileScale, core.Options{NumGroups: groups}, nil)
	refW := ref.burstWorkload(0)
	var refPerStep float64
	ref.run(nprocs, func(r *mpi.Rank) {
		res := refW.Run(r, refEnv, "ckpt-ref")
		if r.WorldRank() == 0 {
			refPerStep = res.WriteSecs / float64(refW.Steps)
		}
	})

	env := p.envPlan(p.TileScale, core.Options{NumGroups: groups}, plan)
	w := p.burstWorkload(ratio * refPerStep)
	pt := BurstFailurePoint{Backend: env.FS.Name(), Groups: groups, Verified: true}
	if plan != nil {
		pt.Scenario = plan.Name
	}
	var virt int64
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, plan, p.Workers, func(r *mpi.Rank) {
		res := w.Run(r, env, "ckpt-fail")
		mpi.WorldComm(r).Barrier()
		if err := w.Verify(r, env, "ckpt-fail"); err != nil {
			pt.Verified = false
		}
		if r.WorldRank() == 0 {
			if env.Ledger != nil {
				lf := env.FS.Open(r, "ckpt-fail", env.Stripe)
				if err := env.Ledger.VerifyFile("ckpt-fail", lf); err != nil {
					pt.Verified = false
				}
			}
			pt.WriteSecs = res.WriteSecs
			pt.DrainSecs = res.DrainSecs
			pt.Elapsed = res.Elapsed
			pt.Recovery = res.Recovery
			pt.Breakdown = res.Breakdown
			virt = res.VirtBytes
		}
	})
	if tier, ok := env.FS.(*bb.Tier); ok {
		pt.LostBytes, pt.Redumped = tier.FaultCounters()
	}
	if pt.Verified && pt.Elapsed > 0 {
		pt.Goodput = float64(virt) / pt.Elapsed
	}
	return pt
}
