package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mpiio"
)

// These are the reproduction's integration tests: each asserts that a
// paper figure's qualitative shape — who wins, what grows, where the
// turnover sits — holds in the simulation at laptop scale. Absolute
// magnitudes are checked loosely; EXPERIMENTS.md records the measured
// numbers next to the paper's.

func testPreset() Preset {
	return PaperPreset()
}

func TestFig1SyncShareGrowsWithProcs(t *testing.T) {
	p := testPreset()
	pts := p.CollectiveWall([]int{16, 64})
	if pts[0].SyncShare() >= pts[1].SyncShare() {
		t.Errorf("sync share did not grow: %d procs %.2f vs %d procs %.2f",
			pts[0].Procs, pts[0].SyncShare(), pts[1].Procs, pts[1].SyncShare())
	}
	if pts[1].SyncShare() < 0.5 {
		t.Errorf("collective wall missing: sync share at 64 procs = %.2f, want > 0.5",
			pts[1].SyncShare())
	}
}

func TestFig2SyncGrowsFasterThanExchangeAndIO(t *testing.T) {
	p := testPreset()
	pts := p.CollectiveWall([]int{16, 64})
	syncGrowth := pts[1].Breakdown.Sync / pts[0].Breakdown.Sync
	ioGrowth := pts[1].Breakdown.IO / pts[0].Breakdown.IO
	if syncGrowth <= ioGrowth {
		t.Errorf("sync growth %.2fx not faster than io growth %.2fx", syncGrowth, ioGrowth)
	}
}

func TestFig7GroupSweepShape(t *testing.T) {
	p := testPreset()
	pts := p.TileGroupSweep(64, []int{1, 4, 8, 64})
	base := pts[0]
	var best GroupPoint
	for _, pt := range pts {
		if pt.WriteBW > best.WriteBW {
			best = pt
		}
	}
	if best.Groups == 1 {
		t.Fatalf("no ParColl group count beat the baseline: %+v", pts)
	}
	if best.WriteBW < base.WriteBW*1.5 {
		t.Errorf("best ParColl %.0f MB/s < 1.5x baseline %.0f MB/s",
			best.WriteBW/1e6, base.WriteBW/1e6)
	}
	// Over-partitioning (one proc per group) must fall off the peak.
	over := pts[len(pts)-1]
	if over.Groups != 64 {
		t.Fatal("test expects the last point to be fully partitioned")
	}
	if over.WriteBW >= best.WriteBW {
		t.Errorf("over-partitioned %.0f MB/s did not drop below peak %.0f MB/s",
			over.WriteBW/1e6, best.WriteBW/1e6)
	}
}

func TestFig8SyncCostFallsWithGroups(t *testing.T) {
	p := testPreset()
	pts := p.TileGroupSweep(64, []int{1, 8})
	if pts[1].Sync >= pts[0].Sync {
		t.Errorf("ParColl-8 sync %.3fs not below baseline %.3fs", pts[1].Sync, pts[0].Sync)
	}
}

func TestFig9SpeedupGrowsWithScale(t *testing.T) {
	p := testPreset()
	pts := p.TileScalability([]int{16, 64}, func(n int) []int { return []int{n / 8} })
	sp := func(pt ScalePoint) float64 { return pt.ParCollBW / pt.BaselineBW }
	if sp(pts[1]) <= sp(pts[0]) {
		t.Errorf("speedup did not grow with procs: %.2fx at %d vs %.2fx at %d",
			sp(pts[0]), pts[0].Procs, sp(pts[1]), pts[1].Procs)
	}
	if sp(pts[1]) < 1.2 {
		t.Errorf("ParColl speedup at 64 procs only %.2fx", sp(pts[1]))
	}
}

func TestFig10BTIOParCollWins(t *testing.T) {
	p := testPreset()
	pts := p.BTIOScale([]int{16}, func(int) []int { return []int{4} })
	if pts[0].ParCollBW <= pts[0].BaselineBW {
		t.Errorf("BT-IO ParColl %.0f MB/s did not beat baseline %.0f MB/s",
			pts[0].ParCollBW/1e6, pts[0].BaselineBW/1e6)
	}
}

func TestFig11FlashShape(t *testing.T) {
	p := testPreset()
	pts := p.FlashSeries(128, 16, 16)
	byLabel := map[string]float64{}
	for _, pt := range pts {
		byLabel[pt.Label] = pt.BW
	}
	// The paper's independent-write collapse (~60 MB/s at 1024 procs) grows
	// with scale; at 128 procs we require the ordering and a clear gap.
	if byLabel["Cray w/o Coll"] >= byLabel["Cray (default aggs)"]*0.75 {
		t.Errorf("independent writes (%.0f MB/s) should be well below collective (%.0f MB/s)",
			byLabel["Cray w/o Coll"]/1e6, byLabel["Cray (default aggs)"]/1e6)
	}
	if byLabel["ParColl (default aggs)"] < byLabel["Cray (default aggs)"]*0.95 {
		t.Errorf("ParColl (%.0f MB/s) fell more than 5%% below baseline (%.0f MB/s)",
			byLabel["ParColl (default aggs)"]/1e6, byLabel["Cray (default aggs)"]/1e6)
	}
	if byLabel["ParColl (16 aggs)"] <= byLabel["Cray (16 aggs)"] {
		t.Errorf("ParColl with hinted aggregators (%.0f MB/s) did not beat baseline (%.0f MB/s)",
			byLabel["ParColl (16 aggs)"]/1e6, byLabel["Cray (16 aggs)"]/1e6)
	}
}

func TestVerifyAllWorkloads(t *testing.T) {
	p := testPreset()
	cases := []struct {
		name string
		fn   func() error
	}{
		{"ior-baseline", func() error { return VerifyIOR(p, 8, core.Options{}) }},
		{"ior-parcoll", func() error { return VerifyIOR(p, 8, core.Options{NumGroups: 4}) }},
		{"tile-baseline", func() error { return VerifyTile(p, 16, core.Options{}) }},
		{"tile-parcoll", func() error { return VerifyTile(p, 16, core.Options{NumGroups: 4}) }},
		{"tile-overpart", func() error { return VerifyTile(p, 16, core.Options{NumGroups: 16}) }},
		{"bt-baseline", func() error { return VerifyBT(p, 16, core.Options{}) }},
		{"bt-parcoll", func() error { return VerifyBT(p, 16, core.Options{NumGroups: 4}) }},
		{"flash-baseline", func() error { return VerifyFlash(p, 8, core.Options{}) }},
		{"flash-parcoll", func() error { return VerifyFlash(p, 8, core.Options{NumGroups: 4}) }},
		{"flash-hints", func() error {
			return VerifyFlash(p, 8, core.Options{NumGroups: 2, Hints: mpiio.Hints{CBNodes: 2}})
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := c.fn(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestPresetsAreSane(t *testing.T) {
	for _, p := range []Preset{PaperPreset(), BenchPreset()} {
		if p.Tile.TileBytes() <= 0 || p.IORBlock <= 0 || p.BT.N <= 0 || p.Flash.NVars <= 0 {
			t.Errorf("preset %s has zero-sized workloads", p.Name)
		}
		if p.TileScale < 1 || p.IORScale < 1 || p.BTScale < 1 || p.FlashScale < 1 {
			t.Errorf("preset %s has sub-unity scales", p.Name)
		}
	}
}

func TestEnvForAppliesScale(t *testing.T) {
	p := PaperPreset()
	env := EnvFor(p, 128, core.Options{})
	if got := env.FS.Params().CostScale; got != 128 {
		t.Errorf("CostScale = %g want 128", got)
	}
	if env.Stripe.Size != int64(4<<20)/128 {
		t.Errorf("stripe size %d not scaled", env.Stripe.Size)
	}
}
