package experiments

// Overlap experiments: split collectives against the collective wall.
// ROMIO's split collectives (MPI_File_write_all_begin/end) are the other
// lever besides partitioning: the application computes between Begin and
// End while the simulator's progress engine retires the in-flight two-phase
// rounds in the background. The sweep measures blocking vs. split, baseline
// ext2ph vs. ParColl, across compute/IO ratios — healthy and under a fault
// plan — quantifying how much I/O tail the overlap hides and how the two
// mechanisms compose (partitioning confines stragglers; overlap hides what
// remains).

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/workload"
)

// OverlapPoint is one compute/IO ratio's comparison of blocking and split
// collectives under both protocols.
type OverlapPoint struct {
	Scenario string
	Ratio    float64 // per-step compute seconds / per-step blocking I/O seconds
	Steps    int

	BlockExt2ph  float64 // elapsed seconds, blocking, groups=1
	SplitExt2ph  float64 // elapsed seconds, split, groups=1
	BlockParColl float64 // elapsed seconds, blocking, ParColl groups
	SplitParColl float64 // elapsed seconds, split, ParColl groups

	HiddenExt2ph  float64 // hidden fraction of the split ext2ph run's I/O tail
	HiddenParColl float64 // hidden fraction of the split ParColl run's I/O tail
}

// SplitGain returns how much elapsed time the split ParColl variant saved
// over blocking ParColl, in seconds.
func (o OverlapPoint) SplitGain() float64 { return o.BlockParColl - o.SplitParColl }

// overlapRun executes one multi-step tile write in a fresh environment.
func (p Preset) overlapRun(nprocs, groups, steps int, compute float64, split bool, plan *fault.Plan) workload.Result {
	env := p.envPlan(p.TileScale, core.Options{NumGroups: groups}, plan)
	w := p.Tile
	w.Steps = steps
	w.Compute = compute
	w.Split = split
	var res workload.Result
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, plan, p.Workers, func(r *mpi.Rank) {
		out := w.Write(r, env, "tile")
		if r.WorldRank() == 0 {
			res = out
		}
	})
	return res
}

// OverlapSweep measures the multi-step tile write at each compute/IO ratio,
// in four variants per point: {blocking, split} x {ext2ph, ParColl-groups}.
// The per-step compute is ratio times the per-step elapsed time of a
// healthy blocking ext2ph run with no compute (the I/O reference), so
// ratio 1 means the application computes about as long as one dump takes.
// plan may be nil for healthy runs; the reference is always healthy, so a
// scenario's degradation is measured against the same compute budget.
func (p Preset) OverlapSweep(nprocs, groups, steps int, ratios []float64, plan *fault.Plan) []OverlapPoint {
	ref := p.overlapRun(nprocs, 1, steps, 0, false, nil).Elapsed / float64(steps)
	name := fault.Healthy
	if plan != nil {
		name = plan.Name
	}
	out := make([]OverlapPoint, 0, len(ratios))
	for _, ratio := range ratios {
		c := ratio * ref
		pt := OverlapPoint{Scenario: name, Ratio: ratio, Steps: steps}
		pt.BlockExt2ph = p.overlapRun(nprocs, 1, steps, c, false, plan).Elapsed
		se := p.overlapRun(nprocs, 1, steps, c, true, plan)
		pt.SplitExt2ph = se.Elapsed
		pt.HiddenExt2ph = se.Overlap.HiddenFrac()
		pt.BlockParColl = p.overlapRun(nprocs, groups, steps, c, false, plan).Elapsed
		sp := p.overlapRun(nprocs, groups, steps, c, true, plan)
		pt.SplitParColl = sp.Elapsed
		pt.HiddenParColl = sp.Overlap.HiddenFrac()
		out = append(out, pt)
	}
	return out
}
