package experiments

import (
	"reflect"
	"testing"

	"repro/internal/job"
)

// TestBackendNamesAgree pins the two backend catalogs to each other:
// internal/job is a leaf package and cannot import this one, so it carries
// its own copy of the list — this test is what keeps them one list.
func TestBackendNamesAgree(t *testing.T) {
	if !reflect.DeepEqual(job.BackendNames(), BackendNames()) {
		t.Fatalf("job.BackendNames() = %v, experiments.BackendNames() = %v",
			job.BackendNames(), BackendNames())
	}
}

func TestApplySpec(t *testing.T) {
	p := BenchPreset()
	err := (&p).ApplySpec(job.Spec{
		Workload: job.WorkloadIOR, Procs: 8, Seed: 9, Workers: 4,
		Backend: "bb", BBCapacity: 1 << 20, BBDrainBW: 1e6,
		Scenario: "one-straggler", PEsPerNode: 4, IntraNode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || p.Workers != 4 || p.Backend != "bb" || p.BBCapacity != 1<<20 ||
		p.BBDrainBW != 1e6 || p.Cluster.PEsPerNode != 4 || !p.IntraNode {
		t.Fatalf("knobs not applied: %+v", p)
	}
	if p.Fault == nil {
		t.Fatal("scenario not resolved to a fault plan")
	}
	// Clearing the scenario clears the plan — ApplySpec owns the field.
	if err := (&p).ApplySpec(job.Spec{Workload: job.WorkloadIOR, Procs: 8}); err != nil {
		t.Fatal(err)
	}
	if p.Fault != nil {
		t.Fatal("empty scenario left a stale fault plan")
	}

	if err := (&p).ApplySpec(job.Spec{Workload: "mystery", Procs: 8}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if err := (&p).ApplySpec(job.Spec{Workload: job.WorkloadIOR, Procs: 8, Scenario: "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestOptionsForBTIntermediate pins the geometry rule the tenancy layer
// depends on: partitioned BT-IO materializes the intermediate view (the
// Figure 10 configuration); everything else does not.
func TestOptionsForBTIntermediate(t *testing.T) {
	if !OptionsFor(job.Spec{Workload: job.WorkloadBTIO, Groups: 4}).MaterializeIntermediate {
		t.Fatal("partitioned BT-IO must materialize the intermediate view")
	}
	if OptionsFor(job.Spec{Workload: job.WorkloadBTIO, Groups: 1}).MaterializeIntermediate {
		t.Fatal("unpartitioned BT-IO must not materialize")
	}
	if OptionsFor(job.Spec{Workload: job.WorkloadTileIO, Groups: 4}).MaterializeIntermediate {
		t.Fatal("tile-IO must not materialize")
	}
	opts := OptionsFor(job.Spec{Workload: job.WorkloadIOR, Groups: 2,
		Hints: job.Hints{CBNodes: 8, CBBufferSize: 1 << 16}})
	if opts.NumGroups != 2 || opts.Hints.CBNodes != 8 || opts.Hints.CBBufferSize != 1<<16 {
		t.Fatalf("hints not threaded: %+v", opts)
	}
}

func TestWorkloadForOverrides(t *testing.T) {
	p := BenchPreset()
	w, scale, err := WorkloadFor(p, job.Spec{Workload: job.WorkloadBTIO, Procs: 4, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.BT == nil || w.BT.Steps != 2 {
		t.Fatalf("BT steps override not applied: %+v", w)
	}
	if scale != p.BTScale {
		t.Fatalf("scale = %v, want BTScale %v", scale, p.BTScale)
	}
	cw, _, err := WorkloadFor(p, job.Spec{Workload: job.WorkloadCheckpoint, Procs: 4,
		BlockBytes: 8 << 10, Steps: 3, Interleave: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if cw.Burst == nil || cw.Burst.BlockBytes != 8<<10 || cw.Burst.Steps != 3 || cw.Burst.Interleave != 2<<10 {
		t.Fatalf("checkpoint overrides not applied: %+v", cw.Burst)
	}
	if _, _, err := WorkloadFor(p, job.Spec{Workload: job.WorkloadCheckpoint, Procs: 4,
		BlockBytes: 5 << 10, Interleave: 2 << 10}); err == nil {
		t.Fatal("indivisible interleave accepted")
	}
	if _, _, err := WorkloadFor(p, job.Spec{Workload: "mystery", Procs: 4}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
