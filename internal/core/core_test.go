package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/mpiio"
)

func testStripe() lustre.StripeInfo { return lustre.StripeInfo{Count: 4, Size: 4096} }

func pattern(rank, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rank*41 + i*13 + 3)
	}
	return b
}

// --- Aggregator distribution: the paper's Figure 5 ---

func TestAggregatorDistributionPaperFigure5Block(t *testing.T) {
	// Block mapping: N0(P0,P1) N1(P2,P3) N2(P4,P5) N3(P6,P7); aggregator
	// nodes N0..N3; groups {P0..P3}, {P4..P7}.
	nodeOf := func(r int) int { return r / 2 }
	groups := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	got := DistributeAggregators(groups, nodeOf, []int{0, 1, 2, 3})
	want := [][]int{{0, 2}, {4, 6}} // SG1: N0(P0), N1(P2); SG2: N2(P4), N3(P6)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("block distribution = %v want %v", got, want)
	}
}

func TestAggregatorDistributionPaperFigure5Cyclic(t *testing.T) {
	// Cyclic mapping: N0(P0,P4) N1(P1,P5) N2(P2,P6) N3(P3,P7); three
	// aggregator nodes N0, N2, N3.
	nodeOf := func(r int) int { return r % 4 }
	groups := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	got := DistributeAggregators(groups, nodeOf, []int{0, 2, 3})
	want := [][]int{{0, 3}, {6}} // SG1: N0(P0), N3(P3); SG2: N2(P6)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("cyclic distribution = %v want %v", got, want)
	}
}

func TestAggregatorFallbackRequirementA(t *testing.T) {
	// Group 1 has no member on an aggregator node; it must still get one.
	nodeOf := func(r int) int { return r }
	groups := [][]int{{0, 1}, {2, 3}}
	got := DistributeAggregators(groups, nodeOf, []int{0, 1})
	if len(got[1]) != 1 || got[1][0] != 2 {
		t.Errorf("fallback aggregator = %v want [2]", got[1])
	}
}

// Property: requirements (a), (b), (c) hold for random topologies.
func TestAggregatorDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nprocs := rng.Intn(30) + 2
		pes := rng.Intn(3) + 1
		ngroups := rng.Intn(nprocs) + 1
		nodeOf := func(r int) int { return r / pes }
		// Random contiguous groups.
		groups := make([][]int, 0, ngroups)
		ranks := make([]int, nprocs)
		for i := range ranks {
			ranks[i] = i
		}
		per := (nprocs + ngroups - 1) / ngroups
		for len(ranks) > 0 {
			k := per
			if k > len(ranks) {
				k = len(ranks)
			}
			groups = append(groups, ranks[:k])
			ranks = ranks[k:]
		}
		// Random aggregator node subset.
		numNodes := (nprocs + pes - 1) / pes
		var aggNodes []int
		for n := 0; n < numNodes; n++ {
			if rng.Intn(2) == 0 {
				aggNodes = append(aggNodes, n)
			}
		}
		got := DistributeAggregators(groups, nodeOf, aggNodes)
		// (a): every group has at least one aggregator.
		for g := range groups {
			if len(got[g]) == 0 {
				return false
			}
		}
		// (b): no node hosts aggregators of two different groups, unless a
		// requirement-(a) fallback had no conflict-free member to draft.
		owner := make(map[int]int)
		for g, aggs := range got {
			for _, a := range aggs {
				n := nodeOf(a)
				if o, ok := owner[n]; ok && o != g {
					// Tolerated only when every member node of group g was
					// already claimed by other groups.
					for _, m := range groups[g] {
						if _, claimed := owner[nodeOf(m)]; !claimed {
							return false
						}
					}
					continue
				}
				owner[n] = g
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- File area partitioning ---

func mkSpan(rank int, st, end int64) span {
	return span{rank: rank, st: st, end: end, size: end - st, active: true}
}

func TestPartitionDirectSerial(t *testing.T) {
	// Pattern (a): serial segments; any group count up to nprocs works.
	spans := []span{mkSpan(0, 0, 100), mkSpan(1, 100, 200), mkSpan(2, 200, 300), mkSpan(3, 300, 400)}
	groups, ok := partitionDirect(spans, 2)
	if !ok {
		t.Fatal("serial pattern must partition directly")
	}
	if fmt.Sprint(groups) != "[[0 1] [2 3]]" {
		t.Errorf("groups = %v", groups)
	}
	if _, ok := partitionDirect(spans, 4); !ok {
		t.Error("serial pattern must support nprocs groups")
	}
}

func TestPartitionDirectTiles(t *testing.T) {
	// Pattern (b): two "tile rows" of two interleaved procs each. Procs 0,1
	// interleave in [0,200); procs 2,3 interleave in [200,400).
	spans := []span{
		mkSpan(0, 0, 190), mkSpan(1, 10, 200),
		mkSpan(2, 200, 390), mkSpan(3, 210, 400),
	}
	groups, ok := partitionDirect(spans, 2)
	if !ok {
		t.Fatal("tile pattern with row boundary must partition into 2")
	}
	if fmt.Sprint(groups) != "[[0 1] [2 3]]" {
		t.Errorf("groups = %v", groups)
	}
	// 4 groups would need cuts inside the interleaved rows: impossible.
	if _, ok := partitionDirect(spans, 4); ok {
		t.Error("over-partitioning interleaved tiles must fail (pattern (c))")
	}
}

func TestPartitionDirectScatteredFails(t *testing.T) {
	// Pattern (c): every proc spans nearly the whole file.
	spans := []span{mkSpan(0, 0, 400), mkSpan(1, 10, 390), mkSpan(2, 20, 380)}
	if _, ok := partitionDirect(spans, 2); ok {
		t.Error("scattered pattern must not partition directly")
	}
}

func TestPartitionDirectBalancesBytes(t *testing.T) {
	// Sizes 10,10,10,300: with 2 groups the cut should isolate the jumbo
	// span rather than split 2/2.
	spans := []span{mkSpan(0, 0, 10), mkSpan(1, 10, 20), mkSpan(2, 20, 30), mkSpan(3, 30, 330)}
	groups, ok := partitionDirect(spans, 2)
	if !ok {
		t.Fatal("partition failed")
	}
	if fmt.Sprint(groups) != "[[0 1 2] [3]]" {
		t.Errorf("groups = %v (bytes not balanced)", groups)
	}
}

func TestPartitionLogical(t *testing.T) {
	spans := []span{mkSpan(0, 0, 400), mkSpan(1, 10, 390), mkSpan(2, 5, 395), mkSpan(3, 20, 380)}
	groups, prefix := partitionLogical(spans, 2)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	// Order by st: 0 (st 0), 2 (st 5), 1 (st 10), 3 (st 20).
	if prefix[0] != 0 || prefix[2] != 400 || prefix[1] != 790 || prefix[3] != 1170 {
		t.Errorf("prefixes = %v", prefix)
	}
	if fmt.Sprint(groups) != "[[0 2] [1 3]]" {
		t.Errorf("groups = %v", groups)
	}
}

func TestPartitionLogicalInactive(t *testing.T) {
	spans := []span{mkSpan(0, 0, 100), {rank: 1}, mkSpan(2, 100, 200)}
	groups, prefix := partitionLogical(spans, 2)
	if len(prefix) != 2 {
		t.Errorf("prefix has inactive entries: %v", prefix)
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 3 {
		t.Errorf("inactive rank lost: groups %v", groups)
	}
}

// --- Intermediate (compact) view ---

func TestCompactView(t *testing.T) {
	cv := newCompactView([][]datatype.Segment{
		{{Off: 100, Len: 10}, {Off: 200, Len: 20}},
		{{Off: 110, Len: 5}},
	}, 1000)
	// Union: [100,115) (coalesced 10+5), [200,220). Logical size 35.
	if cv.size != 35 {
		t.Fatalf("size = %d want 35", cv.size)
	}
	// Logical [5, 30) = physical [105,115) + [200,215).
	got := cv.Phys(5, 25)
	want := []datatype.Segment{{Off: 105, Len: 10}, {Off: 200, Len: 15}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Phys = %v want %v", got, want)
	}
	// Member 0's logical segments: [0,10) and [15,35).
	ls := cv.logicalSegs([]datatype.Segment{{Off: 100, Len: 10}, {Off: 200, Len: 20}})
	wantLS := []datatype.Segment{{Off: 0, Len: 10}, {Off: 15, Len: 20}}
	if fmt.Sprint(ls) != fmt.Sprint(wantLS) {
		t.Errorf("logicalSegs = %v want %v", ls, wantLS)
	}
}

func TestCompactViewTiling(t *testing.T) {
	cv := newCompactView([][]datatype.Segment{{{Off: 10, Len: 5}}}, 100)
	// Instance 1's bytes live at physical 110..114, logical 5..9.
	got := cv.Phys(5, 5)
	want := []datatype.Segment{{Off: 110, Len: 5}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("tiled Phys = %v want %v", got, want)
	}
	// Straddling instances.
	got = cv.Phys(3, 4)
	want = []datatype.Segment{{Off: 13, Len: 2}, {Off: 110, Len: 2}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("straddle Phys = %v want %v", got, want)
	}
}

// Property: compact-view translation is measure-preserving and lands inside
// the union segments (modulo instance tiling).
func TestCompactViewProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nm := rng.Intn(5) + 1
		lists := make([][]datatype.Segment, nm)
		off := int64(0)
		for m := range lists {
			nseg := rng.Intn(4) + 1
			for s := 0; s < nseg; s++ {
				off += rng.Int63n(50)
				l := rng.Int63n(40) + 1
				lists[m] = append(lists[m], datatype.Segment{Off: off, Len: l})
				off += l
			}
		}
		cv := newCompactView(lists, off+rng.Int63n(100))
		total := cv.size * 3 // three instances
		reqOff := rng.Int63n(total)
		reqLen := rng.Int63n(total-reqOff) + 1
		var n int64
		for _, s := range cv.Phys(reqOff, reqLen) {
			if s.Len <= 0 {
				return false
			}
			n += s.Len
		}
		if n != reqLen {
			return false
		}
		// Round trip: every member's logical segments map back to their
		// physical segments.
		for _, l := range lists {
			logical := cv.logicalSegs(l)
			var back []datatype.Segment
			for _, s := range logical {
				back = append(back, cv.Phys(s.Off, s.Len)...)
			}
			if fmt.Sprint(datatype.Coalesce(back)) != fmt.Sprint(datatype.Coalesce(l)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- End-to-end ParColl correctness ---

// serialWrite runs a ParColl collective write where each rank owns a
// contiguous slab, then returns the file contents.
func serialWrite(t *testing.T, nprocs, ngroups, per int, opts Options) []byte {
	t.Helper()
	fs := lustre.NewFS(lustre.DefaultConfig())
	opts.NumGroups = ngroups
	var gotPlan Plan
	mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "f", testStripe(), opts)
		f.SetView(datatype.View{Disp: int64(r.WorldRank() * per), Filetype: datatype.Contig(int64(per))})
		f.WriteAtAll(0, pattern(r.WorldRank(), per))
		if r.WorldRank() == 0 {
			gotPlan = f.LastPlan()
		}
	})
	t.Logf("plan: mode=%v groups=%d", gotPlan.Mode, gotPlan.NumGroups)
	var data []byte
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		data = fs.Open(r, "f", testStripe()).Contents()
	})
	return data
}

func TestParCollSerialMatchesReference(t *testing.T) {
	const nprocs, per = 8, 3000
	want := serialWrite(t, nprocs, 1, per, Options{})
	for _, g := range []int{2, 4, 8} {
		got := serialWrite(t, nprocs, g, per, Options{})
		if !bytes.Equal(got, want) {
			t.Errorf("ParColl-%d file differs from baseline", g)
		}
	}
}

func TestParCollModeDetection(t *testing.T) {
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.Run(4, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)

		// Serial pattern -> direct.
		f := Open(comm, fs, "m1", testStripe(), Options{NumGroups: 2})
		f.SetView(datatype.View{Disp: int64(r.WorldRank() * 1000), Filetype: datatype.Contig(1000)})
		f.WriteAtAll(0, pattern(r.WorldRank(), 1000))
		if f.LastPlan().Mode != ModeDirect {
			t.Errorf("serial pattern mode = %v want direct", f.LastPlan().Mode)
		}

		// Scattered pattern -> intermediate.
		g := Open(comm, fs, "m2", testStripe(), Options{NumGroups: 2})
		ft := datatype.NewVector(4, 100, 1600) // 4 blocks spread over the file
		g.SetView(datatype.View{Disp: int64(r.WorldRank() * 100), Filetype: ft})
		g.WriteAtAll(0, pattern(r.WorldRank(), 400))
		if g.LastPlan().Mode != ModeIntermediate {
			t.Errorf("scattered pattern mode = %v want intermediate", g.LastPlan().Mode)
		}

		// NumGroups 1 -> single.
		h := Open(comm, fs, "m3", testStripe(), Options{NumGroups: 1})
		h.SetView(datatype.View{Disp: int64(r.WorldRank() * 100), Filetype: datatype.Contig(100)})
		h.WriteAtAll(0, pattern(r.WorldRank(), 100))
		if h.LastPlan().Mode != ModeSingle {
			t.Errorf("single group mode = %v want single", h.LastPlan().Mode)
		}
	})
}

func TestParCollScatteredIntermediateCorrectness(t *testing.T) {
	// BT-IO-like: each rank writes 4 blocks strided across the file.
	const nprocs = 6
	const bs, nblocks = 128, 4
	run := func(ngroups int, force bool) []byte {
		fs := lustre.NewFS(lustre.DefaultConfig())
		mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			comm := mpi.WorldComm(r)
			f := Open(comm, fs, "bt", testStripe(), Options{
				NumGroups:         ngroups,
				ForceIntermediate: force,
				Hints:             mpiio.Hints{CBBufferSize: 512},
			})
			ft := datatype.NewVector(nblocks, bs, nprocs*bs)
			f.SetView(datatype.View{Disp: int64(r.WorldRank() * bs), Filetype: ft})
			f.WriteAtAll(0, pattern(r.WorldRank(), nblocks*bs))
		})
		var data []byte
		mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			data = fs.Open(r, "bt", testStripe()).Contents()
		})
		return data
	}
	want := run(1, false)
	for _, g := range []int{2, 3, 6} {
		if got := run(g, false); !bytes.Equal(got, want) {
			t.Errorf("ParColl-%d intermediate-mode file differs", g)
		}
	}
	if got := run(2, true); !bytes.Equal(got, want) {
		t.Error("forced-intermediate file differs")
	}
}

func TestParCollReadBack(t *testing.T) {
	const nprocs, per = 6, 2500
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "rb", testStripe(), Options{NumGroups: 3})
		f.SetView(datatype.View{Disp: int64(r.WorldRank() * per), Filetype: datatype.Contig(per)})
		want := pattern(r.WorldRank(), per)
		f.WriteAtAll(0, want)
		comm.Barrier()
		got := f.ReadAtAll(0, per)
		if !bytes.Equal(got, want) {
			t.Errorf("rank %d ParColl read-back mismatch", r.WorldRank())
		}
	})
}

func TestParCollScatteredReadBack(t *testing.T) {
	const nprocs = 4
	const bs, nblocks = 64, 3
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "srb", testStripe(), Options{NumGroups: 2, Hints: mpiio.Hints{CBBufferSize: 256}})
		ft := datatype.NewVector(nblocks, bs, nprocs*bs)
		f.SetView(datatype.View{Disp: int64(r.WorldRank() * bs), Filetype: ft})
		want := pattern(r.WorldRank(), nblocks*bs)
		f.WriteAtAll(0, want)
		comm.Barrier()
		got := f.ReadAtAll(0, nblocks*bs)
		if !bytes.Equal(got, want) {
			t.Errorf("rank %d scattered ParColl read-back mismatch", r.WorldRank())
		}
	})
}

func TestParCollDisableIntermediateFallsBack(t *testing.T) {
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.Run(4, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "di", testStripe(), Options{NumGroups: 2, DisableIntermediate: true})
		ft := datatype.NewVector(4, 100, 1600)
		f.SetView(datatype.View{Disp: int64(r.WorldRank() * 100), Filetype: ft})
		f.WriteAtAll(0, pattern(r.WorldRank(), 400))
		if f.LastPlan().Mode != ModeSingle {
			t.Errorf("mode = %v want single (intermediate disabled)", f.LastPlan().Mode)
		}
	})
}

func TestParCollPlanCaching(t *testing.T) {
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.Run(4, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "pc", testStripe(), Options{NumGroups: 2})
		f.SetView(datatype.View{Disp: int64(r.WorldRank() * 1000), Filetype: datatype.Contig(1000)})
		f.WriteAtAll(0, pattern(r.WorldRank(), 1000))
		first := f.subComm
		f.WriteAtAll(0, pattern(r.WorldRank()+1, 1000)) // same layout, new data
		if f.subComm != first {
			t.Error("identical layout rebuilt the subgroup communicator")
		}
	})
}

func TestParCollGroupsReduceSyncShare(t *testing.T) {
	// The point of the paper: with many procs and interleaved data, more
	// groups -> less synchronization time for non-aggregators.
	syncTime := func(ngroups int) float64 {
		fs := lustre.NewFS(lustre.DefaultConfig())
		var sync float64
		const nprocs = 32
		mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			comm := mpi.WorldComm(r)
			f := Open(comm, fs, "sy", testStripe(), Options{
				NumGroups: ngroups,
				Hints:     mpiio.Hints{CBBufferSize: 2048},
			})
			const per = 8192
			f.SetView(datatype.View{Disp: int64(r.WorldRank() * per), Filetype: datatype.Contig(per)})
			f.WriteAtAll(0, pattern(r.WorldRank(), per))
			bd := f.Breakdown()
			if r.WorldRank() == nprocs-1 {
				sync = bd.Sync
			}
		})
		return sync
	}
	one, eight := syncTime(1), syncTime(8)
	if eight >= one {
		t.Errorf("ParColl-8 sync %g not below baseline sync %g", eight, one)
	}
}

// Property: for random serial layouts and group counts, ParColl output is
// byte-identical to independent writes.
func TestParCollMatchesIndependentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nprocs := rng.Intn(6) + 2
		ngroups := rng.Intn(nprocs) + 1
		per := rng.Intn(3000) + 100
		data := make([][]byte, nprocs)
		for i := range data {
			data[i] = make([]byte, per)
			rng.Read(data[i])
		}
		pcFS := lustre.NewFS(lustre.DefaultConfig())
		mpi.Run(nprocs, cluster.DefaultConfig(), seed, func(r *mpi.Rank) {
			f := Open(mpi.WorldComm(r), pcFS, "q", testStripe(), Options{NumGroups: ngroups})
			f.SetView(datatype.View{Disp: int64(r.WorldRank() * per), Filetype: datatype.Contig(int64(per))})
			f.WriteAtAll(0, data[r.WorldRank()])
		})
		refFS := lustre.NewFS(lustre.DefaultConfig())
		mpi.Run(nprocs, cluster.DefaultConfig(), seed, func(r *mpi.Rank) {
			f := mpiio.Open(mpi.WorldComm(r), refFS, "q", testStripe(), mpiio.Hints{})
			f.SetView(datatype.View{Disp: int64(r.WorldRank() * per), Filetype: datatype.Contig(int64(per))})
			f.WriteAt(0, data[r.WorldRank()])
		})
		var a, b []byte
		mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			a = pcFS.Open(r, "q", testStripe()).Contents()
			b = refFS.Open(r, "q", testStripe()).Contents()
		})
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestModeString(t *testing.T) {
	if ModeSingle.String() != "single" || ModeDirect.String() != "direct" ||
		ModeIntermediate.String() != "intermediate" {
		t.Error("Mode.String mismatch")
	}
}

func TestAutoGroups(t *testing.T) {
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.Run(32, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "auto", testStripe(), Options{AutoGroups: true})
		f.SetView(datatype.View{Disp: int64(r.WorldRank() * 1000), Filetype: datatype.Contig(1000)})
		f.WriteAtAll(0, pattern(r.WorldRank(), 1000))
		if got := f.LastPlan().NumGroups; got != 4 {
			t.Errorf("auto groups = %d want 4 (32 procs / 8)", got)
		}
		bd := f.Close()
		if bd.Total() <= 0 {
			t.Error("close summary empty")
		}
	})
}

func TestAutoTuneCommitsToFastest(t *testing.T) {
	fs := lustre.NewFS(lustre.DefaultConfig())
	const nprocs = 32
	mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "tune", testStripe(), Options{AutoTune: true})
		const per = 4096
		f.SetView(datatype.View{Disp: int64(r.WorldRank() * per), Filetype: datatype.Contig(per)})
		buf := pattern(r.WorldRank(), per)
		// Ladder for 32 procs: {1, 2, 4, 8} -> 4 measured calls + 2 more
		// on the committed winner.
		for i := 0; i < 6; i++ {
			f.WriteAtAll(0, buf)
		}
		if got := f.TunedGroups(); got == 0 {
			t.Error("AutoTune never committed")
		} else if f.LastPlan().NumGroups != got {
			t.Errorf("plan groups %d != tuned %d", f.LastPlan().NumGroups, got)
		}
		// A new view restarts tuning.
		f.SetView(datatype.View{Disp: int64(r.WorldRank()*per) + 1, Filetype: datatype.Contig(per)})
		f.WriteAtAll(0, buf)
		if f.TunedGroups() != 0 {
			t.Error("tuning did not restart after SetView")
		}
	})
}

func TestNaiveAggregatorsConcentration(t *testing.T) {
	// Cyclic-style topology: ranks r and r+4 share node r%4. Allowed
	// nodes {0,1}: naive gives both groups aggregators on nodes 0 and 1
	// (shared!), while the paper's algorithm splits them.
	nodeOf := func(r int) int { return r % 4 }
	groups := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	naive := naiveAggregators(groups, nodeOf, []int{0, 1})
	if len(naive[0]) != 2 || len(naive[1]) != 2 {
		t.Errorf("naive = %v; both groups should claim both nodes", naive)
	}
	dist := DistributeAggregators(groups, nodeOf, []int{0, 1})
	if len(dist[0]) != 1 || len(dist[1]) != 1 {
		t.Errorf("distributed = %v; nodes should be split one per group", dist)
	}
	if nodeOf(dist[0][0]) == nodeOf(dist[1][0]) {
		t.Errorf("distributed shares a node: %v", dist)
	}
}
