package core

import (
	"encoding/binary"
	"sort"

	"repro/internal/datatype"
)

// Intermediate file views (paper §4.1, Figure 4(c)).
//
// When a process's accesses spread across the whole file, no direct
// partitioning into disjoint FAs exists. ParColl then switches the view:
// each process's physical segments are virtually joined into one contiguous
// logical run, runs are concatenated in (physical start, rank) order, and
// the two-phase protocol aggregates in this logical file. The original view
// survives as the logical-to-physical translation applied when aggregators
// finally read or write.

// compactView is a group-local intermediate file view: the union of the
// group members' physical segments, sorted by offset and coalesced, forms
// the logical file (the group's bytes with the holes squeezed out). Under
// this view the two-phase windows of the subgroup's aggregators map to the
// *physically densest* runs the group's data admits — for BT-IO's diagonal
// multi-partitioning, a subgroup of one process-grid row covers whole
// solution slabs, so the aggregators' final writes coalesce into large
// contiguous requests just as the unpartitioned protocol's do.
type compactView struct {
	union  []datatype.Segment // sorted, coalesced physical segments (instance 0)
	prefix []int64            // logical start of each union segment
	size   int64              // logical bytes per instance
	extent int64              // physical bytes per instance (for tiling)
}

// newCompactView builds the view from the members' (disjoint) physical
// segment lists for one filetype instance; later instances tile at extent.
func newCompactView(lists [][]datatype.Segment, extent int64) *compactView {
	var all []datatype.Segment
	for _, l := range lists {
		all = append(all, l...)
	}
	union := datatype.Coalesce(all)
	prefix := make([]int64, len(union))
	var n int64
	for i, s := range union {
		prefix[i] = n
		n += s.Len
	}
	if extent <= 0 {
		extent = 1
	}
	return &compactView{union: union, prefix: prefix, size: n, extent: extent}
}

// logicalOf translates a physical offset inside the union to its logical
// position.
func (v *compactView) logicalOf(phys int64) int64 {
	i := sort.Search(len(v.union), func(k int) bool { return v.union[k].Off > phys }) - 1
	if i < 0 || phys >= v.union[i].End() {
		panic("core: physical offset outside intermediate view")
	}
	return v.prefix[i] + (phys - v.union[i].Off)
}

// logicalSegs translates a member's physical segments (each contained in
// one union segment by construction) into logical segments.
func (v *compactView) logicalSegs(segs []datatype.Segment) []datatype.Segment {
	out := make([]datatype.Segment, len(segs))
	for i, s := range segs {
		out[i] = datatype.Segment{Off: v.logicalOf(s.Off), Len: s.Len}
	}
	return datatype.Coalesce(out)
}

// Phys implements mpiio.Translator: logical [off, off+n) back to physical
// segments in logical order. Logical offsets beyond one instance's size
// tile into the next instance at the physical extent.
func (v *compactView) Phys(off, n int64) []datatype.Segment {
	var out []datatype.Segment
	for n > 0 {
		tile := off / v.size
		local := off % v.size
		i := sort.Search(len(v.prefix), func(k int) bool { return v.prefix[k] > local }) - 1
		if i < 0 || local >= v.prefix[i]+v.union[i].Len {
			panic("core: logical offset outside intermediate view")
		}
		rel := local - v.prefix[i]
		take := v.union[i].Len - rel
		if take > n {
			take = n
		}
		out = append(out, datatype.Segment{Off: tile*v.extent + v.union[i].Off + rel, Len: take})
		off += take
		n -= take
	}
	return out
}

func encSegs(segs []datatype.Segment) []byte {
	out := make([]byte, 0, 16*len(segs))
	for _, s := range segs {
		out = binary.LittleEndian.AppendUint64(out, uint64(s.Off))
		out = binary.LittleEndian.AppendUint64(out, uint64(s.Len))
	}
	return out
}

func decSegs(b []byte) []datatype.Segment {
	segs := make([]datatype.Segment, len(b)/16)
	for i := range segs {
		segs[i].Off = int64(binary.LittleEndian.Uint64(b[16*i:]))
		segs[i].Len = int64(binary.LittleEndian.Uint64(b[16*i+8:]))
	}
	return segs
}

// segHash is a small FNV-1a fingerprint of a segment list, used to detect
// layout changes between collective calls for plan caching.
func segHash(segs []datatype.Segment) int64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	for _, s := range segs {
		mix(uint64(s.Off))
		mix(uint64(s.Len))
	}
	return int64(h >> 1)
}
