package core

import "sort"

// File area partitioning (paper §4.1, Figure 4).
//
// Given each process's physical file span, ParColl orders processes by
// starting offset and tries to cut the ordered list into the requested
// number of groups such that the groups' file areas (FAs) do not intersect
// — covering the paper's patterns (a) (serial segments: every position is a
// clean cut) and (b) (intersecting tiles: clean cuts exist only at tile-row
// boundaries). When too few clean cuts exist — pattern (c), scattered
// accesses like BT-IO — the caller switches to an intermediate file view,
// under which partitioning reduces to pattern (a).

// span is one process's physical file range, or inactive if it has no data.
type span struct {
	rank    int // comm rank
	st, end int64
	size    int64
	active  bool
}

// partitionDirect attempts to split the spans into ngroups groups with
// disjoint FAs, balancing bytes. It returns the groups as comm-rank lists
// (ordered by span start, inactive ranks dealt round-robin at the end), or
// ok=false when fewer than ngroups FAs can be formed without intersection.
func partitionDirect(spans []span, ngroups int) (groups [][]int, ok bool) {
	actives := make([]span, 0, len(spans))
	var inactives []int
	for _, s := range spans {
		if s.active {
			actives = append(actives, s)
		} else {
			inactives = append(inactives, s.rank)
		}
	}
	if len(actives) == 0 {
		return nil, false
	}
	sort.Slice(actives, func(i, j int) bool {
		if actives[i].st != actives[j].st {
			return actives[i].st < actives[j].st
		}
		return actives[i].rank < actives[j].rank
	})
	if ngroups > len(actives) {
		return nil, false
	}

	// Clean cut after index i: every earlier span ends by the next start.
	var cuts []int // candidate positions (cut after actives[i])
	cum := make([]int64, len(actives))
	maxEnd := int64(0)
	var total int64
	for i, s := range actives {
		if s.end > maxEnd {
			maxEnd = s.end
		}
		total += s.size
		cum[i] = total
		if i+1 < len(actives) && maxEnd <= actives[i+1].st {
			cuts = append(cuts, i)
		}
	}
	if len(cuts) < ngroups-1 {
		return nil, false
	}

	// Choose ngroups-1 cuts nearest the byte quantiles, strictly increasing.
	chosen := make([]int, 0, ngroups-1)
	ci := 0
	for k := 1; k < ngroups; k++ {
		ideal := total * int64(k) / int64(ngroups)
		// Remaining cuts after this one must still fit.
		limit := len(cuts) - (ngroups - 1 - k)
		best := -1
		for ; ci < limit; ci++ {
			if best < 0 || absI64(cum[cuts[ci]]-ideal) <= absI64(cum[cuts[best]]-ideal) {
				best = ci
			} else {
				break // moving away from the ideal; candidates are sorted
			}
		}
		if best < 0 {
			return nil, false
		}
		chosen = append(chosen, cuts[best])
		ci = best + 1
	}

	groups = make([][]int, ngroups)
	g := 0
	for i, s := range actives {
		groups[g] = append(groups[g], s.rank)
		if g < len(chosen) && i == chosen[g] {
			g++
		}
	}
	for i, r := range inactives {
		groups[i%ngroups] = append(groups[i%ngroups], r)
	}
	return groups, true
}

// partitionLogical splits spans into ngroups groups under an intermediate
// file view: processes are ordered by physical start (ties by rank), their
// data is virtually concatenated, and the concatenation is cut at byte
// quantiles. It always succeeds for ngroups <= active processes and also
// returns each rank's logical prefix offset in the intermediate file.
func partitionLogical(spans []span, ngroups int) (groups [][]int, prefix map[int]int64) {
	actives := make([]span, 0, len(spans))
	var inactives []int
	for _, s := range spans {
		if s.active {
			actives = append(actives, s)
		} else {
			inactives = append(inactives, s.rank)
		}
	}
	sort.Slice(actives, func(i, j int) bool {
		if actives[i].st != actives[j].st {
			return actives[i].st < actives[j].st
		}
		return actives[i].rank < actives[j].rank
	})
	if ngroups > len(actives) {
		ngroups = len(actives)
	}
	if ngroups < 1 {
		ngroups = 1
	}
	prefix = make(map[int]int64, len(actives))
	var total int64
	for _, s := range actives {
		prefix[s.rank] = total
		total += s.size
	}
	groups = make([][]int, ngroups)
	g := 0
	var seen int64
	for _, s := range actives {
		// Advance to the group owning this span's starting byte.
		for g+1 < ngroups && seen >= total*int64(g+1)/int64(ngroups) {
			g++
		}
		groups[g] = append(groups[g], s.rank)
		seen += s.size
	}
	// Some groups may have ended up empty when sizes are very skewed;
	// compact them away.
	out := groups[:0]
	for _, grp := range groups {
		if len(grp) > 0 {
			out = append(out, grp)
		}
	}
	groups = out
	if len(groups) == 0 {
		// No active spans at all: keep one group so the inactive ranks
		// still land somewhere.
		groups = [][]int{nil}
	}
	for i, r := range inactives {
		groups[i%len(groups)] = append(groups[i%len(groups)], r)
	}
	return groups, prefix
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
