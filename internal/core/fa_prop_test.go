package core

// Property tests for the file-area partitioners (paper §4.1). Rather than
// pinning outputs, these assert the invariants any correct partition must
// satisfy on randomized span sets: groups form an exact partition of the
// ranks, direct-mode file areas never intersect, and logical-mode prefix
// offsets are exactly the exclusive prefix sums of the start-sorted sizes.
// The same checkers back the native fuzz target in fuzz_test.go.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// randomSpans builds one span per rank: mostly serial segments with random
// gaps (pattern a), occasionally rewound to overlap earlier data (pattern b),
// occasionally inactive, and sometimes sparser than their extent (the size a
// view reports can be below end-st for non-contiguous filetypes). At least
// one span is always active.
func randomSpans(rng *rand.Rand) []span {
	n := 1 + rng.Intn(12)
	spans := make([]span, n)
	var cursor int64
	anyActive := false
	for _, r := range rng.Perm(n) {
		s := span{rank: r}
		if rng.Intn(10) > 0 || !anyActive && r == n-1 {
			s.active = true
			anyActive = true
			s.size = 1 + rng.Int63n(999)
			extent := s.size + rng.Int63n(s.size+1)/4
			if rng.Intn(3) == 0 && cursor > 0 {
				s.st = cursor - (rng.Int63n(cursor) + 1) // overlap earlier spans
			} else {
				s.st = cursor + rng.Int63n(100)
			}
			s.end = s.st + extent
			if s.end > cursor {
				cursor = s.end
			}
		}
		spans[r] = s
	}
	if !anyActive {
		spans[0] = span{rank: 0, st: 0, end: 64, size: 64, active: true}
	}
	return spans
}

// coverExactly checks groups form an exact partition of the ranks in spans.
func coverExactly(spans []span, groups [][]int) error {
	seen := make(map[int]int, len(spans))
	for _, g := range groups {
		for _, r := range g {
			seen[r]++
		}
	}
	for _, s := range spans {
		if seen[s.rank] != 1 {
			return fmt.Errorf("rank %d appears %d times across groups", s.rank, seen[s.rank])
		}
	}
	if len(seen) != len(spans) {
		return fmt.Errorf("groups hold %d distinct ranks, want %d", len(seen), len(spans))
	}
	return nil
}

func spanByRank(spans []span) map[int]span {
	m := make(map[int]span, len(spans))
	for _, s := range spans {
		m[s.rank] = s
	}
	return m
}

func sortedActives(spans []span) []span {
	var a []span
	for _, s := range spans {
		if s.active {
			a = append(a, s)
		}
	}
	sort.Slice(a, func(i, j int) bool {
		if a[i].st != a[j].st {
			return a[i].st < a[j].st
		}
		return a[i].rank < a[j].rank
	})
	return a
}

// checkPartitionDirect asserts the direct-partition invariants. Refusing to
// partition (ok=false) is always legal — pattern (c) inputs have no clean
// cuts — but an accepted partition must be exact, have an active member in
// every group, and have strictly non-intersecting file areas in group order.
func checkPartitionDirect(spans []span, ngroups int) error {
	groups, ok := partitionDirect(spans, ngroups)
	if !ok {
		return nil
	}
	if len(groups) != ngroups {
		return fmt.Errorf("got %d groups, want %d", len(groups), ngroups)
	}
	if err := coverExactly(spans, groups); err != nil {
		return err
	}
	byRank := spanByRank(spans)
	prevEnd := int64(-1 << 62)
	for g, members := range groups {
		var lo, hi int64
		any := false
		for _, r := range members {
			s := byRank[r]
			if !s.active {
				continue
			}
			if !any || s.st < lo {
				lo = s.st
			}
			if !any || s.end > hi {
				hi = s.end
			}
			any = true
		}
		if !any {
			return fmt.Errorf("group %d has no active member", g)
		}
		if lo < prevEnd {
			return fmt.Errorf("group %d FA [%d,%d) intersects group %d (ends %d)", g, lo, hi, g-1, prevEnd)
		}
		prevEnd = hi
	}
	return nil
}

// checkPartitionLogical asserts the intermediate-view invariants: an exact
// partition into at most ngroups non-empty groups, prefix offsets equal to
// the exclusive prefix sums over the (st, rank)-sorted actives — hence
// monotone non-decreasing in that order — and active ranks appearing across
// the groups exactly in that sorted order.
func checkPartitionLogical(spans []span, ngroups int) error {
	groups, prefix := partitionLogical(spans, ngroups)
	if err := coverExactly(spans, groups); err != nil {
		return err
	}
	actives := sortedActives(spans)
	maxGroups := ngroups
	if len(actives) < maxGroups {
		maxGroups = len(actives)
	}
	if maxGroups < 1 {
		maxGroups = 1
	}
	if len(groups) < 1 || len(groups) > maxGroups {
		return fmt.Errorf("got %d groups, want 1..%d", len(groups), maxGroups)
	}
	for g, members := range groups {
		if len(members) == 0 {
			return fmt.Errorf("group %d is empty after compaction", g)
		}
	}
	if len(prefix) != len(actives) {
		return fmt.Errorf("prefix has %d entries, want %d", len(prefix), len(actives))
	}
	var want int64
	for _, s := range actives {
		got, okp := prefix[s.rank]
		if !okp || got != want {
			return fmt.Errorf("prefix[rank %d] = %d, want %d", s.rank, got, want)
		}
		want += s.size
	}
	byRank := spanByRank(spans)
	var order []int
	for _, g := range groups {
		for _, r := range g {
			if byRank[r].active {
				order = append(order, r)
			}
		}
	}
	for i, s := range actives {
		if order[i] != s.rank {
			return fmt.Errorf("active rank order broken at %d: got rank %d, want %d", i, order[i], s.rank)
		}
	}
	return nil
}

func TestPropPartitionDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spans := randomSpans(rng)
		ngroups := 1 + rng.Intn(len(spans))
		if err := checkPartitionDirect(spans, ngroups); err != nil {
			t.Logf("seed %d ngroups %d: %v", seed, ngroups, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropPartitionDirectSerial forces pattern (a) — strictly serial,
// non-overlapping segments — where direct partitioning must always succeed
// for any feasible group count.
func TestPropPartitionDirectSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		spans := make([]span, n)
		var cursor int64
		for r := 0; r < n; r++ {
			size := 1 + rng.Int63n(500)
			spans[r] = span{rank: r, st: cursor, end: cursor + size, size: size, active: true}
			cursor += size + rng.Int63n(50)
		}
		ngroups := 1 + rng.Intn(n)
		if _, ok := partitionDirect(spans, ngroups); !ok {
			t.Logf("seed %d: direct partition refused serial spans (n=%d ngroups=%d)", seed, n, ngroups)
			return false
		}
		return checkPartitionDirect(spans, ngroups) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropPartitionLogical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spans := randomSpans(rng)
		ngroups := 1 + rng.Intn(len(spans)+2) // may exceed active count; must clamp
		if err := checkPartitionLogical(spans, ngroups); err != nil {
			t.Logf("seed %d ngroups %d: %v", seed, ngroups, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPartitionLogicalAllInactive pins the degenerate no-data collective:
// every rank inactive must still yield one group holding all ranks.
func TestPartitionLogicalAllInactive(t *testing.T) {
	spans := []span{{rank: 0}, {rank: 1}, {rank: 2}}
	groups, prefix := partitionLogical(spans, 2)
	if err := coverExactly(spans, groups); err != nil {
		t.Fatal(err)
	}
	if len(prefix) != 0 {
		t.Fatalf("prefix for all-inactive spans = %v, want empty", prefix)
	}
}
