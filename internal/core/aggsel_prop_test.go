package core

// Invariant tests for aggregator distribution (paper §4.2). The generator
// stays inside the regime the paper's algorithm targets — cyclic rank→node
// placement, contiguous per-group rank blocks at least one node-cycle long,
// and at least as many aggregator nodes as groups, so every group's member
// list covers every aggregator node. Under those preconditions the
// round-robin pass must satisfy all three of §4.2's requirements outright:
// (a) every subgroup gets at least one aggregator without drafting,
// (b) no aggregator node serves two subgroups, and
// (c) aggregator counts are spread evenly (max-min <= 1).

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomAggCase builds groups of contiguous rank blocks (each block at least
// numNodes long, so it covers every node under cyclic placement), a cyclic
// nodeOf, and a random aggregator-node subset of size >= numGroups.
func randomAggCase(rng *rand.Rand) (groups [][]int, nodeOf func(int) int, aggNodes []int) {
	numNodes := 2 + rng.Intn(7)
	numGroups := 1 + rng.Intn(4)
	if numGroups > numNodes {
		numGroups = numNodes // need |aggNodes| >= numGroups and aggNodes ⊆ nodes
	}
	groups = make([][]int, numGroups)
	next := 0
	for g := range groups {
		blockLen := numNodes + rng.Intn(2*numNodes)
		for i := 0; i < blockLen; i++ {
			groups[g] = append(groups[g], next)
			next++
		}
	}
	nodeOf = func(rank int) int { return rank % numNodes }
	nAgg := numGroups + rng.Intn(numNodes-numGroups+1)
	if nAgg > numNodes {
		nAgg = numNodes
	}
	for _, n := range rng.Perm(numNodes)[:nAgg] {
		aggNodes = append(aggNodes, n)
	}
	return groups, nodeOf, aggNodes
}

func TestPropDistributeAggregators(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		groups, nodeOf, aggNodes := randomAggCase(rng)
		out := DistributeAggregators(groups, nodeOf, aggNodes)

		allowed := make(map[int]bool, len(aggNodes))
		for _, n := range aggNodes {
			allowed[n] = true
		}
		member := make(map[int]int) // rank -> group
		for g, ms := range groups {
			for _, r := range ms {
				member[r] = g
			}
		}

		if len(out) != len(groups) {
			t.Logf("seed %d: %d aggregator lists for %d groups", seed, len(out), len(groups))
			return false
		}
		nodeOwner := make(map[int]int) // agg node -> group
		seenRank := make(map[int]bool)
		minN, maxN := len(aggNodes)+1, 0
		for g, aggs := range out {
			// (a) every subgroup has at least one aggregator.
			if len(aggs) == 0 {
				t.Logf("seed %d: group %d has no aggregator", seed, g)
				return false
			}
			for _, r := range aggs {
				if member[r] != g {
					t.Logf("seed %d: aggregator rank %d not a member of group %d", seed, r, g)
					return false
				}
				if seenRank[r] {
					t.Logf("seed %d: rank %d aggregates twice", seed, r)
					return false
				}
				seenRank[r] = true
				n := nodeOf(r)
				// Every group covers every agg node, so the draft
				// fallback must never fire: all picks sit on allowed
				// nodes.
				if !allowed[n] {
					t.Logf("seed %d: aggregator rank %d on non-aggregator node %d", seed, r, n)
					return false
				}
				// (b) no node aggregates for two different subgroups.
				if owner, ok := nodeOwner[n]; ok && owner != g {
					t.Logf("seed %d: node %d aggregates for groups %d and %d", seed, n, owner, g)
					return false
				}
				nodeOwner[n] = g
			}
			if len(aggs) < minN {
				minN = len(aggs)
			}
			if len(aggs) > maxN {
				maxN = len(aggs)
			}
		}
		// All aggregator nodes get consumed in this regime.
		if len(nodeOwner) != len(aggNodes) {
			t.Logf("seed %d: %d of %d aggregator nodes used", seed, len(nodeOwner), len(aggNodes))
			return false
		}
		// (c) even spread.
		if maxN-minN > 1 {
			t.Logf("seed %d: aggregator spread %d-%d > 1 (groups=%d aggNodes=%d)",
				seed, maxN, minN, len(groups), len(aggNodes))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDistributeAggregatorsDraft pins the drafting fallback outside the
// clean regime: a group with no member on any aggregator node must still
// receive one aggregator (requirement (a)), drafted from its own members on
// a node that hosts no other group's aggregator when possible.
func TestDistributeAggregatorsDraft(t *testing.T) {
	groups := [][]int{{0, 1}, {2, 3}}
	nodeOf := func(rank int) int { return rank } // one rank per node
	aggNodes := []int{0, 1}                      // both in group 0
	out := DistributeAggregators(groups, nodeOf, aggNodes)
	if len(out[0]) == 0 || len(out[1]) == 0 {
		t.Fatalf("draft fallback failed: %v", out)
	}
	if got := out[1][0]; got != 2 && got != 3 {
		t.Fatalf("group 1 drafted rank %d, want one of its own members", got)
	}
	if nodeOf(out[1][0]) == nodeOf(out[0][0]) {
		t.Fatalf("draft reused an aggregator node: %v", out)
	}
}
