// Package core implements ParColl, the paper's contribution: partitioned
// collective I/O. It augments the extended two-phase protocol (implemented
// in internal/mpiio) with three mechanisms:
//
//   - file area partitioning: processes and the file are consistently
//     divided into subgroups with disjoint file areas (fa.go);
//   - I/O aggregator distribution: the hinted aggregators are spread across
//     subgroups, at least one each, never sharing a node across groups
//     (aggsel.go);
//   - intermediate file views: scattered access patterns are virtually
//     joined so partitioning always succeeds, with reads/writes translated
//     back to the physical layout (iview.go).
//
// Partitioning happens at file-view initiation time, as in the paper: the
// one global gather of every rank's view footprint is the last global
// operation. Every subsequent collective call runs ordinary two-phase
// collective I/O entirely inside the rank's subgroup, so the global
// synchronization that builds the "collective wall" is gone and subgroups
// are free to progress (and drift) independently. ParColl does not change
// MPI-IO semantics: for non-overlapping concurrent writes the resulting
// file is byte-identical to the unpartitioned protocol's.
package core

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/nbio"
	"repro/internal/recovery"
	"repro/internal/storage"
)

// Mode reports how the current file view was partitioned.
type Mode int

const (
	// ModeSingle means no partitioning (one global group; baseline ext2ph).
	ModeSingle Mode = iota
	// ModeDirect means the file was cut into disjoint FAs directly
	// (patterns (a) and (b) of the paper's Figure 4).
	ModeDirect
	// ModeIntermediate means FAs intersected and an intermediate file view
	// was switched in (pattern (c)).
	ModeIntermediate
)

func (m Mode) String() string {
	switch m {
	case ModeSingle:
		return "single"
	case ModeDirect:
		return "direct"
	case ModeIntermediate:
		return "intermediate"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures ParColl.
type Options struct {
	// NumGroups is the requested number of subgroups (the paper's
	// ParColl-N). Values <= 1 run the unpartitioned baseline protocol
	// unless AutoGroups is set.
	NumGroups int
	// AutoGroups picks the subgroup count automatically — the paper's
	// future-work item. The heuristic keeps subgroups of about eight
	// processes (the paper's empirical sweet spot across IOR and
	// MPI-Tile-IO), clipped to what the access pattern can support.
	AutoGroups bool
	// AutoTune goes further than AutoGroups: the first collective calls
	// after a SetView try a ladder of group counts, timing each call
	// collectively, and subsequent calls stick with the fastest. Useful
	// for periodic-output applications (checkpoints, solution dumps)
	// where the first few writes can pay for measurement.
	AutoTune bool
	// Hints passes through the MPI-IO hints (collective buffer size,
	// aggregator count or list, alltoallv algorithm).
	Hints mpiio.Hints
	// Run passes through per-run state that is not a hint: fault plan,
	// recovery policy, trace recorder, metrics registry. It reaches the
	// subgroup files ParColl opens internally.
	Run mpiio.RunOptions
	// ForceIntermediate always uses the intermediate-view path, even when
	// direct FA partitioning would succeed (ablation).
	ForceIntermediate bool
	// DisableIntermediate forbids view switching; views whose FAs
	// intersect fall back to a single group (ablation).
	DisableIntermediate bool
	// NaiveAggregators skips the paper's distribution algorithm: each
	// subgroup keeps whichever default aggregators happen to be among its
	// members, so the hinted aggregators can pile into the first groups —
	// the failure mode Section 4.2 is designed to avoid (ablation).
	NaiveAggregators bool
	// Workers records the simulation engine's domain-worker count for the
	// run this option set feeds (<= 1 means the serial scheduler). It is
	// not a ParColl hint — the engine is fixed by mpi.RunPlanWorkers before
	// any file is opened — but carrying it here keeps the whole of a run's
	// configuration in one place for tools and harnesses to surface.
	Workers int
	// MaterializeIntermediate stores the intermediate file view instead of
	// translating writes back to the original physical layout: each
	// group's FA lives contiguously at its logical position, so
	// aggregators issue large dense requests. Reads through the same
	// ParColl handle map back identically, so applications that access the
	// file through their views (as the paper's benchmarks do) see
	// unchanged semantics — but the on-disk format differs from the
	// unpartitioned protocol's. The default translates back segment by
	// segment, keeping the on-disk bytes identical to baseline collective
	// I/O at the cost of physically scattered aggregator requests for
	// pattern-(c) workloads.
	MaterializeIntermediate bool
}

// Plan describes how the current view was partitioned (for tests, tools,
// and the experiment harness).
type Plan struct {
	Mode        Mode
	NumGroups   int
	Groups      [][]int // world ranks per group
	Aggregators [][]int // world ranks per group
	MyGroup     int
}

// autoGroupSize is the target processes-per-subgroup for AutoGroups; the
// paper's sweeps found aggregation-vs-synchronization balance at about
// eight processes per group (Figures 6 and 7).
const autoGroupSize = 8

// tuneState drives AutoTune's measure-then-commit ladder.
type tuneState struct {
	gen        int       // view generation being tuned
	candidates []int     // group counts to try
	next       int       // next candidate index to try
	elapsed    []float64 // measured global seconds per candidate
	chosen     int       // committed group count (0 = still tuning)
	callStart  float64
}

// tuneLadder returns the group counts AutoTune tries.
func tuneLadder(size int) []int {
	var out []int
	for _, g := range []int{1, size / 16, size / 8, size / 4} {
		if g >= 1 && (len(out) == 0 || g != out[len(out)-1]) {
			out = append(out, g)
		}
	}
	return out
}

// File is a ParColl file handle. Like an MPI_File, each rank holds its own.
type File struct {
	r      *mpi.Rank
	comm   *mpi.Comm
	fs     storage.Backend
	name   string
	stripe storage.Stripe
	opts   Options
	view   datatype.View

	viewGen int // bumped by SetView
	planGen int // view generation the current plan was built for
	bbEpoch int // staging-death epoch the aggregator set accounts for
	subComm *mpi.Comm
	subFile *mpiio.File
	plan    Plan
	tune    tuneState

	prof mpiio.Breakdown
	prev [mpi.NumClasses]float64
}

// Open collectively opens name with ParColl semantics over comm.
func Open(comm *mpi.Comm, fs storage.Backend, name string, stripe storage.Stripe, opts Options) *File {
	f := &File{
		r:       comm.RankHandle(),
		comm:    comm,
		fs:      fs,
		name:    name,
		stripe:  stripe,
		opts:    opts,
		view:    datatype.WholeFile(),
		viewGen: 1,
	}
	f.prev = f.r.Prof().Times
	return f
}

// SetView installs the rank's file view. It is collective in effect: all
// ranks must install their (per-rank) views in the same call sequence, and
// the next collective operation re-partitions from the new views.
func (f *File) SetView(v datatype.View) {
	f.view = v
	f.viewGen++
}

// View returns the rank's file view.
func (f *File) View() datatype.View { return f.view }

// LastPlan reports how the current view is partitioned.
func (f *File) LastPlan() Plan { return f.plan }

func (f *File) absorb() {
	cur := f.r.Prof().Times
	f.prof.Sync += cur[mpi.ClassSync] - f.prev[mpi.ClassSync]
	f.prof.Exchange += cur[mpi.ClassExchange] - f.prev[mpi.ClassExchange]
	f.prof.IO += cur[mpi.ClassIO] - f.prev[mpi.ClassIO]
	f.prof.Other += cur[mpi.ClassOther] - f.prev[mpi.ClassOther]
	f.prev = cur
}

// Breakdown returns the rank's accumulated sync/exchange/io/other split for
// this file's operations.
func (f *File) Breakdown() mpiio.Breakdown {
	f.absorb()
	return f.prof
}

// Close synchronizes the communicator and returns the final breakdown —
// the per-file summary the paper's instrumentation reports at close time.
func (f *File) Close() mpiio.Breakdown {
	old := f.r.SetClass(mpi.ClassSync)
	f.comm.Barrier()
	f.r.SetClass(old)
	return f.Breakdown()
}

// WriteAtAll collectively writes data through the view at logical offset
// logOff. All communicator members must call it; after partitioning, the
// call is collective only within the rank's subgroup.
func (f *File) WriteAtAll(logOff int64, data []byte) {
	t0 := f.r.Now()
	tuning := f.tuneBegin()
	f.ensurePlan()
	if f.plan.Mode != ModeIntermediate {
		f.subFile.SetView(f.view)
	}
	f.reelectDegraded()
	f.subFile.WriteAtAll(logOff, data)
	if tuning {
		f.tuneEnd()
	}
	f.absorb()
	if rec := f.opts.Run.Lat; rec != nil {
		rec.Add(f.r.Now() - t0)
	}
}

// WriteAt writes independently through the view — no coordination, each
// rank straight to storage (the paper's "w/o Coll" baseline; vectored on
// list-I/O backends).
func (f *File) WriteAt(logOff int64, data []byte) {
	f.ensurePlan()
	f.subFile.SetView(f.view)
	f.subFile.WriteAt(logOff, data)
	f.absorb()
}

// ReadAt reads independently through the view.
func (f *File) ReadAt(logOff, n int64) []byte {
	f.ensurePlan()
	f.subFile.SetView(f.view)
	out := f.subFile.ReadAt(logOff, n)
	f.absorb()
	return out
}

// ReadAtAll collectively reads n view-logical bytes at logOff.
func (f *File) ReadAtAll(logOff, n int64) []byte {
	t0 := f.r.Now()
	tuning := f.tuneBegin()
	f.ensurePlan()
	if f.plan.Mode != ModeIntermediate {
		f.subFile.SetView(f.view)
	}
	out := f.subFile.ReadAtAll(logOff, n)
	if tuning {
		f.tuneEnd()
	}
	f.absorb()
	if rec := f.opts.Run.Lat; rec != nil {
		rec.Add(f.r.Now() - t0)
	}
	return out
}

// WriteAllBegin starts a split collective write (MPI_File_write_all_begin
// semantics): the two-phase rounds run now, with each subgroup pipelining
// its exchange and OST writes independently inside its File Area, and up to
// two writes per aggregator still in flight on return. Compute between
// Begin and WriteAllEnd hides their tails. No other collective may run on
// this handle until End.
func (f *File) WriteAllBegin(logOff int64, data []byte) *nbio.Request {
	tuning := f.tuneBegin()
	f.ensurePlan()
	if f.plan.Mode != ModeIntermediate {
		f.subFile.SetView(f.view)
	}
	f.reelectDegraded()
	sub := f.subFile.WriteAllBegin(logOff, data)
	return nbio.Start(f.r, f.r.Now(), func() {
		f.subFile.WriteAllEnd(sub)
		if tuning {
			f.tuneEnd()
		}
		f.absorb()
	}, nil, sub)
}

// WriteAllEnd completes a split collective write.
func (f *File) WriteAllEnd(q *nbio.Request) { q.Wait() }

// ReadAllBegin starts a split collective read; ReadAllEnd returns the data.
func (f *File) ReadAllBegin(logOff, n int64) *nbio.Request {
	tuning := f.tuneBegin()
	f.ensurePlan()
	if f.plan.Mode != ModeIntermediate {
		f.subFile.SetView(f.view)
	}
	sub := f.subFile.ReadAllBegin(logOff, n)
	out := new([]byte)
	return nbio.Start(f.r, f.r.Now(), func() {
		*out = f.subFile.ReadAllEnd(sub)
		if tuning {
			f.tuneEnd()
		}
		f.absorb()
	}, nil, out)
}

// ReadAllEnd completes a split collective read and returns the data.
func (f *File) ReadAllEnd(q *nbio.Request) []byte {
	q.Wait()
	return *(q.Op().(*[]byte))
}

// Overlap returns this rank's accumulated split-collective overlap stats
// (hidden vs. exposed I/O tail time) from the current subgroup file.
func (f *File) Overlap() mpiio.OverlapStats {
	if f.subFile == nil {
		return mpiio.OverlapStats{}
	}
	return f.subFile.Overlap()
}

// Recovery returns this rank's accumulated fail-stop recovery stats from the
// current subgroup file: zero on healthy runs, the subgroup-confined
// detection/failover record when a fault plan carried crashes. Partitioning
// is what keeps the numbers small — only the crashed aggregator's subgroup
// replans, while under the unpartitioned baseline every rank participates.
func (f *File) Recovery() recovery.FailoverStats {
	if f.subFile == nil {
		return recovery.FailoverStats{}
	}
	return f.subFile.Recovery()
}

// reelectDegraded is ParColl's storage-degradation-aware aggregator
// re-election (DESIGN.md §15). A staging node whose memory died is not a
// crashed rank — its process still answers, so the fail-stop watchdogs
// have nothing to detect — but every byte it aggregates from now on pays
// write-through pace. The unpartitioned protocol is stuck with it: ROMIO
// fixes the aggregator set at open and has no per-call planning step to
// revisit it. A ParColl subgroup replans per view, so it can also replan
// per degradation epoch: the group agrees on how many scheduled staging
// deaths its members' clocks have passed (a subgroup allgather — the cost
// is group-confined, the paper's argument again), and on an epoch change
// re-elects one aggregator per *healthy* node among its members. Groups
// without a dead staging node pay only the allgather; ModeSingle pays
// nothing and keeps its open-time aggregators. Healthy runs (no BBFails,
// or a backend the plan cannot reach) never enter — goldens stay
// bit-identical.
func (f *File) reelectDegraded() {
	if f.plan.Mode == ModeSingle || f.subFile.Hierarchical() ||
		!f.opts.Run.Fault.HasBBFails() || !f.fs.Params().Injecting {
		return
	}
	r := f.r
	// Agree on the degradation epoch at synchronized time. [sync, subgroup]
	old := r.SetClass(mpi.ClassSync)
	meta := f.subComm.AllgatherInt64s([]int64{int64(f.opts.Run.Fault.BBDeadCount(r.Now()))})
	r.SetClass(old)
	epoch := 0
	for _, m := range meta {
		if int(m[0]) > epoch {
			epoch = int(m[0])
		}
	}
	if epoch == f.bbEpoch {
		return
	}
	f.bbEpoch = epoch
	dead, ok := f.opts.Run.Fault.BBDeadNodes(epoch)
	if !ok {
		return // a kill-all plan leaves no healthy node to move to
	}
	// Default selection rule, minus dead staging nodes: the first member
	// rank on each healthy node. An all-dead group has nowhere to go.
	var aggs []int
	seen := make(map[int]bool)
	for cr := 0; cr < f.subComm.Size(); cr++ {
		n := r.W.Cluster.NodeOf(f.subComm.WorldRankOf(cr))
		if dead[n] || seen[n] {
			continue
		}
		seen[n] = true
		aggs = append(aggs, cr)
	}
	if len(aggs) == 0 || equalInts(aggs, f.subFile.Aggregators()) {
		return
	}
	f.subFile.SetAggregators(aggs)
	if f.plan.MyGroup < len(f.plan.Aggregators) {
		f.plan.Aggregators[f.plan.MyGroup] = worldOf(f.subComm, aggs)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tuneBegin reports whether this call is an AutoTune measurement and, if
// so, stamps the globally synchronized start time and forces a re-plan
// with the next candidate group count.
func (f *File) tuneBegin() bool {
	if !f.opts.AutoTune {
		return false
	}
	if f.tune.gen != f.viewGen {
		f.tune = tuneState{gen: f.viewGen, candidates: tuneLadder(f.comm.Size())}
	}
	if f.tune.chosen > 0 {
		return false
	}
	f.planGen = 0 // re-plan with the current candidate
	old := f.r.SetClass(mpi.ClassSync)
	f.tune.callStart = f.comm.MaxFinishTime()
	f.r.SetClass(old)
	return true
}

// tuneEnd records the measured call time and advances (or commits) the
// candidate ladder. Every rank computes the same result: the measurement
// is a collective max-finish time.
func (f *File) tuneEnd() {
	old := f.r.SetClass(mpi.ClassSync)
	end := f.comm.MaxFinishTime()
	f.r.SetClass(old)
	f.tune.elapsed = append(f.tune.elapsed, end-f.tune.callStart)
	f.tune.next++
	if f.tune.next >= len(f.tune.candidates) {
		best := 0
		for i, d := range f.tune.elapsed {
			if d < f.tune.elapsed[best] {
				best = i
			}
		}
		f.tune.chosen = f.tune.candidates[best]
		f.planGen = 0 // next call re-plans once with the winner
	}
}

// TunedGroups reports the group count AutoTune committed to (0 while still
// measuring or when AutoTune is off).
func (f *File) TunedGroups() int { return f.tune.chosen }

// instanceSegs returns the physical segments of one instance of the rank's
// view filetype (the footprint ParColl partitions on).
func (f *File) instanceSegs() []datatype.Segment {
	size := f.view.Filetype.Size()
	if size <= 0 {
		return nil
	}
	return f.view.Map(0, size)
}

// ensurePlan partitions processes and file for the current view. It runs a
// global gather the first collective call after a SetView — the paper's
// "file view initiation time" — and nothing global afterwards.
func (f *File) ensurePlan() {
	if f.planGen == f.viewGen && f.subFile != nil {
		return
	}
	f.planGen = f.viewGen
	r, comm := f.r, f.comm

	partitionable := !f.view.IsContiguous() || f.view.Filetype.Size() > 1
	segs := f.instanceSegs()
	st, end, size := int64(-1), int64(-1), int64(0)
	if partitionable && len(segs) > 0 {
		st = segs[0].Off
		end = segs[len(segs)-1].End()
		for _, s := range segs {
			size += s.Len
		}
	}
	// The one global step: gather every rank's view footprint. [sync]
	old := r.SetClass(mpi.ClassSync)
	meta := comm.AllgatherInt64s([]int64{st, end, size, f.view.Filetype.Extent()})
	r.SetClass(old)

	spans := make([]span, comm.Size())
	uniformExtent := true
	refExtent := int64(-1)
	for cr, m := range meta {
		spans[cr] = span{rank: cr, st: m[0], end: m[1], size: m[2], active: m[0] >= 0 && m[1] > m[0]}
		if !spans[cr].active {
			continue
		}
		// Every rank must reach the same verdict, so compare active
		// ranks against the first active rank's extent.
		if refExtent == -1 {
			refExtent = m[3]
		} else if m[3] != refExtent {
			uniformExtent = false
		}
	}

	ngroups := f.opts.NumGroups
	if f.opts.AutoGroups {
		ngroups = comm.Size() / autoGroupSize
	}
	if f.opts.AutoTune {
		if f.tune.chosen > 0 {
			ngroups = f.tune.chosen
		} else {
			ngroups = f.tune.candidates[f.tune.next]
		}
	}
	if ngroups < 1 {
		ngroups = 1
	}
	if ngroups > comm.Size() {
		ngroups = comm.Size()
	}
	anyActive := false
	for _, s := range spans {
		if s.active {
			anyActive = true
			break
		}
	}
	if !anyActive {
		ngroups = 1
	}

	var groups [][]int // comm ranks
	var prefix map[int]int64
	mode := ModeSingle
	if ngroups > 1 {
		if f.opts.ForceIntermediate && uniformExtent {
			mode = ModeIntermediate
			groups, prefix = partitionLogical(spans, ngroups)
		} else if g, ok := partitionDirect(spans, ngroups); ok {
			mode = ModeDirect
			groups = g
		} else if f.opts.DisableIntermediate || !uniformExtent {
			mode = ModeSingle
		} else {
			mode = ModeIntermediate
			groups, prefix = partitionLogical(spans, ngroups)
		}
	}
	if mode == ModeSingle {
		groups = [][]int{allRanks(comm.Size())}
	}

	// Locate my group and split the communicator. [sync]
	myGroup := groupOf(groups, comm.Rank())
	old = r.SetClass(mpi.ClassSync)
	subComm := comm.Split(myGroup, comm.Rank())
	r.SetClass(old)

	// Distribute the hinted aggregators across groups (paper §4.2). Every
	// rank computes the same assignment from the gathered metadata.
	nodeOfComm := func(cr int) int { return r.W.Cluster.NodeOf(comm.WorldRankOf(cr)) }
	var aggsPerGroup [][]int
	subHints := f.opts.Hints
	if mode != ModeSingle {
		memberNodes := make([]int, comm.Size())
		for cr := range memberNodes {
			memberNodes[cr] = nodeOfComm(cr)
		}
		var explicitNodes []int
		for _, w := range f.opts.Hints.AggregatorList {
			explicitNodes = append(explicitNodes, r.W.Cluster.NodeOf(w))
		}
		nodes := aggregatorNodes(memberNodes, explicitNodes, f.opts.Hints.CBNodes)
		if f.opts.NaiveAggregators {
			aggsPerGroup = naiveAggregators(groups, nodeOfComm, nodes)
		} else {
			aggsPerGroup = DistributeAggregators(groups, nodeOfComm, nodes)
		}
		world := make([]int, len(aggsPerGroup[myGroup]))
		for i, cr := range aggsPerGroup[myGroup] {
			world[i] = comm.WorldRankOf(cr)
		}
		subHints.AggregatorList = world
		subHints.CBNodes = 0
	}

	subFile := mpiio.OpenWith(subComm, f.fs, f.name, f.stripe, subHints, f.opts.Run)

	if mode == ModeIntermediate {
		if !f.opts.MaterializeIntermediate {
			// Exchange one instance's segment lists within the subgroup
			// and build the group-local compact view; aggregators
			// translate logical windows back to the physical layout.
			// [sync, subgroup only]
			old = r.SetClass(mpi.ClassSync)
			lists := subComm.Allgather(encSegs(segs))
			r.SetClass(old)
			segLists := make([][]datatype.Segment, len(lists))
			for i, b := range lists {
				segLists[i] = decSegs(b)
			}
			cv := newCompactView(segLists, f.view.Filetype.Extent())
			subFile.SetTranslator(cv)
			var ft datatype.Type = datatype.Contig(0)
			if len(segs) > 0 {
				ft = datatype.NewExtended(datatype.NewIndexed(cv.logicalSegs(segs)), cv.size)
			}
			subFile.SetView(datatype.View{Disp: 0, Filetype: ft})
		} else {
			// Materialized intermediate file: every rank's data for one
			// instance lives contiguously at its logical prefix, and
			// instances tile at the total per-instance size. Aggregator
			// requests are as dense as the unpartitioned protocol's.
			var total int64
			for _, sp := range spans {
				if sp.active {
					total += sp.size
				}
			}
			base := prefix[comm.Rank()]
			var ft datatype.Type = datatype.Contig(0)
			if size > 0 {
				ft = datatype.NewExtended(datatype.Contig(size), total)
			}
			subFile.SetView(datatype.View{Disp: base, Filetype: ft})
		}
	}

	// Record the plan in world ranks for observability.
	plan := Plan{Mode: mode, NumGroups: len(groups), MyGroup: myGroup}
	for _, g := range groups {
		plan.Groups = append(plan.Groups, worldOf(comm, g))
	}
	for _, g := range aggsPerGroup {
		plan.Aggregators = append(plan.Aggregators, worldOf(comm, g))
	}
	if mode == ModeSingle {
		plan.Aggregators = [][]int{worldOf(subComm, subFile.Aggregators())}
	}

	f.plan = plan
	f.subComm = subComm
	f.subFile = subFile
	f.bbEpoch = 0 // a fresh subFile starts from the open-time aggregators
	f.absorb()
}

func worldOf(comm *mpi.Comm, crs []int) []int {
	out := make([]int, len(crs))
	for i, cr := range crs {
		out[i] = comm.WorldRankOf(cr)
	}
	return out
}

func allRanks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func groupOf(groups [][]int, rank int) int {
	for g, members := range groups {
		for _, m := range members {
			if m == rank {
				return g
			}
		}
	}
	panic("core: rank not assigned to any group")
}
