package core

// I/O aggregator distribution (paper §4.2, Figure 5).
//
// ParColl must honor the MPI-IO aggregator hints while dividing processes
// into subgroups. The distribution algorithm assigns aggregators so that:
//
//	(a) every subgroup has at least one aggregator;
//	(b) no two processes on the same physical node aggregate for
//	    different subgroups;
//	(c) aggregators are spread as evenly as the groups permit.
//
// Following the paper, it traverses each subgroup's processes round-robin
// across subgroups, picking the next process that sits on an unused
// aggregator node, until all aggregator nodes are consumed or no progress
// can be made.

// DistributeAggregators assigns aggregators to groups.
//
// groups lists the member world ranks of each subgroup (traversal order is
// the given order). nodeOf maps a world rank to its physical node. aggNodes
// is the set of nodes allowed to host aggregators (derived from the user's
// hints: the nodes of the default one-per-node list, or of the explicit
// aggregator rank list).
//
// The result holds, per group, the world ranks chosen as aggregators. Every
// group receives at least one entry: if the round-robin pass leaves a group
// empty (no member on an available aggregator node), its first member is
// drafted, honoring requirement (a).
func DistributeAggregators(groups [][]int, nodeOf func(rank int) int, aggNodes []int) [][]int {
	allowed := make(map[int]bool, len(aggNodes))
	for _, n := range aggNodes {
		allowed[n] = true
	}
	used := make(map[int]bool, len(aggNodes))
	out := make([][]int, len(groups))
	cursor := make([]int, len(groups))
	remaining := len(aggNodes)
	for remaining > 0 {
		progress := false
		for g, members := range groups {
			for cursor[g] < len(members) {
				rank := members[cursor[g]]
				cursor[g]++
				node := nodeOf(rank)
				if allowed[node] && !used[node] {
					used[node] = true
					remaining--
					out[g] = append(out[g], rank)
					progress = true
					break
				}
			}
		}
		if !progress {
			break
		}
	}
	for g, members := range groups {
		if len(out[g]) != 0 || len(members) == 0 {
			continue
		}
		// Requirement (a): draft a member even though none sits on an
		// available aggregator node — preferring a node not already
		// hosting another group's aggregator to keep (b) intact.
		pick := members[0]
		for _, m := range members {
			if !used[nodeOf(m)] {
				pick = m
				break
			}
		}
		used[nodeOf(pick)] = true
		out[g] = append(out[g], pick)
	}
	return out
}

// naiveAggregators is the ablation foil for DistributeAggregators: each
// group keeps the first process per allowed node among its own members,
// with no cross-group coordination. When the aggregator nodes concentrate
// at low ranks (the default list does), early groups hoard them and later
// groups fall back to their first member.
func naiveAggregators(groups [][]int, nodeOf func(rank int) int, aggNodes []int) [][]int {
	allowed := make(map[int]bool, len(aggNodes))
	for _, n := range aggNodes {
		allowed[n] = true
	}
	out := make([][]int, len(groups))
	for g, members := range groups {
		seen := make(map[int]bool)
		for _, m := range members {
			if n := nodeOf(m); allowed[n] && !seen[n] {
				seen[n] = true
				out[g] = append(out[g], m)
			}
		}
		if len(out[g]) == 0 && len(members) > 0 {
			out[g] = append(out[g], members[0])
		}
	}
	return out
}

// aggregatorNodes derives the set of nodes allowed to host aggregators
// from the hints, mirroring mpiio's default selection. memberNodes is the
// node of each comm rank in rank order; explicitNodes (when non-empty) are
// the nodes of an explicitly hinted aggregator list and win over the
// default one-per-node list capped at cbNodes.
func aggregatorNodes(memberNodes []int, explicitNodes []int, cbNodes int) []int {
	src := memberNodes
	if len(explicitNodes) > 0 {
		src = explicitNodes
	}
	seen := make(map[int]bool)
	var nodes []int
	for _, n := range src {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	if len(explicitNodes) == 0 && cbNodes > 0 && cbNodes < len(nodes) {
		nodes = nodes[:cbNodes]
	}
	return nodes
}
