package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/mpiio"
)

// randomDisjointViews builds one random Indexed view per rank such that no
// two ranks' segments overlap: the file is cut into slots, each slot
// assigned to a random rank with a random sub-extent.
func randomDisjointViews(rng *rand.Rand, nprocs int) ([]datatype.View, []int64) {
	slots := nprocs * (2 + rng.Intn(6))
	const slotSize = 257 // deliberately unaligned
	segs := make([][]datatype.Segment, nprocs)
	for s := 0; s < slots; s++ {
		r := rng.Intn(nprocs)
		off := int64(s*slotSize) + rng.Int63n(20)
		ln := rng.Int63n(slotSize-25) + 1
		segs[r] = append(segs[r], datatype.Segment{Off: off, Len: ln})
	}
	views := make([]datatype.View, nprocs)
	sizes := make([]int64, nprocs)
	for r := 0; r < nprocs; r++ {
		if len(segs[r]) == 0 {
			views[r] = datatype.View{Disp: 0, Filetype: datatype.Contig(0)}
			continue
		}
		ft := datatype.NewIndexed(segs[r])
		views[r] = datatype.View{Disp: 0, Filetype: ft}
		sizes[r] = ft.Size()
	}
	return views, sizes
}

// TestFuzzParCollAgainstIndependent drives random disjoint layouts through
// ParColl in strict-physical mode and checks the resulting file is
// byte-identical to independent writes of the same data.
func TestFuzzParCollAgainstIndependent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nprocs := 2 + rng.Intn(7)
		ngroups := 1 + rng.Intn(nprocs)
		force := rng.Intn(2) == 0
		views, sizes := randomDisjointViews(rng, nprocs)
		data := make([][]byte, nprocs)
		for r := range data {
			data[r] = make([]byte, sizes[r])
			rng.Read(data[r])
		}
		stripe := lustre.StripeInfo{Count: 3, Size: 701}

		pcFS := lustre.NewFS(lustre.DefaultConfig())
		mpi.Run(nprocs, cluster.DefaultConfig(), seed, func(r *mpi.Rank) {
			f := Open(mpi.WorldComm(r), pcFS, "fz", stripe, Options{
				NumGroups:         ngroups,
				ForceIntermediate: force,
				Hints:             mpiio.Hints{CBBufferSize: 389},
			})
			f.SetView(views[r.WorldRank()])
			f.WriteAtAll(0, data[r.WorldRank()])
		})

		refFS := lustre.NewFS(lustre.DefaultConfig())
		mpi.Run(nprocs, cluster.DefaultConfig(), seed, func(r *mpi.Rank) {
			f := mpiio.Open(mpi.WorldComm(r), refFS, "fz", stripe, mpiio.Hints{})
			f.SetView(views[r.WorldRank()])
			f.WriteAt(0, data[r.WorldRank()])
		})

		var a, b []byte
		mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			a = pcFS.Open(r, "fz", stripe).Contents()
			b = refFS.Open(r, "fz", stripe).Contents()
		})
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestFuzzMaterializedRoundTrip drives the same random layouts through the
// materialized intermediate layout and checks the application-level
// round trip: every rank reads back exactly what it wrote, through its view.
func TestFuzzMaterializedRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nprocs := 2 + rng.Intn(7)
		ngroups := 1 + rng.Intn(nprocs)
		views, sizes := randomDisjointViews(rng, nprocs)
		data := make([][]byte, nprocs)
		for r := range data {
			data[r] = make([]byte, sizes[r])
			rng.Read(data[r])
		}
		stripe := lustre.StripeInfo{Count: 4, Size: 613}
		ok := true
		fs := lustre.NewFS(lustre.DefaultConfig())
		mpi.Run(nprocs, cluster.DefaultConfig(), seed, func(r *mpi.Rank) {
			comm := mpi.WorldComm(r)
			f := Open(comm, fs, "mz", stripe, Options{
				NumGroups:               ngroups,
				ForceIntermediate:       true,
				MaterializeIntermediate: true,
				Hints:                   mpiio.Hints{CBBufferSize: 449},
			})
			me := r.WorldRank()
			f.SetView(views[me])
			f.WriteAtAll(0, data[me])
			comm.Barrier()
			got := f.ReadAtAll(0, sizes[me])
			if !bytes.Equal(got, data[me]) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// FuzzPartitionDirect is a native fuzz target over the file-area
// partitioners: the fuzzer picks the generator seed and group count, and the
// invariant checkers from fa_prop_test.go must hold (and nothing may panic)
// for both direct and logical partitioning. `go test` exercises the seed
// corpus below; `go test -fuzz=FuzzPartitionDirect ./internal/core` explores.
func FuzzPartitionDirect(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(2), uint8(3))
	f.Add(int64(42), uint8(8))
	f.Add(int64(-7), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, ng uint8) {
		rng := rand.New(rand.NewSource(seed))
		spans := randomSpans(rng)
		ngroups := 1 + int(ng)%(len(spans)+2)
		if err := checkPartitionDirect(spans, ngroups); err != nil {
			t.Errorf("direct: seed %d ngroups %d: %v", seed, ngroups, err)
		}
		if err := checkPartitionLogical(spans, ngroups); err != nil {
			t.Errorf("logical: seed %d ngroups %d: %v", seed, ngroups, err)
		}
	})
}

// TestFuzzMultiCallSameView checks repeated collective writes through one
// view (plan caching path) against independent writes, at random offsets.
func TestFuzzMultiCallSameView(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nprocs := 2 + rng.Intn(5)
		ngroups := 1 + rng.Intn(nprocs)
		per := int64(rng.Intn(2000) + 500)
		calls := 2 + rng.Intn(3)
		data := make([][]byte, nprocs)
		for r := range data {
			data[r] = make([]byte, per)
			rng.Read(data[r])
		}
		stripe := lustre.StripeInfo{Count: 2, Size: 331}
		pcFS := lustre.NewFS(lustre.DefaultConfig())
		mpi.Run(nprocs, cluster.DefaultConfig(), seed, func(r *mpi.Rank) {
			f := Open(mpi.WorldComm(r), pcFS, "mc", stripe, Options{NumGroups: ngroups})
			me := r.WorldRank()
			f.SetView(datatype.View{Disp: int64(me) * per, Filetype: datatype.Contig(per)})
			chunk := per / int64(calls)
			for i := 0; i < calls; i++ {
				lo := int64(i) * chunk
				hi := lo + chunk
				if i == calls-1 {
					hi = per
				}
				f.WriteAtAll(lo, data[me][lo:hi])
			}
		})
		var got []byte
		mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			got = pcFS.Open(r, "mc", stripe).Contents()
		})
		want := bytes.Join(data, nil)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
