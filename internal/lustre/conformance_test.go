package lustre

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// TestBackendConformance runs the shared storage.Backend suite against the
// lustre model — the reference implementation the other backends mimic.
func TestBackendConformance(t *testing.T) {
	storagetest.Run(t, "lustre", func() storage.Backend {
		return NewFS(DefaultConfig())
	})
}

// TestBackendFaultConformance runs the shared fault-injection leg: every
// OST rejects requests inside the conformance window, the short retry
// budget exhausts into a typed *recovery.TargetError, and a whole-operation
// retry after the window recovers byte-exact.
func TestBackendFaultConformance(t *testing.T) {
	storagetest.RunFaults(t, "lustre", func() storage.Backend {
		cfg := DefaultConfig()
		cfg.Faults = &fault.Plan{
			Name:     "conf-flaky-ost",
			OSTFails: []fault.OSTFail{{OST: -1, Prob: 1, At: storagetest.FaultAt, For: storagetest.FaultFor}},
		}
		cfg.Retry = recovery.Backoff{MaxAttempts: 3}
		return NewFS(cfg)
	})
}
