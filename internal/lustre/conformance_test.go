package lustre

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/storage/storagetest"
)

// TestBackendConformance runs the shared storage.Backend suite against the
// lustre model — the reference implementation the other backends mimic.
func TestBackendConformance(t *testing.T) {
	storagetest.Run(t, "lustre", func() storage.Backend {
		return NewFS(DefaultConfig())
	})
}
