package lustre

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/recovery"
)

func runFSCfg(t *testing.T, cfg Config, nprocs int, body func(r *mpi.Rank, fs *FS)) float64 {
	t.Helper()
	fs := NewFS(cfg)
	return mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		body(r, fs)
	})
}

// TestRetryAbsorbsTransientFailures: a write that lands inside a flaky
// window succeeds byte-exactly after retries, costs strictly more virtual
// time than the healthy run, and books the failures in the retry counters.
func TestRetryAbsorbsTransientFailures(t *testing.T) {
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i * 11)
	}
	run := func(plan *fault.Plan) (float64, recovery.RetryStats) {
		cfg := DefaultConfig()
		cfg.Jitter = 0
		cfg.TailProb = 0
		cfg.Faults = plan
		var st recovery.RetryStats
		end := runFSCfg(t, cfg, 1, func(r *mpi.Rank, fs *FS) {
			f := fs.Open(r, "flaky", smallStripe())
			f.WriteAt(r, 0, data)
			if got := f.ReadAt(r, 0, int64(len(data))); !bytes.Equal(got, data) {
				t.Error("read-after-write mismatch under transient failures")
			}
			st = fs.RetryStats()
		})
		return end, st
	}
	healthy, hst := run(nil)
	if hst.Attempts != 0 || hst.Failures != 0 {
		t.Fatalf("healthy run booked retry work: %+v", hst)
	}
	// A certain-failure one-shot window [0, 2ms): every early attempt
	// fails, and the backoff schedule carries each request past the
	// window's end well inside the 6-attempt budget.
	flaky := &fault.Plan{OSTFails: []fault.OSTFail{{OST: -1, Prob: 1, At: 0, For: 2e-3}}}
	end, st := run(flaky)
	if st.Failures == 0 || st.Retries == 0 {
		t.Fatalf("no failures injected: %+v", st)
	}
	if st.Exhausted != 0 {
		t.Fatalf("transient window exhausted the budget: %+v", st)
	}
	if end <= healthy {
		t.Errorf("failures cost no time: %g <= %g", end, healthy)
	}
}

// TestRetryDeterministic: two runs under one flaky plan are bit-identical in
// end time and counters.
func TestRetryDeterministic(t *testing.T) {
	run := func() (float64, recovery.RetryStats) {
		cfg := DefaultConfig()
		cfg.Faults = &fault.Plan{OSTFails: []fault.OSTFail{{OST: 0, Prob: 0.5, At: 0, For: 1e-2}}}
		var st recovery.RetryStats
		end := runFSCfg(t, cfg, 2, func(r *mpi.Rank, fs *FS) {
			f := fs.Open(r, "d", smallStripe())
			f.WriteAt(r, int64(r.WorldRank())*8192, make([]byte, 8192))
			f.ReadAt(r, 0, 4096)
			if r.WorldRank() == 0 {
				st = fs.RetryStats()
			}
		})
		return end, st
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("runs differ: (%x, %+v) vs (%x, %+v)", e1, s1, e2, s2)
	}
}

// TestPermanentFailureSurfacesTypedError: a permanently dead OST yields a
// *recovery.TargetError from TryWriteAt/TryReadAt without storing bytes, and
// WriteAt panics on it.
func TestPermanentFailureSurfacesTypedError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &fault.Plan{OSTFails: []fault.OSTFail{{OST: 0, Prob: 1, Permanent: true}}}
	runFSCfg(t, cfg, 1, func(r *mpi.Rank, fs *FS) {
		// Stripe over OST 0 only: every chunk hits the dead target.
		f := fs.Open(r, "dead", StripeInfo{Count: 1, Size: 1024})
		err := f.TryWriteAt(r, 0, []byte("doomed"))
		var oe *recovery.TargetError
		if !errors.As(err, &oe) {
			t.Fatalf("TryWriteAt error = %v, want *recovery.TargetError", err)
		}
		if !oe.Permanent || oe.Layer != "lustre" || oe.Target != 0 || oe.Attempts != 1 {
			t.Fatalf("error detail = %+v", oe)
		}
		if f.Size() != 0 {
			t.Fatal("failed write stored bytes")
		}
		if _, err := f.TryReadAt(r, 0, 16); err == nil {
			t.Fatal("TryReadAt from a dead OST succeeded")
		}
		defer func() {
			if recover() == nil {
				t.Error("WriteAt did not panic on a permanent failure")
			}
		}()
		f.WriteAt(r, 0, []byte("doomed"))
	})
}

// TestBreakerOpensUnderSustainedFailure: a long certain-failure window trips
// the per-OST breaker (exhausting budgets along the way) and the open
// breaker's hold-offs are accounted as backoff time.
func TestBreakerOpensUnderSustainedFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &fault.Plan{OSTFails: []fault.OSTFail{{OST: 0, Prob: 1, At: 0, For: 0.5}}}
	runFSCfg(t, cfg, 1, func(r *mpi.Rank, fs *FS) {
		f := fs.Open(r, "b", StripeInfo{Count: 1, Size: 1024})
		for i := 0; i < 3; i++ {
			if err := f.TryWriteAt(r, 0, []byte("x")); err == nil {
				t.Fatal("write inside a certain-failure window succeeded")
			}
		}
		st := fs.RetryStats()
		if st.BreakerOpens == 0 {
			t.Fatalf("breaker never opened: %+v", st)
		}
		if st.Exhausted != 3 {
			t.Fatalf("exhausted = %d, want 3", st.Exhausted)
		}
		if st.BackoffSecs <= 0 {
			t.Fatalf("no backoff time booked: %+v", st)
		}
		ost := fs.Stats()[0]
		if ost.Errors == 0 {
			t.Fatal("OST error counter untouched")
		}
	})
}
