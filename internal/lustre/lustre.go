// Package lustre models a striped parallel file system in the spirit of the
// Lustre deployment on Jaguar: a set of object storage targets (OSTs) with
// per-request overhead and finite bandwidth, files striped round-robin over
// a subset of OSTs, and a metadata server that serializes opens.
//
// Timing: each contiguous per-OST chunk of a read or write is one RPC. A
// write ships the chunk through the client's transmit NIC (so file I/O and
// message passing contend for the same link, as on the Cray XT), then the
// OST serves it — overhead plus bytes/bandwidth — and acknowledges. Reads
// are symmetric through the receive NIC. The operation completes when the
// slowest chunk completes; the elapsed time is charged to the rank's
// ClassIO bucket.
//
// Data: file contents are stored for real (sparse page map) so tests can
// verify byte-exact read-after-write behaviour. CostScale lets experiments
// move small real buffers while being charged for paper-sized data.
package lustre

import (
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/internal/ldlm"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Config describes the file system hardware model.
type Config struct {
	NumOSTs         int     // object storage targets available
	OSTBandwidth    float64 // bytes/second each OST sustains
	RequestOverhead float64 // seconds of fixed cost per RPC (seek, service)
	OpenCost        float64 // seconds of metadata-server time per open
	CostScale       float64 // virtual bytes per real byte (default 1)
	// Jitter is the relative service-time noise per request (0.1 = ±10%),
	// drawn deterministically from Seed. Shared storage is never
	// noise-free; the noise is what lets independent ParColl subgroups
	// drift apart instead of hammering the same stripe in lockstep, and it
	// makes straggler-waiting grow with synchronization-group size.
	Jitter float64
	Seed   int64
	// SwitchPenalty is the extra service time an OST pays when a request
	// comes from a different client than the previous one (extent-lock
	// revocation plus a disk seek). It is why a thousand uncoordinated
	// writers collapse — the paper's "Cray w/o Coll" at ~60 MB/s — while
	// a few aggregators with large sequential requests amortize it.
	SwitchPenalty float64
	// TailProb and TailPenalty model heavy-tailed service times (RAID
	// controller hiccups, background scrubbing, shared-machine
	// interference — the noise the paper averaged repeated measurements
	// over). Tails are what the collective wall amplifies: a globally
	// synchronized protocol stalls every process on every tail event,
	// while ParColl confines each tail to one subgroup.
	TailProb    float64
	TailPenalty float64
	// UseExtentLocks replaces the flat SwitchPenalty heuristic with the
	// real mechanism it approximates: per-object extent locks managed by
	// internal/ldlm. Every request enqueues a lock on its OST object; each
	// conflicting holder costs one blocking-AST round trip (RevokeCost).
	UseExtentLocks bool
	// RevokeCost is the time one lock callback adds to a request when
	// extent locks are enabled (callback + flush + re-grant).
	RevokeCost float64
	// Faults, when non-nil, degrades OSTs per the plan: service times are
	// multiplied by the per-OST scale, and requests arriving inside a
	// transient unavailability window stall until it closes. Both effects
	// are pure functions of (OST, virtual time), so determinism holds.
	// Plans carrying OSTFails additionally make requests fail outright;
	// those are absorbed by the retry engine (capped exponential backoff
	// plus a per-OST circuit breaker) and surface as typed
	// *recovery.TargetError only when permanent or budget-exhausted.
	Faults *fault.Plan
	// Retry overrides the retry engine's backoff schedule; zero fields take
	// recovery's defaults. Only consulted when Faults injects OST errors.
	Retry recovery.Backoff
}

// DefaultConfig approximates the paper's test file system: 72 OSTs behind
// 4 Gbps Fibre Channel, about 140 MB/s per OST with sub-millisecond
// request overhead.
func DefaultConfig() Config {
	return Config{
		NumOSTs:         72,
		OSTBandwidth:    1.4e8,
		RequestOverhead: 8e-4,
		OpenCost:        5e-5,
		CostScale:       1,
		Jitter:          0.1,
		Seed:            1,
		SwitchPenalty:   1.5e-3,
		TailProb:        0.02,
		TailPenalty:     3e-2,
		RevokeCost:      1.5e-3,
	}
}

// StripeInfo is a file's striping layout, set at create time. It is the
// storage package's Stripe — the layout type moved to the backend seam in
// the storage.Backend extraction; the alias keeps every call site reading
// (and compiling) unchanged.
type StripeInfo = storage.Stripe

// DefaultStripe mirrors the paper's experiments: 64 targets, 4 MB units.
func DefaultStripe() StripeInfo { return StripeInfo{Count: 64, Size: 4 << 20} }

// FS is one file system instance. Create one per simulation run and share
// it across ranks (the engine serializes access).
type FS struct {
	cfg        Config
	osts       []*sim.Resource
	mds        *sim.Resource
	files      map[string]*fileObj
	rng        *rand.Rand
	lastClient []int // per OST: world rank of the previous requester
	stats      []OSTStat
	locks      *ldlm.Manager // non-nil when UseExtentLocks
	sinceTrim  int           // requests since the last ledger compaction

	// Retry engine, armed only when cfg.Faults injects OST errors. The
	// healthy path never touches any of it, so plans without OSTFails are
	// bit-identical (and allocation-identical) to builds without the
	// engine.
	inj      bool
	retry    recovery.Backoff
	brk      *recovery.BreakerSet // keyed by OST id
	rstats   recovery.RetryStats
	rstatsBy map[int]*recovery.RetryStats // per JobID; lazily populated

	// Server-side admission policy (nil = unshaped FIFO fast path). Every
	// request's service start passes through qos.Admit, keyed by the
	// issuing rank's JobID, before the OST ledger books it — DESIGN.md §16.
	qos qos.Policy

	// Integrity ledger (nil unless SetLedger attached one). Recording a
	// digest is free in virtual time, so an audited run stays bit-identical.
	ledger *storage.Ledger

	// Pre-resolved obs instruments (nil unless SetObs armed them). The
	// healthy fast path pays one nil check per request.
	obsSvc     *obs.Histogram // per-request OST service time
	obsWait    *obs.Histogram // per-request OST queue wait (Acquire start - arrival)
	obsRetries *obs.Counter
	obsOpens   *obs.Counter
}

// SetObs attaches a metrics registry: every served request observes its
// service time and queue wait, and the retry engine counts retries and
// breaker opens as they happen. Pass nil to detach. The instruments only
// read values the simulation already computed — no clock advances, no RNG
// draws — so an instrumented run is bit-identical to a bare one.
func (fs *FS) SetObs(reg *obs.Registry) {
	if reg == nil {
		fs.obsSvc, fs.obsWait, fs.obsRetries, fs.obsOpens = nil, nil, nil, nil
		return
	}
	fs.obsSvc = reg.Histogram("lustre.ost.service.secs", nil)
	fs.obsWait = reg.Histogram("lustre.ost.queue_wait.secs", nil)
	fs.obsRetries = reg.Counter("lustre.retry.retries")
	fs.obsOpens = reg.Counter("lustre.retry.breaker_opens")
}

// trimEvery is how many I/O requests pass between ledger compactions.
const trimEvery = 512

// maybeTrim periodically drops fully-past intervals from the OST and MDS
// ledgers so fragmented bookings cannot grow them without bound over long
// runs. The watermark is the engine-wide minimum proc clock: every future
// booking's start time is at or after it, so trimming is invisible to
// results (see sim.Resource.Trim).
func (fs *FS) maybeTrim(r *mpi.Rank) {
	fs.sinceTrim++
	if fs.sinceTrim < trimEvery {
		return
	}
	fs.sinceTrim = 0
	w := r.P.MinClock()
	for _, o := range fs.osts {
		o.Trim(w)
	}
	fs.mds.Trim(w)
}

// OSTStat aggregates one OST's service counters for analysis output (an
// alias of the storage seam's per-target counter type).
type OSTStat = storage.TargetStat

// svcTime returns the service time for a request of virt bytes on OST ost
// issued by client rank arriving at virtual time `at`, including jitter and
// concurrency penalties: either the flat client-switch heuristic or, with
// UseExtentLocks, the revocation round trips the LDLM reports for the
// extent [off, off+ln). Under a fault plan, the base service time is scaled
// by the OST's degradation factor and a request arriving inside a downtime
// window additionally waits for the OST to come back up.
func (fs *FS) svcTime(obj string, ost int, rank int, at float64, off, ln int64, virt float64, mode ldlm.Mode) float64 {
	st := &fs.stats[ost]
	st.Requests++
	st.Bytes += int64(virt)
	svc := (fs.cfg.RequestOverhead + virt/fs.cfg.OSTBandwidth) * fs.noise()
	if fs.cfg.Faults != nil {
		base := svc
		svc *= fs.cfg.Faults.OSTScale(ost)
		svc += fs.cfg.Faults.OSTDownDelay(ost, at)
		st.FaultSecs += svc - base
	}
	if fs.locks != nil {
		key := fmt.Sprintf("%s/%d", obj, ost)
		if revoked := fs.locks.Enqueue(key, rank, off, off+ln, mode); revoked > 0 {
			svc += float64(revoked) * fs.cfg.RevokeCost
			st.Switches += int64(revoked)
		}
	} else if fs.lastClient[ost] != rank {
		if fs.lastClient[ost] >= 0 {
			svc += fs.cfg.SwitchPenalty
			st.Switches++
		}
		fs.lastClient[ost] = rank
	}
	if fs.cfg.TailProb > 0 && fs.rng.Float64() < fs.cfg.TailProb {
		svc += fs.cfg.TailPenalty
		st.Tails++
	}
	st.BusySecs += svc
	if fs.obsSvc != nil {
		fs.obsSvc.Observe(svc)
	}
	return svc
}

// Stats returns a copy of the per-OST service counters.
func (fs *FS) Stats() []OSTStat {
	return append([]OSTStat(nil), fs.stats...)
}

// serve books one chunk's service on its OST, starting at virtual time `at`,
// and returns the completion time. The fast path — no injected OST errors —
// is exactly the pre-recovery sequence: one svcTime call, one Acquire, no
// extra draws, branches on one bool. Under injection, each attempt first
// consults the OST's circuit breaker (an open breaker stalls the request
// until its half-open probe window), then the plan decides whether the
// attempt fails. A failed attempt books only the request overhead (the RPC
// that came back with an error still occupied the target), feeds the
// breaker, and — unless the failure is permanent or the attempt budget is
// spent — backs off per the capped exponential schedule and goes again.
// Exhaustion and permanence surface as a typed *recovery.TargetError with
// the clock already advanced past every failed attempt: failures cost time
// even when they do not cost correctness.
func (fs *FS) serve(obj string, ost, rank, job int, at float64, off, ln int64, virt float64, mode ldlm.Mode) (float64, error) {
	if !fs.inj {
		svc := fs.svcTime(obj, ost, rank, at, off, ln, virt, mode)
		if fs.qos != nil {
			at = fs.qos.Admit(ost, job, at, svc)
		}
		start, end := fs.osts[ost].Acquire(at, svc)
		if fs.obsWait != nil {
			fs.obsWait.Observe(start - at)
		}
		return end, nil
	}
	attempts := 0
	brk := fs.brk.Get(ost)
	jr := fs.jobRetry(job)
	for {
		if h := brk.HoldOff(at); h > 0 {
			at += h
			fs.rstats.BackoffSecs += h
			jr.BackoffSecs += h
		}
		attempts++
		fs.rstats.Attempts++
		jr.Attempts++
		if attempts > 1 {
			fs.rstats.Retries++
			jr.Retries++
			if fs.obsRetries != nil {
				fs.obsRetries.Inc()
			}
		}
		failed, perm := fs.cfg.Faults.OSTErrorAt(ost, at, fs.rng)
		if !failed {
			svc := fs.svcTime(obj, ost, rank, at, off, ln, virt, mode)
			if fs.qos != nil {
				at = fs.qos.Admit(ost, job, at, svc)
			}
			start, end := fs.osts[ost].Acquire(at, svc)
			if fs.obsWait != nil {
				fs.obsWait.Observe(start - at)
			}
			brk.Success()
			return end, nil
		}
		fs.rstats.Failures++
		jr.Failures++
		fs.stats[ost].Errors++
		cost := fs.cfg.RequestOverhead * fs.noise()
		fs.stats[ost].BusySecs += cost
		_, end := fs.osts[ost].Acquire(at, cost)
		at = end
		opensBefore := brk.Opens
		brk.Failure(at)
		if opened := brk.Opens - opensBefore; opened > 0 {
			fs.rstats.BreakerOpens += opened
			jr.BreakerOpens += opened
			if fs.obsOpens != nil {
				fs.obsOpens.Add(uint64(opened))
			}
		}
		if perm || fs.retry.Exhausted(attempts) {
			fs.rstats.Exhausted++
			jr.Exhausted++
			return at, &recovery.TargetError{Layer: "lustre", Kind: "OST", Target: ost, Attempts: attempts, Permanent: perm}
		}
		d := fs.retry.Delay(attempts, fs.rng)
		at += d
		fs.rstats.BackoffSecs += d
		jr.BackoffSecs += d
	}
}

// jobRetry returns job's retry-counter bucket, creating it on first touch.
// Only the injection path calls it, so healthy runs allocate nothing.
func (fs *FS) jobRetry(job int) *recovery.RetryStats {
	jr := fs.rstatsBy[job]
	if jr == nil {
		if fs.rstatsBy == nil {
			fs.rstatsBy = make(map[int]*recovery.RetryStats)
		}
		jr = &recovery.RetryStats{}
		fs.rstatsBy[job] = jr
	}
	return jr
}

// noise returns the multiplicative service-time factor for one request.
func (fs *FS) noise() float64 {
	if fs.cfg.Jitter == 0 {
		return 1
	}
	return 1 + fs.cfg.Jitter*(2*fs.rng.Float64()-1)
}

// NewFS builds a file system.
func NewFS(cfg Config) *FS {
	if cfg.NumOSTs <= 0 {
		panic("lustre: need at least one OST")
	}
	if cfg.CostScale == 0 {
		cfg.CostScale = 1
	}
	fs := &FS{
		cfg:        cfg,
		osts:       make([]*sim.Resource, cfg.NumOSTs),
		mds:        sim.NewResource("mds"),
		files:      make(map[string]*fileObj),
		rng:        rand.New(rand.NewSource(cfg.Seed*7919 + 13)),
		lastClient: make([]int, cfg.NumOSTs),
		stats:      make([]OSTStat, cfg.NumOSTs),
	}
	if cfg.UseExtentLocks {
		fs.locks = ldlm.New()
	}
	for i := range fs.osts {
		fs.osts[i] = sim.NewResource(fmt.Sprintf("ost%d", i))
		fs.lastClient[i] = -1
	}
	if cfg.Faults != nil && len(cfg.Faults.OSTFails) > 0 {
		fs.inj = true
		fs.retry = cfg.Retry.Defaults()
		fs.brk = recovery.NewBreakerSet()
	}
	return fs
}

// RetryStats returns a copy of the retry engine's counters (all zero when
// the plan injects no OST errors).
func (fs *FS) RetryStats() recovery.RetryStats { return fs.rstats }

// RetryStatsByJob returns the retry counters keyed by the issuing rank's
// JobID — empty on healthy runs, one job-0 bucket for single-job tools.
func (fs *FS) RetryStatsByJob() map[int]recovery.RetryStats {
	out := make(map[int]recovery.RetryStats, len(fs.rstatsBy))
	for id, jr := range fs.rstatsBy {
		out[id] = *jr
	}
	return out
}

// SetQoS installs a server-side admission policy (nil detaches). The nil
// path is branch-identical to pre-QoS builds; see DESIGN.md §16.
func (fs *FS) SetQoS(p qos.Policy) { fs.qos = p }

// Config returns the file system's parameters.
func (fs *FS) Config() Config { return fs.cfg }

// OSTBusyTimes returns each OST's total booked service time (diagnostics).
func (fs *FS) OSTBusyTimes() []float64 {
	out := make([]float64, len(fs.osts))
	for i, o := range fs.osts {
		out[i] = o.BusyTime()
	}
	return out
}

type fileObj struct {
	name   string
	stripe StripeInfo
	data   *storage.ByteStore
}

// File is an open handle. Handles are cheap; every rank opens its own.
type File struct {
	fs  *FS
	obj *fileObj
}

// Open opens (creating if necessary) the named file. The stripe layout
// applies only on create, like Lustre's. Open costs metadata-server time,
// which serializes when many ranks open at once. The handle is returned as
// the backend seam's interface type (the concrete handle is *File).
func (fs *FS) Open(r *mpi.Rank, name string, stripe StripeInfo) storage.File {
	if stripe.Count <= 0 || stripe.Size <= 0 {
		panic("lustre: invalid stripe layout")
	}
	if stripe.Count > fs.cfg.NumOSTs {
		stripe.Count = fs.cfg.NumOSTs
	}
	r.P.Sync()
	_, end := fs.mds.Acquire(r.Now(), fs.cfg.OpenCost)
	r.ChargeIO(end - r.Now())
	obj, ok := fs.files[name]
	if !ok {
		obj = &fileObj{name: name, stripe: stripe, data: storage.NewByteStore()}
		fs.files[name] = obj
	}
	return &File{fs: fs, obj: obj}
}

// Remove deletes a file's data and releases the per-file ledger state the
// FS holds for it — with extent locks enabled, each of the file's OST
// objects has an LDLM namespace (keyed "name/ost") that would otherwise
// outlive the file: a recreated file of the same name would inherit the old
// granted locks and pay phantom revocations on first touch. No time cost.
func (fs *FS) Remove(name string) {
	delete(fs.files, name)
	if fs.locks != nil {
		for i := 0; i < fs.cfg.NumOSTs; i++ {
			fs.locks.Forget(fmt.Sprintf("%s/%d", name, i))
		}
	}
}

// Drain is a no-op: lustre buffers nothing — every write is durable on its
// OSTs by the time the call's completion wait has been charged.
func (fs *FS) Drain(r *mpi.Rank) {}

// TryDrain is Drain with error plumbing for backends that can lose staged
// data; lustre stages nothing, so it never fails.
func (fs *FS) TryDrain(r *mpi.Rank) error {
	fs.Drain(r)
	return nil
}

// SetLedger attaches an integrity ledger: every subsequent store records a
// seeded digest of the written extent at issue time. Pass nil to detach.
// Recording is free in virtual time and draw-free, so an audited run is
// bit-identical to a bare one.
func (fs *FS) SetLedger(l *storage.Ledger) { fs.ledger = l }

// Params returns the backend properties the I/O protocol layers consult.
func (fs *FS) Params() storage.Params {
	return storage.Params{
		CostScale: fs.cfg.CostScale,
		Targets:   fs.cfg.NumOSTs,
		ListIO:    false,
		Injecting: fs.inj,
	}
}

// Name identifies the backend kind for reports and sweeps.
func (fs *FS) Name() string { return "lustre" }

// Stripe returns the file's stripe layout.
func (f *File) Stripe() StripeInfo { return f.obj.stripe }

// Size returns the file length (highest byte written so far).
func (f *File) Size() int64 { return f.obj.data.Size() }

// ostIndexFor returns the OST id serving stripe unit index u.
func (f *File) ostIndexFor(u int64) int {
	s := f.obj.stripe
	return int((int64(s.Offset) + u%int64(s.Count)) % int64(len(f.fs.osts)))
}

// chunks splits [off, off+n) at stripe-unit boundaries and calls fn with
// each (offset, length, stripe unit index).
func (f *File) chunks(off, n int64, fn func(o, l, unit int64)) {
	ss := f.obj.stripe.Size
	for n > 0 {
		unit := off / ss
		l := (unit+1)*ss - off
		if l > n {
			l = n
		}
		fn(off, l, unit)
		off += l
		n -= l
	}
}

// WriteAt writes data at the given offset, charging ClassIO time for the
// slowest chunk's completion. Unrecoverable injected failures panic; callers
// that can degrade use TryWriteAt.
func (f *File) WriteAt(r *mpi.Rank, off int64, data []byte) {
	if err := f.TryWriteAt(r, off, data); err != nil {
		panic(fmt.Sprintf("lustre: WriteAt rank %d off %d: %v", r.WorldRank(), off, err))
	}
}

// TryWriteAt is WriteAt returning the typed error instead of panicking.
// Transient injected failures are absorbed by the retry engine and cost only
// virtual time; a *recovery.TargetError (permanent target or exhausted budget)
// aborts the operation with NO bytes stored — the store is all-or-nothing,
// so a caller's whole-operation retry is idempotent. Elapsed time up to and
// including the failed attempts is charged either way.
func (f *File) TryWriteAt(r *mpi.Rank, off int64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if off < 0 {
		panic("lustre: negative offset")
	}
	cl := r.W.Cluster
	cfg := f.fs.cfg
	r.P.Sync()
	now := r.Now()
	tx := cl.TxNIC(r.WorldRank())
	lat := cl.Config().Latency
	nicBW := cl.Config().NICBandwidth
	var done float64
	var firstErr error
	f.chunks(off, int64(len(data)), func(o, l, unit int64) {
		if firstErr != nil {
			return
		}
		virt := float64(l) * cfg.CostScale
		_, txEnd := tx.Acquire(now, virt/nicBW)
		ost := f.ostIndexFor(unit)
		ostEnd, err := f.fs.serve(f.obj.name, ost, r.WorldRank(), r.JobID(), txEnd+lat, o, l, virt, ldlm.PW)
		if err != nil {
			firstErr = err
		}
		if fin := ostEnd + lat; fin > done {
			done = fin
		}
	})
	if firstErr == nil {
		f.store(off, data)
	}
	r.ChargeIO(done - now)
	f.fs.maybeTrim(r)
	return firstErr
}

// WriteAtAsync books the same NIC/OST resources as WriteAt — identical
// sequence, identical RNG draws — and stores the data immediately, but
// instead of charging the rank's clock it returns the virtual completion
// time. The caller (the nonblocking layer) decides when and how much of
// that tail to expose via ChargeIO; data is durable the moment this
// returns, so `data` may be reused.
func (f *File) WriteAtAsync(r *mpi.Rank, off int64, data []byte) float64 {
	if len(data) == 0 {
		return r.Now()
	}
	if off < 0 {
		panic("lustre: negative offset")
	}
	cl := r.W.Cluster
	cfg := f.fs.cfg
	r.P.Sync()
	now := r.Now()
	tx := cl.TxNIC(r.WorldRank())
	lat := cl.Config().Latency
	nicBW := cl.Config().NICBandwidth
	var done float64
	f.chunks(off, int64(len(data)), func(o, l, unit int64) {
		virt := float64(l) * cfg.CostScale
		_, txEnd := tx.Acquire(now, virt/nicBW)
		ost := f.ostIndexFor(unit)
		ostEnd, err := f.fs.serve(f.obj.name, ost, r.WorldRank(), r.JobID(), txEnd+lat, o, l, virt, ldlm.PW)
		if err != nil {
			// The nonblocking path has no error plumbing; collectives gate
			// to the blocking resilient path under failure plans.
			panic(fmt.Sprintf("lustre: WriteAtAsync rank %d off %d: %v", r.WorldRank(), off, err))
		}
		if fin := ostEnd + lat; fin > done {
			done = fin
		}
	})
	f.store(off, data)
	f.fs.maybeTrim(r)
	if done < now {
		done = now
	}
	return done
}

// ReadAtAsync books the same resources as ReadAt and returns the data plus
// the virtual completion time instead of charging the clock. The bytes are
// the file's contents at issue time (the store is immediate, so ordering
// with preceding writes on the same proc is preserved).
func (f *File) ReadAtAsync(r *mpi.Rank, off, n int64) ([]byte, float64) {
	if n <= 0 {
		return nil, r.Now()
	}
	if off < 0 {
		panic("lustre: negative offset")
	}
	cl := r.W.Cluster
	cfg := f.fs.cfg
	r.P.Sync()
	now := r.Now()
	rx := cl.RxNIC(r.WorldRank())
	lat := cl.Config().Latency
	nicBW := cl.Config().NICBandwidth
	var done float64
	f.chunks(off, n, func(o, l, unit int64) {
		virt := float64(l) * cfg.CostScale
		ost := f.ostIndexFor(unit)
		ostEnd, err := f.fs.serve(f.obj.name, ost, r.WorldRank(), r.JobID(), now+lat, o, l, virt, ldlm.PR)
		if err != nil {
			panic(fmt.Sprintf("lustre: ReadAtAsync rank %d off %d: %v", r.WorldRank(), off, err))
		}
		_, rxEnd := rx.Acquire(ostEnd+lat, virt/nicBW)
		if rxEnd > done {
			done = rxEnd
		}
	})
	f.fs.maybeTrim(r)
	if done < now {
		done = now
	}
	return f.obj.load(off, n), done
}

// ReadAt reads n bytes from off; unwritten bytes read as zero. Time is
// charged like WriteAt, with the data crossing the receive NIC.
// Unrecoverable injected failures panic; callers that can degrade use
// TryReadAt.
func (f *File) ReadAt(r *mpi.Rank, off, n int64) []byte {
	data, err := f.TryReadAt(r, off, n)
	if err != nil {
		panic(fmt.Sprintf("lustre: ReadAt rank %d off %d: %v", r.WorldRank(), off, err))
	}
	return data
}

// TryReadAt is ReadAt returning the typed error instead of panicking: nil
// data with a *recovery.TargetError when a chunk's target is permanently dead
// or the retry budget is exhausted. Elapsed time up to the failure is
// charged either way.
func (f *File) TryReadAt(r *mpi.Rank, off, n int64) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	if off < 0 {
		panic("lustre: negative offset")
	}
	cl := r.W.Cluster
	cfg := f.fs.cfg
	r.P.Sync()
	now := r.Now()
	rx := cl.RxNIC(r.WorldRank())
	lat := cl.Config().Latency
	nicBW := cl.Config().NICBandwidth
	var done float64
	var firstErr error
	f.chunks(off, n, func(o, l, unit int64) {
		if firstErr != nil {
			return
		}
		virt := float64(l) * cfg.CostScale
		ost := f.ostIndexFor(unit)
		ostEnd, err := f.fs.serve(f.obj.name, ost, r.WorldRank(), r.JobID(), now+lat, o, l, virt, ldlm.PR)
		if err != nil {
			firstErr = err
			if fin := ostEnd + lat; fin > done {
				done = fin
			}
			return
		}
		_, rxEnd := rx.Acquire(ostEnd+lat, virt/nicBW)
		if rxEnd > done {
			done = rxEnd
		}
	})
	r.ChargeIO(done - now)
	f.fs.maybeTrim(r)
	if firstErr != nil {
		return nil, firstErr
	}
	return f.obj.load(off, n), nil
}

// store commits data to the file's byte store and, when an integrity ledger
// is attached, records the extent's issue-time digest. Zero time cost.
func (f *File) store(off int64, data []byte) {
	f.obj.data.Store(off, data)
	if f.fs.ledger != nil {
		f.fs.ledger.Record(f.obj.name, off, data)
	}
}

func (o *fileObj) load(off, n int64) []byte { return o.data.Load(off, n) }

// Punch zeroes any stored bytes in [off, off+n) without growing the file or
// charging time. It is the fault layer's hook for modeling lost staged data:
// a range whose durability was revoked reads back as zeroes until re-dumped,
// so a recovery path that forgets to rewrite it cannot pass verification on
// stale bytes. The integrity ledger is deliberately not updated — it keeps
// the acknowledged contents, which re-dump must restore.
func (f *File) Punch(off, n int64) { f.obj.data.Zero(off, n) }

// Contents returns the file's bytes in [0, Size) — test convenience with no
// simulated time cost.
func (f *File) Contents() []byte { return f.obj.load(0, f.obj.data.Size()) }

// Peek returns the file's bytes in [off, off+n) with no simulated time cost.
func (f *File) Peek(off, n int64) []byte { return f.obj.load(off, n) }

// WritevAt writes one list of extents, bufs[i] at exts[i]. Lustre has no
// native list-I/O (Params().ListIO is false), so the vectored call is the
// per-extent loop the collective flush would otherwise run itself — same
// RPCs, same cost; it exists so *FS satisfies storage.Backend and the
// conformance suite can compare backends through one call shape.
func (f *File) WritevAt(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) {
	for i, e := range exts {
		f.WriteAt(r, e.Off, bufs[i][:e.Len])
	}
}

// WritevAtAsync is the per-extent WriteAtAsync loop; it returns the max of
// the per-extent virtual completion times.
func (f *File) WritevAtAsync(r *mpi.Rank, exts []storage.Extent, bufs [][]byte) float64 {
	done := r.Now()
	for i, e := range exts {
		if d := f.WriteAtAsync(r, e.Off, bufs[i][:e.Len]); d > done {
			done = d
		}
	}
	return done
}

// ReadvAt reads one list of extents as the per-extent ReadAt loop.
func (f *File) ReadvAt(r *mpi.Rank, exts []storage.Extent) [][]byte {
	out := make([][]byte, len(exts))
	for i, e := range exts {
		out[i] = f.ReadAt(r, e.Off, e.Len)
	}
	return out
}

// ReadvAtAsync is the per-extent ReadAtAsync loop; it returns the buffers
// plus the max of the per-extent virtual completion times.
func (f *File) ReadvAtAsync(r *mpi.Rank, exts []storage.Extent) ([][]byte, float64) {
	out := make([][]byte, len(exts))
	done := r.Now()
	for i, e := range exts {
		var d float64
		out[i], d = f.ReadAtAsync(r, e.Off, e.Len)
		if d > done {
			done = d
		}
	}
	return out, done
}
