package lustre

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// pageSize mirrors the byte store's page granularity, now owned by the
// storage package.
const pageSize = storage.PageSize

func smallStripe() StripeInfo { return StripeInfo{Count: 4, Size: 1024} }

func runFS(t *testing.T, nprocs int, body func(r *mpi.Rank, fs *FS)) float64 {
	t.Helper()
	fs := NewFS(DefaultConfig())
	return mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		body(r, fs)
	})
}

func TestReadAfterWrite(t *testing.T) {
	runFS(t, 1, func(r *mpi.Rank, fs *FS) {
		f := fs.Open(r, "a", smallStripe())
		data := []byte("hello parallel world")
		f.WriteAt(r, 100, data)
		got := f.ReadAt(r, 100, int64(len(data)))
		if !bytes.Equal(got, data) {
			t.Errorf("read %q want %q", got, data)
		}
		if f.Size() != 100+int64(len(data)) {
			t.Errorf("size = %d", f.Size())
		}
	})
}

func TestUnwrittenReadsZero(t *testing.T) {
	runFS(t, 1, func(r *mpi.Rank, fs *FS) {
		f := fs.Open(r, "z", smallStripe())
		f.WriteAt(r, 10, []byte{1, 2, 3})
		got := f.ReadAt(r, 0, 15)
		want := make([]byte, 15)
		copy(want[10:], []byte{1, 2, 3})
		if !bytes.Equal(got, want) {
			t.Errorf("read %v want %v", got, want)
		}
	})
}

func TestCrossPageWrite(t *testing.T) {
	runFS(t, 1, func(r *mpi.Rank, fs *FS) {
		f := fs.Open(r, "big", StripeInfo{Count: 2, Size: 1 << 20})
		data := make([]byte, 3*pageSize+17)
		for i := range data {
			data[i] = byte(i * 7)
		}
		off := int64(pageSize - 5)
		f.WriteAt(r, off, data)
		if got := f.ReadAt(r, off, int64(len(data))); !bytes.Equal(got, data) {
			t.Error("cross-page read-after-write mismatch")
		}
	})
}

func TestIOTakesTime(t *testing.T) {
	end := runFS(t, 1, func(r *mpi.Rank, fs *FS) {
		f := fs.Open(r, "t", smallStripe())
		t0 := r.Now()
		f.WriteAt(r, 0, make([]byte, 1<<20))
		if r.Now() <= t0 {
			t.Error("write advanced no time")
		}
		if r.Prof().Times[mpi.ClassIO] <= 0 {
			t.Error("no io time charged")
		}
	})
	if end <= 0 {
		t.Error("zero end time")
	}
}

func TestOSTContentionSlowsSharedTarget(t *testing.T) {
	// Two ranks writing to disjoint stripe units on the SAME OST must take
	// about twice as long as two ranks hitting different OSTs.
	elapsed := func(stripeCount int) float64 {
		var worst float64
		fs := NewFS(DefaultConfig())
		mpi.Run(2, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			f := fs.Open(r, "c", StripeInfo{Count: stripeCount, Size: 1 << 20})
			t0 := r.Now()
			// stripeCount=1: both units on OST 0. stripeCount=2: units 0,1
			// land on different OSTs.
			f.WriteAt(r, int64(r.WorldRank())<<20, make([]byte, 1<<20))
			if d := r.Now() - t0; d > worst {
				worst = d
			}
		})
		return worst
	}
	shared, separate := elapsed(1), elapsed(2)
	if shared < separate*1.5 {
		t.Errorf("no OST contention: shared %g vs separate %g", shared, separate)
	}
}

func TestPerRequestOverheadPenalizesSmallIO(t *testing.T) {
	// Writing 1 MB as 256 small requests must cost far more than one
	// request, because of the per-RPC overhead — the effect that makes
	// over-partitioned ParColl groups lose (paper Figure 7).
	duration := func(requests int) float64 {
		var d float64
		fs := NewFS(DefaultConfig())
		mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			f := fs.Open(r, "s", StripeInfo{Count: 1, Size: 4 << 20})
			t0 := r.Now()
			sz := (1 << 20) / requests
			for i := 0; i < requests; i++ {
				f.WriteAt(r, int64(i*sz), make([]byte, sz))
			}
			d = r.Now() - t0
		})
		return d
	}
	one, many := duration(1), duration(256)
	if many < one*10 {
		t.Errorf("small requests not penalized: 1 req %g vs 256 reqs %g", one, many)
	}
}

func TestStripeDistribution(t *testing.T) {
	// A full-stripe write must touch exactly stripe.Count OSTs.
	fs := NewFS(DefaultConfig())
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		st := StripeInfo{Count: 8, Size: 1024, Offset: 3}
		f := fs.Open(r, "d", st)
		f.WriteAt(r, 0, make([]byte, 8*1024))
	})
	busy := fs.OSTBusyTimes()
	var active int
	for i, b := range busy {
		if b > 0 {
			active++
			if i < 3 || i >= 11 {
				t.Errorf("OST %d active outside stripe window", i)
			}
		}
	}
	if active != 8 {
		t.Errorf("%d OSTs active, want 8", active)
	}
}

func TestStripeOffsetWraps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumOSTs = 4
	fs := NewFS(cfg)
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		f := fs.Open(r, "w", StripeInfo{Count: 4, Size: 16, Offset: 2})
		f.WriteAt(r, 0, make([]byte, 64))
	})
	for i, b := range fs.OSTBusyTimes() {
		if b <= 0 {
			t.Errorf("OST %d unused despite wrap", i)
		}
	}
}

func TestCostScale(t *testing.T) {
	dur := func(scale float64) float64 {
		cfg := DefaultConfig()
		cfg.CostScale = scale
		fs := NewFS(cfg)
		var d float64
		mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			f := fs.Open(r, "x", StripeInfo{Count: 4, Size: 4 << 20})
			t0 := r.Now()
			f.WriteAt(r, 0, make([]byte, 1<<20)) // one chunk: bandwidth-dominated
			d = r.Now() - t0
		})
		return d
	}
	if a, b := dur(1), dur(64); b < a*4 {
		t.Errorf("cost scale ineffective: scale1 %g scale64 %g", a, b)
	}
}

func TestConcurrentDisjointWritersCorrectness(t *testing.T) {
	const n = 8
	const chunk = 2048
	fs := NewFS(DefaultConfig())
	mpi.Run(n, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		f := fs.Open(r, "shared", smallStripe())
		data := bytes.Repeat([]byte{byte(r.WorldRank() + 1)}, chunk)
		f.WriteAt(r, int64(r.WorldRank())*chunk, data)
		mpi.WorldComm(r).Barrier()
		if r.WorldRank() == 0 {
			got := f.Contents()
			for i := 0; i < n; i++ {
				seg := got[i*chunk : (i+1)*chunk]
				for _, b := range seg {
					if b != byte(i+1) {
						t.Fatalf("writer %d data corrupted", i)
					}
				}
			}
		}
	})
}

// Property: random interleaved writes from several ranks to disjoint
// regions always read back exactly.
func TestRandomDisjointWritesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 4
		region := int64(4096)
		bufs := make([][]byte, n)
		for i := range bufs {
			bufs[i] = make([]byte, rng.Int63n(region-1)+1)
			rng.Read(bufs[i])
		}
		okc := make(chan bool, n)
		fs := NewFS(DefaultConfig())
		mpi.Run(n, cluster.DefaultConfig(), seed, func(r *mpi.Rank) {
			me := r.WorldRank()
			file := fs.Open(r, "p", StripeInfo{Count: 3, Size: 512})
			base := int64(me) * region
			// Write in random-sized pieces.
			data := bufs[me]
			var off int64
			for off < int64(len(data)) {
				l := int64(r.P.Rand().Intn(1024) + 1)
				if off+l > int64(len(data)) {
					l = int64(len(data)) - off
				}
				file.WriteAt(r, base+off, data[off:off+l])
				off += l
			}
			mpi.WorldComm(r).Barrier()
			got := file.ReadAt(r, base, int64(len(data)))
			okc <- bytes.Equal(got, data)
		})
		for i := 0; i < n; i++ {
			if !<-okc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOpenSerializesOnMDS(t *testing.T) {
	const n = 32
	var latest float64
	fs := NewFS(DefaultConfig())
	mpi.Run(n, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		fs.Open(r, fmt.Sprintf("f%d", r.WorldRank()), smallStripe())
		if r.Now() > latest {
			latest = r.Now()
		}
	})
	if min := DefaultConfig().OpenCost * n; latest < min*0.99 {
		t.Errorf("opens did not serialize: latest %g < %g", latest, min)
	}
}

func TestInvalidStripePanics(t *testing.T) {
	fs := NewFS(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		fs.Open(r, "bad", StripeInfo{Count: 0, Size: 0})
	})
}

func TestClientSwitchPenalty(t *testing.T) {
	// Interleaving two clients on one OST must cost more than one client
	// writing the same volume alone.
	duration := func(interleave bool) float64 {
		cfg := DefaultConfig()
		cfg.Jitter = 0
		cfg.TailProb = 0
		fs := NewFS(cfg)
		var worst float64
		mpi.Run(2, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			f := fs.Open(r, "sw", StripeInfo{Count: 1, Size: 1 << 20})
			if !interleave && r.WorldRank() == 1 {
				return
			}
			t0 := r.Now()
			n := 16
			if !interleave {
				n = 32 // same total request count from one client
			}
			for i := 0; i < n; i++ {
				off := int64(i*2+r.WorldRank()) * 4096
				f.WriteAt(r, off, make([]byte, 4096))
			}
			if d := r.Now() - t0; d > worst {
				worst = d
			}
		})
		return worst
	}
	alone, interleaved := duration(false), duration(true)
	if interleaved <= alone {
		t.Errorf("client interleaving not penalized: alone %g vs interleaved %g", alone, interleaved)
	}
}

func TestTailEventsOccur(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jitter = 0
	cfg.SwitchPenalty = 0
	cfg.TailProb = 0.5
	cfg.TailPenalty = 1.0 // huge, unmistakable
	fs := NewFS(cfg)
	var d float64
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		f := fs.Open(r, "tail", StripeInfo{Count: 8, Size: 4096})
		t0 := r.Now()
		for i := 0; i < 16; i++ {
			f.WriteAt(r, int64(i)*4096, make([]byte, 4096))
		}
		d = r.Now() - t0
	})
	if d < 1.0 {
		t.Errorf("no tail events in 16 requests at p=0.5: elapsed %g", d)
	}
}

func TestNoiseDeterminism(t *testing.T) {
	run := func() float64 {
		fs := NewFS(DefaultConfig())
		var d float64
		mpi.Run(4, cluster.DefaultConfig(), 7, func(r *mpi.Rank) {
			f := fs.Open(r, "det", smallStripe())
			f.WriteAt(r, int64(r.WorldRank())*8192, make([]byte, 8192))
			if v := mpi.WorldComm(r).MaxFinishTime(); r.WorldRank() == 0 {
				d = v
			}
		})
		return d
	}
	if a, b := run(), run(); a != b {
		t.Errorf("noisy runs not deterministic: %g vs %g", a, b)
	}
}

func TestOSTStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TailProb = 1 // every request tails
	fs := NewFS(cfg)
	mpi.Run(2, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		f := fs.Open(r, "st", StripeInfo{Count: 1, Size: 1 << 20})
		f.WriteAt(r, int64(r.WorldRank())*4096, make([]byte, 4096))
	})
	st := fs.Stats()[0]
	if st.Requests != 2 || st.Bytes != 8192 {
		t.Errorf("requests/bytes = %d/%d", st.Requests, st.Bytes)
	}
	if st.Switches != 1 {
		t.Errorf("switches = %d want 1", st.Switches)
	}
	if st.Tails != 2 {
		t.Errorf("tails = %d want 2", st.Tails)
	}
	if st.BusySecs <= 0 {
		t.Error("busy seconds not recorded")
	}
}

func TestExtentLockPingPongPenalized(t *testing.T) {
	// Alternating writers with extent locks must pay revocation costs; a
	// single sequential writer keeps its expanded grant and pays none.
	duration := func(writers int) float64 {
		cfg := DefaultConfig()
		cfg.Jitter = 0
		cfg.TailProb = 0
		cfg.UseExtentLocks = true
		fs := NewFS(cfg)
		var worst float64
		mpi.Run(2, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			if r.WorldRank() >= writers {
				return
			}
			f := fs.Open(r, "el", StripeInfo{Count: 1, Size: 1 << 20})
			t0 := r.Now()
			n := 32 / writers
			for i := 0; i < n; i++ {
				off := int64(i*writers+r.WorldRank()) * 4096
				f.WriteAt(r, off, make([]byte, 4096))
			}
			if d := r.Now() - t0; d > worst {
				worst = d
			}
		})
		return worst
	}
	alone, pingpong := duration(1), duration(2)
	if pingpong <= alone {
		t.Errorf("extent-lock ping-pong not penalized: alone %g vs interleaved %g", alone, pingpong)
	}
}

func TestExtentLockSequentialWriterPaysOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Jitter = 0
	cfg.TailProb = 0
	cfg.UseExtentLocks = true
	fs := NewFS(cfg)
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		f := fs.Open(r, "sq", StripeInfo{Count: 1, Size: 1 << 20})
		for i := 0; i < 16; i++ {
			f.WriteAt(r, int64(i)*4096, make([]byte, 4096))
		}
	})
	if sw := fs.Stats()[0].Switches; sw != 0 {
		t.Errorf("sequential writer paid %d revocations", sw)
	}
}
