package lustre

import "repro/internal/storage"

// The storage.Backend extraction (DESIGN.md §14) was carved out of this
// package; these assertions pin lustre as a conforming implementation so
// any interface drift fails the build here, next to the methods.
var (
	_ storage.Backend = (*FS)(nil)
	_ storage.File    = (*File)(nil)
)
