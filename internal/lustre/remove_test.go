package lustre

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/mpi"
)

// TestRemoveReleasesLockState is the regression test for the Remove leak:
// deleting a file used to leave its per-OST LDLM namespaces behind, so a
// later file reusing the name inherited stale granted locks and paid
// phantom revocations (Switches) on first touch. With the fix, a fresh
// single-writer file created after Remove must see zero lock conflicts —
// exactly like a name never used before.
func TestRemoveReleasesLockState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseExtentLocks = true
	stripe := StripeInfo{Count: 4, Size: 1 << 20}

	sumSwitches := func(fs *FS) int64 {
		var n int64
		for _, st := range fs.Stats() {
			n += st.Switches
		}
		return n
	}

	fs := NewFS(cfg)
	var before, after int64
	mpi.Run(2, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		// Phase 1: two ranks hammer the same extents so the LDLM grants
		// conflicting locks and records real revocations.
		f := fs.Open(r, "ckpt", stripe)
		buf := make([]byte, 1<<20)
		for i := 0; i < 4; i++ {
			f.WriteAt(r, int64(i)<<20, buf)
		}
		comm.Barrier()
		if r.WorldRank() == 0 {
			before = sumSwitches(fs)
			if before == 0 {
				t.Error("phase 1 produced no lock revocations; test is vacuous")
			}
			fs.Remove("ckpt")
		}
		comm.Barrier()
		// Phase 2: rank 0 alone reuses the name. A single writer on a fresh
		// file can never conflict — any new Switches are phantoms from state
		// Remove failed to release.
		if r.WorldRank() == 0 {
			g := fs.Open(r, "ckpt", stripe)
			if g.Size() != 0 {
				t.Errorf("reopen after Remove: Size() = %d, want 0", g.Size())
			}
			for i := 0; i < 4; i++ {
				g.WriteAt(r, int64(i)<<20, buf)
			}
			after = sumSwitches(fs)
		}
	})
	if after != before {
		t.Fatalf("single-writer reopen after Remove paid %d phantom revocations", after-before)
	}
}

// TestRemoveReleasesFileState checks the data side of Remove: the object's
// pages are gone (a reopen reads zero size) and a recreated file holds only
// its own bytes.
func TestRemoveReleasesFileState(t *testing.T) {
	fs := NewFS(DefaultConfig())
	stripe := DefaultStripe()
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		f := fs.Open(r, "f", stripe)
		old := bytes.Repeat([]byte{0xAA}, 4096)
		f.WriteAt(r, 0, old)
		fs.Remove("f")
		g := fs.Open(r, "f", stripe)
		fresh := bytes.Repeat([]byte{0x55}, 128)
		g.WriteAt(r, 1024, fresh)
		if got := g.Size(); got != 1024+128 {
			t.Fatalf("recreated file Size() = %d, want %d", got, 1024+128)
		}
		if got := g.Peek(0, 128); !bytes.Equal(got, make([]byte, 128)) {
			t.Fatal("recreated file still holds the removed file's bytes")
		}
	})
}

// TestStatsDeterministicUnderJitter runs the same multi-rank workload twice
// under the jittery-net scenario — randomized message delays and a degraded
// NIC shifting every request's arrival time — and requires the full
// []OSTStat ledgers to come back identical. The jitter draws ride the
// seeded, engine-serialized RNGs, so even the noisy path must replay
// exactly.
func TestStatsDeterministicUnderJitter(t *testing.T) {
	plan, err := fault.Scenario(fault.JitteryNet)
	if err != nil {
		t.Fatal(err)
	}
	one := func() []OSTStat {
		cfg := DefaultConfig()
		cfg.Faults = plan
		fs := NewFS(cfg)
		stripe := StripeInfo{Count: 8, Size: 1 << 18}
		mpi.RunPlan(4, cluster.DefaultConfig(), 1, plan, func(r *mpi.Rank) {
			f := fs.Open(r, "jitter", stripe)
			buf := make([]byte, 96<<10)
			me := int64(r.WorldRank())
			for i := int64(0); i < 6; i++ {
				f.WriteAt(r, (me*6+i)*(96<<10), buf)
			}
			mpi.WorldComm(r).Barrier()
			f.ReadAt(r, me*(96<<10), 96<<10)
		})
		return fs.Stats()
	}
	a, b := one(), one()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Stats() differ across identical jittery-net runs:\n%+v\nvs\n%+v", a, b)
	}
}
