package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestBlockMapping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PEsPerNode = 2
	cfg.Mapping = Block
	c := New(8, cfg)
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for r, n := range want {
		if c.NodeOf(r) != n {
			t.Errorf("block NodeOf(%d) = %d, want %d", r, c.NodeOf(r), n)
		}
	}
	if c.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", c.NumNodes())
	}
}

func TestCyclicMapping(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PEsPerNode = 2
	cfg.Mapping = Cyclic
	c := New(8, cfg)
	// Paper Figure 5: N0(P0,P4) N1(P1,P5) N2(P2,P6) N3(P3,P7).
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for r, n := range want {
		if c.NodeOf(r) != n {
			t.Errorf("cyclic NodeOf(%d) = %d, want %d", r, c.NodeOf(r), n)
		}
	}
}

func TestUnevenLastNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PEsPerNode = 4
	c := New(10, cfg)
	if c.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", c.NumNodes())
	}
	if c.NodeOf(9) != 2 {
		t.Errorf("NodeOf(9) = %d, want 2", c.NodeOf(9))
	}
}

// Property: every rank maps to a valid node and no node ever holds more
// than PEsPerNode ranks. This bound is exact for both mappings: with
// numNodes = ceil(nprocs/pes), cyclic deals at most ceil(nprocs/numNodes)
// <= pes ranks per node even when the division is uneven.
func TestMappingProperty(t *testing.T) {
	f := func(nprocsRaw, pesRaw uint8, cyclic bool) bool {
		nprocs := int(nprocsRaw)%200 + 1
		pes := int(pesRaw)%8 + 1
		cfg := DefaultConfig()
		cfg.PEsPerNode = pes
		if cyclic {
			cfg.Mapping = Cyclic
		}
		c := New(nprocs, cfg)
		counts := make(map[int]int)
		for r := 0; r < nprocs; r++ {
			n := c.NodeOf(r)
			if n < 0 || n >= c.NumNodes() {
				return false
			}
			counts[n]++
		}
		for _, k := range counts {
			if k > pes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Regression for the "cyclic overfill" edge the property test used to
// tolerate: 10 ranks at 4 PEs/node give 3 nodes, and the cyclic deal fills
// them {4,3,3} — never PEsPerNode+1.
func TestCyclicUnevenExactFill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PEsPerNode = 4
	cfg.Mapping = Cyclic
	c := New(10, cfg)
	counts := make([]int, c.NumNodes())
	for r := 0; r < 10; r++ {
		counts[c.NodeOf(r)]++
	}
	want := []int{4, 3, 3}
	for n, k := range counts {
		if k != want[n] {
			t.Errorf("node %d holds %d ranks, want %d (counts %v)", n, k, want[n], counts)
		}
		if k > cfg.PEsPerNode {
			t.Errorf("node %d overfilled: %d > PEsPerNode %d", n, k, cfg.PEsPerNode)
		}
	}
}

func TestTransferIntraNodeCheaper(t *testing.T) {
	cfg := DefaultConfig()
	c := New(4, cfg) // ranks 0,1 on node 0; ranks 2,3 on node 1
	var intra, inter float64
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Run(4, func(p *sim.Proc) {
		if p.ID() != 0 {
			return
		}
		t0 := p.Now()
		intra = c.Transfer(p, 0, 1, 1<<20) - t0
		t1 := p.Now()
		inter = c.Transfer(p, 0, 2, 1<<20) - t1
	})
	if intra <= 0 || inter <= 0 {
		t.Fatalf("non-positive transfer times intra=%g inter=%g", intra, inter)
	}
	if intra >= inter {
		t.Errorf("intra-node transfer (%g) should beat inter-node (%g)", intra, inter)
	}
}

func TestNICSerialization(t *testing.T) {
	cfg := DefaultConfig()
	c := New(4, cfg)
	var first, second float64
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Run(4, func(p *sim.Proc) {
		if p.ID() != 0 {
			return
		}
		// Two back-to-back large sends from the same node must serialize
		// on the tx NIC: the second arrival is at least one transmission
		// time later than the first.
		first = c.Transfer(p, 0, 2, 100<<20)
		second = c.Transfer(p, 0, 3, 100<<20)
	})
	txDur := float64(100<<20) / cfg.NICBandwidth
	if second-first < txDur*0.99 {
		t.Errorf("second arrival %g not serialized after first %g (txDur %g)",
			second, first, txDur)
	}
}

func TestRxNICContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PEsPerNode = 1
	c := New(3, cfg) // three nodes
	arrivals := make([]float64, 3)
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Run(3, func(p *sim.Proc) {
		if p.ID() == 0 {
			return // rank 0 is the receiver; no sends needed for bookings
		}
		arrivals[p.ID()] = c.Transfer(p, p.ID(), 0, 64<<20)
	})
	// Two senders target rank 0 simultaneously from distinct nodes; the rx
	// NIC must serialize, separating arrivals by about one transmission.
	txDur := float64(64<<20) / cfg.NICBandwidth
	gap := arrivals[2] - arrivals[1]
	if gap < 0 {
		gap = -gap
	}
	if gap < txDur*0.99 {
		t.Errorf("rx NIC did not serialize: arrivals %v, txDur %g", arrivals[1:], txDur)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero pes":   func() { New(4, Config{PEsPerNode: 0}) },
		"zero procs": func() { New(0, DefaultConfig()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMappingString(t *testing.T) {
	if Block.String() != "block" || Cyclic.String() != "cyclic" {
		t.Error("Mapping.String mismatch")
	}
}
