// Package cluster models the machine: nodes with a fixed number of
// processing elements (PEs), rank-to-node mappings, and a LogP-style
// communication cost model with per-node NIC serialization. It is the
// substitute for the Cray XT's Catamount nodes and SeaStar interconnect:
// the collective-I/O behaviour the paper studies depends on message
// latency, NIC bandwidth, and node sharing, all of which are captured here.
package cluster

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Mapping selects how MPI ranks are laid out on physical nodes.
type Mapping int

const (
	// Block places consecutive ranks on the same node (SMP-style):
	// node(r) = r / PEsPerNode. This is the Cray XT default.
	Block Mapping = iota
	// Cyclic deals ranks round-robin across nodes:
	// node(r) = r % numNodes.
	Cyclic
)

func (m Mapping) String() string {
	switch m {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("Mapping(%d)", int(m))
	}
}

// Config holds the machine and network cost parameters. The defaults
// (DefaultConfig) approximate a Cray XT3/XT4 node with a SeaStar NIC.
type Config struct {
	PEsPerNode int     // PEs (cores) per node sharing one NIC
	Mapping    Mapping // rank-to-node layout

	Latency      float64 // one-way network latency, seconds
	NICBandwidth float64 // per-node NIC bandwidth, bytes/second
	SendOverhead float64 // CPU cost to initiate a send, seconds
	RecvOverhead float64 // CPU cost to complete a receive, seconds

	MemBandwidth float64 // intra-node copy bandwidth, bytes/second
	MemLatency   float64 // intra-node message latency, seconds

	// Faults, when non-nil, degrades the NIC path per the plan: nodes named
	// in the plan's NodeBWScale transmit and receive at derated bandwidth.
	// (Per-message jitter lives in the sim.Perturber hook; this is the
	// deterministic, topology-level part of the network fault model.)
	Faults *fault.Plan
}

// DefaultConfig returns SeaStar-class parameters: 5 us latency, 2 GB/s NIC,
// two PEs per node mapped block-wise.
func DefaultConfig() Config {
	return Config{
		PEsPerNode:   2,
		Mapping:      Block,
		Latency:      5e-6,
		NICBandwidth: 2e9,
		SendOverhead: 4e-7,
		RecvOverhead: 4e-7,
		MemBandwidth: 4e9,
		MemLatency:   3e-7,
	}
}

// Cluster binds a proc count to a Config and owns the per-node NIC
// resources used for transfer-time bookings.
type Cluster struct {
	cfg       Config
	nprocs    int
	numNodes  int
	nodeOf    []int
	tx, rx    []*sim.Resource // per-node NIC ledgers (full duplex)
	sinceTrim int             // transfers since the last NIC ledger compaction
}

// trimEvery is how many transfers pass between NIC ledger compactions. The
// watermark (the engine's minimum proc clock) makes trimming invisible to
// booking results; see sim.Resource.Trim.
const trimEvery = 4096

func (c *Cluster) maybeTrim(p *sim.Proc) {
	c.sinceTrim++
	if c.sinceTrim < trimEvery {
		return
	}
	c.sinceTrim = 0
	w := p.MinClock()
	for i := range c.tx {
		c.tx[i].Trim(w)
		c.rx[i].Trim(w)
	}
}

// New builds a cluster for nprocs ranks. PEsPerNode must be >= 1.
func New(nprocs int, cfg Config) *Cluster {
	if cfg.PEsPerNode < 1 {
		panic("cluster: PEsPerNode must be >= 1")
	}
	if nprocs < 1 {
		panic("cluster: need at least one proc")
	}
	numNodes := (nprocs + cfg.PEsPerNode - 1) / cfg.PEsPerNode
	c := &Cluster{
		cfg:      cfg,
		nprocs:   nprocs,
		numNodes: numNodes,
		nodeOf:   make([]int, nprocs),
		tx:       make([]*sim.Resource, numNodes),
		rx:       make([]*sim.Resource, numNodes),
	}
	for r := 0; r < nprocs; r++ {
		switch cfg.Mapping {
		case Block:
			c.nodeOf[r] = r / cfg.PEsPerNode
		case Cyclic:
			c.nodeOf[r] = r % numNodes
		default:
			panic(fmt.Sprintf("cluster: unknown mapping %v", cfg.Mapping))
		}
	}
	for n := 0; n < numNodes; n++ {
		c.tx[n] = sim.NewResource(fmt.Sprintf("node%d.tx", n))
		c.rx[n] = sim.NewResource(fmt.Sprintf("node%d.rx", n))
	}
	return c
}

// Config returns the cluster's cost parameters.
func (c *Cluster) Config() Config { return c.cfg }

// NumProcs returns the number of ranks.
func (c *Cluster) NumProcs() int { return c.nprocs }

// NumNodes returns the number of physical nodes.
func (c *Cluster) NumNodes() int { return c.numNodes }

// NodeOf returns the physical node hosting a world rank.
func (c *Cluster) NodeOf(rank int) int { return c.nodeOf[rank] }

// SameNode reports whether two ranks share a physical node (and NIC).
func (c *Cluster) SameNode(a, b int) bool { return c.nodeOf[a] == c.nodeOf[b] }

// Transfer computes the virtual arrival time for nbytes sent from the
// calling proc (world rank src) to world rank dst, booking NIC time on both
// nodes. It charges the sender's CPU overhead to p and returns the arrival
// time to pass to sim.Send. Callers must invoke p.Sync() themselves if they
// need globally time-ordered NIC bookings (mpi does).
func (c *Cluster) Transfer(p *sim.Proc, src, dst, nbytes int) (arrival float64) {
	p.Advance(c.cfg.SendOverhead)
	if c.SameNode(src, dst) {
		// Intra-node: a memcpy through shared memory; no NIC involved.
		return p.Now() + c.cfg.MemLatency + float64(nbytes)/c.cfg.MemBandwidth
	}
	c.maybeTrim(p)
	txDur := float64(nbytes) / c.cfg.NICBandwidth
	rxDur := txDur
	if c.cfg.Faults != nil {
		txDur *= c.cfg.Faults.NodeBWDivisor(c.nodeOf[src])
		rxDur *= c.cfg.Faults.NodeBWDivisor(c.nodeOf[dst])
	}
	_, txEnd := c.tx[c.nodeOf[src]].Acquire(p.Now(), txDur)
	// The receive NIC serializes incoming transfers; the packet train can
	// start landing one latency after it started leaving.
	_, rxEnd := c.rx[c.nodeOf[dst]].Acquire(txEnd-txDur+c.cfg.Latency, rxDur)
	return rxEnd
}

// RecvCost returns the CPU overhead charged when completing a receive.
func (c *Cluster) RecvCost() float64 { return c.cfg.RecvOverhead }

// TxNIC returns the transmit-side NIC resource of the node hosting rank.
// The Lustre client path books it so file I/O and message passing contend
// for the same link, as they do on the real machine.
func (c *Cluster) TxNIC(rank int) *sim.Resource { return c.tx[c.nodeOf[rank]] }

// RxNIC returns the receive-side NIC resource of the node hosting rank.
func (c *Cluster) RxNIC(rank int) *sim.Resource { return c.rx[c.nodeOf[rank]] }
