package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %g want %g", s.Std, want)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("odd median = %g", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %g", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("empty median = %g", m)
	}
}

// Property: Min <= Mean <= Max and Median within [Min, Max].
func TestSummaryOrderProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var samples []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		s := Summarize(samples)
		m := Median(samples)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && m >= s.Min && m <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatting(t *testing.T) {
	if got := MBps(5.301e9); got != "5301.0 MB/s" {
		t.Errorf("MBps = %q", got)
	}
	cases := map[int64]string{
		512:            "512 B",
		2048:           "2.0 KiB",
		48 << 20:       "48.0 MiB",
		int64(3) << 30: "3.0 GiB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q want %q", n, got, want)
		}
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("procs", "MB/s")
	tb.AddRow(128, 380.0)
	tb.AddRow(1024, "11400")
	out := tb.String()
	if !strings.Contains(out, "procs") || !strings.Contains(out, "380.00") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}
