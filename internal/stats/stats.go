// Package stats provides the small numeric and formatting helpers the
// experiment harness uses: repeated-measurement summaries, bandwidth
// units, and aligned text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes repeated measurements of one quantity.
type Summary struct {
	N                   int
	Mean, Min, Max, Std float64
}

// Summarize computes a Summary of the samples.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, v := range samples {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(s.N)
	for _, v := range samples {
		d := v - s.Mean
		s.Std += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(s.Std / float64(s.N-1))
	} else {
		s.Std = 0
	}
	return s
}

// Median returns the median of the samples (0 when empty).
func Median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	c := append([]float64(nil), samples...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// MBps formats a bytes-per-second rate as MB/s (10^6 bytes, as the paper
// reports).
func MBps(bytesPerSec float64) string {
	return fmt.Sprintf("%.1f MB/s", bytesPerSec/1e6)
}

// Bytes formats a byte count in a human unit.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
