// Package storagetest is the conformance suite every storage.Backend must
// pass. A backend package calls Run from its own tests with a constructor;
// the suite exercises the whole interface — blocking, Try, Async, and
// vectored variants — and checks the contract the consumers rely on:
//
//   - data is durable at issue time (Async and staged writes included);
//   - vectored calls move exactly the bytes the scalar calls would;
//   - Remove forgets a file completely (a reopen sees a fresh object);
//   - two identical runs produce identical virtual times and Stats.
//
// The suite runs single-rank: the cross-rank semantics are covered by the
// collective goldens, which all ride on the same backend methods.
package storagetest

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// stripe is the geometry every conformance case uses: small enough that a
// few-KB write crosses several targets.
var stripe = storage.Stripe{Count: 4, Size: 1 << 10}

// pattern fills buf with a deterministic byte stream keyed by tag and off.
func pattern(buf []byte, tag, off int64) {
	for i := range buf {
		buf[i] = byte(tag*151 + (off+int64(i))*11 + 5)
	}
}

// run spins up a single-rank engine around body and returns the final
// virtual clock (the determinism handle).
func run(t *testing.T, mk func() storage.Backend, body func(r *mpi.Rank, be storage.Backend)) float64 {
	t.Helper()
	be := mk()
	var end float64
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		body(r, be)
		end = r.Now()
	})
	return end
}

// Run executes the conformance suite against the backend mk constructs.
// name labels the subtests; mk must return a fresh, identically-seeded
// backend on every call (the determinism case compares two of them).
func Run(t *testing.T, name string, mk func() storage.Backend) {
	t.Run(name+"/name", func(t *testing.T) {
		be := mk()
		if be.Name() == "" {
			t.Fatal("Name() is empty")
		}
		p := be.Params()
		if p.CostScale <= 0 {
			t.Fatalf("Params().CostScale = %g, want > 0", p.CostScale)
		}
		if p.Targets <= 0 {
			t.Fatalf("Params().Targets = %d, want > 0", p.Targets)
		}
	})

	t.Run(name+"/roundtrip", func(t *testing.T) {
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "rt", stripe)
			if got := f.Stripe(); got != stripe {
				t.Fatalf("Stripe() = %+v, want %+v", got, stripe)
			}
			buf := make([]byte, 3000)
			pattern(buf, 1, 100)
			f.WriteAt(r, 100, buf)
			if got := f.Size(); got < 3100 {
				t.Fatalf("Size() = %d after write to [100,3100)", got)
			}
			if got := f.ReadAt(r, 100, 3000); !bytes.Equal(got, buf) {
				t.Fatal("ReadAt returned different bytes than WriteAt stored")
			}
			// Overwrite a middle window and re-check both edges survive.
			mid := make([]byte, 500)
			pattern(mid, 2, 0)
			f.WriteAt(r, 1000, mid)
			want := append([]byte{}, buf...)
			copy(want[900:], mid)
			if got := f.ReadAt(r, 100, 3000); !bytes.Equal(got, want) {
				t.Fatal("overwrite corrupted neighboring bytes")
			}
		})
	})

	t.Run(name+"/try-and-async-durable-at-issue", func(t *testing.T) {
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "async", stripe)
			b1 := make([]byte, 700)
			pattern(b1, 3, 0)
			if err := f.TryWriteAt(r, 0, b1); err != nil {
				t.Fatalf("TryWriteAt on a healthy backend: %v", err)
			}
			b2 := make([]byte, 700)
			pattern(b2, 4, 0)
			done := f.WriteAtAsync(r, 700, b2)
			if done < r.Now() {
				t.Fatalf("WriteAtAsync completion %g before now %g", done, r.Now())
			}
			// The contract: bytes are visible immediately, not at `done`.
			if got := f.Peek(700, 700); !bytes.Equal(got, b2) {
				t.Fatal("async write not durable at issue time")
			}
			if got, err := f.TryReadAt(r, 0, 700); err != nil || !bytes.Equal(got, b1) {
				t.Fatalf("TryReadAt: err=%v, match=%v", err, bytes.Equal(got, b1))
			}
			rbuf, rdone := f.ReadAtAsync(r, 700, 700)
			if rdone < r.Now() {
				t.Fatalf("ReadAtAsync completion %g before now %g", rdone, r.Now())
			}
			if !bytes.Equal(rbuf, b2) {
				t.Fatal("ReadAtAsync returned different bytes than stored")
			}
		})
	})

	t.Run(name+"/vectored-matches-scalar-data", func(t *testing.T) {
		exts := []storage.Extent{{Off: 0, Len: 512}, {Off: 2048, Len: 256}, {Off: 8192, Len: 1024}}
		bufs := make([][]byte, len(exts))
		for i, e := range exts {
			bufs[i] = make([]byte, e.Len)
			pattern(bufs[i], int64(10+i), e.Off)
		}
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "vec", stripe)
			f.WritevAt(r, exts, bufs)
			got := f.ReadvAt(r, exts)
			if len(got) != len(exts) {
				t.Fatalf("ReadvAt returned %d bufs, want %d", len(got), len(exts))
			}
			for i := range exts {
				if !bytes.Equal(got[i], bufs[i]) {
					t.Fatalf("extent %d: vectored read != vectored write", i)
				}
				// Scalar reads must see the vectored writes too.
				if sc := f.ReadAt(r, exts[i].Off, exts[i].Len); !bytes.Equal(sc, bufs[i]) {
					t.Fatalf("extent %d: scalar read != vectored write", i)
				}
			}
			// Async vectored: durable at issue, completion not in the past.
			abufs := make([][]byte, len(exts))
			aexts := make([]storage.Extent, len(exts))
			for i, e := range exts {
				aexts[i] = storage.Extent{Off: e.Off + 1<<20, Len: e.Len}
				abufs[i] = make([]byte, e.Len)
				pattern(abufs[i], int64(20+i), aexts[i].Off)
			}
			done := f.WritevAtAsync(r, aexts, abufs)
			if done < r.Now() {
				t.Fatalf("WritevAtAsync completion %g before now %g", done, r.Now())
			}
			for i, e := range aexts {
				if !bytes.Equal(f.Peek(e.Off, e.Len), abufs[i]) {
					t.Fatalf("extent %d: async vectored write not durable at issue", i)
				}
			}
			rbufs, rdone := f.ReadvAtAsync(r, aexts)
			if rdone < r.Now() {
				t.Fatalf("ReadvAtAsync completion %g before now %g", rdone, r.Now())
			}
			for i := range aexts {
				if !bytes.Equal(rbufs[i], abufs[i]) {
					t.Fatalf("extent %d: ReadvAtAsync != stored bytes", i)
				}
			}
		})
	})

	t.Run(name+"/remove-forgets", func(t *testing.T) {
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "gone", stripe)
			buf := make([]byte, 2048)
			pattern(buf, 5, 0)
			f.WriteAt(r, 0, buf)
			be.Remove("gone")
			g := be.Open(r, "gone", stripe)
			if got := g.Size(); got != 0 {
				t.Fatalf("reopen after Remove: Size() = %d, want 0", got)
			}
			// The fresh object is fully writable again.
			pattern(buf, 6, 0)
			g.WriteAt(r, 0, buf)
			if got := g.ReadAt(r, 0, 2048); !bytes.Equal(got, buf) {
				t.Fatal("reopen after Remove: write/read mismatch")
			}
		})
	})

	t.Run(name+"/drain-then-contents", func(t *testing.T) {
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "drained", stripe)
			buf := make([]byte, 4096)
			pattern(buf, 7, 0)
			f.WriteAt(r, 0, buf)
			be.Drain(r)
			if got := f.Contents(); !bytes.Equal(got, buf) {
				t.Fatal("Contents() after Drain != written bytes")
			}
		})
	})

	t.Run(name+"/deterministic", func(t *testing.T) {
		one := func() (float64, string) {
			var stats []storage.TargetStat
			end := run(t, mk, func(r *mpi.Rank, be storage.Backend) {
				f := be.Open(r, "det", stripe)
				buf := make([]byte, 1536)
				for i := 0; i < 8; i++ {
					pattern(buf, int64(i), int64(i)*1536)
					f.WriteAt(r, int64(i)*1536, buf)
				}
				f.WritevAt(r,
					[]storage.Extent{{Off: 100, Len: 64}, {Off: 9000, Len: 64}},
					[][]byte{make([]byte, 64), make([]byte, 64)})
				f.ReadAt(r, 0, 4096)
				be.Drain(r)
				stats = be.Stats()
			})
			return end, fmt.Sprintf("%+v", stats)
		}
		e1, s1 := one()
		e2, s2 := one()
		if e1 != e2 {
			t.Fatalf("virtual end times differ across identical runs: %g vs %g", e1, e2)
		}
		if s1 != s2 {
			t.Fatalf("Stats() differ across identical runs:\n%s\nvs\n%s", s1, s2)
		}
	})
}
