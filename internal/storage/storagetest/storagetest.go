// Package storagetest is the conformance suite every storage.Backend must
// pass. A backend package calls Run from its own tests with a constructor;
// the suite exercises the whole interface — blocking, Try, Async, and
// vectored variants — and checks the contract the consumers rely on:
//
//   - data is durable at issue time (Async and staged writes included);
//   - vectored calls move exactly the bytes the scalar calls would;
//   - Remove forgets a file completely (a reopen sees a fresh object);
//   - two identical runs produce identical virtual times and Stats.
//
// The suite runs single-rank: the cross-rank semantics are covered by the
// collective goldens, which all ride on the same backend methods.
package storagetest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/recovery"
	"repro/internal/storage"
)

// stripe is the geometry every conformance case uses: small enough that a
// few-KB write crosses several targets.
var stripe = storage.Stripe{Count: 4, Size: 1 << 10}

// pattern fills buf with a deterministic byte stream keyed by tag and off.
func pattern(buf []byte, tag, off int64) {
	for i := range buf {
		buf[i] = byte(tag*151 + (off+int64(i))*11 + 5)
	}
}

// run spins up a single-rank engine around body and returns the final
// virtual clock (the determinism handle).
func run(t *testing.T, mk func() storage.Backend, body func(r *mpi.Rank, be storage.Backend)) float64 {
	t.Helper()
	be := mk()
	var end float64
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		body(r, be)
		end = r.Now()
	})
	return end
}

// Run executes the conformance suite against the backend mk constructs.
// name labels the subtests; mk must return a fresh, identically-seeded
// backend on every call (the determinism case compares two of them).
func Run(t *testing.T, name string, mk func() storage.Backend) {
	t.Run(name+"/name", func(t *testing.T) {
		be := mk()
		if be.Name() == "" {
			t.Fatal("Name() is empty")
		}
		p := be.Params()
		if p.CostScale <= 0 {
			t.Fatalf("Params().CostScale = %g, want > 0", p.CostScale)
		}
		if p.Targets <= 0 {
			t.Fatalf("Params().Targets = %d, want > 0", p.Targets)
		}
	})

	t.Run(name+"/roundtrip", func(t *testing.T) {
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "rt", stripe)
			if got := f.Stripe(); got != stripe {
				t.Fatalf("Stripe() = %+v, want %+v", got, stripe)
			}
			buf := make([]byte, 3000)
			pattern(buf, 1, 100)
			f.WriteAt(r, 100, buf)
			if got := f.Size(); got < 3100 {
				t.Fatalf("Size() = %d after write to [100,3100)", got)
			}
			if got := f.ReadAt(r, 100, 3000); !bytes.Equal(got, buf) {
				t.Fatal("ReadAt returned different bytes than WriteAt stored")
			}
			// Overwrite a middle window and re-check both edges survive.
			mid := make([]byte, 500)
			pattern(mid, 2, 0)
			f.WriteAt(r, 1000, mid)
			want := append([]byte{}, buf...)
			copy(want[900:], mid)
			if got := f.ReadAt(r, 100, 3000); !bytes.Equal(got, want) {
				t.Fatal("overwrite corrupted neighboring bytes")
			}
		})
	})

	t.Run(name+"/try-and-async-durable-at-issue", func(t *testing.T) {
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "async", stripe)
			b1 := make([]byte, 700)
			pattern(b1, 3, 0)
			if err := f.TryWriteAt(r, 0, b1); err != nil {
				t.Fatalf("TryWriteAt on a healthy backend: %v", err)
			}
			b2 := make([]byte, 700)
			pattern(b2, 4, 0)
			done := f.WriteAtAsync(r, 700, b2)
			if done < r.Now() {
				t.Fatalf("WriteAtAsync completion %g before now %g", done, r.Now())
			}
			// The contract: bytes are visible immediately, not at `done`.
			if got := f.Peek(700, 700); !bytes.Equal(got, b2) {
				t.Fatal("async write not durable at issue time")
			}
			if got, err := f.TryReadAt(r, 0, 700); err != nil || !bytes.Equal(got, b1) {
				t.Fatalf("TryReadAt: err=%v, match=%v", err, bytes.Equal(got, b1))
			}
			rbuf, rdone := f.ReadAtAsync(r, 700, 700)
			if rdone < r.Now() {
				t.Fatalf("ReadAtAsync completion %g before now %g", rdone, r.Now())
			}
			if !bytes.Equal(rbuf, b2) {
				t.Fatal("ReadAtAsync returned different bytes than stored")
			}
		})
	})

	t.Run(name+"/vectored-matches-scalar-data", func(t *testing.T) {
		exts := []storage.Extent{{Off: 0, Len: 512}, {Off: 2048, Len: 256}, {Off: 8192, Len: 1024}}
		bufs := make([][]byte, len(exts))
		for i, e := range exts {
			bufs[i] = make([]byte, e.Len)
			pattern(bufs[i], int64(10+i), e.Off)
		}
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "vec", stripe)
			f.WritevAt(r, exts, bufs)
			got := f.ReadvAt(r, exts)
			if len(got) != len(exts) {
				t.Fatalf("ReadvAt returned %d bufs, want %d", len(got), len(exts))
			}
			for i := range exts {
				if !bytes.Equal(got[i], bufs[i]) {
					t.Fatalf("extent %d: vectored read != vectored write", i)
				}
				// Scalar reads must see the vectored writes too.
				if sc := f.ReadAt(r, exts[i].Off, exts[i].Len); !bytes.Equal(sc, bufs[i]) {
					t.Fatalf("extent %d: scalar read != vectored write", i)
				}
			}
			// Async vectored: durable at issue, completion not in the past.
			abufs := make([][]byte, len(exts))
			aexts := make([]storage.Extent, len(exts))
			for i, e := range exts {
				aexts[i] = storage.Extent{Off: e.Off + 1<<20, Len: e.Len}
				abufs[i] = make([]byte, e.Len)
				pattern(abufs[i], int64(20+i), aexts[i].Off)
			}
			done := f.WritevAtAsync(r, aexts, abufs)
			if done < r.Now() {
				t.Fatalf("WritevAtAsync completion %g before now %g", done, r.Now())
			}
			for i, e := range aexts {
				if !bytes.Equal(f.Peek(e.Off, e.Len), abufs[i]) {
					t.Fatalf("extent %d: async vectored write not durable at issue", i)
				}
			}
			rbufs, rdone := f.ReadvAtAsync(r, aexts)
			if rdone < r.Now() {
				t.Fatalf("ReadvAtAsync completion %g before now %g", rdone, r.Now())
			}
			for i := range aexts {
				if !bytes.Equal(rbufs[i], abufs[i]) {
					t.Fatalf("extent %d: ReadvAtAsync != stored bytes", i)
				}
			}
		})
	})

	t.Run(name+"/remove-forgets", func(t *testing.T) {
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "gone", stripe)
			buf := make([]byte, 2048)
			pattern(buf, 5, 0)
			f.WriteAt(r, 0, buf)
			be.Remove("gone")
			g := be.Open(r, "gone", stripe)
			if got := g.Size(); got != 0 {
				t.Fatalf("reopen after Remove: Size() = %d, want 0", got)
			}
			// The fresh object is fully writable again.
			pattern(buf, 6, 0)
			g.WriteAt(r, 0, buf)
			if got := g.ReadAt(r, 0, 2048); !bytes.Equal(got, buf) {
				t.Fatal("reopen after Remove: write/read mismatch")
			}
		})
	})

	t.Run(name+"/drain-then-contents", func(t *testing.T) {
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "drained", stripe)
			buf := make([]byte, 4096)
			pattern(buf, 7, 0)
			f.WriteAt(r, 0, buf)
			be.Drain(r)
			if got := f.Contents(); !bytes.Equal(got, buf) {
				t.Fatal("Contents() after Drain != written bytes")
			}
		})
	})

	t.Run(name+"/punch-zeroes-in-place", func(t *testing.T) {
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "punched", stripe)
			buf := make([]byte, 4096)
			pattern(buf, 8, 0)
			f.WriteAt(r, 0, buf)
			f.Punch(1000, 500)
			if got := f.Size(); got != 4096 {
				t.Fatalf("Size() = %d after Punch, want 4096 (Punch must not shrink)", got)
			}
			for i, b := range f.Peek(1000, 500) {
				if b != 0 {
					t.Fatalf("byte %d = %#x after Punch, want 0", 1000+i, b)
				}
			}
			if !bytes.Equal(f.Peek(0, 1000), buf[:1000]) || !bytes.Equal(f.Peek(1500, 2596), buf[1500:]) {
				t.Fatal("Punch disturbed bytes outside its range")
			}
			// A rewrite heals the hole completely.
			f.WriteAt(r, 1000, buf[1000:1500])
			if got := f.ReadAt(r, 0, 4096); !bytes.Equal(got, buf) {
				t.Fatal("rewrite after Punch did not restore the original bytes")
			}
		})
	})

	t.Run(name+"/healthy-trydrain-and-zero-retrystats", func(t *testing.T) {
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			f := be.Open(r, "healthy", stripe)
			buf := make([]byte, 2048)
			pattern(buf, 9, 0)
			f.WriteAt(r, 0, buf)
			if err := be.TryDrain(r); err != nil {
				t.Fatalf("TryDrain on a healthy backend: %v", err)
			}
			if rs := be.RetryStats(); rs != (recovery.RetryStats{}) {
				t.Fatalf("RetryStats() = %+v on a healthy backend, want all zero", rs)
			}
		})
	})

	t.Run(name+"/ledger-audits-stores", func(t *testing.T) {
		run(t, mk, func(r *mpi.Rank, be storage.Backend) {
			led := storage.NewLedger(42)
			be.SetLedger(led)
			f := be.Open(r, "audited", stripe)
			buf := make([]byte, 3000)
			pattern(buf, 12, 0)
			f.WriteAt(r, 512, buf)
			be.Drain(r)
			if got := storage.SumLen(led.Acked("audited")); got != 3000 {
				t.Fatalf("ledger acknowledged %d bytes, want 3000", got)
			}
			if err := led.VerifyFile("audited", f); err != nil {
				t.Fatalf("ledger audit of a healthy run: %v", err)
			}
			// The audit must actually bite: punching acknowledged bytes
			// without a re-dump is exactly the corruption it exists to catch.
			f.Punch(1024, 256)
			if err := led.VerifyFile("audited", f); err == nil {
				t.Fatal("ledger audit passed over punched (corrupt) bytes")
			}
			f.WriteAt(r, 1024, buf[512:768])
			if err := led.VerifyFile("audited", f); err != nil {
				t.Fatalf("ledger audit after healing rewrite: %v", err)
			}
			be.SetLedger(nil)
		})
	})

	t.Run(name+"/deterministic", func(t *testing.T) {
		one := func() (float64, string) {
			var stats []storage.TargetStat
			end := run(t, mk, func(r *mpi.Rank, be storage.Backend) {
				f := be.Open(r, "det", stripe)
				buf := make([]byte, 1536)
				for i := 0; i < 8; i++ {
					pattern(buf, int64(i), int64(i)*1536)
					f.WriteAt(r, int64(i)*1536, buf)
				}
				f.WritevAt(r,
					[]storage.Extent{{Off: 100, Len: 64}, {Off: 9000, Len: 64}},
					[][]byte{make([]byte, 64), make([]byte, 64)})
				f.ReadAt(r, 0, 4096)
				be.Drain(r)
				stats = be.Stats()
			})
			return end, fmt.Sprintf("%+v", stats)
		}
		e1, s1 := one()
		e2, s2 := one()
		if e1 != e2 {
			t.Fatalf("virtual end times differ across identical runs: %g vs %g", e1, e2)
		}
		if s1 != s2 {
			t.Fatalf("Stats() differ across identical runs:\n%s\nvs\n%s", s1, s2)
		}
	})
}

// Fault-window timing shared by RunFaults and the backend plans it runs
// against. A conforming constructor arms its fault plan so that requests
// (or staged drains) issued inside [FaultAt, FaultAt+FaultFor) fail, and
// the window is one-shot: the script writes once before the window, once
// inside it (expecting the typed error), then recovers past its end.
const (
	FaultAt  = 1e-3 // virtual seconds into the run the fault window opens
	FaultFor = 8e-3 // window length: longer than any default retry budget
)

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// RunFaults is the fault-injection conformance leg: inject → typed error →
// recover → checksum-verified read-back. mk must return a fresh backend
// whose fault plan fails requests inside the [FaultAt, FaultAt+FaultFor)
// window — via OSTFails, ServerFails, or a BBFail at FaultAt with a drain
// slow enough that the pre-window write is still staged (one-shot windows;
// see the constants above). The script accepts either typed failure the
// storage seam defines:
//
//   - *recovery.TargetError — a retry engine exhausted its budget (or hit
//     permanence) against a failing target; the failed write stored nothing
//     (all-or-nothing) and a whole-operation retry after the window lands;
//   - *storage.StagingLostError — a staging node died holding the earlier
//     acknowledged write; the lost ranges read as zeroes until the caller
//     re-dumps them, which the script does from its master image.
//
// Either way the run must end with TryDrain clean, every byte equal to the
// master image, and the integrity ledger's audit passing. The whole script
// runs twice and must land on the identical virtual clock.
func RunFaults(t *testing.T, name string, mk func() storage.Backend) {
	t.Run(name+"/inject-recover-verify", func(t *testing.T) {
		one := func() float64 {
			return run(t, mk, func(r *mpi.Rank, be storage.Backend) {
				led := storage.NewLedger(7)
				be.SetLedger(led)
				f := be.Open(r, "flt", stripe)
				master := make([]byte, 8192)

				// Before the window: a healthy write must succeed.
				w1 := make([]byte, 2048)
				pattern(w1, 30, 0)
				if now := r.Now(); now >= FaultAt {
					t.Fatalf("clock %g already inside the fault window before the first write", now)
				}
				if err := f.TryWriteAt(r, 0, w1); err != nil {
					t.Fatalf("TryWriteAt before the fault window: %v", err)
				}
				copy(master, w1)

				// Step into the window and write again: the typed error must
				// surface, and all-or-nothing means the target range stays
				// untouched.
				if now := r.Now(); now < FaultAt {
					r.Compute(FaultAt - now + FaultFor/8)
				}
				w2 := make([]byte, 1024)
				pattern(w2, 31, 4096)
				err := f.TryWriteAt(r, 4096, w2)
				if err == nil {
					t.Fatal("TryWriteAt inside the fault window succeeded, want a typed error")
				}
				if !allZero(f.Peek(4096, 1024)) {
					t.Fatal("failed TryWriteAt left bytes behind (all-or-nothing violated)")
				}
				var sl *storage.StagingLostError
				var te *recovery.TargetError
				switch {
				case errors.As(err, &sl):
					// Staging loss: the plan killed the node holding w1.
					if sl.File != "flt" || len(sl.Lost) == 0 {
						t.Fatalf("StagingLostError names file %q with %d extents, want %q with some", sl.File, len(sl.Lost), "flt")
					}
					for _, e := range sl.Lost {
						if !allZero(f.Peek(e.Off, e.Len)) {
							t.Fatalf("lost range [%d,%d) not punched to zeroes", e.Off, e.End())
						}
					}
					// Re-dump the lost ranges from the master image.
					for _, e := range sl.Lost {
						if err := f.TryWriteAt(r, e.Off, master[e.Off:e.End()]); err != nil {
							t.Fatalf("re-dump of lost range [%d,%d): %v", e.Off, e.End(), err)
						}
					}
				case errors.As(err, &te):
					// Retry exhaustion against a failing target: the engine
					// must have actually retried before giving up.
					if te.Attempts < 2 {
						t.Fatalf("TargetError after %d attempt(s), want >= 2 (no retry ran)", te.Attempts)
					}
					if rs := be.RetryStats(); rs.Failures == 0 || rs.Exhausted == 0 {
						t.Fatalf("RetryStats() = %+v after exhaustion, want Failures > 0 and Exhausted > 0", rs)
					}
				default:
					t.Fatalf("fault-window error %v (%T) is neither *storage.StagingLostError nor *recovery.TargetError", err, err)
				}

				// Recover: step past the window, retry the failed write until
				// it lands (a staging tier's first retry goes straight through
				// write-through; a retry engine's succeeds once healthy).
				if now := r.Now(); now < FaultAt+FaultFor {
					r.Compute(FaultAt + FaultFor - now + FaultFor/8)
				}
				for i := 0; ; i++ {
					if err := f.TryWriteAt(r, 4096, w2); err == nil {
						break
					} else if i >= 8 {
						t.Fatalf("TryWriteAt still failing after the window: %v", err)
					}
					r.Compute(FaultFor)
				}
				copy(master[4096:], w2)

				if err := be.TryDrain(r); err != nil {
					t.Fatalf("TryDrain after recovery: %v", err)
				}
				if got, rerr := f.TryReadAt(r, 0, 8192); rerr != nil || !bytes.Equal(got, master) {
					t.Fatalf("read-back after recovery: err=%v, bytes match=%v", rerr, rerr == nil && bytes.Equal(got, master))
				}
				if err := led.Verify("flt", f.Peek); err != nil {
					t.Fatalf("integrity-ledger audit after recovery: %v", err)
				}
			})
		}
		if e1, e2 := one(), one(); e1 != e2 {
			t.Fatalf("fault-recovery runs land on different virtual clocks: %g vs %g", e1, e2)
		}
	})
}
