package storage

import "fmt"

// StagingLostError is the typed failure a staging tier surfaces when a
// node's staging memory died holding absorbed-but-undrained extents of the
// file: the writes were acknowledged at memory speed, their durability on
// the under-backend was booked asynchronously, and the node fail-stopped
// before the drain completed. The tier has already punched the lost ranges
// (they read back as zeroes) and flipped the node to write-through, so the
// caller's recovery is to re-dump the lost extents — an immediate retry of
// the failed write lands durably, and redump paths use Lost (plus
// LossReporter for later calls) to rewrite what earlier calls lost.
type StagingLostError struct {
	Node int      // the failed staging node
	File string   // file whose staged extents died
	Lost []Extent // coalesced byte ranges lost, pending re-dump
}

func (e *StagingLostError) Error() string {
	return fmt.Sprintf("bb: node %d staging memory lost with %d undrained extent(s) (%d bytes) of %q",
		e.Node, len(e.Lost), SumLen(e.Lost), e.File)
}
