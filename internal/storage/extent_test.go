package storage

import (
	"reflect"
	"testing"
)

func TestCoalesce(t *testing.T) {
	cases := []struct {
		name string
		in   []Extent
		want []Extent
	}{
		{"empty", nil, nil},
		{"zero-length-vanish", []Extent{{Off: 5, Len: 0}}, nil},
		{"single", []Extent{{Off: 3, Len: 4}}, []Extent{{Off: 3, Len: 4}}},
		{"adjacent-merge", []Extent{{Off: 0, Len: 4}, {Off: 4, Len: 4}}, []Extent{{Off: 0, Len: 8}}},
		{"overlap-merge", []Extent{{Off: 0, Len: 6}, {Off: 4, Len: 6}}, []Extent{{Off: 0, Len: 10}}},
		{"contained", []Extent{{Off: 0, Len: 10}, {Off: 2, Len: 3}}, []Extent{{Off: 0, Len: 10}}},
		{"unsorted-disjoint", []Extent{{Off: 10, Len: 2}, {Off: 0, Len: 2}}, []Extent{{Off: 0, Len: 2}, {Off: 10, Len: 2}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Coalesce(c.in); !reflect.DeepEqual(got, c.want) {
				t.Fatalf("Coalesce(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestCovered(t *testing.T) {
	exts := Coalesce([]Extent{{Off: 0, Len: 10}, {Off: 20, Len: 10}})
	cases := []struct {
		off, n int64
		want   bool
	}{
		{0, 10, true}, {2, 5, true}, {20, 10, true},
		{5, 10, false}, {8, 20, false}, {30, 1, false},
		{15, 0, true}, // empty ranges are vacuously covered
	}
	for _, c := range cases {
		if got := Covered(exts, c.off, c.n); got != c.want {
			t.Errorf("Covered(%v, %d, %d) = %v, want %v", exts, c.off, c.n, got, c.want)
		}
	}
}

func TestIntersectSubtract(t *testing.T) {
	a := []Extent{{Off: 0, Len: 10}, {Off: 20, Len: 10}}
	b := []Extent{{Off: 5, Len: 20}}
	wantI := []Extent{{Off: 5, Len: 5}, {Off: 20, Len: 5}}
	if got := Intersect(a, b); !reflect.DeepEqual(got, wantI) {
		t.Fatalf("Intersect = %v, want %v", got, wantI)
	}
	wantS := []Extent{{Off: 0, Len: 5}, {Off: 25, Len: 5}}
	if got := Subtract(a, b); !reflect.DeepEqual(got, wantS) {
		t.Fatalf("Subtract = %v, want %v", got, wantS)
	}
	if got := Subtract(a, a); got != nil {
		t.Fatalf("Subtract(a, a) = %v, want nil", got)
	}
	if got := Intersect(a, nil); got != nil {
		t.Fatalf("Intersect(a, nil) = %v, want nil", got)
	}
}

func TestRedumpPlanPartitions(t *testing.T) {
	lost := []Extent{{Off: 100, Len: 300}}
	owned := [][]Extent{
		{{Off: 0, Len: 200}},
		{{Off: 200, Len: 200}},
		{{Off: 400, Len: 200}},
	}
	var union []Extent
	var total int64
	for _, o := range owned {
		plan := RedumpPlan(lost, o)
		total += SumLen(plan)
		union = append(union, plan...)
	}
	if total != 300 {
		t.Fatalf("per-owner plans cover %d bytes, want 300 (exactly once)", total)
	}
	if got := Coalesce(union); !reflect.DeepEqual(got, Coalesce(lost)) {
		t.Fatalf("union of plans = %v, want %v", got, Coalesce(lost))
	}
}
