// Package storage defines the backend seam between the I/O protocol layers
// (mpiio, core, nbio consumers) and the storage models that serve them. The
// seam was carved out of internal/lustre, which remains the reference
// implementation; internal/pvfs (a lockless list-I/O server in the mold of
// PVFS) and internal/bb (a node-local burst-buffer staging tier) plug in
// behind the same interface.
//
// Contract highlights (DESIGN.md §14):
//
//   - Data is stored for real at issue time: after WriteAt or WriteAtAsync
//     returns, the bytes are durable in the backend's store and the caller
//     may reuse its buffer. Reads therefore see preceding writes of the same
//     proc regardless of virtual completion times.
//   - Blocking variants charge the rank's ClassIO clock for the operation's
//     completion wait; Async variants book the same simulated resources (in
//     the same order, drawing the same randomness) but return the virtual
//     completion time instead, for the nonblocking layer to account.
//   - Try variants surface typed errors where the blocking variants panic;
//     they exist for fault-injection plans whose request failures outlive
//     the retry engine.
//   - Vectored variants (WritevAt/ReadvAt and their Async twins) move a
//     whole offset/length list in one call. Every backend implements them;
//     only backends whose Params().ListIO is true make them cheaper than
//     the equivalent per-extent loop, and only for those does the collective
//     flush path in mpiio switch to the vectored calls.
//   - Determinism: all service-time noise must come from seeded per-backend
//     RNG consumed in engine-serialized order, so a run is a pure function
//     of (config, workload, seed) at every engine worker count.
package storage

import (
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/recovery"
)

// Stripe is a file's striping layout, fixed at create time (lustre.StripeInfo
// is an alias of this type, so existing call sites read unchanged).
type Stripe struct {
	Count  int   // number of targets the file stripes over
	Size   int64 // stripe unit in bytes
	Offset int   // index of the first target
}

// Extent is one (offset, length) run of a vectored list-I/O request.
type Extent struct {
	Off, Len int64
}

// End returns the exclusive upper bound of the extent.
func (e Extent) End() int64 { return e.Off + e.Len }

// TargetStat aggregates one storage target's service counters (an OST for
// lustre, a server for pvfs; lustre.OSTStat is an alias of this type).
type TargetStat struct {
	Requests  int64
	Bytes     int64 // virtual bytes served
	Switches  int64 // client alternations (lock/seek penalties paid)
	Tails     int64 // heavy-tail events
	Errors    int64 // injected request failures (before retry)
	BusySecs  float64
	FaultSecs float64 // service time added by the fault plan
}

// Params describes a backend's protocol-relevant properties — the subset of
// its configuration the I/O layers consult (the interface's "Config").
type Params struct {
	// CostScale is the virtual-bytes-per-real-byte factor of the cost model.
	CostScale float64
	// Targets is the number of storage targets behind the backend.
	Targets int
	// ListIO reports native vectored I/O: a WritevAt/ReadvAt costs one
	// request round-trip per touched target plus the summed transfer,
	// instead of a per-extent service call each. The collective flush path
	// uses the vectored calls only when this is set, so backends without
	// native support keep their per-extent request accounting bit-exact.
	ListIO bool
	// Injecting reports that a fault plan injects request errors, i.e. the
	// Try variants can return non-nil and async paths may panic. Staging
	// tiers consult it to route traffic through the error-plumbed path.
	Injecting bool
}

// File is an open handle on a backend. Handles are cheap; every rank opens
// its own (like an MPI file handle or a Lustre client).
type File interface {
	// Stripe returns the file's layout, as fixed at create time.
	Stripe() Stripe
	// Size returns the file length (highest byte written so far).
	Size() int64

	// WriteAt writes data at off, charging ClassIO for the completion wait.
	WriteAt(r *mpi.Rank, off int64, data []byte)
	// TryWriteAt is WriteAt returning the typed error instead of panicking.
	// On error no bytes are stored (all-or-nothing), so a whole-operation
	// retry is idempotent; elapsed time is charged either way.
	TryWriteAt(r *mpi.Rank, off int64, data []byte) error
	// WriteAtAsync books the same resources as WriteAt and stores the data
	// immediately, but returns the virtual completion time instead of
	// charging the clock.
	WriteAtAsync(r *mpi.Rank, off int64, data []byte) float64

	// ReadAt reads n bytes at off; unwritten bytes read as zero.
	ReadAt(r *mpi.Rank, off, n int64) []byte
	// TryReadAt is ReadAt returning the typed error instead of panicking.
	TryReadAt(r *mpi.Rank, off, n int64) ([]byte, error)
	// ReadAtAsync books the same resources as ReadAt and returns the data
	// plus the virtual completion time instead of charging the clock.
	ReadAtAsync(r *mpi.Rank, off, n int64) ([]byte, float64)

	// WritevAt writes one list-I/O request: bufs[i] lands at exts[i]. The
	// extents must be sorted and non-overlapping (the collective flush
	// merges before issuing). Blocking; charges ClassIO.
	WritevAt(r *mpi.Rank, exts []Extent, bufs [][]byte)
	// WritevAtAsync is WritevAt returning the virtual completion time
	// instead of charging the clock; data is durable on return.
	WritevAtAsync(r *mpi.Rank, exts []Extent, bufs [][]byte) float64
	// ReadvAt reads one list-I/O request, returning one buffer per extent.
	ReadvAt(r *mpi.Rank, exts []Extent) [][]byte
	// ReadvAtAsync is ReadvAt returning the data plus the virtual
	// completion time instead of charging the clock.
	ReadvAtAsync(r *mpi.Rank, exts []Extent) ([][]byte, float64)

	// Peek returns the file's bytes in [off, off+n) with no simulated time
	// cost — the staging tier serves buffer hits from it, and tests verify
	// contents through it.
	Peek(off, n int64) []byte
	// Contents returns the file's bytes in [0, Size) at no time cost.
	Contents() []byte

	// Punch zeroes any stored bytes in [off, off+n) without growing the
	// file or charging time — the fault layer's hook for revoking
	// durability when a staging node dies with undrained extents: the range
	// reads as zeroes until re-dumped, so recovery cannot silently pass on
	// stale bytes. An attached integrity Ledger is deliberately left
	// untouched; it keeps the acknowledged contents re-dump must restore.
	Punch(off, n int64)
}

// LossReporter is the optional File capability the collective layer uses to
// repair staging losses: implemented by backends that can lose
// acknowledged-but-staged data (the bb tier). LostExtents processes any
// staging-node failures due by the rank's current virtual time and returns
// the file's punched, not-yet-re-dumped extents (sorted, coalesced). The
// caller re-dumps its own intersection through writes, which heal the lost
// set as they land.
type LossReporter interface {
	LostExtents(r *mpi.Rank) []Extent
}

// Backend is one storage system instance. Create one per simulation run and
// share it across ranks; implementations serialize access through the
// engine (every operation begins with an engine sync, as lustre's do).
type Backend interface {
	// Open opens (creating if necessary) the named file. The stripe layout
	// applies only on create. Open costs metadata-service time.
	Open(r *mpi.Rank, name string, stripe Stripe) File
	// Remove deletes a file's data and releases every per-file ledger the
	// backend holds (lock namespaces, staged extents). No time cost.
	Remove(name string)
	// Drain blocks (in virtual time) until every buffered write involving
	// the calling rank's node is durable on the final tier, charging the
	// exposed wait to ClassIO. A pass-through backend returns immediately.
	Drain(r *mpi.Rank)
	// TryDrain is Drain with error plumbing: after the barrier it reports
	// any staged data the backend has lost and not yet seen re-dumped, as a
	// typed *StagingLostError. Backends that stage nothing never fail.
	TryDrain(r *mpi.Rank) error
	// Stats returns a copy of the per-target service counters.
	Stats() []TargetStat
	// RetryStats returns the backend's retry-engine counters — attempts,
	// failures, backoff time — summed over its layers (a staging tier adds
	// its drain-retry work to the under-backend's). All zero when no fault
	// plan injects errors into this backend.
	RetryStats() recovery.RetryStats
	// SetObs attaches a metrics registry (nil detaches). Observe-only: an
	// instrumented run is bit-identical to a bare one.
	SetObs(reg *obs.Registry)
	// SetLedger attaches an integrity ledger (nil detaches): every store
	// records a seeded digest of the written extent at issue time, for
	// checksum-verified read-back in recovery tests. Recording is free in
	// virtual time and draw-free. Staging tiers forward the ledger to the
	// under-backend that performs their actual stores.
	SetLedger(l *Ledger)
	// SetQoS installs a server-side admission policy (nil detaches): every
	// request's earliest service start is shaped by Admit, keyed by the
	// issuing rank's JobID, before the target's ledger books it. Staging
	// tiers forward the policy to the under-backend whose targets are the
	// shared contention point. A nil policy is the unshaped fast path and
	// runs bit-identically to pre-QoS builds; qos.NewFIFO shapes nothing
	// but keeps per-job usage accounting.
	SetQoS(p qos.Policy)
	// RetryStatsByJob returns the retry-engine counters keyed by the JobID
	// of the issuing rank, so interference under faults is attributable.
	// Backends return only jobs that recorded events — a healthy run's map
	// is empty, and single-job tools degrade to one job-0 bucket (their
	// ranks all carry JobID 0). Aggregate RetryStats stays authoritative;
	// per-job buckets sum to it, except counters a staging tier accrues on
	// node-scoped background drains, which have no issuing job and stay
	// aggregate-only.
	RetryStatsByJob() map[int]recovery.RetryStats
	// Params returns the backend's protocol-relevant properties.
	Params() Params
	// Name identifies the backend kind ("lustre", "listio", "bb").
	Name() string
}

// Degrader is the optional Backend capability for mid-run hot-swap:
// implemented by staging tiers that can migrate an open node's dirty state
// down to the under-backend and stop staging on it — voluntarily (an
// operator draining a node) or because the node's breaker opened. The
// durable-at-issue contract makes migration metadata-only: the bytes are
// already in the under-store, so Degrade reclaims the staging residency,
// honors in-flight drains at their booked completion times, and flips the
// node permanently to write-through. No data moves, no time is charged.
type Degrader interface {
	Backend
	// Under returns the backend writes degrade to.
	Under() Backend
	// Degraded reports whether the node has been flipped to write-through
	// (by Degrade, a staging-node failure, or an open drain breaker gone
	// permanent).
	Degraded(node int) bool
	// Degrade migrates the node's staged state to the under-backend and
	// flips it permanently to write-through. Idempotent.
	Degrade(r *mpi.Rank, node int)
}
