package storage

import (
	"bytes"
	"testing"
)

// peekStore adapts a ByteStore to the Verify peek signature.
func peekStore(bs *ByteStore) func(off, n int64) []byte {
	return func(off, n int64) []byte { return bs.Load(off, n) }
}

func TestLedgerVerify(t *testing.T) {
	led := NewLedger(1)
	bs := NewByteStore()
	data := bytes.Repeat([]byte{0xab}, 100)
	bs.Store(50, data)
	led.Record("f", 50, data)
	if err := led.Verify("f", peekStore(bs)); err != nil {
		t.Fatalf("clean verify: %v", err)
	}
	if got := SumLen(led.Acked("f")); got != 100 {
		t.Fatalf("acked %d bytes, want 100", got)
	}
	// Corruption (a punch without a re-dump) must fail the audit; the
	// acknowledged contents are the contract, so restoring them passes it.
	bs.Zero(60, 10)
	if err := led.Verify("f", peekStore(bs)); err == nil {
		t.Fatal("verify passed over zeroed acknowledged bytes")
	}
	bs.Store(60, data[10:20])
	if err := led.Verify("f", peekStore(bs)); err != nil {
		t.Fatalf("verify after restore: %v", err)
	}
}

func TestLedgerOverwriteLatestWins(t *testing.T) {
	led := NewLedger(1)
	bs := NewByteStore()
	first := bytes.Repeat([]byte{0x11}, 64)
	second := bytes.Repeat([]byte{0x22}, 32)
	bs.Store(0, first)
	led.Record("f", 0, first)
	bs.Store(16, second)
	led.Record("f", 16, second)
	if err := led.Verify("f", peekStore(bs)); err != nil {
		t.Fatalf("verify after overwrite: %v", err)
	}
	if got := len(led.Digests("f")); got != 2 {
		t.Fatalf("digest log has %d entries, want 2 (one per store)", got)
	}
}

func TestLedgerSeedSaltsDigests(t *testing.T) {
	a, b := NewLedger(1), NewLedger(2)
	data := []byte("same bytes, different salt")
	a.Record("f", 0, data)
	b.Record("f", 0, data)
	if a.Digests("f")[0].Sum == b.Digests("f")[0].Sum {
		t.Fatal("digests under different seeds collided")
	}
	c := NewLedger(1)
	c.Record("f", 0, data)
	if a.Digests("f")[0].Sum != c.Digests("f")[0].Sum {
		t.Fatal("digests under one seed differ across runs")
	}
}

func TestLedgerNoteLostKeepsContract(t *testing.T) {
	led := NewLedger(1)
	bs := NewByteStore()
	data := bytes.Repeat([]byte{0x5a}, 40)
	bs.Store(0, data)
	led.Record("f", 0, data)
	led.NoteLost("f", []Extent{{Off: 0, Len: 40}})
	if got := led.LostEvents(); got != 1 {
		t.Fatalf("LostEvents() = %d, want 1", got)
	}
	// The loss note changes nothing about what must read back.
	if got := SumLen(led.Acked("f")); got != 40 {
		t.Fatalf("acked %d bytes after NoteLost, want 40", got)
	}
	bs.Zero(0, 40)
	if err := led.Verify("f", peekStore(bs)); err == nil {
		t.Fatal("verify passed though the lost bytes were never re-dumped")
	}
}
