package storage

import (
	"testing"
)

// FuzzExtentRedump pins the joint invariants of the extent algebra under
// the re-dump planner: for an arbitrary lost set and an arbitrary partition
// of the file into per-rank owned sets, the per-rank RedumpPlans must (a)
// each be canonical (sorted, disjoint, positive lengths), (b) stay inside
// both the lost set and the rank's owned set, and (c) jointly cover every
// lost byte inside the file exactly once — no byte re-dumped twice, none
// forgotten. This is the property the collective recovery path and the
// checkpoint workload's regenerate-and-rewrite loop rely on.
func FuzzExtentRedump(f *testing.F) {
	f.Add([]byte{10, 5, 40, 8, 3, 7, 9}, uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0, 0, 255, 255, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(7))
	f.Fuzz(func(t *testing.T, raw []byte, nOwners uint8) {
		const span = int64(1 << 12)
		owners := int64(nOwners%8) + 1

		// Decode raw into an arbitrary (unsorted, overlapping) lost set.
		var lost []Extent
		for i := 0; i+1 < len(raw) && len(lost) < 64; i += 2 {
			off := int64(raw[i]) * 17 % (span + 64) // may poke past span
			n := int64(raw[i+1]) % 96
			lost = append(lost, Extent{Off: off, Len: n})
		}

		// Owners partition [0, span) into contiguous blocks.
		block := span / owners
		owned := make([][]Extent, owners)
		for i := int64(0); i < owners; i++ {
			end := (i + 1) * block
			if i == owners-1 {
				end = span
			}
			owned[i] = []Extent{{Off: i * block, Len: end - i*block}}
		}

		var union []Extent
		var total int64
		for i := int64(0); i < owners; i++ {
			plan := RedumpPlan(lost, owned[i])
			// Canonical: sorted, disjoint, positive lengths.
			for j, e := range plan {
				if e.Len <= 0 {
					t.Fatalf("owner %d: plan extent %d has length %d", i, j, e.Len)
				}
				if j > 0 && e.Off <= plan[j-1].End() {
					t.Fatalf("owner %d: plan not sorted/disjoint at %d: %v", i, j, plan)
				}
			}
			// Plan ⊆ lost and ⊆ owned.
			if SumLen(Subtract(plan, lost)) != 0 {
				t.Fatalf("owner %d: plan %v reaches outside the lost set %v", i, plan, lost)
			}
			if SumLen(Subtract(plan, owned[i])) != 0 {
				t.Fatalf("owner %d: plan %v reaches outside its owned set %v", i, plan, owned[i])
			}
			total += SumLen(plan)
			union = append(union, plan...)
		}

		// Exactly-once coverage of lost ∩ [0, span): the union equals the
		// in-file lost set, and the per-owner totals sum to its size (no
		// overlap — owners partition the file).
		inFile := Intersect(lost, []Extent{{Off: 0, Len: span}})
		cu := Coalesce(union)
		if SumLen(Subtract(cu, inFile)) != 0 || SumLen(Subtract(inFile, cu)) != 0 {
			t.Fatalf("union of plans %v != lost∩file %v", cu, inFile)
		}
		if want := SumLen(inFile); total != want {
			t.Fatalf("plans cover %d bytes total, want %d (exactly once)", total, want)
		}
	})
}
