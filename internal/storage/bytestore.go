package storage

// ByteStore holds one file's contents as a sparse page map (64 KiB pages),
// carved out of lustre's file object so every backend stores data the same
// way: bytes are kept for real, unwritten ranges read as zero, and neither
// Store nor Load costs simulated time — timing is the backend's job.
type ByteStore struct {
	pages map[int64][]byte
	size  int64
}

const pageBits = 16

// PageSize is the store's page granularity (64 KiB), exported for tests
// that exercise page-boundary crossings.
const PageSize = 1 << pageBits

// NewByteStore returns an empty store.
func NewByteStore() *ByteStore {
	return &ByteStore{pages: make(map[int64][]byte)}
}

// Size returns the highest byte offset written so far.
func (s *ByteStore) Size() int64 { return s.size }

// Store writes data at off, allocating pages as needed.
func (s *ByteStore) Store(off int64, data []byte) {
	for len(data) > 0 {
		page := off >> pageBits
		po := off & (PageSize - 1)
		l := int64(PageSize) - po
		if l > int64(len(data)) {
			l = int64(len(data))
		}
		buf, ok := s.pages[page]
		if !ok {
			buf = make([]byte, PageSize)
			s.pages[page] = buf
		}
		copy(buf[po:po+l], data[:l])
		off += l
		data = data[l:]
	}
	if off > s.size {
		s.size = off
	}
}

// Zero clears any stored bytes in [off, off+n) without growing the file:
// only already-allocated pages are touched, so zeroing an unwritten range is
// free and Size never moves. It is Punch's storage primitive — revoked
// durability reads back as zeroes.
func (s *ByteStore) Zero(off, n int64) {
	end := off + n
	for off < end {
		page := off >> pageBits
		po := off & (PageSize - 1)
		l := int64(PageSize) - po
		if l > end-off {
			l = end - off
		}
		if buf, ok := s.pages[page]; ok {
			z := buf[po : po+l]
			for i := range z {
				z[i] = 0
			}
		}
		off += l
	}
}

// Load reads n bytes at off; unwritten bytes are zero.
func (s *ByteStore) Load(off, n int64) []byte {
	out := make([]byte, n)
	pos := int64(0)
	for pos < n {
		page := (off + pos) >> pageBits
		po := (off + pos) & (PageSize - 1)
		l := int64(PageSize) - po
		if l > n-pos {
			l = n - pos
		}
		if buf, ok := s.pages[page]; ok {
			copy(out[pos:pos+l], buf[po:po+l])
		}
		pos += l
	}
	return out
}
