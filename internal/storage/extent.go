package storage

import "sort"

// Extent set algebra over (offset, length) byte ranges. Inputs may be
// arbitrary (unsorted, overlapping, zero-length); outputs are always
// canonical — sorted, disjoint, non-adjacent, no zero-length runs. The
// burst buffer's dirty-set merge, the staging-loss bookkeeping (lost sets
// shrink by Subtract as re-dumps land), and the collective layer's re-dump
// planning (RedumpPlan) all ride these three pure functions, and
// FuzzExtentRedump pins their joint invariants.

// Coalesce returns the union of the given extents as a minimal sorted list
// of disjoint extents: overlapping and adjacent runs merge, zero-length
// runs vanish. The input slice is not modified.
func Coalesce(exts []Extent) []Extent {
	var out []Extent
	for _, e := range exts {
		if e.Len > 0 {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	w := 0
	for _, e := range out[1:] {
		if e.Off <= out[w].End() {
			if e.End() > out[w].End() {
				out[w].Len = e.End() - out[w].Off
			}
			continue
		}
		w++
		out[w] = e
	}
	return out[:w+1]
}

// Covered reports whether [off, off+n) lies inside a single run of the
// coalesced (sorted, disjoint) extent list.
func Covered(exts []Extent, off, n int64) bool {
	if n <= 0 {
		return true
	}
	i := sort.Search(len(exts), func(i int) bool { return exts[i].End() > off })
	return i < len(exts) && exts[i].Off <= off && off+n <= exts[i].End()
}

// Intersect returns the canonical byte-set intersection of a and b.
func Intersect(a, b []Extent) []Extent {
	ca, cb := Coalesce(a), Coalesce(b)
	var out []Extent
	i, j := 0, 0
	for i < len(ca) && j < len(cb) {
		lo := ca[i].Off
		if cb[j].Off > lo {
			lo = cb[j].Off
		}
		hi := ca[i].End()
		if cb[j].End() < hi {
			hi = cb[j].End()
		}
		if hi > lo {
			out = append(out, Extent{Off: lo, Len: hi - lo})
		}
		if ca[i].End() < cb[j].End() {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract returns the canonical byte set of a minus b.
func Subtract(a, b []Extent) []Extent {
	ca, cb := Coalesce(a), Coalesce(b)
	var out []Extent
	j := 0
	for _, e := range ca {
		lo := e.Off
		for j < len(cb) && cb[j].End() <= lo {
			j++
		}
		k := j
		for k < len(cb) && cb[k].Off < e.End() {
			if cb[k].Off > lo {
				out = append(out, Extent{Off: lo, Len: cb[k].Off - lo})
			}
			if cb[k].End() > lo {
				lo = cb[k].End()
			}
			k++
		}
		if lo < e.End() {
			out = append(out, Extent{Off: lo, Len: e.End() - lo})
		}
	}
	return out
}

// SumLen returns the total byte count of the extent list (callers pass
// canonical lists; overlapping input counts bytes twice).
func SumLen(exts []Extent) int64 {
	var n int64
	for _, e := range exts {
		n += e.Len
	}
	return n
}

// RedumpPlan returns the canonical set of bytes a rank must rewrite to
// repair a staging loss: the intersection of the lost set with the extents
// the rank owns (and can regenerate or still holds). Across ranks whose
// owned sets partition the file, the per-rank plans partition the lost set
// — every lost byte is re-dumped exactly once, with no overlap; that is the
// FuzzExtentRedump invariant.
func RedumpPlan(lost, owned []Extent) []Extent {
	return Intersect(lost, owned)
}
