package storage

import "fmt"

// Ledger is the end-to-end integrity audit: a seeded checksum record of
// every extent a backend stored, written at issue time by the layer that
// owns the bytes (lustre's and pvfs's store paths — the bb tier forwards
// the ledger to its under-backend, which performs its actual stores).
// Recovery tests verify read-back against it, so "byte-exact after failure"
// is asserted by construction rather than per-test comparison code.
//
// Two records are kept per file. The digest log is the audit trail: one
// seeded FNV-1a digest per stored extent, in issue order — consumed by
// tests that want to assert what was acknowledged when. The shadow store
// is the authoritative expected image: the bytes as acknowledged, latest
// write wins, exactly the overwrite semantics of the real store. Verify
// walks the acknowledged extent set comparing backend contents against the
// shadow.
//
// A Punch (staging loss) deliberately does NOT touch the ledger: the
// acknowledged contents remain the contract, and only a re-dump that
// restores them lets Verify pass again.
//
// Everything here is free in virtual time and draw-free, so an audited run
// is bit-identical to a bare one.
type Ledger struct {
	seed  int64
	files map[string]*ledgerFile
	lost  int // staging-loss events noted (diagnostics)
}

type ledgerFile struct {
	shadow *ByteStore
	acked  []Extent // canonical acknowledged byte set
	dirty  bool     // acked needs a re-coalesce
	raw    []Extent // stores since the last coalesce
	log    []ExtentDigest
}

// ExtentDigest is one issue-time store record.
type ExtentDigest struct {
	Off, Len int64
	Sum      uint64 // seeded FNV-1a digest of the stored bytes
}

// NewLedger returns an empty ledger whose digests are salted with seed, so
// two runs under one seed produce identical digest logs and runs under
// different seeds cannot accidentally collide their way to a pass.
func NewLedger(seed int64) *Ledger {
	return &Ledger{seed: seed, files: make(map[string]*ledgerFile)}
}

func (l *Ledger) file(name string) *ledgerFile {
	f := l.files[name]
	if f == nil {
		f = &ledgerFile{shadow: NewByteStore()}
		l.files[name] = f
	}
	return f
}

// Record notes one store of data at off, at issue time: the shadow image
// absorbs the bytes and the digest log appends the extent's seeded sum.
func (l *Ledger) Record(name string, off int64, data []byte) {
	if len(data) == 0 {
		return
	}
	f := l.file(name)
	f.shadow.Store(off, data)
	f.raw = append(f.raw, Extent{Off: off, Len: int64(len(data))})
	f.dirty = true
	f.log = append(f.log, ExtentDigest{Off: off, Len: int64(len(data)), Sum: digest(l.seed, off, data)})
}

// NoteLost counts a staging-loss event (diagnostics; the expected contents
// do not change — re-dump must restore them).
func (l *Ledger) NoteLost(name string, lost []Extent) { l.lost++ }

// LostEvents returns how many staging losses were noted.
func (l *Ledger) LostEvents() int { return l.lost }

// Acked returns the file's canonical acknowledged byte set.
func (l *Ledger) Acked(name string) []Extent {
	f := l.files[name]
	if f == nil {
		return nil
	}
	if f.dirty {
		f.acked = Coalesce(append(f.acked, f.raw...))
		f.raw = f.raw[:0]
		f.dirty = false
	}
	return f.acked
}

// Digests returns the file's issue-order digest log.
func (l *Ledger) Digests(name string) []ExtentDigest {
	f := l.files[name]
	if f == nil {
		return nil
	}
	return f.log
}

// Verify compares the backend's current contents of every acknowledged
// extent of the file — read through peek, which must be a zero-time
// accessor like File.Peek — against the shadow image, returning a
// descriptive error on the first mismatching byte. No time cost, no draws.
func (l *Ledger) Verify(name string, peek func(off, n int64) []byte) error {
	for _, e := range l.Acked(name) {
		want := l.files[name].shadow.Load(e.Off, e.Len)
		got := peek(e.Off, e.Len)
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("ledger: %q byte %d = %#x, want %#x (acknowledged at issue time)",
					name, e.Off+int64(i), got[i], want[i])
			}
		}
	}
	return nil
}

// VerifyFile is Verify against an open handle's Peek.
func (l *Ledger) VerifyFile(name string, f File) error { return l.Verify(name, f.Peek) }

// digest is FNV-1a over the extent's offset and bytes, salted with the
// ledger seed.
func digest(seed, off int64, data []byte) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= fnvPrime
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(seed) >> (8 * i)))
		mix(byte(uint64(off) >> (8 * i)))
	}
	for _, b := range data {
		mix(b)
	}
	return h
}
