package mpiio

import (
	"encoding/binary"

	"repro/internal/mpi"
	"repro/internal/perf"
)

// Two-level (intra-node aggregated) collective I/O.
//
// The flat ext2ph protocol has every PE talk to every aggregator across the
// NIC: the request alltoallv, the per-round dense size alltoall, and one
// data message per (PE, aggregator) pair per round. On a fat node that is
// PEsPerNode times more cross-NIC traffic than necessary — the PEs of one
// node collectively hold one contiguous-ish slab of the request stream.
// With Hints.IntraNode on, PEs first merge into their node leader over
// shared memory and only leaders cross the interconnect:
//
//   - dissemination: members gather their per-aggregator request lists at
//     the leader (intra, memory-priced); the leader concatenates them in
//     member order and ships one merged list per aggregator (inter). The
//     aggregator's view is unchanged in content — the same clips arrive,
//     keyed by the sending node's leader — so file domains, st_loc/end_loc,
//     round count, and therefore all file bytes and I/O times are identical
//     to the flat path.
//   - per-round sync: the dense comm-wide size alltoall is replaced by a
//     leaders-only exchange of the aggregators' round windows; every rank
//     then derives its own obligations locally (clipWindowBytes over its
//     request lists — consistent by construction, since the aggregator's
//     expectation is the same function of the same merged lists).
//   - data exchange: a member sends ONE message to its leader per round
//     (its per-aggregator pieces concatenated in aggregator order); the
//     leader reassembles per-aggregator payloads in member-major order —
//     exactly the order of the merged request lists — and crosses the NIC
//     once per aggregator. Reads run the same tree in reverse.
//
// The viability rule keeping all of this consistent: every aggregator must
// be its node's leader (node-minimal comm rank). The default aggregator
// selection — first rank of each distinct node — satisfies it by
// construction; explicit AggregatorList hints that violate it fall back to
// the flat path, as does any crash-carrying fault plan (failover re-elects
// aggregators mid-call, which would orphan the leader roles).

// fileHier is the per-file two-level state: the communicator hierarchy and
// the aggregator-to-node map, both fixed at open.
type fileHier struct {
	h       *mpi.Hierarchy
	aggNode []int // aggregator index -> node index in h.Layout
}

// hierViable reports whether the two-level path can run: every aggregator
// comm rank leads its node. Aggregators are distinct, so this also bounds
// them to one per node — which is what lets a round window be published as
// "this node's window" by its leader.
func hierViable(lay mpi.NodeLayout, aggs []int) bool {
	for _, cr := range aggs {
		if !lay.IsLeader(cr) {
			return false
		}
	}
	return true
}

// hplan is the per-call two-level scratch hung off the plan.
type hplan struct {
	// memberReq (leaders only) holds each intra member's request list per
	// aggregator, decoded at dissemination; offsets/lengths only (that is
	// all the leader needs: round-splitting byte counts and merge order).
	memberReq [][][]clip
	win       [][2]int64 // per aggregator: this round's window
	myOwe     []int64    // per aggregator: my data bytes this round
	memOwe    [][]int64  // leaders: per member, per aggregator bytes this round
}

// hierDisseminate is the two-level form of protocol step 3: requests gather
// at the node leader over memory and only merged per-aggregator lists cross
// the NIC. Fills p.others on aggregators (keyed by leader comm rank, the
// message source the round loop will see) and p.h everywhere. [sync]
func (f *File) hierDisseminate(p *plan) {
	r, hh := f.r, f.hier.h
	nag := len(f.aggs)
	hp := &hplan{win: make([][2]int64, nag), myOwe: make([]int64, nag)}
	p.h = hp

	old := r.SetClass(mpi.ClassSync)
	blobs := hh.Intra.Gather(0, encReqSet(p.myReq))
	if hh.IsLeader() {
		hp.memberReq = make([][][]clip, len(blobs))
		for m, b := range blobs {
			hp.memberReq[m] = decReqSet(b, nag)
			perf.PutBuf(b)
		}
		hp.memOwe = make([][]int64, len(hp.memberReq))
		for m := range hp.memOwe {
			hp.memOwe[m] = make([]int64, nag)
		}
		// Merge member lists per aggregator — concatenation in member order,
		// never re-sorted: the round loop's payload assembly counts on the
		// merged list and the data stream sharing one member-major order.
		send := make([][]byte, hh.Inter.Size())
		for a := 0; a < nag; a++ {
			var merged []clip
			for _, mr := range hp.memberReq {
				merged = append(merged, mr[a]...)
			}
			if len(merged) > 0 {
				send[f.hier.aggNode[a]] = encClips(merged)
			}
		}
		got := hh.Inter.Alltoallv(send, f.hints.AlltoallvAlgo)
		if f.isAggregator() {
			p.others = make(map[int][]clip)
			for node, b := range got {
				if len(b) > 0 {
					p.others[hh.Layout.Leaders[node]] = decClips(b)
				}
			}
		}
		for _, b := range got {
			if len(b) > 0 {
				perf.PutBuf(b)
			}
		}
	}
	r.SetClass(old)
}

// hierWindows is the round's two-level synchronization: leaders exchange
// their node's aggregator window (zero when the node hosts none) and fan the
// table out node-locally; every rank then computes its send/receive
// obligations without any comm-wide collective. w0/w1 are the caller's own
// aggregator window (zero on non-aggregators). [sync]
func (f *File) hierWindows(p *plan, w0, w1 int64) {
	hp, hh := p.h, f.hier.h
	var lv []int64
	if hh.IsLeader() {
		lv = []int64{w0, w1}
	}
	tab := hh.ExchangeLeaderInt64s(lv)
	for a := range f.aggs {
		win := tab[f.hier.aggNode[a]]
		hp.win[a] = [2]int64{win[0], win[1]}
		hp.myOwe[a] = clipWindowBytes(p.myReq[a], win[0], win[1])
	}
	if hh.IsLeader() {
		for m, mr := range hp.memberReq {
			for a := range f.aggs {
				hp.memOwe[m][a] = clipWindowBytes(mr[a], hp.win[a][0], hp.win[a][1])
			}
		}
	}
}

// hierSendUp is the write exchange's up-flow: every rank drains its cursors
// into one member payload (per-aggregator pieces in aggregator order) and
// hands it to its leader over memory; leaders reassemble per-aggregator
// payloads in member-major order and cross the NIC once per aggregator.
// The aggregator-side receive/scatter in exchangeRound is unchanged — it
// sees the same byte streams as the flat path, just from fewer sources.
// [exchange]
func (f *File) hierSendUp(s *wstate) {
	hp, hh := s.p.h, f.hier.h
	var total int64
	for a := range f.aggs {
		total += hp.myOwe[a]
	}
	var mine []byte
	if total > 0 {
		mine = perf.GetBuf(int(total))[:0]
		for a := range f.aggs {
			if n := hp.myOwe[a]; n > 0 {
				mine = s.cursor[a].takeAppend(mine, s.p.myReq[a], s.data, n)
			}
		}
	}
	if !hh.IsLeader() {
		if total > 0 {
			hh.Intra.SendWeighted(0, s.tag, mine, scaled(len(mine), f.scale))
		}
		return
	}
	msgs := make([][]byte, hh.Intra.Size())
	msgs[0] = mine // the leader is its own member 0
	for m := 1; m < hh.Intra.Size(); m++ {
		if sumInt64(hp.memOwe[m]) > 0 {
			msg, _ := hh.Intra.Recv(m, s.tag)
			msgs[m] = msg
		}
	}
	pos := make([]int64, len(msgs))
	for a, cr := range f.aggs {
		var n int64
		for m := range msgs {
			n += hp.memOwe[m][a]
		}
		if n == 0 {
			continue
		}
		payload := perf.GetBuf(int(n))[:0]
		for m, msg := range msgs {
			if k := hp.memOwe[m][a]; k > 0 {
				payload = append(payload, msg[pos[m]:pos[m]+k]...)
				pos[m] += k
			}
		}
		f.comm.SendWeighted(cr, s.tag, payload, scaled(len(payload), f.scale))
	}
	for _, msg := range msgs {
		if msg != nil {
			perf.PutBuf(msg)
		}
	}
}

// hierRecvDown is the read exchange's down-flow, hierSendUp in reverse: the
// leader receives each aggregator's merged delivery for its node, splits it
// per member by the locally known byte counts, and fans out one message per
// member over memory; members scatter their piece through their own request
// cursors. [exchange]
func (f *File) hierRecvDown(s *rstate) {
	hp, hh := s.p.h, f.hier.h
	if hh.IsLeader() {
		nm := hh.Intra.Size()
		parts := make([][]byte, nm)
		for m := 0; m < nm; m++ {
			if t := sumInt64(hp.memOwe[m]); t > 0 {
				parts[m] = perf.GetBuf(int(t))[:0]
			}
		}
		for a, cr := range f.aggs {
			var n int64
			for m := 0; m < nm; m++ {
				n += hp.memOwe[m][a]
			}
			if n == 0 {
				continue
			}
			msg, _ := f.comm.Recv(cr, s.tag)
			var pos int64
			for m := 0; m < nm; m++ {
				if k := hp.memOwe[m][a]; k > 0 {
					parts[m] = append(parts[m], msg[pos:pos+k]...)
					pos += k
				}
			}
			perf.PutBuf(msg) // arena-built by serveRound
		}
		for m := 1; m < nm; m++ {
			if parts[m] != nil {
				hh.Intra.SendWeighted(m, s.tag, parts[m], scaled(len(parts[m]), f.scale))
			}
		}
		if parts[0] != nil {
			f.hierPlace(s, parts[0])
			perf.PutBuf(parts[0])
		}
		return
	}
	if sumInt64(hp.myOwe) > 0 {
		msg, _ := hh.Intra.Recv(0, s.tag)
		f.hierPlace(s, msg)
		perf.PutBuf(msg)
	}
}

// hierPlace scatters a member's round delivery (per-aggregator pieces in
// aggregator order) into the output buffer through the request cursors.
func (f *File) hierPlace(s *rstate, msg []byte) {
	hp := s.p.h
	var pos int64
	for a := range f.aggs {
		if k := hp.myOwe[a]; k > 0 {
			s.cursor[a].place(s.p.myReq[a], s.out, msg[pos:pos+k])
			pos += k
		}
	}
}

func sumInt64(v []int64) int64 {
	var n int64
	for _, x := range v {
		n += x
	}
	return n
}

// clipWindowBytes returns the byte count of cl intersected with [lo, hi) —
// clipBytes(clipWindow(cl, lo, hi)) without materializing the clips. The
// two-level sync computes every obligation through it, on both sides of
// each transfer, which is what makes the derived sizes agree by
// construction.
func clipWindowBytes(cl []clip, lo, hi int64) int64 {
	var n int64
	for _, c := range cl {
		if c.off+c.ln <= lo || c.off >= hi {
			continue
		}
		o, e := c.off, c.off+c.ln
		if o < lo {
			o = lo
		}
		if e > hi {
			e = hi
		}
		n += e - o
	}
	return n
}

// encReqSet encodes per-aggregator request lists into one arena blob:
// a count header (one int64 per aggregator) followed by the 16-byte
// off/len clip records in aggregator order. The consumer releases it with
// perf.PutBuf once decoded (hierDisseminate does).
func encReqSet(reqs [][]clip) []byte {
	total := 0
	for _, cl := range reqs {
		total += len(cl)
	}
	out := perf.GetBuf(8*len(reqs) + 16*total)
	pos := 0
	for _, cl := range reqs {
		binary.LittleEndian.PutUint64(out[pos:], uint64(len(cl)))
		pos += 8
	}
	for _, cl := range reqs {
		for _, c := range cl {
			binary.LittleEndian.PutUint64(out[pos:], uint64(c.off))
			binary.LittleEndian.PutUint64(out[pos+8:], uint64(c.ln))
			pos += 16
		}
	}
	return out
}

func decReqSet(b []byte, nag int) [][]clip {
	reqs := make([][]clip, nag)
	pos := 8 * nag
	for a := 0; a < nag; a++ {
		n := int(binary.LittleEndian.Uint64(b[8*a:]))
		if n == 0 {
			continue
		}
		cl := make([]clip, n)
		for i := range cl {
			cl[i].off = int64(binary.LittleEndian.Uint64(b[pos:]))
			cl[i].ln = int64(binary.LittleEndian.Uint64(b[pos+8:]))
			pos += 16
		}
		reqs[a] = cl
	}
	return reqs
}
