package mpiio

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/recovery"
	"repro/internal/storage"
)

// Fail-stop fault tolerance for the collective write path.
//
// The healthy ext2ph round loop synchronizes each round with a dense
// alltoall, which has no failure semantics: a crashed aggregator would stall
// the collective forever. Under a fault plan that carries crashes, WriteAtAll
// switches to this resilient variant, which restructures the round
// synchronization so that an aggregator's death is *observable*:
//
//   - Instead of the alltoall, each live aggregator sends every member a
//     24-byte plan message per round — [st_loc, end_loc, want] — announcing
//     its touched range and how much it expects from that member this round.
//     The announcement doubles as a heartbeat: it is sent even when want is
//     zero.
//   - Members collect announcements with a virtual-time watchdog
//     (mpi.RecvUntil). A dead aggregator role sends nothing, so every
//     member's watchdog for it expires in the same round — detection is
//     consistent across ranks without any consensus protocol, because the
//     timeout is pure virtual time and the silence is total.
//   - On detection, the dead aggregator's *unwritten remainder* —
//     [st_loc + round*cb, end_loc), known from its announcements (or its
//     whole file domain if it died before announcing) — is re-partitioned
//     across the surviving aggregators with the same computeFDs used for the
//     original domains. Each member clips its own requests against the annex
//     subdomains and disseminates them to the new owners; from then on annex
//     windows advance alongside the main windows, and the owners stage and
//     write them exactly as the two-phase protocol would have.
//   - When no aggregator survives, the lowest comm rank whose aggregator
//     role is not dead is elected owner (deterministically, with no
//     communication — every rank runs the same rule on the same dead set).
//   - A failover budget (recovery.Policy.MaxFailovers) bounds the cascade:
//     one failure past the budget degrades the call — every member
//     independently rewrites all of its own data. Degradation is idempotent
//     because collective and independent writes land identical bytes.
//
// Determinism: the protocol introduces no new randomness. Timeouts are pure
// virtual time; detection rounds, owner election, annex bounds, and the
// extended round count are pure functions of the fault plan and the request
// pattern, computed identically on every rank. The crashed rank itself
// consults the plan only for its *own* role (to fall silent); everyone else
// detects honestly, by timeout.
//
// The crash model kills the aggregator *role*, not the process: the rank
// stops announcing, collecting, and writing, but keeps participating as a
// data source. That is what makes byte-exact recovery possible — the data a
// dead aggregator never wrote is still held by its original owners, and the
// annex owners collect it from them.

// recoveryOn reports whether this call must run the resilient round loop:
// either the plan crashes aggregators, or the storage backend itself is
// injecting faults (f.inj) under a plan that can kill a staging node — then
// writes must go through the erroring Try path so a StagingLostError can
// surface and be repaired instead of panicking mid-collective. Plans whose
// storage faults cannot reach the selected backend leave the healthy path
// untouched (bit-identical goldens).
func (f *File) recoveryOn() bool {
	return f.run.Fault.HasCrashes() || (f.inj && f.run.Fault.HasBBFails())
}

// aggCrashedNow asks the plan whether THIS rank's aggregator role is dead at
// the given round of the current call. Only ever consulted for the rank
// itself — other ranks' deaths are detected by timeout, never read from the
// plan.
func (f *File) aggCrashedNow(round int) bool {
	return f.run.Fault.AggCrashed(f.r.WorldRank(), f.seq, round)
}

// Recovery-path tags, above the independent data tags (dataTag tops out at
// 62_563) and below the runtime's collective tag space (65_536).
func (f *File) planTag(round int) int      { return 62564 + (f.seq%7)*128 + round%128 }
func (f *File) annexCtlTag(round int) int  { return 63500 + (f.seq%7)*64 + round%64 }
func (f *File) annexDataTag(round int) int { return 64400 + (f.seq%7)*128 + round%128 }

// encPlan packs one plan/heartbeat message: [st_loc, end_loc, want].
func encPlan(st, end int64, want int) []byte {
	b := perf.GetBuf(24)
	binary.LittleEndian.PutUint64(b, uint64(st))
	binary.LittleEndian.PutUint64(b[8:], uint64(end))
	binary.LittleEndian.PutUint64(b[16:], uint64(want))
	return b
}

func decPlan(b []byte) (st, end int64, want int) {
	st = int64(binary.LittleEndian.Uint64(b))
	end = int64(binary.LittleEndian.Uint64(b[8:]))
	want = int(binary.LittleEndian.Uint64(b[16:]))
	return st, end, want
}

// annexDomain is one slice of a dead aggregator's unwritten remainder,
// absorbed by a surviving owner. Every rank tracks every annex (the bounds
// are common knowledge); req/cur are this rank's member-side state, and
// others/buf exist only on the owner.
type annexDomain struct {
	owner   int   // comm rank that absorbed this subdomain
	lo, hi  int64 // file range [lo, hi)
	startRd int   // first round this annex's windows advance

	req []clip // member side: my clips inside [lo, hi)
	cur streamCursor

	others  map[int][]clip // owner side: per-source clips
	buf     []byte         // owner side: staging buffer
	extents []datatype.Segment
}

// window returns the annex's file window for the given absolute round.
func (x *annexDomain) window(round int, cb int64) (int64, int64) {
	if x.lo >= x.hi || round < x.startRd {
		return 0, 0
	}
	w0 := x.lo + int64(round-x.startRd)*cb
	w1 := w0 + cb
	if w1 > x.hi {
		w1 = x.hi
	}
	if w0 >= w1 {
		return 0, 0
	}
	return w0, w1
}

// ftState is the per-call state of one resilient collective write.
type ftState struct {
	s   *wstate
	pol recovery.Policy

	segs []datatype.Segment // my view-mapped physical segments
	pre  []int64            // prefix data positions for segs

	deadAgg  []bool  // per agg index: known dead (this call or earlier)
	aggSt    []int64 // per agg index: last announced st_loc
	aggEnd   []int64
	aggKnown []bool

	failovers int
	annexes   []*annexDomain
	degraded  bool
	ntimes    int // s.p.ntimes, possibly extended by annex rounds
}

// writeAtAllFT is WriteAtAll under a crash-carrying fault plan.
func (f *File) writeAtAllFT(logOff int64, data []byte) {
	if f.degraded {
		// A previous call exhausted the failover budget; collective
		// machinery on this handle stays retired.
		f.seq++
		segs := f.view.Map(logOff, int64(len(data)))
		f.degradeWrite(segs, prefixes(segs), data)
		f.absorbProf()
		return
	}
	s := f.beginWrite(logOff, data)
	nag := len(f.aggs)
	ft := &ftState{
		s:        s,
		pol:      f.run.Recovery.Defaults(),
		segs:     f.view.Map(logOff, int64(len(data))),
		deadAgg:  make([]bool, nag),
		aggSt:    make([]int64, nag),
		aggEnd:   make([]int64, nag),
		aggKnown: make([]bool, nag),
		ntimes:   s.p.ntimes,
	}
	ft.pre = prefixes(ft.segs)

	// Aggregators that died in an earlier call fail over immediately: their
	// silence was already paid for once, so round 0 starts with their whole
	// file domain annexed and no watchdog armed for them.
	if s.p.fdLo != nil {
		var carried []int
		for a, cr := range f.aggs {
			if f.deadWorld[f.comm.WorldRankOf(cr)] {
				ft.deadAgg[a] = true
				carried = append(carried, a)
			}
		}
		if len(carried) > 0 {
			t0 := f.r.Now()
			ft.failover(carried, 0)
			f.noteRecoverSpan(f.r.Now() - t0)
		}
	}

	if !ft.degraded {
		ft.run(data)
	}
	if ft.degraded {
		f.degraded = true
		f.rstats.Degradations++
		f.noteRecovery("degradations")
		f.rlog.Append(f.r.Now(), f.comm.Rank(), "degrade",
			"failover budget exhausted; independent rewrite of all local data")
		f.degradeWrite(ft.segs, ft.pre, data)
	}
	f.redumpLost(ft.segs, ft.pre, data)
	for _, x := range ft.annexes {
		if x.buf != nil {
			perf.PutBuf(x.buf)
		}
	}
	perf.PutBuf(s.buf)
	f.absorbProf()
}

// redumpLost repairs staging losses at the end of a collective write: if the
// backend can lose acknowledged-but-staged data (storage.LossReporter), each
// rank intersects the file's lost set with its own segments and rewrites
// exactly that — across ranks the owned sets partition the request, so every
// lost byte this collective touched is re-dumped exactly once, healing the
// tier's lost set as the writes land. Ranges lost from other files or other
// calls' requests are the drain barrier's to surface (workload-level
// recovery regenerates or re-reads them). Under a translated view the
// segments are logical, but the translator's physical map attributes each
// physical run to exactly one logical owner, so the intersect stays precise
// — partitioned groups re-dump only what they lost, same as the
// unpartitioned protocol.
func (f *File) redumpLost(segs []datatype.Segment, pre []int64, data []byte) {
	lr, ok := f.lf.(storage.LossReporter)
	if !ok {
		return
	}
	lost := lr.LostExtents(f.r)
	if len(lost) == 0 {
		return
	}
	var n int64
	redump := func(off, ln, pos int64) {
		for _, e := range storage.Intersect(lost, []storage.Extent{{Off: off, Len: ln}}) {
			p := pos + (e.Off - off)
			f.resilientWrite(e.Off, data[p:p+e.Len])
			n += e.Len
		}
	}
	for i, s := range segs {
		if f.xlate == nil {
			redump(s.Off, s.Len, pre[i])
			continue
		}
		pos := pre[i]
		for _, ph := range f.xlate.Phys(s.Off, s.Len) {
			redump(ph.Off, ph.Len, pos)
			pos += ph.Len
		}
	}
	if n > 0 {
		f.rlog.Append(f.r.Now(), f.comm.Rank(), "redump",
			fmt.Sprintf("re-dumped %d bytes lost to a staging-node failure", n))
	}
}

// run executes the resilient round loop until every main and annex window is
// written or the call degrades.
func (ft *ftState) run(data []byte) {
	f := ft.s.f
	s := ft.s
	r, comm := f.r, f.comm
	me := comm.Rank()
	myAgg := f.aggIndex()

	for round := 0; round < ft.ntimes; round++ {
		f.roundStall()
		ptag := f.planTag(round)

		// My own aggregator role fail-stops at the start of its crash
		// round: from here on this rank announces nothing, collects
		// nothing, writes nothing — the others will time out on it. The
		// snapshot precedes the self-mark so the crash lands in this
		// round's `newly` set on the crashed rank too: its process
		// survives as a data source and must join the failover
		// dissemination like everyone else.
		wasDead := append([]bool(nil), ft.deadAgg...)
		if myAgg >= 0 && !ft.deadAgg[myAgg] && f.aggCrashedNow(round) {
			ft.deadAgg[myAgg] = true
			// Idle out the watchdog period the others are about to spend
			// detecting this corpse. Every live member's clock advances by
			// exactly one timeout per newly dead aggregator this round; a
			// rank that skips a wait (it knows its own role is dead) would
			// otherwise fall a full timeout behind, and its next-round
			// watchdog deadlines would expire before the survivors'
			// announcements could arrive — false suspicion of every live
			// aggregator, from nothing but bookkeeping skew.
			f.r.Compute(ft.pol.Timeout)
			f.rlog.Append(r.Now(), me, "crash", fmt.Sprintf("aggregator role dead at round %d", round))
		}
		iAmLiveAgg := myAgg >= 0 && !ft.deadAgg[myAgg]

		// --- announce: live aggregators heartbeat their round plan. [sync]
		t0 := r.Now()
		old := r.SetClass(mpi.ClassSync)
		clear(s.want)
		if iAmLiveAgg {
			s.w0, s.w1 = s.p.window(round)
			for src, cl := range s.p.others {
				c := clipWindowInto(s.winClips[src][:0], cl, s.w0, s.w1)
				s.winClips[src] = c
				s.want[src] = int(clipBytes(c))
			}
			for src := 0; src < comm.Size(); src++ {
				if src == me {
					continue
				}
				comm.Send(src, ptag, encPlan(s.p.stLoc, s.p.endLoc, s.want[src]))
			}
			ft.aggSt[myAgg], ft.aggEnd[myAgg], ft.aggKnown[myAgg] = s.p.stLoc, s.p.endLoc, true
		}

		// --- collect: watchdog receive from every not-known-dead agg.
		clear(s.owe)
		for a, cr := range f.aggs {
			if ft.deadAgg[a] {
				continue
			}
			if cr == me {
				s.owe[cr] = s.want[me]
				continue
			}
			msg, _, ok := comm.RecvUntil(cr, ptag, ft.pol.Timeout)
			if !ok {
				ft.deadAgg[a] = true
				f.rstats.Detections++
				f.noteRecovery("detections")
				f.rstats.DetectSecs += ft.pol.Timeout
				f.rlog.Append(r.Now(), me, "timeout",
					fmt.Sprintf("aggregator %d (comm rank %d) silent in round %d", a, cr, round))
				continue
			}
			st, end, w := decPlan(msg)
			perf.PutBuf(msg)
			ft.aggSt[a], ft.aggEnd[a], ft.aggKnown[a] = st, end, true
			s.owe[cr] = w
		}
		r.SetClass(old)
		f.traceRound("round-sync", t0, r.Now(), round)

		// --- failover: newly detected deaths re-partition their remainder.
		var newly []int
		for a := range ft.deadAgg {
			if ft.deadAgg[a] && !wasDead[a] {
				newly = append(newly, a)
			}
		}
		if len(newly) > 0 {
			t0 := r.Now()
			ft.failover(newly, round)
			f.noteRecoverSpan(r.Now() - t0)
			if ft.degraded {
				return
			}
		}

		// --- exchange: main-domain obligations, then annex obligations.
		dtag := f.dataTag(round)
		atag := f.annexDataTag(round)
		t0 = r.Now()
		old = r.SetClass(mpi.ClassExchange)
		for a, cr := range f.aggs {
			if ft.deadAgg[a] {
				continue
			}
			if n := s.owe[cr]; n > 0 {
				payload := s.cursor[a].take(s.p.myReq[a], data, int64(n))
				comm.SendWeighted(cr, dtag, payload, scaled(len(payload), f.scale))
			}
		}
		for _, x := range ft.annexes {
			w0, w1 := x.window(round, s.p.cb)
			if w0 >= w1 {
				continue
			}
			if n := clipBytes(clipWindow(x.req, w0, w1)); n > 0 {
				payload := x.cur.take(x.req, data, n)
				comm.SendWeighted(x.owner, atag, payload, scaled(len(payload), f.scale))
			}
		}
		if iAmLiveAgg {
			s.extents = s.extents[:0]
			for src := 0; src < comm.Size(); src++ {
				if s.want[src] == 0 {
					continue
				}
				msg, _ := comm.Recv(src, dtag)
				cl := s.winClips[src]
				if clipBytes(cl) != int64(len(msg)) {
					panic(fmt.Sprintf("mpiio: ft round %d expected %d bytes from %d, got %d",
						round, clipBytes(cl), src, len(msg)))
				}
				var pos int64
				for _, c := range cl {
					copy(s.buf[c.off-s.w0:c.off-s.w0+c.ln], msg[pos:pos+c.ln])
					s.extents = append(s.extents, datatype.Segment{Off: c.off, Len: c.ln})
					pos += c.ln
				}
				perf.PutBuf(msg)
			}
		}
		for _, x := range ft.annexes {
			if x.owner != me {
				continue
			}
			w0, w1 := x.window(round, s.p.cb)
			if w0 >= w1 {
				continue
			}
			x.extents = x.extents[:0]
			for src := 0; src < comm.Size(); src++ {
				cl := clipWindow(x.others[src], w0, w1)
				if clipBytes(cl) == 0 {
					continue
				}
				msg, _ := comm.Recv(src, atag)
				var pos int64
				for _, c := range cl {
					copy(x.buf[c.off-w0:c.off-w0+c.ln], msg[pos:pos+c.ln])
					x.extents = append(x.extents, datatype.Segment{Off: c.off, Len: c.ln})
					pos += c.ln
				}
				perf.PutBuf(msg)
			}
		}
		r.SetClass(old)
		f.traceRound("round-exchange", t0, r.Now(), round)

		// --- io: main window, then any annex windows this rank owns.
		t0 = r.Now()
		if iAmLiveAgg {
			f.writeStaged(s.extents, s.buf, s.w0)
		}
		for _, x := range ft.annexes {
			if x.owner != me {
				continue
			}
			if w0, w1 := x.window(round, s.p.cb); w0 < w1 {
				f.writeStaged(x.extents, x.buf, w0)
			}
		}
		f.traceRound("round-io", t0, r.Now(), round)
	}
}

// failover absorbs the newly dead aggregators' remainders. It runs on every
// rank with an identical dead set, so every decision below — owner election,
// annex bounds, the extended round count — is common knowledge without a
// word of agreement traffic. Only the clip dissemination communicates.
func (ft *ftState) failover(newly []int, round int) {
	f := ft.s.f
	comm, r := f.comm, f.r
	me := comm.Rank()

	ft.failovers += len(newly)
	for _, a := range newly {
		f.deadWorld[comm.WorldRankOf(f.aggs[a])] = true
	}
	if ft.failovers > ft.pol.MaxFailovers {
		ft.degraded = true
		return
	}
	if ft.s.p.fdLo == nil {
		return // the call moves no data; nothing to recover
	}

	// Owners: the surviving aggregators, ascending. If none survive, elect
	// the lowest comm rank whose aggregator role is not dead.
	var owners []int
	for a, cr := range f.aggs {
		if !ft.deadAgg[a] {
			owners = append(owners, cr)
		}
	}
	if len(owners) == 0 {
		deadRank := make(map[int]bool, len(f.aggs))
		for _, cr := range f.aggs {
			deadRank[cr] = true
		}
		for cr := 0; cr < comm.Size(); cr++ {
			if !deadRank[cr] {
				owners = []int{cr}
				break
			}
		}
		if len(owners) == 0 {
			// Every rank's aggregator role is dead (only possible when the
			// aggregator list spans the whole communicator).
			ft.degraded = true
			return
		}
		f.rstats.Reelections++
		f.noteRecovery("reelections")
		f.rlog.Append(r.Now(), me, "reelect",
			fmt.Sprintf("no aggregator survives; comm rank %d elected", owners[0]))
	}

	stripe := int64(0)
	if !f.hints.NoFDAlign {
		stripe = f.lf.Stripe().Size
	}
	var fresh []*annexDomain
	for _, a := range newly {
		// The dead aggregator finished rounds [0, round): its windows up to
		// st_loc + round*cb are durable. The remainder — or its whole file
		// domain if it never announced — is what the survivors absorb.
		var lo, hi int64
		if ft.aggKnown[a] {
			lo, hi = ft.aggSt[a]+int64(round)*ft.s.p.cb, ft.aggEnd[a]
		} else {
			lo, hi = ft.s.p.fdLo[a], ft.s.p.fdHi[a]
		}
		f.rstats.Failovers++
		f.noteRecovery("failovers")
		if lo >= hi {
			f.rlog.Append(r.Now(), me, "failover",
				fmt.Sprintf("aggregator %d had no unwritten remainder", a))
			continue
		}
		subLo, subHi := computeFDs(lo, hi, len(owners), stripe)
		for i, ocr := range owners {
			if subLo[i] >= subHi[i] {
				continue
			}
			x := &annexDomain{owner: ocr, lo: subLo[i], hi: subHi[i], startRd: round}
			x.req = clipSegs(ft.segs, ft.pre, x.lo, x.hi)
			if x.owner == me {
				x.others = make(map[int][]clip)
				x.buf = perf.GetBuf(int(ft.s.p.cb))
			}
			fresh = append(fresh, x)
		}
		f.rlog.Append(r.Now(), me, "failover",
			fmt.Sprintf("aggregator %d remainder [%d,%d) -> %d owner(s)", a, lo, hi, len(owners)))
	}

	// Disseminate: every member sends its (possibly empty) clip list for
	// each fresh annex to that annex's owner; owners receive exactly one
	// message per member. Deterministic counts, ascending order, eager
	// sends before any receive — no deadlock, no wildcard.
	ctag := f.annexCtlTag(round)
	old := r.SetClass(mpi.ClassSync)
	for _, x := range fresh {
		comm.Send(x.owner, ctag, encClips(x.req))
	}
	for _, x := range fresh {
		if x.owner != me {
			continue
		}
		for src := 0; src < comm.Size(); src++ {
			msg, _ := comm.Recv(src, ctag)
			if len(msg) > 0 {
				x.others[src] = decClips(msg)
			}
			perf.PutBuf(msg)
		}
	}
	r.SetClass(old)

	ft.annexes = append(ft.annexes, fresh...)

	// Extend the round count so every annex window gets a round. Computed
	// from the subdomain bounds, identically on every rank.
	for _, x := range ft.annexes {
		if n := x.startRd + int((x.hi-x.lo+ft.s.p.cb-1)/ft.s.p.cb); n > ft.ntimes {
			ft.ntimes = n
		}
	}
}

// noteRecoverSpan books one replanning span into the failover stats. The
// span runs from detection (the watchdog's return) to dissemination
// complete; the time-to-recover metric is the worst such span.
func (f *File) noteRecoverSpan(span float64) {
	f.rstats.RecoverSecs += span
	if span > f.rstats.TimeToRecover {
		f.rstats.TimeToRecover = span
	}
}

// writeStaged writes merged staged extents from buf (window origin w0),
// translating through f.xlate when installed — ioRound's body, pointed at
// the resilient write helper.
func (f *File) writeStaged(extents []datatype.Segment, buf []byte, w0 int64) {
	if f.xlate == nil {
		for _, ext := range mergeOverlapsInPlace(extents) {
			f.resilientWrite(ext.Off, buf[ext.Off-w0:ext.Off-w0+ext.Len])
		}
		return
	}
	var chunks []physChunk
	for _, ext := range mergeOverlapsInPlace(extents) {
		pos := ext.Off - w0
		for _, ph := range f.xlate.Phys(ext.Off, ext.Len) {
			chunks = append(chunks, physChunk{off: ph.Off, data: buf[pos : pos+ph.Len]})
			pos += ph.Len
		}
	}
	for _, run := range mergeChunks(chunks) {
		f.resilientWrite(run.off, run.data)
	}
}

// resilientWrite writes through the backend's erroring path, absorbing
// transient budget exhaustion by re-issuing the whole (idempotent,
// all-or-nothing) operation; each failed pass has already advanced the clock
// past its attempts, so a bounded failure window always drains. A staging
// loss (a burst-buffer node died with this file's undrained extents) is
// likewise survivable: the tier has already flipped the failed node to
// write-through, so the immediate retry lands durably on the under-backend,
// and the extents lost from earlier calls are re-dumped at the end of the
// collective call (redumpLost). Only a permanent target failure is
// unrecoverable at this layer and panics.
func (f *File) resilientWrite(off int64, data []byte) {
	for {
		err := f.lf.TryWriteAt(f.r, off, data)
		if err == nil {
			return
		}
		var sl *storage.StagingLostError
		if errors.As(err, &sl) {
			f.noteStagingLost(sl)
			continue
		}
		var oe *recovery.TargetError
		if errors.As(err, &oe) && oe.Permanent {
			panic(fmt.Sprintf("mpiio: unrecoverable write at %d: %v", off, err))
		}
	}
}

// noteStagingLost records a surfaced staging loss in the recovery log and
// telemetry. The loss itself is repaired by redumpLost.
func (f *File) noteStagingLost(sl *storage.StagingLostError) {
	f.rstats.Degradations++
	f.rlog.Append(f.r.Now(), f.comm.Rank(), "staging-lost", sl.Error())
}

// degradeWrite is the graceful-degradation fallback: rewrite all of this
// rank's data independently. Safe to apply mid-call — collective rounds
// already written land the same bytes, so the rewrite is idempotent.
func (f *File) degradeWrite(segs []datatype.Segment, pre []int64, data []byte) {
	for i, s := range segs {
		src := data[pre[i] : pre[i]+s.Len]
		if f.xlate == nil {
			f.resilientWrite(s.Off, src)
			continue
		}
		var pos int64
		for _, ph := range f.xlate.Phys(s.Off, s.Len) {
			f.resilientWrite(ph.Off, src[pos:pos+ph.Len])
			pos += ph.Len
		}
	}
}

// readAtAllFT is ReadAtAll under a crash-carrying plan: collective read
// scheduling assumes every aggregator serves, so reads fall back to
// independent I/O — correctness over coordination while the file handle is
// operating under failures.
func (f *File) readAtAllFT(logOff, n int64) []byte {
	f.seq++
	segs := f.view.Map(logOff, n)
	out := make([]byte, 0, n)
	for _, s := range segs {
		if f.xlate == nil {
			out = append(out, f.resilientRead(s.Off, s.Len)...)
			continue
		}
		for _, ph := range f.xlate.Phys(s.Off, s.Len) {
			out = append(out, f.resilientRead(ph.Off, ph.Len)...)
		}
	}
	f.absorbProf()
	return out
}

// resilientRead mirrors resilientWrite for reads. A staging loss is fatal
// here: the reader holds no copy of the lost bytes, so retrying cannot make
// progress — the writer's re-dump (redumpLost, or the workload's drain-level
// recovery) must land before anyone reads the range, and a read that beats
// it is a real data-loss bug that must fail loudly.
func (f *File) resilientRead(off, n int64) []byte {
	for {
		data, err := f.lf.TryReadAt(f.r, off, n)
		if err == nil {
			return data
		}
		var sl *storage.StagingLostError
		if errors.As(err, &sl) {
			panic(fmt.Sprintf("mpiio: read at %d overlaps staged data lost to a bb node failure and not yet re-dumped: %v", off, err))
		}
		var oe *recovery.TargetError
		if errors.As(err, &oe) && oe.Permanent {
			panic(fmt.Sprintf("mpiio: unrecoverable read at %d: %v", off, err))
		}
	}
}
