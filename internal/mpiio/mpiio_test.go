package mpiio

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/lustre"
	"repro/internal/mpi"
)

func testStripe() lustre.StripeInfo { return lustre.StripeInfo{Count: 4, Size: 4096} }

// pattern fills a buffer with rank-and-offset dependent bytes.
func pattern(rank int, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rank*37 + i*11 + 5)
	}
	return b
}

func runIO(t *testing.T, nprocs int, seed int64, body func(r *mpi.Rank, fs *lustre.FS)) *lustre.FS {
	t.Helper()
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.Run(nprocs, cluster.DefaultConfig(), seed, func(r *mpi.Rank) {
		body(r, fs)
	})
	return fs
}

func TestCollectiveWriteContiguous(t *testing.T) {
	const n = 8
	const per = 10000
	fs := runIO(t, n, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "cw", testStripe(), Hints{CBBufferSize: 8192})
		// Each rank writes a contiguous slab at rank*per.
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * per, Filetype: datatype.Contig(per)})
		f.WriteAtAll(0, pattern(r.WorldRank(), per))
	})
	verify := lustre.NewFS(lustre.DefaultConfig())
	_ = verify
	// Verify the file contents.
	checkContents(t, fs, "cw", func(off int64) byte {
		rank := int(off / per)
		i := int(off % per)
		return byte(rank*37 + i*11 + 5)
	}, n*per)
}

func checkContents(t *testing.T, fs *lustre.FS, name string, want func(off int64) byte, size int64) {
	t.Helper()
	var got []byte
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		f := fs.Open(r, name, testStripe())
		got = f.Contents()
	})
	if int64(len(got)) != size {
		t.Fatalf("file size %d want %d", len(got), size)
	}
	for off := int64(0); off < size; off++ {
		if got[off] != want(off) {
			t.Fatalf("byte %d = %d want %d", off, got[off], want(off))
		}
	}
}

func TestCollectiveWriteInterleaved(t *testing.T) {
	// Interleaved pattern: rank r owns every n-th block of 64 bytes —
	// classic strided collective I/O.
	const n = 6
	const blocks = 40
	const bs = 64
	fs := runIO(t, n, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "il", testStripe(), Hints{CBBufferSize: 1024})
		ft := datatype.NewVector(blocks, bs, n*bs)
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * bs, Filetype: ft})
		f.WriteAtAll(0, pattern(r.WorldRank(), blocks*bs))
	})
	checkContents(t, fs, "il", func(off int64) byte {
		block := off / bs
		rank := int(block % n)
		i := int((block/n)*bs + off%bs)
		return byte(rank*37 + i*11 + 5)
	}, n*blocks*bs)
}

func TestCollectiveReadMatchesWrite(t *testing.T) {
	const n = 5
	const per = 7777
	runIO(t, n, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "rr", testStripe(), Hints{CBBufferSize: 4000})
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * per, Filetype: datatype.Contig(per)})
		want := pattern(r.WorldRank(), per)
		f.WriteAtAll(0, want)
		comm.Barrier()
		got := f.ReadAtAll(0, per)
		if !bytes.Equal(got, want) {
			t.Errorf("rank %d read-back mismatch", r.WorldRank())
		}
	})
}

func TestCollectiveReadStrided(t *testing.T) {
	const n = 4
	const blocks = 16
	const bs = 128
	runIO(t, n, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "rs", testStripe(), Hints{CBBufferSize: 1 << 20})
		ft := datatype.NewVector(blocks, bs, n*bs)
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * bs, Filetype: ft})
		want := pattern(r.WorldRank(), blocks*bs)
		f.WriteAtAll(0, want)
		comm.Barrier()
		got := f.ReadAtAll(0, blocks*bs)
		if !bytes.Equal(got, want) {
			t.Errorf("rank %d strided read-back mismatch", r.WorldRank())
		}
	})
}

func TestIndependentWrite(t *testing.T) {
	fs := runIO(t, 2, 1, func(r *mpi.Rank, fs *lustre.FS) {
		f := Open(mpi.WorldComm(r), fs, "ind", testStripe(), Hints{})
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * 100, Filetype: datatype.Contig(100)})
		f.WriteAt(0, pattern(r.WorldRank(), 100))
	})
	checkContents(t, fs, "ind", func(off int64) byte {
		rank := int(off / 100)
		i := int(off % 100)
		return byte(rank*37 + i*11 + 5)
	}, 200)
}

func TestIndependentReadThroughView(t *testing.T) {
	runIO(t, 1, 1, func(r *mpi.Rank, fs *lustre.FS) {
		f := Open(mpi.WorldComm(r), fs, "iv", testStripe(), Hints{})
		ft := datatype.NewVector(4, 10, 20)
		f.SetView(datatype.View{Disp: 0, Filetype: ft})
		want := pattern(0, 40)
		f.WriteAt(0, want)
		got := f.ReadAt(0, 40)
		if !bytes.Equal(got, want) {
			t.Error("independent view read-back mismatch")
		}
	})
}

func TestDefaultAggregatorsOnePerNode(t *testing.T) {
	// 8 ranks, 2 per node => 4 nodes => 4 default aggregators.
	runIO(t, 8, 1, func(r *mpi.Rank, fs *lustre.FS) {
		f := Open(mpi.WorldComm(r), fs, "agg", testStripe(), Hints{})
		aggs := f.Aggregators()
		want := []int{0, 2, 4, 6}
		if len(aggs) != len(want) {
			t.Fatalf("aggs = %v want %v", aggs, want)
		}
		for i := range want {
			if aggs[i] != want[i] {
				t.Fatalf("aggs = %v want %v", aggs, want)
			}
		}
	})
}

func TestCBNodesHint(t *testing.T) {
	runIO(t, 8, 1, func(r *mpi.Rank, fs *lustre.FS) {
		f := Open(mpi.WorldComm(r), fs, "cbn", testStripe(), Hints{CBNodes: 2})
		if got := len(f.Aggregators()); got != 2 {
			t.Errorf("aggregators = %d want 2", got)
		}
	})
}

func TestAggregatorListHint(t *testing.T) {
	runIO(t, 8, 1, func(r *mpi.Rank, fs *lustre.FS) {
		f := Open(mpi.WorldComm(r), fs, "al", testStripe(), Hints{AggregatorList: []int{3, 5}})
		aggs := f.Aggregators()
		if len(aggs) != 2 || aggs[0] != 3 || aggs[1] != 5 {
			t.Errorf("aggregators = %v want [3 5]", aggs)
		}
	})
}

func TestCollectiveWriteSingleAggregator(t *testing.T) {
	const n = 4
	const per = 5000
	fs := runIO(t, n, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "single", testStripe(), Hints{CBNodes: 1, CBBufferSize: 3000})
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * per, Filetype: datatype.Contig(per)})
		f.WriteAtAll(0, pattern(r.WorldRank(), per))
	})
	checkContents(t, fs, "single", func(off int64) byte {
		rank := int(off / per)
		i := int(off % per)
		return byte(rank*37 + i*11 + 5)
	}, n*per)
}

func TestBreakdownCategories(t *testing.T) {
	runIO(t, 8, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "bd", testStripe(), Hints{CBBufferSize: 2048})
		const per = 8192
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * per, Filetype: datatype.Contig(per)})
		f.WriteAtAll(0, pattern(r.WorldRank(), per))
		bd := f.Breakdown()
		if bd.Sync <= 0 {
			t.Errorf("rank %d: no sync time", r.WorldRank())
		}
		if r.WorldRank() == 0 && bd.IO <= 0 { // rank 0 is an aggregator
			t.Error("aggregator recorded no io time")
		}
		if bd.Total() <= 0 {
			t.Error("empty breakdown")
		}
	})
}

func TestEmptyCollectiveCallsAreSafe(t *testing.T) {
	runIO(t, 4, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "empty", testStripe(), Hints{})
		f.WriteAtAll(0, nil) // nobody writes anything
		got := f.ReadAtAll(0, 0)
		if len(got) != 0 {
			t.Errorf("read %d bytes from empty call", len(got))
		}
	})
}

func TestPartialParticipation(t *testing.T) {
	// Only half the ranks contribute data; the others pass empty buffers
	// but still participate in the collective.
	const n = 6
	const per = 3000
	fs := runIO(t, n, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "part", testStripe(), Hints{CBBufferSize: 2048})
		if r.WorldRank()%2 == 0 {
			f.SetView(datatype.View{Disp: int64(r.WorldRank()/2) * per, Filetype: datatype.Contig(per)})
			f.WriteAtAll(0, pattern(r.WorldRank(), per))
		} else {
			f.WriteAtAll(0, nil)
		}
	})
	checkContents(t, fs, "part", func(off int64) byte {
		rank := int(off/per) * 2
		i := int(off % per)
		return byte(rank*37 + i*11 + 5)
	}, 3*per)
}

// Property: random disjoint strided layouts written collectively match an
// independently-written reference byte for byte.
func TestCollectiveMatchesIndependentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(7) + 2
		bs := int64(rng.Intn(200) + 8)
		blocks := int64(rng.Intn(20) + 1)
		cb := int64(rng.Intn(4000) + 256)
		data := make([][]byte, n)
		for i := range data {
			data[i] = make([]byte, bs*blocks)
			rng.Read(data[i])
		}
		mkView := func(rank int) datatype.View {
			return datatype.View{
				Disp:     int64(rank) * bs,
				Filetype: datatype.NewVector(blocks, bs, int64(n)*bs),
			}
		}
		// Collective run.
		collFS := lustre.NewFS(lustre.DefaultConfig())
		mpi.Run(n, cluster.DefaultConfig(), seed, func(r *mpi.Rank) {
			f := Open(mpi.WorldComm(r), fs2Name(collFS), "x", testStripe(), Hints{CBBufferSize: cb})
			f.SetView(mkView(r.WorldRank()))
			f.WriteAtAll(0, data[r.WorldRank()])
		})
		// Independent reference run.
		refFS := lustre.NewFS(lustre.DefaultConfig())
		mpi.Run(n, cluster.DefaultConfig(), seed, func(r *mpi.Rank) {
			f := Open(mpi.WorldComm(r), refFS, "x", testStripe(), Hints{})
			f.SetView(mkView(r.WorldRank()))
			f.WriteAt(0, data[r.WorldRank()])
		})
		var a, b []byte
		mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			a = collFS.Open(r, "x", testStripe()).Contents()
			b = refFS.Open(r, "x", testStripe()).Contents()
		})
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// fs2Name is an identity helper keeping the property test readable.
func fs2Name(fs *lustre.FS) *lustre.FS { return fs }

func TestMultipleCollectiveCallsOnOneFile(t *testing.T) {
	const n = 4
	const per = 2000
	fs := runIO(t, n, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "multi", testStripe(), Hints{CBBufferSize: 1024})
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * per, Filetype: datatype.Contig(per)})
		half := pattern(r.WorldRank(), per)
		f.WriteAtAll(0, half[:per/2])
		f.WriteAtAll(per/2, half[per/2:])
	})
	checkContents(t, fs, "multi", func(off int64) byte {
		rank := int(off / per)
		i := int(off % per)
		return byte(rank*37 + i*11 + 5)
	}, n*per)
}

func TestCostScaledWriteStillCorrect(t *testing.T) {
	cfg := lustre.DefaultConfig()
	cfg.CostScale = 1024
	fs := lustre.NewFS(cfg)
	const n, per = 4, 1000
	mpi.Run(n, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		f := Open(mpi.WorldComm(r), fs, "sc", testStripe(), Hints{CBBufferSize: 512})
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * per, Filetype: datatype.Contig(per)})
		f.WriteAtAll(0, pattern(r.WorldRank(), per))
		if bd := f.Breakdown(); bd.Total() <= 0 {
			t.Error("no time recorded under cost scaling")
		}
	})
	var got []byte
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		got = fs.Open(r, "sc", testStripe()).Contents()
	})
	for off := range got {
		rank := off / per
		i := off % per
		if got[off] != byte(rank*37+i*11+5) {
			t.Fatalf("scaled write corrupted byte %d", off)
		}
	}
}

func TestPairwiseAlltoallvVariant(t *testing.T) {
	const n, per = 4, 3000
	fs := runIO(t, n, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "pw", testStripe(), Hints{
			CBBufferSize:  2048,
			AlltoallvAlgo: mpi.AlltoallvPairwise,
		})
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * per, Filetype: datatype.Contig(per)})
		f.WriteAtAll(0, pattern(r.WorldRank(), per))
	})
	checkContents(t, fs, "pw", func(off int64) byte {
		rank := int(off / per)
		i := int(off % per)
		return byte(rank*37 + i*11 + 5)
	}, n*per)
}

func TestSyncDominatesAtScaleWithTinyIO(t *testing.T) {
	// With many procs and tiny per-proc data, synchronization must be the
	// dominant cost — the premise of Figure 1.
	var bd Breakdown
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.Run(64, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "wall", testStripe(), Hints{})
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * 64, Filetype: datatype.Contig(64)})
		f.WriteAtAll(0, pattern(r.WorldRank(), 64))
		if r.WorldRank() == 1 { // non-aggregator
			bd = f.Breakdown()
		}
	})
	if bd.Sync < bd.IO {
		t.Errorf("tiny-io sync %g < io %g; collective wall premise broken", bd.Sync, bd.IO)
	}
}

func TestStringer(t *testing.T) {
	runIO(t, 2, 1, func(r *mpi.Rank, fs *lustre.FS) {
		f := Open(mpi.WorldComm(r), fs, "str", testStripe(), Hints{})
		if s := f.String(); s == "" {
			t.Error("empty String()")
		}
		_ = fmt.Sprint(f)
	})
}

func TestSievedReadMatchesPlain(t *testing.T) {
	runIO(t, 1, 1, func(r *mpi.Rank, fs *lustre.FS) {
		f := Open(mpi.WorldComm(r), fs, "sv", testStripe(), Hints{})
		ft := datatype.NewVector(32, 16, 64) // sparse strided layout
		f.SetView(datatype.View{Disp: 0, Filetype: ft})
		want := pattern(3, 32*16)
		f.WriteAt(0, want)
		plain := f.ReadAt(0, 32*16)
		sieved := f.ReadAtSieved(0, 32*16)
		if !bytes.Equal(plain, want) || !bytes.Equal(sieved, want) {
			t.Error("sieved read mismatch")
		}
	})
}

func TestSievedReadFasterOnStrided(t *testing.T) {
	elapsed := func(sieved bool) float64 {
		var d float64
		fs := lustre.NewFS(lustre.DefaultConfig())
		mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			f := Open(mpi.WorldComm(r), fs, "sp", lustre.StripeInfo{Count: 4, Size: 1 << 20}, Hints{})
			ft := datatype.NewVector(64, 256, 512) // 50% density
			f.SetView(datatype.View{Disp: 0, Filetype: ft})
			f.WriteAt(0, pattern(1, 64*256))
			t0 := r.Now()
			if sieved {
				f.ReadAtSieved(0, 64*256)
			} else {
				f.ReadAt(0, 64*256)
			}
			d = r.Now() - t0
		})
		return d
	}
	plain, sieved := elapsed(false), elapsed(true)
	if sieved >= plain {
		t.Errorf("sieving not faster on strided reads: plain %g vs sieved %g", plain, sieved)
	}
}

func TestSievedWriteCorrect(t *testing.T) {
	fs := runIO(t, 1, 1, func(r *mpi.Rank, fs *lustre.FS) {
		f := Open(mpi.WorldComm(r), fs, "sw", testStripe(), Hints{})
		// Pre-fill the holes so read-modify-write must preserve them.
		f.Lustre().WriteAt(r, 0, bytes.Repeat([]byte{0xEE}, 2048))
		ft := datatype.NewVector(16, 32, 128)
		f.SetView(datatype.View{Disp: 0, Filetype: ft})
		f.WriteAtSieved(0, pattern(2, 16*32))
	})
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		got := fs.Open(r, "sw", testStripe()).ReadAt(r, 0, 2048)
		want := pattern(2, 16*32)
		for i := 0; i < 2048; i++ {
			blk, off := i/128, i%128
			if blk < 16 && off < 32 {
				if got[i] != want[blk*32+off] {
					t.Fatalf("data byte %d wrong", i)
				}
			} else if got[i] != 0xEE {
				t.Fatalf("hole byte %d clobbered: %x", i, got[i])
			}
		}
	})
}

func TestSieveWindowsDensityCutoff(t *testing.T) {
	// Widely separated segments must not be packed into one window.
	segs := []datatype.Segment{{Off: 0, Len: 10}, {Off: 1 << 20, Len: 10}}
	wins := sieveWindows(segs, 4<<20)
	if len(wins) != 2 {
		t.Errorf("sparse segments packed together: %d windows", len(wins))
	}
	// Dense segments pack.
	dense := []datatype.Segment{{Off: 0, Len: 100}, {Off: 150, Len: 100}, {Off: 300, Len: 100}}
	if wins := sieveWindows(dense, 4096); len(wins) != 1 {
		t.Errorf("dense segments split: %d windows", len(wins))
	}
}

// Property: file domains tile [minSt, maxEnd) exactly — ordered, disjoint,
// and covering every byte once — for any range, aggregator count, and
// stripe alignment.
func TestComputeFDsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		minSt := rng.Int63n(1 << 30)
		maxEnd := minSt + rng.Int63n(1<<30) + 1
		nag := rng.Intn(64) + 1
		stripe := int64(0)
		if rng.Intn(2) == 0 {
			stripe = 1 << (8 + rng.Intn(14))
		}
		lo, hi := computeFDs(minSt, maxEnd, nag, stripe)
		if len(lo) != nag || len(hi) != nag {
			return false
		}
		cursor := minSt
		for a := 0; a < nag; a++ {
			if hi[a] < lo[a] {
				return false
			}
			if lo[a] > hi[a] { // impossible, defensive
				return false
			}
			if hi[a] > lo[a] { // non-empty: must start exactly at cursor
				if lo[a] != cursor {
					return false
				}
				cursor = hi[a]
			}
			if stripe > 0 && hi[a] > lo[a] && a+1 < nag && hi[a] < maxEnd && hi[a]%stripe != 0 {
				return false // interior boundary must be stripe-aligned
			}
		}
		return cursor == maxEnd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
