package mpiio

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/storage"
)

// The extended two-phase protocol (Thakur & Choudhary), as implemented by
// ROMIO's generic ADIO layer:
//
//  1. file range gathering  — allgather of each process's (st, end) offsets
//  2. file domain partitioning — the covered range is split evenly (stripe
//     aligned) across the I/O aggregators
//  3. request dissemination — alltoallv of per-aggregator request lists
//  4. interleaved phases of data exchange and file I/O — ntimes rounds,
//     each opening a cb_buffer-sized window per aggregator; every round is
//     synchronized by a dense alltoall of transfer sizes
//
// Steps 1–3 and the per-round size alltoall are collective operations; the
// time spent in them is the "synchronization" of the paper's breakdown and
// the source of the collective wall.

// clip is a physical extent plus the matching position in the caller's
// data buffer.
type clip struct {
	off, ln int64
	dataPos int64
}

// plan is the per-call state of one collective operation.
type plan struct {
	myReq  [][]clip       // per aggregator: my extents in its FD
	others map[int][]clip // aggregators only: per source comm rank
	fdLo   []int64        // per aggregator: file domain start
	fdHi   []int64        // per aggregator: file domain end
	stLoc  int64          // this aggregator's first touched offset
	endLoc int64          // this aggregator's last touched offset (exclusive)
	ntimes int
	cb     int64
	h      *hplan // two-level scratch; nil on the flat path (see hier.go)
}

// window returns this aggregator's file window for the given round; rounds
// past its own touched range are empty.
func (p *plan) window(round int) (int64, int64) {
	if p.stLoc >= p.endLoc {
		return 0, 0
	}
	w0 := p.stLoc + int64(round)*p.cb
	w1 := w0 + p.cb
	if w1 > p.endLoc {
		w1 = p.endLoc
	}
	if w0 >= w1 {
		return 0, 0
	}
	return w0, w1
}

const maxI64 = int64(^uint64(0) >> 1)

// computeFDs splits [minSt, maxEnd) into nag file domains, optionally
// aligning boundaries to the stripe size (stripe > 0). Domains are
// half-open, ordered, disjoint, and exactly tile the range; trailing
// domains may be empty when there are more aggregators than stripes.
func computeFDs(minSt, maxEnd int64, nag int, stripe int64) (fdLo, fdHi []int64) {
	base := minSt
	span := maxEnd - base
	fdSize := (span + int64(nag) - 1) / int64(nag)
	if stripe > 0 {
		base = (minSt / stripe) * stripe
		span = maxEnd - base
		fdSize = (span + int64(nag) - 1) / int64(nag)
		fdSize = (fdSize + stripe - 1) / stripe * stripe
	}
	fdLo = make([]int64, nag)
	fdHi = make([]int64, nag)
	for a := 0; a < nag; a++ {
		lo := base + int64(a)*fdSize
		hi := lo + fdSize
		if lo < minSt {
			lo = minSt
		}
		if hi > maxEnd {
			hi = maxEnd
		}
		if hi < lo {
			hi = lo
		}
		fdLo[a], fdHi[a] = lo, hi
	}
	return fdLo, fdHi
}

// buildPlan runs protocol steps 1–3 for this rank's physical segments.
func (f *File) buildPlan(segs []datatype.Segment) *plan {
	r, comm := f.r, f.comm
	p := &plan{cb: f.hints.cb()}

	// Step 1: gather every process's file range. [sync]
	st, end := maxI64, int64(0)
	if len(segs) > 0 {
		st, end = segs[0].Off, segs[len(segs)-1].End()
	}
	old := r.SetClass(mpi.ClassSync)
	var ranges [][]int64
	if f.hier != nil {
		ranges = f.hier.h.AllgatherInt64s([]int64{st, end})
	} else {
		ranges = comm.AllgatherInt64s([]int64{st, end})
	}
	r.SetClass(old)

	minSt, maxEnd := maxI64, int64(0)
	for _, rg := range ranges {
		if rg[0] < minSt {
			minSt = rg[0]
		}
		if rg[1] > maxEnd {
			maxEnd = rg[1]
		}
	}
	if minSt >= maxEnd {
		return p // nobody has data
	}

	// Step 2: partition [minSt, maxEnd) into file domains.
	stripe := int64(0)
	if !f.hints.NoFDAlign {
		stripe = f.lf.Stripe().Size
	}
	nag := len(f.aggs)
	p.fdLo, p.fdHi = computeFDs(minSt, maxEnd, nag, stripe)

	// My requests per aggregator (ADIOI_Calc_my_req).
	pre := prefixes(segs)
	p.myReq = make([][]clip, nag)
	for a := 0; a < nag; a++ {
		p.myReq[a] = clipSegs(segs, pre, p.fdLo[a], p.fdHi[a])
	}

	// Step 3: disseminate request lists to aggregators
	// (ADIOI_Calc_others_req). Two-level mode funnels them through node
	// leaders instead, so only merged lists cross the NIC (hier.go). [sync]
	if f.hier != nil {
		f.hierDisseminate(p)
	} else {
		send := make([][]byte, comm.Size())
		for a, cr := range f.aggs {
			if len(p.myReq[a]) > 0 {
				send[cr] = encClips(p.myReq[a])
			}
		}
		old = r.SetClass(mpi.ClassSync)
		got := comm.Alltoallv(send, f.hints.AlltoallvAlgo)
		r.SetClass(old)
		if f.isAggregator() {
			p.others = make(map[int][]clip)
			for src, b := range got {
				if len(b) > 0 {
					p.others[src] = decClips(b)
				}
			}
		}
		// The request lists were arena-encoded by encClips and are fully
		// decoded now; this rank owns every received block (ownership
		// transfer).
		for _, b := range got {
			if len(b) > 0 {
				perf.PutBuf(b)
			}
		}
	}

	// Round count: each aggregator covers its *touched* range (st_loc to
	// end_loc, as ROMIO calls them) in collective-buffer steps; the global
	// round count is agreed via allreduce(max). [sync]
	local := int64(0)
	if f.isAggregator() {
		p.stLoc, p.endLoc = maxI64, int64(0)
		for _, cl := range p.others {
			for _, c := range cl {
				if c.off < p.stLoc {
					p.stLoc = c.off
				}
				if c.off+c.ln > p.endLoc {
					p.endLoc = c.off + c.ln
				}
			}
		}
		if p.stLoc < p.endLoc {
			local = (p.endLoc - p.stLoc + p.cb - 1) / p.cb
		}
	}
	old = r.SetClass(mpi.ClassSync)
	var nt []int64
	if f.hier != nil {
		nt = f.hier.h.AllreduceInt64([]int64{local}, mpi.OpMax)
	} else {
		nt = comm.AllreduceInt64([]int64{local}, mpi.OpMax)
	}
	r.SetClass(old)
	p.ntimes = int(nt[0])
	return p
}

// roundStall applies the fault plan's per-round compute noise, if any,
// before a round's synchronizing alltoall: with the configured probability
// the rank stalls (OS noise, a page fault storm, a heavy-tail event) and
// every other member of the synchronization group ends up waiting for it.
// The draw comes from the rank's proc-local seeded RNG, so runs under a
// plan are bit-identical to each other.
func (f *File) roundStall() {
	if f.run.Fault == nil {
		return
	}
	if d := f.run.Fault.RoundStall(f.r.WorldRank(), f.r.P.Rand()); d > 0 {
		f.r.Compute(d)
	}
}

func (f *File) isAggregator() bool { return f.aggIndex() >= 0 }

// aggIndex returns this rank's position in the aggregator list, or -1.
func (f *File) aggIndex() int {
	for i, cr := range f.aggs {
		if cr == f.comm.Rank() {
			return i
		}
	}
	return -1
}

// dataTag derives a per-call, per-round user tag.
func (f *File) dataTag(round int) int {
	return 100 + (f.seq%61)*1024 + round%1024
}

// WriteAtAll is a collective write: all communicator members must call it.
// logOff and data are interpreted through each rank's file view.
//
// The round loop is assembled from the same resumable phase methods the
// split-collective path (split.go) pipelines; run back to back they perform
// the statements of the original monolithic loop in the original order, so
// blocking-mode results are bit-identical.
func (f *File) WriteAtAll(logOff int64, data []byte) {
	if f.recoveryOn() {
		f.writeAtAllFT(logOff, data)
		return
	}
	s := f.beginWrite(logOff, data)
	for round := 0; round < s.p.ntimes; round++ {
		s.syncRound(round)
		s.exchangeRound(round)
		s.ioRound(round)
	}
	perf.PutBuf(s.buf)
	f.absorbProf()
}

// wstate is the resumable per-call state of one collective write: the plan,
// the collective window buffer, and the round-loop scratch, split out so the
// blocking loop and the split-collective pipeline share one implementation.
type wstate struct {
	f      *File
	data   []byte
	p      *plan
	buf    []byte // current round's staging buffer (split mode swaps it)
	isAgg  bool
	cursor []streamCursor // per-aggregator cursor into my request stream

	want     []int          // want[src] = bytes I (as aggregator) expect this round
	owe      []int          // owe[cr] = bytes aggregator cr expects from me
	winClips [][]clip       // per source; backing arrays reused across rounds
	extents  []datatype.Segment

	tag     int   // current round's user tag
	w0, w1  int64 // current round's window
	nActive int   // sources sending to me this round
}

// beginWrite runs protocol steps 1–3 and allocates the round-loop state.
// The collective window buffer and the scratch are reused across all
// rounds; the window buffer comes from the arena (lustre copies written
// bytes into its page store, so nothing retains slices of buf past the
// call).
func (f *File) beginWrite(logOff int64, data []byte) *wstate {
	f.seq++
	segs := f.view.Map(logOff, int64(len(data)))
	p := f.buildPlan(segs)
	return &wstate{
		f:        f,
		data:     data,
		p:        p,
		buf:      perf.GetBuf(int(p.cb)),
		isAgg:    f.isAggregator(),
		cursor:   make([]streamCursor, len(f.aggs)),
		want:     make([]int, f.comm.Size()),
		owe:      make([]int, f.comm.Size()),
		winClips: make([][]clip, f.comm.Size()),
	}
}

// syncRound is the round's global synchronization point: the aggregator
// announces how much it expects from each source this round; the dense
// alltoall tells every process its send obligation. [sync]
func (s *wstate) syncRound(round int) {
	f, r, comm := s.f, s.f.r, s.f.comm
	s.tag = f.dataTag(round)
	f.roundStall()
	clear(s.want)
	s.nActive = 0
	s.w0, s.w1 = 0, 0
	if s.isAgg {
		s.w0, s.w1 = s.p.window(round)
		for src, cl := range s.p.others {
			c := clipWindowInto(s.winClips[src][:0], cl, s.w0, s.w1)
			s.winClips[src] = c
			if n := clipBytes(c); n > 0 {
				s.want[src] = int(n)
				s.nActive++
			}
		}
	}
	t0 := r.Now()
	old := r.SetClass(mpi.ClassSync)
	if f.hier != nil {
		// Two-level: leaders exchange round windows, everyone derives its
		// obligations locally — no comm-wide alltoall (see hier.go).
		f.hierWindows(s.p, s.w0, s.w1)
	} else {
		comm.AlltoallIntsInto(s.owe, s.want)
	}
	r.SetClass(old)
	f.traceRound("round-sync", t0, r.Now(), round)
}

// exchangeRound sends this rank's obligations and, on aggregators, receives
// and scatters the round's incoming data into the staging buffer.
// [exchange]
func (s *wstate) exchangeRound(round int) {
	f, r, comm := s.f, s.f.r, s.f.comm
	t0 := r.Now()
	old := r.SetClass(mpi.ClassExchange)
	if f.hier != nil {
		f.hierSendUp(s) // member -> leader -> aggregator (hier.go)
	} else {
		for a, cr := range f.aggs {
			if n := s.owe[cr]; n > 0 {
				payload := s.cursor[a].take(s.p.myReq[a], s.data, int64(n))
				comm.SendWeighted(cr, s.tag, payload, scaled(len(payload), f.scale))
			}
		}
	}
	if s.isAgg {
		s.extents = s.extents[:0]
		for i := 0; i < s.nActive; i++ {
			msg, st := comm.Recv(mpi.AnySource, s.tag)
			cl := s.winClips[st.Source]
			if clipBytes(cl) != int64(len(msg)) {
				panic(fmt.Sprintf("mpiio: round %d expected %d bytes from %d, got %d",
					round, clipBytes(cl), st.Source, len(msg)))
			}
			var pos int64
			for _, c := range cl {
				copy(s.buf[c.off-s.w0:c.off-s.w0+c.ln], msg[pos:pos+c.ln])
				s.extents = append(s.extents, datatype.Segment{Off: c.off, Len: c.ln})
				pos += c.ln
			}
			perf.PutBuf(msg) // arena-built by the sender's take
		}
	}
	r.SetClass(old)
	f.traceRound("round-exchange", t0, r.Now(), round)
}

// ioRound writes the coalesced dirty extents, translating logical extents
// to physical segments when an intermediate view is active, and charges the
// completion wait. [io]
func (s *wstate) ioRound(round int) {
	if !s.isAgg {
		return
	}
	f, r := s.f, s.f.r
	t0 := r.Now()
	if f.vec {
		// Native list-I/O: the whole round's dirty set is one vectored call
		// — one request round-trip per touched target instead of an RPC per
		// extent (DESIGN.md §14).
		if exts, bufs := s.vecWriteArgs(); len(exts) > 0 {
			f.lf.WritevAt(r, exts, bufs)
		}
		f.traceRound("round-io", t0, r.Now(), round)
		return
	}
	if f.xlate == nil {
		for _, ext := range mergeOverlapsInPlace(s.extents) {
			f.lf.WriteAt(r, ext.Off, s.buf[ext.Off-s.w0:ext.Off-s.w0+ext.Len])
		}
	} else {
		var chunks []physChunk
		for _, ext := range mergeOverlapsInPlace(s.extents) {
			pos := ext.Off - s.w0
			for _, ph := range f.xlate.Phys(ext.Off, ext.Len) {
				chunks = append(chunks, physChunk{off: ph.Off, data: s.buf[pos : pos+ph.Len]})
				pos += ph.Len
			}
		}
		// Physically adjacent chunks (often from neighboring processes'
		// joined segments) merge into single writes.
		for _, run := range mergeChunks(chunks) {
			f.lf.WriteAt(r, run.off, run.data)
		}
	}
	f.traceRound("round-io", t0, r.Now(), round)
}

// ioRoundAsync is ioRound's nonblocking twin: the same writes issued
// through lustre's async path, booking identical NIC/OST resources but
// charging nothing. It returns the virtual completion time of the slowest
// write; the split-collective pipeline accounts the tail (hidden or
// exposed) when the staging buffer is next reused or at WriteAllEnd.
func (s *wstate) ioRoundAsync(round int) float64 {
	f, r := s.f, s.f.r
	t0 := r.Now()
	done := t0
	if f.vec {
		if exts, bufs := s.vecWriteArgs(); len(exts) > 0 {
			if d := f.lf.WritevAtAsync(r, exts, bufs); d > done {
				done = d
			}
		}
		f.traceRound("round-io", t0, done, round)
		return done
	}
	if f.xlate == nil {
		for _, ext := range mergeOverlapsInPlace(s.extents) {
			if d := f.lf.WriteAtAsync(r, ext.Off, s.buf[ext.Off-s.w0:ext.Off-s.w0+ext.Len]); d > done {
				done = d
			}
		}
	} else {
		var chunks []physChunk
		for _, ext := range mergeOverlapsInPlace(s.extents) {
			pos := ext.Off - s.w0
			for _, ph := range f.xlate.Phys(ext.Off, ext.Len) {
				chunks = append(chunks, physChunk{off: ph.Off, data: s.buf[pos : pos+ph.Len]})
				pos += ph.Len
			}
		}
		for _, run := range mergeChunks(chunks) {
			if d := f.lf.WriteAtAsync(r, run.off, run.data); d > done {
				done = d
			}
		}
	}
	f.traceRound("round-io", t0, done, round)
	return done
}

// vecWriteArgs assembles the round's merged dirty extents (translated to
// physical segments when an intermediate view is active) into one vectored
// write's argument lists. Only the list-I/O path calls it, so the scalar
// backends' flush loop stays allocation-identical.
func (s *wstate) vecWriteArgs() ([]storage.Extent, [][]byte) {
	f := s.f
	merged := mergeOverlapsInPlace(s.extents)
	if f.xlate == nil {
		exts := make([]storage.Extent, 0, len(merged))
		bufs := make([][]byte, 0, len(merged))
		for _, ext := range merged {
			exts = append(exts, storage.Extent{Off: ext.Off, Len: ext.Len})
			bufs = append(bufs, s.buf[ext.Off-s.w0:ext.Off-s.w0+ext.Len])
		}
		return exts, bufs
	}
	var chunks []physChunk
	for _, ext := range merged {
		pos := ext.Off - s.w0
		for _, ph := range f.xlate.Phys(ext.Off, ext.Len) {
			chunks = append(chunks, physChunk{off: ph.Off, data: s.buf[pos : pos+ph.Len]})
			pos += ph.Len
		}
	}
	runs := mergeChunks(chunks)
	exts := make([]storage.Extent, 0, len(runs))
	bufs := make([][]byte, 0, len(runs))
	for _, run := range runs {
		exts = append(exts, storage.Extent{Off: run.off, Len: int64(len(run.data))})
		bufs = append(bufs, run.data)
	}
	return exts, bufs
}

// vecRead issues one vectored read for the merged extents into buf (window
// origin w0), translating through an intermediate view when active and
// scattering the returned buffers into place. async selects the Async
// variant and returns its virtual completion time; the blocking variant
// charges the clock and returns the advanced now.
func (s *rstate) vecRead(buf []byte, w0 int64, merged []datatype.Segment, async bool) float64 {
	f, r := s.f, s.f.r
	var exts []storage.Extent
	var runs []mergedRun
	if f.xlate == nil {
		exts = make([]storage.Extent, 0, len(merged))
		for _, ext := range merged {
			exts = append(exts, storage.Extent{Off: ext.Off, Len: ext.Len})
		}
	} else {
		var chunks []physChunk
		for _, ext := range merged {
			pos := ext.Off - w0
			for _, ph := range f.xlate.Phys(ext.Off, ext.Len) {
				chunks = append(chunks, physChunk{off: ph.Off, data: buf[pos : pos+ph.Len]})
				pos += ph.Len
			}
		}
		runs = mergeRuns(chunks)
		exts = make([]storage.Extent, 0, len(runs))
		for _, run := range runs {
			exts = append(exts, storage.Extent{Off: run.off, Len: run.n})
		}
	}
	if len(exts) == 0 {
		return r.Now()
	}
	var got [][]byte
	var done float64
	if async {
		got, done = f.lf.ReadvAtAsync(r, exts)
	} else {
		got = f.lf.ReadvAt(r, exts)
		done = r.Now()
	}
	if f.xlate == nil {
		for i, ext := range exts {
			copy(buf[ext.Off-w0:ext.Off-w0+ext.Len], got[i])
		}
	} else {
		for i, run := range runs {
			for _, c := range run.parts {
				copy(c.data, got[i][c.off-run.off:c.off-run.off+int64(len(c.data))])
			}
		}
	}
	return done
}

// streamCursor walks a rank's per-aggregator request list in offset order,
// yielding the next n data bytes on demand.
type streamCursor struct {
	seg  int
	used int64 // bytes consumed of clip[seg]
}

// take returns an arena buffer; the receiving aggregator releases it with
// perf.PutBuf after scattering (ownership transfer via Send).
func (c *streamCursor) take(req []clip, data []byte, n int64) []byte {
	return c.takeAppend(perf.GetBuf(int(n))[:0], req, data, n)
}

// takeAppend is take appending into out — the two-level up-flow drains
// several aggregators' streams into one member payload this way.
func (c *streamCursor) takeAppend(out []byte, req []clip, data []byte, n int64) []byte {
	for n > 0 {
		if c.seg >= len(req) {
			panic("mpiio: send obligation exceeds request stream")
		}
		cl := req[c.seg]
		avail := cl.ln - c.used
		take := avail
		if take > n {
			take = n
		}
		start := cl.dataPos + c.used
		out = append(out, data[start:start+take]...)
		c.used += take
		n -= take
		if c.used == cl.ln {
			c.seg++
			c.used = 0
		}
	}
	return out
}

// ReadAtAll is a collective read of n logical bytes at logOff through each
// rank's view. All communicator members must call it. Like WriteAtAll, the
// loop is assembled from the phase methods split.go pipelines.
func (f *File) ReadAtAll(logOff, n int64) []byte {
	if f.recoveryOn() {
		return f.readAtAllFT(logOff, n)
	}
	s := f.beginRead(logOff, n)
	for round := 0; round < s.p.ntimes; round++ {
		s.syncRound(round)
		s.ioRound(round)
		s.serveRound(round)
		s.recvRound(round)
	}
	perf.PutBuf(s.buf)
	f.absorbProf()
	return s.out
}

// rstate mirrors wstate for collective reads.
type rstate struct {
	f      *File
	out    []byte
	p      *plan
	buf    []byte
	isAgg  bool
	cursor []streamCursor

	give     []int // give[src] = bytes I (as aggregator) deliver this round
	due      []int // due[cr] = bytes aggregator cr will send me
	winClips [][]clip
	extents  []datatype.Segment

	tag    int
	w0, w1 int64
}

func (f *File) beginRead(logOff, n int64) *rstate {
	f.seq++
	segs := f.view.Map(logOff, n)
	p := f.buildPlan(segs)
	return &rstate{
		f:        f,
		out:      make([]byte, n),
		p:        p,
		buf:      perf.GetBuf(int(p.cb)), // reused across rounds
		isAgg:    f.isAggregator(),
		cursor:   make([]streamCursor, len(f.aggs)),
		give:     make([]int, f.comm.Size()),
		due:      make([]int, f.comm.Size()),
		winClips: make([][]clip, f.comm.Size()),
	}
}

// syncRound: the aggregator announces how much it will deliver to each
// requester this round. [sync]
func (s *rstate) syncRound(round int) {
	f, r, comm := s.f, s.f.r, s.f.comm
	s.tag = f.dataTag(round)
	f.roundStall()
	clear(s.give)
	s.w0, s.w1 = 0, 0
	if s.isAgg {
		s.w0, s.w1 = s.p.window(round)
		for src, cl := range s.p.others {
			c := clipWindowInto(s.winClips[src][:0], cl, s.w0, s.w1)
			s.winClips[src] = c
			if n := clipBytes(c); n > 0 {
				s.give[src] = int(n)
			}
		}
	}
	t0 := r.Now()
	old := r.SetClass(mpi.ClassSync)
	if f.hier != nil {
		f.hierWindows(s.p, s.w0, s.w1)
	} else {
		comm.AlltoallIntsInto(s.due, s.give)
	}
	r.SetClass(old)
	f.traceRound("round-sync", t0, r.Now(), round)
}

// windowExtents computes the merged extents every source requests inside
// the given round's window — purely from the plan, with no communication.
// That locality is what lets the split-collective pipeline prefetch round
// k+1's window before round k's alltoall confirms it: the confirmation is
// redundant for the aggregator's own read set.
func (s *rstate) windowExtents(round int, scratch []datatype.Segment) []datatype.Segment {
	w0, w1 := s.p.window(round)
	if w0 >= w1 {
		return nil
	}
	exts := scratch[:0]
	for _, cl := range s.p.others {
		for _, c := range cl {
			if c.off+c.ln <= w0 || c.off >= w1 {
				continue
			}
			o, e := c.off, c.off+c.ln
			if o < w0 {
				o = w0
			}
			if e > w1 {
				e = w1
			}
			exts = append(exts, datatype.Segment{Off: o, Len: e - o})
		}
	}
	return mergeOverlapsInPlace(exts)
}

// ioRound reads the union of requested extents into the staging buffer.
// [io]
func (s *rstate) ioRound(round int) {
	if !s.isAgg {
		return
	}
	f, r := s.f, s.f.r
	t0 := r.Now()
	s.extents = s.extents[:0]
	for src := range s.give {
		if s.give[src] == 0 {
			continue
		}
		for _, c := range s.winClips[src] {
			s.extents = append(s.extents, datatype.Segment{Off: c.off, Len: c.ln})
		}
	}
	if f.vec {
		s.vecRead(s.buf, s.w0, mergeOverlapsInPlace(s.extents), false)
		f.traceRound("round-io", t0, r.Now(), round)
		return
	}
	if f.xlate == nil {
		for _, ext := range mergeOverlapsInPlace(s.extents) {
			copy(s.buf[ext.Off-s.w0:ext.Off-s.w0+ext.Len], f.lf.ReadAt(r, ext.Off, ext.Len))
		}
	} else {
		// Gather the physical chunks backing the logical extents, read
		// merged runs once, and scatter into the logical buf.
		var chunks []physChunk
		for _, ext := range mergeOverlapsInPlace(s.extents) {
			pos := ext.Off - s.w0
			for _, ph := range f.xlate.Phys(ext.Off, ext.Len) {
				chunks = append(chunks, physChunk{off: ph.Off, data: s.buf[pos : pos+ph.Len]})
				pos += ph.Len
			}
		}
		for _, run := range mergeRuns(chunks) {
			got := f.lf.ReadAt(r, run.off, run.n)
			for _, c := range run.parts {
				copy(c.data, got[c.off-run.off:c.off-run.off+int64(len(c.data))])
			}
		}
	}
	f.traceRound("round-io", t0, r.Now(), round)
}

// ioRoundAsyncInto is the prefetching twin of ioRound: it reads the given
// round's window — computed locally via windowExtents, so it can run
// before that round's alltoall — into buf through lustre's async path and
// returns the virtual completion time without charging it. buf's window
// origin is the target round's own w0.
func (s *rstate) ioRoundAsyncInto(buf []byte, round int) float64 {
	f, r := s.f, s.f.r
	t0 := r.Now()
	done := t0
	w0, _ := s.p.window(round)
	exts := s.windowExtents(round, nil)
	if f.vec {
		if d := s.vecRead(buf, w0, exts, true); d > done {
			done = d
		}
		f.traceRound("round-io", t0, done, round)
		return done
	}
	if f.xlate == nil {
		for _, ext := range exts {
			got, d := f.lf.ReadAtAsync(r, ext.Off, ext.Len)
			copy(buf[ext.Off-w0:ext.Off-w0+ext.Len], got)
			if d > done {
				done = d
			}
		}
	} else {
		var chunks []physChunk
		for _, ext := range exts {
			pos := ext.Off - w0
			for _, ph := range f.xlate.Phys(ext.Off, ext.Len) {
				chunks = append(chunks, physChunk{off: ph.Off, data: buf[pos : pos+ph.Len]})
				pos += ph.Len
			}
		}
		for _, run := range mergeRuns(chunks) {
			got, d := f.lf.ReadAtAsync(r, run.off, run.n)
			for _, c := range run.parts {
				copy(c.data, got[c.off-run.off:c.off-run.off+int64(len(c.data))])
			}
			if d > done {
				done = d
			}
		}
	}
	f.traceRound("round-io", t0, done, round)
	return done
}

// serveRound sends each requester its pieces of the staging buffer.
// [exchange]
func (s *rstate) serveRound(round int) {
	if !s.isAgg {
		return
	}
	f, r, comm := s.f, s.f.r, s.f.comm
	t0 := r.Now()
	old := r.SetClass(mpi.ClassExchange)
	for src := 0; src < comm.Size(); src++ {
		if s.give[src] == 0 {
			continue
		}
		cl := s.winClips[src]
		payload := perf.GetBuf(int(clipBytes(cl)))[:0]
		for _, c := range cl {
			payload = append(payload, s.buf[c.off-s.w0:c.off-s.w0+c.ln]...)
		}
		comm.SendWeighted(src, s.tag, payload, scaled(len(payload), f.scale))
	}
	r.SetClass(old)
	f.traceRound("round-exchange", t0, r.Now(), round)
}

// recvRound receives my pieces and scatters them into the output buffer
// via the request-stream cursor. [exchange]
func (s *rstate) recvRound(round int) {
	f, r, comm := s.f, s.f.r, s.f.comm
	t0 := r.Now()
	old := r.SetClass(mpi.ClassExchange)
	if f.hier != nil {
		f.hierRecvDown(s) // aggregator -> leader -> member (hier.go)
	} else {
		for a, cr := range f.aggs {
			if s.due[cr] == 0 {
				continue
			}
			msg, _ := comm.Recv(cr, s.tag)
			s.cursor[a].place(s.p.myReq[a], s.out, msg)
			perf.PutBuf(msg) // arena-built by the serving aggregator
		}
	}
	r.SetClass(old)
	f.traceRound("round-exchange", t0, r.Now(), round)
}

// place scatters msg into out following the request stream, the inverse of
// take.
func (c *streamCursor) place(req []clip, out, msg []byte) {
	var pos int64
	n := int64(len(msg))
	for n > 0 {
		if c.seg >= len(req) {
			panic("mpiio: delivery exceeds request stream")
		}
		cl := req[c.seg]
		avail := cl.ln - c.used
		take := avail
		if take > n {
			take = n
		}
		start := cl.dataPos + c.used
		copy(out[start:start+take], msg[pos:pos+take])
		c.used += take
		pos += take
		n -= take
		if c.used == cl.ln {
			c.seg++
			c.used = 0
		}
	}
}

// physChunk is one logical-buffer slice destined for (or sourced from) a
// physical file offset.
type physChunk struct {
	off  int64
	data []byte
}

// mergedRun is a contiguous physical range assembled from chunks.
type mergedRun struct {
	off   int64
	n     int64
	data  []byte      // writes: assembled bytes
	parts []physChunk // reads: destinations to scatter into
}

func sortChunks(chunks []physChunk) {
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].off < chunks[j].off })
}

// mergeChunks assembles physically contiguous chunks into single write
// runs (chunks never overlap: the logical extents were already merged and
// the translation is injective).
func mergeChunks(chunks []physChunk) []mergedRun {
	sortChunks(chunks)
	var out []mergedRun
	for _, c := range chunks {
		if n := len(out); n > 0 && out[n-1].off+out[n-1].n == c.off {
			out[n-1].data = append(out[n-1].data, c.data...)
			out[n-1].n += int64(len(c.data))
		} else {
			out = append(out, mergedRun{off: c.off, n: int64(len(c.data)),
				data: append([]byte(nil), c.data...)})
		}
	}
	return out
}

// mergeRuns groups contiguous chunks for a single read each, remembering
// the destination slices.
func mergeRuns(chunks []physChunk) []mergedRun {
	sortChunks(chunks)
	var out []mergedRun
	for _, c := range chunks {
		if n := len(out); n > 0 && out[n-1].off+out[n-1].n == c.off {
			out[n-1].n += int64(len(c.data))
			out[n-1].parts = append(out[n-1].parts, c)
		} else {
			out = append(out, mergedRun{off: c.off, n: int64(len(c.data)), parts: []physChunk{c}})
		}
	}
	return out
}

func scaled(n int, scale float64) int {
	if scale <= 1 {
		return n
	}
	return int(float64(n) * scale)
}

func prefixes(segs []datatype.Segment) []int64 {
	pre := make([]int64, len(segs))
	var n int64
	for i, s := range segs {
		pre[i] = n
		n += s.Len
	}
	return pre
}

// clipSegs intersects sorted segments with [lo, hi), carrying data
// positions along.
func clipSegs(segs []datatype.Segment, pre []int64, lo, hi int64) []clip {
	var out []clip
	for i, s := range segs {
		if s.End() <= lo || s.Off >= hi {
			continue
		}
		o, e := s.Off, s.End()
		if o < lo {
			o = lo
		}
		if e > hi {
			e = hi
		}
		out = append(out, clip{off: o, ln: e - o, dataPos: pre[i] + (o - s.Off)})
	}
	return out
}

// clipWindow intersects clips (sorted by off) with [lo, hi).
func clipWindow(cl []clip, lo, hi int64) []clip {
	return clipWindowInto(nil, cl, lo, hi)
}

// clipWindowInto is clipWindow appending into dst; the round loops pass a
// recycled backing array (dst[:0]) so steady-state rounds allocate nothing.
func clipWindowInto(dst, cl []clip, lo, hi int64) []clip {
	for _, c := range cl {
		if c.off+c.ln <= lo || c.off >= hi {
			continue
		}
		o, e := c.off, c.off+c.ln
		if o < lo {
			o = lo
		}
		if e > hi {
			e = hi
		}
		dst = append(dst, clip{off: o, ln: e - o, dataPos: c.dataPos + (o - c.off)})
	}
	return dst
}

func clipBytes(cl []clip) int64 {
	var n int64
	for _, c := range cl {
		n += c.ln
	}
	return n
}

// gatherPayload concatenates the caller's data bytes for the given clips.
func gatherPayload(data []byte, cl []clip) []byte {
	out := make([]byte, 0, clipBytes(cl))
	for _, c := range cl {
		out = append(out, data[c.dataPos:c.dataPos+c.ln]...)
	}
	return out
}

// mergeOverlaps coalesces possibly-overlapping extents (several readers may
// request the same bytes).
func mergeOverlaps(segs []datatype.Segment) []datatype.Segment {
	return mergeOverlapsInPlace(append([]datatype.Segment(nil), segs...))
}

// mergeOverlapsInPlace is mergeOverlaps without the defensive copy: segs is
// reordered and its prefix holds the result. The round loops call it on
// their own scratch slice. The merged output — sorted, disjoint, covering
// exactly the union — is the same whatever the input order.
func mergeOverlapsInPlace(segs []datatype.Segment) []datatype.Segment {
	if len(segs) == 0 {
		return nil
	}
	sortSegs(segs)
	out := segs[:1]
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if s.Off <= last.End() {
			if s.End() > last.End() {
				last.Len = s.End() - last.Off
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

func sortSegs(segs []datatype.Segment) {
	sort.Slice(segs, func(i, j int) bool { return segs[i].Off < segs[j].Off })
}

// encClips encodes a request list into an arena buffer; the consumer
// releases it with perf.PutBuf once decoded (buildPlan does).
func encClips(cl []clip) []byte {
	out := perf.GetBuf(16 * len(cl))
	for i, c := range cl {
		binary.LittleEndian.PutUint64(out[16*i:], uint64(c.off))
		binary.LittleEndian.PutUint64(out[16*i+8:], uint64(c.ln))
	}
	return out
}

func decClips(b []byte) []clip {
	cl := make([]clip, len(b)/16)
	for i := range cl {
		cl[i].off = int64(binary.LittleEndian.Uint64(b[16*i:]))
		cl[i].ln = int64(binary.LittleEndian.Uint64(b[16*i+8:]))
	}
	return cl
}
