package mpiio

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/mpi"
)

func TestParseHints(t *testing.T) {
	h, err := ParseHints(map[string]string{
		"cb_nodes":          "64",
		"cb_buffer_size":    "4194304",
		"cb_config_list":    "0, 4 ,8",
		"parcoll_alltoallv": "pairwise",
		"romio_no_indep_rw": "true",
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.CBNodes != 64 || h.CBBufferSize != 4<<20 {
		t.Errorf("parsed %+v", h)
	}
	if !reflect.DeepEqual(h.AggregatorList, []int{0, 4, 8}) {
		t.Errorf("aggregator list %v", h.AggregatorList)
	}
	if h.AlltoallvAlgo != mpi.AlltoallvPairwise {
		t.Error("alltoallv algo not parsed")
	}
}

func TestParseHintsErrors(t *testing.T) {
	bad := []map[string]string{
		{"cb_nodes": "-1"},
		{"cb_nodes": "lots"},
		{"cb_buffer_size": "0"},
		{"cb_config_list": "0,x"},
		{"parcoll_alltoallv": "magic"},
		{"not_a_hint": "1"},
	}
	for _, info := range bad {
		if _, err := ParseHints(info); err == nil {
			t.Errorf("ParseHints(%v) accepted bad input", info)
		}
	}
}

func TestHintsInfoRoundTrip(t *testing.T) {
	h := Hints{CBNodes: 8, CBBufferSize: 1 << 20, AggregatorList: []int{1, 3},
		AlltoallvAlgo: mpi.AlltoallvPairwise}
	info := h.Info()
	joined := strings.Join(info, " ")
	for _, want := range []string{"cb_nodes=8", "cb_buffer_size=1048576",
		"cb_config_list=1,3", "parcoll_alltoallv=pairwise"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Info() missing %q: %v", want, info)
		}
	}
	// Defaults materialize cb_buffer_size.
	if got := (Hints{}).Info(); len(got) != 1 || got[0] != "cb_buffer_size=4194304" {
		t.Errorf("default Info() = %v", got)
	}
}
