package mpiio

import (
	"repro/internal/nbio"
	"repro/internal/perf"
)

// Split collectives: MPI_File_write_all_begin/end and the read twins,
// implemented as a pipeline over the resumable round state of ext2ph.go.
//
// Writes: the aggregator stages each round in one of two arena buffers and
// issues the round's OST writes asynchronously, so round k+1's alltoall and
// data exchange run while round k's write is still in flight. Before a
// staging buffer is refilled, the write that last used it is waited for —
// any still-outstanding tail is exposed and charged, the rest was hidden by
// the intervening rounds. Up to two writes are still in flight when Begin
// returns; application compute between Begin and End lets the sim progress
// engine retire them in the background, and WriteAllEnd charges only what
// remains.
//
// Reads run the pipeline in the other direction: an aggregator's window
// extents for round k+1 are computable locally from the plan (see
// rstate.windowExtents), so the prefetch into the idle staging buffer is
// issued before round k is served. Every rank's final-round receive is
// deferred into ReadAllEnd, so compute between Begin and End also hides the
// last serve's delivery latency.
//
// At most one split operation may be outstanding per file: End must be
// called before the next collective on the same handle (the per-call tag
// sequence assumes it, as does the shared round state).

// track accumulates a tail request's hidden/exposed split into the file's
// overlap stats (and trace) whenever — and however — it completes.
func (f *File) track(q *nbio.Request) *nbio.Request {
	q.OnComplete(func(q *nbio.Request) {
		f.ovl.Hidden += q.Hidden()
		f.ovl.Exposed += q.Exposed()
		if f.run.Trace != nil || f.obsHidden != nil {
			f.r.P.Ordered() // sinks are engine-shared; record in serial order
		}
		if tr := f.run.Trace; tr != nil {
			if h := q.Hidden(); h > 0 {
				tr.Add(f.r.WorldRank(), "hidden", q.Issued(), q.Issued()+h, "")
			}
			if e := q.Exposed(); e > 0 {
				tr.Add(f.r.WorldRank(), "exposed", q.At()-e, q.At(), "")
			}
		}
		if f.obsHidden != nil {
			if h := q.Hidden(); h > 0 {
				f.obsHidden.Observe(h)
			}
			if e := q.Exposed(); e > 0 {
				f.obsExposed.Observe(e)
			}
		}
	})
	return q
}

// tailReq wraps an async completion time in a tracked request; a tail that
// is already due needs no bookkeeping and stays nil.
func (f *File) tailReq(done float64) *nbio.Request {
	if done <= f.r.Now() {
		return nil
	}
	return f.track(nbio.Start(f.r, done, nil, nil, nil))
}

// WriteAllBegin starts a split collective write. All communicator members
// must call it and later complete it with WriteAllEnd; no other collective
// may run on this file in between.
func (f *File) WriteAllBegin(logOff int64, data []byte) *nbio.Request {
	r := f.r
	if f.recoveryOn() {
		// Overlap pipelining assumes every aggregator serves every round;
		// under a crash-carrying fault plan the call runs the blocking
		// resilient protocol instead and returns an already-complete
		// request, so Begin/End callers need no failure-mode awareness.
		f.writeAtAllFT(logOff, data)
		return nbio.Start(r, r.Now(), nil, nil, &wstate{})
	}
	s := f.beginWrite(logOff, data)
	stage := [2][]byte{s.buf, perf.GetBuf(int(s.p.cb))}
	ioreq := make([]*nbio.Request, 2)
	for round := 0; round < s.p.ntimes; round++ {
		s.syncRound(round)
		b := round % 2
		if ioreq[b] != nil {
			// The write that last used this staging buffer must finish
			// before we refill it; whatever tail the last two rounds'
			// sync/exchange did not absorb is exposed here.
			ioreq[b].Wait()
			ioreq[b] = nil
		}
		s.buf = stage[b]
		s.exchangeRound(round)
		if s.isAgg {
			ioreq[b] = f.tailReq(s.ioRoundAsync(round))
		}
	}
	return nbio.Start(r, r.Now(), func() {
		nbio.Waitall(ioreq...)
		f.absorbProf()
	}, func() {
		perf.PutBuf(stage[0])
		perf.PutBuf(stage[1])
	}, s)
}

// WriteAllEnd completes a split collective write, waiting out whatever I/O
// tail the work since WriteAllBegin did not hide.
func (f *File) WriteAllEnd(q *nbio.Request) { q.Wait() }

// ReadAllBegin starts a split collective read of n view-logical bytes at
// logOff. Complete it with ReadAllEnd to obtain the data.
func (f *File) ReadAllBegin(logOff, n int64) *nbio.Request {
	r := f.r
	if f.recoveryOn() {
		// Same gating as WriteAllBegin: blocking resilient read, completed
		// request carrying the result for ReadAllEnd.
		return nbio.Start(r, r.Now(), nil, nil, &rstate{out: f.readAtAllFT(logOff, n)})
	}
	s := f.beginRead(logOff, n)
	stage := [2][]byte{s.buf, perf.GetBuf(int(s.p.cb))}
	ioreq := make([]*nbio.Request, 2)
	nt := s.p.ntimes
	for round := 0; round < nt; round++ {
		s.syncRound(round)
		b := round % 2
		if s.isAgg {
			if round == 0 {
				ioreq[0] = f.tailReq(s.ioRoundAsyncInto(stage[0], 0))
			}
			if round+1 < nt {
				// Prefetch the next window into the idle buffer before
				// serving this one: the read overlaps this round's serve
				// and receive and the next round's alltoall.
				ioreq[1-b] = f.tailReq(s.ioRoundAsyncInto(stage[1-b], round+1))
			}
			if ioreq[b] != nil {
				ioreq[b].Wait()
				ioreq[b] = nil
			}
			s.buf = stage[b]
			s.serveRound(round)
		}
		if round < nt-1 {
			s.recvRound(round)
		}
	}
	return nbio.Start(r, r.Now(), func() {
		if nt > 0 {
			// The final round's delivery was left pending so compute after
			// Begin overlaps it; s.tag/s.due still hold that round's state.
			s.recvRound(nt - 1)
		}
		nbio.Waitall(ioreq...)
		f.absorbProf()
	}, func() {
		perf.PutBuf(stage[0])
		perf.PutBuf(stage[1])
	}, s)
}

// ReadAllEnd completes a split collective read and returns the data.
func (f *File) ReadAllEnd(q *nbio.Request) []byte {
	q.Wait()
	return q.Op().(*rstate).out
}
