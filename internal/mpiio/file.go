// Package mpiio is an MPI-IO implementation over the simulated MPI runtime
// and Lustre model: file views built from derived datatypes, independent
// read/write, and collective read/write using the ROMIO-style extended
// two-phase protocol (ext2ph).
//
// The collective path is the paper's baseline ("Cray MPI-IO" behaves the
// same way): gather every process's file range, partition the covered range
// into file domains across I/O aggregators, disseminate request metadata,
// then run interleaved rounds of data exchange and file I/O, each round
// synchronized by an alltoall across the whole communicator. Every
// operation's time is attributed to sync / exchange / io buckets so the
// paper's Figure 2 breakdown can be reproduced.
package mpiio

import (
	"fmt"
	"strconv"

	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Hints configures collective I/O, mirroring the MPI-IO hints the paper
// discusses (cb_nodes, cb_buffer_size, and the explicit aggregator list).
// Hints carries only knobs with an MPI_Info string equivalent; per-run state
// that is not a hint — fault plans, recovery policy, tracing, metrics — lives
// in RunOptions and is passed separately at open (see OpenWith).
type Hints struct {
	// CBNodes caps the number of I/O aggregators chosen from the default
	// one-per-node list. Zero means one aggregator per node.
	CBNodes int
	// CBBufferSize is the collective buffer each aggregator fills per
	// round. Zero means 4 MiB (the ROMIO default of the paper's era).
	CBBufferSize int64
	// AggregatorList explicitly names aggregator world ranks (the paper's
	// hint (b)). It overrides CBNodes when non-empty.
	AggregatorList []int
	// NoFDAlign disables aligning file-domain boundaries to the stripe
	// size (alignment is on by default, as tuned Lustre ADIOs do).
	NoFDAlign bool
	// AlltoallvAlgo selects the metadata alltoallv algorithm (ablation).
	AlltoallvAlgo mpi.AlltoallvAlgo
	// IndBufferSize is the data-sieving window for independent
	// non-contiguous I/O (ReadAtSieved/WriteAtSieved). Zero means the
	// ROMIO default of 4 MiB.
	IndBufferSize int64
	// IntraNode enables two-level collective I/O: PEs sharing a node merge
	// their offset/length vectors and data into their node leader before
	// the inter-node exchange, so only one process per node crosses the
	// NIC (hint "parcoll_intranode"). It requires every aggregator to be
	// its node's leader (the default selection guarantees this); otherwise,
	// and under crash-carrying fault plans, the flat path runs instead.
	// Off by default: the flat protocol is bit-identical to prior releases.
	IntraNode bool
}

// RunOptions carries per-run state that is not an MPI_Info hint: fault
// injection, recovery tuning, and observability sinks. It is passed at open
// (OpenWith) alongside the Hints; a zero RunOptions is a plain, unobserved,
// healthy run. Everything here is observe-only or deterministic by
// construction, so two runs differing only in RunOptions' sinks (Trace, Obs)
// are bit-identical in virtual time.
type RunOptions struct {
	// Fault, when non-nil, injects the plan's per-round compute noise into
	// the collective round loops (see fault.RoundNoise). The experiment
	// harness threads it through so fault scenarios reach the protocol
	// layer. Stalls draw from the rank's proc-local seeded RNG, so runs
	// stay deterministic.
	Fault *fault.Plan
	// Recovery tunes the fail-stop recovery protocol (watchdog timeout and
	// failover budget). Zero-valued fields take recovery.Policy defaults; it
	// only matters when Fault carries crashes, which is what arms the
	// resilient collective path (see recover.go).
	Recovery recovery.Policy
	// Trace, when non-nil, records a span per protocol round and phase
	// ("round-sync", "round-exchange", "round-io") plus the split-collective
	// overlap spans ("hidden", "exposed"). The recorder only observes
	// virtual clocks — never advances them and draws no randomness — so a
	// traced run is bit-identical to an untraced one.
	Trace *trace.Recorder
	// Obs, when non-nil, receives protocol-level metrics: per-round phase
	// duration histograms, hidden/exposed overlap, and recovery event
	// counters. Like Trace it only reads virtual clocks.
	Obs *obs.Registry
	// Lat, when non-nil, receives one sample per blocking collective call
	// (core.File.WriteAtAll/ReadAtAll): the caller's elapsed virtual seconds
	// inside the call. The multi-tenant layer attaches one recorder per job
	// to report exact p50/p99 collective-call latency; like Trace and Obs it
	// only reads virtual clocks, so an instrumented run is bit-identical to
	// a bare one.
	Lat *obs.LatencyRecorder
}

func (h Hints) cb() int64 {
	if h.CBBufferSize > 0 {
		return h.CBBufferSize
	}
	return 4 << 20
}

// Breakdown is the per-rank processing-time split of collective I/O,
// matching the paper's Figure 2 categories.
type Breakdown struct {
	Sync, Exchange, IO, Other float64
}

// Total returns the sum of the categories.
func (b Breakdown) Total() float64 { return b.Sync + b.Exchange + b.IO + b.Other }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Sync += o.Sync
	b.Exchange += o.Exchange
	b.IO += o.IO
	b.Other += o.Other
}

// Translator maps a logical file extent to physical file segments. ParColl
// installs one when it switches to an intermediate file view: the two-phase
// protocol then aggregates in the logical (virtually joined) file while the
// aggregators' reads and writes land on the original physical layout.
type Translator interface {
	// Phys returns the physical segments backing logical [off, off+n),
	// ordered so their concatenation equals the logical bytes in order.
	Phys(off, n int64) []datatype.Segment
}

// File is an open MPI-IO file handle (one per rank, like an MPI_File).
type File struct {
	r     *mpi.Rank
	comm  *mpi.Comm
	lf    storage.File
	view  datatype.View
	hints Hints
	run   RunOptions
	aggs  []int // comm ranks acting as I/O aggregators, ascending
	scale float64
	vec   bool // backend has native list-I/O: flush rounds use WritevAt/ReadvAt
	inj   bool // backend injects request errors: storage-tier recovery armed
	seq   int  // collective-call sequence, advances in lockstep
	xlate Translator
	prof  Breakdown
	prev  [mpi.NumClasses]float64
	ovl   OverlapStats
	hier  *fileHier // two-level collective state; nil on the flat path

	// Pre-resolved obs instruments (nil when run.Obs is nil), so the round
	// loop pays a nil check instead of a map lookup per observation.
	obsRound   map[string]*obs.Histogram
	obsHidden  *obs.Histogram
	obsExposed *obs.Histogram

	// Fail-stop recovery state (see recover.go). deadWorld records world
	// ranks whose aggregator role this rank has seen die — it persists
	// across collective calls, so later calls fail the corpse over at round
	// zero instead of paying the watchdog again. degraded latches once the
	// failover budget is exhausted: the handle's collective machinery stays
	// retired for its remaining lifetime (stale round tags must never be
	// reused by a half-recovered protocol).
	deadWorld map[int]bool
	degraded  bool
	rstats    recovery.FailoverStats
	rlog      recovery.Log
}

// OverlapStats accounts the I/O tails of split-collective operations on
// this rank: Hidden is tail time that elapsed while the rank was doing
// other work (compute, the next round's exchange); Exposed is tail time the
// rank had to wait out (charged to ClassIO). For a given workload,
// Hidden + Exposed equals the I/O wait the blocking protocol would have
// charged — the split is what the overlap moved off the critical path.
type OverlapStats struct {
	Hidden, Exposed float64
}

// HiddenFrac is the fraction of the I/O tail that overlap hid.
func (o OverlapStats) HiddenFrac() float64 {
	t := o.Hidden + o.Exposed
	if t == 0 {
		return 0
	}
	return o.Hidden / t
}

// Add accumulates another rank's stats (for global aggregation).
func (o *OverlapStats) Add(x OverlapStats) {
	o.Hidden += x.Hidden
	o.Exposed += x.Exposed
}

// Overlap returns the rank's accumulated split-collective overlap stats.
func (f *File) Overlap() OverlapStats { return f.ovl }

// Recovery returns the rank's accumulated fail-stop recovery stats: zero on
// a healthy run, detections/failovers/degradations plus their virtual-time
// costs when the resilient path had work to do.
func (f *File) Recovery() recovery.FailoverStats { return f.rstats }

// RecoveryLog returns the rank's structured recovery event log.
func (f *File) RecoveryLog() *recovery.Log { return &f.rlog }

// traceRound emits one protocol-round span when tracing is enabled and feeds
// the phase-duration histogram when metrics are armed. end may lie in the
// virtual future for async I/O spans.
func (f *File) traceRound(kind string, start, end float64, round int) {
	if f.run.Trace == nil && f.obsRound[kind] == nil {
		return
	}
	f.r.P.Ordered() // sinks are engine-shared; record in serial order
	if f.run.Trace != nil {
		f.run.Trace.Add(f.r.WorldRank(), kind, start, end, "round "+strconv.Itoa(round))
	}
	if h := f.obsRound[kind]; h != nil {
		h.Observe(end - start)
	}
}

// noteRecovery counts one recovery event ("detections", "reelections",
// "failovers", "degradations") in the metrics registry. Recovery events are
// rare, so the name concatenation is off the hot path by construction.
func (f *File) noteRecovery(event string) {
	if f.run.Obs != nil {
		f.r.P.Ordered() // registry is engine-shared; count in serial order
		f.run.Obs.Counter("mpiio.recovery." + event).Inc()
	}
}

// SetTranslator installs a logical-to-physical translator used by the
// aggregators' file I/O step (nil means identity).
func (f *File) SetTranslator(t Translator) { f.xlate = t }

// Open collectively opens (creating if needed) name on fs over comm with a
// zero RunOptions (no faults, default recovery policy, no tracing or
// metrics). Every member must call it. The aggregator list is derived from
// the hints and the node topology, identically on every rank. fs is any
// storage backend (DESIGN.md §14); the protocol is backend-agnostic except
// that the flush rounds switch to vectored list-I/O calls when the backend
// supports them natively (Params().ListIO).
func Open(comm *mpi.Comm, fs storage.Backend, name string, stripe storage.Stripe, hints Hints) *File {
	return OpenWith(comm, fs, name, stripe, hints, RunOptions{})
}

// OpenWith is Open with explicit per-run state: fault plan, recovery policy,
// and observability sinks. Hints stays pure MPI_Info configuration; run
// carries everything else (see RunOptions).
func OpenWith(comm *mpi.Comm, fs storage.Backend, name string, stripe storage.Stripe, hints Hints, run RunOptions) *File {
	r := rankOf(comm)
	params := fs.Params()
	f := &File{
		r:         r,
		comm:      comm,
		view:      datatype.WholeFile(),
		hints:     hints,
		run:       run,
		scale:     params.CostScale,
		vec:       params.ListIO,
		inj:       params.Injecting,
		deadWorld: make(map[int]bool),
	}
	if run.Obs != nil {
		r.P.Ordered() // registry is engine-shared; create series in serial order
		f.obsRound = map[string]*obs.Histogram{
			"round-sync":     run.Obs.Histogram("mpiio.round.sync.secs", nil),
			"round-exchange": run.Obs.Histogram("mpiio.round.exchange.secs", nil),
			"round-io":       run.Obs.Histogram("mpiio.round.io.secs", nil),
		}
		f.obsHidden = run.Obs.Histogram("mpiio.overlap.hidden.secs", nil)
		f.obsExposed = run.Obs.Histogram("mpiio.overlap.exposed.secs", nil)
	}
	// Aggregator selection needs the node of every member; gathering it is
	// part of open's collective cost.
	old := r.SetClass(mpi.ClassSync)
	nodes := comm.AllgatherInt64s([]int64{int64(r.W.Cluster.NodeOf(r.WorldRank()))})
	r.SetClass(old)
	f.aggs = selectAggregators(comm, nodes, hints)
	// Two-level collectives: build the hierarchy when asked for and viable.
	// Viability (every aggregator leads its node) and the crash gate are pure
	// functions of topology and options, so all ranks agree on whether the
	// collective NewHierarchy runs. The resilient path stays flat — failover
	// re-elects aggregators mid-call, which would orphan the leader roles.
	if hints.IntraNode && !f.recoveryOn() {
		lay := mpi.LayoutOf(comm)
		if hierViable(lay, f.aggs) {
			old := r.SetClass(mpi.ClassSync)
			h := mpi.NewHierarchy(comm)
			r.SetClass(old)
			aggNode := make([]int, len(f.aggs))
			for i, cr := range f.aggs {
				aggNode[i] = lay.NodeIdx[cr]
			}
			f.hier = &fileHier{h: h, aggNode: aggNode}
		}
	}
	f.lf = fs.Open(r, name, stripe)
	f.markProf()
	return f
}

// Hierarchical reports whether this handle runs the two-level collective
// path (Hints.IntraNode requested and viable on this communicator).
func (f *File) Hierarchical() bool { return f.hier != nil }

// rankOf digs the Rank out of a Comm via a tiny interface on mpi.Comm.
func rankOf(c *mpi.Comm) *mpi.Rank { return c.RankHandle() }

// selectAggregators computes the aggregator comm ranks: either the
// explicitly hinted world ranks that belong to the communicator, or the
// first rank on each distinct node (capped at CBNodes when set).
func selectAggregators(comm *mpi.Comm, nodes [][]int64, hints Hints) []int {
	if len(hints.AggregatorList) > 0 {
		var aggs []int
		for _, w := range hints.AggregatorList {
			if cr := comm.RankOfWorld(w); cr >= 0 {
				aggs = append(aggs, cr)
			}
		}
		if len(aggs) == 0 {
			panic("mpiio: aggregator list has no members in communicator")
		}
		return aggs
	}
	seen := make(map[int64]bool, comm.Size())
	aggs := make([]int, 0, comm.Size())
	for cr := 0; cr < comm.Size(); cr++ {
		n := nodes[cr][0]
		if !seen[n] {
			seen[n] = true
			aggs = append(aggs, cr)
		}
	}
	if hints.CBNodes > 0 && hints.CBNodes < len(aggs) {
		aggs = aggs[:hints.CBNodes]
	}
	return aggs
}

// Aggregators returns the comm ranks acting as I/O aggregators.
func (f *File) Aggregators() []int { return f.aggs }

// SetAggregators replaces the aggregator set (comm ranks) for subsequent
// collective calls — ParColl's degradation-aware re-election hook: a
// subgroup that learns one of its staging nodes is permanently degraded
// re-points its collectives at the healthy nodes' ranks. File domains are
// recomputed from f.aggs on every call, so no other handle state depends
// on the old set. Counted as a re-election in the failover stats.
func (f *File) SetAggregators(aggs []int) {
	f.aggs = append([]int(nil), aggs...)
	f.rstats.Reelections++
	f.noteRecovery("reelections")
	f.rlog.Append(f.r.Now(), f.comm.Rank(), "reelect",
		fmt.Sprintf("aggregators re-elected away from degraded staging: %v", aggs))
}

// SetView installs a file view (collective in MPI; here each rank sets its
// own, which may legitimately differ per rank).
func (f *File) SetView(v datatype.View) { f.view = v }

// View returns the current file view.
func (f *File) View() datatype.View { return f.view }

// Lustre exposes the underlying storage handle (for verification in tests;
// the name predates the backend seam — the handle is whatever backend the
// file was opened on).
func (f *File) Lustre() storage.File { return f.lf }

// Comm returns the communicator the file was opened on.
func (f *File) Comm() *mpi.Comm { return f.comm }

// markProf snapshots the rank's class counters so deltas can accumulate
// into the per-file breakdown.
func (f *File) markProf() {
	f.prev = f.r.Prof().Times
}

func (f *File) absorbProf() {
	cur := f.r.Prof().Times
	f.prof.Sync += cur[mpi.ClassSync] - f.prev[mpi.ClassSync]
	f.prof.Exchange += cur[mpi.ClassExchange] - f.prev[mpi.ClassExchange]
	f.prof.IO += cur[mpi.ClassIO] - f.prev[mpi.ClassIO]
	f.prof.Other += cur[mpi.ClassOther] - f.prev[mpi.ClassOther]
	f.prev = cur
}

// Breakdown returns the accumulated sync/exchange/io/other time this rank
// has spent in operations on this file (the summary the paper reports at
// file close).
func (f *File) Breakdown() Breakdown {
	f.absorbProf()
	return f.prof
}

// WriteAt writes independently (no coordination): the view maps the logical
// range to physical segments, each written directly. This is the paper's
// "w/o Coll" baseline. On a list-I/O backend the whole segment list goes
// out as one vectored request — Ching et al.'s optimization for exactly
// this noncontiguous independent pattern.
func (f *File) WriteAt(logOff int64, data []byte) {
	segs := f.view.Map(logOff, int64(len(data)))
	if f.vec && len(segs) > 1 {
		exts := make([]storage.Extent, len(segs))
		bufs := make([][]byte, len(segs))
		var pos int64
		for i, s := range segs {
			exts[i] = storage.Extent{Off: s.Off, Len: s.Len}
			bufs[i] = data[pos : pos+s.Len]
			pos += s.Len
		}
		f.lf.WritevAt(f.r, exts, bufs)
		f.absorbProf()
		return
	}
	var pos int64
	for _, s := range segs {
		f.lf.WriteAt(f.r, s.Off, data[pos:pos+s.Len])
		pos += s.Len
	}
	f.absorbProf()
}

// ReadAt reads independently through the view, vectored on list-I/O
// backends like WriteAt.
func (f *File) ReadAt(logOff, n int64) []byte {
	segs := f.view.Map(logOff, n)
	if f.vec && len(segs) > 1 {
		exts := make([]storage.Extent, len(segs))
		for i, s := range segs {
			exts[i] = storage.Extent{Off: s.Off, Len: s.Len}
		}
		out := make([]byte, 0, n)
		for _, b := range f.lf.ReadvAt(f.r, exts) {
			out = append(out, b...)
		}
		f.absorbProf()
		return out
	}
	out := make([]byte, 0, n)
	for _, s := range segs {
		out = append(out, f.lf.ReadAt(f.r, s.Off, s.Len)...)
	}
	f.absorbProf()
	return out
}

func (f *File) String() string {
	return fmt.Sprintf("mpiio.File{comm=%d ranks, %d aggs}", f.comm.Size(), len(f.aggs))
}
