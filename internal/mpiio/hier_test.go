package mpiio

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/lustre"
	"repro/internal/mpi"
)

// fatCluster is the default cluster with a fat-node PE count and mapping.
func fatCluster(pes int, m cluster.Mapping) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.PEsPerNode = pes
	cfg.Mapping = m
	return cfg
}

func runIOFat(t *testing.T, nprocs, pes int, m cluster.Mapping, seed int64, body func(r *mpi.Rank, fs *lustre.FS)) *lustre.FS {
	t.Helper()
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.Run(nprocs, fatCluster(pes, m), seed, func(r *mpi.Rank) {
		body(r, fs)
	})
	return fs
}

// interleavedWrite is the shared workload of the hier<->flat equivalence
// tests: every rank owns every n-th block of 64 bytes, a small collective
// buffer forcing several exchange rounds.
func interleavedWrite(f *File, rank, n int) {
	const blocks, bs = 40, 64
	ft := datatype.NewVector(blocks, bs, int64(n)*bs)
	f.SetView(datatype.View{Disp: int64(rank) * bs, Filetype: ft})
	f.WriteAtAll(0, pattern(rank, blocks*bs))
}

func interleavedWant(n int) (func(off int64) byte, int64) {
	const blocks, bs = 40, 64
	return func(off int64) byte {
		block := off / bs
		rank := int(block % int64(n))
		i := int((block/int64(n))*bs + off%bs)
		return byte(rank*37 + i*11 + 5)
	}, int64(n) * blocks * bs
}

// TestHierarchicalWriteMatchesFlat pins the core equivalence: with
// intra-node aggregation on, the file bytes are identical to the flat
// protocol's, across fat block nodes, uneven last nodes, and cyclic maps.
func TestHierarchicalWriteMatchesFlat(t *testing.T) {
	for _, tc := range []struct {
		n, pes int
		m      cluster.Mapping
	}{
		{16, 8, cluster.Block}, {16, 4, cluster.Block}, {10, 4, cluster.Block},
		{12, 4, cluster.Cyclic}, {8, 16, cluster.Block},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n%d pes%d %v", tc.n, tc.pes, tc.m), func(t *testing.T) {
			write := func(intra bool) *lustre.FS {
				return runIOFat(t, tc.n, tc.pes, tc.m, 1, func(r *mpi.Rank, fs *lustre.FS) {
					comm := mpi.WorldComm(r)
					f := Open(comm, fs, "eq", testStripe(), Hints{CBBufferSize: 1024, IntraNode: intra})
					if intra && !f.Hierarchical() {
						t.Errorf("two-level path not armed with default aggregators")
					}
					interleavedWrite(f, r.WorldRank(), tc.n)
				})
			}
			flat, hier := write(false), write(true)
			want, size := interleavedWant(tc.n)
			checkContents(t, flat, "eq", want, size)
			checkContents(t, hier, "eq", want, size)
			// Byte-for-byte against each other too, not just the pattern.
			var a, b []byte
			mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
				a = flat.Open(r, "eq", testStripe()).Contents()
				b = hier.Open(r, "eq", testStripe()).Contents()
			})
			if !bytes.Equal(a, b) {
				t.Fatal("hierarchical and flat writes produced different files")
			}
		})
	}
}

// TestHierarchicalReadMatchesFlat writes flat, then reads the file back
// through both paths: every rank's strided slice must be byte-identical.
func TestHierarchicalReadMatchesFlat(t *testing.T) {
	const n, pes = 16, 8
	const blocks, bs = 40, 64
	fs := runIOFat(t, n, pes, cluster.Block, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "rd", testStripe(), Hints{CBBufferSize: 1024})
		interleavedWrite(f, r.WorldRank(), n)
	})
	for _, intra := range []bool{false, true} {
		mpi.Run(n, fatCluster(pes, cluster.Block), 1, func(r *mpi.Rank) {
			comm := mpi.WorldComm(r)
			f := Open(comm, fs, "rd", testStripe(), Hints{CBBufferSize: 1024, IntraNode: intra})
			ft := datatype.NewVector(blocks, bs, n*bs)
			f.SetView(datatype.View{Disp: int64(r.WorldRank()) * bs, Filetype: ft})
			got := f.ReadAtAll(0, blocks*bs)
			if !bytes.Equal(got, pattern(r.WorldRank(), blocks*bs)) {
				t.Errorf("intra=%v rank %d read back wrong bytes", intra, r.WorldRank())
			}
		})
	}
}

// TestHierarchicalSplitCollectives drives the two-level branches through
// the split-collective pipeline (Begin/End), where the read path's final
// round is deferred into End.
func TestHierarchicalSplitCollectives(t *testing.T) {
	const n, pes = 16, 8
	const blocks, bs = 40, 64
	fs := runIOFat(t, n, pes, cluster.Block, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "sp", testStripe(), Hints{CBBufferSize: 1024, IntraNode: true})
		if !f.Hierarchical() {
			t.Error("two-level path not armed")
		}
		ft := datatype.NewVector(blocks, bs, n*bs)
		f.SetView(datatype.View{Disp: int64(r.WorldRank()) * bs, Filetype: ft})
		q := f.WriteAllBegin(0, pattern(r.WorldRank(), blocks*bs))
		r.Compute(1e-4)
		f.WriteAllEnd(q)
		rq := f.ReadAllBegin(0, blocks*bs)
		r.Compute(1e-4)
		got := f.ReadAllEnd(rq)
		if !bytes.Equal(got, pattern(r.WorldRank(), blocks*bs)) {
			t.Errorf("rank %d split read back wrong bytes", r.WorldRank())
		}
	})
	want, size := interleavedWant(n)
	checkContents(t, fs, "sp", want, size)
}

// TestHierarchicalRunTwiceIdentical pins determinism of the two-level
// protocol end to end: identical seeds, identical virtual finish times.
func TestHierarchicalRunTwiceIdentical(t *testing.T) {
	run := func() float64 {
		fs := lustre.NewFS(lustre.DefaultConfig())
		return mpi.Run(16, fatCluster(8, cluster.Block), 7, func(r *mpi.Rank) {
			comm := mpi.WorldComm(r)
			f := Open(comm, fs, "det", testStripe(), Hints{CBBufferSize: 1024, IntraNode: true})
			interleavedWrite(f, r.WorldRank(), 16)
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("two-level runs differ: %v vs %v", a, b)
	}
}

// TestHierViabilityFallback: an explicit aggregator list naming a
// non-leader rank must fall back to the flat path — on every rank, with
// correct results.
func TestHierViabilityFallback(t *testing.T) {
	const n, pes = 8, 4
	fs := runIOFat(t, n, pes, cluster.Block, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		// Rank 1 shares node 0 with leader rank 0: not node-minimal.
		h := Hints{CBBufferSize: 1024, IntraNode: true, AggregatorList: []int{1, 4}}
		f := Open(comm, fs, "fb", testStripe(), h)
		if f.Hierarchical() {
			t.Errorf("rank %d armed two-level with a non-leader aggregator", r.WorldRank())
		}
		interleavedWrite(f, r.WorldRank(), n)
	})
	want, size := interleavedWant(n)
	checkContents(t, fs, "fb", want, size)
}

// TestHierCrashPlanFallsBackToFlat: crash-carrying fault plans arm the
// resilient path, which is flat; IntraNode must not interfere with it.
func TestHierCrashPlanFallsBackToFlat(t *testing.T) {
	const n, pes = 8, 4
	plan := &fault.Plan{Crashes: []fault.Crash{{Rank: 0, Call: 1, Round: 0}}}
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.RunPlan(n, fatCluster(pes, cluster.Block), 1, plan, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := OpenWith(comm, fs, "cr", testStripe(),
			Hints{CBBufferSize: 1024, IntraNode: true}, RunOptions{Fault: plan})
		if f.Hierarchical() {
			t.Errorf("rank %d armed two-level under a crash plan", r.WorldRank())
		}
		interleavedWrite(f, r.WorldRank(), n)
	})
	want, size := interleavedWant(n)
	checkContents(t, fs, "cr", want, size)
}

// TestHierStragglerPlanStaysHierarchical: crash-free fault plans (compute
// noise) keep the two-level path armed and correct.
func TestHierStragglerPlanStaysHierarchical(t *testing.T) {
	const n, pes = 16, 8
	plan, err := fault.Scenario(fault.OneStraggler)
	if err != nil {
		t.Fatal(err)
	}
	fs := lustre.NewFS(lustre.DefaultConfig())
	mpi.RunPlan(n, fatCluster(pes, cluster.Block), 3, plan, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := OpenWith(comm, fs, "st", testStripe(),
			Hints{CBBufferSize: 1024, IntraNode: true}, RunOptions{Fault: plan})
		if !f.Hierarchical() {
			t.Errorf("rank %d lost the two-level path under a crash-free plan", r.WorldRank())
		}
		interleavedWrite(f, r.WorldRank(), n)
	})
	want, size := interleavedWant(n)
	checkContents(t, fs, "st", want, size)
}

// TestIntraNodeHintRoundtrip pins the MPI_Info surface of the new knob.
func TestIntraNodeHintRoundtrip(t *testing.T) {
	h, err := ParseHints(map[string]string{"parcoll_intranode": "enable"})
	if err != nil || !h.IntraNode {
		t.Fatalf("enable: %+v err %v", h, err)
	}
	h, err = ParseHints(map[string]string{"parcoll_intranode": "disable"})
	if err != nil || h.IntraNode {
		t.Fatalf("disable: %+v err %v", h, err)
	}
	if _, err := ParseHints(map[string]string{"parcoll_intranode": "yes"}); err == nil {
		t.Fatal("bad value accepted")
	}
	info := Hints{IntraNode: true}.Info()
	found := false
	for _, kv := range info {
		if kv == "parcoll_intranode=enable" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Info() missing parcoll_intranode: %v", info)
	}
	if len(Hints{}.Info()) != 1 {
		t.Fatalf("zero Hints should render only cb_buffer_size: %v", Hints{}.Info())
	}
}
