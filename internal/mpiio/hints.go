package mpiio

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mpi"
)

// MPI_Info-style hint parsing: applications configure collective I/O with
// string key/value pairs ("cb_nodes" = "64", "cb_buffer_size" = "4194304",
// "cb_config_list" = "0,4,8"). ParseHints maps the ROMIO-compatible subset
// onto Hints.

// ParseHints builds Hints from MPI_Info-like key/value pairs. Unknown keys
// are rejected so typos do not silently disable tuning.
//
// Supported keys:
//
//	cb_nodes        - number of I/O aggregators from the default list
//	cb_buffer_size  - collective buffer per aggregator per round, bytes
//	cb_config_list  - comma-separated world ranks to use as aggregators
//	romio_no_indep_rw - accepted and ignored (compatibility)
//	parcoll_alltoallv - "direct" (default) or "pairwise"
//	parcoll_intranode - "enable" for two-level collectives, "disable" (default)
//	striping_unit   - accepted and ignored (striping is set at open)
func ParseHints(info map[string]string) (Hints, error) {
	var h Hints
	for k, v := range info {
		switch k {
		case "cb_nodes":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return h, fmt.Errorf("mpiio: bad cb_nodes %q", v)
			}
			h.CBNodes = n
		case "cb_buffer_size":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return h, fmt.Errorf("mpiio: bad cb_buffer_size %q", v)
			}
			h.CBBufferSize = n
		case "cb_config_list":
			for _, f := range strings.Split(v, ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					continue
				}
				r, err := strconv.Atoi(f)
				if err != nil || r < 0 {
					return h, fmt.Errorf("mpiio: bad cb_config_list entry %q", f)
				}
				h.AggregatorList = append(h.AggregatorList, r)
			}
		case "parcoll_alltoallv":
			switch v {
			case "direct":
				h.AlltoallvAlgo = mpi.AlltoallvDirect
			case "pairwise":
				h.AlltoallvAlgo = mpi.AlltoallvPairwise
			default:
				return h, fmt.Errorf("mpiio: bad parcoll_alltoallv %q", v)
			}
		case "parcoll_intranode":
			switch v {
			case "enable":
				h.IntraNode = true
			case "disable":
				h.IntraNode = false
			default:
				return h, fmt.Errorf("mpiio: bad parcoll_intranode %q", v)
			}
		case "romio_no_indep_rw", "striping_unit":
			// accepted for compatibility, no effect here
		default:
			return h, fmt.Errorf("mpiio: unknown hint %q", k)
		}
	}
	return h, nil
}

// Info renders the hints back as MPI_Info-like pairs (the inverse of
// ParseHints, with defaults materialized), in deterministic key order.
func (h Hints) Info() []string {
	m := map[string]string{
		"cb_buffer_size": strconv.FormatInt(h.cb(), 10),
	}
	if h.CBNodes > 0 {
		m["cb_nodes"] = strconv.Itoa(h.CBNodes)
	}
	if len(h.AggregatorList) > 0 {
		parts := make([]string, len(h.AggregatorList))
		for i, r := range h.AggregatorList {
			parts[i] = strconv.Itoa(r)
		}
		m["cb_config_list"] = strings.Join(parts, ",")
	}
	if h.AlltoallvAlgo == mpi.AlltoallvPairwise {
		m["parcoll_alltoallv"] = "pairwise"
	}
	if h.IntraNode {
		m["parcoll_intranode"] = "enable"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k + "=" + m[k]
	}
	return out
}
