package mpiio

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// Split collectives must be semantically invisible: the file bytes a
// pipelined WriteAllBegin/End produces are exactly the blocking
// WriteAtAll's, and ReadAllBegin/End returns exactly what ReadAtAll would,
// regardless of how much the application computes between Begin and End.

// interleavedView is the strided layout that forces multi-round two-phase
// exchange (the regime where the pipeline actually reorders work).
func interleavedView(rank, n int, blocks, bs int64) datatype.View {
	return datatype.View{
		Disp:     int64(rank) * bs,
		Filetype: datatype.NewVector(blocks, bs, int64(n)*bs),
	}
}

func TestSplitWriteMatchesBlocking(t *testing.T) {
	const n = 6
	const blocks, bs = 40, 64
	for _, compute := range []float64{0, 1e-3} {
		write := func(split bool) *lustre.FS {
			fs := lustre.NewFS(lustre.DefaultConfig())
			mpi.Run(n, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
				f := Open(mpi.WorldComm(r), fs, "sw", testStripe(), Hints{CBBufferSize: 1024})
				f.SetView(interleavedView(r.WorldRank(), n, blocks, bs))
				data := pattern(r.WorldRank(), blocks*bs)
				if split {
					q := f.WriteAllBegin(0, data[:blocks*bs/2])
					if compute > 0 {
						r.Compute(compute)
					}
					f.WriteAllEnd(q)
					q = f.WriteAllBegin(blocks*bs/2, data[blocks*bs/2:])
					f.WriteAllEnd(q)
				} else {
					f.WriteAtAll(0, data[:blocks*bs/2])
					f.WriteAtAll(blocks*bs/2, data[blocks*bs/2:])
				}
			})
			return fs
		}
		var a, b []byte
		afs, bfs := write(true), write(false)
		mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			a = afs.Open(r, "sw", testStripe()).Contents()
			b = bfs.Open(r, "sw", testStripe()).Contents()
		})
		if !bytes.Equal(a, b) {
			t.Fatalf("compute=%g: split write bytes differ from blocking", compute)
		}
	}
}

func TestSplitReadMatchesBlocking(t *testing.T) {
	const n = 5
	const blocks, bs = 24, 96
	runIO(t, n, 1, func(r *mpi.Rank, fs *lustre.FS) {
		comm := mpi.WorldComm(r)
		f := Open(comm, fs, "sr", testStripe(), Hints{CBBufferSize: 1024})
		f.SetView(interleavedView(r.WorldRank(), n, blocks, bs))
		want := pattern(r.WorldRank(), blocks*bs)
		f.WriteAtAll(0, want)
		comm.Barrier()
		q := f.ReadAllBegin(0, blocks*bs)
		r.Compute(5e-4)
		got := f.ReadAllEnd(q)
		if !bytes.Equal(got, want) {
			t.Errorf("rank %d: split read mismatch", r.WorldRank())
		}
		comm.Barrier()
		blocking := f.ReadAtAll(0, blocks*bs)
		if !bytes.Equal(blocking, want) {
			t.Errorf("rank %d: blocking read after split mismatch", r.WorldRank())
		}
	})
}

func TestSplitOverlapAccounting(t *testing.T) {
	// With generous compute between Begin and End the pipeline must hide
	// I/O (Hidden > 0) and finish sooner than blocking + identical compute.
	const n = 8
	const blocks, bs = 64, 512
	elapsed := func(split bool) (float64, OverlapStats) {
		var ovl OverlapStats
		fs := lustre.NewFS(lustre.DefaultConfig())
		end := mpi.Run(n, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			f := Open(mpi.WorldComm(r), fs, "ov", testStripe(), Hints{CBBufferSize: 4096})
			f.SetView(interleavedView(r.WorldRank(), n, blocks, bs))
			data := pattern(r.WorldRank(), blocks*bs)
			if split {
				q := f.WriteAllBegin(0, data)
				r.Compute(0.05)
				f.WriteAllEnd(q)
			} else {
				r.Compute(0.05)
				f.WriteAtAll(0, data)
			}
			if r.WorldRank() == 0 {
				ovl = f.Overlap()
			}
		})
		return end, ovl
	}
	split, ovl := elapsed(true)
	block, bovl := elapsed(false)
	if ovl.Hidden <= 0 {
		t.Errorf("split run hid nothing: %+v", ovl)
	}
	if bovl != (OverlapStats{}) {
		t.Errorf("blocking run has overlap stats: %+v", bovl)
	}
	if split >= block {
		t.Errorf("split run (%g) not faster than blocking (%g)", split, block)
	}
}

func TestSplitTraceObservesWithoutPerturbing(t *testing.T) {
	// The round tracer is an observer: enabling it must not move any clock.
	const n = 4
	const blocks, bs = 16, 128
	runOnce := func(rec *trace.Recorder) float64 {
		fs := lustre.NewFS(lustre.DefaultConfig())
		return mpi.Run(n, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			f := OpenWith(mpi.WorldComm(r), fs, "tr", testStripe(), Hints{CBBufferSize: 1024}, RunOptions{Trace: rec})
			f.SetView(interleavedView(r.WorldRank(), n, blocks, bs))
			q := f.WriteAllBegin(0, pattern(r.WorldRank(), blocks*bs))
			r.Compute(1e-3)
			f.WriteAllEnd(q)
		})
	}
	rec := trace.New()
	traced := runOnce(rec)
	plain := runOnce(nil)
	if traced != plain {
		t.Errorf("tracing moved the clock: %x vs %x", traced, plain)
	}
	kinds := map[string]bool{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{"round-sync", "round-exchange", "round-io", "hidden"} {
		if !kinds[k] {
			t.Errorf("trace missing %q spans (got %v)", k, kinds)
		}
	}
}
