package mpiio

import "repro/internal/datatype"

// Data sieving (Thakur, Gropp & Lusk: "Data Sieving and Collective I/O in
// ROMIO"): independent non-contiguous accesses are served by moving one
// large contiguous window instead of many small pieces. Reads fetch the
// covering extent and pick out the requested bytes; writes (optional,
// because they are a read-modify-write and thus unsafe under concurrent
// overlapping updates, exactly as in ROMIO's atomic-mode caveats) read the
// window, overlay the new bytes, and write it back.

const (
	// defaultSieveBuf mirrors ROMIO's ind_rd_buffer_size default (4 MiB).
	defaultSieveBuf = 4 << 20
	// sieveMinDensity is the fraction of useful bytes in a window below
	// which sieving is not worth the extra transferred volume.
	sieveMinDensity = 0.25
)

func (h Hints) sieveBuf() int64 {
	if h.IndBufferSize > 0 {
		return h.IndBufferSize
	}
	return defaultSieveBuf
}

// sieveWindows greedily packs consecutive segments into windows whose
// covering extent fits the sieve buffer and whose density clears the
// threshold; segments that do not benefit stay alone.
func sieveWindows(segs []datatype.Segment, buf int64) [][]datatype.Segment {
	var out [][]datatype.Segment
	i := 0
	for i < len(segs) {
		j := i + 1
		dataBytes := segs[i].Len
		for j < len(segs) {
			span := segs[j].End() - segs[i].Off
			if span > buf {
				break
			}
			if float64(dataBytes+segs[j].Len)/float64(span) < sieveMinDensity {
				break
			}
			dataBytes += segs[j].Len
			j++
		}
		out = append(out, segs[i:j])
		i = j
	}
	return out
}

// ReadAtSieved reads n view-logical bytes at logOff with data sieving.
func (f *File) ReadAtSieved(logOff, n int64) []byte {
	segs := f.view.Map(logOff, n)
	out := make([]byte, 0, n)
	for _, win := range sieveWindows(segs, f.hints.sieveBuf()) {
		if len(win) == 1 {
			out = append(out, f.lf.ReadAt(f.r, win[0].Off, win[0].Len)...)
			continue
		}
		base := win[0].Off
		span := f.lf.ReadAt(f.r, base, win[len(win)-1].End()-base)
		for _, s := range win {
			out = append(out, span[s.Off-base:s.End()-base]...)
		}
	}
	f.absorbProf()
	return out
}

// WriteAtSieved writes data through the view with write sieving
// (read-modify-write windows). The caller must ensure no concurrent writer
// touches the holes inside this rank's windows — the same atomicity caveat
// ROMIO documents; collective I/O is the safe alternative.
func (f *File) WriteAtSieved(logOff int64, data []byte) {
	segs := f.view.Map(logOff, int64(len(data)))
	var pos int64
	for _, win := range sieveWindows(segs, f.hints.sieveBuf()) {
		if len(win) == 1 {
			f.lf.WriteAt(f.r, win[0].Off, data[pos:pos+win[0].Len])
			pos += win[0].Len
			continue
		}
		base := win[0].Off
		span := f.lf.ReadAt(f.r, base, win[len(win)-1].End()-base)
		for _, s := range win {
			copy(span[s.Off-base:s.End()-base], data[pos:pos+s.Len])
			pos += s.Len
		}
		f.lf.WriteAt(f.r, base, span)
	}
	f.absorbProf()
}
