package mpiio

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/lustre"
	"repro/internal/mpi"
)

// Sieving correctness, stated as a property: for any non-contiguous layout,
// any pre-existing file contents, and any sieve buffer size, the
// read-modify-write path (WriteAtSieved) must leave the file byte-identical
// to the naive per-segment path (WriteAt), and ReadAtSieved must return the
// same bytes ReadAt does. Sieving may only change *when* bytes move, never
// *which* bytes.

// randomSieveSegs cuts a file region into slots and claims a random
// sub-extent of each with probability 1/2 — sometimes dense (windows pack),
// sometimes sparse (density cutoff splits them), always sorted and disjoint.
func randomSieveSegs(rng *rand.Rand) []datatype.Segment {
	slotSize := int64(rng.Intn(400) + 40)
	slots := rng.Intn(24) + 2
	var segs []datatype.Segment
	for s := 0; s < slots; s++ {
		if rng.Intn(2) == 0 {
			continue
		}
		off := int64(s)*slotSize + rng.Int63n(slotSize/4+1)
		ln := rng.Int63n(slotSize/2) + 1
		segs = append(segs, datatype.Segment{Off: off, Len: ln})
	}
	if len(segs) == 0 {
		segs = []datatype.Segment{{Off: 0, Len: 1}}
	}
	return segs
}

// checkSieveRMW runs one sieved-vs-naive comparison and reports the first
// divergence. Both file systems start with identical random junk covering
// the layout, so clobbered holes show up as content differences.
func checkSieveRMW(seed int64, sieveBuf int64) error {
	rng := rand.New(rand.NewSource(seed))
	segs := randomSieveSegs(rng)
	ft := datatype.NewIndexed(segs)
	disp := rng.Int63n(200)
	view := datatype.View{Disp: disp, Filetype: ft}
	payload := make([]byte, ft.Size())
	rng.Read(payload)
	extent := disp + segs[len(segs)-1].End() + rng.Int63n(100)
	junk := make([]byte, extent)
	rng.Read(junk)
	stripe := lustre.StripeInfo{Count: 3, Size: 509}
	hints := Hints{IndBufferSize: sieveBuf}

	write := func(sieved bool) ([]byte, []byte, error) {
		fs := lustre.NewFS(lustre.DefaultConfig())
		var got []byte
		var readBack []byte
		mpi.Run(1, cluster.DefaultConfig(), seed, func(r *mpi.Rank) {
			f := Open(mpi.WorldComm(r), fs, "sv", stripe, hints)
			f.Lustre().WriteAt(r, 0, junk) // pre-existing contents
			f.SetView(view)
			if sieved {
				f.WriteAtSieved(0, payload)
				readBack = f.ReadAtSieved(0, ft.Size())
			} else {
				f.WriteAt(0, payload)
				readBack = f.ReadAt(0, ft.Size())
			}
			got = f.Lustre().ReadAt(r, 0, extent)
		})
		return got, readBack, nil
	}
	sv, svRead, _ := write(true)
	nv, nvRead, _ := write(false)
	if !bytes.Equal(sv, nv) {
		for i := range sv {
			if sv[i] != nv[i] {
				return fmt.Errorf("seed %d buf %d: file byte %d differs: sieved %#x naive %#x",
					seed, sieveBuf, i, sv[i], nv[i])
			}
		}
		return fmt.Errorf("seed %d buf %d: file lengths differ: %d vs %d", seed, sieveBuf, len(sv), len(nv))
	}
	if !bytes.Equal(svRead, nvRead) {
		return fmt.Errorf("seed %d buf %d: sieved read diverges from naive read", seed, sieveBuf)
	}
	if !bytes.Equal(svRead, payload) {
		return fmt.Errorf("seed %d buf %d: read-back is not the written payload", seed, sieveBuf)
	}
	return nil
}

// TestSieveRMWMatchesNaiveProperty drives random layouts, contents, and
// buffer sizes through checkSieveRMW.
func TestSieveRMWMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		bufs := []int64{0, 128, 997, 1 << 14} // 0 = ROMIO default
		if err := checkSieveRMW(seed, bufs[int(uint64(seed)%uint64(len(bufs)))]); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// FuzzSieve is the native fuzz form: the fuzzer picks the layout seed and
// the sieve buffer size, including degenerate tiny buffers where every
// window is a single segment. `go test` runs the corpus; `make fuzz`
// explores. Invariant: checkSieveRMW finds no divergence and nothing panics.
func FuzzSieve(f *testing.F) {
	f.Add(int64(1), uint16(0))
	f.Add(int64(42), uint16(128))
	f.Add(int64(-3), uint16(4096))
	f.Add(int64(7777), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, buf uint16) {
		if err := checkSieveRMW(seed, int64(buf)); err != nil {
			t.Error(err)
		}
	})
}
