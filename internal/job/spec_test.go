package job

import (
	"errors"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func validSpec() Spec {
	return Spec{Workload: WorkloadTileIO, Procs: 16, Groups: 4, Seed: 1, Backend: "lustre", Workers: 1, Name: "tileio"}
}

func TestRoundTrip(t *testing.T) {
	s := validSpec()
	s.Arrival = 0.25
	s.Hints = Hints{CBNodes: 4, CBBufferSize: 1 << 10}
	s.Scenario = ""
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip changed spec:\n got %+v\nwant %+v", got, s)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := Decode([]byte(`{"workload": "ior", "procs": 8, "stripes": 9}`))
	if err == nil || !strings.Contains(err.Error(), "stripes") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	if _, err := Decode([]byte(`{"workload": "ior", "procs": 8} {"workload": "btio"}`)); err == nil {
		t.Fatal("trailing object accepted")
	}
}

func TestDecodeList(t *testing.T) {
	specs, err := DecodeList([]byte(`[{"workload": "ior", "procs": 8}, {"workload": "btio", "procs": 9}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Workload != "ior" || specs[1].Procs != 9 {
		t.Fatalf("got %+v", specs)
	}
	if _, err := DecodeList([]byte(`[{"workload": "ior", "bogus": 1}]`)); err == nil {
		t.Fatal("unknown field in list accepted")
	}
}

func TestWithDefaults(t *testing.T) {
	s := Spec{Workload: WorkloadBTIO, Procs: 9}.WithDefaults()
	if s.Name != "btio" || s.Seed != 1 || s.Backend != "lustre" || s.Workers != 1 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	// Explicit values survive.
	s = Spec{Workload: WorkloadBTIO, Procs: 9, Name: "x", Seed: 7, Backend: "bb", Workers: 4}.WithDefaults()
	if s.Name != "x" || s.Seed != 7 || s.Backend != "bb" || s.Workers != 4 {
		t.Fatalf("defaults clobbered explicit values: %+v", s)
	}
}

func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Spec)
		field  string
	}{
		{func(s *Spec) { s.Workload = "dd" }, "Workload"},
		{func(s *Spec) { s.Procs = 0 }, "Procs"},
		{func(s *Spec) { s.Groups = -1 }, "Groups"},
		{func(s *Spec) { s.Groups = s.Procs + 1 }, "Groups"},
		{func(s *Spec) { s.Arrival = -0.5 }, "Arrival"},
		{func(s *Spec) { s.Scenario = "nosuch" }, "Scenario"},
		{func(s *Spec) { s.Backend = "nfs" }, "Backend"},
		{func(s *Spec) { s.BBCapacity = -1 }, "BBCapacity"},
		{func(s *Spec) { s.BBDrainBW = -1 }, "BBDrainBW"},
		{func(s *Spec) { s.Workers = -1 }, "Workers"},
		{func(s *Spec) { s.PEsPerNode = 1 }, "PEsPerNode"},
		{func(s *Spec) { s.PEsPerNode = 65 }, "PEsPerNode"},
		{func(s *Spec) { s.Hints.CBNodes = -1 }, "Hints.CBNodes"},
		{func(s *Spec) { s.Hints.CBBufferSize = -1 }, "Hints.CBBufferSize"},
		{func(s *Spec) { s.Steps = -1 }, "Steps"},
		{func(s *Spec) { s.Compute = -1 }, "Compute"},
		{func(s *Spec) { s.BlockBytes = -1 }, "BlockBytes"},
		{func(s *Spec) { s.Interleave = -1 }, "Interleave"},
		{func(s *Spec) { s.BlockBytes = 10; s.Interleave = 3 }, "Interleave"},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(&s)
		err := s.Validate()
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Fatalf("field %s: error %v is not a *ValidationError", c.field, err)
		}
		if ve.Field != c.field {
			t.Fatalf("got field %q, want %q (%v)", ve.Field, c.field, err)
		}
	}
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestResultElapsed(t *testing.T) {
	r := Result{Arrival: 1.5, End: 4.0}
	if r.Elapsed() != 2.5 {
		t.Fatalf("Elapsed = %g", r.Elapsed())
	}
}

// FuzzSpecJSON checks decode(encode(s)) == s for arbitrary field values,
// and that Decode never accepts a document Encode didn't produce the
// structure of (unknown fields).
func FuzzSpecJSON(f *testing.F) {
	f.Add("tile", "tileio", 16, 4, int64(1), 0.0, "", "lustre", int64(0), 0.0, 1, 2, true, 4, int64(4096), 10, 0.001, int64(64), int64(16))
	f.Add("", "", 0, 0, int64(0), 0.0, "", "", int64(0), 0.0, 0, 0, false, 0, int64(0), 0, 0.0, int64(0), int64(0))
	f.Fuzz(func(t *testing.T, name, wl string, procs, groups int, seed int64, arrival float64,
		scenario, backend string, bbcap int64, bbbw float64, workers, pes int, intra bool,
		cbn int, cbb int64, steps int, compute float64, block, il int64) {
		if math.IsNaN(arrival) || math.IsInf(arrival, 0) ||
			math.IsNaN(bbbw) || math.IsInf(bbbw, 0) ||
			math.IsNaN(compute) || math.IsInf(compute, 0) {
			t.Skip("JSON cannot represent non-finite floats")
		}
		if !utf8.ValidString(name) || !utf8.ValidString(wl) ||
			!utf8.ValidString(scenario) || !utf8.ValidString(backend) {
			t.Skip("JSON replaces invalid UTF-8 with U+FFFD")
		}
		s := Spec{
			Name: name, Workload: wl, Procs: procs, Groups: groups, Seed: seed,
			Arrival: arrival, Scenario: scenario, Backend: backend,
			BBCapacity: bbcap, BBDrainBW: bbbw, Workers: workers, PEsPerNode: pes,
			IntraNode: intra, Hints: Hints{CBNodes: cbn, CBBufferSize: cbb},
			Steps: steps, Compute: compute, BlockBytes: block, Interleave: il,
		}
		got, err := Decode(s.Encode())
		if err != nil {
			t.Fatalf("decode(encode(s)): %v", err)
		}
		if got != s {
			t.Fatalf("round trip changed spec:\n got %+v\nwant %+v", got, s)
		}
		// Defaults are idempotent.
		d := s.WithDefaults()
		if d2 := d.WithDefaults(); d2 != d {
			t.Fatalf("WithDefaults not idempotent: %+v vs %+v", d, d2)
		}
	})
}
