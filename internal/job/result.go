package job

// Result is one job's outcome in a run — single-job tools fill the subset
// they measure; the tenancy layer fills everything including the
// interference metrics. All times are virtual seconds; quantiles come from
// the exact per-call recorder (obs.LatencyRecorder), so equal runs produce
// bit-identical Results.
type Result struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
	Procs    int    `json:"procs"`

	// Arrival is the spec's start offset; End the virtual time the job's
	// last rank finished (drain and verification included).
	Arrival float64 `json:"arrival"`
	End     float64 `json:"end"`

	// Bytes is the job's virtual payload; BW = Bytes / (End - Arrival).
	Bytes int64   `json:"bytes"`
	BW    float64 `json:"bw"`

	// CollCalls counts blocking collective I/O calls sampled; P50/P99 are
	// exact nearest-rank quantiles of their per-call virtual latency.
	CollCalls int     `json:"coll_calls"`
	P50       float64 `json:"p50"`
	P99       float64 `json:"p99"`

	// Slowdown metrics versus the same spec run alone on an identical
	// machine (1 = no interference). Zero when no isolated baseline was
	// measured.
	Slowdown    float64 `json:"slowdown,omitempty"`
	SlowdownP99 float64 `json:"slowdown_p99,omitempty"`

	// Verified reports byte-exact read-back of the job's output files.
	Verified bool `json:"verified"`
}

// Elapsed is the job's makespan in virtual seconds.
func (r Result) Elapsed() float64 { return r.End - r.Arrival }
