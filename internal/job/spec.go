// Package job defines the declarative run description shared by every cmd
// tool and the multi-tenant trace layer. A Spec is what used to be spread
// over ~15 cli flags and experiments.Preset fields: one JSON-round-trippable
// value naming the workload, its geometry, the MPI-IO hints, the storage
// backend, the fault scenario, and — for multi-tenant traces — the job's
// arrival time. A multi-tenant run is just a []Spec plus a QoS policy name
// (internal/tenancy.Trace).
//
// The package is deliberately leaf-level: pure data, validation, and
// defaults. Converting a Spec into a live experiments.Preset/core.Options
// lives in internal/experiments (ApplySpec/OptionsFor), so the dependency
// arrow points from the harness down to the description, never back.
package job

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/fault"
)

// Workload names a Spec may carry, in catalog order. "tileio" is the
// paper's MPI-Tile-IO, "ior" the shared-file IOR, "btio" NAS BT-IO full
// mode, "flashio" the FLASH checkpoint, "checkpoint" the strided N-1
// checkpoint-burst from the backend sweeps.
const (
	WorkloadTileIO     = "tileio"
	WorkloadIOR        = "ior"
	WorkloadBTIO       = "btio"
	WorkloadFlashIO    = "flashio"
	WorkloadCheckpoint = "checkpoint"
)

// WorkloadNames lists the valid Spec.Workload values.
func WorkloadNames() []string {
	return []string{WorkloadTileIO, WorkloadIOR, WorkloadBTIO, WorkloadFlashIO, WorkloadCheckpoint}
}

// BackendNames lists the valid Spec.Backend values. The list is fixed here
// rather than imported from experiments so the dependency arrow keeps
// pointing downward; experiments_test pins the two lists equal.
func BackendNames() []string { return []string{"lustre", "listio", "bb"} }

// Hints is the declarative subset of the MPI-IO hints a Spec can set —
// the two knobs the paper's evaluation varies. The full mpiio.Hints stays
// available to library callers; tools that need the exotic knobs
// (aggregator lists, alltoallv ablation) construct options directly.
type Hints struct {
	// CBNodes caps the aggregator count (0 = one per node).
	CBNodes int `json:"cb_nodes,omitempty"`
	// CBBufferSize is the per-aggregator collective buffer in real bytes
	// (0 = the preset's scaled 4 MB-virtual default).
	CBBufferSize int64 `json:"cb_buffer_size,omitempty"`
}

// Spec is one job: a workload at a geometry, on a backend, under a fault
// scenario, arriving at a virtual time. The zero value is not runnable —
// call WithDefaults, then Validate. All fields marshal with omitempty, so
// a Spec round-trips through JSON exactly: decode(encode(s)) == s.
type Spec struct {
	// Name labels the job in reports and file names; WithDefaults derives
	// one from the workload when empty. Within a trace, names must be
	// unique (tenancy.Trace validation enforces it).
	Name string `json:"name,omitempty"`
	// Workload is one of WorkloadNames(). Required.
	Workload string `json:"workload"`
	// Procs is the number of simulated processes. Required, > 0.
	Procs int `json:"procs"`
	// Groups is the requested ParColl subgroup count; 0 or 1 runs the
	// unpartitioned baseline.
	Groups int `json:"groups,omitempty"`
	// Seed is the simulation seed (WithDefaults: 1).
	Seed int64 `json:"seed,omitempty"`
	// Arrival is the job's start offset in virtual seconds from trace
	// start. Single-job tools leave it 0.
	Arrival float64 `json:"arrival,omitempty"`
	// Scenario names a fault scenario from the fault catalog ("" =
	// healthy). In a trace the scenario is a property of the shared
	// hardware, so tenancy.Trace carries its own and rejects per-job ones.
	Scenario string `json:"scenario,omitempty"`
	// Backend selects the storage backend (WithDefaults: "lustre").
	Backend string `json:"backend,omitempty"`
	// BBCapacity is the per-node staging capacity in virtual bytes for the
	// "bb" backend (0 = unlimited).
	BBCapacity int64 `json:"bb_capacity,omitempty"`
	// BBDrainBW is the per-node drain bandwidth in bytes/second for the
	// "bb" backend (0 = the under-backend's native pace).
	BBDrainBW float64 `json:"bb_drain_bw,omitempty"`
	// Workers selects the engine: <= 1 serial, > 1 that many domain
	// workers. Results are bit-identical either way.
	Workers int `json:"workers,omitempty"`
	// PEsPerNode overrides the simulated PEs per node (0 = the cluster
	// default of 2; fat nodes go up to 64).
	PEsPerNode int `json:"pes_per_node,omitempty"`
	// IntraNode turns on two-level collective I/O.
	IntraNode bool `json:"intranode,omitempty"`
	// Hints carries the declarative MPI-IO hints.
	Hints Hints `json:"hints,omitempty"`

	// Steps overrides the workload's step/dump count where it has one
	// (btio, checkpoint); 0 keeps the preset geometry.
	Steps int `json:"steps,omitempty"`
	// Compute is the per-rank compute seconds between checkpoint dumps
	// (checkpoint workload only).
	Compute float64 `json:"compute,omitempty"`
	// BlockBytes overrides the checkpoint workload's real bytes per rank
	// per step; 0 keeps the preset geometry.
	BlockBytes int64 `json:"block_bytes,omitempty"`
	// Interleave stripes each checkpoint block across the step's file
	// range in chunks of this many real bytes (0 = contiguous). Must
	// divide the effective block size; ApplySpec checks the preset's
	// block when BlockBytes is 0.
	Interleave int64 `json:"interleave,omitempty"`
}

// ValidationError reports one invalid Spec field.
type ValidationError struct {
	Field string // Spec field name, e.g. "Procs"
	Msg   string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("job: invalid %s: %s", e.Field, e.Msg)
}

func bad(field, format string, args ...any) *ValidationError {
	return &ValidationError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// WithDefaults returns the spec with every defaultable field filled: the
// single place defaults live, so the flag parsers, the JSON loader, and the
// trace builder all agree. Required fields (Workload, Procs) are left for
// Validate to reject.
func (s Spec) WithDefaults() Spec {
	if s.Name == "" && s.Workload != "" {
		s.Name = s.Workload
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Backend == "" {
		s.Backend = "lustre"
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	return s
}

// Validate checks every field, returning a *ValidationError for the first
// violation (nil when the spec is runnable).
func (s Spec) Validate() error {
	ok := false
	for _, w := range WorkloadNames() {
		if s.Workload == w {
			ok = true
		}
	}
	if !ok {
		return bad("Workload", "%q (want one of %s)", s.Workload, strings.Join(WorkloadNames(), ", "))
	}
	if s.Procs <= 0 {
		return bad("Procs", "%d (want > 0)", s.Procs)
	}
	if s.Groups < 0 {
		return bad("Groups", "%d (want >= 0)", s.Groups)
	}
	if s.Groups > s.Procs {
		return bad("Groups", "%d exceeds procs %d", s.Groups, s.Procs)
	}
	if s.Arrival < 0 {
		return bad("Arrival", "%g (want >= 0)", s.Arrival)
	}
	if s.Scenario != "" {
		if _, err := fault.Scenario(s.Scenario); err != nil {
			return bad("Scenario", "%v", err)
		}
	}
	if s.Backend != "" {
		ok = false
		for _, b := range BackendNames() {
			if s.Backend == b {
				ok = true
			}
		}
		if !ok {
			return bad("Backend", "%q (want one of %s)", s.Backend, strings.Join(BackendNames(), ", "))
		}
	}
	if s.BBCapacity < 0 {
		return bad("BBCapacity", "%d (want >= 0)", s.BBCapacity)
	}
	if s.BBDrainBW < 0 {
		return bad("BBDrainBW", "%g (want >= 0)", s.BBDrainBW)
	}
	if s.Workers < 0 {
		return bad("Workers", "%d (want >= 0)", s.Workers)
	}
	if s.PEsPerNode != 0 && (s.PEsPerNode < 2 || s.PEsPerNode > 64) {
		return bad("PEsPerNode", "%d (want 0 or 2..64)", s.PEsPerNode)
	}
	if s.Hints.CBNodes < 0 {
		return bad("Hints.CBNodes", "%d (want >= 0)", s.Hints.CBNodes)
	}
	if s.Hints.CBBufferSize < 0 {
		return bad("Hints.CBBufferSize", "%d (want >= 0)", s.Hints.CBBufferSize)
	}
	if s.Steps < 0 {
		return bad("Steps", "%d (want >= 0)", s.Steps)
	}
	if s.Compute < 0 {
		return bad("Compute", "%g (want >= 0)", s.Compute)
	}
	if s.BlockBytes < 0 {
		return bad("BlockBytes", "%d (want >= 0)", s.BlockBytes)
	}
	if s.Interleave < 0 {
		return bad("Interleave", "%d (want >= 0)", s.Interleave)
	}
	if s.Interleave > 0 && s.BlockBytes > 0 && s.BlockBytes%s.Interleave != 0 {
		return bad("Interleave", "%d does not divide block_bytes %d", s.Interleave, s.BlockBytes)
	}
	return nil
}

// Encode marshals the spec as indented JSON (stable field order, trailing
// newline) — the format the -spec flag reads back.
func (s Spec) Encode() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // no Spec field can fail to marshal
	}
	return append(b, '\n')
}

// Decode parses one Spec from JSON, rejecting unknown fields — a typo'd
// knob in a spec file fails loudly instead of silently running defaults.
// The decoded spec is returned as-is: callers apply WithDefaults and
// Validate themselves (the trace loader needs the raw form to distinguish
// "unset" from "explicitly zero").
func Decode(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("job: decoding spec: %w", err)
	}
	// Trailing garbage after the object is an error too.
	if dec.More() {
		return Spec{}, fmt.Errorf("job: trailing data after spec object")
	}
	return s, nil
}

// DecodeList parses a JSON array of Specs (a trace's job list), with the
// same unknown-field strictness as Decode.
func DecodeList(data []byte) ([]Spec, error) {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("job: decoding spec list: %w", err)
	}
	out := make([]Spec, 0, len(raw))
	for i, r := range raw {
		s, err := Decode(r)
		if err != nil {
			return nil, fmt.Errorf("job: spec %d: %w", i, err)
		}
		out = append(out, s)
	}
	return out, nil
}
