package cli

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/trace"
)

func TestParseLists(t *testing.T) {
	got := ParseInts("groups", " 1, 2,16")
	want := []int{1, 2, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseInts = %v", got)
		}
	}
	fs := ParseFloats("ratio", "0,0.5, 2")
	if len(fs) != 3 || fs[0] != 0 || fs[1] != 0.5 || fs[2] != 2 {
		t.Fatalf("ParseFloats = %v", fs)
	}
}

func TestPlanAndApply(t *testing.T) {
	c := &Common{Seed: 7}
	if c.Plan() != nil {
		t.Fatal("empty scenario must yield nil plan")
	}
	c.Scenario = "one-straggler"
	plan := c.Plan()
	if plan == nil || plan.Name != "one-straggler" {
		t.Fatalf("Plan() = %+v", plan)
	}
	p := experiments.BenchPreset()
	c.Apply(&p)
	if p.Seed != 7 || p.Fault == nil || p.Fault.Name != "one-straggler" {
		t.Fatalf("Apply: seed=%d fault=%+v", p.Seed, p.Fault)
	}
}

func TestValidateTraceEvents(t *testing.T) {
	rec := trace.New()
	rec.Add(0, "sync", 0, 1, "")
	rec.Add(1, "io", 1, 2, "")
	data, err := obs.Perfetto(rec, obs.New())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceEvents(data); err != nil {
		t.Fatalf("exporter output must validate: %v", err)
	}
	for _, bad := range []string{
		"{}",                           // not an array
		"[]",                           // empty
		`[{"ph":"X"}]`,                 // no name
		`[{"name":"x","ph":"Z"}]`,      // unknown phase
		`[{"name":"x"}]`,               // missing phase
		`[{"name":"x","ph":"X"}, 5]`,   // non-object element
		`[{"name":"x","ph":"X"}`,       // truncated
	} {
		if err := ValidateTraceEvents([]byte(bad)); err == nil {
			t.Errorf("ValidateTraceEvents(%q) must fail", bad)
		}
	}
}
