// Package cli centralizes the flags and output conventions shared by the
// cmd tools. Every tool registers the same core flags (-json, -seed, -procs,
// -scenario) through Common, resolves its fault scenario the same way, and
// emits machine-readable results through one JSON helper — so scripts can
// drive any tool interchangeably.
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/job"
)

// Common holds the flag values shared by every cmd tool. Zero value is
// usable; Register wires the fields to the default flag set.
//
// The flags are a thin parser over job.Spec: ResolveSpec turns them into a
// declarative spec (or loads one from the -spec file, which overrides
// them), and Apply/ApplyBase route through experiments.ApplySpec — so a
// flag invocation and the equivalent spec file are the same code path.
type Common struct {
	JSON       bool   // -json: machine-readable output
	Seed       int64  // -seed: simulation seed
	Procs      int    // -procs: simulated process count
	Scenario   string // -scenario: named fault scenario applied to every run
	TraceOut   string // -trace-out: Perfetto trace_event JSON output path
	Metrics    bool   // -metrics: print the metrics snapshot + critical path
	Workers    int    // -workers: engine domain workers (1 = serial scheduler)
	PEsPerNode int    // -pes-per-node: simulated PEs per node (fat-node knob)
	IntraNode  bool   // -intranode: two-level intra-node aggregation

	Backend    string  // -backend: storage backend (lustre, listio, bb)
	BBCapacity int64   // -bb-capacity: burst-buffer virtual bytes per node
	BBDrainBW  float64 // -bb-drain-bw: burst-buffer drain bytes/sec per node

	SpecPath string // -spec: job spec JSON file overriding the flags above

	workload string    // the tool's workload, recorded by ResolveSpec
	spec     *job.Spec // the resolved spec, cached by ResolveSpec
}

// Register installs -json, -seed, -procs and -workers on the default flag
// set and returns the Common that will receive their values at flag.Parse.
func Register(defaultProcs int) *Common {
	c := &Common{}
	flag.BoolVar(&c.JSON, "json", false, "emit JSON instead of tables")
	flag.Int64Var(&c.Seed, "seed", 1, "simulation seed")
	flag.IntVar(&c.Procs, "procs", defaultProcs, "number of simulated processes")
	flag.IntVar(&c.Workers, "workers", runtime.GOMAXPROCS(0),
		"simulation engine workers: 1 runs the serial scheduler, >1 the parallel one (results are bit-identical either way)")
	flag.IntVar(&c.PEsPerNode, "pes-per-node", cluster.DefaultConfig().PEsPerNode,
		"simulated PEs per node (2 = the paper's dual-core XT4 nodes; up to 64 models fat multicore nodes)")
	flag.BoolVar(&c.IntraNode, "intranode", false,
		"enable two-level collective I/O: PEs sharing a node aggregate into their node leader before any traffic crosses the NIC")
	flag.StringVar(&c.Backend, "backend", "lustre",
		"storage backend ("+strings.Join(experiments.BackendNames(), ", ")+"): listio is a PVFS-style list-I/O farm, bb a node-local burst buffer over lustre")
	flag.Int64Var(&c.BBCapacity, "bb-capacity", 0,
		"burst-buffer capacity in virtual bytes per node (0 = unlimited; writes past it fall through to the backing store)")
	flag.Float64Var(&c.BBDrainBW, "bb-drain-bw", 0,
		"burst-buffer drain bandwidth in bytes/sec per node (0 = unthrottled; only the backing store paces the drain)")
	flag.StringVar(&c.SpecPath, "spec", "",
		"job spec JSON file (the declarative form of these flags); its values override the flag values")
	return c
}

// RegisterScenario installs -scenario. An empty usage gets the standard
// "apply a named fault scenario to every run" text; tools that give the flag
// extra semantics (collwall's catalog mode) pass their own.
func (c *Common) RegisterScenario(usage string) {
	if usage == "" {
		usage = "apply a named fault scenario to every run (" + strings.Join(fault.Names(), ", ") + ")"
	}
	flag.StringVar(&c.Scenario, "scenario", "", usage)
}

// RegisterObs installs the observability flags -trace-out and -metrics.
func (c *Common) RegisterObs() {
	flag.StringVar(&c.TraceOut, "trace-out", "",
		"write a Perfetto/Chrome trace_event JSON trace of an instrumented run to this file")
	flag.BoolVar(&c.Metrics, "metrics", false,
		"print the metrics snapshot and critical-path report of an instrumented run")
}

// Plan resolves the -scenario flag to a fault plan: nil when the flag is
// unset, otherwise the catalog plan. Unknown names are fatal with the
// catalog listed.
func (c *Common) Plan() *fault.Plan {
	if c.Scenario == "" {
		return nil
	}
	plan, err := fault.Scenario(c.Scenario)
	if err != nil {
		Fatalf("%v", err)
	}
	return plan
}

// ResolveSpec resolves the tool's effective job spec and caches it for
// Apply/ApplyBase. With -spec unset the spec is built from the flag values
// (so flags and specs are one code path, not two); with -spec set the file
// is decoded, defaulted and validated, and its values are copied BACK onto
// the Common fields so tools keep reading c.Procs, c.Seed etc. as before.
// workloadName is the tool's workload ("" for multi-workload drivers like
// collwall, which accept any workload and use only the machine knobs); a
// spec file naming a different workload is fatal. Call after flag.Parse.
func (c *Common) ResolveSpec(workloadName string) job.Spec {
	c.workload = workloadName
	var s job.Spec
	if c.SpecPath != "" {
		data, err := os.ReadFile(c.SpecPath)
		if err != nil {
			Fatalf("reading -spec: %v", err)
		}
		s, err = job.Decode(data)
		if err != nil {
			Fatalf("%v", err)
		}
		if s.Workload == "" {
			if workloadName != "" {
				s.Workload = workloadName
			} else {
				s.Workload = job.WorkloadTileIO // multi-workload driver: machine knobs only
			}
		}
		if workloadName != "" && s.Workload != workloadName {
			Fatalf("-spec %s describes a %q job but this tool runs %q", c.SpecPath, s.Workload, workloadName)
		}
		if s.Procs == 0 {
			s.Procs = c.Procs
		}
	} else {
		s = c.flagSpec(workloadName)
	}
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		Fatalf("%v", err)
	}
	c.Seed, c.Procs, c.Scenario = s.Seed, s.Procs, s.Scenario
	c.Workers, c.PEsPerNode, c.IntraNode = s.Workers, s.PEsPerNode, s.IntraNode
	c.Backend, c.BBCapacity, c.BBDrainBW = s.Backend, s.BBCapacity, s.BBDrainBW
	c.spec = &s
	return s
}

// flagSpec is the declarative form of the flag values: the spec that -spec
// would have to contain to reproduce this invocation's shared knobs.
func (c *Common) flagSpec(workloadName string) job.Spec {
	if workloadName == "" {
		// Multi-workload drivers use the spec for machine knobs only; any
		// valid workload name satisfies validation.
		workloadName = job.WorkloadTileIO
	}
	return job.Spec{
		Workload:   workloadName,
		Procs:      c.Procs,
		Seed:       c.Seed,
		Scenario:   c.Scenario,
		Backend:    c.Backend,
		BBCapacity: c.BBCapacity,
		BBDrainBW:  c.BBDrainBW,
		Workers:    c.Workers,
		PEsPerNode: c.PEsPerNode,
		IntraNode:  c.IntraNode,
	}
}

// resolved returns the cached spec, building one from the flags when the
// tool never called ResolveSpec. Apply/ApplyBase consume only the machine
// knobs, so a zero Procs (a Common built outside Register) is tolerated
// here; ResolveSpec is where the full job geometry gets validated.
func (c *Common) resolved() job.Spec {
	if c.spec != nil {
		return *c.spec
	}
	s := c.flagSpec(c.workload)
	if s.Procs == 0 {
		s.Procs = 1
	}
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		Fatalf("%v", err)
	}
	return s
}

// Apply copies the shared knobs onto a preset via the declarative spec
// path (experiments.ApplySpec): the seed, the scenario's fault plan
// (threaded through every runner of the preset), the engine worker count,
// and the node topology knobs. A plan whose storage faults cannot reach the
// selected backend (bb-node loss without the bb tier, server failures
// without the listio farm) still runs — healthy at that layer, by design —
// but gets a stderr warning so a sweep that quietly measures nothing is
// noticed.
func (c *Common) Apply(p *experiments.Preset) {
	if err := p.ApplySpec(c.resolved()); err != nil {
		Fatalf("%v", err)
	}
	if p.Fault == nil {
		return
	}
	b := p.Backend
	if b == "" {
		b = "lustre"
	}
	if (p.Fault.HasBBFails() || p.Fault.HasDrainFails()) && b != "bb" {
		fmt.Fprintf(os.Stderr, "warning: scenario %q injects burst-buffer faults but -backend=%s has no staging tier; those faults are inert\n", c.Scenario, b)
	}
	if p.Fault.HasServerFails() && b != "listio" {
		fmt.Fprintf(os.Stderr, "warning: scenario %q injects pvfs server faults but -backend=%s is not the listio farm; those faults are inert\n", c.Scenario, b)
	}
}

// ApplyBase copies every shared knob except the fault plan onto a preset —
// for tools (collwall's modes) that resolve -scenario themselves.
func (c *Common) ApplyBase(p *experiments.Preset) {
	s := c.resolved()
	s.Scenario = ""
	if err := p.ApplySpecBase(s); err != nil {
		Fatalf("%v", err)
	}
}

// EmitJSON prints {"experiment": name, "workers": n, "points": points} with
// stable two-space indentation — the wire format every tool's -json mode
// shares. The worker count is part of the envelope so scripts comparing runs
// can see which engine produced them (the points themselves are
// bit-identical for every worker count).
func (c *Common) EmitJSON(name string, points any) {
	emitJSON(map[string]any{"experiment": name, "workers": c.Workers, "points": points})
}

// EmitJSON is the envelope writer behind Common.EmitJSON, for call sites
// with no Common in scope (no worker field is emitted).
func EmitJSON(name string, points any) {
	emitJSON(map[string]any{"experiment": name, "points": points})
}

func emitJSON(doc map[string]any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		panic(err)
	}
}

// Fatalf prints to stderr and exits nonzero.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// ParseInts parses a comma-separated list of positive ints; `what` names the
// flag in the error message.
func ParseInts(what, s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			Fatalf("bad %s %q", what, f)
		}
		out = append(out, v)
	}
	return out
}

// ParseFloats parses a comma-separated list of non-negative floats.
func ParseFloats(what, s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 {
			Fatalf("bad %s %q", what, f)
		}
		out = append(out, v)
	}
	return out
}

// validPhases is the set of trace_event phase codes the exporter emits.
var validPhases = map[string]bool{"X": true, "C": true, "M": true, "B": true, "E": true, "I": true, "i": true}

// ValidateTraceEvents sanity-checks a Perfetto/Chrome trace_event document:
// it must be a non-empty JSON array whose every element carries a non-empty
// "name" and a known "ph" code. This is the schema check `make obs` and the
// -trace-out path run before declaring a trace loadable.
func ValidateTraceEvents(data []byte) error {
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("trace is not a JSON array of objects: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("trace array is empty")
	}
	for i, e := range events {
		name, _ := e["name"].(string)
		ph, _ := e["ph"].(string)
		if name == "" {
			return fmt.Errorf("event %d has no name", i)
		}
		if !validPhases[ph] {
			return fmt.Errorf("event %d (%q) has unknown phase %q", i, name, ph)
		}
	}
	return nil
}
