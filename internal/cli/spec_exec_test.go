package cli_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestSpecEqualsFlags is the golden equivalence test for the declarative
// job-spec surface: every cmd tool, invoked with -spec FILE, must produce
// byte-identical stdout to the same invocation spelled with flags. The two
// spellings share one code path (Common.ResolveSpec -> experiments.ApplySpec),
// and this test pins that the path has no forks.
func TestSpecEqualsFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the cmd tools")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tools: %v\n%s", err, out)
	}

	cases := []struct {
		tool  string
		spec  map[string]any
		flags []string // the flag spelling of spec
		extra []string // tool-specific arguments present in both runs
	}{
		{
			tool:  "tileio",
			spec:  map[string]any{"workload": "tileio", "procs": 16, "seed": 3, "scenario": "one-straggler"},
			flags: []string{"-procs", "16", "-seed", "3", "-scenario", "one-straggler"},
		},
		{
			tool:  "ior",
			spec:  map[string]any{"workload": "ior", "procs": 16, "seed": 2, "backend": "listio"},
			flags: []string{"-procs", "16", "-seed", "2", "-backend", "listio"},
			extra: []string{"-groups", "1,2"},
		},
		{
			tool:  "btio",
			spec:  map[string]any{"workload": "btio", "procs": 16, "seed": 2},
			flags: []string{"-procs", "16", "-seed", "2"},
		},
		{
			tool:  "flashio",
			spec:  map[string]any{"workload": "flashio", "procs": 16, "seed": 2},
			flags: []string{"-procs", "16", "-seed", "2"},
			extra: []string{"-groups", "4", "-aggs", "4"},
		},
		{
			tool:  "collwall",
			spec:  map[string]any{"procs": 16, "seed": 2, "workers": 2},
			flags: []string{"-procs", "16", "-seed", "2", "-workers", "2"},
			extra: []string{"-minprocs", "16", "-maxprocs", "32"},
		},
		{
			tool:  "explore",
			spec:  map[string]any{"procs": 16, "seed": 2},
			flags: []string{"-procs", "16", "-seed", "2"},
			extra: []string{"-param", "latency", "-values", "1e-6,1e-5"},
		},
		{
			tool:  "paperrepro",
			spec:  map[string]any{"procs": 32, "seed": 2},
			flags: []string{"-procs", "32", "-seed", "2"},
			extra: []string{"-fig", "1", "-preset", "bench", "-timings=false"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.tool, func(t *testing.T) {
			specFile := filepath.Join(t.TempDir(), "spec.json")
			data, err := json.Marshal(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(specFile, data, 0o644); err != nil {
				t.Fatal(err)
			}
			run := func(args []string) []byte {
				cmd := exec.Command(filepath.Join(bin, tc.tool), append(append([]string{"-json"}, tc.extra...), args...)...)
				var stdout, stderr bytes.Buffer
				cmd.Stdout, cmd.Stderr = &stdout, &stderr
				if err := cmd.Run(); err != nil {
					t.Fatalf("%s %v: %v\n%s", tc.tool, args, err, stderr.String())
				}
				return stdout.Bytes()
			}
			viaFlags := run(tc.flags)
			viaSpec := run([]string{"-spec", specFile})
			if !bytes.Equal(viaFlags, viaSpec) {
				t.Errorf("flags and -spec outputs differ\nflags:\n%s\nspec:\n%s", viaFlags, viaSpec)
			}
			if len(viaFlags) == 0 {
				t.Errorf("tool produced no output")
			}
		})
	}
}
