package nbio

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

// run executes body on one simulated rank.
func run(body func(r *mpi.Rank)) {
	mpi.Run(1, cluster.DefaultConfig(), 1, body)
}

func TestWaitChargesExposedTail(t *testing.T) {
	run(func(r *mpi.Rank) {
		q := Start(r, r.Now()+2.0, nil, nil, nil)
		if q.Done() || q.Test() {
			t.Fatal("request with future tail reported complete")
		}
		q.Wait()
		if !q.Done() {
			t.Fatal("not done after Wait")
		}
		if q.Hidden() != 0 || q.Exposed() != 2.0 {
			t.Errorf("hidden=%g exposed=%g want 0/2", q.Hidden(), q.Exposed())
		}
		if r.Now() != q.At() {
			t.Errorf("Wait left clock at %g want %g", r.Now(), q.At())
		}
	})
}

func TestComputeHidesTail(t *testing.T) {
	run(func(r *mpi.Rank) {
		q := Start(r, r.Now()+1.0, nil, nil, nil)
		r.Compute(3.0) // clock passes the tail: progress engine completes it
		if !q.Done() {
			t.Fatal("request not completed in background")
		}
		q.Wait() // idempotent
		if q.Hidden() != 1.0 || q.Exposed() != 0 {
			t.Errorf("hidden=%g exposed=%g want 1/0", q.Hidden(), q.Exposed())
		}
	})
}

func TestPartialOverlapSplitsTail(t *testing.T) {
	run(func(r *mpi.Rank) {
		q := Start(r, r.Now()+2.0, nil, nil, nil)
		r.Compute(0.5)
		q.Wait()
		if q.Hidden() != 0.5 || q.Exposed() != 1.5 {
			t.Errorf("hidden=%g exposed=%g want 0.5/1.5", q.Hidden(), q.Exposed())
		}
		if got := q.Hidden() + q.Exposed(); got != q.At()-q.Issued() {
			t.Errorf("hidden+exposed=%g want tail %g", got, q.At()-q.Issued())
		}
	})
}

func TestImmediateCompletion(t *testing.T) {
	run(func(r *mpi.Rank) {
		released := false
		q := Start(r, r.Now(), nil, func() { released = true }, nil)
		if !q.Done() || !released {
			t.Error("zero-tail request did not complete at Start")
		}
	})
}

func TestFinishDefersCompletionToWait(t *testing.T) {
	run(func(r *mpi.Rank) {
		finished := false
		q := Start(r, r.Now()+0.5, func() { finished = true }, nil, nil)
		r.Compute(1.0) // tail becomes due and is hidden...
		if q.Done() || q.Test() || finished {
			t.Fatal("request with finish step completed without Wait")
		}
		q.Wait()
		if !q.Done() || !finished {
			t.Fatal("Wait did not run finish step")
		}
		if q.Hidden() != 0.5 || q.Exposed() != 0 {
			t.Errorf("hidden=%g exposed=%g want 0.5/0", q.Hidden(), q.Exposed())
		}
	})
}

func TestReleaseRunsExactlyOnce(t *testing.T) {
	run(func(r *mpi.Rank) {
		n := 0
		q := Start(r, r.Now()+1.0, nil, func() { n++ }, nil)
		q.Wait()
		q.Wait()
		q.Test()
		if n != 1 {
			t.Errorf("release ran %d times", n)
		}
	})
}

func TestOnCompleteOrderAndLateRegistration(t *testing.T) {
	run(func(r *mpi.Rank) {
		var order []int
		q := Start(r, r.Now()+1.0, nil, nil, nil)
		q.OnComplete(func(*Request) { order = append(order, 1) })
		q.OnComplete(func(*Request) { order = append(order, 2) })
		q.Wait()
		q.OnComplete(func(*Request) { order = append(order, 3) }) // already done: immediate
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Errorf("callback order %v", order)
		}
	})
}

func TestTestCompletesDueTailForFree(t *testing.T) {
	run(func(r *mpi.Rank) {
		q := Start(r, r.Now()+1.0, nil, nil, nil)
		t0 := r.Now()
		r.Compute(2.0)
		if !q.Test() {
			t.Fatal("Test missed a due tail")
		}
		if r.Now() != t0+2.0 {
			t.Error("Test advanced the clock")
		}
		if q.Hidden() != 1.0 || q.Exposed() != 0 {
			t.Errorf("hidden=%g exposed=%g want 1/0", q.Hidden(), q.Exposed())
		}
	})
}

func TestWaitallCompletesInVirtualTimeOrder(t *testing.T) {
	run(func(r *mpi.Rank) {
		var order []string
		a := Start(r, r.Now()+2.0, nil, nil, nil)
		a.OnComplete(func(*Request) { order = append(order, "a") })
		b := Start(r, r.Now()+1.0, nil, nil, nil)
		b.OnComplete(func(*Request) { order = append(order, "b") })
		// Waitall(nil-safe) waits in slice order, but b's earlier tail falls
		// inside a's exposed wait, so the progress engine completes b first —
		// fully hidden, at no extra cost.
		Waitall(nil, a, b)
		if len(order) != 2 || order[0] != "b" || order[1] != "a" {
			t.Errorf("completion order %v want [b a]", order)
		}
		if b.Hidden() != 1.0 || b.Exposed() != 0 {
			t.Errorf("b hidden=%g exposed=%g want 1/0", b.Hidden(), b.Exposed())
		}
		if r.Now() != a.At() { // b's tail was inside a's
			t.Errorf("clock %g want %g", r.Now(), a.At())
		}
	})
}

func TestOpPayload(t *testing.T) {
	run(func(r *mpi.Rank) {
		q := Start(r, r.Now(), nil, nil, "payload")
		if q.Op().(string) != "payload" {
			t.Error("Op payload lost")
		}
	})
}

func TestCancelAbandonsRequest(t *testing.T) {
	run(func(r *mpi.Rank) {
		finished := false
		released := false
		notified := false
		q := Start(r, r.Now()+5.0, func() { finished = true }, func() { released = true }, nil)
		q.OnComplete(func(*Request) { notified = true })
		t0 := r.Now()
		q.Cancel()
		if !q.Done() {
			t.Fatal("canceled request not done")
		}
		if r.Now() != t0 {
			t.Errorf("Cancel advanced the clock %g -> %g", t0, r.Now())
		}
		if q.Exposed() != 0 {
			t.Errorf("Cancel charged exposed tail %g", q.Exposed())
		}
		if finished {
			t.Error("Cancel ran the deferred finish step")
		}
		if !released || !notified {
			t.Errorf("released=%v notified=%v, want both true", released, notified)
		}
		if r.P.PendingOps() != 0 {
			t.Errorf("canceled request left %d live pending ops", r.P.PendingOps())
		}
		q.Cancel() // idempotent
		q.Wait()   // no-op on a canceled request
		if finished {
			t.Error("Wait after Cancel ran the finish step")
		}
	})
}
