// Package nbio provides the nonblocking-operation lifecycle for the
// simulator: Request handles with Test/Wait/Waitall and completion
// callbacks, in the mold of MPI's split collectives. A Request wraps an
// operation whose resource bookings were already made at issue time (see
// lustre.WriteAtAsync) but whose completion lies in the virtual future; the
// sim progress engine (sim.Proc.After) fires the completion when the owning
// rank's clock reaches it, so time the application spends computing between
// Begin and End absorbs — "hides" — the I/O tail. Whatever tail is still
// outstanding at Wait is exposed and charged to the rank's ClassIO clock,
// exactly as the blocking path would have charged it up front.
//
// Accounting: every request splits its tail (at − issued) into hidden and
// exposed portions. hidden + exposed == max(0, at − issued) always; the
// split depends only on virtual clocks, never on wall time, so determinism
// is preserved (DESIGN.md §9).
package nbio

import (
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Request is one in-flight nonblocking operation.
type Request struct {
	r      *mpi.Rank
	issued float64 // rank clock when the operation was issued
	at     float64 // virtual completion time of the resource tail

	tailDone bool // the time tail has been accounted (hidden or charged)
	done     bool // fully complete: tail + finish + release + callbacks

	// finish, when non-nil, is deferred work that must run on the owning
	// rank before the operation's result is usable — e.g. draining the
	// final-round receives of a split collective read. It may advance the
	// clock and communicate; it runs only from Wait, never from the
	// progress engine.
	finish func()
	// release frees resources (arena buffers) once the result is consumed.
	release func()

	hidden  float64
	exposed float64

	cbs  []func(*Request)
	pend *sim.Pending
	op   any
}

// Start issues a request on rank r whose resource tail completes at virtual
// time `at`. finish is optional deferred completion work (runs in Wait);
// release is optional cleanup (runs exactly once when the request is done);
// op is an opaque payload retrievable via Op. If the tail is already due
// and there is no finish step, the request completes immediately.
func Start(r *mpi.Rank, at float64, finish, release func(), op any) *Request {
	q := &Request{r: r, issued: r.Now(), at: at, finish: finish, release: release, op: op}
	if at <= q.issued {
		q.tailDone = true
		if q.finish == nil {
			q.finishUp()
		}
	} else {
		q.pend = r.P.After(at, q.background)
	}
	return q
}

// background is the progress-engine callback: the rank's clock caught up
// with the tail while the application was doing something else, so the
// whole tail was hidden. Pure bookkeeping — no clock movement.
func (q *Request) background() {
	if q.done || q.tailDone {
		return
	}
	q.tailDone = true
	q.hidden += q.at - q.issued
	if q.finish == nil {
		q.finishUp()
	}
}

// finishUp marks the request done, releases resources, and fires callbacks.
func (q *Request) finishUp() {
	if q.done {
		return
	}
	q.done = true
	if q.release != nil {
		rel := q.release
		q.release = nil
		rel()
	}
	cbs := q.cbs
	q.cbs = nil
	for _, cb := range cbs {
		cb(q)
	}
}

// Wait blocks (in virtual time) until the request is complete, charging any
// still-exposed tail to the rank's ClassIO clock, then runs the deferred
// finish step. Idempotent.
func (q *Request) Wait() {
	if q.done {
		return
	}
	if !q.tailDone {
		// Cancel before charging: ChargeIO advances the clock, which would
		// otherwise fire background() mid-Wait and double-count the tail.
		if q.pend != nil {
			q.pend.Cancel()
		}
		q.tailDone = true
		now := q.r.Now()
		if q.at > now {
			q.hidden += now - q.issued
			q.exposed += q.at - now
			q.r.ChargeIO(q.at - now)
		} else {
			q.hidden += q.at - q.issued
		}
	}
	if q.finish != nil {
		fn := q.finish
		q.finish = nil
		fn()
	}
	q.finishUp()
}

// Test reports whether the request is complete, completing it for free when
// its tail is due and it has no deferred finish work. A request with a
// finish step only completes via Wait — Test stays false so the caller
// knows End-side work remains.
func (q *Request) Test() bool {
	if q.done {
		return true
	}
	if q.finish != nil {
		return false
	}
	if q.at <= q.r.Now() {
		if q.pend != nil {
			q.pend.Cancel()
		}
		if !q.tailDone {
			q.tailDone = true
			q.hidden += q.at - q.issued
		}
		q.finishUp()
		return true
	}
	return false
}

// Cancel abandons an in-flight request without charging its remaining tail:
// the progress-engine completion is withdrawn, the deferred finish step is
// dropped, and resources are released. Completion callbacks still fire (the
// request is done — its operation just won't deliver a result), so waiters
// chained via OnComplete unblock. The recovery path uses this to kill
// requests addressed to a crashed aggregator; data durability is unaffected
// because async writes store bytes at issue time. Idempotent, and a no-op
// on an already-complete request.
func (q *Request) Cancel() {
	if q.done {
		return
	}
	if q.pend != nil {
		q.pend.Cancel()
	}
	q.tailDone = true
	q.finish = nil
	q.finishUp()
}

// Waitall waits on every request in order. Deterministic: completion order
// is the slice order, not the tail order.
func Waitall(reqs ...*Request) {
	for _, q := range reqs {
		if q != nil {
			q.Wait()
		}
	}
}

// OnComplete registers fn to run when the request completes; if it already
// has, fn runs immediately. Callbacks fire in registration order and must
// not advance the clock when the completion comes from the progress engine.
func (q *Request) OnComplete(fn func(*Request)) {
	if q.done {
		fn(q)
		return
	}
	q.cbs = append(q.cbs, fn)
}

// Done reports completion without side effects.
func (q *Request) Done() bool { return q.done }

// Hidden returns the virtual seconds of this request's tail that overlapped
// with other work on the owning rank.
func (q *Request) Hidden() float64 { return q.hidden }

// Exposed returns the virtual seconds charged to the rank at Wait.
func (q *Request) Exposed() float64 { return q.exposed }

// At returns the tail's virtual completion time.
func (q *Request) At() float64 { return q.at }

// Issued returns the rank clock at Start.
func (q *Request) Issued() float64 { return q.issued }

// Op returns the opaque payload supplied at Start.
func (q *Request) Op() any { return q.op }
