package ldlm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFirstEnqueueGetsExpandedGrant(t *testing.T) {
	m := New()
	if rev := m.Enqueue("o", 1, 100, 200, PW); rev != 0 {
		t.Errorf("first enqueue revoked %d", rev)
	}
	// The expanded grant covers the whole object.
	if !m.Covered("o", 1, 0, 1<<40, PW) {
		t.Error("expanded grant does not cover the object")
	}
	// Streaming through the region costs nothing further.
	if rev := m.Enqueue("o", 1, 5000, 6000, PW); rev != 0 {
		t.Errorf("covered enqueue revoked %d", rev)
	}
	if e, g, r := m.Stats(); e != 2 || g != 1 || r != 0 {
		t.Errorf("stats = %d/%d/%d", e, g, r)
	}
}

func TestConflictingWriterRevokes(t *testing.T) {
	m := New()
	m.Enqueue("o", 1, 0, 100, PW)
	rev := m.Enqueue("o", 2, 1000, 1100, PW) // conflicts with 1's expanded lock
	if rev != 1 {
		t.Errorf("revoked %d want 1", rev)
	}
	if m.Covered("o", 1, 0, 100, PW) {
		t.Error("victim still holds its lock")
	}
	if !m.Covered("o", 2, 1000, 1100, PW) {
		t.Error("requester not granted")
	}
}

func TestPingPong(t *testing.T) {
	// Two clients alternating writes ping-pong the lock: every request
	// after the first revokes the other — the client-switch cost.
	m := New()
	total := 0
	for i := 0; i < 10; i++ {
		client := 1 + i%2
		total += m.Enqueue("o", client, int64(i*100), int64(i*100+50), PW)
	}
	if total != 9 {
		t.Errorf("revocations = %d want 9", total)
	}
}

func TestReadersShare(t *testing.T) {
	m := New()
	if rev := m.Enqueue("o", 1, 0, 100, PR); rev != 0 {
		t.Error("reader 1 revoked someone")
	}
	if rev := m.Enqueue("o", 2, 50, 150, PR); rev != 0 {
		t.Error("reader 2 revoked reader 1")
	}
	// A writer kicks both readers out.
	if rev := m.Enqueue("o", 3, 60, 70, PW); rev != 2 {
		t.Errorf("writer revoked %d want 2", rev)
	}
}

func TestGrantBoundedByNeighbors(t *testing.T) {
	m := New()
	m.Enqueue("o", 1, 0, 100, PW)       // client 1: whole object
	m.Enqueue("o", 2, 10000, 10100, PW) // revokes 1, takes whole object
	m.Enqueue("o", 1, 0, 100, PW)       // revokes 2? 2's grant covers 0..inf
	// After the ping-pong, enqueue a disjoint region and check the grant
	// respects the other holder's remaining extent.
	holders := m.Holders("o")
	if len(holders) != 1 || holders[0] != 1 {
		t.Errorf("holders = %v", holders)
	}
}

func TestSeparateObjectsIndependent(t *testing.T) {
	m := New()
	m.Enqueue("a", 1, 0, 10, PW)
	if rev := m.Enqueue("b", 2, 0, 10, PW); rev != 0 {
		t.Error("locks leaked across objects")
	}
}

func TestBadExtentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Enqueue("o", 1, 10, 10, PW)
}

// Property: after any sequence of enqueues, no two granted locks of
// different clients conflict (PW vs anything overlapping).
func TestNoConflictingGrantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		for i := 0; i < 60; i++ {
			client := rng.Intn(4)
			start := rng.Int63n(1000)
			mode := PR
			if rng.Intn(2) == 0 {
				mode = PW
			}
			m.Enqueue("o", client, start, start+rng.Int63n(200)+1, mode)
		}
		ns := m.Namespace("o")
		for i, a := range ns.locks {
			for _, b := range ns.locks[i+1:] {
				if a.client == b.client {
					continue
				}
				overlap := a.end > b.start && b.end > a.start
				if overlap && (a.mode == PW || b.mode == PW) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a client's request is always covered afterwards.
func TestRequestAlwaysCoveredProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		for i := 0; i < 60; i++ {
			client := rng.Intn(4)
			start := rng.Int63n(1000)
			end := start + rng.Int63n(200) + 1
			mode := PR
			if rng.Intn(2) == 0 {
				mode = PW
			}
			m.Enqueue("o", client, start, end, mode)
			if !m.Covered("o", client, start, end, mode) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
