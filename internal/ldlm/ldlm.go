// Package ldlm models the Lustre distributed lock manager's extent locks,
// the mechanism behind the "client switch" costs that make uncoordinated
// small writes so expensive on Lustre.
//
// Each OST object has a lock namespace. Before a client touches an extent
// it must hold a covering lock; the server grants *expanded* locks (as much
// of the object as does not conflict) so a client streaming through its own
// region pays one enqueue. When another client's granted lock conflicts,
// the server must call it back (a blocking AST), the holder cancels, and
// the requester waits a round trip — so interleaved writers ping-pong locks
// while aggregated sequential writers keep theirs.
//
// The manager is deterministic state machine code: it reports the number of
// revocations a request triggers, and the caller converts that into
// simulated time.
package ldlm

import (
	"fmt"
	"sort"
)

// Mode is the lock compatibility mode.
type Mode int

const (
	// PR is a protected-read lock; PR locks are mutually compatible.
	PR Mode = iota
	// PW is a protected-write lock; PW conflicts with everything.
	PW
)

func (m Mode) String() string {
	if m == PR {
		return "PR"
	}
	return "PW"
}

// maxEnd is the open upper bound for expanded grants.
const maxEnd = int64(^uint64(0) >> 1)

// lock is one granted extent lock.
type lock struct {
	client     int
	start, end int64
	mode       Mode
}

// Namespace is the lock state of one OST object.
type Namespace struct {
	locks []lock // sorted by start
}

// Manager tracks lock namespaces keyed by object id.
type Manager struct {
	namespaces map[string]*Namespace
	revokes    int64
	enqueues   int64
	grants     int64
}

// New returns an empty manager.
func New() *Manager {
	return &Manager{namespaces: make(map[string]*Namespace)}
}

// Stats returns cumulative (enqueues, grants-without-conflict, revocations).
func (m *Manager) Stats() (enqueues, grants, revokes int64) {
	return m.enqueues, m.grants, m.revokes
}

// Namespace returns (creating) the namespace for an object id.
func (m *Manager) Namespace(obj string) *Namespace {
	ns, ok := m.namespaces[obj]
	if !ok {
		ns = &Namespace{}
		m.namespaces[obj] = ns
	}
	return ns
}

// Enqueue acquires a lock covering [start, end) for client in the given
// mode, revoking conflicting locks. It returns how many other clients had
// to be called back (each is one blocking-AST round trip in the caller's
// cost model). Already-covered requests cost nothing.
func (m *Manager) Enqueue(obj string, client int, start, end int64, mode Mode) (revoked int) {
	if start < 0 || end <= start {
		panic(fmt.Sprintf("ldlm: bad extent [%d,%d)", start, end))
	}
	m.enqueues++
	ns := m.Namespace(obj)

	// Fast path: an existing lock of this client already covers the
	// request with a sufficient mode.
	for _, l := range ns.locks {
		if l.client == client && l.start <= start && end <= l.end &&
			(l.mode == PW || mode == PR) {
			m.grants++
			return 0
		}
	}

	// Call back conflicting locks of other clients.
	victims := map[int]bool{}
	kept := ns.locks[:0]
	for _, l := range ns.locks {
		conflicts := l.end > start && end > l.start &&
			l.client != client && (l.mode == PW || mode == PW)
		if conflicts {
			victims[l.client] = true
			// The holder cancels the whole lock (Lustre cancels at lock
			// granularity, flushing covered dirty pages).
			continue
		}
		kept = append(kept, l)
	}
	ns.locks = kept
	m.revokes += int64(len(victims))

	// Grant an expanded extent: stretch to the neighbors' boundaries so a
	// client streaming through its region will not come back.
	gStart, gEnd := int64(0), maxEnd
	for _, l := range ns.locks {
		if l.client == client && (l.mode == PW || mode == PR) {
			continue // own compatible locks do not bound the grant
		}
		if l.end <= start && l.end > gStart {
			gStart = l.end
		}
		if l.start >= end && l.start < gEnd {
			gEnd = l.start
		}
	}
	// Drop own locks now covered by the new grant to keep the table small.
	kept = ns.locks[:0]
	for _, l := range ns.locks {
		if l.client == client && gStart <= l.start && l.end <= gEnd &&
			(mode == PW || l.mode == PR) {
			continue
		}
		kept = append(kept, l)
	}
	ns.locks = append(kept, lock{client: client, start: gStart, end: gEnd, mode: mode})
	sort.Slice(ns.locks, func(i, j int) bool { return ns.locks[i].start < ns.locks[j].start })
	return len(victims)
}

// Forget drops an object's lock namespace outright — the server-side
// cleanup when the object itself is destroyed. Unlike revocation it is not
// a protocol event: no callbacks fire and no counters move, the ledger
// entry simply ceases to exist. Without it a removed file's namespace
// lingers, and a recreated file of the same name inherits stale granted
// locks (phantom revocations on first touch).
func (m *Manager) Forget(obj string) {
	delete(m.namespaces, obj)
}

// Holders returns the distinct clients currently holding locks on obj, in
// ascending order (diagnostics).
func (m *Manager) Holders(obj string) []int {
	ns, ok := m.namespaces[obj]
	if !ok {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, l := range ns.locks {
		if !seen[l.client] {
			seen[l.client] = true
			out = append(out, l.client)
		}
	}
	sort.Ints(out)
	return out
}

// Covered reports whether client holds a lock covering [start, end) in at
// least the given mode.
func (m *Manager) Covered(obj string, client int, start, end int64, mode Mode) bool {
	ns, ok := m.namespaces[obj]
	if !ok {
		return false
	}
	for _, l := range ns.locks {
		if l.client == client && l.start <= start && end <= l.end &&
			(l.mode == PW || mode == PR) {
			return true
		}
	}
	return false
}
