package perf

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestArenaRoundTrip(t *testing.T) {
	b := GetBuf(100)
	if len(b) != 100 || cap(b) < 100 {
		t.Fatalf("GetBuf(100) len=%d cap=%d", len(b), cap(b))
	}
	for i := range b {
		b[i] = byte(i)
	}
	PutBuf(b)
	// A fresh buffer of the same class may reuse the released one; either
	// way it must have the requested length and full capacity available.
	c := GetBuf(80)
	if len(c) != 80 {
		t.Fatalf("GetBuf(80) len=%d", len(c))
	}
	PutBuf(c)
}

func TestArenaClassBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1 << 10, 1<<24 + 1} {
		b := GetBuf(n)
		if len(b) != n {
			t.Fatalf("GetBuf(%d) len=%d", n, len(b))
		}
		PutBuf(b)
	}
	PutBuf(nil) // must not panic
}

func TestBenchReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	r := NewBenchReport()
	r.Add(BenchPoint{
		Name: "Fig1/procs=64", NsPerOp: 123.5, AllocsPerOp: 42, BytesPerOp: 1024,
		Metrics: map[string]float64{"sync%": 36.4, "events/sec": 1e6},
	})
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != "parcoll-bench/v1" || len(got.Points) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Points[0].Metrics["sync%"] != 36.4 {
		t.Fatalf("metrics lost: %+v", got.Points[0])
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
