// Package perf provides the small amount of shared machinery behind the
// repository's performance work: cheap event counters that hot layers (the
// sim engine, the mpi runtime) expose through their stats structs, a
// size-classed sync.Pool buffer arena for the zero-copy message paths, and
// a machine-readable benchmark report (BENCH_*.json) that successive PRs
// diff against to catch wall-clock and allocation regressions.
package perf

import (
	"encoding/json"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event counter. It is deliberately
// not atomic: the hot paths that increment it (the sim engine's scheduler
// and mailboxes) are single-threaded by construction, and a plain add is
// free. Use atomic counters (see ArenaStats) where concurrency is possible.
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { *c++ }

// Add adds n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the current count.
func (c Counter) Value() uint64 { return uint64(c) }

// --- Buffer arena ---
//
// Payload buffers in the message layer have a strict lifecycle: a sender
// materializes bytes, the sim engine holds them in a mailbox, and exactly
// one receiver consumes them. Once the receiver has decoded or copied the
// bytes out, the buffer is garbage. GetBuf/PutBuf recycle those buffers
// through per-size-class sync.Pools so the encode -> send -> recv -> decode
// cycle settles into zero steady-state allocations.
//
// Ownership rules: a buffer obtained from GetBuf is exclusively owned until
// handed to PutBuf, which must happen at most once and only when no other
// reference survives. Buffers whose references escape (e.g. payloads shared
// by a rendezvous collective across ranks) must simply never be released —
// the arena degrades to the allocator, never to corruption.

const (
	arenaMinBits = 6  // smallest class: 64 B
	arenaMaxBits = 24 // largest class: 16 MiB; bigger buffers bypass the pools
)

var arenaPools [arenaMaxBits - arenaMinBits + 1]sync.Pool

// ArenaStats counts arena traffic (atomically — tests may run engines in
// parallel processes of the same binary).
type ArenaStats struct {
	Gets   atomic.Uint64 // GetBuf calls served from a pool or fresh
	Reuses atomic.Uint64 // GetBuf calls satisfied by a pooled buffer
	Puts   atomic.Uint64 // PutBuf calls accepted into a pool
}

var arenaStats ArenaStats

// ArenaCounters returns a snapshot of the arena's traffic counters.
func ArenaCounters() (gets, reuses, puts uint64) {
	return arenaStats.Gets.Load(), arenaStats.Reuses.Load(), arenaStats.Puts.Load()
}

func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < arenaMinBits {
		return 0
	}
	return b - arenaMinBits
}

// GetBuf returns a zeroed-length buffer with capacity >= n, length n. The
// contents are unspecified (reused buffers keep old bytes); callers must
// overwrite the full length before reading.
func GetBuf(n int) []byte {
	arenaStats.Gets.Add(1)
	cls := classFor(n)
	if cls >= len(arenaPools) {
		return make([]byte, n)
	}
	if v := arenaPools[cls].Get(); v != nil {
		arenaStats.Reuses.Add(1)
		return (*(v.(*[]byte)))[:n]
	}
	return make([]byte, n, 1<<(cls+arenaMinBits))
}

// PutBuf returns a buffer to the arena. The caller must hold the only live
// reference. nil and oversized buffers are ignored.
func PutBuf(b []byte) {
	if b == nil {
		return
	}
	c := cap(b)
	if c < 1<<arenaMinBits {
		return
	}
	cls := bits.Len(uint(c)) - 1 - arenaMinBits // floor class that fits cap
	if cls < 0 || cls >= len(arenaPools) {
		return
	}
	arenaStats.Puts.Add(1)
	b = b[:0]
	arenaPools[cls].Put(&b)
}

// --- Benchmark report ---

// BenchPoint is one benchmark configuration's measurements. Metrics carries
// the benchmark's domain numbers (sync%, MBps, events/sec, ...) keyed by
// the same unit strings b.ReportMetric uses.
type BenchPoint struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the schema of BENCH_*.json.
type BenchReport struct {
	Schema string       `json:"schema"` // "parcoll-bench/v1"
	Points []BenchPoint `json:"points"`
}

// NewBenchReport returns an empty report with the current schema tag.
func NewBenchReport() *BenchReport {
	return &BenchReport{Schema: "parcoll-bench/v1"}
}

// Add appends a point.
func (r *BenchReport) Add(p BenchPoint) { r.Points = append(r.Points, p) }

// Write serializes the report to path with stable formatting (sorted keys,
// indented) so committed reports diff cleanly across PRs.
func (r *BenchReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchReport loads a previously written report (for regression diffs).
func ReadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}
