package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
)

// CheckpointBurst models a defensive-checkpointing application: every step
// computes for Compute seconds, then collectively dumps a contiguous
// per-rank block into the shared checkpoint file (the N-1 pattern). It is
// the scenario a burst-buffer staging tier exists for — the write call
// should cost memory speed and the drain should hide under the next step's
// compute — so unlike the paper workloads it reports the write-call spans
// separately from end-to-end elapsed, and finishes with a Drain barrier
// that forces every staged byte durable before the read-back.
type CheckpointBurst struct {
	BlockBytes int64   // real bytes per rank per checkpoint step
	Steps      int     // checkpoint steps
	Compute    float64 // seconds of per-rank compute before each dump
}

// CheckpointResult is a Result plus the burst-specific spans.
type CheckpointResult struct {
	Result
	// WriteSecs sums the global spans of the collective write calls alone —
	// the time the application was stalled inside a dump. With a staging
	// tier this is what shrinks; the drain moves under compute.
	WriteSecs float64
	// DrainSecs is the global span of the final Drain barrier: the staged
	// tail that did NOT fit under compute. Pass-through backends pay only
	// the barrier itself.
	DrainSecs float64
}

// Run executes the burst loop and returns this rank's result (spans are
// global, identical on every rank).
func (w CheckpointBurst) Run(r *mpi.Rank, env Env, name string) CheckpointResult {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.WorldRank()
	n := comm.Size()
	steps := w.Steps
	if steps < 1 {
		steps = 1
	}
	data := make([]byte, w.BlockBytes)
	var out CheckpointResult
	elapsed := measure(comm, func() {
		for s := 0; s < steps; s++ {
			if w.Compute > 0 {
				r.Compute(w.Compute)
			}
			Fill(data, me, int64(s)*w.BlockBytes)
			off := (int64(s)*int64(n) + int64(me)) * w.BlockBytes
			out.WriteSecs += measure(comm, func() { f.WriteAtAll(off, data) })
		}
		// Make the checkpoint durable: staged backends charge whatever drain
		// tail the compute phases did not absorb.
		out.DrainSecs = measure(comm, func() { env.FS.Drain(r) })
	})
	out.Result = Result{
		Elapsed:   elapsed,
		VirtBytes: w.BlockBytes * int64(steps) * int64(n) * scaleOf(env),
		Breakdown: f.Breakdown(),
		Plan:      f.LastPlan(),
		Metrics:   snapshotMetrics(env),
	}
	return out
}

// Verify checks every step's block of this rank against the fill pattern,
// reading back through a fresh handle (after a Drain the bytes must be
// byte-exact on the final tier regardless of backend).
func (w CheckpointBurst) Verify(r *mpi.Rank, env Env, name string) error {
	f := env.FS.Open(r, name, env.Stripe)
	me := r.WorldRank()
	n := mpi.WorldComm(r).Size()
	steps := w.Steps
	if steps < 1 {
		steps = 1
	}
	for s := 0; s < steps; s++ {
		off := (int64(s)*int64(n) + int64(me)) * w.BlockBytes
		got := f.ReadAt(r, off, w.BlockBytes)
		for i, b := range got {
			want := PatternByte(me, int64(s)*w.BlockBytes+int64(i))
			if b != want {
				return fmt.Errorf("rank %d step %d byte %d (file off %d) = %d, want %d",
					me, s, i, off+int64(i), b, want)
			}
		}
	}
	return nil
}
