package workload

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/storage"
)

// CheckpointBurst models a defensive-checkpointing application: every step
// computes for Compute seconds, then collectively dumps a contiguous
// per-rank block into the shared checkpoint file (the N-1 pattern). It is
// the scenario a burst-buffer staging tier exists for — the write call
// should cost memory speed and the drain should hide under the next step's
// compute — so unlike the paper workloads it reports the write-call spans
// separately from end-to-end elapsed, and finishes with a Drain barrier
// that forces every staged byte durable before the read-back.
type CheckpointBurst struct {
	BlockBytes int64   // real bytes per rank per checkpoint step
	Steps      int     // checkpoint steps
	Compute    float64 // seconds of per-rank compute before each dump
	// Interleave, when positive, stripes each rank's per-step block across
	// the step's file range in Interleave-byte chunks (the classic strided
	// N-1 checkpoint) instead of one contiguous block: chunk c of rank me
	// lands at stepBase + (c*n + me)*Interleave. Strided dumps force the
	// collective exchange phase, giving subgroup partitioning structure to
	// confine — contiguous dumps degenerate to disjoint per-rank domains
	// where the group count cannot matter. Must divide BlockBytes.
	Interleave int64
}

// chunkSize is the contiguous unit of this rank's data in the file: the
// whole block when contiguous, one interleave chunk when strided.
func (w CheckpointBurst) chunkSize() int64 {
	if w.Interleave > 0 {
		return w.Interleave
	}
	return w.BlockBytes
}

// chunks is how many file extents one step's block splits into.
func (w CheckpointBurst) chunks() int64 {
	if w.Interleave > 0 {
		return w.BlockBytes / w.Interleave
	}
	return 1
}

// chunkAt returns the file offset of chunk c of rank me's step-s block.
func (w CheckpointBurst) chunkAt(me, n, s int, c int64) int64 {
	if w.Interleave <= 0 {
		return (int64(s)*int64(n) + int64(me)) * w.BlockBytes
	}
	return int64(s)*int64(n)*w.BlockBytes + (c*int64(n)+int64(me))*w.Interleave
}

// view builds the strided file view (Interleave > 0 only): frame s of a
// count x n chunk grid, this rank owning column me.
func (w CheckpointBurst) view(me, n int) datatype.View {
	if w.BlockBytes%w.Interleave != 0 {
		panic(fmt.Sprintf("workload: checkpoint Interleave %d must divide BlockBytes %d", w.Interleave, w.BlockBytes))
	}
	count := w.BlockBytes / w.Interleave
	sub := datatype.NewSubarray(
		[]int64{count, int64(n)},
		[]int64{count, 1},
		[]int64{0, int64(me)},
		w.Interleave,
	)
	return datatype.View{Disp: 0, Filetype: sub}
}

// CheckpointResult is a Result plus the burst-specific spans.
type CheckpointResult struct {
	Result
	// WriteSecs sums the global spans of the collective write calls alone —
	// the time the application was stalled inside a dump. With a staging
	// tier this is what shrinks; the drain moves under compute.
	WriteSecs float64
	// DrainSecs is the global span of the final Drain barrier: the staged
	// tail that did NOT fit under compute. Pass-through backends pay only
	// the barrier itself.
	DrainSecs float64
}

// Run executes the burst loop and returns this rank's result (spans are
// global, identical on every rank).
func (w CheckpointBurst) Run(r *mpi.Rank, env Env, name string) CheckpointResult {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.JobRank()
	n := comm.Size()
	if w.Interleave > 0 {
		f.SetView(w.view(me, n))
	}
	steps := w.Steps
	if steps < 1 {
		steps = 1
	}
	data := make([]byte, w.BlockBytes)
	var out CheckpointResult
	elapsed := measure(comm, func() {
		for s := 0; s < steps; s++ {
			if w.Compute > 0 {
				r.Compute(w.Compute)
			}
			Fill(data, me, int64(s)*w.BlockBytes)
			// Contiguous layout addresses the file directly; the strided
			// layout addresses frame s of the interleave view.
			off := (int64(s)*int64(n) + int64(me)) * w.BlockBytes
			if w.Interleave > 0 {
				off = int64(s) * w.BlockBytes
			}
			out.WriteSecs += measure(comm, func() { f.WriteAtAll(off, data) })
		}
		// Make the checkpoint durable: staged backends charge whatever drain
		// tail the compute phases did not absorb. Under a staging-failure
		// plan the barrier can report lost extents; the burst's blocks are
		// regenerable from the fill pattern, so the loop re-dumps and
		// retries until the checkpoint is whole.
		out.DrainSecs = measure(comm, func() { w.drain(r, comm, env, name, steps) })
	})
	out.Result = Result{
		Elapsed:   elapsed,
		VirtBytes: w.BlockBytes * int64(steps) * int64(n) * scaleOf(env),
		Breakdown: f.Breakdown(),
		Plan:      f.LastPlan(),
		Metrics:   snapshotMetrics(env),
	}
	if env.FS.Params().Injecting && env.Opts.Run.Fault.HasBBFails() {
		out.Recovery = GlobalRecovery(comm, f.Recovery())
	}
	return out
}

// drain is the durability barrier. On the healthy path it is exactly
// env.FS.Drain. When the backend injects staging-node failures, it runs the
// erroring barrier instead: a reported staging loss makes every rank
// regenerate the lost bytes inside its own blocks (checkpoint data is a
// pure function of rank and offset) and rewrite them at honest
// write-through cost, then synchronize and retry the barrier — so the loss
// check after the barrier sees every rank's repair.
func (w CheckpointBurst) drain(r *mpi.Rank, comm *mpi.Comm, env Env, name string, steps int) {
	if !(env.FS.Params().Injecting && env.Opts.Run.Fault.HasBBFails()) {
		env.FS.Drain(r)
		return
	}
	for attempt := 0; ; attempt++ {
		err := env.FS.TryDrain(r)
		var sl *storage.StagingLostError
		if err != nil {
			if !errors.As(err, &sl) || sl.File != name || attempt >= 4 {
				panic(fmt.Sprintf("checkpoint: drain of %q failed: %v", name, err))
			}
		}
		// Agree collectively whether anyone still sees a loss: a rank whose
		// barrier ran after the others' repairs healed everything must keep
		// iterating in lockstep with the ranks that are re-dumping.
		hit := int64(0)
		if sl != nil {
			hit = 1
		}
		if comm.AllreduceInt64([]int64{hit}, mpi.OpMax)[0] == 0 {
			return
		}
		if sl != nil {
			w.redump(r, env, name, sl.Lost, comm.Size(), steps)
		}
		comm.Barrier()
	}
}

// redump rewrites this rank's intersection with the lost set: for each of
// its per-step blocks, the overlapping ranges are regenerated from the fill
// pattern and written back through the erroring path. Across ranks the
// blocks partition the file, so every lost byte is re-dumped exactly once.
func (w CheckpointBurst) redump(r *mpi.Rank, env Env, name string, lost []storage.Extent, n, steps int) {
	f := env.FS.Open(r, name, env.Stripe)
	me := r.JobRank()
	for s := 0; s < steps; s++ {
		for c := int64(0); c < w.chunks(); c++ {
			off := w.chunkAt(me, n, s, c)
			local := int64(s)*w.BlockBytes + c*w.chunkSize()
			for _, e := range storage.Intersect(lost, []storage.Extent{{Off: off, Len: w.chunkSize()}}) {
				seg := make([]byte, e.Len)
				Fill(seg, me, local+(e.Off-off))
				for {
					// A not-yet-reported second loss can surface here; the
					// report consumes it, and the retry lands write-through
					// on the degraded node.
					if werr := f.TryWriteAt(r, e.Off, seg); werr == nil {
						break
					}
				}
			}
		}
	}
}

// Verify checks every step's block of this rank against the fill pattern,
// reading back through a fresh handle (after a Drain the bytes must be
// byte-exact on the final tier regardless of backend).
func (w CheckpointBurst) Verify(r *mpi.Rank, env Env, name string) error {
	f := env.FS.Open(r, name, env.Stripe)
	me := r.JobRank()
	n := mpi.WorldComm(r).Size()
	steps := w.Steps
	if steps < 1 {
		steps = 1
	}
	for s := 0; s < steps; s++ {
		for c := int64(0); c < w.chunks(); c++ {
			off := w.chunkAt(me, n, s, c)
			local := int64(s)*w.BlockBytes + c*w.chunkSize()
			got := f.ReadAt(r, off, w.chunkSize())
			for i, b := range got {
				want := PatternByte(me, local+int64(i))
				if b != want {
					return fmt.Errorf("rank %d step %d byte %d (file off %d) = %d, want %d",
						me, s, local+int64(i), off+int64(i), b, want)
				}
			}
		}
	}
	return nil
}
