package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/recovery"
)

// BTIO models NAS BT-IO full mode (paper §5.3): the BT solver's 3D solution
// array undergoes diagonal multi-partitioning over P = k*k processes, each
// owning k cells (sub-cubes) scattered along a diagonal, and the solution
// is appended to the output file every few timesteps with collective MPI-IO
// through a structured datatype. Each process's cells spread across the
// whole solution — the paper's Figure 4(c) pattern, which forces ParColl's
// intermediate file views.
type BTIO struct {
	N     int64 // solution cube edge, in cells (must be divisible by k)
	Elem  int64 // bytes per cell (BT stores 5 doubles: 40 bytes)
	Steps int   // number of solution dumps
	// Compute is seconds of per-rank solver time between dumps (the BT
	// timesteps themselves); with Split set it runs between Begin and End
	// so the dump's I/O tail is hidden behind it.
	Compute float64
	// Split uses split collectives (WriteAllBegin/End) for the dumps.
	Split bool
}

// K returns the partitioning factor for nprocs (nprocs must be a square).
func K(nprocs int) int {
	k := 1
	for k*k < nprocs {
		k++
	}
	if k*k != nprocs {
		panic("workload: BT-IO needs a square process count")
	}
	return k
}

// CellCoords lists rank's k cell coordinates under diagonal
// multi-partitioning: cell m of process (i,j) sits at
// ((i+m) mod k, (j+m) mod k, m).
func CellCoords(rank, k int) [][3]int {
	i, j := rank%k, rank/k
	cells := make([][3]int, k)
	for m := 0; m < k; m++ {
		cells[m] = [3]int{(i + m) % k, (j + m) % k, m}
	}
	return cells
}

// View builds rank's file view over one solution dump: the union of its k
// sub-cubes within the N^3 cell array (z-major order), expressed as an
// indexed datatype. The filetype's extent is forced to the full cube so
// logical offsets beyond one dump tile into the next (append semantics).
func (w BTIO) View(rank, nprocs int) datatype.View {
	k := K(nprocs)
	if (w.N/int64(k))*int64(k) != w.N {
		panic("workload: BT-IO N must be divisible by k")
	}
	cube := w.N * w.N * w.N * w.Elem
	return datatype.View{Disp: 0, Filetype: padIndexed(w.segsOf(rank, k), cube)}
}

// segsOf lists rank's byte segments within one solution dump.
func (w BTIO) segsOf(rank, k int) []datatype.Segment {
	c := w.N / int64(k)
	rowBytes := w.N * w.Elem
	planeBytes := w.N * rowBytes
	var segs []datatype.Segment
	for _, cell := range CellCoords(rank, k) {
		x0, y0, z0 := int64(cell[0])*c, int64(cell[1])*c, int64(cell[2])*c
		for z := z0; z < z0+c; z++ {
			for y := y0; y < y0+c; y++ {
				segs = append(segs, datatype.Segment{
					Off: z*planeBytes + y*rowBytes + x0*w.Elem,
					Len: c * w.Elem,
				})
			}
		}
	}
	return segs
}

// padIndexed wraps an indexed type, forcing its extent to the given value.
type paddedType struct {
	datatype.Type
	extent int64
}

func (p paddedType) Extent() int64 { return p.extent }

func padIndexed(segs []datatype.Segment, extent int64) datatype.Type {
	return paddedType{Type: datatype.NewIndexed(segs), extent: extent}
}

// DumpBytes is one rank's data per solution dump.
func (w BTIO) DumpBytes(nprocs int) int64 {
	k := int64(K(nprocs))
	c := w.N / k
	return k * c * c * c * w.Elem
}

// Write appends Steps solution dumps collectively and returns this rank's
// Result.
func (w BTIO) Write(r *mpi.Rank, env Env, name string) Result {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.JobRank()
	f.SetView(w.View(me, comm.Size()))
	per := w.DumpBytes(comm.Size())
	data := make([]byte, per)
	elapsed := measure(comm, func() {
		for s := 0; s < w.Steps; s++ {
			Fill(data, me, int64(s)*per)
			if w.Split {
				q := f.WriteAllBegin(int64(s)*per, data)
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				f.WriteAllEnd(q)
			} else {
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				f.WriteAtAll(int64(s)*per, data)
			}
		}
	})
	bd := f.Breakdown()
	var ovl mpiio.OverlapStats
	if w.Split {
		ovl = GlobalOverlap(comm, f.Overlap())
	}
	var rec recovery.FailoverStats
	if env.Opts.Run.Fault.HasCrashes() {
		rec = GlobalRecovery(comm, f.Recovery())
	}
	return Result{
		Elapsed:   elapsed,
		VirtBytes: per * int64(comm.Size()) * int64(w.Steps) * scaleOf(env),
		Breakdown: bd,
		Plan:      f.LastPlan(),
		Overlap:   ovl,
		Recovery:  rec,
		Metrics:   snapshotMetrics(env),
	}
}

// Verify checks every dump's bytes for this rank against the pattern by
// reading them back collectively through a handle opened with the same
// options as the write — the round trip BT-IO itself performs. Reading
// through the view (rather than raw file offsets) is what makes this valid
// under MaterializeIntermediate, where the on-disk arrangement differs from
// the unpartitioned protocol's but views map back identically. All ranks of
// the communicator must call it. Returns the first mismatch.
func (w BTIO) Verify(r *mpi.Rank, env Env, name string) error {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.JobRank()
	f.SetView(w.View(me, comm.Size()))
	per := w.DumpBytes(comm.Size())
	for s := 0; s < w.Steps; s++ {
		got := f.ReadAtAll(int64(s)*per, per)
		for i, b := range got {
			if want := PatternByte(me, int64(s)*per+int64(i)); b != want {
				return fmt.Errorf("rank %d: dump %d byte %d = %d, want %d", me, s, i, b, want)
			}
		}
	}
	return nil
}

// Read reads all dumps back collectively.
func (w BTIO) Read(r *mpi.Rank, env Env, name string) Result {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.JobRank()
	f.SetView(w.View(me, comm.Size()))
	per := w.DumpBytes(comm.Size())
	elapsed := measure(comm, func() {
		for s := 0; s < w.Steps; s++ {
			if w.Split {
				q := f.ReadAllBegin(int64(s)*per, per)
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				f.ReadAllEnd(q)
			} else {
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				f.ReadAtAll(int64(s)*per, per)
			}
		}
	})
	bd := f.Breakdown()
	var ovl mpiio.OverlapStats
	if w.Split {
		ovl = GlobalOverlap(comm, f.Overlap())
	}
	var rec recovery.FailoverStats
	if env.Opts.Run.Fault.HasCrashes() {
		rec = GlobalRecovery(comm, f.Recovery())
	}
	return Result{
		Elapsed:   elapsed,
		VirtBytes: per * int64(comm.Size()) * int64(w.Steps) * scaleOf(env),
		Breakdown: bd,
		Plan:      f.LastPlan(),
		Overlap:   ovl,
		Recovery:  rec,
		Metrics:   snapshotMetrics(env),
	}
}
