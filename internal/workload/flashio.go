package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/hdf5lite"
	"repro/internal/mpi"
	"repro/internal/mpiio"
)

// FlashIO models the Flash I/O benchmark (paper §5.4): the I/O kernel of
// the FLASH astrophysics code writing its checkpoint through HDF5 over
// MPI-IO. Each process owns NBlocks AMR blocks of NxB*NyB*NzB cells; the
// checkpoint stores NVars unknowns, each a dataset over all blocks. Within
// one dataset every process's region is contiguous — large requests with
// few segments, which is why the paper sees smaller (but still real)
// ParColl gains here.
type FlashIO struct {
	NxB, NyB, NzB int64 // block dimensions in cells
	NBlocks       int64 // blocks per process
	NVars         int   // unknowns (Flash writes 24)
	Elem          int64 // bytes per cell value (8: double)
}

// BlockBytes is the size of one block of one variable.
func (w FlashIO) BlockBytes() int64 { return w.NxB * w.NyB * w.NzB * w.Elem }

// PerProcBytes is one process's contribution to one dataset.
func (w FlashIO) PerProcBytes() int64 { return w.NBlocks * w.BlockBytes() }

// CheckpointBytes is the total checkpoint payload (excluding headers).
func (w FlashIO) CheckpointBytes(nprocs int) int64 {
	return w.PerProcBytes() * int64(nprocs) * int64(w.NVars)
}

// attrs builds the checkpoint's header metadata, as Flash records run
// parameters alongside its data.
func (w FlashIO) attrs(nprocs int) map[string]string {
	return map[string]string{
		"nprocs":       fmt.Sprint(nprocs),
		"nvars":        fmt.Sprint(w.NVars),
		"block_shape":  fmt.Sprintf("%dx%dx%d", w.NxB, w.NyB, w.NzB),
		"blocks_per_p": fmt.Sprint(w.NBlocks),
	}
}

func (w FlashIO) specs(nprocs int) []hdf5lite.Spec {
	specs := make([]hdf5lite.Spec, w.NVars)
	for v := range specs {
		specs[v] = hdf5lite.Spec{
			Name:  fmt.Sprintf("unk%02d", v),
			Total: w.PerProcBytes() * int64(nprocs),
		}
	}
	return specs
}

// WriteCheckpoint writes a full checkpoint collectively (ParColl path) and
// returns this rank's Result.
func (w FlashIO) WriteCheckpoint(r *mpi.Rank, env Env, name string) Result {
	comm := mpi.WorldComm(r)
	cf := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.JobRank()
	per := w.PerProcBytes()
	data := make([]byte, per)
	var h *hdf5lite.File
	elapsed := measure(comm, func() {
		h = hdf5lite.CreateWithAttrs(cf, me == 0, w.specs(comm.Size()), w.attrs(comm.Size()))
		for v := 0; v < w.NVars; v++ {
			Fill(data, me, int64(v)*per)
			h.WriteAll(fmt.Sprintf("unk%02d", v), int64(me)*per, data)
		}
	})
	return Result{
		Elapsed:   elapsed,
		VirtBytes: w.CheckpointBytes(comm.Size()) * scaleOf(env),
		Breakdown: cf.Breakdown(),
		Plan:      cf.LastPlan(),
		Metrics:   snapshotMetrics(env),
	}
}

// indepFile adapts independent MPI-IO writes to the CollectiveFile
// interface, for the paper's "Cray w/o Coll" baseline.
type indepFile struct{ f *mpiio.File }

func (a indepFile) SetView(v datatype.View)        { a.f.SetView(v) }
func (a indepFile) WriteAtAll(off int64, d []byte) { a.f.WriteAt(off, d) }
func (a indepFile) ReadAtAll(off, n int64) []byte  { return a.f.ReadAt(off, n) }

// WriteCheckpointIndependent writes the checkpoint with plain independent
// writes (collective I/O disabled), as the paper's "Cray w/o Coll" series.
// Without collective buffering, HDF5 issues one write per block per
// variable — the small-request storm that makes the paper's independent
// series collapse to ~60 MB/s.
func (w FlashIO) WriteCheckpointIndependent(r *mpi.Rank, env Env, name string) Result {
	comm := mpi.WorldComm(r)
	mf := mpiio.OpenWith(comm, env.FS, name, env.Stripe, env.Opts.Hints, env.Opts.Run)
	me := r.JobRank()
	per := w.PerProcBytes()
	bb := w.BlockBytes()
	data := make([]byte, per)
	elapsed := measure(comm, func() {
		h := hdf5lite.CreateWithAttrs(indepFile{mf}, me == 0, w.specs(comm.Size()), w.attrs(comm.Size()))
		for v := 0; v < w.NVars; v++ {
			Fill(data, me, int64(v)*per)
			for b := int64(0); b < w.NBlocks; b++ {
				h.WriteAll(fmt.Sprintf("unk%02d", v), int64(me)*per+b*bb, data[b*bb:(b+1)*bb])
			}
		}
	})
	return Result{
		Elapsed:   elapsed,
		VirtBytes: w.CheckpointBytes(comm.Size()) * scaleOf(env),
		Breakdown: mf.Breakdown(),
		Metrics:   snapshotMetrics(env),
	}
}

// VerifyCheckpoint validates the container header and this rank's data in
// every dataset, returning an error on the first mismatch.
func (w FlashIO) VerifyCheckpoint(r *mpi.Rank, env Env, name string) error {
	lf := env.FS.Open(r, name, env.Stripe)
	raw := lf.ReadAt(r, 0, hdf5lite.HeaderBytesAttrs(w.NVars, w.attrs(0)))
	ds, attrs, err := hdf5lite.ParseHeader(raw)
	if err != nil {
		return err
	}
	if attrs["nvars"] != fmt.Sprint(w.NVars) {
		return fmt.Errorf("flashio: header nvars attribute %q", attrs["nvars"])
	}
	if len(ds) != w.NVars {
		return fmt.Errorf("flashio: %d datasets, want %d", len(ds), w.NVars)
	}
	me := r.JobRank()
	per := w.PerProcBytes()
	for v, d := range ds {
		got := lf.ReadAt(r, d.Base+int64(me)*per, per)
		for i, b := range got {
			if want := PatternByte(me, int64(v)*per+int64(i)); b != want {
				return fmt.Errorf("flashio: rank %d var %d byte %d = %d want %d", me, v, i, b, want)
			}
		}
	}
	return nil
}
