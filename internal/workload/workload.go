// Package workload implements the paper's four benchmarks — IOR,
// MPI-Tile-IO, NAS BT-IO, and Flash I/O — as generators of file views and
// data over the ParColl stack, plus the measurement helpers the experiment
// harness uses.
//
// All sizes are *real* bytes; experiments running at paper scale shrink
// the real sizes by the file system's CostScale and the reported virtual
// bytes (and hence bandwidths) scale back up.
package workload

import (
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/storage"
)

// Env bundles what every workload run needs.
type Env struct {
	FS     storage.Backend
	Stripe storage.Stripe
	Opts   core.Options
	// Ledger, when non-nil, is the integrity audit attached to FS: recovery
	// runners verify read-back against it after faulted runs.
	Ledger *storage.Ledger
}

// Result is one rank's view of a finished run.
type Result struct {
	Elapsed   float64 // seconds between the synchronized start and the global finish
	VirtBytes int64   // total virtual bytes moved across all ranks
	Breakdown mpiio.Breakdown
	Plan      core.Plan // how ParColl partitioned the last collective call
	// Overlap sums the split-collective overlap accounting across all ranks
	// (zero for blocking runs).
	Overlap mpiio.OverlapStats
	// Recovery aggregates the fail-stop recovery record across all ranks:
	// counters sum, TimeToRecover is the global maximum. Zero on healthy
	// runs — the recovery machinery is inert without a crash-carrying plan.
	Recovery recovery.FailoverStats
	// Metrics is a snapshot of the run's metrics registry, taken as the
	// workload finishes. Nil unless the run armed Opts.Run.Obs.
	Metrics *obs.Snapshot
}

// snapshotMetrics captures the armed registry (nil otherwise) for a Result.
func snapshotMetrics(env Env) *obs.Snapshot {
	if env.Opts.Run.Obs == nil {
		return nil
	}
	s := env.Opts.Run.Obs.Snapshot()
	return &s
}

// Bandwidth returns the aggregate rate in bytes/second.
func (r Result) Bandwidth() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.VirtBytes) / r.Elapsed
}

// scaleOf returns the environment's virtual-bytes-per-real-byte factor.
func scaleOf(env Env) int64 {
	s := env.FS.Params().CostScale
	if s < 1 {
		return 1
	}
	return int64(s)
}

// measure runs fn between two global synchronization points and returns the
// elapsed global wall time (identical on every rank).
func measure(comm *mpi.Comm, fn func()) float64 {
	comm.Barrier()
	t0 := comm.MaxFinishTime()
	fn()
	return comm.MaxFinishTime() - t0
}

// GlobalOverlap sums per-rank overlap stats across the communicator
// (identical result everywhere).
func GlobalOverlap(comm *mpi.Comm, o mpiio.OverlapStats) mpiio.OverlapStats {
	v := comm.AllreduceFloat64([]float64{o.Hidden, o.Exposed}, mpi.OpSum)
	return mpiio.OverlapStats{Hidden: v[0], Exposed: v[1]}
}

// GlobalRecovery aggregates per-rank recovery stats across the communicator
// (identical result everywhere): counts and accumulated seconds sum; the
// time-to-recover metric reduces by max, since it is the worst single
// replanning span anywhere, not a total.
func GlobalRecovery(comm *mpi.Comm, s recovery.FailoverStats) recovery.FailoverStats {
	sums := comm.AllreduceFloat64([]float64{
		float64(s.Detections), float64(s.Failovers), float64(s.Reelections),
		float64(s.Degradations), s.DetectSecs, s.RecoverSecs,
	}, mpi.OpSum)
	ttr := comm.AllreduceFloat64([]float64{s.TimeToRecover}, mpi.OpMax)
	return recovery.FailoverStats{
		Detections:    uint64(sums[0]),
		Failovers:     uint64(sums[1]),
		Reelections:   uint64(sums[2]),
		Degradations:  uint64(sums[3]),
		DetectSecs:    sums[4],
		RecoverSecs:   sums[5],
		TimeToRecover: ttr[0],
	}
}

// MeanBreakdown averages a breakdown across the communicator (identical
// result everywhere).
func MeanBreakdown(comm *mpi.Comm, bd mpiio.Breakdown) mpiio.Breakdown {
	v := comm.AllreduceFloat64([]float64{bd.Sync, bd.Exchange, bd.IO, bd.Other}, mpi.OpSum)
	n := float64(comm.Size())
	return mpiio.Breakdown{Sync: v[0] / n, Exchange: v[1] / n, IO: v[2] / n, Other: v[3] / n}
}

// Fill writes a deterministic rank- and offset-dependent byte pattern.
func Fill(buf []byte, rank int, base int64) {
	for i := range buf {
		buf[i] = PatternByte(rank, base+int64(i))
	}
}

// PatternByte is the expected data byte at a rank-local offset.
func PatternByte(rank int, off int64) byte {
	return byte(int64(rank)*131 + off*7 + 17)
}
