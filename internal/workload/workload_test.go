package workload

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/mpiio"
)

func testEnv(opts core.Options) Env {
	return Env{
		FS:     lustre.NewFS(lustre.DefaultConfig()),
		Stripe: lustre.StripeInfo{Count: 8, Size: 4096},
		Opts:   opts,
	}
}

func TestGrid(t *testing.T) {
	cases := map[int][2]int{
		1:    {1, 1},
		4:    {2, 2},
		8:    {4, 2},
		12:   {4, 3},
		16:   {4, 4},
		512:  {32, 16},
		1024: {32, 32},
		7:    {7, 1},
	}
	for n, want := range cases {
		nx, ny := Grid(n)
		if nx != want[0] || ny != want[1] {
			t.Errorf("Grid(%d) = %dx%d want %dx%d", n, nx, ny, want[0], want[1])
		}
		if nx*ny != n {
			t.Errorf("Grid(%d) does not cover all procs", n)
		}
	}
}

func TestIORWriteVerify(t *testing.T) {
	env := testEnv(core.Options{NumGroups: 2, Hints: mpiio.Hints{CBBufferSize: 4096}})
	w := IOR{Block: 16384, Transfer: 4096}
	mpi.Run(8, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		res := w.Write(r, env, "ior")
		if res.Elapsed <= 0 || res.Bandwidth() <= 0 {
			t.Errorf("rank %d: bad result %+v", r.WorldRank(), res)
		}
		if res.VirtBytes != 16384*8 {
			t.Errorf("virt bytes = %d", res.VirtBytes)
		}
		mpi.WorldComm(r).Barrier()
		if bad := w.Verify(r, env, "ior"); bad >= 0 {
			t.Errorf("rank %d: mismatch at %d", r.WorldRank(), bad)
		}
	})
}

func TestIORRead(t *testing.T) {
	env := testEnv(core.Options{NumGroups: 2})
	w := IOR{Block: 8192, Transfer: 8192}
	mpi.Run(4, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		w.Write(r, env, "iorr")
		mpi.WorldComm(r).Barrier()
		res := w.Read(r, env, "iorr")
		if res.Elapsed <= 0 {
			t.Error("read took no time")
		}
	})
}

func TestTileIOWriteVerify(t *testing.T) {
	env := testEnv(core.Options{NumGroups: 2, Hints: mpiio.Hints{CBBufferSize: 8192}})
	w := TileIO{TileX: 64, TileY: 16, Elem: 2}
	mpi.Run(8, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		res := w.Write(r, env, "tile")
		if res.Elapsed <= 0 {
			t.Error("no elapsed time")
		}
		mpi.WorldComm(r).Barrier()
		if err := w.VerifyTile(r, env, "tile"); err != nil {
			t.Error(err)
		}
	})
}

func TestTileIOViewIsInterleaved(t *testing.T) {
	w := TileIO{TileX: 4, TileY: 2, Elem: 1}
	// 4 procs in a 2x2 grid: row width 8 bytes, two procs interleave rows.
	v0 := w.View(0, 4)
	segs := v0.Map(0, 8)
	if len(segs) != 2 {
		t.Fatalf("tile view segments = %v", segs)
	}
	if segs[0].Off != 0 || segs[1].Off != 8 {
		t.Errorf("tile rows at %v", segs)
	}
	v1 := w.View(1, 4)
	if s := v1.Map(0, 8); s[0].Off != 4 {
		t.Errorf("second tile starts at %d want 4", s[0].Off)
	}
}

func TestTileIORead(t *testing.T) {
	env := testEnv(core.Options{NumGroups: 2})
	w := TileIO{TileX: 32, TileY: 8, Elem: 1}
	mpi.Run(4, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		w.Write(r, env, "tr")
		mpi.WorldComm(r).Barrier()
		if res := w.Read(r, env, "tr"); res.Elapsed <= 0 {
			t.Error("no read time")
		}
	})
}

func TestBTIOCellCoverage(t *testing.T) {
	// The diagonal multi-partition must cover the cube exactly once.
	for _, nprocs := range []int{4, 9, 16} {
		k := K(nprocs)
		seen := make(map[[3]int]int)
		for p := 0; p < nprocs; p++ {
			for _, c := range CellCoords(p, k) {
				seen[c]++
			}
		}
		if len(seen) != k*k*k {
			t.Errorf("nprocs %d: %d distinct cells want %d", nprocs, len(seen), k*k*k)
		}
		for c, n := range seen {
			if n != 1 {
				t.Errorf("nprocs %d: cell %v owned %d times", nprocs, c, n)
			}
		}
	}
}

func TestBTIOViewPartitionsCube(t *testing.T) {
	w := BTIO{N: 8, Elem: 4, Steps: 1}
	const nprocs = 4
	cube := w.N * w.N * w.N * w.Elem
	covered := make([]int, cube)
	for p := 0; p < nprocs; p++ {
		v := w.View(p, nprocs)
		for _, s := range v.Map(0, w.DumpBytes(nprocs)) {
			for b := s.Off; b < s.End(); b++ {
				covered[b]++
			}
		}
	}
	for off, n := range covered {
		if n != 1 {
			t.Fatalf("byte %d covered %d times", off, n)
		}
	}
}

func TestBTIOWriteVerify(t *testing.T) {
	env := testEnv(core.Options{NumGroups: 2, Hints: mpiio.Hints{CBBufferSize: 2048}})
	w := BTIO{N: 8, Elem: 4, Steps: 2}
	fs := env.FS
	const nprocs = 4
	mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		res := w.Write(r, env, "bt")
		if res.Elapsed <= 0 {
			t.Error("no elapsed time")
		}
		if want := w.DumpBytes(nprocs) * nprocs * 2; res.VirtBytes != want {
			t.Errorf("virt bytes = %d want %d", res.VirtBytes, want)
		}
	})
	// Verify both dumps byte-exactly via the views.
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		lf := fs.Open(r, "bt", env.Stripe)
		per := w.DumpBytes(nprocs)
		for p := 0; p < nprocs; p++ {
			v := w.View(p, nprocs)
			for s := 0; s < w.Steps; s++ {
				var pos int64
				for _, seg := range v.Map(int64(s)*per, per) {
					got := lf.ReadAt(r, seg.Off, seg.Len)
					for i, b := range got {
						want := PatternByte(p, int64(s)*per+pos+int64(i))
						if b != want {
							t.Fatalf("proc %d step %d byte %d: got %d want %d", p, s, pos+int64(i), b, want)
						}
					}
					pos += seg.Len
				}
			}
		}
	})
}

func TestBTIOUsesIntermediateViews(t *testing.T) {
	// BT-IO's scattered cells must trigger ParColl's view switching.
	env := testEnv(core.Options{NumGroups: 2})
	w := BTIO{N: 8, Elem: 4, Steps: 1}
	fs := env.FS
	var mode core.Mode
	mpi.Run(4, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		f := core.Open(comm, fs, "btm", env.Stripe, env.Opts)
		f.SetView(w.View(r.WorldRank(), 4))
		data := make([]byte, w.DumpBytes(4))
		Fill(data, r.WorldRank(), 0)
		f.WriteAtAll(0, data)
		if r.WorldRank() == 0 {
			mode = f.LastPlan().Mode
		}
	})
	if mode != core.ModeIntermediate {
		t.Errorf("BT-IO mode = %v want intermediate", mode)
	}
}

func TestBTIONonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	K(6)
}

func TestFlashCheckpointVerify(t *testing.T) {
	env := testEnv(core.Options{NumGroups: 2, Hints: mpiio.Hints{CBBufferSize: 8192}})
	w := FlashIO{NxB: 4, NyB: 4, NzB: 4, NBlocks: 3, NVars: 4, Elem: 8}
	mpi.Run(4, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		res := w.WriteCheckpoint(r, env, "flash")
		if res.Elapsed <= 0 {
			t.Error("no elapsed time")
		}
		if want := w.CheckpointBytes(4); res.VirtBytes != want {
			t.Errorf("virt bytes %d want %d", res.VirtBytes, want)
		}
		mpi.WorldComm(r).Barrier()
		if err := w.VerifyCheckpoint(r, env, "flash"); err != nil {
			t.Error(err)
		}
	})
}

func TestFlashIndependentVerify(t *testing.T) {
	env := testEnv(core.Options{})
	w := FlashIO{NxB: 4, NyB: 4, NzB: 2, NBlocks: 2, NVars: 3, Elem: 8}
	mpi.Run(2, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		res := w.WriteCheckpointIndependent(r, env, "flashi")
		if res.Elapsed <= 0 {
			t.Error("no elapsed time")
		}
		mpi.WorldComm(r).Barrier()
		if err := w.VerifyCheckpoint(r, env, "flashi"); err != nil {
			t.Error(err)
		}
	})
}

func TestMeasureSynchronizes(t *testing.T) {
	mpi.Run(4, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		r.Compute(float64(r.WorldRank()) * 1e-3)
		d := measure(comm, func() { r.Compute(1e-3) })
		if d < 1e-3 {
			t.Errorf("measure %g < body time", d)
		}
		if d > 5e-3 {
			t.Errorf("measure %g includes pre-barrier skew", d)
		}
	})
}

func TestMeanBreakdown(t *testing.T) {
	mpi.Run(4, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		bd := mpiio.Breakdown{Sync: float64(r.WorldRank())}
		m := MeanBreakdown(comm, bd)
		if m.Sync != 1.5 {
			t.Errorf("mean sync = %g want 1.5", m.Sync)
		}
	})
}

func TestPatternByteDistinguishesRanks(t *testing.T) {
	if PatternByte(0, 0) == PatternByte(1, 0) {
		t.Error("pattern does not separate ranks")
	}
	if PatternByte(0, 0) == PatternByte(0, 1) {
		t.Error("pattern does not separate offsets")
	}
}

func TestScaledWorkloadReportsVirtualBytes(t *testing.T) {
	cfg := lustre.DefaultConfig()
	cfg.CostScale = 64
	env := Env{FS: lustre.NewFS(cfg), Stripe: lustre.StripeInfo{Count: 4, Size: 1024}, Opts: core.Options{}}
	w := IOR{Block: 4096, Transfer: 4096}
	mpi.Run(2, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		res := w.Write(r, env, "sc")
		if want := int64(4096 * 2 * 64); res.VirtBytes != want {
			t.Errorf("virt bytes %d want %d", res.VirtBytes, want)
		}
	})
}

// TestBTViewMatchesStructComposition cross-validates the hand-built BT-IO
// view against the same layout composed from datatype.Struct of per-cell
// subarrays — two independent constructions of the diagonal multipartition.
func TestBTViewMatchesStructComposition(t *testing.T) {
	w := BTIO{N: 12, Elem: 8, Steps: 1}
	const nprocs = 9
	k := K(nprocs)
	c := w.N / int64(k)
	for rank := 0; rank < nprocs; rank++ {
		var fields []datatype.Field
		for _, cell := range CellCoords(rank, k) {
			sub := datatype.NewSubarray(
				[]int64{w.N, w.N, w.N},
				[]int64{c, c, c},
				[]int64{int64(cell[2]) * c, int64(cell[1]) * c, int64(cell[0]) * c},
				w.Elem,
			)
			fields = append(fields, datatype.Field{Off: 0, T: sub})
		}
		st := datatype.NewStruct(fields)
		got := w.View(rank, nprocs).Filetype.Segments()
		want := st.Segments()
		if len(got) != len(want) {
			t.Fatalf("rank %d: %d segments vs struct's %d", rank, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rank %d segment %d: %v vs %v", rank, i, got[i], want[i])
			}
		}
	}
}

func TestBTIOReadBack(t *testing.T) {
	env := testEnv(core.Options{NumGroups: 4, MaterializeIntermediate: true})
	w := BTIO{N: 8, Elem: 4, Steps: 2}
	mpi.Run(16, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		w.Write(r, env, "btr")
		mpi.WorldComm(r).Barrier()
		res := w.Read(r, env, "btr")
		if res.Elapsed <= 0 {
			t.Error("no read time")
		}
	})
}

func TestFlashAttrsInHeader(t *testing.T) {
	env := testEnv(core.Options{})
	w := FlashIO{NxB: 2, NyB: 2, NzB: 2, NBlocks: 2, NVars: 2, Elem: 8}
	mpi.Run(2, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		w.WriteCheckpoint(r, env, "fa")
		mpi.WorldComm(r).Barrier()
		if err := w.VerifyCheckpoint(r, env, "fa"); err != nil {
			t.Error(err)
		}
	})
}

func TestIORFilePerProcess(t *testing.T) {
	env := testEnv(core.Options{})
	w := IOR{Block: 8192, Transfer: 2048}
	mpi.Run(4, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		res := w.WriteFPP(r, env, "fpp")
		if res.Elapsed <= 0 {
			t.Error("no elapsed time")
		}
		mpi.WorldComm(r).Barrier()
		if bad := w.VerifyFPP(r, env, "fpp"); bad >= 0 {
			t.Errorf("rank %d mismatch at %d", r.WorldRank(), bad)
		}
	})
}
