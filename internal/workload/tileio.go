package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/recovery"
)

// TileIO models the MPI-Tile-IO benchmark of the paper's §5.2: a dense 2D
// dataset divided into an nx-by-ny grid of tiles, one tile per process,
// written (or read) in a single collective call. The access is
// non-contiguous: each tile contributes TileY separate row segments. The
// paper used 1024x768-element tiles with 64-byte elements (48 MB/process).
type TileIO struct {
	TileX, TileY int64 // tile size in elements
	Elem         int64 // bytes per element
	// Steps repeats the collective dump that many times (frames of an
	// animation, checkpoints); zero or one means a single dump, matching
	// the original benchmark.
	Steps int
	// Compute is seconds of per-rank computation between consecutive
	// collectives — the work split collectives can hide I/O behind.
	Compute float64
	// Split switches the collective calls to split semantics
	// (WriteAllBegin/End): the compute of each step runs between Begin and
	// End, overlapping the in-flight rounds' I/O tails.
	Split bool
}

// Grid factors nprocs into the most square nx >= ny arrangement (ny is the
// largest divisor not exceeding the square root).
func Grid(nprocs int) (nx, ny int) {
	ny = 1
	for d := 1; d*d <= nprocs; d++ {
		if nprocs%d == 0 {
			ny = d
		}
	}
	return nprocs / ny, ny
}

// View builds rank's subarray file view for an nprocs-tile dataset.
func (w TileIO) View(rank, nprocs int) datatype.View {
	nx, ny := Grid(nprocs)
	_ = ny
	row, col := rank/nx, rank%nx
	sub := datatype.NewSubarray(
		[]int64{int64(nprocs/nx) * w.TileY, int64(nx) * w.TileX},
		[]int64{w.TileY, w.TileX},
		[]int64{int64(row) * w.TileY, int64(col) * w.TileX},
		w.Elem,
	)
	return datatype.View{Disp: 0, Filetype: sub}
}

// TileBytes returns the per-process data size.
func (w TileIO) TileBytes() int64 { return w.TileX * w.TileY * w.Elem }

// Write renders every tile collectively and returns this rank's Result.
func (w TileIO) Write(r *mpi.Rank, env Env, name string) Result {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.WorldRank()
	f.SetView(w.View(me, comm.Size()))
	data := make([]byte, w.TileBytes())
	Fill(data, me, 0)
	steps := w.Steps
	if steps < 1 {
		steps = 1
	}
	per := w.TileBytes()
	elapsed := measure(comm, func() {
		for s := 0; s < steps; s++ {
			if s > 0 {
				Fill(data, me, int64(s)*per)
			}
			off := int64(s) * per // frame s of the tiled view
			if w.Split {
				q := f.WriteAllBegin(off, data)
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				f.WriteAllEnd(q)
			} else {
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				f.WriteAtAll(off, data)
			}
		}
	})
	bd := f.Breakdown()
	var ovl mpiio.OverlapStats
	if w.Split {
		ovl = GlobalOverlap(comm, f.Overlap())
	}
	// The aggregation collective runs only when the plan could have produced
	// recovery work: a healthy run must not move a single extra message.
	var rec recovery.FailoverStats
	if env.Opts.Run.Fault.HasCrashes() {
		rec = GlobalRecovery(comm, f.Recovery())
	}
	return Result{
		Elapsed:   elapsed,
		VirtBytes: per * int64(steps) * int64(comm.Size()) * scaleOf(env),
		Breakdown: bd,
		Plan:      f.LastPlan(),
		Overlap:   ovl,
		Recovery:  rec,
		Metrics:   snapshotMetrics(env),
	}
}

// Read reads every tile collectively.
func (w TileIO) Read(r *mpi.Rank, env Env, name string) Result {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.WorldRank()
	f.SetView(w.View(me, comm.Size()))
	steps := w.Steps
	if steps < 1 {
		steps = 1
	}
	per := w.TileBytes()
	var got []byte
	elapsed := measure(comm, func() {
		for s := 0; s < steps; s++ {
			off := int64(s) * per
			if w.Split {
				q := f.ReadAllBegin(off, per)
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				got = f.ReadAllEnd(q)
			} else {
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				got = f.ReadAtAll(off, per)
			}
		}
	})
	bd := f.Breakdown()
	var ovl mpiio.OverlapStats
	if w.Split {
		ovl = GlobalOverlap(comm, f.Overlap())
	}
	var rec recovery.FailoverStats
	if env.Opts.Run.Fault.HasCrashes() {
		rec = GlobalRecovery(comm, f.Recovery())
	}
	res := Result{
		Elapsed:   elapsed,
		VirtBytes: per * int64(steps) * int64(comm.Size()) * scaleOf(env),
		Breakdown: bd,
		Plan:      f.LastPlan(),
		Overlap:   ovl,
		Recovery:  rec,
		Metrics:   snapshotMetrics(env),
	}
	_ = got
	return res
}

// VerifyTile checks this rank's tile against the pattern after a Write,
// reading back through an independent view; it returns an error describing
// the first mismatch.
func (w TileIO) VerifyTile(r *mpi.Rank, env Env, name string) error {
	comm := mpi.WorldComm(r)
	me := r.WorldRank()
	v := w.View(me, comm.Size())
	lf := env.FS.Open(r, name, env.Stripe)
	var pos int64
	for _, s := range v.Map(0, w.TileBytes()) {
		got := lf.ReadAt(r, s.Off, s.Len)
		for i, b := range got {
			if b != PatternByte(me, pos+int64(i)) {
				return fmt.Errorf("rank %d: tile byte %d (file off %d) = %d, want %d",
					me, pos+int64(i), s.Off+int64(i), b, PatternByte(me, pos+int64(i)))
			}
		}
		pos += s.Len
	}
	return nil
}
