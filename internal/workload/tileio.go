package workload

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/recovery"
	"repro/internal/storage"
)

// TileIO models the MPI-Tile-IO benchmark of the paper's §5.2: a dense 2D
// dataset divided into an nx-by-ny grid of tiles, one tile per process,
// written (or read) in a single collective call. The access is
// non-contiguous: each tile contributes TileY separate row segments. The
// paper used 1024x768-element tiles with 64-byte elements (48 MB/process).
type TileIO struct {
	TileX, TileY int64 // tile size in elements
	Elem         int64 // bytes per element
	// Steps repeats the collective dump that many times (frames of an
	// animation, checkpoints); zero or one means a single dump, matching
	// the original benchmark.
	Steps int
	// Compute is seconds of per-rank computation between consecutive
	// collectives — the work split collectives can hide I/O behind.
	Compute float64
	// Split switches the collective calls to split semantics
	// (WriteAllBegin/End): the compute of each step runs between Begin and
	// End, overlapping the in-flight rounds' I/O tails.
	Split bool
}

// Grid factors nprocs into the most square nx >= ny arrangement (ny is the
// largest divisor not exceeding the square root).
func Grid(nprocs int) (nx, ny int) {
	ny = 1
	for d := 1; d*d <= nprocs; d++ {
		if nprocs%d == 0 {
			ny = d
		}
	}
	return nprocs / ny, ny
}

// View builds rank's subarray file view for an nprocs-tile dataset.
func (w TileIO) View(rank, nprocs int) datatype.View {
	nx, ny := Grid(nprocs)
	_ = ny
	row, col := rank/nx, rank%nx
	sub := datatype.NewSubarray(
		[]int64{int64(nprocs/nx) * w.TileY, int64(nx) * w.TileX},
		[]int64{w.TileY, w.TileX},
		[]int64{int64(row) * w.TileY, int64(col) * w.TileX},
		w.Elem,
	)
	return datatype.View{Disp: 0, Filetype: sub}
}

// TileBytes returns the per-process data size.
func (w TileIO) TileBytes() int64 { return w.TileX * w.TileY * w.Elem }

// drainFT is the fault-aware durability barrier closing a faulted write:
// under injected staging-node failures a loss can land after the last
// collective call, when no write remains to surface it, so the read path
// would observe punched bytes. The barrier drains the backend, and a
// reported staging loss makes every rank regenerate the lost ranges inside
// its own tile rows (tile data is a pure function of rank and offset) and
// rewrite them at write-through cost, then synchronize and retry. On every
// other configuration — any healthy run, any backend without staging — it
// is a no-op and charges nothing.
func (w TileIO) drainFT(r *mpi.Rank, comm *mpi.Comm, env Env, name string, steps int) {
	if !(env.FS.Params().Injecting && env.Opts.Run.Fault.HasBBFails()) {
		return
	}
	for attempt := 0; ; attempt++ {
		err := env.FS.TryDrain(r)
		var sl *storage.StagingLostError
		if err != nil {
			if !errors.As(err, &sl) || sl.File != name || attempt >= 4 {
				panic(fmt.Sprintf("tileio: drain of %q failed: %v", name, err))
			}
		}
		// Agree collectively whether anyone still sees a loss: a rank whose
		// barrier ran after the others' repairs healed everything must keep
		// iterating in lockstep with the ranks that are re-dumping.
		hit := int64(0)
		if sl != nil {
			hit = 1
		}
		if comm.AllreduceInt64([]int64{hit}, mpi.OpMax)[0] == 0 {
			return
		}
		if sl != nil {
			w.redump(r, env, name, sl.Lost, comm.Size(), steps)
		}
		comm.Barrier()
	}
}

// redump rewrites this rank's intersection of its tile view with the lost
// set: each view segment's overlap is regenerated from the fill pattern
// and written back through the erroring path. Across ranks the tiles
// partition the dataset, so every lost byte is re-dumped exactly once.
func (w TileIO) redump(r *mpi.Rank, env Env, name string, lost []storage.Extent, n, steps int) {
	f := env.FS.Open(r, name, env.Stripe)
	me := r.JobRank()
	v := w.View(me, n)
	ext := v.Filetype.Extent()
	per := w.TileBytes()
	for s := 0; s < steps; s++ {
		local := int64(s) * per
		for _, sg := range v.Filetype.Segments() {
			off := v.Disp + int64(s)*ext + sg.Off
			for _, e := range storage.Intersect(lost, []storage.Extent{{Off: off, Len: sg.Len}}) {
				seg := make([]byte, e.Len)
				Fill(seg, me, local+(e.Off-off))
				for {
					// A not-yet-reported second loss can surface here;
					// the report consumes it, and the retry lands
					// write-through on the degraded node.
					if werr := f.TryWriteAt(r, e.Off, seg); werr == nil {
						break
					}
				}
			}
			local += sg.Len
		}
	}
}

// Write renders every tile collectively and returns this rank's Result.
func (w TileIO) Write(r *mpi.Rank, env Env, name string) Result {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.JobRank()
	f.SetView(w.View(me, comm.Size()))
	data := make([]byte, w.TileBytes())
	Fill(data, me, 0)
	steps := w.Steps
	if steps < 1 {
		steps = 1
	}
	per := w.TileBytes()
	elapsed := measure(comm, func() {
		for s := 0; s < steps; s++ {
			if s > 0 {
				Fill(data, me, int64(s)*per)
			}
			off := int64(s) * per // frame s of the tiled view
			if w.Split {
				q := f.WriteAllBegin(off, data)
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				f.WriteAllEnd(q)
			} else {
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				f.WriteAtAll(off, data)
			}
		}
		w.drainFT(r, comm, env, name, steps)
	})
	bd := f.Breakdown()
	var ovl mpiio.OverlapStats
	if w.Split {
		ovl = GlobalOverlap(comm, f.Overlap())
	}
	// The aggregation collective runs only when the plan could have produced
	// recovery work: a healthy run must not move a single extra message.
	var rec recovery.FailoverStats
	if env.Opts.Run.Fault.HasCrashes() {
		rec = GlobalRecovery(comm, f.Recovery())
	}
	return Result{
		Elapsed:   elapsed,
		VirtBytes: per * int64(steps) * int64(comm.Size()) * scaleOf(env),
		Breakdown: bd,
		Plan:      f.LastPlan(),
		Overlap:   ovl,
		Recovery:  rec,
		Metrics:   snapshotMetrics(env),
	}
}

// Read reads every tile collectively.
func (w TileIO) Read(r *mpi.Rank, env Env, name string) Result {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.JobRank()
	f.SetView(w.View(me, comm.Size()))
	steps := w.Steps
	if steps < 1 {
		steps = 1
	}
	per := w.TileBytes()
	var got []byte
	elapsed := measure(comm, func() {
		for s := 0; s < steps; s++ {
			off := int64(s) * per
			if w.Split {
				q := f.ReadAllBegin(off, per)
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				got = f.ReadAllEnd(q)
			} else {
				if w.Compute > 0 {
					r.Compute(w.Compute)
				}
				got = f.ReadAtAll(off, per)
			}
		}
	})
	bd := f.Breakdown()
	var ovl mpiio.OverlapStats
	if w.Split {
		ovl = GlobalOverlap(comm, f.Overlap())
	}
	var rec recovery.FailoverStats
	if env.Opts.Run.Fault.HasCrashes() {
		rec = GlobalRecovery(comm, f.Recovery())
	}
	res := Result{
		Elapsed:   elapsed,
		VirtBytes: per * int64(steps) * int64(comm.Size()) * scaleOf(env),
		Breakdown: bd,
		Plan:      f.LastPlan(),
		Overlap:   ovl,
		Recovery:  rec,
		Metrics:   snapshotMetrics(env),
	}
	_ = got
	return res
}

// VerifyTile checks this rank's tile against the pattern after a Write,
// reading back through an independent view; it returns an error describing
// the first mismatch.
func (w TileIO) VerifyTile(r *mpi.Rank, env Env, name string) error {
	comm := mpi.WorldComm(r)
	me := r.JobRank()
	v := w.View(me, comm.Size())
	lf := env.FS.Open(r, name, env.Stripe)
	var pos int64
	for _, s := range v.Map(0, w.TileBytes()) {
		got := lf.ReadAt(r, s.Off, s.Len)
		for i, b := range got {
			if b != PatternByte(me, pos+int64(i)) {
				return fmt.Errorf("rank %d: tile byte %d (file off %d) = %d, want %d",
					me, pos+int64(i), s.Off+int64(i), b, PatternByte(me, pos+int64(i)))
			}
		}
		pos += s.Len
	}
	return nil
}
