package workload

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/mpiio"
)

// Split-mode workloads must write exactly the bytes the blocking mode
// writes — the pipeline changes the clock, never the file — and must
// report overlap accounting consistent with hidden + exposed == tail.

func TestTileIOSplitWriteVerify(t *testing.T) {
	env := testEnv(core.Options{NumGroups: 2, Hints: mpiio.Hints{CBBufferSize: 2048}})
	w := TileIO{TileX: 32, TileY: 24, Elem: 4, Steps: 2, Compute: 1e-3, Split: true}
	const nprocs = 8
	mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		res := w.Write(r, env, "tile")
		if err := w.VerifyTile(r, env, "tile"); err != nil {
			t.Error(err)
		}
		if res.Overlap.Hidden <= 0 {
			t.Errorf("rank %d: split run hid nothing: %+v", r.WorldRank(), res.Overlap)
		}
		if res.Overlap.HiddenFrac() <= 0 || res.Overlap.HiddenFrac() > 1 {
			t.Errorf("hidden fraction %g out of (0,1]", res.Overlap.HiddenFrac())
		}
	})
}

func TestTileIOSplitFasterThanBlocking(t *testing.T) {
	run := func(split bool) float64 {
		env := testEnv(core.Options{NumGroups: 2, Hints: mpiio.Hints{CBBufferSize: 2048}})
		w := TileIO{TileX: 64, TileY: 48, Elem: 4, Steps: 3, Compute: 5e-3, Split: split}
		var elapsed float64
		mpi.Run(8, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			res := w.Write(r, env, "tile")
			if r.WorldRank() == 0 {
				elapsed = res.Elapsed
			}
		})
		return elapsed
	}
	split, block := run(true), run(false)
	if split >= block {
		t.Errorf("split tile write (%g) not faster than blocking (%g)", split, block)
	}
}

func TestBTIOSplitWriteVerify(t *testing.T) {
	// BT-IO's scattered cells force intermediate views; the split pipeline
	// must still land every byte of both dumps.
	env := testEnv(core.Options{NumGroups: 2, Hints: mpiio.Hints{CBBufferSize: 2048}})
	w := BTIO{N: 8, Elem: 4, Steps: 2, Compute: 1e-3, Split: true}
	fs := env.FS
	const nprocs = 4
	mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		res := w.Write(r, env, "bts")
		if res.Overlap.Hidden+res.Overlap.Exposed <= 0 {
			t.Error("split BT-IO recorded no tail at all")
		}
	})
	mpi.Run(1, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		lf := fs.Open(r, "bts", env.Stripe)
		per := w.DumpBytes(nprocs)
		for p := 0; p < nprocs; p++ {
			v := w.View(p, nprocs)
			for s := 0; s < w.Steps; s++ {
				var pos int64
				for _, seg := range v.Map(int64(s)*per, per) {
					got := lf.ReadAt(r, seg.Off, seg.Len)
					for i, b := range got {
						want := PatternByte(p, int64(s)*per+pos+int64(i))
						if b != want {
							t.Fatalf("proc %d step %d byte %d: got %d want %d", p, s, pos+int64(i), b, want)
						}
					}
					pos += seg.Len
				}
			}
		}
	})
}

func TestBTIOSplitReadBack(t *testing.T) {
	env := testEnv(core.Options{NumGroups: 2, Hints: mpiio.Hints{CBBufferSize: 2048}})
	w := BTIO{N: 8, Elem: 4, Steps: 2}
	const nprocs = 4
	mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		w.Write(r, env, "btr")
	})
	w.Split = true
	w.Compute = 1e-3
	mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		res := w.Read(r, env, "btr")
		if res.Elapsed <= 0 {
			t.Error("no elapsed time for split read")
		}
		if res.Overlap.Hidden+res.Overlap.Exposed < 0 {
			t.Errorf("negative overlap accounting: %+v", res.Overlap)
		}
	})
}
