package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
)

// IOR models the IOR benchmark's shared-file collective mode used in the
// paper's §5.1: every process writes Block contiguous bytes at offset
// rank*Block into one shared file, issuing one collective write per
// Transfer-sized unit. The paper ran 512 MB per process in 4 MB units.
type IOR struct {
	Block    int64 // real bytes per process
	Transfer int64 // real bytes per collective call
	// Strided switches from IOR's segmented layout (rank r owns the
	// contiguous slab [r*Block, (r+1)*Block)) to its interleaved one: the
	// file is a round-robin of Transfer-sized chunks, rank r owning chunks
	// r, r+nprocs, r+2*nprocs, ... Every rank then overlaps every
	// aggregator's file domain — the fine-grained sharing that stresses the
	// exchange phase hardest.
	Strided bool
}

// view builds rank's file view for either layout.
func (w IOR) view(rank, nprocs int) datatype.View {
	if !w.Strided {
		return datatype.View{Disp: int64(rank) * w.Block, Filetype: datatype.Contig(w.Block)}
	}
	n := (w.Block + w.Transfer - 1) / w.Transfer
	ft := datatype.NewVector(n, w.Transfer, int64(nprocs)*w.Transfer)
	return datatype.View{Disp: int64(rank) * w.Transfer, Filetype: ft}
}

// Write runs the collective-write phase and returns this rank's Result.
func (w IOR) Write(r *mpi.Rank, env Env, name string) Result {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.JobRank()
	f.SetView(w.view(me, comm.Size()))
	buf := make([]byte, w.Transfer)
	elapsed := measure(comm, func() {
		for off := int64(0); off < w.Block; off += w.Transfer {
			n := w.Transfer
			if off+n > w.Block {
				n = w.Block - off
			}
			Fill(buf[:n], me, off)
			f.WriteAtAll(off, buf[:n])
		}
	})
	return Result{
		Elapsed:   elapsed,
		VirtBytes: w.Block * int64(comm.Size()) * scaleOf(env),
		Breakdown: f.Breakdown(),
		Plan:      f.LastPlan(),
		Metrics:   snapshotMetrics(env),
	}
}

// Read runs the collective-read phase (the file must have been written).
func (w IOR) Read(r *mpi.Rank, env Env, name string) Result {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.JobRank()
	f.SetView(w.view(me, comm.Size()))
	elapsed := measure(comm, func() {
		for off := int64(0); off < w.Block; off += w.Transfer {
			n := w.Transfer
			if off+n > w.Block {
				n = w.Block - off
			}
			f.ReadAtAll(off, n)
		}
	})
	return Result{
		Elapsed:   elapsed,
		VirtBytes: w.Block * int64(comm.Size()) * scaleOf(env),
		Breakdown: f.Breakdown(),
		Plan:      f.LastPlan(),
		Metrics:   snapshotMetrics(env),
	}
}

// Verify checks this rank's data (either layout) against the deterministic
// pattern, returning the first mismatching rank-local offset or -1.
func (w IOR) Verify(r *mpi.Rank, env Env, name string) int64 {
	f := env.FS.Open(r, name, env.Stripe)
	me := r.JobRank()
	v := w.view(me, mpi.WorldComm(r).Size())
	var pos int64
	for _, s := range v.Map(0, w.Block) {
		got := f.ReadAt(r, s.Off, s.Len)
		for i, b := range got {
			if b != PatternByte(me, pos+int64(i)) {
				return pos + int64(i)
			}
		}
		pos += s.Len
	}
	return -1
}

// WriteIndependent runs the shared-file write with independent I/O — the
// paper's "w/o Coll" baseline. Each rank issues its whole block through
// its view in one call; with Strided set that call maps to Block/Transfer
// noncontiguous file segments, which go to storage as per-extent requests
// on a plain backend and as one vectored list-I/O request on a list-I/O
// backend. This is exactly the access pattern Ching et al. built list-I/O
// for.
func (w IOR) WriteIndependent(r *mpi.Rank, env Env, name string) Result {
	comm := mpi.WorldComm(r)
	f := core.Open(comm, env.FS, name, env.Stripe, env.Opts)
	me := r.JobRank()
	f.SetView(w.view(me, comm.Size()))
	buf := make([]byte, w.Block)
	Fill(buf, me, 0)
	elapsed := measure(comm, func() {
		f.WriteAt(0, buf)
	})
	return Result{
		Elapsed:   elapsed,
		VirtBytes: w.Block * int64(comm.Size()) * scaleOf(env),
		Breakdown: f.Breakdown(),
		Metrics:   snapshotMetrics(env),
	}
}

// WriteFPP runs IOR's file-per-process mode: every rank writes its block
// to its own file with independent I/O — no sharing, no collective
// coordination. The classic foil for shared-file collective I/O: it avoids
// both the collective wall and lock conflicts, at the cost of N files.
func (w IOR) WriteFPP(r *mpi.Rank, env Env, prefix string) Result {
	comm := mpi.WorldComm(r)
	me := r.JobRank()
	f := env.FS.Open(r, fmt.Sprintf("%s.%08d", prefix, me), env.Stripe)
	buf := make([]byte, w.Transfer)
	elapsed := measure(comm, func() {
		for off := int64(0); off < w.Block; off += w.Transfer {
			n := w.Transfer
			if off+n > w.Block {
				n = w.Block - off
			}
			Fill(buf[:n], me, off)
			f.WriteAt(r, off, buf[:n])
		}
	})
	return Result{
		Elapsed:   elapsed,
		VirtBytes: w.Block * int64(comm.Size()) * scaleOf(env),
		Metrics:   snapshotMetrics(env),
	}
}

// VerifyFPP checks this rank's per-process file against the pattern,
// returning the first mismatching offset or -1.
func (w IOR) VerifyFPP(r *mpi.Rank, env Env, prefix string) int64 {
	me := r.JobRank()
	f := env.FS.Open(r, fmt.Sprintf("%s.%08d", prefix, me), env.Stripe)
	got := f.ReadAt(r, 0, w.Block)
	for i, b := range got {
		if b != PatternByte(me, int64(i)) {
			return int64(i)
		}
	}
	return -1
}
