// Two-level (hierarchical) collective I/O regression tests. With
// parcoll_intranode on, PEs sharing a node merge their requests and data
// into the node leader before anything crosses the NIC (DESIGN.md §13).
// These tests pin the feature at the top of the stack three ways: bit-exact
// hex-float goldens of the two-level virtual times across node fatness and
// ParColl subgroup counts, strict equality of every pre-existing golden
// with the feature off (the knob must be invisible until turned), and the
// acceptance property the feature exists for — obs-counted cross-node
// messages and the synchronization share both drop against the flat
// protocol, by a margin that widens with PEs per node.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/workload"
)

// hierPreset is the bench preset with the two-level protocol on and the
// given node fatness.
func hierPreset(pes, workers int) experiments.Preset {
	p := experiments.BenchPreset()
	p.Cluster.PEsPerNode = pes
	p.IntraNode = true
	p.Workers = workers
	return p
}

// hierGoldenMetrics computes the pinned two-level metrics: tile-IO write
// and read under the two-level protocol at three node fatnesses and two
// ParColl subgroup counts, plus the fat-node sweep's traffic counters. As
// with goldenMetrics, the preset's engine choice must not matter.
func hierGoldenMetrics(workers int) map[string]string {
	got := make(map[string]string)
	for _, pes := range []int{2, 8, 16} {
		p := hierPreset(pes, workers)
		for _, g := range p.TileGroupSweep(64, []int{1, 4}) {
			got[fmt.Sprintf("tile/pes=%d/groups=%d", pes, g.Groups)] = fmt.Sprintf(
				"writeBW=%x readBW=%x sync=%x", g.WriteBW, g.ReadBW, g.Sync)
		}
	}
	p := experiments.BenchPreset()
	p.Workers = workers
	for _, pt := range p.IntraNodeSweep(64, 2, []int{8, 16}) {
		got[fmt.Sprintf("sweep/pes=%d/intra=%v", pt.PEsPerNode, pt.IntraNode)] = fmt.Sprintf(
			"sync=%x share=%x intraMsgs=%d interMsgs=%d interBytes=%d",
			pt.Breakdown.Sync, pt.SyncShare(), pt.IntraMsgs, pt.InterMsgs, pt.InterBytes)
	}
	return got
}

// hierGoldenWant are the bit-exact hex-float goldens of the two-level
// protocol (captured from the implementation that introduced it). A change
// here means the two-level virtual-time behaviour moved — deliberate model
// changes must update the goldens and say why.
var hierGoldenWant = map[string]string{
	"sweep/pes=16/intra=false": "sync=0x1.6382d0befdf9ap-02 share=0x1.f4ac9900ad181p-01 intraMsgs=1984 interMsgs=6144 interBytes=245760",
	"sweep/pes=16/intra=true":  "sync=0x1.5800f0323e709p-02 share=0x1.f4429804c0a7p-01 intraMsgs=38464 interMsgs=384 interBytes=245760",
	"sweep/pes=8/intra=false":  "sync=0x1.63bc0ffad30b2p-02 share=0x1.f4add4839be61p-01 intraMsgs=960 interMsgs=7168 interBytes=286720",
	"sweep/pes=8/intra=true":   "sync=0x1.5a0fc33a49daap-02 share=0x1.f45514fbde97dp-01 intraMsgs=35904 interMsgs=896 interBytes=286720",
	"tile/pes=16/groups=1":     "writeBW=0x1.b51e9234c5b65p+28 readBW=0x1.8a76958246fedp+28 sync=0x1.9457a5d6b1a69p-01",
	"tile/pes=16/groups=4":     "writeBW=0x1.c9ba6ab51772ep+28 readBW=0x1.b1065b08f0817p+28 sync=0x1.7c1cb09ce805ep-01",
	"tile/pes=2/groups=1":      "writeBW=0x1.8cd6730e8742ep+31 readBW=0x1.d6d1c15cb0ca7p+30 sync=0x1.687fe917a210cp-05",
	"tile/pes=2/groups=4":      "writeBW=0x1.912c655cb1b1bp+31 readBW=0x1.3f1c7e22668cp+31 sync=0x1.4f3abe72e5d17p-05",
	"tile/pes=8/groups=1":      "writeBW=0x1.ac20764dbd1c8p+29 readBW=0x1.6330216501518p+29 sync=0x1.729ab69d03aedp-02",
	"tile/pes=8/groups=4":      "writeBW=0x1.b3ebc9041bb7dp+29 readBW=0x1.7f7bbd20e9cap+29 sync=0x1.5f2728531709p-02",
}

// TestHierarchicalGoldenMetrics pins the two-level path's virtual times to
// bit-exact hex-float goldens across node fatness and subgroup counts.
func TestHierarchicalGoldenMetrics(t *testing.T) {
	got := hierGoldenMetrics(1)
	for k, w := range hierGoldenWant {
		if got[k] != w {
			t.Errorf("%s:\n  got:  %s\n  want: %s", k, got[k], w)
		}
	}
	if len(got) != len(hierGoldenWant) {
		t.Errorf("golden key sets differ: got %d metrics, want %d", len(got), len(hierGoldenWant))
	}
}

// TestHierarchicalParallelEngineIdentity runs the two-level goldens under
// the parallel engine: bit-identical at 2 and 4 workers.
func TestHierarchicalParallelEngineIdentity(t *testing.T) {
	for _, w := range parallelWorkers {
		got := hierGoldenMetrics(w)
		for k, want := range hierGoldenWant {
			if got[k] != want {
				t.Errorf("workers=%d %s:\n  got:  %s\n  want: %s", w, k, got[k], want)
			}
		}
	}
}

// TestHierarchicalRunTwiceIdenticalAtRoot pins run-to-run identity of the
// full two-level metric set within one build.
func TestHierarchicalRunTwiceIdenticalAtRoot(t *testing.T) {
	first, second := hierGoldenMetrics(1), hierGoldenMetrics(1)
	for k, v := range first {
		if second[k] != v {
			t.Errorf("%s: runs differ:\n  first:  %s\n  second: %s", k, v, second[k])
		}
	}
}

// TestHierarchicalOffPreservesGoldens re-runs every pre-existing golden of
// determinism_test.go with the new knobs explicitly at their defaults
// (2 PEs per node, two-level off), serially and at 2 and 4 workers: the
// feature must be invisible until turned on — bit-for-bit.
func TestHierarchicalOffPreservesGoldens(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		p := experiments.BenchPreset()
		p.Cluster.PEsPerNode = 2
		p.IntraNode = false
		p.Workers = w
		got := goldenMetrics(p)
		for k, want := range goldenWant {
			if got[k] != want {
				t.Errorf("workers=%d %s:\n  got:  %s\n  want: %s", w, k, got[k], want)
			}
		}
	}
}

// TestHierarchicalStridedReadBackVerifies writes the fat-node sweep's
// strided workload through the two-level protocol and verifies every
// rank's slivers byte-for-byte — the root-level read-back proof that the
// two-level exchange delivers exactly the flat protocol's bytes.
func TestHierarchicalStridedReadBackVerifies(t *testing.T) {
	p := experiments.BenchPreset()
	for _, intra := range []bool{false, true} {
		p.Cluster.PEsPerNode = 8
		lcfg := p.Lustre
		lcfg.CostScale = 1
		env := workload.Env{
			FS:     lustre.NewFS(lcfg),
			Stripe: lustre.StripeInfo{Count: p.StripeCount, Size: 4096},
		}
		env.Opts.Hints.CBNodes = 2
		env.Opts.Hints.CBBufferSize = 1024
		env.Opts.Hints.IntraNode = intra
		w := workload.IOR{Block: 4096, Transfer: 64, Strided: true}
		mpi.Run(64, p.Cluster, p.Seed, func(r *mpi.Rank) {
			w.Write(r, env, "strided")
			if off := w.Verify(r, env, "strided"); off >= 0 {
				t.Errorf("intra=%v rank %d: first mismatch at rank-local offset %d",
					intra, r.WorldRank(), off)
			}
		})
	}
}

// TestIntraNodeAggregationReducesExchange is the feature's acceptance test:
// on the fat-node sweep, the two-level protocol must strictly reduce both
// the obs-counted cross-node message count and the synchronization share at
// every node fatness of 8 PEs and up, and both gaps must widen
// monotonically as nodes get fatter. Byte volume is conserved — merging
// changes who crosses the NIC, never what.
func TestIntraNodeAggregationReducesExchange(t *testing.T) {
	p := experiments.BenchPreset()
	pts := p.IntraNodeSweep(64, 2, []int{2, 8, 16, 32})
	var lastMsgRatio, lastShareGap float64
	for i := 0; i < len(pts); i += 2 {
		flat, hier := pts[i], pts[i+1]
		if flat.IntraNode || !hier.IntraNode || flat.PEsPerNode != hier.PEsPerNode {
			t.Fatalf("sweep order broken at %d: %+v / %+v", i, flat, hier)
		}
		pes := flat.PEsPerNode
		if hier.InterMsgs >= flat.InterMsgs {
			t.Errorf("pes=%d: cross-node messages did not drop: flat %d, two-level %d",
				pes, flat.InterMsgs, hier.InterMsgs)
		}
		if hier.InterBytes != flat.InterBytes {
			t.Errorf("pes=%d: cross-node bytes changed: flat %d, two-level %d — merging must conserve payload",
				pes, flat.InterBytes, hier.InterBytes)
		}
		msgRatio := float64(flat.InterMsgs) / float64(hier.InterMsgs)
		shareGap := flat.SyncShare() - hier.SyncShare()
		if pes >= 8 {
			if hier.SyncShare() >= flat.SyncShare() {
				t.Errorf("pes=%d: sync share did not drop: flat %v, two-level %v",
					pes, flat.SyncShare(), hier.SyncShare())
			}
			if hier.Breakdown.Sync >= flat.Breakdown.Sync {
				t.Errorf("pes=%d: sync seconds did not drop: flat %v, two-level %v",
					pes, flat.Breakdown.Sync, hier.Breakdown.Sync)
			}
			if hier.Elapsed >= flat.Elapsed {
				t.Errorf("pes=%d: elapsed did not drop: flat %v, two-level %v",
					pes, flat.Elapsed, hier.Elapsed)
			}
		}
		if msgRatio <= lastMsgRatio {
			t.Errorf("pes=%d: message-reduction ratio %.2f did not widen over %.2f",
				pes, msgRatio, lastMsgRatio)
		}
		if pes >= 8 && shareGap <= lastShareGap {
			t.Errorf("pes=%d: sync-share gap %v did not widen over %v", pes, shareGap, lastShareGap)
		}
		lastMsgRatio, lastShareGap = msgRatio, shareGap
	}
}
