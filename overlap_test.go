// Split-collective regression tests: determinism, bit-exact goldens, and
// the overlap acceptance claims. The split pipeline moves I/O tails into
// the progress engine, so its results must still be a pure function of
// (workload, config, seed) — run-twice identity — and its virtual-time
// numbers are pinned as hex-float goldens exactly like the blocking ones
// in determinism_test.go.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
)

// overlapRatios deliberately stops at 1: the hidden fraction saturates once
// per-step compute exceeds the largest per-step tail (everything hideable
// is hidden), so strict growth is only observable below saturation. One
// point at or past saturation (ratio 1) pins the plateau.
var overlapRatios = []float64{0, 0.25, 1}

func overlapKey(pt experiments.OverlapPoint) string {
	return fmt.Sprintf("%s/ratio=%g", pt.Scenario, pt.Ratio)
}

func overlapVal(pt experiments.OverlapPoint) string {
	return fmt.Sprintf("bE=%x sE=%x bP=%x sP=%x hE=%x hP=%x",
		pt.BlockExt2ph, pt.SplitExt2ph, pt.BlockParColl, pt.SplitParColl,
		pt.HiddenExt2ph, pt.HiddenParColl)
}

func TestSplitCollectives(t *testing.T) {
	p := experiments.BenchPreset()
	plan, err := fault.Scenario(fault.OneStraggler)
	if err != nil {
		t.Fatal(err)
	}
	const nprocs, groups, steps = 32, 4, 6
	healthy := p.OverlapSweep(nprocs, groups, steps, overlapRatios, nil)
	straggler := p.OverlapSweep(nprocs, groups, steps, overlapRatios, plan)

	t.Run("RunTwiceIdentical", func(t *testing.T) {
		again := p.OverlapSweep(nprocs, groups, steps, overlapRatios, nil)
		for i := range healthy {
			if healthy[i] != again[i] {
				t.Errorf("%s: split sweep differs between runs:\n  first:  %+v\n  second: %+v",
					overlapKey(healthy[i]), healthy[i], again[i])
			}
		}
	})

	t.Run("Golden", func(t *testing.T) {
		got := make(map[string]string)
		for _, pt := range append(append([]experiments.OverlapPoint{}, healthy...), straggler...) {
			got[overlapKey(pt)] = overlapVal(pt)
		}
		want := map[string]string{
			"healthy/ratio=0":          "bE=0x1.ac8e9478040dap-01 sE=0x1.01c386b580e26p-01 bP=0x1.94beca3a3961ap-01 sP=0x1.00d1304e2d1e8p-01 hE=0x1.8292b1e86cc56p-02 hP=0x1.7d53354e64368p-02",
			"healthy/ratio=0.25":       "bE=0x1.0bd91ccb02889p+00 sE=0x1.01f53fe3a9a22p-01 bP=0x1.f2d3e5063ef2cp-01 sP=0x1.099eab799a2c3p-01 hE=0x1.688d94687c46fp-01 hP=0x1.5aa4b53a979fdp-01",
			"healthy/ratio=1":          "bE=0x1.ac8e9478040bfp+00 sE=0x1.134b137384f82p+00 bP=0x1.9a1f6a3020fcbp+00 sP=0x1.1260c81b45939p+00 hE=0x1.6e4192c57bbe7p-01 hP=0x1.6e6b4236f5f6dp-01",
			"one-straggler/ratio=0":    "bE=0x1.4a8138d28a9ffp+00 sE=0x1.3561a56a110ecp+00 bP=0x1.34f80517afd54p+00 sP=0x1.2c40bae0a4ep+00 hE=0x1.537d2f98b2552p-01 hP=0x1.ccad28a6500bdp-02",
			"one-straggler/ratio=0.25": "bE=0x1.e8265b394517dp+00 sE=0x1.c29b8bb1c32a9p+00 bP=0x1.cbaa07bcc16a3p+00 sP=0x1.c22bb27d565d5p+00 hE=0x1.faa086ba0caadp-01 hP=0x1.8b1f5d2ff391fp-01",
			"one-straggler/ratio=1":    "bE=0x1.1abf0e7b52cb3p+02 sE=0x1.115c5a99724f8p+02 bP=0x1.139ff99c31dfep+02 sP=0x1.1140644c571c6p+02 hE=0x1p+00 hP=0x1.8b564170e4f6dp-01",
		}
		for k, w := range want {
			if got[k] != w {
				t.Errorf("%s:\n  got:  %s\n  want: %s", k, got[k], w)
			}
		}
	})

	t.Run("Acceptance", func(t *testing.T) {
		// Healthy: at every ratio the split variant is at least as fast as
		// its blocking twin, and at ratio >= 1 strictly faster — the compute
		// fully pays for the pipeline's exposed tails.
		for _, pt := range healthy {
			if pt.SplitParColl > pt.BlockParColl || pt.SplitExt2ph > pt.BlockExt2ph {
				t.Errorf("healthy ratio %g: split slower than blocking: %+v", pt.Ratio, pt)
			}
			if pt.Ratio >= 1 && pt.SplitParColl >= pt.BlockParColl {
				t.Errorf("ratio %g: split ParColl %g not strictly below blocking %g",
					pt.Ratio, pt.SplitParColl, pt.BlockParColl)
			}
		}
		// The hidden fraction grows strictly with the compute/IO ratio
		// (the ratios stop at saturation; see overlapRatios).
		for i := 1; i < len(healthy); i++ {
			if healthy[i].HiddenParColl <= healthy[i-1].HiddenParColl {
				t.Errorf("hidden fraction not growing: ratio %g -> %g gives %g -> %g",
					healthy[i-1].Ratio, healthy[i].Ratio,
					healthy[i-1].HiddenParColl, healthy[i].HiddenParColl)
			}
			if healthy[i].HiddenExt2ph <= healthy[i-1].HiddenExt2ph {
				t.Errorf("ext2ph hidden fraction not growing: ratio %g -> %g gives %g -> %g",
					healthy[i-1].Ratio, healthy[i].Ratio,
					healthy[i-1].HiddenExt2ph, healthy[i].HiddenExt2ph)
			}
		}
		// One-straggler: degradation against the common healthy blocking
		// reference must be strictly smaller for the split variant — i.e.
		// the overlap advantage survives the fault at every ratio. (The
		// straggler's 4x-slow compute dominates both variants equally, so
		// the gap narrows, but split must never fall behind.) And the
		// pipeline hides strictly more under the fault than when healthy:
		// the stall waits the straggler induces are exactly the idle time
		// the progress engine retires tails into.
		for i, pt := range straggler {
			h := healthy[i]
			degSplit := pt.SplitParColl - h.BlockParColl
			degBlock := pt.BlockParColl - h.BlockParColl
			if degSplit >= degBlock {
				t.Errorf("one-straggler ratio %g: split degradation %g not below blocking %g",
					pt.Ratio, degSplit, degBlock)
			}
			if pt.SplitExt2ph >= pt.BlockExt2ph {
				t.Errorf("one-straggler ratio %g: split ext2ph %g not below blocking %g",
					pt.Ratio, pt.SplitExt2ph, pt.BlockExt2ph)
			}
			if pt.HiddenParColl <= h.HiddenParColl || pt.HiddenExt2ph <= h.HiddenExt2ph {
				t.Errorf("one-straggler ratio %g: hides less than healthy (hP %g<=%g or hE %g<=%g)",
					pt.Ratio, pt.HiddenParColl, h.HiddenParColl, pt.HiddenExt2ph, h.HiddenExt2ph)
			}
		}
	})
}
