// End-to-end fail-stop recovery acceptance tests: writes run under
// crash-carrying fault plans, then the data is read back and compared
// byte-for-byte against the deterministic pattern — recovery must reproduce
// exactly the file a healthy run would have written. The headline
// comparison extends the paper's partitioning argument to hard failures:
// ext2ph replans a dead aggregator across the whole communicator, ParColl
// only across the crashed aggregator's subgroup, so ParColl's
// time-to-recover is strictly lower under the same crash.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
)

// failureScenarios are the catalog entries that inject hard failures (as
// opposed to pure perturbations, which never need recovery).
var failureScenarios = []string{fault.OneAggCrash, fault.FlakyOST, fault.LossyNet}

// TestTileWriteUnderFailureReadsBack writes the tile workload under every
// hard-failure scenario, both protocols, and requires byte-exact read-back.
func TestTileWriteUnderFailureReadsBack(t *testing.T) {
	p := experiments.BenchPreset()
	for _, name := range failureScenarios {
		plan, err := fault.Scenario(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, groups := range []int{1, scenarioGroups} {
			pt := p.TileUnderFailure(scenarioProcs, groups, plan)
			if !pt.Verified {
				t.Errorf("%s/groups=%d: tile read-back does not match the pattern", name, groups)
			}
			if pt.Goodput <= 0 {
				t.Errorf("%s/groups=%d: goodput = %g, want > 0", name, groups, pt.Goodput)
			}
		}
	}
}

// TestBTWriteUnderFailureReadsBack is the BT-IO sibling: multiple collective
// dumps on one handle, so an aggregator that died in dump k must be routed
// around from round zero of dump k+1 without a second watchdog wait.
func TestBTWriteUnderFailureReadsBack(t *testing.T) {
	p := experiments.BenchPreset()
	plan, err := fault.Scenario(fault.OneAggCrash)
	if err != nil {
		t.Fatal(err)
	}
	const btProcs = 16 // BT-IO needs a square process count
	for _, groups := range []int{1, scenarioGroups} {
		pt := p.BTUnderFailure(btProcs, groups, plan)
		if !pt.Verified {
			t.Errorf("bt %s/groups=%d: dump read-back does not match the pattern",
				fault.OneAggCrash, groups)
		}
	}
}

// TestParCollRecoversFasterThanExt2ph is the acceptance criterion for the
// failure model: under the one-aggregator-crash scenario both protocols must
// complete with correct data and perform at least one failover, and
// ParColl's global time-to-recover (the worst single replanning span
// anywhere, detection excluded) must be strictly lower than ext2ph's —
// partitioning confines detection and domain re-partitioning to one
// subgroup instead of the whole job.
func TestParCollRecoversFasterThanExt2ph(t *testing.T) {
	p := experiments.BenchPreset()
	plan, err := fault.Scenario(fault.OneAggCrash)
	if err != nil {
		t.Fatal(err)
	}
	ext := p.TileUnderFailure(scenarioProcs, 1, plan)
	par := p.TileUnderFailure(scenarioProcs, scenarioGroups, plan)
	for _, pt := range []experiments.FailurePoint{ext, par} {
		if !pt.Verified {
			t.Fatalf("groups=%d: recovery lost data", pt.Groups)
		}
		if pt.Recovery.Failovers == 0 {
			t.Fatalf("groups=%d: crash produced no failover (stats: %+v)", pt.Groups, pt.Recovery)
		}
		if pt.Recovery.Degradations != 0 {
			t.Fatalf("groups=%d: single crash must not exhaust the failover budget (stats: %+v)",
				pt.Groups, pt.Recovery)
		}
	}
	if par.Recovery.TimeToRecover >= ext.Recovery.TimeToRecover {
		t.Errorf("time-to-recover: ParColl %.6fs, ext2ph %.6fs — partitioning must recover strictly faster",
			par.Recovery.TimeToRecover, ext.Recovery.TimeToRecover)
	}
	// Detection is likewise confined: every live rank of the affected
	// communicator pays one watchdog timeout, and ParColl's affected
	// communicator is one subgroup rather than the world.
	if par.Recovery.Detections >= ext.Recovery.Detections {
		t.Errorf("detections: ParColl %d, ext2ph %d — only the crashed subgroup should detect",
			par.Recovery.Detections, ext.Recovery.Detections)
	}
}

// TestRecoveryRunTwiceIdentical pins the determinism of the failure path:
// detection, failover, and re-partitioned I/O draw no entropy beyond the
// seeded plan, so two runs agree bit-for-bit on timing and telemetry.
func TestRecoveryRunTwiceIdentical(t *testing.T) {
	p := experiments.BenchPreset()
	plan, err := fault.Scenario(fault.OneAggCrash)
	if err != nil {
		t.Fatal(err)
	}
	a := p.TileUnderFailure(scenarioProcs, scenarioGroups, plan)
	b := p.TileUnderFailure(scenarioProcs, scenarioGroups, plan)
	if a != b {
		t.Errorf("failure runs differ:\n  first:  %+v\n  second: %+v", a, b)
	}
}
