// Package repro is a from-scratch Go reproduction of "ParColl: Partitioned
// Collective I/O on the Cray XT" (Yu & Vetter, ICPP 2008).
//
// The repository contains the full stack the paper depends on, simulated
// under a deterministic virtual clock:
//
//   - internal/sim      — cooperative virtual-time engine (procs, mailboxes,
//     resource ledgers)
//   - internal/cluster  — Cray-XT-like machine model (nodes, NICs, rank
//     mappings, LogP-style costs)
//   - internal/mpi      — message-passing runtime with collectives built
//     from point-to-point messages
//   - internal/datatype — MPI-like derived datatypes and file views
//   - internal/lustre   — striped object-storage file system (OSTs,
//     request overhead, contention)
//   - internal/ldlm     — Lustre distributed-lock-manager model (extent
//     locks, expanded grants, blocking-AST revocations)
//   - internal/mpiio    — MPI-IO with the ROMIO-style extended two-phase
//     collective protocol (the paper's baseline) plus data sieving
//   - internal/core     — ParColl itself: file area partitioning, I/O
//     aggregator distribution, intermediate file views, adaptive groups
//   - internal/hdf5lite — minimal HDF5-like container (Flash I/O path)
//   - internal/workload — IOR, MPI-Tile-IO, NAS BT-IO, Flash I/O
//   - internal/trace    — per-rank event timelines (cmd/collwall -gantt)
//   - internal/viz      — terminal charts for the figure tools
//   - internal/experiments — one runner per paper figure
//
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation; cmd/paperrepro prints the full comparison tables. See
// DESIGN.md for the architecture and EXPERIMENTS.md for paper-vs-measured
// results.
package repro
